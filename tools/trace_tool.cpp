// Trace workbench: inspect/validate/stats over binary trace files
// (src/trace/format.h), scenario generation to disk, and capture/replay
// runs that print a deterministic digest line - the CI smoke row captures
// a run, replays the trace, and diffs the two digests byte-for-byte.
//
//   trace_tool info <trace>
//   trace_tool validate <trace>
//   trace_tool stats <trace>
//   trace_tool gen <scenario> <out.trace> [--cores N --seed S --rounds R
//                                          --gap G --phase-len P]
//   trace_tool capture <workload> <out.trace> [run flags]
//   trace_tool replay <trace> [run flags]
//
// Run flags (capture/replay): --preset NAME (l2|ln2|ln3|ln4|dnuca),
// --cores N, --instructions N, --warmup N, --seed S, --sampling SPEC,
// --engine MODE. Positional operands must precede the -- flags.
#include "src/lnuca.h"

#include <cstdio>
#include <cstring>
#include <exception>
#include <string>
#include <unordered_map>
#include <vector>

using namespace lnuca;

namespace {

int usage()
{
    std::fprintf(
        stderr,
        "usage: trace_tool <command> [operands] [--flags]\n"
        "  info <trace>              header + per-lane summary\n"
        "  validate <trace>          full open-time validation; exit 0 iff ok\n"
        "  stats <trace>             per-lane op mix and sharing profile\n"
        "  gen <scenario> <out>      write a scenario lane set to a trace "
        "file\n"
        "                            (--cores --seed --rounds --gap "
        "--phase-len)\n"
        "  capture <workload> <out>  run + serialise the consumed stream(s)\n"
        "  replay <trace>            run a captured/generated trace\n"
        "run flags: --preset l2|ln2|ln3|ln4|dnuca  --cores N  "
        "--instructions N\n"
        "           --warmup N  --seed S  --sampling SPEC  --engine MODE\n"
        "scenarios:");
    for (const std::string& name : trace::scenario_names())
        std::fprintf(stderr, " %s", name.c_str());
    std::fprintf(stderr, "\n");
    return 2;
}

/// Tokens after the subcommand and before the first "--flag". cli_args
/// skips them, so flags and operands parse from the same argv.
std::vector<std::string> operands(int argc, char** argv)
{
    std::vector<std::string> out;
    for (int i = 2; i < argc; ++i) {
        if (std::strncmp(argv[i], "--", 2) == 0)
            break;
        out.emplace_back(argv[i]);
    }
    return out;
}

hier::system_config resolve_preset(const cli_args& args, bool& ok)
{
    const std::string name = args.get_string("preset", "l2");
    hier::system_config config;
    if (name == "l2" || name == "l2_256kb")
        config = hier::presets::l2_256kb();
    else if (name == "ln2")
        config = hier::presets::lnuca_l3(2);
    else if (name == "ln3")
        config = hier::presets::lnuca_l3(3);
    else if (name == "ln4")
        config = hier::presets::lnuca_l3(4);
    else if (name == "dnuca" || name == "dnuca_4x8")
        config = hier::presets::dnuca_4x8();
    else {
        std::fprintf(stderr,
                     "unknown --preset '%s' (l2|ln2|ln3|ln4|dnuca)\n",
                     name.c_str());
        ok = false;
        return config;
    }
    const unsigned cores = unsigned(args.get_u64("cores", 1));
    if (cores > 1)
        config = hier::presets::cmp(config, cores);
    const std::string engine = args.get_string("engine", "skip");
    if (engine == "dense")
        config.engine_mode = sim::schedule_mode::dense;
    else if (engine == "paranoid")
        config.engine_mode = sim::schedule_mode::paranoid;
    const std::string sampling = args.get_string("sampling", "off");
    if (const auto parsed = hier::parse_sampling_spec(sampling)) {
        config.sampling = *parsed;
    } else {
        std::fprintf(stderr, "unknown --sampling '%s'\n", sampling.c_str());
        ok = false;
    }
    return config;
}

/// Every deterministic counter of a run on one line, no run labels (the
/// capture names the live workload, the replay names the trace file - the
/// digest must still compare equal) and no host-timing fields.
void print_digest(const hier::run_result& r)
{
    std::printf("digest instructions=%llu cycles=%llu",
                (unsigned long long)r.instructions,
                (unsigned long long)r.cycles);
    std::printf(" loads_l1=%llu loads_fabric=%llu loads_l2=%llu "
                "loads_l3=%llu loads_dnuca=%llu loads_memory=%llu "
                "loads_peer=%llu",
                (unsigned long long)r.loads_l1,
                (unsigned long long)r.loads_fabric,
                (unsigned long long)r.loads_l2,
                (unsigned long long)r.loads_l3,
                (unsigned long long)r.loads_dnuca,
                (unsigned long long)r.loads_memory,
                (unsigned long long)r.loads_peer);
    std::printf(" l2_read_hits=%llu", (unsigned long long)r.l2_read_hits);
    for (std::size_t i = 0; i < r.fabric_read_hits.size(); ++i)
        std::printf(" fabric_l%zu_hits=%llu", i,
                    (unsigned long long)r.fabric_read_hits[i]);
    std::printf(" transport=%llu/%llu searches=%llu restarts=%llu",
                (unsigned long long)r.transport_actual,
                (unsigned long long)r.transport_min,
                (unsigned long long)r.searches,
                (unsigned long long)r.search_restarts);
    std::printf(" ipc=%.17g avg_load_latency=%.17g energy_j=%.17g", r.ipc,
                r.avg_load_latency, r.energy.total());
    for (std::size_t i = 0; i < r.per_core_ipc.size(); ++i)
        std::printf(" core%zu_ipc=%.17g", i, r.per_core_ipc[i]);
    std::printf("\n");
}

int run_and_digest(const wl::workload_profile& profile, const cli_args& args,
                   const std::string& capture_path)
{
    bool ok = true;
    hier::system_config config = resolve_preset(args, ok);
    if (!ok)
        return 1;
    config.capture_path = capture_path;
    const std::uint64_t instructions =
        args.get_u64("instructions", hier::default_instructions);
    const std::uint64_t warmup = args.get_u64("warmup", hier::default_warmup);
    const std::uint64_t seed = args.get_u64("seed", 1);

    hier::run_result r;
    {
        // Scoped: the capture file is written at system destruction.
        hier::system sys(config, std::vector<wl::workload_profile>{profile},
                         seed);
        r = sys.run(instructions, warmup);
    }
    std::fprintf(stderr, "run: workload=%s config=%s cores=%u\n",
                 r.workload_name.c_str(), r.config_name.c_str(), r.cores);
    print_digest(r);
    return 0;
}

int cmd_info(const std::string& path)
{
    const auto data = trace::trace_data::open(path);
    std::printf("%s: '%s' (%s), %u lane(s), %llu records\n", path.c_str(),
                data->name().c_str(),
                data->floating_point() ? "floating-point" : "integer",
                data->lane_count(),
                (unsigned long long)data->total_records());
    for (unsigned i = 0; i < data->lane_count(); ++i) {
        const auto& lane = data->lane(i);
        std::printf("  lane %u: %llu records, %llu warm entries\n", i,
                    (unsigned long long)lane.record_count,
                    (unsigned long long)lane.warm_count);
    }
    return 0;
}

int cmd_stats(const std::string& path)
{
    const auto data = trace::trace_data::open(path);
    constexpr addr_t k_line = 64;
    // line -> bitmask of lanes touching it (sharing profile).
    std::unordered_map<addr_t, std::uint32_t> lines;
    std::printf("%s: '%s', %u lane(s)\n", path.c_str(), data->name().c_str(),
                data->lane_count());
    for (unsigned i = 0; i < data->lane_count(); ++i) {
        const auto& lane = data->lane(i);
        std::uint64_t loads = 0, stores = 0, branches = 0, other = 0;
        for (std::uint64_t r = 0; r < lane.record_count; ++r) {
            const trace::trace_record& rec = lane.records[r];
            const auto op = cpu::op_class(rec.op);
            if (op == cpu::op_class::load)
                ++loads;
            else if (op == cpu::op_class::store)
                ++stores;
            else if (op == cpu::op_class::branch)
                ++branches;
            else
                ++other;
            if (op == cpu::op_class::load || op == cpu::op_class::store)
                lines[rec.addr / k_line] |= 1u << (i % 32);
        }
        std::printf("  lane %u: %llu records  load %.1f%%  store %.1f%%  "
                    "branch %.1f%%  alu %.1f%%\n",
                    i, (unsigned long long)lane.record_count,
                    100.0 * double(loads) / double(lane.record_count),
                    100.0 * double(stores) / double(lane.record_count),
                    100.0 * double(branches) / double(lane.record_count),
                    100.0 * double(other) / double(lane.record_count));
    }
    std::uint64_t shared = 0;
    for (const auto& [line, mask] : lines)
        if ((mask & (mask - 1)) != 0)
            ++shared;
    std::printf("  footprint: %zu 64B lines, %llu shared between lanes\n",
                lines.size(), (unsigned long long)shared);
    return 0;
}

int cmd_gen(const std::string& name, const std::string& out,
            const cli_args& args)
{
    trace::scenario_params params;
    params.cores = unsigned(args.get_u64("cores", params.cores));
    params.seed = args.get_u64("seed", params.seed);
    params.rounds = args.get_u64("rounds", params.rounds);
    params.gap = unsigned(args.get_u64("gap", params.gap));
    params.phase_len = unsigned(args.get_u64("phase-len", params.phase_len));
    const auto data = trace::make_scenario(name, params);

    trace::trace_writer writer(out, data->name(), data->floating_point(),
                               data->lane_count());
    for (unsigned i = 0; i < data->lane_count(); ++i) {
        const auto& lane = data->lane(i);
        for (std::uint64_t r = 0; r < lane.record_count; ++r)
            writer.append_raw(i, lane.records[r]);
        if (lane.warm_count != 0)
            writer.set_warm_table(
                i, std::vector<addr_t>(lane.warm, lane.warm + lane.warm_count));
    }
    if (!writer.write())
        return 1;
    std::printf("wrote %s: %u lane(s), %llu records\n", out.c_str(),
                data->lane_count(), (unsigned long long)data->total_records());
    return 0;
}

} // namespace

int main(int argc, char** argv)
{
    if (argc < 2)
        return usage();
    const std::string command = argv[1];
    const std::vector<std::string> ops = operands(argc, argv);
    const cli_args args(argc, argv);

    try {
        if (command == "info" && ops.size() == 1)
            return cmd_info(ops[0]);
        if (command == "validate" && ops.size() == 1) {
            const auto data = trace::trace_data::open(ops[0]);
            std::printf("ok: %s: %u lane(s), %llu records\n", ops[0].c_str(),
                        data->lane_count(),
                        (unsigned long long)data->total_records());
            return 0;
        }
        if (command == "stats" && ops.size() == 1)
            return cmd_stats(ops[0]);
        if (command == "gen" && ops.size() == 2)
            return cmd_gen(ops[0], ops[1], args);
        if (command == "capture" && ops.size() == 2) {
            const auto profile = trace::parse_workload_spec(ops[0]);
            if (!profile) {
                std::fprintf(stderr, "unknown workload spec '%s'\n",
                             ops[0].c_str());
                return 1;
            }
            return run_and_digest(*profile, args, ops[1]);
        }
        if (command == "replay" && ops.size() == 1) {
            const auto profile = trace::parse_workload_spec("trace:" + ops[0]);
            if (!profile) {
                std::fprintf(stderr, "bad trace path '%s'\n", ops[0].c_str());
                return 1;
            }
            return run_and_digest(*profile, args, "");
        }
    } catch (const std::exception& error) {
        std::fprintf(stderr, "trace_tool %s: %s\n", command.c_str(),
                     error.what());
        return 1;
    }
    return usage();
}
