// Checkpoint workbench over the LNCKPT1 format (src/ckpt/format.h).
//
//   ckpt_tool info <ckpt>       header + run identity + section table
//   ckpt_tool validate <ckpt>   full open-time validation; exit 0 iff ok
//   ckpt_tool digest <ckpt>     the saved per-component state digests
//
// The reader validates eagerly (magic, version, endian tag, file size,
// header CRC, every section CRC), so every subcommand doubles as a
// corruption check: a torn or bit-rotted file prints the reader's error and
// exits 1. CI's kill-mid-job smoke validates each snapshot this way before
// resuming from it.
#include "src/ckpt/format.h"
#include "src/ckpt/reader.h"

#include <cstdio>
#include <cstring>
#include <string>

using namespace lnuca;

namespace {

int usage()
{
    std::fprintf(stderr,
                 "usage: ckpt_tool <command> <checkpoint>\n"
                 "  info <ckpt>      header, run identity and section table\n"
                 "  validate <ckpt>  full validation; exit 0 iff the file is "
                 "intact\n"
                 "  digest <ckpt>    saved per-component state digests\n");
    return 2;
}

int cmd_info(ckpt::reader& r)
{
    std::printf("checkpoint: %s\n", r.path().c_str());
    std::printf("  config hash: %016llx\n",
                (unsigned long long)r.config_hash());
    std::printf("  sections:    %zu\n", r.sections().size());

    // The meta section is five u64s: requested instructions, warm-up,
    // base seed, stream lanes, cores (see hier::system::save_checkpoint).
    r.open_section(ckpt::section_id::meta);
    const std::uint64_t instructions = r.get_u64();
    const std::uint64_t warmup = r.get_u64();
    const std::uint64_t seed = r.get_u64();
    const std::uint64_t lanes = r.get_u64();
    const std::uint64_t cores = r.get_u64();
    r.close_section();
    std::printf("  run: %llu instructions, %llu warmup, seed %llu, "
                "%llu lane(s), %llu core(s)\n",
                (unsigned long long)instructions, (unsigned long long)warmup,
                (unsigned long long)seed, (unsigned long long)lanes,
                (unsigned long long)cores);

    std::printf("  %-8s %-5s %10s %10s %10s\n", "section", "index", "offset",
                "bytes", "crc32");
    for (const ckpt::section_entry& e : r.sections())
        std::printf("  %-8s %-5u %10llu %10llu   %08x\n",
                    ckpt::to_string(ckpt::section_id(e.id)), e.index,
                    (unsigned long long)e.offset, (unsigned long long)e.size,
                    e.crc);
    return 0;
}

int cmd_digest(ckpt::reader& r)
{
    // The digests section is component_digests()-order u64 values; the
    // count falls out of the payload size.
    r.open_section(ckpt::section_id::digests);
    const ckpt::section_entry* entry = nullptr;
    for (const ckpt::section_entry& e : r.sections())
        if (ckpt::section_id(e.id) == ckpt::section_id::digests)
            entry = &e;
    const std::uint64_t count = entry != nullptr ? entry->size / 8 : 0;
    for (std::uint64_t i = 0; i < count; ++i)
        std::printf("component %2llu: %016llx\n", (unsigned long long)i,
                    (unsigned long long)r.get_u64());
    r.close_section();
    return 0;
}

} // namespace

int main(int argc, char** argv)
{
    if (argc != 3)
        return usage();
    const std::string command = argv[1];
    const std::string path = argv[2];
    if (command != "info" && command != "validate" && command != "digest")
        return usage();

    try {
        ckpt::reader r(path);
        if (command == "info")
            return cmd_info(r);
        if (command == "digest")
            return cmd_digest(r);
        std::printf("%s: valid LNCKPT1 checkpoint (%zu sections, config "
                    "hash %016llx)\n",
                    path.c_str(), r.sections().size(),
                    (unsigned long long)r.config_hash());
        return 0;
    } catch (const ckpt::ckpt_error& e) {
        std::fprintf(stderr, "%s: %s\n", path.c_str(), e.what());
        return 1;
    }
}
