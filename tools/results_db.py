#!/usr/bin/env python3
"""Queryable results store: sweep JSON-lines -> SQLite.

Subcommands:

  ingest     load one or more JSONL result files (shard outputs or a
             merge_tool merge) into the `runs` table, keyed by
             (manifest hash, flat index). Re-ingesting a row replaces it.
             per_core_ipc is unnested into its own table, one row per core.
  speedup    (re)create the `speedup` view — every ok run joined against
             the named baseline config on the same (manifest, workload,
             replicate) — and print it.
  aggregate  mean / median / 95% CI of a metric, grouped by any column set
             (default: config).
  query      raw SQL passthrough, rows as TSV with a header line.

Only the Python standard library is used (sqlite3, json). Every run_result
field of the JSONL schema (src/exp/sink.cpp) has a typed column; the two
variable-length arrays are unnested (per_core_ipc) or kept as a JSON text
column (fabric_read_hits — its length is a config property, not an axis).
Seeds are stored as decimal TEXT: they are full-range 64-bit values, which
SQLite's signed INTEGER cannot hold.
"""

import argparse
import json
import math
import os
import sqlite3
import statistics
import sys

# column name -> (sqlite type, json key or None if same)
RUN_COLUMNS = [
    ("manifest", "TEXT"),
    ("flat", "INTEGER"),
    ("config", "TEXT"),
    ("workload", "TEXT"),
    ("config_index", "INTEGER"),
    ("workload_index", "INTEGER"),
    ("replicate", "INTEGER"),
    ("seed", "TEXT"),
    ("instructions_requested", "INTEGER"),
    ("warmup", "INTEGER"),
    ("status", "TEXT"),
    ("error", "TEXT"),
    ("floating_point", "INTEGER"),
    ("instructions", "INTEGER"),
    ("cycles", "INTEGER"),
    ("ipc", "REAL"),
    ("cores", "INTEGER"),
    ("weighted_speedup", "REAL"),
    ("sampled", "INTEGER"),
    ("sampled_windows", "INTEGER"),
    ("measured_instructions", "INTEGER"),
    ("ipc_ci95", "REAL"),
    ("l2_read_hits", "INTEGER"),
    ("fabric_read_hits", "TEXT"),
    ("transport_actual", "INTEGER"),
    ("transport_min", "INTEGER"),
    ("search_restarts", "INTEGER"),
    ("searches", "INTEGER"),
    ("loads_l1", "INTEGER"),
    ("loads_fabric", "INTEGER"),
    ("loads_l2", "INTEGER"),
    ("loads_l3", "INTEGER"),
    ("loads_dnuca", "INTEGER"),
    ("loads_memory", "INTEGER"),
    ("loads_peer", "INTEGER"),
    ("avg_load_latency", "REAL"),
    ("host_seconds", "REAL"),
    ("sim_cycles_per_second", "REAL"),
    ("sim_instructions_per_second", "REAL"),
    ("dynamic_j", "REAL"),
    ("static_l1_j", "REAL"),
    ("static_storage_j", "REAL"),
    ("static_l3_j", "REAL"),
]

SCHEMA = f"""
CREATE TABLE IF NOT EXISTS runs (
  {", ".join(f"{name} {typ}" for name, typ in RUN_COLUMNS)},
  PRIMARY KEY (manifest, flat)
);
CREATE TABLE IF NOT EXISTS per_core_ipc (
  manifest TEXT NOT NULL,
  flat INTEGER NOT NULL,
  core INTEGER NOT NULL,
  ipc REAL NOT NULL,
  PRIMARY KEY (manifest, flat, core)
);
CREATE INDEX IF NOT EXISTS runs_by_config ON runs (config, workload);
"""

# JSONL keys folded into their typed column instead of matching by name.
ENERGY_KEYS = ("dynamic_j", "static_l1_j", "static_storage_j", "static_l3_j")


def open_db(path):
    db = sqlite3.connect(path)
    db.executescript(SCHEMA)
    return db


def row_values(record):
    values = {}
    energy = record.get("energy", {})
    for name, _ in RUN_COLUMNS:
        if name == "manifest":
            values[name] = record.get("manifest", "")
        elif name == "seed":
            values[name] = str(record.get("seed", 0))
        elif name == "fabric_read_hits":
            values[name] = json.dumps(record.get("fabric_read_hits", []))
        elif name in ENERGY_KEYS:
            values[name] = energy.get(name)
        elif name in ("floating_point", "sampled"):
            values[name] = 1 if record.get(name) else 0
        elif name == "error":
            values[name] = record.get("error", "")
        else:
            values[name] = record.get(name)
    return values


def cmd_ingest(args):
    db = open_db(args.db)
    names = [name for name, _ in RUN_COLUMNS]
    insert = (f"INSERT INTO runs ({', '.join(names)}) "
              f"VALUES ({', '.join(':' + n for n in names)})")
    total = 0
    with db:
        for path in args.files:
            rows = 0
            with open(path) as f:
                for line_no, line in enumerate(f, 1):
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        record = json.loads(line)
                    except json.JSONDecodeError:
                        print(f"results_db: {path} line {line_no}: "
                              f"undecodable row (torn tail? merge first)",
                              file=sys.stderr)
                        return 1
                    values = row_values(record)
                    key = (values["manifest"], values["flat"])
                    db.execute("DELETE FROM runs WHERE manifest = ? AND "
                               "flat = ?", key)
                    db.execute("DELETE FROM per_core_ipc WHERE manifest = ? "
                               "AND flat = ?", key)
                    db.execute(insert, values)
                    db.executemany(
                        "INSERT INTO per_core_ipc VALUES (?, ?, ?, ?)",
                        [(key[0], key[1], core, ipc) for core, ipc in
                         enumerate(record.get("per_core_ipc", []))])
                    rows += 1
            print(f"results_db: ingested {rows} rows from {path}")
            total += rows
    print(f"results_db: {total} rows total, db at {args.db}")
    return 0


def cmd_speedup(args):
    db = open_db(args.db)
    metric = args.metric
    if metric not in {name for name, _ in RUN_COLUMNS}:
        print(f"results_db: unknown metric column '{metric}'",
              file=sys.stderr)
        return 1
    baseline = args.baseline.replace("'", "''")
    with db:
        db.execute("DROP VIEW IF EXISTS speedup")
        # A view cannot take parameters, so the baseline name is baked in;
        # re-running `speedup` with another baseline rebuilds it.
        db.execute(f"""
            CREATE VIEW speedup AS
            SELECT r.manifest, r.config, r.workload, r.replicate,
                   r.{metric} AS value, b.{metric} AS baseline_value,
                   CASE WHEN b.{metric} != 0
                        THEN 1.0 * r.{metric} / b.{metric} END AS speedup
            FROM runs r
            JOIN runs b ON b.manifest = r.manifest
                       AND b.workload = r.workload
                       AND b.replicate = r.replicate
                       AND b.config = '{baseline}'
            WHERE r.config != '{baseline}'
              AND r.status = 'ok' AND b.status = 'ok'
        """)
    rows = db.execute("SELECT config, workload, replicate, value, "
                      "baseline_value, speedup FROM speedup "
                      "ORDER BY config, workload, replicate").fetchall()
    if not rows:
        print(f"results_db: no rows to compare against baseline "
              f"'{args.baseline}' (is the name spelled like the config "
              f"column?)", file=sys.stderr)
        return 1
    print(f"config\tworkload\treplicate\t{metric}\tbaseline\tspeedup")
    for config, workload, replicate, value, base, speedup in rows:
        sp = f"{speedup:.4f}" if speedup is not None else "n/a"
        print(f"{config}\t{workload}\t{replicate}\t{value:.6g}\t"
              f"{base:.6g}\t{sp}")
    return 0


def cmd_aggregate(args):
    db = open_db(args.db)
    columns = {name for name, _ in RUN_COLUMNS}
    groups = [g.strip() for g in args.group.split(",") if g.strip()]
    if args.metric not in columns or not all(g in columns for g in groups):
        print("results_db: --metric/--group must name runs columns",
              file=sys.stderr)
        return 1
    select = ", ".join(groups)
    rows = db.execute(
        f"SELECT {select}, {args.metric} FROM runs "
        f"WHERE status = 'ok' AND {args.metric} IS NOT NULL").fetchall()
    buckets = {}
    for row in rows:
        buckets.setdefault(row[:-1], []).append(row[-1])
    print("\t".join(groups) + "\tn\tmean\tmedian\tci95")
    for key in sorted(buckets):
        values = buckets[key]
        n = len(values)
        mean = statistics.fmean(values)
        median = statistics.median(values)
        # Normal-approximation 95% CI of the mean; 0 for a single sample.
        ci95 = (1.96 * statistics.stdev(values) / math.sqrt(n)
                if n > 1 else 0.0)
        print("\t".join(str(k) for k in key) +
              f"\t{n}\t{mean:.6g}\t{median:.6g}\t{ci95:.6g}")
    return 0


def cmd_query(args):
    db = open_db(args.db)
    cursor = db.execute(args.sql)
    if cursor.description:
        print("\t".join(col[0] for col in cursor.description))
        for row in cursor:
            print("\t".join("" if v is None else str(v) for v in row))
    db.commit()
    return 0


def main():
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("ingest", help="load JSONL result files")
    p.add_argument("--db", required=True, help="SQLite database path")
    p.add_argument("files", nargs="+", help="JSONL files to ingest")
    p.set_defaults(fn=cmd_ingest)

    p = sub.add_parser("speedup",
                       help="(re)create + print the speedup view")
    p.add_argument("--db", required=True)
    p.add_argument("--baseline", required=True,
                   help="baseline config name (the `config` column value)")
    p.add_argument("--metric", default="ipc",
                   help="metric column to ratio (default: ipc)")
    p.set_defaults(fn=cmd_speedup)

    p = sub.add_parser("aggregate", help="mean/median/ci95 per group")
    p.add_argument("--db", required=True)
    p.add_argument("--group", default="config",
                   help="comma-separated group columns (default: config)")
    p.add_argument("--metric", default="ipc")
    p.set_defaults(fn=cmd_aggregate)

    p = sub.add_parser("query", help="raw SQL passthrough (TSV output)")
    p.add_argument("--db", required=True)
    p.add_argument("sql", help="SQL statement to run")
    p.set_defaults(fn=cmd_query)

    args = parser.parse_args()
    return args.fn(args)


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # Downstream `head` closed the pipe; that is not an error.
        os._exit(0)
