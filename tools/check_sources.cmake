# Source-listing lint: every source file on disk must be wired into the
# build, so a forgotten add_executable / library entry fails CI instead of
# silently shipping dead code.
#
#   cmake -P tools/check_sources.cmake
#
# Rules:
#   src/**/*.cpp        must appear verbatim in the lnuca_core sources
#   bench/*.cpp         stem must appear in LNUCA_BENCHES or an explicit
#                       add_executable
#   tests/*.cpp         stem must appear in LNUCA_TESTS
#   examples/*.cpp      stem must appear in LNUCA_EXAMPLES
#   tools/*.cpp         stem must appear in LNUCA_TOOLS
cmake_minimum_required(VERSION 3.16)

get_filename_component(repo_root "${CMAKE_CURRENT_LIST_DIR}/.." ABSOLUTE)
file(READ "${repo_root}/CMakeLists.txt" cmakelists)

set(missing "")

file(GLOB_RECURSE core_sources RELATIVE "${repo_root}" "${repo_root}/src/*.cpp")
foreach(source IN LISTS core_sources)
  string(FIND "${cmakelists}" "${source}" found)
  if(found EQUAL -1)
    list(APPEND missing "${source} (expected in lnuca_core sources)")
  endif()
endforeach()

foreach(pair "bench;LNUCA_BENCHES" "tests;LNUCA_TESTS" "examples;LNUCA_EXAMPLES"
             "tools;LNUCA_TOOLS")
  list(GET pair 0 dir)
  list(GET pair 1 listname)
  file(GLOB dir_sources RELATIVE "${repo_root}" "${repo_root}/${dir}/*.cpp")
  foreach(source IN LISTS dir_sources)
    get_filename_component(stem "${source}" NAME_WE)
    # The stem must appear as a standalone word: a list-variable entry, a
    # direct add_executable(<stem> ...), or a foreach over targets (the
    # google-benchmark micros) all satisfy this.
    string(REGEX MATCH "[ (;\n]${stem}[ );\n]" in_build "${cmakelists}")
    if(in_build STREQUAL "")
      list(APPEND missing "${source} (expected in ${listname} or add_executable)")
    endif()
  endforeach()
endforeach()

if(missing)
  list(LENGTH missing n)
  message(STATUS "check_sources: ${n} file(s) not wired into the build:")
  foreach(entry IN LISTS missing)
    message(STATUS "  ${entry}")
  endforeach()
  message(FATAL_ERROR "check_sources failed")
endif()
message(STATUS "check_sources: every source file is wired into the build")
