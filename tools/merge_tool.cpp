// Merge sharded / resumed sweep outputs into one canonical result set.
//
//   merge_tool --manifest M.json --output merged.jsonl shard0.jsonl shard1.jsonl ...
//
// Every input row's provenance is validated against the manifest (flat
// coordinates, derived seed, run length, manifest hash); the merged output
// holds exactly one line per completed flat, in flat order, byte-identical
// (modulo the host-timing trio) to a single clean unsharded run. The
// coverage report always prints to stderr.
//
// Exit codes, mirroring run_app's convention:
//   0  merge complete: every flat of the manifest has a completed row
//   1  merge clean but incomplete: missing and/or failed flats (the report
//      names them; re-run those shards with --resume and merge again)
//   2  hard error: unreadable file, corrupt mid-file row, a row from a
//      different manifest, or conflicting duplicate rows
//
// Logic lives in src/exp/merge.{h,cpp} so tests drive it in-process; this
// file is only argv handling and file I/O. (Inputs are positional, which
// lnuca::cli_args drops by design — argv is walked by hand here.)
#include "src/exp/manifest.h"
#include "src/exp/merge.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

using namespace lnuca;

namespace {

int usage()
{
    std::fprintf(stderr,
                 "usage: merge_tool --manifest FILE --output FILE "
                 "INPUT.jsonl [INPUT.jsonl ...]\n"
                 "  --manifest FILE  the lnuca_sweep/1 manifest the inputs "
                 "were run from\n"
                 "  --output FILE    merged canonical JSONL (\"-\" = "
                 "stdout)\n"
                 "  --quiet          suppress the coverage report when the "
                 "merge is complete\n");
    return 2;
}

bool read_file(const std::string& path, std::string& out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    out.assign(std::istreambuf_iterator<char>(in),
               std::istreambuf_iterator<char>{});
    return true;
}

// "--name value" / "--name=value" for the two named options; everything
// else that does not start with "--" is an input path.
bool take_option(int argc, const char* const* argv, int& i,
                 const char* name, std::string& out)
{
    const std::string arg = argv[i];
    const std::string prefix = std::string("--") + name;
    if (arg == prefix) {
        if (i + 1 >= argc)
            return false;
        out = argv[++i];
        return true;
    }
    if (arg.rfind(prefix + "=", 0) == 0) {
        out = arg.substr(prefix.size() + 1);
        return true;
    }
    return false;
}

} // namespace

int main(int argc, char** argv)
{
    std::string manifest_path;
    std::string output_path;
    bool quiet = false;
    std::vector<std::string> input_paths;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (take_option(argc, argv, i, "manifest", manifest_path) ||
            take_option(argc, argv, i, "output", output_path))
            continue;
        if (arg == "--quiet") {
            quiet = true;
            continue;
        }
        if (arg.rfind("--", 0) == 0) {
            std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
            return usage();
        }
        input_paths.push_back(arg);
    }
    if (manifest_path.empty() || output_path.empty() || input_paths.empty())
        return usage();

    std::string error;
    const auto m = exp::load_manifest(manifest_path, &error);
    if (!m) {
        std::fprintf(stderr, "%s\n", error.c_str());
        return 2;
    }

    std::vector<exp::merge_input> inputs;
    for (const std::string& path : input_paths) {
        std::string content;
        if (!read_file(path, content)) {
            std::fprintf(stderr, "cannot read input '%s'\n", path.c_str());
            return 2;
        }
        inputs.emplace_back(path, std::move(content));
    }

    std::string merged;
    exp::merge_report report;
    if (!exp::merge_results(*m, inputs, merged, report, &error)) {
        std::fprintf(stderr, "merge_tool: %s\n", error.c_str());
        return 2;
    }

    if (output_path == "-") {
        std::cout << merged;
        if (!std::cout) {
            std::fprintf(stderr, "write to stdout failed\n");
            return 2;
        }
    } else {
        std::ofstream out(output_path,
                          std::ios::binary | std::ios::trunc);
        out << merged;
        out.flush();
        if (!out) {
            std::fprintf(stderr, "cannot write output '%s'\n",
                         output_path.c_str());
            return 2;
        }
    }

    if (!quiet || !report.complete())
        std::fprintf(stderr, "%s\n", exp::describe_merge(report).c_str());
    return report.complete() ? 0 : 1;
}
