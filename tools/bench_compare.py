#!/usr/bin/env python3
"""Perf-regression gate: diff fresh BENCH_*.json files against the last
baseline artifact from main.

Understands two shapes:

* google-benchmark JSON (BENCH_engine.json, BENCH_hotpath.json): compares
  per-benchmark throughput (items_per_second, i.e. instructions or cycles
  retired per wall second) when present, else real_time.
* micro_sampling JSON (BENCH_sampling.json): compares median_speedup and
  per-run sampled wall seconds.

A metric regressing by more than --threshold (default 15%) fails the gate
(exit 1). A missing baseline file - first run on a branch, expired
artifact - only warns (exit 0): the gate needs history to bite, and the
fresh run uploads the new baseline either way.
"""

import argparse
import json
import os
import sys


def load(path):
    with open(path) as f:
        return json.load(f)


def pct(new, old):
    return 100.0 * (new - old) / old if old else 0.0


def compare_google_benchmark(base, fresh, threshold):
    """Yield (name, metric, old, new, regression_pct) tuples."""
    base_by_name = {
        b["name"]: b
        for b in base.get("benchmarks", [])
        if b.get("run_type", "iteration") == "iteration"
    }
    for bench in fresh.get("benchmarks", []):
        if bench.get("run_type", "iteration") != "iteration":
            continue
        ref = base_by_name.get(bench["name"])
        if ref is None:
            continue
        if "items_per_second" in bench and "items_per_second" in ref:
            old, new = ref["items_per_second"], bench["items_per_second"]
            if old > 0 and new < old * (1.0 - threshold):
                yield bench["name"], "items_per_second", old, new
        elif "real_time" in bench and "real_time" in ref:
            old, new = ref["real_time"], bench["real_time"]
            if old > 0 and new > old * (1.0 + threshold):
                yield bench["name"], "real_time", old, new


def compare_sampling(base, fresh, threshold):
    # Single-core and CMP sections carry independent medians and run
    # lists; compare whichever the baseline already has (older baselines
    # predate the CMP rows and must stay warn-free).
    for metric in ("median_speedup", "median_speedup_cmp"):
        old, new = base.get(metric, 0), fresh.get(metric, 0)
        if old > 0 and new < old * (1.0 - threshold):
            yield "micro_sampling", metric, old, new
    for key in ("runs", "cmp_runs"):
        base_runs = {
            (r["config"], r["workload"]): r for r in base.get(key, [])
        }
        for run in fresh.get(key, []):
            ref = base_runs.get((run["config"], run["workload"]))
            if ref is None:
                continue
            old = ref.get("sampled_seconds", 0)
            new = run.get("sampled_seconds", 0)
            if old > 0 and new > old * (1.0 + threshold):
                yield (f"{run['config']}/{run['workload']}",
                       "sampled_seconds", old, new)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline-dir", required=True,
                        help="directory holding the main-branch artifact")
    parser.add_argument("--fresh-dir", required=True,
                        help="directory holding this run's BENCH_*.json")
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="fractional regression that fails (default .15)")
    parser.add_argument("files", nargs="*",
                        help="file names to compare (default: BENCH_*.json "
                             "present in --fresh-dir)")
    args = parser.parse_args()

    names = args.files or sorted(
        f for f in os.listdir(args.fresh_dir)
        if f.startswith("BENCH_") and f.endswith(".json"))
    if not names:
        print("bench_compare: no BENCH_*.json in", args.fresh_dir)
        return 0

    regressions = []
    compared = 0
    for name in names:
        fresh_path = os.path.join(args.fresh_dir, name)
        base_path = os.path.join(args.baseline_dir, name)
        if not os.path.exists(fresh_path):
            print(f"bench_compare: {name}: missing fresh file, skipping")
            continue
        if not os.path.exists(base_path):
            # Baseline artifacts live inside subdirectories when fetched
            # with `gh run download` without -n; look one level deep.
            nested = [
                os.path.join(args.baseline_dir, d, name)
                for d in (os.listdir(args.baseline_dir)
                          if os.path.isdir(args.baseline_dir) else [])
            ]
            base_path = next((p for p in nested if os.path.exists(p)), None)
        if base_path is None or not os.path.exists(base_path):
            print(f"bench_compare: {name}: no baseline from main yet - "
                  f"warn-only (the fresh artifact becomes the baseline)")
            continue

        base, fresh = load(base_path), load(fresh_path)
        compared += 1
        compare = (compare_google_benchmark
                   if "benchmarks" in fresh else compare_sampling)
        for bench, metric, old, new in compare(base, fresh, args.threshold):
            regressions.append((name, bench, metric, old, new))

    for name, bench, metric, old, new in regressions:
        print(f"REGRESSION {name} {bench}: {metric} "
              f"{old:.4g} -> {new:.4g} ({pct(new, old):+.1f}%)")
    if regressions:
        print(f"bench_compare: {len(regressions)} regression(s) beyond "
              f"{100 * args.threshold:.0f}% - failing the gate")
        return 1
    print(f"bench_compare: {compared} file(s) compared, no regression "
          f"beyond {100 * args.threshold:.0f}%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
