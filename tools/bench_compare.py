#!/usr/bin/env python3
"""Perf-regression gate over the bench metrics store.

Every perf source CI produces is normalised into ONE schema — a SQLite
`metrics` table of (file, name, metric, value, direction) rows:

* google-benchmark JSON (BENCH_engine.json, BENCH_hotpath.json):
  per-benchmark items_per_second (higher is better) when present, else
  real_time (lower is better).
* micro_sampling JSON (BENCH_sampling.json): median_speedup /
  median_speedup_cmp (higher) plus per-run sampled wall seconds (lower).
* sweep JSON-lines rows (*.jsonl, e.g. a merge_tool output): host
  throughput sim_instructions_per_second per config/workload (higher).

The fresh run's metrics are always written to --db (default
<fresh-dir>/bench.sqlite) so the uploaded artifact IS the next baseline.
Comparison order, preserving the historical warn-without-baseline
contract:

1. baseline dir holds a bench.sqlite  -> store-vs-store SQL join (the gate)
2. only legacy BENCH_*.json baselines -> compare against their extracted
   metrics (one-release fallback so the first store-backed run on a branch
   still gates instead of warning)
3. no baseline at all                 -> warn and exit 0; the fresh
   artifact becomes the baseline

A metric regressing beyond --threshold (default 15%) in its bad direction
fails the gate (exit 1).
"""

import argparse
import json
import os
import sqlite3
import sys

SCHEMA = """
CREATE TABLE IF NOT EXISTS metrics (
  file TEXT NOT NULL,      -- source file name (BENCH_engine.json, ...)
  name TEXT NOT NULL,      -- benchmark / config/workload identifier
  metric TEXT NOT NULL,    -- items_per_second, sampled_seconds, ...
  value REAL NOT NULL,
  direction TEXT NOT NULL CHECK (direction IN ('higher', 'lower')),
  PRIMARY KEY (file, name, metric)
);
"""


def pct(new, old):
    return 100.0 * (new - old) / old if old else 0.0


# ---------------------------------------------------------------------------
# Extraction: every source shape -> (name, metric, value, direction) rows.
# ---------------------------------------------------------------------------

def extract_google_benchmark(doc):
    for bench in doc.get("benchmarks", []):
        if bench.get("run_type", "iteration") != "iteration":
            continue
        if "items_per_second" in bench:
            yield bench["name"], "items_per_second", \
                bench["items_per_second"], "higher"
        elif "real_time" in bench:
            yield bench["name"], "real_time", bench["real_time"], "lower"


def extract_sampling(doc):
    for metric in ("median_speedup", "median_speedup_cmp"):
        if doc.get(metric, 0) > 0:
            yield "micro_sampling", metric, doc[metric], "higher"
    for key in ("runs", "cmp_runs"):
        for run in doc.get(key, []):
            seconds = run.get("sampled_seconds", 0)
            if seconds > 0:
                yield (f"{run['config']}/{run['workload']}",
                       "sampled_seconds", seconds, "lower")


def extract_sweep_rows(path):
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            row = json.loads(line)
            if row.get("status", "ok") != "ok":
                continue
            rate = row.get("sim_instructions_per_second", 0)
            if rate > 0:
                name = (f"{row['config']}/{row['workload']}"
                        f"/r{row.get('replicate', 0)}")
                yield name, "sim_instructions_per_second", rate, "higher"


def extract_file(path):
    """Rows for one source file, dispatched on shape."""
    if path.endswith(".jsonl"):
        yield from extract_sweep_rows(path)
        return
    with open(path) as f:
        doc = json.load(f)
    if "benchmarks" in doc:
        yield from extract_google_benchmark(doc)
    else:
        yield from extract_sampling(doc)


# ---------------------------------------------------------------------------
# Store plumbing.
# ---------------------------------------------------------------------------

def write_store(db_path, named_rows):
    db = sqlite3.connect(db_path)
    with db:
        db.executescript(SCHEMA)
        db.execute("DELETE FROM metrics")
        db.executemany("INSERT INTO metrics VALUES (?, ?, ?, ?, ?)",
                       named_rows)
    return db


def find_baseline(baseline_dir, filename):
    """The baseline file, looking one level deep too: `gh run download`
    without -n unpacks artifacts into subdirectories."""
    if not os.path.isdir(baseline_dir):
        return None
    direct = os.path.join(baseline_dir, filename)
    if os.path.exists(direct):
        return direct
    for entry in sorted(os.listdir(baseline_dir)):
        nested = os.path.join(baseline_dir, entry, filename)
        if os.path.exists(nested):
            return nested
    return None


def regressions_between(fresh_rows, base_rows, threshold):
    base = {(f, n, m): v for f, n, m, v, _ in base_rows}
    for file, name, metric, new, direction in fresh_rows:
        old = base.get((file, name, metric))
        if old is None or old <= 0:
            continue
        bad = (new < old * (1.0 - threshold) if direction == "higher"
               else new > old * (1.0 + threshold))
        if bad:
            yield file, name, metric, old, new


def main():
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--baseline-dir", required=True,
                        help="directory holding the main-branch artifact")
    parser.add_argument("--fresh-dir", required=True,
                        help="directory holding this run's perf sources")
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="fractional regression that fails (default .15)")
    parser.add_argument("--db", default=None,
                        help="metrics store to write (default "
                             "<fresh-dir>/bench.sqlite)")
    parser.add_argument("files", nargs="*",
                        help="source file names (default: BENCH_*.json in "
                             "--fresh-dir)")
    args = parser.parse_args()

    names = args.files or sorted(
        f for f in os.listdir(args.fresh_dir)
        if f.startswith("BENCH_") and f.endswith(".json"))
    if not names:
        print("bench_compare: no perf sources in", args.fresh_dir)
        return 0

    # Extract the fresh run into the store, unconditionally: the uploaded
    # bench.sqlite is the next run's baseline even if this gate fails.
    fresh_rows = []
    for name in names:
        path = os.path.join(args.fresh_dir, name)
        if not os.path.exists(path):
            print(f"bench_compare: {name}: missing fresh file, skipping")
            continue
        fresh_rows.extend((name, bench, metric, value, direction)
                          for bench, metric, value, direction
                          in extract_file(path))
    db_path = args.db or os.path.join(args.fresh_dir, "bench.sqlite")
    write_store(db_path, fresh_rows)
    print(f"bench_compare: {len(fresh_rows)} metrics from "
          f"{len(names)} source(s) -> {db_path}")

    # 1) Store-backed baseline.
    base_store = find_baseline(args.baseline_dir, "bench.sqlite")
    base_rows = None
    if base_store is not None:
        db = sqlite3.connect(base_store)
        base_rows = db.execute(
            "SELECT file, name, metric, value, direction "
            "FROM metrics").fetchall()
        print(f"bench_compare: baseline store {base_store} "
              f"({len(base_rows)} metrics)")
    else:
        # 2) Legacy per-file JSON baselines (one-release fallback: lets the
        # first store-backed run gate against the last pre-store artifact).
        legacy = []
        for name in names:
            base_path = find_baseline(args.baseline_dir, name)
            if base_path is None:
                print(f"bench_compare: {name}: no baseline from main yet - "
                      f"warn-only (the fresh artifact becomes the baseline)")
                continue
            legacy.extend((name, bench, metric, value, direction)
                          for bench, metric, value, direction
                          in extract_file(base_path))
        if legacy:
            base_rows = legacy
            print(f"bench_compare: legacy JSON baseline "
                  f"({len(legacy)} metrics)")

    if base_rows is None:
        # 3) Nothing to gate against: the contract is warn, not red.
        print("bench_compare: no baseline at all - warn-only")
        return 0

    failures = list(regressions_between(fresh_rows, base_rows,
                                        args.threshold))
    for file, name, metric, old, new in failures:
        print(f"REGRESSION {file} {name}: {metric} "
              f"{old:.4g} -> {new:.4g} ({pct(new, old):+.1f}%)")
    if failures:
        print(f"bench_compare: {len(failures)} regression(s) beyond "
              f"{100 * args.threshold:.0f}% - failing the gate")
        return 1
    print(f"bench_compare: {len(fresh_rows)} metric(s) compared, no "
          f"regression beyond {100 * args.threshold:.0f}%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
