#include "src/trace/scenarios.h"

#include "src/common/rng.h"

#include <stdexcept>

namespace lnuca::trace {

namespace {

constexpr std::uint32_t k_block_bytes = 32;

addr_t block_addr(addr_t base, std::uint64_t block)
{
    return base + block * k_block_bytes;
}

/// Builds one lane: shared-region touches interleaved with filler
/// instructions (ALU with geometric-ish dependences, biased branches, and
/// private-region memory operations) so the cores have real pipeline work
/// between coherence events.
class lane_builder {
public:
    lane_builder(const scenario_params& params, unsigned lane)
        : params_(params), rng_(rng::split(params.seed, 0x5ce9a0ULL, lane)),
          private_base_(0x10000000 + addr_t(lane) * 0x04000000ULL)
    {
    }

    void load(addr_t addr) { memory_op(cpu::op_class::load, addr); }
    void store(addr_t addr) { memory_op(cpu::op_class::store, addr); }

    void load_shared(std::uint64_t block)
    {
        load(block_addr(params_.shared_base,
                        block % params_.shared_blocks));
    }

    void store_shared(std::uint64_t block)
    {
        store(block_addr(params_.shared_base,
                         block % params_.shared_blocks));
    }

    /// `count` filler instructions: think-time between shared touches.
    void filler(std::uint64_t count)
    {
        for (std::uint64_t i = 0; i < count; ++i) {
            if (rng_.chance(params_.private_fraction)) {
                const addr_t addr = block_addr(
                    private_base_, rng_.below(params_.private_blocks));
                memory_op(rng_.chance(0.25) ? cpu::op_class::store
                                            : cpu::op_class::load,
                          addr + 8 * rng_.below(k_block_bytes / 8));
            } else if (rng_.chance(0.15)) {
                cpu::instruction inst;
                inst.op = cpu::op_class::branch;
                inst.pc = 0x400000 + 4 * 64 * (1 + rng_.below(16));
                inst.taken = rng_.chance(0.9);
                inst.dep[0] = dep();
                push(inst);
            } else {
                cpu::instruction inst;
                inst.op = cpu::op_class::int_alu;
                inst.dep[0] = dep();
                if (rng_.chance(0.35))
                    inst.dep[1] = dep();
                push(inst);
            }
        }
    }

    std::uint64_t size() const { return records_.size(); }
    std::vector<trace_record> take() { return std::move(records_); }

private:
    void memory_op(cpu::op_class op, addr_t addr)
    {
        cpu::instruction inst;
        inst.op = op;
        inst.addr = addr;
        inst.size = 8;
        inst.dep[0] = dep();
        push(inst);
    }

    std::uint32_t dep() { return std::uint32_t(1 + rng_.below(8)); }

    void push(cpu::instruction inst)
    {
        pc_ += 4;
        if (inst.pc == 0)
            inst.pc = pc_;
        records_.push_back(encode(inst));
    }

    const scenario_params& params_;
    rng rng_;
    addr_t private_base_;
    addr_t pc_ = 0x400000;
    std::vector<trace_record> records_;
};

/// Pad every lane with filler to the longest lane's length, keeping the
/// relative interleave stable when lanes wrap (streams are infinite).
std::vector<std::vector<trace_record>>
equalise(std::vector<lane_builder>& lanes)
{
    std::uint64_t longest = 0;
    for (const lane_builder& lane : lanes)
        longest = std::max(longest, lane.size());
    std::vector<std::vector<trace_record>> out;
    for (lane_builder& lane : lanes) {
        lane.filler(longest - lane.size());
        out.push_back(lane.take());
    }
    return out;
}

std::vector<lane_builder> make_builders(const scenario_params& params)
{
    std::vector<lane_builder> lanes;
    lanes.reserve(params.cores);
    for (unsigned i = 0; i < params.cores; ++i)
        lanes.emplace_back(params, i);
    return lanes;
}

/// Lane 0 writes a phase_len-block chunk per round; every other lane reads
/// the chunk the producer finished one round earlier - the hand-off keeps
/// consumer loads landing on peer-dirty lines (c2c forwards, loads_peer).
std::vector<std::vector<trace_record>>
producer_consumer(const scenario_params& params)
{
    auto lanes = make_builders(params);
    // One produced round of lead time, so a consumer reaches chunk k while
    // the producer is already writing chunk k+1 (not racing chunk k).
    const std::uint64_t round_len =
        params.phase_len * (1 + params.gap / params.phase_len);
    for (unsigned lane = 1; lane < params.cores; ++lane)
        lanes[lane].filler(round_len);
    for (std::uint64_t round = 0; round < params.rounds; ++round) {
        const std::uint64_t chunk = std::uint64_t(round) * params.phase_len;
        for (unsigned b = 0; b < params.phase_len; ++b) {
            lanes[0].store_shared(chunk + b);
            lanes[0].filler(params.gap / params.phase_len);
        }
        if (round == 0)
            continue; // nothing produced yet for the consumers
        const std::uint64_t behind = chunk - params.phase_len;
        for (unsigned lane = 1; lane < params.cores; ++lane) {
            for (unsigned b = 0; b < params.phase_len; ++b) {
                lanes[lane].load_shared(behind + b);
                lanes[lane].filler(params.gap / params.phase_len);
            }
        }
    }
    return equalise(lanes);
}

/// One lock line bounces between cores: each round is acquire (load),
/// update (store), think time. Lanes are staggered so the line is in a
/// peer's Modified state at almost every acquire - the canonical
/// invalidation + cache-to-cache ping-pong.
std::vector<std::vector<trace_record>>
ping_pong(const scenario_params& params)
{
    auto lanes = make_builders(params);
    for (unsigned lane = 0; lane < params.cores; ++lane)
        lanes[lane].filler(std::uint64_t(lane) * params.gap / params.cores);
    for (std::uint64_t round = 0; round < params.rounds; ++round) {
        for (unsigned lane = 0; lane < params.cores; ++lane) {
            lanes[lane].load_shared(0);
            lanes[lane].store_shared(0);
            lanes[lane].filler(params.gap);
        }
    }
    return equalise(lanes);
}

/// Independent per-core counters that happen to share one 32-byte line:
/// core i read-modify-writes word (i mod 4) of block 0. No data is shared,
/// yet every store upgrades/invalidates - coherence traffic with zero true
/// communication.
std::vector<std::vector<trace_record>>
false_sharing(const scenario_params& params)
{
    auto lanes = make_builders(params);
    for (unsigned lane = 0; lane < params.cores; ++lane)
        lanes[lane].filler(std::uint64_t(lane) * params.gap / params.cores);
    for (std::uint64_t round = 0; round < params.rounds; ++round) {
        for (unsigned lane = 0; lane < params.cores; ++lane) {
            const addr_t word =
                params.shared_base + 8 * (lane % (k_block_bytes / 8));
            lanes[lane].load(word);
            lanes[lane].store(word);
            lanes[lane].filler(params.gap);
        }
    }
    return equalise(lanes);
}

/// A phase_len-block data structure traverses the cores in turn, each
/// read-modify-writing every block - migratory ownership, all misses
/// served dirty cache-to-cache once warmed.
std::vector<std::vector<trace_record>>
migratory(const scenario_params& params)
{
    auto lanes = make_builders(params);
    for (unsigned lane = 0; lane < params.cores; ++lane)
        lanes[lane].filler(std::uint64_t(lane) * params.gap);
    for (std::uint64_t round = 0; round < params.rounds; ++round) {
        for (unsigned lane = 0; lane < params.cores; ++lane) {
            for (unsigned b = 0; b < params.phase_len; ++b) {
                lanes[lane].load_shared(b);
                lanes[lane].store_shared(b);
            }
            lanes[lane].filler(params.gap);
        }
    }
    return equalise(lanes);
}

/// Read-only sharing: every core streams loads over the same shared
/// region. Lines settle into Shared everywhere; the hub serves peer reads
/// without invalidations - the control case against false_sharing.
std::vector<std::vector<trace_record>>
shared_read(const scenario_params& params)
{
    auto lanes = make_builders(params);
    for (unsigned lane = 0; lane < params.cores; ++lane)
        lanes[lane].filler(std::uint64_t(lane) * params.gap / params.cores);
    for (std::uint64_t round = 0; round < params.rounds; ++round) {
        for (unsigned lane = 0; lane < params.cores; ++lane) {
            for (unsigned b = 0; b < params.phase_len; ++b)
                lanes[lane].load_shared(round * params.phase_len + b);
            lanes[lane].filler(params.gap);
        }
    }
    return equalise(lanes);
}

} // namespace

const std::vector<std::string>& scenario_names()
{
    static const std::vector<std::string> names = {
        "producer_consumer", "ping_pong", "false_sharing", "migratory",
        "shared_read",
    };
    return names;
}

bool is_scenario(const std::string& name)
{
    for (const std::string& candidate : scenario_names())
        if (candidate == name)
            return true;
    return false;
}

std::shared_ptr<trace_data> make_scenario(const std::string& name,
                                          const scenario_params& params)
{
    if (params.cores == 0 || params.rounds == 0 || params.phase_len == 0 ||
        params.shared_blocks == 0)
        throw std::invalid_argument(
            "scenario: cores/rounds/phase_len/shared_blocks must be >= 1");
    std::vector<std::vector<trace_record>> lanes;
    if (name == "producer_consumer")
        lanes = producer_consumer(params);
    else if (name == "ping_pong")
        lanes = ping_pong(params);
    else if (name == "false_sharing")
        lanes = false_sharing(params);
    else if (name == "migratory")
        lanes = migratory(params);
    else if (name == "shared_read")
        lanes = shared_read(params);
    else
        throw std::invalid_argument("unknown scenario '" + name + "'");
    return trace_data::from_lanes("scenario:" + name, /*floating_point=*/false,
                                  std::move(lanes));
}

} // namespace lnuca::trace
