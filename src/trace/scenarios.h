// Programmatic shared-memory scenario library: generates multi-lane trace
// sets exhibiting the coherence-bound access patterns multiprogrammed
// synthetic lanes cannot express - producer/consumer hand-off, lock
// ping-pong, false sharing within a line, migratory ownership, and
// read-only sharing. Lanes are deterministic in (name, params) and feed
// the same trace_stream replay path as captured files.
#pragma once

#include "src/trace/trace_data.h"

#include <memory>
#include <string>
#include <vector>

namespace lnuca::trace {

struct scenario_params {
    unsigned cores = 2;
    std::uint64_t seed = 1;
    /// Rounds of the scenario's sharing kernel per lane.
    std::uint64_t rounds = 256;
    /// Filler instructions (ALU/branch/private-region memory) between
    /// consecutive shared-region touches - the coherence "think time".
    unsigned gap = 200;
    /// Blocks handed over per round (producer/consumer chunk, migratory
    /// traversal length).
    unsigned phase_len = 32;
    /// Shared-region placement and extent. Every lane touches this region;
    /// overlap is the point - run it through a lane_spec with a common
    /// region so run_cmp does not re-base it away.
    addr_t shared_base = 0x70000000;
    std::uint64_t shared_blocks = 1024;
    /// Per-lane private working set (disjoint across lanes) the filler
    /// memory operations walk.
    std::uint64_t private_blocks = 2048;
    /// Fraction of filler instructions that are private-region loads/stores.
    double private_fraction = 0.3;
};

/// All scenario names, in a stable order: producer_consumer, ping_pong,
/// false_sharing, migratory, shared_read.
const std::vector<std::string>& scenario_names();

bool is_scenario(const std::string& name);

/// Build the named scenario's lane set (params.cores lanes, equal length).
/// Throws std::invalid_argument for an unknown name.
std::shared_ptr<trace_data> make_scenario(const std::string& name,
                                          const scenario_params& params);

} // namespace lnuca::trace
