// Binary trace format (mmap-able, versioned).
//
// Layout (little-endian, all offsets from the start of the file):
//
//   file_header              64 bytes: magic, version, record size, lane
//                            count, flags, workload name
//   lane_entry[lane_count]   32 bytes each: record/warm-table extents
//   per-lane payloads        8-byte aligned: trace_record[count] and
//                            addr_t warm_table[warm_count]
//
// A record is a fixed 24-byte image of one cpu::instruction - fixed size
// keeps the decoder a single load+copy (no varint branches) and lets a
// lane be mmap-ed and indexed directly. The warm table is the stream's
// pre-warm address sequence (workload_stream::warm_block), captured so a
// replay pre-warms the large arrays with exactly the addresses the live
// run used (bit-identical replay depends on it; see DESIGN.md, "Trace
// format and scenario library").
#pragma once

#include "src/common/types.h"
#include "src/cpu/instruction.h"

#include <cstdint>
#include <cstring>

namespace lnuca::trace {

inline constexpr char k_magic[8] = {'L', 'N', 'T', 'R', 'A', 'C', 'E', '1'};
inline constexpr std::uint32_t k_version = 1;
inline constexpr std::uint32_t k_name_bytes = 40;
inline constexpr std::uint32_t k_max_lanes = 1024;

/// Header flag bits.
inline constexpr std::uint32_t k_flag_floating_point = 1u << 0;

struct file_header {
    char magic[8];
    std::uint32_t version;
    std::uint32_t record_bytes;
    std::uint32_t lane_count;
    std::uint32_t flags;
    char name[k_name_bytes]; ///< NUL-padded workload name
};
static_assert(sizeof(file_header) == 64, "trace header layout drifted");

struct lane_entry {
    std::uint64_t record_offset; ///< bytes from file start, 8-aligned
    std::uint64_t record_count;  ///< >= 1 (streams are infinite via wrap)
    std::uint64_t warm_offset;   ///< 0 when warm_count == 0
    std::uint64_t warm_count;    ///< pre-warm addresses (may be 0)
};
static_assert(sizeof(lane_entry) == 32, "trace lane entry layout drifted");

/// One instruction, packed. Natural alignment, no padding surprises: the
/// decoder reads fields straight out of the mapped file.
struct trace_record {
    std::uint64_t pc;
    std::uint64_t addr;
    std::uint16_t dep0;
    std::uint16_t dep1;
    std::uint8_t op;   ///< cpu::op_class value (validated <= 7 at open)
    std::uint8_t size; ///< access bytes (loads/stores)
    std::uint8_t taken;
    std::uint8_t pad;
};
static_assert(sizeof(trace_record) == 24, "trace record layout drifted");

inline trace_record encode(const cpu::instruction& inst)
{
    trace_record r;
    r.pc = inst.pc;
    r.addr = inst.addr;
    r.dep0 = std::uint16_t(inst.dep[0]);
    r.dep1 = std::uint16_t(inst.dep[1]);
    r.op = std::uint8_t(inst.op);
    r.size = inst.size;
    r.taken = inst.taken ? 1 : 0;
    r.pad = 0;
    return r;
}

/// Branch-light decode: straight field copies, no lookups.
inline cpu::instruction decode(const trace_record& r)
{
    cpu::instruction inst;
    inst.op = cpu::op_class(r.op);
    inst.pc = r.pc;
    inst.addr = r.addr;
    inst.size = r.size;
    inst.taken = r.taken != 0;
    inst.dep[0] = r.dep0;
    inst.dep[1] = r.dep1;
    return inst;
}

} // namespace lnuca::trace
