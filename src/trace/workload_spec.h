// --workload spec parsing shared by exp::run_app and the bench binaries:
//
//   trace:<file>      replay a captured binary trace (src/trace/format.h)
//   scenario:<name>   generate a shared-memory scenario lane set
//   <anything else>   a SPEC CPU2006 proxy name (wl::find_spec2006)
//
// Specs become ordinary workload_profile entries (trace_path / scenario
// fields set), so sweeps, jobs and sinks carry them unchanged and
// hier::system realises the right stream per lane.
#pragma once

#include "src/workloads/profile.h"

#include <optional>
#include <string>
#include <vector>

namespace lnuca::trace {

/// Parse one spec; nullopt for an unknown proxy/scenario or empty path.
std::optional<wl::workload_profile>
parse_workload_spec(const std::string& spec);

/// Parse a comma-separated spec list ("429.mcf,scenario:ping_pong").
/// Returns the profiles, or an empty vector with *bad_spec naming the
/// first offending entry.
std::vector<wl::workload_profile>
parse_workload_list(const std::string& list, std::string* bad_spec);

} // namespace lnuca::trace
