#include "src/trace/trace_writer.h"

#include "src/common/log.h"

#include <cstdio>

namespace lnuca::trace {

namespace {

constexpr std::uint64_t align8(std::uint64_t offset)
{
    return (offset + 7) & ~std::uint64_t(7);
}

} // namespace

trace_writer::trace_writer(std::string path, std::string name,
                           bool floating_point, unsigned lane_count)
    : path_(std::move(path)), name_(std::move(name)),
      floating_point_(floating_point), lanes_(lane_count), warm_(lane_count)
{
}

bool trace_writer::write() const
{
    for (std::size_t i = 0; i < lanes_.size(); ++i) {
        if (lanes_[i].empty()) {
            LNUCA_WARN("trace capture '", path_, "': lane ", i,
                       " captured no instructions; not writing");
            return false;
        }
    }

    file_header header = {};
    std::memcpy(header.magic, k_magic, sizeof k_magic);
    header.version = k_version;
    header.record_bytes = sizeof(trace_record);
    header.lane_count = std::uint32_t(lanes_.size());
    header.flags = floating_point_ ? k_flag_floating_point : 0;
    std::snprintf(header.name, k_name_bytes, "%s", name_.c_str());

    std::vector<lane_entry> table(lanes_.size());
    std::uint64_t offset =
        sizeof(file_header) + lanes_.size() * sizeof(lane_entry);
    for (std::size_t i = 0; i < lanes_.size(); ++i) {
        offset = align8(offset);
        table[i].record_offset = offset;
        table[i].record_count = lanes_[i].size();
        offset += lanes_[i].size() * sizeof(trace_record);
        offset = align8(offset);
        table[i].warm_offset = warm_[i].empty() ? 0 : offset;
        table[i].warm_count = warm_[i].size();
        offset += warm_[i].size() * sizeof(addr_t);
    }

    std::FILE* file = std::fopen(path_.c_str(), "wb");
    if (file == nullptr) {
        LNUCA_WARN("trace capture: cannot open '", path_, "' for writing");
        return false;
    }
    bool ok = std::fwrite(&header, sizeof header, 1, file) == 1 &&
              std::fwrite(table.data(), sizeof(lane_entry), table.size(),
                          file) == table.size();
    std::uint64_t written =
        sizeof(file_header) + lanes_.size() * sizeof(lane_entry);
    const std::uint64_t zero = 0;
    for (std::size_t i = 0; ok && i < lanes_.size(); ++i) {
        const std::uint64_t pad = align8(written) - written;
        ok = ok && (pad == 0 || std::fwrite(&zero, 1, pad, file) == pad);
        ok = ok && std::fwrite(lanes_[i].data(), sizeof(trace_record),
                               lanes_[i].size(), file) == lanes_[i].size();
        written = align8(written) + lanes_[i].size() * sizeof(trace_record);
        if (!warm_[i].empty()) {
            const std::uint64_t wpad = align8(written) - written;
            ok = ok &&
                 (wpad == 0 || std::fwrite(&zero, 1, wpad, file) == wpad);
            ok = ok && std::fwrite(warm_[i].data(), sizeof(addr_t),
                                   warm_[i].size(), file) == warm_[i].size();
            written = align8(written) + warm_[i].size() * sizeof(addr_t);
        }
    }
    ok = std::fclose(file) == 0 && ok;
    if (!ok)
        LNUCA_WARN("trace capture: short write to '", path_, "'");
    return ok;
}

} // namespace lnuca::trace
