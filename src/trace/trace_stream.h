// Zero-allocation trace replay stream. Construction pins one lane of a
// validated trace_data and synthesises a workload_profile from the file
// header; after that, next() is a single indexed load + field copy (the
// whole file was validated at open, so the executed-cycle path carries no
// checks and no allocation - the micro_hotpath gate holds it to that).
#pragma once

#include "src/ckpt/archive.h"
#include "src/trace/trace_data.h"
#include "src/workloads/stream.h"

#include <memory>
#include <utility>

namespace lnuca::trace {

class trace_stream final : public wl::workload_stream {
public:
    /// Replay lane `lane` of `data`. Lane indices wrap modulo the lane
    /// count, so a 2-lane trace drives a 4-core system (cores 2 and 3
    /// re-run lanes 0 and 1 from their own private position).
    trace_stream(std::shared_ptr<const trace_data> data, unsigned lane)
        : data_(std::move(data))
    {
        const trace_data::lane_view& view =
            data_->lane(lane % data_->lane_count());
        records_ = view.records;
        count_ = view.record_count;
        warm_ = view.warm;
        warm_count_ = view.warm_count;
        profile_.name = data_->name();
        profile_.floating_point = data_->floating_point();
    }

    /// Streams are infinite: the lane wraps at its end.
    cpu::instruction next() override
    {
        const trace_record& r = records_[pos_];
        if (++pos_ == count_)
            pos_ = 0;
        return decode(r);
    }

    /// Every field is already materialised in the record, so the
    /// fast-forward variant is the full decode - trivially bit-exact
    /// positioning.
    cpu::instruction warm_next() override { return next(); }

    const wl::workload_profile& profile() const override { return profile_; }

    addr_t warm_block(std::uint64_t backward) const override
    {
        return warm_count_ != 0 ? warm_[backward % warm_count_] : 0;
    }

    std::uint64_t warm_block_count() const override { return warm_count_; }

    std::uint64_t position() const { return pos_; }

    /// Checkpoint hooks: the replay cursor is the lane's entire mutable
    /// state (the mapped trace itself is immutable input).
    void save_state(ckpt::writer& w) const override
    {
        ckpt::saver ar(w);
        ar(pos_);
    }

    void load_state(ckpt::reader& r) override
    {
        ckpt::loader ar(r);
        ar(pos_);
        if (pos_ >= count_)
            throw ckpt::ckpt_error(
                "trace_stream: checkpointed position past end of lane "
                "(different trace file?)");
    }

private:
    std::shared_ptr<const trace_data> data_; ///< keeps the mapping alive
    const trace_record* records_ = nullptr;
    std::uint64_t count_ = 0;
    std::uint64_t pos_ = 0;
    const addr_t* warm_ = nullptr;
    std::uint64_t warm_count_ = 0;
    wl::workload_profile profile_;
};

} // namespace lnuca::trace
