// Immutable, validated trace storage: either an mmap-ed trace file or an
// in-memory lane set (scenario generator output, tests). trace_stream
// views index straight into this storage - opening validates the whole
// file once so the per-instruction decode path carries no checks.
#pragma once

#include "src/trace/format.h"

#include <memory>
#include <string>
#include <vector>

namespace lnuca::trace {

class trace_data {
public:
    struct lane_view {
        const trace_record* records = nullptr;
        std::uint64_t record_count = 0;
        const addr_t* warm = nullptr;
        std::uint64_t warm_count = 0;
    };

    /// mmap `path` and validate header, lane table, bounds, and every
    /// record's op code. Throws std::runtime_error naming the defect.
    static std::shared_ptr<trace_data> open(const std::string& path);

    /// Adopt in-memory lanes (scenario generator, tests). `warm` may be
    /// empty or per-lane; every lane needs at least one record.
    static std::shared_ptr<trace_data>
    from_lanes(std::string name, bool floating_point,
               std::vector<std::vector<trace_record>> lanes,
               std::vector<std::vector<addr_t>> warm = {});

    ~trace_data();
    trace_data(const trace_data&) = delete;
    trace_data& operator=(const trace_data&) = delete;

    unsigned lane_count() const { return unsigned(lanes_.size()); }
    const lane_view& lane(unsigned i) const { return lanes_[i]; }
    const std::string& name() const { return name_; }
    bool floating_point() const { return floating_point_; }
    std::uint64_t total_records() const;

private:
    trace_data() = default;

    std::string name_;
    bool floating_point_ = false;
    std::vector<lane_view> lanes_;

    // Backing storage: exactly one of the two is populated.
    void* map_ = nullptr; ///< mmap base (file-backed)
    std::size_t map_bytes_ = 0;
    std::vector<std::vector<trace_record>> owned_; ///< in-memory lanes
    std::vector<std::vector<addr_t>> owned_warm_;
};

} // namespace lnuca::trace
