// Trace capture: trace_writer accumulates per-lane records and emits the
// binary format of format.h; capture_stream is a transparent decorator that
// records every instruction a live stream hands out (next() and warm_next()
// alike, so a capture under sampled execution still serialises the exact
// consumed sequence) plus the stream's pre-warm table, snapshotted at
// construction - the state a replay needs to pre-warm bit-identically.
#pragma once

#include "src/ckpt/format.h"
#include "src/trace/format.h"
#include "src/workloads/stream.h"

#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace lnuca::trace {

/// Cap on the captured pre-warm table. Larger than the deepest backward
/// index any shipped hierarchy pre-warms (8 MB / 32 B = 2^18 blocks), so
/// truncation never changes a replay; bounds the table for the huge
/// synthetic footprints, whose warm sequence wraps with exactly this
/// modulo anyway (warm_block_count() is the period).
inline constexpr std::uint64_t k_max_warm_entries = 1ull << 19;

class trace_writer {
public:
    trace_writer(std::string path, std::string name, bool floating_point,
                 unsigned lane_count);

    void append(unsigned lane, const cpu::instruction& inst)
    {
        lanes_[lane].push_back(encode(inst));
    }

    /// Copy an already-encoded record (trace_tool gen: serialising an
    /// in-memory scenario lane set without a decode/encode round trip).
    void append_raw(unsigned lane, const trace_record& record)
    {
        lanes_[lane].push_back(record);
    }

    void set_warm_table(unsigned lane, std::vector<addr_t> warm)
    {
        warm_[lane] = std::move(warm);
    }

    /// Re-label the capture once the lanes' resolved profiles are known
    /// (the replay takes name/floating_point from the header, so run
    /// labels match the captured run).
    void set_workload(std::string name, bool floating_point)
    {
        name_ = std::move(name);
        floating_point_ = floating_point;
    }

    /// Emit the file. Returns false (after LNUCA_WARN) on I/O failure or if
    /// any lane captured no records - a trace with an empty lane could not
    /// replay (streams are infinite via wrap).
    bool write() const;

    const std::string& path() const { return path_; }
    std::uint64_t records(unsigned lane) const { return lanes_[lane].size(); }

private:
    std::string path_;
    std::string name_;
    bool floating_point_ = false;
    std::vector<std::vector<trace_record>> lanes_;
    std::vector<std::vector<addr_t>> warm_;
};

/// Wraps the stream a core consumes and mirrors everything into `writer`
/// lane `lane`. The writer must outlive the stream.
class capture_stream final : public wl::workload_stream {
public:
    capture_stream(std::unique_ptr<wl::workload_stream> inner,
                   trace_writer& writer, unsigned lane)
        : inner_(std::move(inner)), writer_(writer), lane_(lane)
    {
        const std::uint64_t count =
            std::min(inner_->warm_block_count(), k_max_warm_entries);
        if (count != 0) {
            std::vector<addr_t> warm(count);
            for (std::uint64_t j = 0; j < count; ++j)
                warm[j] = inner_->warm_block(j);
            writer_.set_warm_table(lane_, std::move(warm));
        }
    }

    cpu::instruction next() override
    {
        const cpu::instruction inst = inner_->next();
        writer_.append(lane_, inst);
        return inst;
    }

    cpu::instruction warm_next() override
    {
        const cpu::instruction inst = inner_->warm_next();
        writer_.append(lane_, inst);
        return inst;
    }

    const wl::workload_profile& profile() const override
    {
        return inner_->profile();
    }

    addr_t warm_block(std::uint64_t backward) const override
    {
        return inner_->warm_block(backward);
    }

    std::uint64_t warm_block_count() const override
    {
        return inner_->warm_block_count();
    }

    /// Capture and checkpointing are mutually exclusive (run_app rejects
    /// the flag combination): a restored capture would re-emit only the
    /// post-restore suffix, silently producing a truncated trace.
    void save_state(ckpt::writer&) const override
    {
        throw ckpt::ckpt_error(
            "capture_stream: trace capture cannot be checkpointed");
    }

    void load_state(ckpt::reader&) override
    {
        throw ckpt::ckpt_error(
            "capture_stream: trace capture cannot be restored");
    }

private:
    std::unique_ptr<wl::workload_stream> inner_;
    trace_writer& writer_;
    unsigned lane_;
};

} // namespace lnuca::trace
