#include "src/trace/trace_data.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <stdexcept>

namespace lnuca::trace {

namespace {

[[noreturn]] void fail(const std::string& path, const std::string& what)
{
    throw std::runtime_error("trace '" + path + "': " + what);
}

} // namespace

std::shared_ptr<trace_data> trace_data::open(const std::string& path)
{
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0)
        fail(path, "cannot open");
    struct stat st = {};
    if (::fstat(fd, &st) != 0 || st.st_size < off_t(sizeof(file_header))) {
        ::close(fd);
        fail(path, "not a trace file (too small)");
    }
    const std::size_t bytes = std::size_t(st.st_size);
    void* map = ::mmap(nullptr, bytes, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd); // the mapping keeps its own reference
    if (map == MAP_FAILED)
        fail(path, "mmap failed");

    auto data = std::shared_ptr<trace_data>(new trace_data);
    data->map_ = map;
    data->map_bytes_ = bytes;

    const char* base = static_cast<const char*>(map);
    file_header header;
    std::memcpy(&header, base, sizeof header);
    if (std::memcmp(header.magic, k_magic, sizeof k_magic) != 0)
        fail(path, "bad magic");
    if (header.version != k_version)
        fail(path, "unsupported version " + std::to_string(header.version));
    if (header.record_bytes != sizeof(trace_record))
        fail(path, "record size mismatch");
    if (header.lane_count == 0 || header.lane_count > k_max_lanes)
        fail(path, "lane count " + std::to_string(header.lane_count) +
                       " out of range");
    header.name[k_name_bytes - 1] = '\0';
    data->name_ = header.name;
    data->floating_point_ = (header.flags & k_flag_floating_point) != 0;

    const std::size_t table_end =
        sizeof(file_header) + std::size_t(header.lane_count) * sizeof(lane_entry);
    if (table_end > bytes)
        fail(path, "truncated lane table");

    for (std::uint32_t i = 0; i < header.lane_count; ++i) {
        lane_entry entry;
        std::memcpy(&entry, base + sizeof(file_header) + i * sizeof(lane_entry),
                    sizeof entry);
        const std::string lane_tag = "lane " + std::to_string(i);
        if (entry.record_count == 0)
            fail(path, lane_tag + " is empty");
        if (entry.record_offset % alignof(trace_record) != 0 ||
            entry.record_offset < table_end ||
            entry.record_offset + entry.record_count * sizeof(trace_record) >
                bytes)
            fail(path, lane_tag + " records out of bounds");
        if (entry.warm_count != 0 &&
            (entry.warm_offset % alignof(addr_t) != 0 ||
             entry.warm_offset < table_end ||
             entry.warm_offset + entry.warm_count * sizeof(addr_t) > bytes))
            fail(path, lane_tag + " warm table out of bounds");

        lane_view view;
        view.records = reinterpret_cast<const trace_record*>(
            base + entry.record_offset);
        view.record_count = entry.record_count;
        if (entry.warm_count != 0) {
            view.warm = reinterpret_cast<const addr_t*>(base + entry.warm_offset);
            view.warm_count = entry.warm_count;
        }
        // Validate every op code once here so decode stays branch-light.
        for (std::uint64_t r = 0; r < view.record_count; ++r)
            if (view.records[r].op > std::uint8_t(cpu::op_class::branch))
                fail(path, lane_tag + " record " + std::to_string(r) +
                               " has invalid op " +
                               std::to_string(view.records[r].op));
        data->lanes_.push_back(view);
    }
    return data;
}

std::shared_ptr<trace_data>
trace_data::from_lanes(std::string name, bool floating_point,
                       std::vector<std::vector<trace_record>> lanes,
                       std::vector<std::vector<addr_t>> warm)
{
    if (lanes.empty())
        throw std::invalid_argument("trace_data: no lanes");
    auto data = std::shared_ptr<trace_data>(new trace_data);
    data->name_ = std::move(name);
    data->floating_point_ = floating_point;
    data->owned_ = std::move(lanes);
    data->owned_warm_ = std::move(warm);
    for (std::size_t i = 0; i < data->owned_.size(); ++i) {
        const auto& records = data->owned_[i];
        if (records.empty())
            throw std::invalid_argument("trace_data: lane " +
                                        std::to_string(i) + " is empty");
        lane_view view;
        view.records = records.data();
        view.record_count = records.size();
        if (i < data->owned_warm_.size() && !data->owned_warm_[i].empty()) {
            view.warm = data->owned_warm_[i].data();
            view.warm_count = data->owned_warm_[i].size();
        }
        data->lanes_.push_back(view);
    }
    return data;
}

trace_data::~trace_data()
{
    if (map_ != nullptr)
        ::munmap(map_, map_bytes_);
}

std::uint64_t trace_data::total_records() const
{
    std::uint64_t total = 0;
    for (const lane_view& lane : lanes_)
        total += lane.record_count;
    return total;
}

} // namespace lnuca::trace
