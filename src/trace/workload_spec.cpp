#include "src/trace/workload_spec.h"

#include "src/trace/scenarios.h"
#include "src/workloads/spec2006.h"

namespace lnuca::trace {

std::optional<wl::workload_profile>
parse_workload_spec(const std::string& spec)
{
    if (spec.rfind("trace:", 0) == 0) {
        const std::string path = spec.substr(6);
        if (path.empty())
            return std::nullopt;
        wl::workload_profile profile;
        profile.name = spec; // relabelled from the file header at open
        profile.trace_path = path;
        return profile;
    }
    if (spec.rfind("scenario:", 0) == 0) {
        const std::string name = spec.substr(9);
        if (!is_scenario(name))
            return std::nullopt;
        wl::workload_profile profile;
        profile.name = spec;
        profile.scenario = name;
        return profile;
    }
    return wl::find_spec2006(spec);
}

std::vector<wl::workload_profile>
parse_workload_list(const std::string& list, std::string* bad_spec)
{
    std::vector<wl::workload_profile> out;
    std::size_t begin = 0;
    while (begin <= list.size()) {
        std::size_t end = list.find(',', begin);
        if (end == std::string::npos)
            end = list.size();
        const std::string spec = list.substr(begin, end - begin);
        if (!spec.empty()) {
            if (const auto profile = parse_workload_spec(spec)) {
                out.push_back(*profile);
            } else {
                if (bad_spec != nullptr)
                    *bad_spec = spec;
                return {};
            }
        }
        begin = end + 1;
    }
    if (out.empty() && bad_spec != nullptr)
        *bad_spec = list;
    return out;
}

} // namespace lnuca::trace
