#include "src/power/energy_model.h"

#include "src/power/technology.h"

namespace lnuca::power {

energy_breakdown compute_energy(const energy_inputs& in)
{
    const double seconds = double(in.cycles) * cycle_seconds;
    energy_breakdown out;

    // --- Static ------------------------------------------------------------
    out.static_l1_j = l1_32k.leakage_w * seconds;
    if (in.has_l2)
        out.static_storage_j += l2_256k.leakage_w * seconds;
    out.static_storage_j += in.fabric_tiles * lnuca_tile_8k.leakage_w * seconds;
    if (in.has_l3)
        out.static_l3_j += l3_8m.leakage_w * seconds;
    out.static_l3_j += in.dnuca_banks * dnuca_bank_256k.leakage_w * seconds;

    // --- Dynamic -----------------------------------------------------------
    double dyn = 0.0;
    dyn += double(in.l1_accesses) * l1_32k.read_energy_j;
    dyn += double(in.l2_accesses) * l2_256k.read_energy_j;

    // Tile tag lookups touch only the tag path (~a quarter of a full access
    // for these small arrays; the paper notes tag compare dominates delay,
    // not energy); hits/installs pay the full array access.
    dyn += double(in.tile_tag_lookups) * 0.25 * lnuca_tile_8k.read_energy_j;
    dyn += double(in.tile_data_accesses) * lnuca_tile_8k.read_energy_j;
    dyn += double(in.transport_hops) *
           (lnuca_link_hop_j + lnuca_buffer_j + lnuca_crossbar_j);
    dyn += double(in.replacement_hops) * (lnuca_link_hop_j + lnuca_buffer_j);
    dyn += double(in.search_hops) * search_hop_j;

    dyn += double(in.l3_accesses) * l3_8m.read_energy_j;
    dyn += double(in.bank_accesses) * dnuca_bank_256k.read_energy_j;
    dyn += double(in.dnuca_flit_hops) * (vc_router_flit_j + mesh_link_flit_j);
    dyn += double(in.memory_transfers) * memory_access_j;

    out.dynamic_j = dyn;
    return out;
}

} // namespace lnuca::power
