#include "src/power/area_model.h"

#include "src/common/types.h"

#include <cmath>

namespace lnuca::power {

namespace {
// Calibration against Table II (see header): 32 nm HP SRAM.
constexpr double k_per_bit_floor_um2 = 0.264; ///< large-array asymptote
constexpr double k_periphery_um2 = 0.763;     ///< small-array inflation
constexpr double k_assoc_per_way = 0.01;      ///< extra way compare/mux cost
constexpr double k_two_port_factor = 2.4;     ///< dual-ported cell + wiring

// Network components (32B datapaths between abutting small tiles).
constexpr double k_link_mm2 = 0.00055;     ///< one unidirectional 32B link
constexpr double k_buffer_mm2 = 0.00070;   ///< one two-entry 32B buffer
constexpr double k_crossbar_mm2 = 0.00095; ///< per-tile cut-through crossbar
constexpr double k_search_link_mm2 = 0.00012; ///< address-wide tree segment
} // namespace

double sram_area_mm2(std::uint64_t size_bytes, unsigned ways, unsigned ports)
{
    const double bits = double(size_bytes) * 8.0;
    const double size_kb = double(size_bytes) / 1024.0;
    const double per_bit = k_per_bit_floor_um2 + k_periphery_um2 / std::sqrt(size_kb);
    const double assoc = 1.0 + k_assoc_per_way * (ways > 2 ? ways - 2 : 0);
    const double port = ports >= 2 ? k_two_port_factor : 1.0;
    return bits * per_bit * assoc * port / 1e6;
}

double fabric_network_area_mm2(const fabric::geometry& geo)
{
    const unsigned data_links =
        geo.transport_link_count() + geo.replacement_link_count();
    // One receive buffer per data link, plus the root arrival buffers.
    const unsigned buffers =
        data_links + unsigned(geo.root_transport_inputs().size());
    const unsigned crossbars = geo.tile_count();
    const unsigned search_links = geo.search_link_count();
    return data_links * k_link_mm2 + buffers * k_buffer_mm2 +
           crossbars * k_crossbar_mm2 + search_links * k_search_link_mm2;
}

area_report conventional_l1_l2_area()
{
    area_report r;
    r.l1_mm2 = sram_area_mm2(32_KiB, 4, 2);
    r.storage_mm2 = sram_area_mm2(256_KiB, 8, 1);
    return r;
}

area_report lnuca_area(unsigned levels)
{
    const fabric::geometry geo(levels);
    area_report r;
    r.l1_mm2 = sram_area_mm2(32_KiB, 4, 2);
    r.storage_mm2 = geo.tile_count() * sram_area_mm2(8_KiB, 2, 1);
    r.network_mm2 = fabric_network_area_mm2(geo);
    return r;
}

double dnuca_bank_area_mm2()
{
    return sram_area_mm2(256_KiB, 2, 1);
}

double vc_router_area_mm2()
{
    // 5-port 4-VC wormhole router with 4-flit buffers (Orion-class figure).
    return 0.018;
}

} // namespace lnuca::power
