// Energy accounting for a finished run: static energy integrates each
// structure's leakage over the run time; dynamic energy charges per-event
// costs from the component counters. Produces the stacked breakdown of
// Figs. 4(b) and 5(b): {dynamic, static L1/r-tile, static L2-or-tiles,
// static L3-or-D-NUCA}.
#pragma once

#include "src/common/stats.h"
#include "src/common/types.h"

#include <cstdint>

namespace lnuca::power {

struct energy_breakdown {
    double dynamic_j = 0.0;
    double static_l1_j = 0.0;      ///< L1 / r-tile
    double static_storage_j = 0.0; ///< L2 or the L-NUCA tiles ("RESTT")
    double static_l3_j = 0.0;      ///< L3 or the D-NUCA bank array

    double total() const
    {
        return dynamic_j + static_l1_j + static_storage_j + static_l3_j;
    }
};

/// Inputs harvested from the simulated components after a run. Only the
/// fields relevant to the simulated hierarchy need to be filled in.
struct energy_inputs {
    cycle_t cycles = 0;

    // L1 / r-tile events.
    std::uint64_t l1_accesses = 0;

    // Conventional L2 events (zero in L-NUCA configurations).
    bool has_l2 = false;
    std::uint64_t l2_accesses = 0;

    // L-NUCA fabric events (zero in conventional configurations).
    unsigned fabric_tiles = 0;
    std::uint64_t tile_tag_lookups = 0;
    std::uint64_t tile_data_accesses = 0; ///< extractions + installs
    std::uint64_t transport_hops = 0;
    std::uint64_t replacement_hops = 0;
    std::uint64_t search_hops = 0;

    // L3 events (zero in pure D-NUCA configurations).
    bool has_l3 = false;
    std::uint64_t l3_accesses = 0;

    // D-NUCA events.
    unsigned dnuca_banks = 0;
    std::uint64_t bank_accesses = 0;
    std::uint64_t dnuca_flit_hops = 0;

    // Main memory transfers.
    std::uint64_t memory_transfers = 0;

    /// Checkpoint support: the sampled driver accumulates these across
    /// windows, so they ride in the checkpoint's driver section.
    template <class Ar> void serialize(Ar& ar)
    {
        ar(cycles);
        ar(l1_accesses);
        ar(has_l2);
        ar(l2_accesses);
        std::uint64_t tiles = fabric_tiles;
        ar(tiles);
        fabric_tiles = unsigned(tiles);
        ar(tile_tag_lookups);
        ar(tile_data_accesses);
        ar(transport_hops);
        ar(replacement_hops);
        ar(search_hops);
        ar(has_l3);
        ar(l3_accesses);
        std::uint64_t banks = dnuca_banks;
        ar(banks);
        dnuca_banks = unsigned(banks);
        ar(bank_accesses);
        ar(dnuca_flit_hops);
        ar(memory_transfers);
    }
};

energy_breakdown compute_energy(const energy_inputs& in);

} // namespace lnuca::power
