// Analytical SRAM + network area model ("minicacti").
//
// CACTI 5.3 is not available offline, so this model reproduces its role:
// a per-bit cell area inflated by periphery for small arrays, multiplied
// by port and associativity factors, calibrated against the paper's
// published Table II areas (32 nm, HP transistors). Network area counts
// the fabric's links, buffers and crossbars from the real topology.
#pragma once

#include "src/fabric/geometry.h"

#include <cstdint>

namespace lnuca::power {

/// Area of one SRAM array in mm^2.
double sram_area_mm2(std::uint64_t size_bytes, unsigned ways, unsigned ports);

/// Area of the three L-NUCA networks for a given floorplan: unidirectional
/// 32B links, two-entry link buffers, and per-tile cut-through crossbars.
double fabric_network_area_mm2(const fabric::geometry& geo);

/// Composite areas used by Table II.
struct area_report {
    double l1_mm2 = 0.0;
    double storage_mm2 = 0.0; ///< L2 array or all L-NUCA tiles
    double network_mm2 = 0.0; ///< zero for the conventional hierarchy
    double total() const { return l1_mm2 + storage_mm2 + network_mm2; }
    /// Paper's "network area percentage": share of the fabric (tiles +
    /// networks) occupied by the networks.
    double network_percent() const
    {
        const double fabric = storage_mm2 + network_mm2;
        return fabric <= 0 ? 0.0 : 100.0 * network_mm2 / fabric;
    }
};

area_report conventional_l1_l2_area();
area_report lnuca_area(unsigned levels);

/// One D-NUCA bank + per-node router area (for the Fig. 5 discussion).
double dnuca_bank_area_mm2();
double vc_router_area_mm2();

} // namespace lnuca::power
