// Technology constants (Section IV): 32 nm, 19 FO4 cycle like a Core 2
// E8600 (3.33 GHz), CACTI-5.3-derived per-access energies and leakage
// powers as published in Table I, and Orion-style network event energies.
#pragma once

namespace lnuca::power {

/// Clock: 3.33 GHz -> 0.3 ns per cycle.
inline constexpr double cycle_seconds = 0.3e-9;

/// Per-structure dynamic read-hit energy (J) and leakage power (W),
/// straight from Table I.
struct structure_energy {
    double read_energy_j = 0.0;
    double leakage_w = 0.0;
};

inline constexpr structure_energy l1_32k{21.2e-12, 12.8e-3};
inline constexpr structure_energy l2_256k{47.2e-12, 66.9e-3};
inline constexpr structure_energy lnuca_tile_8k{14.0e-12, 2.2e-3};
inline constexpr structure_energy l3_8m{20.9e-12, 600.0e-3};
inline constexpr structure_energy dnuca_bank_256k{131.2e-12, 33.5e-3};

/// Orion-style network event energies (32 B messages on short local links
/// at 32 nm; same order of magnitude as the router literature the paper
/// cites). Writes are approximated by reads at these sizes.
inline constexpr double lnuca_link_hop_j = 1.1e-12;  ///< 32B over a tile-length link
inline constexpr double lnuca_buffer_j = 0.6e-12;    ///< 2-entry buffer write+read
inline constexpr double lnuca_crossbar_j = 0.9e-12;  ///< cut-through crossbar pass
inline constexpr double search_hop_j = 0.25e-12;     ///< address-wide broadcast hop
inline constexpr double vc_router_flit_j = 3.5e-12;  ///< 5-stage VC router, per flit
inline constexpr double mesh_link_flit_j = 1.8e-12;  ///< bank-length link, per flit

/// Main-memory access energy (J) per 128B transfer (order-of-magnitude
/// DDR3-era value; identical across configurations so it cancels in the
/// paper's normalised comparisons).
inline constexpr double memory_access_j = 2.0e-9;

} // namespace lnuca::power
