#include "src/workloads/spec2006.h"

namespace lnuca::wl {

namespace {

instruction_mix int_mix()
{
    instruction_mix m;
    m.load = 0.24;
    m.store = 0.10;
    m.branch = 0.18;
    m.int_alu = 0.43;
    m.int_mul = 0.03;
    m.fp_add = 0.01;
    m.fp_mul = 0.01;
    m.fp_div = 0.00;
    return m;
}

instruction_mix fp_mix()
{
    instruction_mix m;
    m.load = 0.28;
    m.store = 0.08;
    m.branch = 0.05;
    m.int_alu = 0.24;
    m.int_mul = 0.01;
    m.fp_add = 0.19;
    m.fp_mul = 0.13;
    m.fp_div = 0.02;
    return m;
}

// Capacity landmarks in 32B blocks: L1 holds 1024; the exclusive L-NUCA
// windows end at 2304/4608/7936 (LN2/LN3/LN4 incl. L1); the 256KB L2 ends
// at 8192. Components are placed against these landmarks so that the
// per-level hit ratios land in Table III's ranges: integer codes
// concentrate their beyond-L1 reuse tightly (Le2-heavy), floating-point
// codes spread it deeper (more Le3/Le4 mass).

/// Integer-style reuse ladder. `mid` scales the L2-zone mass, `deep_w` the
/// L3-zone mass at `deep_r`.
std::vector<reuse_component> int_reuse(double hot_w, double hot_r, double mid,
                                       double deep_w, double deep_r)
{
    return {{hot_w, hot_r},
            {0.080 * mid, 1600},
            {0.011 * mid, 3800},
            {0.003 * mid, 6500},
            {deep_w, deep_r}};
}

/// Floating-point-style ladder: same landmarks, flatter across the
/// fabric's outer levels.
std::vector<reuse_component> fp_reuse(double hot_w, double hot_r, double mid,
                                      double deep_w, double deep_r)
{
    return {{hot_w, hot_r},
            {0.034 * mid, 1800},
            {0.026 * mid, 4000},
            {0.018 * mid, 7200},
            {deep_w, deep_r}};
}

workload_profile base_int(std::string name)
{
    workload_profile p;
    p.name = std::move(name);
    p.floating_point = false;
    p.mix = int_mix();
    p.sequential_run = 0.30;
    p.mean_dep_distance = 6.5;
    return p;
}

workload_profile base_fp(std::string name)
{
    workload_profile p;
    p.name = std::move(name);
    p.floating_point = true;
    p.mix = fp_mix();
    p.sequential_run = 0.60;
    p.mean_dep_distance = 13.0;
    p.biased_fraction = 0.95;
    p.bias = 0.97;
    return p;
}

workload_profile make_int(std::string name, double hot_w, double hot_r,
                          double mid, double deep_w, double deep_r,
                          double p_new, std::uint64_t footprint)
{
    workload_profile p = base_int(std::move(name));
    p.reuse = int_reuse(hot_w, hot_r, mid, deep_w, deep_r);
    p.p_new_block = p_new;
    p.footprint_blocks = footprint;
    return p;
}

workload_profile make_fp(std::string name, double hot_w, double hot_r,
                         double mid, double deep_w, double deep_r,
                         double p_new, std::uint64_t footprint)
{
    workload_profile p = base_fp(std::move(name));
    p.reuse = fp_reuse(hot_w, hot_r, mid, deep_w, deep_r);
    p.p_new_block = p_new;
    p.footprint_blocks = footprint;
    return p;
}

std::vector<workload_profile> build_suite()
{
    std::vector<workload_profile> suite;

    // ---------------- Integer (11) ----------------
    {
        auto p = make_int("400.perlbench", 0.72, 450, 0.8, 0.015, 40000,
                          0.003, 1 << 17); // branchy interpreter, warm WS
        p.biased_fraction = 0.80;
        suite.push_back(p);
    }
    {
        auto p = make_int("401.bzip2", 0.68, 500, 1.0, 0.022, 60000, 0.005,
                          1 << 18); // compression, strided
        p.sequential_run = 0.45;
        suite.push_back(p);
    }
    {
        auto p = make_int("403.gcc", 0.66, 550, 1.1, 0.028, 90000, 0.006,
                          1 << 18); // large code/data, irregular
        p.biased_fraction = 0.78;
        suite.push_back(p);
    }
    {
        auto p = make_int("429.mcf", 0.52, 600, 2.2, 0.075, 250000, 0.012,
                          1 << 20); // pointer-chasing, huge WS
        p.pointer_chase = 0.45;
        p.sequential_run = 0.10;
        p.mean_dep_distance = 3.5;
        suite.push_back(p);
    }
    {
        auto p = make_int("445.gobmk", 0.70, 420, 0.9, 0.015, 40000, 0.004,
                          1 << 16); // game tree, hard branches
        p.biased_fraction = 0.65;
        suite.push_back(p);
    }
    {
        auto p = make_int("456.hmmer", 0.78, 350, 0.35, 0.006, 15000, 0.001,
                          1 << 15); // tight loops, L1-resident
        p.mean_dep_distance = 8.0;
        p.biased_fraction = 0.95;
        suite.push_back(p);
    }
    {
        auto p = make_int("458.sjeng", 0.70, 450, 0.9, 0.018, 50000, 0.003,
                          1 << 17); // chess, mispredict-heavy
        p.biased_fraction = 0.68;
        suite.push_back(p);
    }
    {
        auto p = make_int("462.libquantum", 0.55, 700, 1.6, 0.060, 300000,
                          0.015, 1 << 20); // pure streaming over a vector
        p.sequential_run = 0.80;
        p.biased_fraction = 0.97;
        p.mean_dep_distance = 10.0;
        suite.push_back(p);
    }
    {
        auto p = make_int("464.h264ref", 0.72, 400, 0.8, 0.012, 30000, 0.003,
                          1 << 16); // media kernels, strided reuse
        p.sequential_run = 0.55;
        p.mean_dep_distance = 7.0;
        suite.push_back(p);
    }
    {
        auto p = make_int("471.omnetpp", 0.60, 550, 1.7, 0.050, 150000,
                          0.008, 1 << 19); // discrete event sim, pointers
        p.pointer_chase = 0.30;
        p.sequential_run = 0.15;
        p.mean_dep_distance = 4.0;
        suite.push_back(p);
    }
    {
        auto p = make_int("473.astar", 0.62, 500, 1.5, 0.040, 120000, 0.006,
                          1 << 18); // path finding, pointer graph
        p.pointer_chase = 0.35;
        p.biased_fraction = 0.72;
        p.sequential_run = 0.15;
        suite.push_back(p);
    }

    // ---------------- Floating point (17) ----------------
    suite.push_back(make_fp("410.bwaves", 0.55, 650, 1.6, 0.050, 120000,
                            0.010, 1 << 20)); // block-tridiagonal streams
    suite.push_back(make_fp("416.gamess", 0.75, 380, 0.5, 0.008, 15000,
                            0.002, 1 << 15)); // cache-friendly chemistry
    suite.push_back(make_fp("433.milc", 0.52, 700, 1.7, 0.060, 200000,
                            0.012, 1 << 20)); // lattice QCD, strided
    suite.push_back(make_fp("434.zeusmp", 0.60, 600, 1.4, 0.040, 100000,
                            0.007, 1 << 19)); // CFD, blocked stencils
    suite.push_back(make_fp("435.gromacs", 0.70, 450, 0.8, 0.015, 30000,
                            0.003, 1 << 17)); // MD neighbour lists
    suite.push_back(make_fp("436.cactusADM", 0.56, 650, 1.5, 0.045, 120000,
                            0.009, 1 << 19)); // relativity stencil
    suite.push_back(make_fp("437.leslie3d", 0.56, 620, 1.5, 0.042, 110000,
                            0.009, 1 << 19)); // CFD streaming with tiles
    suite.push_back(make_fp("444.namd", 0.73, 400, 0.6, 0.010, 20000, 0.002,
                            1 << 16)); // MD kernels, mostly resident
    {
        auto p = make_fp("447.dealII", 0.64, 500, 1.2, 0.025, 70000, 0.005,
                         1 << 18); // FEM, mixed pointer/stream
        p.pointer_chase = 0.10;
        suite.push_back(p);
    }
    {
        auto p = make_fp("450.soplex", 0.56, 580, 1.5, 0.045, 150000, 0.009,
                         1 << 19); // sparse LP solver
        p.sequential_run = 0.40;
        p.pointer_chase = 0.15;
        suite.push_back(p);
    }
    {
        auto p = make_fp("453.povray", 0.76, 320, 0.4, 0.006, 12000, 0.001,
                         1 << 14); // ray tracing, small WS, branchy
        p.mix.branch = 0.12;
        p.biased_fraction = 0.80;
        suite.push_back(p);
    }
    suite.push_back(make_fp("454.calculix", 0.64, 500, 1.2, 0.025, 75000,
                            0.005, 1 << 18)); // FEM solver
    suite.push_back(make_fp("459.GemsFDTD", 0.53, 680, 1.6, 0.055, 180000,
                            0.011, 1 << 20)); // FDTD streaming stencil
    suite.push_back(make_fp("465.tonto", 0.71, 420, 0.8, 0.014, 25000,
                            0.003, 1 << 16)); // quantum chemistry
    {
        auto p = make_fp("470.lbm", 0.50, 750, 1.7, 0.065, 300000, 0.015,
                         1 << 20); // lattice Boltzmann, pure streaming
        p.sequential_run = 0.85;
        p.mix.branch = 0.02;
        suite.push_back(p);
    }
    suite.push_back(make_fp("481.wrf", 0.61, 550, 1.3, 0.030, 90000, 0.006,
                            1 << 18)); // weather model, mixed kernels
    {
        auto p = make_fp("482.sphinx3", 0.59, 560, 1.4, 0.033, 100000,
                         0.007, 1 << 18); // speech recognition
        p.mix.branch = 0.08;
        suite.push_back(p);
    }

    return suite;
}

} // namespace

const std::vector<workload_profile>& spec2006_suite()
{
    static const std::vector<workload_profile> suite = build_suite();
    return suite;
}

std::vector<workload_profile> spec2006_int()
{
    std::vector<workload_profile> out;
    for (const auto& p : spec2006_suite())
        if (!p.floating_point)
            out.push_back(p);
    return out;
}

std::vector<workload_profile> spec2006_fp()
{
    std::vector<workload_profile> out;
    for (const auto& p : spec2006_suite())
        if (p.floating_point)
            out.push_back(p);
    return out;
}

std::optional<workload_profile> find_spec2006(const std::string& name)
{
    for (const auto& p : spec2006_suite())
        if (p.name == name)
            return p;
    return std::nullopt;
}

} // namespace lnuca::wl
