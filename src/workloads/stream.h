// Workload-facing extension of cpu::instruction_stream: every front-end
// source the hierarchy driver can run (synthetic generators, binary trace
// replays, scenario lanes) exposes its profile and an optional pre-warm
// address table, so hier::system composes with any of them - including the
// PR 4 sampled fidelity, whose fast-forward path calls warm_next().
#pragma once

#include "src/common/types.h"
#include "src/cpu/instruction.h"
#include "src/workloads/profile.h"

#include <cstdint>

namespace lnuca::ckpt {
class writer;
class reader;
} // namespace lnuca::ckpt

namespace lnuca::wl {

class workload_stream : public cpu::instruction_stream {
public:
    /// The profile this stream realises (name/floating_point label the run;
    /// trace streams synthesise one from the file header).
    virtual const workload_profile& profile() const = 0;

    /// Address of the block `backward` distinct allocations behind the hot
    /// end of the working set - hier::system::prewarm() installs these into
    /// the large arrays, substituting for the paper's 200M-instruction
    /// warm-up. The sequence is periodic in `backward` with period
    /// warm_block_count(), so a capture of one period replays any prewarm
    /// depth exactly (src/trace/trace_writer.h).
    virtual addr_t warm_block(std::uint64_t backward) const = 0;

    /// Period of the pre-warm sequence. 0 disables pre-warm for this stream
    /// (scenario lanes and hand-built traces warm naturally); synthetic
    /// generators return their footprint (the sliding window wraps modulo
    /// it).
    virtual std::uint64_t warm_block_count() const = 0;

    /// Checkpoint hooks: persist the replay cursor (and any generator RNG
    /// lanes) so a restored run consumes the identical future instruction
    /// sequence. Pure virtual on purpose - a stream that cannot be
    /// snapshotted must not silently checkpoint as a fresh one.
    virtual void save_state(ckpt::writer& w) const = 0;
    virtual void load_state(ckpt::reader& r) = 0;
};

} // namespace lnuca::wl
