// Synthetic instruction stream generator driven by a workload_profile.
//
// Addresses come from a sliding working set: an allocation frontier
// advances on "new block" accesses, and a reuse access picks a block
// uniformly within one of the profile's backward ranges from the frontier.
// Blocks at small backward index are the recently allocated/hot ones, so a
// cache of capacity C captures a range-R component with probability
// ~min(1, C/R) - an analytically controllable locality profile at O(1)
// cost per access.
#pragma once

#include "src/common/rng.h"
#include "src/common/types.h"
#include "src/workloads/profile.h"
#include "src/workloads/stream.h"

#include <memory>
#include <vector>

namespace lnuca::wl {

class synthetic_stream final : public workload_stream {
public:
    /// `region_base` places the workload's data region. Multiprogrammed
    /// CMP runs give each core a disjoint base (private address spaces);
    /// the default matches every single-core caller.
    synthetic_stream(const workload_profile& profile, std::uint64_t seed,
                     addr_t region_base = 0x10000000);

    cpu::instruction next() override;
    /// Same stream content and rng consumption as next(), minus the
    /// per-instruction log() of the dependency-distance transform (unused
    /// during fast-forward) - about 2x faster, bit-exact stream positioning.
    cpu::instruction warm_next() override;

    const workload_profile& profile() const override { return profile_; }

    /// Address of the block `backward` distinct allocations behind the
    /// current frontier; lets a system pre-warm large arrays with the hot
    /// window (substituting for the paper's 200M-instruction warm-up).
    addr_t warm_block(std::uint64_t backward) const override
    {
        return block_at(backward);
    }

    /// The warm sequence is periodic with the footprint: block_at wraps
    /// modulo footprint_blocks, so a table of this many entries reproduces
    /// warm_block(j) for every j (trace capture relies on it).
    std::uint64_t warm_block_count() const override
    {
        return profile_.footprint_blocks;
    }

    /// Checkpoint hooks: both RNG lanes plus the generator cursors - the
    /// profile itself is configuration and reconstructs identically.
    void save_state(ckpt::writer& w) const override;
    void load_state(ckpt::reader& r) override;

    template <class Ar> void serialize(Ar& ar)
    {
        ar(rng_);
        ar(dep_rng_);
        ar(frontier_);
        ar(seq_addr_);
        ar(in_seq_run_);
        ar(instr_count_);
        ar(last_load_distance_);
        ar(pc_);
    }

private:
    addr_t pick_address();
    addr_t new_block();
    addr_t block_at(std::uint64_t backward_index) const;
    cpu::op_class pick_op();
    cpu::instruction emit(bool full_fidelity);

    workload_profile profile_;
    rng rng_;
    /// Dependency-distance draws live on their own lane: only the detailed
    /// pipeline reads them, so warm_next() skips them entirely without
    /// desynchronising the address/op/branch sequence of the main lane.
    rng dep_rng_;

    // Cumulative mix thresholds for O(1) op-class selection.
    double cum_[8] = {};

    std::uint64_t frontier_ = 0; ///< blocks allocated so far (slides the WS)
    /// footprint_blocks - 1 when the footprint is a power of two (every
    /// shipped profile): index wrap becomes a mask instead of a 64-bit
    /// divide on the per-access path. 0 selects the modulo fallback.
    std::uint64_t footprint_mask_ = 0;
    addr_t region_base_ = 0x10000000;

    // Sequential-run state.
    addr_t seq_addr_ = 0;
    bool in_seq_run_ = false;

    // Branch sites.
    std::vector<std::pair<addr_t, double>> branch_sites_; ///< pc, P(taken)

    std::uint64_t instr_count_ = 0;
    std::uint64_t last_load_distance_ = 0; ///< instructions since last load
    addr_t pc_ = 0x400000;
};

/// Convenience factory.
std::unique_ptr<synthetic_stream> make_stream(const workload_profile& profile,
                                              std::uint64_t seed,
                                              addr_t region_base = 0x10000000);

} // namespace lnuca::wl
