// Parameterisation of a synthetic benchmark proxy.
//
// The paper evaluates on SPEC CPU2006, which cannot be run here; each
// benchmark is replaced by a generator whose temporal locality is shaped by
// a reuse-depth mixture (which slice of the LRU depth axis an access
// reuses), because the per-level hit distribution that drives the paper's
// results (Table III) is exactly the mass of that distribution between the
// capacities of adjacent hierarchy levels. See DESIGN.md, "Substitutions".
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace lnuca::wl {

/// One component of the reuse mixture: with probability `weight`, reuse a
/// block drawn uniformly from the last `range_blocks` distinct blocks.
/// Under LRU, such an access hits a cache holding the C most recent blocks
/// with probability min(1, C / range_blocks) - the direct knob for the
/// per-level hit distributions of Table III.
struct reuse_component {
    double weight = 0.0;
    double range_blocks = 0.0;
};

struct instruction_mix {
    double load = 0.25;
    double store = 0.10;
    double branch = 0.15;
    double int_alu = 0.40;
    double int_mul = 0.02;
    double fp_add = 0.04;
    double fp_mul = 0.03;
    double fp_div = 0.01;
};

struct workload_profile {
    std::string name;
    bool floating_point = false;

    // --- Source override ---------------------------------------------------
    /// When either is non-empty the profile is realised by trace replay
    /// instead of the synthetic generator: `trace_path` replays a captured
    /// binary trace file, `scenario` generates the named shared-memory
    /// scenario (src/trace/scenarios.h). The generator knobs below are
    /// then ignored; name/floating_point come from the trace itself.
    std::string trace_path;
    std::string scenario;

    instruction_mix mix;

    // --- Temporal locality -------------------------------------------------
    double p_new_block = 0.02;  ///< compulsory/streaming fraction of accesses
    std::vector<reuse_component> reuse; ///< weights need not sum to 1;
                                        ///< remainder reuses the hottest blocks
    std::uint64_t footprint_blocks = 1 << 18; ///< distinct 32B blocks touched

    // --- Spatial locality --------------------------------------------------
    double sequential_run = 0.4; ///< P(access continues a sequential run)

    // --- Control flow ------------------------------------------------------
    unsigned static_branches = 64;   ///< distinct branch sites
    double biased_fraction = 0.85;   ///< branches with strongly-biased outcome
    double bias = 0.92;              ///< P(taken) for biased branches
    double random_outcome = 0.5;     ///< P(taken) for the unbiased remainder

    // --- Instruction-level parallelism --------------------------------------
    double mean_dep_distance = 6.0;  ///< geometric producer distance
    double pointer_chase = 0.0;      ///< P(load address depends on prior load)
    double second_operand = 0.35;    ///< P(instruction has a second source)
};

} // namespace lnuca::wl
