#include "src/workloads/synthetic.h"

#include "src/ckpt/archive.h"

#include <algorithm>
#include <cmath>

namespace lnuca::wl {

namespace {
constexpr std::uint32_t k_block_bytes = 32;
} // namespace

synthetic_stream::synthetic_stream(const workload_profile& profile,
                                   std::uint64_t seed, addr_t region_base)
    : profile_(profile), rng_(seed), dep_rng_(hash64(seed ^ 0xde9d15ULL))
{
    region_base_ = region_base;
    // The working set pre-exists: a real program has long allocated its
    // data when the measured region starts. p_new_block keeps sliding it.
    frontier_ = profile_.footprint_blocks;
    footprint_mask_ =
        is_pow2(profile_.footprint_blocks) ? profile_.footprint_blocks - 1 : 0;
    const instruction_mix& m = profile_.mix;
    const double parts[8] = {m.load,    m.store,  m.branch,  m.int_alu,
                             m.int_mul, m.fp_add, m.fp_mul,  m.fp_div};
    double total = 0;
    for (const double p : parts)
        total += p;
    double running = 0;
    for (std::size_t i = 0; i < 8; ++i) {
        running += parts[i] / total;
        cum_[i] = running;
    }

    for (unsigned b = 0; b < profile_.static_branches; ++b) {
        const bool biased = rng_.uniform() < profile_.biased_fraction;
        const double p_taken = biased ? (rng_.chance(0.5) ? profile_.bias
                                                          : 1.0 - profile_.bias)
                                      : profile_.random_outcome;
        branch_sites_.emplace_back(0x400000 + 4 * (b + 1) * 64, p_taken);
    }
}

cpu::op_class synthetic_stream::pick_op()
{
    const double u = rng_.uniform();
    if (u < cum_[0])
        return cpu::op_class::load;
    if (u < cum_[1])
        return cpu::op_class::store;
    if (u < cum_[2])
        return cpu::op_class::branch;
    if (u < cum_[3])
        return cpu::op_class::int_alu;
    if (u < cum_[4])
        return cpu::op_class::int_mul;
    if (u < cum_[5])
        return cpu::op_class::fp_add;
    if (u < cum_[6])
        return cpu::op_class::fp_mul;
    return cpu::op_class::fp_div;
}

addr_t synthetic_stream::new_block()
{
    const std::uint64_t raw = frontier_++;
    const std::uint64_t index = footprint_mask_ != 0
                                    ? (raw & footprint_mask_)
                                    : raw % profile_.footprint_blocks;
    return region_base_ + index * k_block_bytes;
}

addr_t synthetic_stream::block_at(std::uint64_t backward_index) const
{
    const std::uint64_t raw = frontier_ - 1 - backward_index;
    const std::uint64_t index = footprint_mask_ != 0
                                    ? (raw & footprint_mask_)
                                    : raw % profile_.footprint_blocks;
    return region_base_ + index * k_block_bytes;
}

addr_t synthetic_stream::pick_address()
{
    // Continue a sequential run (spatial locality).
    if (in_seq_run_ && rng_.chance(profile_.sequential_run)) {
        seq_addr_ += 8;
        return seq_addr_;
    }
    in_seq_run_ = false;

    addr_t block;
    if (frontier_ == 0 || rng_.chance(profile_.p_new_block)) {
        block = new_block();
    } else {
        // Reuse: uniform within the chosen backward range; the weight
        // remainder reuses the hottest handful of blocks.
        double range = 64.0;
        double u = rng_.uniform();
        for (const auto& c : profile_.reuse) {
            if (u < c.weight) {
                range = c.range_blocks;
                break;
            }
            u -= c.weight;
        }
        const std::uint64_t bound = std::min<std::uint64_t>(
            std::uint64_t(range), std::min<std::uint64_t>(
                                      frontier_, profile_.footprint_blocks));
        block = block_at(rng_.below(bound));
    }

    if (rng_.chance(profile_.sequential_run)) {
        in_seq_run_ = true;
        seq_addr_ = block;
        return block;
    }
    return block + 8 * rng_.below(k_block_bytes / 8);
}

cpu::instruction synthetic_stream::next()
{
    return emit(/*full_fidelity=*/true);
}

cpu::instruction synthetic_stream::warm_next()
{
    return emit(/*full_fidelity=*/false);
}

cpu::instruction synthetic_stream::emit(bool full_fidelity)
{
    ++instr_count_;
    ++last_load_distance_;
    pc_ += 4;

    cpu::instruction inst;
    inst.op = pick_op();
    inst.pc = pc_;

    // Dependency distances only matter to the detailed pipeline and draw
    // from dep_rng_, so fast-forward skips them (and their per-instruction
    // log()) entirely while the main lane stays bit-identically positioned.
    auto geometric_dep = [&]() -> std::uint32_t {
        const double draw =
            -profile_.mean_dep_distance * std::log(1.0 - dep_rng_.uniform());
        return std::uint32_t(std::clamp(draw, 1.0, 64.0));
    };

    switch (inst.op) {
    case cpu::op_class::load:
        inst.addr = pick_address();
        inst.size = 8;
        if (full_fidelity) {
            if (profile_.pointer_chase > 0 &&
                dep_rng_.chance(profile_.pointer_chase) &&
                last_load_distance_ < 64 && instr_count_ > last_load_distance_) {
                // Address depends on the previous load (pointer chasing).
                inst.dep[0] = std::uint32_t(last_load_distance_);
            } else {
                inst.dep[0] = geometric_dep();
            }
        }
        last_load_distance_ = 0;
        break;
    case cpu::op_class::store:
        inst.addr = pick_address();
        inst.size = 8;
        if (full_fidelity)
            inst.dep[0] = geometric_dep(); // data being stored
        break;
    case cpu::op_class::branch: {
        const auto& [pc, p_taken] =
            branch_sites_[rng_.below(branch_sites_.size())];
        inst.pc = pc;
        inst.taken = rng_.chance(p_taken);
        if (full_fidelity)
            inst.dep[0] = geometric_dep(); // condition operand
        break;
    }
    default:
        if (full_fidelity) {
            inst.dep[0] = geometric_dep();
            if (dep_rng_.chance(profile_.second_operand))
                inst.dep[1] = geometric_dep();
        }
        break;
    }
    return inst;
}

std::unique_ptr<synthetic_stream> make_stream(const workload_profile& profile,
                                              std::uint64_t seed,
                                              addr_t region_base)
{
    return std::make_unique<synthetic_stream>(profile, seed, region_base);
}

void synthetic_stream::save_state(ckpt::writer& w) const
{
    ckpt::saver ar(w);
    const_cast<synthetic_stream*>(this)->serialize(ar);
}

void synthetic_stream::load_state(ckpt::reader& r)
{
    ckpt::loader ar(r);
    serialize(ar);
}

} // namespace lnuca::wl
