// Synthetic proxies for the SPEC CPU2006 suite the paper evaluates (all
// benchmarks minus 483.xalancbmk, which the authors excluded).
//
// Parameters are set per benchmark from its published memory-intensity
// character (working-set size, streaming vs pointer-chasing, branch
// behaviour, FP/INT mix). Absolute IPC is not expected to match the paper;
// the per-level reuse structure that drives the paper's comparisons is.
#pragma once

#include "src/workloads/profile.h"

#include <optional>
#include <vector>

namespace lnuca::wl {

/// All 28 proxies, INT first (11), then FP (17), in SPEC numeric order.
const std::vector<workload_profile>& spec2006_suite();

/// Suite filtered by kind.
std::vector<workload_profile> spec2006_int();
std::vector<workload_profile> spec2006_fp();

/// Lookup by name (e.g. "429.mcf").
std::optional<workload_profile> find_spec2006(const std::string& name);

} // namespace lnuca::wl
