// Growable ring-buffer FIFO: the zero-allocation replacement for the
// std::deque queues on the simulator's executed-cycle hot path.
//
// std::deque allocates and frees 512-byte chunks as its size oscillates
// across a chunk boundary, which shows up as steady-state heap churn in
// saturated runs. ring_queue keeps one power-of-two backing store that only
// grows (reserve() at construction sizes it for the component's bound), so
// push/pop in steady state never touch the allocator.
//
// Semantics match the deque subset the simulator uses: FIFO push_back /
// front / pop_front, random access by queue position, ordered mid-queue
// erase (rare paths only), and forward iteration in queue order.
#pragma once

#include <cstddef>
#include <iterator>
#include <utility>
#include <vector>

namespace lnuca {

/// Smallest power of two >= n (floor 8): the shared growth/sizing policy
/// for ring queues and open-addressed index tables.
inline std::size_t pow2_at_least(std::size_t n)
{
    std::size_t p = 8;
    while (p < n)
        p *= 2;
    return p;
}

template <typename T>
class ring_queue {
public:
    ring_queue() = default;
    explicit ring_queue(std::size_t initial_capacity)
    {
        reserve(initial_capacity);
    }

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    std::size_t capacity() const { return store_.size(); }

    /// Grow the backing store to hold at least `n` items (never shrinks).
    void reserve(std::size_t n)
    {
        if (n > store_.size())
            regrow(pow2_at_least(n));
    }

    void push_back(const T& value)
    {
        T copy(value);
        push_back(std::move(copy));
    }

    void push_back(T&& value)
    {
        if (size_ == store_.size())
            regrow(pow2_at_least(size_ == 0 ? 8 : size_ * 2));
        store_[wrap(head_ + size_)] = std::move(value);
        ++size_;
    }

    template <typename... Args>
    void emplace_back(Args&&... args)
    {
        push_back(T(std::forward<Args>(args)...));
    }

    T& front() { return store_[head_]; }
    const T& front() const { return store_[head_]; }
    T& back() { return store_[wrap(head_ + size_ - 1)]; }
    const T& back() const { return store_[wrap(head_ + size_ - 1)]; }

    /// Element `i` positions behind the front (0 = front).
    T& operator[](std::size_t i) { return store_[wrap(head_ + i)]; }
    const T& operator[](std::size_t i) const { return store_[wrap(head_ + i)]; }

    void pop_front()
    {
        store_[head_] = T{}; // drop payload eagerly (parity with deque pop)
        head_ = wrap(head_ + 1);
        --size_;
    }

    /// Take the front by value and pop it.
    T take_front()
    {
        T out = std::move(store_[head_]);
        pop_front();
        return out;
    }

    /// Ordered erase of element `i` (shifts the tail forward one slot).
    void erase_at(std::size_t i)
    {
        for (std::size_t k = i + 1; k < size_; ++k)
            store_[wrap(head_ + k - 1)] = std::move(store_[wrap(head_ + k)]);
        store_[wrap(head_ + size_ - 1)] = T{};
        --size_;
    }

    void clear()
    {
        while (size_ > 0)
            pop_front();
        head_ = 0;
    }

    template <typename Q, typename V>
    class iter {
    public:
        using iterator_category = std::forward_iterator_tag;
        using value_type = V;
        using difference_type = std::ptrdiff_t;
        using pointer = V*;
        using reference = V&;

        iter(Q* q, std::size_t i) : q_(q), i_(i) {}
        reference operator*() const { return (*q_)[i_]; }
        pointer operator->() const { return &(*q_)[i_]; }
        iter& operator++()
        {
            ++i_;
            return *this;
        }
        bool operator==(const iter& o) const { return i_ == o.i_; }
        bool operator!=(const iter& o) const { return i_ != o.i_; }
        std::size_t position() const { return i_; }

    private:
        Q* q_;
        std::size_t i_;
    };

    using iterator = iter<ring_queue, T>;
    using const_iterator = iter<const ring_queue, const T>;

    iterator begin() { return {this, 0}; }
    iterator end() { return {this, size_}; }
    const_iterator begin() const { return {this, 0}; }
    const_iterator end() const { return {this, size_}; }

private:
    std::size_t wrap(std::size_t i) const { return i & (store_.size() - 1); }

    void regrow(std::size_t new_capacity)
    {
        std::vector<T> next(new_capacity);
        for (std::size_t i = 0; i < size_; ++i)
            next[i] = std::move(store_[wrap(head_ + i)]);
        store_ = std::move(next);
        head_ = 0;
    }

    std::vector<T> store_;
    std::size_t head_ = 0;
    std::size_t size_ = 0;
};

} // namespace lnuca
