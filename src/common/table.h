// ASCII table renderer for benches and examples: the bench binaries print
// the same rows/series the paper's tables and figures report, and this is
// the single place that formats them.
#pragma once

#include <string>
#include <vector>

namespace lnuca {

/// A simple column-aligned text table with an optional title and a header
/// row. Cells are strings; numeric helpers format with fixed precision.
class text_table {
public:
    explicit text_table(std::string title = {}) : title_(std::move(title)) {}

    void set_header(std::vector<std::string> header);
    void add_row(std::vector<std::string> row);

    /// Format a floating-point cell with `digits` decimals.
    static std::string num(double value, int digits = 3);
    /// Format a percentage cell ("12.3%").
    static std::string pct(double fraction_as_percent, int digits = 1);

    /// Render the table; every column is padded to its widest cell.
    std::string render() const;

    /// Render and write to stdout.
    void print() const;

private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace lnuca
