#include "src/common/stats.h"

#include <algorithm>
#include <functional>

namespace lnuca {

double harmonic_mean(const std::vector<double>& values)
{
    if (values.empty())
        return 0.0;
    double inv_sum = 0.0;
    for (double v : values) {
        if (v <= 0.0)
            return 0.0; // harmonic mean undefined; treat as degenerate
        inv_sum += 1.0 / v;
    }
    return double(values.size()) / inv_sum;
}

double arithmetic_mean(const std::vector<double>& values)
{
    if (values.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return sum / double(values.size());
}

double geometric_mean(const std::vector<double>& values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : values) {
        if (v <= 0.0)
            return 0.0;
        log_sum += std::log(v);
    }
    return std::exp(log_sum / double(values.size()));
}

std::uint64_t counter_set::hash(std::string_view name)
{
    // FNV-1a; names are short, so this is a handful of cycles.
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const char c : name)
        h = (h ^ std::uint8_t(c)) * 0x100000001b3ULL;
    return h;
}

void counter_set::rebuild_index(std::size_t buckets)
{
    index_.assign(buckets, 0);
    const std::size_t mask = buckets - 1;
    for (std::size_t i = 0; i < items_.size(); ++i) {
        std::size_t b = std::size_t(hash(items_[i].first)) & mask;
        while (index_[b] != 0)
            b = (b + 1) & mask;
        index_[b] = std::uint32_t(i + 1);
    }
}

std::size_t counter_set::slot_of(std::string_view name)
{
    if (items_.size() * 2 >= index_.size())
        rebuild_index(index_.empty() ? 64 : index_.size() * 2);
    const std::size_t mask = index_.size() - 1;
    std::size_t b = std::size_t(hash(name)) & mask;
    while (index_[b] != 0) {
        const std::size_t i = index_[b] - 1;
        if (items_[i].first == name)
            return i;
        b = (b + 1) & mask;
    }
    items_.emplace_back(std::string(name), 0);
    index_[b] = std::uint32_t(items_.size());
    return items_.size() - 1;
}

std::uint64_t counter_set::get(std::string_view name) const
{
    if (index_.empty())
        return 0;
    const std::size_t mask = index_.size() - 1;
    std::size_t b = std::size_t(hash(name)) & mask;
    while (index_[b] != 0) {
        const std::size_t i = index_[b] - 1;
        if (items_[i].first == name)
            return items_[i].second;
        b = (b + 1) & mask;
    }
    return 0;
}

std::uint64_t counter_set::digest() const
{
    std::uint64_t sum = 0;
    for (const auto& [key, value] : items_)
        sum += (std::hash<std::string>{}(key) ^ (value * 0x9e3779b97f4a7c15ULL)) *
               0x2545f4914f6cdd1dULL;
    return sum;
}

void counter_set::reset()
{
    // Zero the values but keep the registered names: outstanding handles
    // (and the preregistration that keeps the hot path allocation-free)
    // survive a between-windows stats reset.
    for (auto& [key, value] : items_)
        value = 0;
}

} // namespace lnuca
