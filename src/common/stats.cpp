#include "src/common/stats.h"

#include <algorithm>
#include <functional>

namespace lnuca {

double harmonic_mean(const std::vector<double>& values)
{
    if (values.empty())
        return 0.0;
    double inv_sum = 0.0;
    for (double v : values) {
        if (v <= 0.0)
            return 0.0; // harmonic mean undefined; treat as degenerate
        inv_sum += 1.0 / v;
    }
    return double(values.size()) / inv_sum;
}

double arithmetic_mean(const std::vector<double>& values)
{
    if (values.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return sum / double(values.size());
}

double geometric_mean(const std::vector<double>& values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : values) {
        if (v <= 0.0)
            return 0.0;
        log_sum += std::log(v);
    }
    return std::exp(log_sum / double(values.size()));
}

void counter_set::inc(const std::string& name, std::uint64_t by)
{
    for (auto& [key, value] : items_) {
        if (key == name) {
            value += by;
            return;
        }
    }
    items_.emplace_back(name, by);
}

std::uint64_t counter_set::get(const std::string& name) const
{
    for (const auto& [key, value] : items_)
        if (key == name)
            return value;
    return 0;
}

std::uint64_t counter_set::digest() const
{
    std::uint64_t sum = 0;
    for (const auto& [key, value] : items_)
        sum += (std::hash<std::string>{}(key) ^ (value * 0x9e3779b97f4a7c15ULL)) *
               0x2545f4914f6cdd1dULL;
    return sum;
}

void counter_set::reset()
{
    items_.clear();
}

} // namespace lnuca
