// Fundamental value types shared by every subsystem.
#pragma once

#include <cstdint>
#include <string>

namespace lnuca {

/// Simulated processor cycles. 64 bits: a run never wraps.
using cycle_t = std::uint64_t;

/// Physical byte address in the simulated machine.
using addr_t = std::uint64_t;

/// Unique identifier for an in-flight memory transaction.
using txn_id_t = std::uint64_t;

/// Sentinel for "no cycle" / "not scheduled".
inline constexpr cycle_t no_cycle = ~cycle_t{0};

/// Sentinel for an invalid address.
inline constexpr addr_t no_addr = ~addr_t{0};

/// True iff `v` is a power of two (and non-zero).
constexpr bool is_pow2(std::uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

/// log2 of a power of two.
constexpr unsigned log2_exact(std::uint64_t v)
{
    unsigned n = 0;
    while (v > 1) {
        v >>= 1;
        ++n;
    }
    return n;
}

/// Round `v` up to the next multiple of `align` (power of two).
constexpr std::uint64_t align_up(std::uint64_t v, std::uint64_t align)
{
    return (v + align - 1) & ~(align - 1);
}

/// Kibibytes/mebibytes helpers so configuration reads like the paper.
constexpr std::uint64_t operator""_KiB(unsigned long long v) { return v * 1024; }
constexpr std::uint64_t operator""_MiB(unsigned long long v) { return v * 1024 * 1024; }

/// Pretty size for reports: 256 KiB -> "256KB" (paper style).
std::string format_size(std::uint64_t bytes);

} // namespace lnuca
