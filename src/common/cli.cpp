#include "src/common/cli.h"

#include <cstdlib>

namespace lnuca {

cli_args::cli_args(int argc, const char* const* argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0)
            continue;
        arg.erase(0, 2);
        const auto eq = arg.find('=');
        if (eq != std::string::npos) {
            names_.push_back(arg.substr(0, eq));
            values_.push_back(arg.substr(eq + 1));
        } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
            names_.push_back(arg);
            values_.push_back(argv[++i]);
        } else {
            names_.push_back(arg);
            values_.push_back("");
        }
    }
}

std::optional<std::string> cli_args::value(const std::string& name) const
{
    for (std::size_t i = 0; i < names_.size(); ++i)
        if (names_[i] == name)
            return values_[i];
    return std::nullopt;
}

std::uint64_t cli_args::get_u64(const std::string& name, std::uint64_t fallback) const
{
    const auto v = value(name);
    return v && !v->empty() ? std::strtoull(v->c_str(), nullptr, 0) : fallback;
}

double cli_args::get_double(const std::string& name, double fallback) const
{
    const auto v = value(name);
    return v && !v->empty() ? std::strtod(v->c_str(), nullptr) : fallback;
}

std::string cli_args::get_string(const std::string& name, std::string fallback) const
{
    const auto v = value(name);
    return v && !v->empty() ? *v : std::move(fallback);
}

bool cli_args::has_flag(const std::string& name) const
{
    return value(name).has_value();
}

} // namespace lnuca
