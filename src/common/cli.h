// Tiny command-line option reader shared by bench/example binaries.
// Supports "--name value" and "--name=value"; unknown options are kept so
// callers can reject or ignore them explicitly.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace lnuca {

class cli_args {
public:
    cli_args(int argc, const char* const* argv);

    /// Value of --name, if present.
    std::optional<std::string> value(const std::string& name) const;

    /// Typed getters with defaults.
    std::uint64_t get_u64(const std::string& name, std::uint64_t fallback) const;
    double get_double(const std::string& name, double fallback) const;
    std::string get_string(const std::string& name, std::string fallback) const;
    bool has_flag(const std::string& name) const;

    /// Names seen on the command line (for "unknown option" diagnostics).
    const std::vector<std::string>& names() const { return names_; }

private:
    std::vector<std::string> names_;
    std::vector<std::string> values_;
};

} // namespace lnuca
