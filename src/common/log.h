// Minimal leveled logging. Simulators are extremely hot loops, so the macros
// compile to a branch on a global level; message formatting only happens when
// the level is enabled.
#pragma once

#include <sstream>
#include <string>

namespace lnuca {

enum class log_level { none = 0, error, warn, info, debug, trace };

/// Global log level (default: warn). Tests may raise it locally.
log_level global_log_level();
void set_global_log_level(log_level level);

/// Emit one line to stderr with a level prefix. Prefer the macros below.
void log_line(log_level level, const std::string& message);

namespace detail {
template <typename... Parts>
std::string concat(Parts&&... parts)
{
    std::ostringstream out;
    (out << ... << parts);
    return out.str();
}
} // namespace detail

} // namespace lnuca

#define LNUCA_LOG(level, ...)                                                  \
    do {                                                                       \
        if (static_cast<int>(level) <=                                         \
            static_cast<int>(::lnuca::global_log_level()))                     \
            ::lnuca::log_line(level, ::lnuca::detail::concat(__VA_ARGS__));    \
    } while (0)

#define LNUCA_ERROR(...) LNUCA_LOG(::lnuca::log_level::error, __VA_ARGS__)
#define LNUCA_WARN(...) LNUCA_LOG(::lnuca::log_level::warn, __VA_ARGS__)
#define LNUCA_INFO(...) LNUCA_LOG(::lnuca::log_level::info, __VA_ARGS__)
#define LNUCA_DEBUG(...) LNUCA_LOG(::lnuca::log_level::debug, __VA_ARGS__)
#define LNUCA_TRACE(...) LNUCA_LOG(::lnuca::log_level::trace, __VA_ARGS__)
