// Fixed-bucket histogram for integer-valued observations (latencies, stack
// distances, queue occupancies). Values beyond the last bucket accumulate in
// an overflow bucket so the total count is exact.
#pragma once

#include <cstdint>
#include <vector>

namespace lnuca {

class histogram {
public:
    explicit histogram(std::size_t buckets = 64) : counts_(buckets, 0) {}

    void add(std::uint64_t value, std::uint64_t weight = 1)
    {
        total_ += weight;
        weighted_sum_ += value * weight;
        if (value < counts_.size())
            counts_[value] += weight;
        else
            overflow_ += weight;
    }

    std::uint64_t count(std::size_t bucket) const
    {
        return bucket < counts_.size() ? counts_[bucket] : 0;
    }

    std::uint64_t overflow() const { return overflow_; }
    std::uint64_t total() const { return total_; }
    std::size_t buckets() const { return counts_.size(); }

    double mean() const
    {
        return total_ == 0 ? 0.0 : double(weighted_sum_) / double(total_);
    }

    /// Exact sum of value*weight (accumulating means across windows
    /// without double-rounding drift).
    std::uint64_t weighted_sum() const { return weighted_sum_; }

    /// Smallest value v such that at least `fraction` of mass is <= v.
    /// Overflowed observations count as "beyond any bucket".
    std::uint64_t percentile(double fraction) const
    {
        const auto want = std::uint64_t(fraction * double(total_));
        std::uint64_t running = 0;
        for (std::size_t b = 0; b < counts_.size(); ++b) {
            running += counts_[b];
            if (running >= want)
                return b;
        }
        return counts_.size();
    }

    void reset()
    {
        for (auto& c : counts_)
            c = 0;
        overflow_ = 0;
        total_ = 0;
        weighted_sum_ = 0;
    }

    /// Checkpoint support. Bucket count is configuration, but the vector
    /// round-trips it anyway so a mismatch surfaces as a digest difference
    /// rather than silent truncation.
    template <class Ar> void serialize(Ar& ar)
    {
        ar(counts_);
        ar(overflow_);
        ar(total_);
        ar(weighted_sum_);
    }

private:
    std::vector<std::uint64_t> counts_;
    std::uint64_t overflow_ = 0;
    std::uint64_t total_ = 0;
    std::uint64_t weighted_sum_ = 0;
};

} // namespace lnuca
