// Deterministic pseudo-random number generation for simulation.
//
// xoshiro256** (Blackman & Vigna) seeded through splitmix64: fast, high
// quality, and — unlike std::mt19937 — identical across standard libraries,
// which keeps simulation results reproducible everywhere.
#pragma once

#include <cstdint>

namespace lnuca {

/// splitmix64 step; used for seeding and for cheap stateless hashing.
constexpr std::uint64_t splitmix64(std::uint64_t& state)
{
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/// One-shot hash of a 64-bit value (stateless splitmix64).
constexpr std::uint64_t hash64(std::uint64_t v)
{
    std::uint64_t s = v;
    return splitmix64(s);
}

/// xoshiro256** generator. Satisfies UniformRandomBitGenerator.
class rng {
public:
    using result_type = std::uint64_t;

    explicit constexpr rng(std::uint64_t seed = 0x1badcafe) { reseed(seed); }

    /// Derive an independent seed lane from a base seed and up to three
    /// coordinates (e.g. config index, workload index, replicate index of an
    /// experiment sweep).
    ///
    /// Scheme — a splitmix64 "sponge": start from the mixed base seed and
    /// absorb each coordinate, re-mixing the state after every absorption:
    ///
    ///     state = hash64(base)
    ///     state = hash64(state ^ hash64(coord_i ^ tag_i))   for i = 0, 1, 2
    ///
    /// The tags are distinct constants, so coordinate *positions* cannot
    /// alias: split(s, 1, 0) != split(s, 0, 1). Unlike additive schemes
    /// (`seed + index`), which guarantee collisions between neighbouring
    /// sweeps (seed 5, job 1 == seed 6, job 0), two distinct (base, coords)
    /// tuples collide here only if the final mixed states collide — the
    /// 2^-64 birthday behaviour of a random function. Every derived lane
    /// seeds its own rng/stream, which keeps sharded and multi-threaded
    /// sweeps bit-identical to serial ones: the lane depends only on the
    /// tuple, never on scheduling order.
    static constexpr std::uint64_t split(std::uint64_t base, std::uint64_t a,
                                         std::uint64_t b = 0,
                                         std::uint64_t c = 0)
    {
        std::uint64_t state = hash64(base);
        state = hash64(state ^ hash64(a ^ 0xc0a0f16ULL));
        state = hash64(state ^ hash64(b ^ 0x3017ab1eULL));
        state = hash64(state ^ hash64(c ^ 0x5eed1a7eULL));
        return state;
    }

    constexpr void reseed(std::uint64_t seed)
    {
        std::uint64_t sm = seed;
        for (auto& word : state_)
            word = splitmix64(sm);
    }

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~std::uint64_t{0}; }

    constexpr std::uint64_t operator()()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /// Uniform integer in [0, bound). bound == 0 returns 0.
    constexpr std::uint64_t below(std::uint64_t bound)
    {
        if (bound == 0)
            return 0;
        // Lemire's multiply-shift rejection-free variant is overkill here;
        // 64-bit modulo bias is negligible for simulation bounds (< 2^32).
        return (*this)() % bound;
    }

    /// Uniform double in [0, 1).
    constexpr double uniform() { return double((*this)() >> 11) * 0x1.0p-53; }

    /// Bernoulli trial.
    constexpr bool chance(double p) { return uniform() < p; }

    /// Uniform integer in [lo, hi] inclusive.
    constexpr std::uint64_t between(std::uint64_t lo, std::uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /// Checkpoint support: the four state words are the entire generator.
    template <class Ar> void serialize(Ar& ar)
    {
        for (auto& word : state_)
            ar(word);
    }

private:
    static constexpr std::uint64_t rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4]{};
};

} // namespace lnuca
