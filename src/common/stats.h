// Statistics primitives used across the simulator: counters, running means,
// ratios, harmonic means (the paper aggregates IPC with harmonic means), and
// min/max trackers. All are plain value types; registration/reporting is the
// caller's concern.
#pragma once

#include <cmath>
#include <cstdint>
#include <initializer_list>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

namespace lnuca {

/// Running arithmetic-mean accumulator.
class mean_accumulator {
public:
    void add(double v)
    {
        sum_ += v;
        ++n_;
    }

    double mean() const { return n_ == 0 ? 0.0 : sum_ / double(n_); }
    double sum() const { return sum_; }
    std::uint64_t count() const { return n_; }

    void reset()
    {
        sum_ = 0;
        n_ = 0;
    }

private:
    double sum_ = 0;
    std::uint64_t n_ = 0;
};

/// Running min/max/mean tracker for latencies and queue depths.
class minmax_accumulator {
public:
    void add(double v)
    {
        mean_.add(v);
        if (v < min_)
            min_ = v;
        if (v > max_)
            max_ = v;
    }

    double mean() const { return mean_.mean(); }
    double min() const { return mean_.count() ? min_ : 0.0; }
    double max() const { return mean_.count() ? max_ : 0.0; }
    std::uint64_t count() const { return mean_.count(); }

private:
    mean_accumulator mean_;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/// Harmonic mean of a set of samples (IPC aggregation in the paper).
double harmonic_mean(const std::vector<double>& values);

/// Arithmetic mean convenience.
double arithmetic_mean(const std::vector<double>& values);

/// Geometric mean convenience (used by some ablation reports).
double geometric_mean(const std::vector<double>& values);

/// Ratio with a defined value when the denominator is zero.
constexpr double safe_ratio(double num, double den, double if_zero = 0.0)
{
    return den == 0.0 ? if_zero : num / den;
}

/// Named counter bundle: insertion-ordered, printable. Components expose one
/// of these so tests and benches can introspect behaviour without bespoke
/// accessor plumbing per statistic.
///
/// Hot-path contract: inc() takes a string_view (no temporary std::string)
/// and resolves the name through an open-addressed hash index, so after a
/// counter's first increment further increments perform no heap allocation
/// and no linear string scan.
class counter_set {
public:
    /// Stable reference to a counter: an index into items(). Handles stay
    /// valid for the counter_set's lifetime (reset() zeroes values but
    /// keeps the registered names precisely so handles survive it).
    using handle = std::uint32_t;

    /// Increment (creating at zero on first use).
    void inc(std::string_view name, std::uint64_t by = 1)
    {
        items_[slot_of(name)].second += by;
    }

    /// Handle-based increment for per-cycle hot sites: one indexed add, no
    /// hashing or string comparison.
    void inc(handle h, std::uint64_t by = 1) { items_[h].second += by; }

    /// Find-or-create a counter and return its stable handle.
    handle handle_of(std::string_view name)
    {
        return handle(slot_of(name));
    }

    /// Create counters at zero ahead of first use. Components preregister
    /// every counter they can emit in their constructor, so a rare event
    /// firing mid-run never allocates its name string on the hot path (the
    /// zero-allocation gate in bench/micro_hotpath.cpp enforces this).
    void preregister(std::initializer_list<std::string_view> names)
    {
        for (const std::string_view name : names)
            (void)slot_of(name);
    }

    /// Read a counter; absent counters read as zero.
    std::uint64_t get(std::string_view name) const;

    /// Overwrite a counter's value (creating it if absent). Checkpoint
    /// restore rebuilds counters by name through this, so a save/load
    /// round-trip is insensitive to registration order drift.
    void set(std::string_view name, std::uint64_t value)
    {
        items_[slot_of(name)].second = value;
    }

    /// All counters in insertion order.
    const std::vector<std::pair<std::string, std::uint64_t>>& items() const
    {
        return items_;
    }

    /// Order-independent hash of (name, value) pairs. Stable only within
    /// one process: used for cheap state digests (sim::ticked), never
    /// persisted.
    std::uint64_t digest() const;

    void reset();

private:
    static std::uint64_t hash(std::string_view name);
    std::size_t slot_of(std::string_view name); ///< find-or-insert item index
    void rebuild_index(std::size_t buckets);

    std::vector<std::pair<std::string, std::uint64_t>> items_;
    /// Open addressing (linear probe), power-of-two size; stores item
    /// index + 1, 0 = empty. Rebuilt when items_ outgrows half the table.
    std::vector<std::uint32_t> index_;
};

} // namespace lnuca
