#include "src/common/log.h"

#include "src/common/types.h"

#include <cstdio>

namespace lnuca {

namespace {
log_level g_level = log_level::warn;

const char* level_name(log_level level)
{
    switch (level) {
    case log_level::none: return "none";
    case log_level::error: return "error";
    case log_level::warn: return "warn";
    case log_level::info: return "info";
    case log_level::debug: return "debug";
    case log_level::trace: return "trace";
    }
    return "?";
}
} // namespace

log_level global_log_level() { return g_level; }

void set_global_log_level(log_level level) { g_level = level; }

void log_line(log_level level, const std::string& message)
{
    std::fprintf(stderr, "[lnuca:%s] %s\n", level_name(level), message.c_str());
}

std::string format_size(std::uint64_t bytes)
{
    char buf[32];
    if (bytes >= 1_MiB && bytes % 1_MiB == 0)
        std::snprintf(buf, sizeof buf, "%lluMB",
                      static_cast<unsigned long long>(bytes / 1_MiB));
    else if (bytes >= 1_KiB && bytes % 1_KiB == 0)
        std::snprintf(buf, sizeof buf, "%lluKB",
                      static_cast<unsigned long long>(bytes / 1_KiB));
    else
        std::snprintf(buf, sizeof buf, "%lluB",
                      static_cast<unsigned long long>(bytes));
    return buf;
}

} // namespace lnuca
