#include "src/common/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace lnuca {

void text_table::set_header(std::vector<std::string> header)
{
    header_ = std::move(header);
}

void text_table::add_row(std::vector<std::string> row)
{
    rows_.push_back(std::move(row));
}

std::string text_table::num(double value, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f", digits, value);
    return buf;
}

std::string text_table::pct(double fraction_as_percent, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f%%", digits, fraction_as_percent);
    return buf;
}

std::string text_table::render() const
{
    // Column widths over header + all rows.
    std::size_t columns = header_.size();
    for (const auto& row : rows_)
        columns = std::max(columns, row.size());

    std::vector<std::size_t> width(columns, 0);
    auto widen = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());
    };
    widen(header_);
    for (const auto& row : rows_)
        widen(row);

    std::ostringstream out;
    auto emit_row = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < columns; ++c) {
            const std::string& cell = c < row.size() ? row[c] : std::string{};
            out << cell << std::string(width[c] - cell.size(), ' ');
            if (c + 1 < columns)
                out << "  ";
        }
        out << '\n';
    };

    std::size_t total = 0;
    for (std::size_t c = 0; c < columns; ++c)
        total += width[c] + (c + 1 < columns ? 2 : 0);

    if (!title_.empty())
        out << title_ << '\n' << std::string(std::max(total, title_.size()), '=') << '\n';
    if (!header_.empty()) {
        emit_row(header_);
        out << std::string(total, '-') << '\n';
    }
    for (const auto& row : rows_)
        emit_row(row);
    return out.str();
}

void text_table::print() const
{
    std::fputs(render().c_str(), stdout);
    std::fputc('\n', stdout);
}

} // namespace lnuca
