// Checkpoint reader: loads the whole file into memory and validates it
// eagerly at open - magic, version, endian tag, file size, header CRC and
// every section CRC - so restore code downstream never sees torn data. Any
// defect throws ckpt_error, which restore paths translate into a warning
// plus a cold start.
#pragma once

#include "src/ckpt/format.h"

#include <cstdint>
#include <string>
#include <vector>

namespace lnuca::ckpt {

class reader {
public:
    /// Open + fully validate. Throws ckpt_error on any defect.
    explicit reader(const std::string& path);

    std::uint64_t config_hash() const { return header_.config_hash; }
    const std::string& path() const { return path_; }
    const std::vector<section_entry>& sections() const { return entries_; }

    bool has_section(section_id id, std::uint32_t index = 0) const;

    /// Position the cursor at the start of section (id, index). Throws
    /// ckpt_error if absent or if another section is still open.
    void open_section(section_id id, std::uint32_t index = 0);
    /// End the current section; throws ckpt_error unless the payload was
    /// consumed exactly (a size mismatch means reader/writer code drifted).
    void close_section();

    /// Raw payload bytes of a section (for ckpt_tool dumps).
    const std::uint8_t* section_payload(const section_entry& entry) const
    {
        return data_.data() + entry.offset;
    }

    void get_bytes(void* out, std::size_t size);
    std::uint8_t get_u8();
    std::uint16_t get_u16();
    std::uint32_t get_u32();
    std::uint64_t get_u64();
    bool get_bool() { return get_u8() != 0; }
    double get_double();
    std::string get_string();

private:
    const section_entry* find(section_id id, std::uint32_t index) const;

    std::string path_;
    std::vector<std::uint8_t> data_;
    file_header header_{};
    std::vector<section_entry> entries_;

    bool open_ = false;
    std::size_t cursor_ = 0; ///< absolute offset into data_
    std::size_t limit_ = 0;  ///< one past the open section's payload
    const section_entry* current_ = nullptr;
};

} // namespace lnuca::ckpt
