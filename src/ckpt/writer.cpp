#include "src/ckpt/writer.h"

#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <unistd.h>

namespace lnuca::ckpt {

namespace {

std::string parent_dir(const std::string& path)
{
    const std::size_t slash = path.find_last_of('/');
    if (slash == std::string::npos)
        return ".";
    if (slash == 0)
        return "/";
    return path.substr(0, slash);
}

[[noreturn]] void io_fail(const std::string& what, const std::string& path)
{
    throw ckpt_error("checkpoint save: " + what + " '" + path +
                     "': " + std::strerror(errno));
}

void write_all(int fd, const void* data, std::size_t size,
               const std::string& path)
{
    const char* p = static_cast<const char*>(data);
    std::size_t left = size;
    while (left > 0) {
        const ssize_t n = ::write(fd, p, left);
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0)
            io_fail("cannot write", path);
        p += n;
        left -= std::size_t(n);
    }
}

} // namespace

void writer::begin_section(section_id id, std::uint32_t index)
{
    if (open_)
        throw ckpt_error("checkpoint writer: begin_section inside an open "
                         "section (sections cannot nest)");
    open_ = true;
    sections_.push_back(section{id, index, {}});
}

void writer::end_section()
{
    if (!open_)
        throw ckpt_error("checkpoint writer: end_section without a section");
    open_ = false;
}

void writer::put_bytes(const void* data, std::size_t size)
{
    if (!open_)
        throw ckpt_error("checkpoint writer: put outside a section");
    const auto* p = static_cast<const std::uint8_t*>(data);
    sections_.back().payload.insert(sections_.back().payload.end(), p,
                                    p + size);
}

void writer::put_double(double v)
{
    std::uint64_t bits;
    static_assert(sizeof bits == sizeof v, "double is not 64-bit");
    std::memcpy(&bits, &v, sizeof bits);
    put_u64(bits);
}

void writer::put_string(const std::string& s)
{
    put_u32(std::uint32_t(s.size()));
    put_bytes(s.data(), s.size());
}

void writer::finalize(const std::string& path,
                      std::uint64_t config_hash) const
{
    if (open_)
        throw ckpt_error("checkpoint writer: finalize with an open section");

    // Assemble the whole image in memory first: header, table, 8-aligned
    // payloads. Checkpoints are at most a few MB (tag arrays dominate), so
    // one buffered image keeps the I/O a single write + fsync.
    std::vector<section_entry> table(sections_.size());
    std::uint64_t offset = sizeof(file_header) +
                           sizeof(section_entry) * sections_.size();
    offset = (offset + 7) & ~std::uint64_t(7);
    for (std::size_t i = 0; i < sections_.size(); ++i) {
        const section& s = sections_[i];
        table[i].id = std::uint32_t(s.id);
        table[i].index = s.index;
        table[i].offset = offset;
        table[i].size = s.payload.size();
        table[i].crc = crc32(s.payload.data(), s.payload.size());
        table[i].pad = 0;
        offset = (offset + s.payload.size() + 7) & ~std::uint64_t(7);
    }

    file_header header{};
    std::memcpy(header.magic, k_magic, sizeof k_magic);
    header.version = k_version;
    header.endian = k_endian_tag;
    header.section_count = std::uint32_t(sections_.size());
    header.file_bytes = offset;
    header.config_hash = config_hash;
    header.header_crc = 0;
    header.header_crc = crc32(&header, sizeof header);

    std::vector<std::uint8_t> image(offset, 0);
    std::memcpy(image.data(), &header, sizeof header);
    std::memcpy(image.data() + sizeof header, table.data(),
                sizeof(section_entry) * table.size());
    for (std::size_t i = 0; i < sections_.size(); ++i)
        std::memcpy(image.data() + table[i].offset,
                    sections_[i].payload.data(), sections_[i].payload.size());

    // tmp + fsync + rename + fsync(dir): the rename installs a fully
    // durable file or nothing.
    const std::string tmp = path + ".tmp";
    const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0)
        io_fail("cannot open", tmp);
    try {
        write_all(fd, image.data(), image.size(), tmp);
        if (::fsync(fd) != 0)
            io_fail("cannot fsync", tmp);
    } catch (...) {
        ::close(fd);
        ::unlink(tmp.c_str());
        throw;
    }
    if (::close(fd) != 0) {
        ::unlink(tmp.c_str());
        io_fail("cannot close", tmp);
    }
    if (::rename(tmp.c_str(), path.c_str()) != 0) {
        ::unlink(tmp.c_str());
        io_fail("cannot rename into place", path);
    }
    const int dir_fd = ::open(parent_dir(path).c_str(),
                              O_RDONLY | O_DIRECTORY);
    if (dir_fd >= 0) {
        ::fsync(dir_fd); // best effort: the rename itself already happened
        ::close(dir_fd);
    }
}

} // namespace lnuca::ckpt
