#include "src/ckpt/reader.h"

#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

namespace lnuca::ckpt {

namespace {

[[noreturn]] void reject(const std::string& path, const std::string& why)
{
    throw ckpt_error("checkpoint '" + path + "': " + why);
}

} // namespace

reader::reader(const std::string& path) : path_(path)
{
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0)
        reject(path, std::string("cannot open: ") + std::strerror(errno));

    struct stat st {};
    if (::fstat(fd, &st) != 0) {
        const int err = errno;
        ::close(fd);
        reject(path, std::string("cannot stat: ") + std::strerror(err));
    }
    data_.resize(std::size_t(st.st_size));
    std::size_t got = 0;
    while (got < data_.size()) {
        const ssize_t n =
            ::read(fd, data_.data() + got, data_.size() - got);
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0) {
            const int err = errno;
            ::close(fd);
            reject(path, std::string("short read: ") +
                             (n < 0 ? std::strerror(err) : "unexpected EOF"));
        }
        got += std::size_t(n);
    }
    ::close(fd);

    if (data_.size() < sizeof(file_header))
        reject(path, "truncated: smaller than the 64-byte header");
    std::memcpy(&header_, data_.data(), sizeof header_);

    if (std::memcmp(header_.magic, k_magic, sizeof k_magic) != 0)
        reject(path, "bad magic (not an LNCKPT file)");
    if (header_.endian != k_endian_tag)
        reject(path, "endian mismatch (written on a different-endian host)");
    if (header_.version != k_version)
        reject(path, "format version " + std::to_string(header_.version) +
                         " (this build reads version " +
                         std::to_string(k_version) + ")");

    file_header unsigned_header = header_;
    unsigned_header.header_crc = 0;
    if (crc32(&unsigned_header, sizeof unsigned_header) != header_.header_crc)
        reject(path, "header CRC mismatch (corrupt header)");
    if (header_.file_bytes != data_.size())
        reject(path, "truncated: header records " +
                         std::to_string(header_.file_bytes) + " bytes, file has " +
                         std::to_string(data_.size()));

    const std::size_t table_bytes =
        sizeof(section_entry) * std::size_t(header_.section_count);
    if (sizeof(file_header) + table_bytes > data_.size())
        reject(path, "truncated: section table extends past end of file");
    entries_.resize(header_.section_count);
    std::memcpy(entries_.data(), data_.data() + sizeof(file_header),
                table_bytes);

    for (const section_entry& e : entries_) {
        if (e.offset + e.size < e.offset || e.offset + e.size > data_.size())
            reject(path, std::string("section '") +
                             to_string(section_id(e.id)) +
                             "' extends past end of file");
        if (crc32(data_.data() + e.offset, std::size_t(e.size)) != e.crc)
            reject(path, std::string("section '") +
                             to_string(section_id(e.id)) + "' index " +
                             std::to_string(e.index) +
                             " CRC mismatch (corrupt payload)");
    }
}

const section_entry* reader::find(section_id id, std::uint32_t index) const
{
    for (const section_entry& e : entries_)
        if (e.id == std::uint32_t(id) && e.index == index)
            return &e;
    return nullptr;
}

bool reader::has_section(section_id id, std::uint32_t index) const
{
    return find(id, index) != nullptr;
}

void reader::open_section(section_id id, std::uint32_t index)
{
    if (open_)
        reject(path_, "open_section while another section is open");
    const section_entry* e = find(id, index);
    if (e == nullptr)
        reject(path_, std::string("missing section '") + to_string(id) +
                          "' index " + std::to_string(index) +
                          " (config/topology mismatch)");
    open_ = true;
    current_ = e;
    cursor_ = std::size_t(e->offset);
    limit_ = std::size_t(e->offset + e->size);
}

void reader::close_section()
{
    if (!open_)
        reject(path_, "close_section without an open section");
    if (cursor_ != limit_)
        reject(path_, std::string("section '") +
                          to_string(section_id(current_->id)) + "' index " +
                          std::to_string(current_->index) + ": " +
                          std::to_string(limit_ - cursor_) +
                          " unread bytes (reader/writer drift)");
    open_ = false;
    current_ = nullptr;
}

void reader::get_bytes(void* out, std::size_t size)
{
    if (!open_)
        reject(path_, "read outside a section");
    if (size > limit_ - cursor_)
        reject(path_, std::string("section '") +
                          to_string(section_id(current_->id)) +
                          "' underruns: read past payload end");
    std::memcpy(out, data_.data() + cursor_, size);
    cursor_ += size;
}

std::uint8_t reader::get_u8()
{
    std::uint8_t v;
    get_bytes(&v, 1);
    return v;
}

std::uint16_t reader::get_u16()
{
    std::uint16_t v;
    get_bytes(&v, 2);
    return v;
}

std::uint32_t reader::get_u32()
{
    std::uint32_t v;
    get_bytes(&v, 4);
    return v;
}

std::uint64_t reader::get_u64()
{
    std::uint64_t v;
    get_bytes(&v, 8);
    return v;
}

double reader::get_double()
{
    const std::uint64_t bits = get_u64();
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
}

std::string reader::get_string()
{
    const std::uint32_t n = get_u32();
    std::string s(n, '\0');
    get_bytes(s.data(), n);
    return s;
}

} // namespace lnuca::ckpt
