// Archive adapters over ckpt::writer / ckpt::reader. Components expose one
//
//     template <class Ar> void serialize(Ar& ar) { ar(a_); ar(b_); ... }
//
// member that both saves (Ar = ckpt::saver) and loads (Ar = ckpt::loader)
// from the same field list, so the two directions cannot drift apart. The
// template binds at instantiation, which also keeps component headers free
// of any ckpt dependency.
#pragma once

#include "src/ckpt/reader.h"
#include "src/ckpt/writer.h"
#include "src/common/stats.h"

#include <cstdint>
#include <string>
#include <type_traits>
#include <vector>

namespace lnuca::ckpt {

class saver {
public:
    static constexpr bool is_loading = false;

    explicit saver(writer& w) : w_(w) {}

    void operator()(std::uint8_t v) { w_.put_u8(v); }
    void operator()(std::uint16_t v) { w_.put_u16(v); }
    void operator()(std::uint32_t v) { w_.put_u32(v); }
    void operator()(std::uint64_t v) { w_.put_u64(v); }
    void operator()(bool v) { w_.put_bool(v); }
    void operator()(double v) { w_.put_double(v); }
    void operator()(const std::string& v) { w_.put_string(v); }

    template <class Enum,
              std::enable_if_t<std::is_enum_v<Enum>, int> = 0>
    void operator()(Enum v)
    {
        w_.put_u64(std::uint64_t(v));
    }

    template <class T> void operator()(const std::vector<T>& v)
    {
        w_.put_u64(v.size());
        for (const T& item : v)
            (*this)(item);
    }

    /// Nested objects with their own serialize member.
    template <class T,
              std::enable_if_t<std::is_class_v<T> &&
                                   !std::is_same_v<T, std::string>,
                               int> = 0>
    void operator()(const T& v)
    {
        const_cast<T&>(v).serialize(*this);
    }

    /// Counters are saved as (name, value) pairs and restored by name, so
    /// reordering or adding counters does not invalidate old checkpoints
    /// within a format version.
    void counters(const counter_set& c)
    {
        w_.put_u64(c.items().size());
        for (const auto& [name, value] : c.items()) {
            w_.put_string(name);
            w_.put_u64(value);
        }
    }

private:
    writer& w_;
};

class loader {
public:
    static constexpr bool is_loading = true;

    explicit loader(reader& r) : r_(r) {}

    void operator()(std::uint8_t& v) { v = r_.get_u8(); }
    void operator()(std::uint16_t& v) { v = r_.get_u16(); }
    void operator()(std::uint32_t& v) { v = r_.get_u32(); }
    void operator()(std::uint64_t& v) { v = r_.get_u64(); }
    void operator()(bool& v) { v = r_.get_bool(); }
    void operator()(double& v) { v = r_.get_double(); }
    void operator()(std::string& v) { v = r_.get_string(); }

    template <class Enum,
              std::enable_if_t<std::is_enum_v<Enum>, int> = 0>
    void operator()(Enum& v)
    {
        v = Enum(r_.get_u64());
    }

    template <class T> void operator()(std::vector<T>& v)
    {
        v.resize(std::size_t(r_.get_u64()));
        for (T& item : v)
            (*this)(item);
    }

    template <class T,
              std::enable_if_t<std::is_class_v<T> &&
                                   !std::is_same_v<T, std::string>,
                               int> = 0>
    void operator()(T& v)
    {
        v.serialize(*this);
    }

    void counters(counter_set& c)
    {
        const std::uint64_t n = r_.get_u64();
        for (std::uint64_t i = 0; i < n; ++i) {
            const std::string name = r_.get_string();
            const std::uint64_t value = r_.get_u64();
            c.set(name, value);
        }
    }

private:
    reader& r_;
};

} // namespace lnuca::ckpt
