// Checkpoint file format (LNCKPT1): versioned, sectioned, CRC-guarded.
//
// Layout (little-endian, all offsets from the start of the file; modeled on
// src/trace/format.h so both binary formats read the same way):
//
//   file_header                    64 bytes: magic, version, endian tag,
//                                  section count, config hash, header CRC
//   section_entry[section_count]   32 bytes each: id, index, payload extent
//                                  and payload CRC-32
//   per-section payloads           8-byte aligned byte streams
//
// A section is one component's serialized state (one `index` per replicated
// component: core 0, core 1, ...). Every payload carries its own CRC-32 and
// the header carries a CRC over itself, so any torn write, truncation or
// bit-rot is detected at open - a checkpoint either validates completely or
// the restore path falls back to a cold start (never to wrong results).
//
// What is deliberately NOT saved is as much a part of the format as what
// is: checkpoints are only written at quiescence (see DESIGN.md, "Checkpoint
// format and restore protocol"), so in-flight machinery - MSHRs, write
// buffers, lookup/refill pipelines, ROB contents, coherence transactions,
// NoC flit buffers - is empty by contract and is asserted empty rather than
// serialized.
#pragma once

#include <array>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace lnuca::ckpt {

inline constexpr char k_magic[8] = {'L', 'N', 'C', 'K', 'P', 'T', '1', '\0'};
inline constexpr std::uint32_t k_version = 1;
/// Written as a native u32; a reader on a differently-ordered host sees a
/// byte-swapped value and rejects the file instead of mis-decoding it.
inline constexpr std::uint32_t k_endian_tag = 0x01020304;

struct file_header {
    char magic[8];
    std::uint32_t version;
    std::uint32_t endian;
    std::uint32_t section_count;
    std::uint32_t header_crc; ///< CRC-32 of this header with the field zeroed
    std::uint64_t file_bytes; ///< total file size (truncation check)
    std::uint64_t config_hash; ///< run-identity hash (fast foreign-file reject)
    char reserved[24];         ///< zero; room for format growth
};
static_assert(sizeof(file_header) == 64, "checkpoint header layout drifted");

struct section_entry {
    std::uint32_t id;     ///< section_id value
    std::uint32_t index;  ///< replica index (core i, L1 i); 0 otherwise
    std::uint64_t offset; ///< payload bytes from file start, 8-aligned
    std::uint64_t size;   ///< payload bytes
    std::uint32_t crc;    ///< CRC-32 (IEEE) of the payload
    std::uint32_t pad;    ///< zero
};
static_assert(sizeof(section_entry) == 32, "checkpoint entry layout drifted");

/// Section identifiers. Values are part of the on-disk format - append
/// only, never renumber.
enum class section_id : std::uint32_t {
    meta = 1,    ///< run identity + progress cursor (always first)
    engine = 2,  ///< sim::engine clock/schedule counters
    core = 3,    ///< cpu::ooo_core, one per core (index = core)
    l1 = 4,      ///< private L1, one per core (index = core)
    hub = 5,     ///< coh::coherence_hub + directory (CMP only)
    bus = 6,     ///< mem::bus (conventional L1<->L2 connection)
    l2 = 7,      ///< shared conventional L2
    l3 = 8,      ///< shared conventional L3
    fabric = 9,  ///< fabric::lnuca_cache (tiles + transport state)
    dnuca = 10,  ///< dnuca::dnuca_cache (banks + mesh counters)
    memory = 11, ///< mem::main_memory
    stream = 12, ///< workload stream position, one per lane (index = lane)
    driver = 13, ///< hier::system run-driver progress (totals, window cursor)
    digests = 14, ///< per-component state_digest() values at save time
};

/// Any checkpoint failure that must NOT abort the run: corrupt/truncated
/// file, version or identity mismatch, unexpected layout. Callers catch it,
/// warn, and fall back to a cold start.
class ckpt_error : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

/// Thrown by the run drivers after a SIGTERM/SIGINT-requested checkpoint
/// has been durably saved: the job did not fail, it was preempted -
/// re-running with --resume continues from the snapshot. Deliberately not a
/// ckpt_error so the fallback-to-cold-start handlers never swallow it.
class interrupted : public std::runtime_error {
public:
    explicit interrupted(const std::string& path)
        : std::runtime_error("interrupted by signal; checkpoint saved at " +
                             path),
          checkpoint_path(path)
    {
    }

    std::string checkpoint_path;
};

/// CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) - the same CRC
/// zlib computes, hand-rolled so the checkpoint subsystem needs no
/// dependency. Incremental: pass the previous return value to continue.
inline std::uint32_t crc32(const void* data, std::size_t size,
                           std::uint32_t seed = 0)
{
    static const std::array<std::uint32_t, 256> table = [] {
        std::array<std::uint32_t, 256> t{};
        for (std::uint32_t n = 0; n < 256; ++n) {
            std::uint32_t c = n;
            for (int bit = 0; bit < 8; ++bit)
                c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
            t[n] = c;
        }
        return t;
    }();
    std::uint32_t crc = seed ^ 0xFFFFFFFFu;
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < size; ++i)
        crc = table[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
    return crc ^ 0xFFFFFFFFu;
}

constexpr const char* to_string(section_id id)
{
    switch (id) {
    case section_id::meta: return "meta";
    case section_id::engine: return "engine";
    case section_id::core: return "core";
    case section_id::l1: return "l1";
    case section_id::hub: return "hub";
    case section_id::bus: return "bus";
    case section_id::l2: return "l2";
    case section_id::l3: return "l3";
    case section_id::fabric: return "fabric";
    case section_id::dnuca: return "dnuca";
    case section_id::memory: return "memory";
    case section_id::stream: return "stream";
    case section_id::driver: return "driver";
    case section_id::digests: return "digests";
    }
    return "unknown";
}

} // namespace lnuca::ckpt
