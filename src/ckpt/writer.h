// Checkpoint writer: sections are accumulated in memory and written out
// atomically - tmp file + fsync + rename + fsync of the containing
// directory - so a crash mid-save leaves either the previous complete
// checkpoint or none, never a torn one.
#pragma once

#include "src/ckpt/format.h"

#include <cstdint>
#include <string>
#include <vector>

namespace lnuca::ckpt {

class writer {
public:
    /// Open a section. Sections cannot nest; every begin_section must be
    /// paired with end_section before the next begin or finalize.
    void begin_section(section_id id, std::uint32_t index = 0);
    void end_section();

    void put_bytes(const void* data, std::size_t size);
    void put_u8(std::uint8_t v) { put_bytes(&v, 1); }
    void put_u16(std::uint16_t v) { put_bytes(&v, 2); }
    void put_u32(std::uint32_t v) { put_bytes(&v, 4); }
    void put_u64(std::uint64_t v) { put_bytes(&v, 8); }
    void put_bool(bool v) { put_u8(v ? 1 : 0); }
    void put_double(double v);
    /// Length-prefixed (u32) byte string.
    void put_string(const std::string& s);

    std::size_t section_count() const { return sections_.size(); }

    /// Write header + section table + payloads to `path` atomically.
    /// Throws ckpt_error on any I/O failure (callers warn and carry on -
    /// a failed save must never kill the run it is protecting).
    void finalize(const std::string& path, std::uint64_t config_hash) const;

private:
    struct section {
        section_id id;
        std::uint32_t index;
        std::vector<std::uint8_t> payload;
    };

    std::vector<section> sections_;
    bool open_ = false;
};

} // namespace lnuca::ckpt
