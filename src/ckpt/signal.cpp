#include "src/ckpt/signal.h"

#include <csignal>

namespace lnuca::ckpt {

namespace {

volatile std::sig_atomic_t g_signal = 0;

void latch(int signum)
{
    g_signal = signum;
}

} // namespace

void install_signal_handlers()
{
    struct sigaction action {};
    action.sa_handler = latch;
    sigemptyset(&action.sa_mask);
    action.sa_flags = 0; // no SA_RESTART: let blocking syscalls wake up
    ::sigaction(SIGTERM, &action, nullptr);
    ::sigaction(SIGINT, &action, nullptr);
}

bool interrupt_requested()
{
    return g_signal != 0;
}

int interrupt_signal()
{
    return int(g_signal);
}

void clear_interrupt()
{
    g_signal = 0;
}

} // namespace lnuca::ckpt
