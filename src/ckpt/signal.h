// Async-signal-safe SIGTERM/SIGINT latch. run_app installs the handlers
// only when checkpointing is enabled; the run drivers poll the latch at
// chunk/window boundaries, save a checkpoint, and throw ckpt::interrupted.
// Termination latency is therefore bounded by one checkpoint interval.
#pragma once

namespace lnuca::ckpt {

/// Install SIGTERM + SIGINT handlers that latch a flag (no other action).
void install_signal_handlers();

/// True once SIGTERM or SIGINT has been received.
bool interrupt_requested();

/// The latched signal number (0 if none).
int interrupt_signal();

/// Reset the latch (tests only).
void clear_interrupt();

} // namespace lnuca::ckpt
