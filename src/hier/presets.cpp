#include "src/hier/presets.h"

#include "src/common/types.h"

namespace lnuca::hier {

namespace {

mem::cache_config l1_write_through()
{
    mem::cache_config c;
    c.name = "L1";
    c.size_bytes = 32_KiB;
    c.ways = 4;
    c.block_bytes = 32;
    c.completion_latency = 2;
    c.initiation_interval = 1;
    c.ports = 2;
    c.write_through = true;
    c.mshr_entries = 16;
    c.mshr_secondary = 4;
    c.write_buffer_entries = 32;
    c.level_tag = mem::service_level::l1;
    return c;
}

mem::cache_config r_tile()
{
    // The r-tile keeps the L1's geometry and timing but participates in the
    // fabric's exclusive victim flow: copy-back, no allocation on store
    // misses (they leave towards the L3, Fig. 2(c)), and every victim -
    // clean or dirty - enters the replacement network.
    mem::cache_config c = l1_write_through();
    c.name = "r-tile";
    c.write_through = false;
    c.write_allocate = false;
    c.writeback_clean = true;
    return c;
}

mem::cache_config l2_cache()
{
    mem::cache_config c;
    c.name = "L2";
    c.size_bytes = 256_KiB;
    c.ways = 8;
    c.block_bytes = 64;
    c.completion_latency = 4;
    c.initiation_interval = 2;
    c.ports = 1;
    c.write_through = false;
    c.serial_access = true;
    c.mshr_entries = 16;
    c.mshr_secondary = 4;
    c.write_buffer_entries = 32;
    c.level_tag = mem::service_level::l2;
    return c;
}

mem::cache_config l3_cache()
{
    mem::cache_config c;
    c.name = "L3";
    c.size_bytes = 8_MiB;
    c.ways = 16;
    c.block_bytes = 128;
    c.completion_latency = 20;
    c.initiation_interval = 15; // per bank (serial low-power arrays)
    c.ports = 1;
    c.banks = 4; // Core 2-class LLCs are line-interleaved across banks
    c.write_through = false;
    c.mshr_entries = 8;
    c.mshr_secondary = 4;
    c.write_buffer_entries = 32;
    c.level_tag = mem::service_level::l3;
    return c;
}

system_config common_base()
{
    system_config s;
    s.core = cpu::core_config{};
    s.l1 = l1_write_through();
    s.l2 = l2_cache();
    s.l3 = l3_cache();
    s.memory = mem::main_memory_config{};
    return s;
}

} // namespace

namespace presets {

system_config l2_256kb()
{
    system_config s = common_base();
    s.name = "L2-256KB";
    s.kind = hierarchy_kind::conventional;
    return s;
}

system_config lnuca_l3(unsigned levels)
{
    system_config s = common_base();
    s.name = lnuca_config_name(levels);
    s.kind = hierarchy_kind::lnuca_l3;
    s.l1 = r_tile();
    s.fabric.levels = levels;
    return s;
}

system_config dnuca_4x8()
{
    system_config s = common_base();
    s.name = "DN-4x8";
    s.kind = hierarchy_kind::dnuca;
    return s;
}

system_config lnuca_dnuca(unsigned levels)
{
    system_config s = common_base();
    s.name = "LN" + std::to_string(levels) + " + DN-4x8";
    s.kind = hierarchy_kind::lnuca_dnuca;
    s.l1 = r_tile();
    s.fabric.levels = levels;
    return s;
}

system_config cmp(const system_config& base, unsigned cores)
{
    system_config s = base;
    s.cores = cores;
    s.name = base.name + "-" + std::to_string(cores) + "c";

    // Private L1s are copy-back write-allocate (MESI needs an M state to
    // live somewhere) and notify the directory of every eviction - clean
    // victims included - so the sharer masks track L1 contents exactly.
    s.l1.write_through = false;
    s.l1.write_allocate = true;
    s.l1.writeback_clean = true;
    s.l1.coherent = true;

    coh::coherence_config& c = s.coherence;
    c.cores = cores;
    c.block_bytes = s.l1.block_bytes;
    switch (s.kind) {
    case hierarchy_kind::conventional:
        // Coherence messages cross the same narrow shared bus the L2
        // refills ride (two arbitration cycles each way; a forwarded line
        // streams over 16B wires).
        c.request_latency = 2;
        c.response_latency = 2;
        c.snoop_latency = 2;
        c.c2c_latency = 8;
        c.forward_clean_victims = false;
        break;
    case hierarchy_kind::lnuca_l3:
    case hierarchy_kind::lnuca_dnuca:
        // Abutted message-wide links: one hop in, one hop out. Clean
        // victims keep feeding the fabric - evictions are its fill path.
        c.request_latency = 1;
        c.response_latency = 1;
        c.snoop_latency = 2;
        c.c2c_latency = 4;
        c.forward_clean_victims = true;
        break;
    case hierarchy_kind::dnuca:
        // Mesh entry/exit plus a couple of switch traversals.
        c.request_latency = 2;
        c.response_latency = 2;
        c.snoop_latency = 2;
        c.c2c_latency = 6;
        c.forward_clean_victims = false;
        break;
    }
    return s;
}

} // namespace presets

std::optional<sampling_config> parse_sampling_spec(const std::string& spec)
{
    if (spec == "off")
        return sampling_config{};
    const std::string prefix = "periodic:";
    if (spec.rfind(prefix, 0) != 0)
        return std::nullopt;
    std::vector<std::uint64_t> fields;
    std::size_t pos = prefix.size();
    while (pos <= spec.size()) {
        const std::size_t sep = spec.find(':', pos);
        const std::string field =
            spec.substr(pos, sep == std::string::npos ? sep : sep - pos);
        if (field.empty())
            return std::nullopt;
        // Digits only: stoull would silently wrap "-6000" and accept "+5".
        for (const char ch : field)
            if (ch < '0' || ch > '9')
                return std::nullopt;
        try {
            std::size_t used = 0;
            fields.push_back(std::stoull(field, &used));
            if (used != field.size())
                return std::nullopt;
        } catch (...) {
            return std::nullopt;
        }
        if (sep == std::string::npos)
            break;
        pos = sep + 1;
    }
    if (fields.size() < 2 || fields.size() > 3)
        return std::nullopt;
    sampling_config sc;
    sc.enabled = true;
    sc.detail_instructions = fields[0];
    sc.period_instructions = fields[1];
    sc.detail_warmup = fields.size() == 3 ? fields[2] : fields[0] / 2;
    if (sc.detail_instructions == 0 || sc.period_instructions == 0)
        return std::nullopt;
    return sc;
}

std::string lnuca_config_name(unsigned levels)
{
    const fabric::geometry geo(levels);
    const std::uint64_t kb = (32_KiB + geo.tile_count() * 8_KiB) / 1024;
    return "LN" + std::to_string(levels) + "-" + std::to_string(kb) + "KB";
}

} // namespace lnuca::hier
