#include "src/hier/presets.h"

#include "src/common/types.h"

#include <cctype>

namespace lnuca::hier {

namespace {

mem::cache_config l1_write_through()
{
    mem::cache_config c;
    c.name = "L1";
    c.size_bytes = 32_KiB;
    c.ways = 4;
    c.block_bytes = 32;
    c.completion_latency = 2;
    c.initiation_interval = 1;
    c.ports = 2;
    c.write_through = true;
    c.mshr_entries = 16;
    c.mshr_secondary = 4;
    c.write_buffer_entries = 32;
    c.level_tag = mem::service_level::l1;
    return c;
}

mem::cache_config r_tile()
{
    // The r-tile keeps the L1's geometry and timing but participates in the
    // fabric's exclusive victim flow: copy-back, no allocation on store
    // misses (they leave towards the L3, Fig. 2(c)), and every victim -
    // clean or dirty - enters the replacement network.
    mem::cache_config c = l1_write_through();
    c.name = "r-tile";
    c.write_through = false;
    c.write_allocate = false;
    c.writeback_clean = true;
    return c;
}

mem::cache_config l2_cache()
{
    mem::cache_config c;
    c.name = "L2";
    c.size_bytes = 256_KiB;
    c.ways = 8;
    c.block_bytes = 64;
    c.completion_latency = 4;
    c.initiation_interval = 2;
    c.ports = 1;
    c.write_through = false;
    c.serial_access = true;
    c.mshr_entries = 16;
    c.mshr_secondary = 4;
    c.write_buffer_entries = 32;
    c.level_tag = mem::service_level::l2;
    return c;
}

mem::cache_config l3_cache()
{
    mem::cache_config c;
    c.name = "L3";
    c.size_bytes = 8_MiB;
    c.ways = 16;
    c.block_bytes = 128;
    c.completion_latency = 20;
    c.initiation_interval = 15; // per bank (serial low-power arrays)
    c.ports = 1;
    c.banks = 4; // Core 2-class LLCs are line-interleaved across banks
    c.write_through = false;
    c.mshr_entries = 8;
    c.mshr_secondary = 4;
    c.write_buffer_entries = 32;
    c.level_tag = mem::service_level::l3;
    return c;
}

system_config common_base()
{
    system_config s;
    s.core = cpu::core_config{};
    s.l1 = l1_write_through();
    s.l2 = l2_cache();
    s.l3 = l3_cache();
    s.memory = mem::main_memory_config{};
    return s;
}

} // namespace

namespace presets {

system_config l2_256kb()
{
    system_config s = common_base();
    s.name = "L2-256KB";
    s.kind = hierarchy_kind::conventional;
    return s;
}

system_config lnuca_l3(unsigned levels)
{
    system_config s = common_base();
    s.name = lnuca_config_name(levels);
    s.kind = hierarchy_kind::lnuca_l3;
    s.l1 = r_tile();
    s.fabric.levels = levels;
    return s;
}

system_config dnuca_4x8()
{
    system_config s = common_base();
    s.name = "DN-4x8";
    s.kind = hierarchy_kind::dnuca;
    return s;
}

system_config lnuca_dnuca(unsigned levels)
{
    system_config s = common_base();
    s.name = "LN" + std::to_string(levels) + " + DN-4x8";
    s.kind = hierarchy_kind::lnuca_dnuca;
    s.l1 = r_tile();
    s.fabric.levels = levels;
    return s;
}

system_config cmp(const system_config& base, unsigned cores)
{
    system_config s = base;
    s.cores = cores;
    s.name = base.name + "-" + std::to_string(cores) + "c";

    // Private L1s are copy-back write-allocate (MESI needs an M state to
    // live somewhere) and notify the directory of every eviction - clean
    // victims included - so the sharer masks track L1 contents exactly.
    s.l1.write_through = false;
    s.l1.write_allocate = true;
    s.l1.writeback_clean = true;
    s.l1.coherent = true;

    coh::coherence_config& c = s.coherence;
    c.cores = cores;
    c.block_bytes = s.l1.block_bytes;
    switch (s.kind) {
    case hierarchy_kind::conventional:
        // Coherence messages cross the same narrow shared bus the L2
        // refills ride (two arbitration cycles each way; a forwarded line
        // streams over 16B wires).
        c.request_latency = 2;
        c.response_latency = 2;
        c.snoop_latency = 2;
        c.c2c_latency = 8;
        c.forward_clean_victims = false;
        break;
    case hierarchy_kind::lnuca_l3:
    case hierarchy_kind::lnuca_dnuca:
        // Abutted message-wide links: one hop in, one hop out. Clean
        // victims keep feeding the fabric - evictions are its fill path.
        c.request_latency = 1;
        c.response_latency = 1;
        c.snoop_latency = 2;
        c.c2c_latency = 4;
        c.forward_clean_victims = true;
        break;
    case hierarchy_kind::dnuca:
        // Mesh entry/exit plus a couple of switch traversals.
        c.request_latency = 2;
        c.response_latency = 2;
        c.snoop_latency = 2;
        c.c2c_latency = 6;
        c.forward_clean_victims = false;
        break;
    }
    return s;
}

std::optional<system_config> by_name(const std::string& name)
{
    std::string n;
    n.reserve(name.size());
    for (const char ch : name)
        if (ch != ' ')
            n += char(std::tolower(static_cast<unsigned char>(ch)));
    if (n == "l2" || n == "l2-256kb")
        return l2_256kb();
    if (n == "dnuca" || n == "dn-4x8")
        return dnuca_4x8();
    for (unsigned levels = 2; levels <= 4; ++levels) {
        const std::string ln = "ln" + std::to_string(levels);
        std::string full = lnuca_config_name(levels);
        for (char& ch : full)
            ch = char(std::tolower(static_cast<unsigned char>(ch)));
        if (n == ln || n == full)
            return lnuca_l3(levels);
        if (n == ln + "+dn" || n == ln + "+dn-4x8")
            return lnuca_dnuca(levels);
    }
    return std::nullopt;
}

} // namespace presets

namespace {

bool override_cache(mem::cache_config& c, const std::string& field,
                    std::uint64_t v)
{
    if (field == "size_kb")
        c.size_bytes = v * 1024;
    else if (field == "ways")
        c.ways = std::uint32_t(v);
    else if (field == "block_bytes")
        c.block_bytes = std::uint32_t(v);
    else if (field == "completion_latency")
        c.completion_latency = std::uint32_t(v);
    else if (field == "initiation_interval")
        c.initiation_interval = std::uint32_t(v);
    else if (field == "ports")
        c.ports = std::uint32_t(v);
    else if (field == "banks")
        c.banks = std::uint32_t(v);
    else if (field == "mshr_entries")
        c.mshr_entries = std::uint32_t(v);
    else if (field == "mshr_secondary")
        c.mshr_secondary = std::uint32_t(v);
    else if (field == "write_buffer_entries")
        c.write_buffer_entries = std::uint32_t(v);
    else
        return false;
    return true;
}

bool override_core(cpu::core_config& c, const std::string& field,
                   std::uint64_t v)
{
    if (field == "fetch_width")
        c.fetch_width = unsigned(v);
    else if (field == "dispatch_width")
        c.dispatch_width = unsigned(v);
    else if (field == "commit_width")
        c.commit_width = unsigned(v);
    else if (field == "rob_size")
        c.rob_size = unsigned(v);
    else if (field == "lsq_size")
        c.lsq_size = unsigned(v);
    else if (field == "store_buffer_size")
        c.store_buffer_size = unsigned(v);
    else if (field == "mispredict_penalty")
        c.mispredict_penalty = unsigned(v);
    else if (field == "tlb_entries")
        c.tlb_entries = unsigned(v);
    else
        return false;
    return true;
}

bool override_fabric(fabric::fabric_config& c, const std::string& field,
                     std::uint64_t v)
{
    if (field == "levels")
        c.levels = unsigned(v);
    else if (field == "mshr_entries")
        c.mshr_entries = std::uint32_t(v);
    else if (field == "inject_queue_depth")
        c.inject_queue_depth = std::uint32_t(v);
    else if (field == "evict_queue_depth")
        c.evict_queue_depth = std::uint32_t(v);
    else if (field == "exit_queue_depth")
        c.exit_queue_depth = std::uint32_t(v);
    else
        return false;
    return true;
}

bool override_dnuca(dnuca::dnuca_config& c, const std::string& field,
                    std::uint64_t v)
{
    if (field == "bank_sets")
        c.bank_sets = unsigned(v);
    else if (field == "rows")
        c.rows = unsigned(v);
    else if (field == "bank_kb")
        c.bank_bytes = v * 1024;
    else if (field == "bank_ways")
        c.bank_ways = std::uint32_t(v);
    else if (field == "bank_latency")
        c.bank_latency = std::uint32_t(v);
    else
        return false;
    return true;
}

bool override_memory(mem::main_memory_config& c, const std::string& field,
                     std::uint64_t v)
{
    if (field == "first_chunk_latency")
        c.first_chunk_latency = std::uint32_t(v);
    else if (field == "inter_chunk_latency")
        c.inter_chunk_latency = std::uint32_t(v);
    else if (field == "queue_depth")
        c.queue_depth = std::uint32_t(v);
    else
        return false;
    return true;
}

bool override_bus(mem::bus_config& c, const std::string& field,
                  std::uint64_t v)
{
    if (field == "width_bytes")
        c.width_bytes = std::uint32_t(v);
    else if (field == "arbitration")
        c.arbitration = std::uint32_t(v);
    else if (field == "response_bytes")
        c.response_bytes = std::uint32_t(v);
    else
        return false;
    return true;
}

} // namespace

bool apply_config_override(system_config& config, const std::string& key,
                           std::uint64_t value, std::string* error)
{
    const std::size_t dot = key.find('.');
    bool ok = false;
    if (dot != std::string::npos && dot != 0 && dot + 1 < key.size()) {
        const std::string group = key.substr(0, dot);
        const std::string field = key.substr(dot + 1);
        if (group == "l1")
            ok = override_cache(config.l1, field, value);
        else if (group == "l2")
            ok = override_cache(config.l2, field, value);
        else if (group == "l3")
            ok = override_cache(config.l3, field, value);
        else if (group == "core")
            ok = override_core(config.core, field, value);
        else if (group == "fabric")
            ok = override_fabric(config.fabric, field, value);
        else if (group == "dnuca")
            ok = override_dnuca(config.dnuca, field, value);
        else if (group == "memory")
            ok = override_memory(config.memory, field, value);
        else if (group == "bus")
            ok = override_bus(config.l1_l2_bus, field, value);
    }
    if (!ok && error != nullptr)
        *error = "unknown system_config override key '" + key + "'";
    return ok;
}

std::optional<sampling_config> parse_sampling_spec(const std::string& spec)
{
    if (spec == "off")
        return sampling_config{};
    const std::string prefix = "periodic:";
    if (spec.rfind(prefix, 0) != 0)
        return std::nullopt;
    std::vector<std::uint64_t> fields;
    std::size_t pos = prefix.size();
    while (pos <= spec.size()) {
        const std::size_t sep = spec.find(':', pos);
        const std::string field =
            spec.substr(pos, sep == std::string::npos ? sep : sep - pos);
        if (field.empty())
            return std::nullopt;
        // Digits only: stoull would silently wrap "-6000" and accept "+5".
        for (const char ch : field)
            if (ch < '0' || ch > '9')
                return std::nullopt;
        try {
            std::size_t used = 0;
            fields.push_back(std::stoull(field, &used));
            if (used != field.size())
                return std::nullopt;
        } catch (...) {
            return std::nullopt;
        }
        if (sep == std::string::npos)
            break;
        pos = sep + 1;
    }
    if (fields.size() < 2 || fields.size() > 3)
        return std::nullopt;
    sampling_config sc;
    sc.enabled = true;
    sc.detail_instructions = fields[0];
    sc.period_instructions = fields[1];
    sc.detail_warmup = fields.size() == 3 ? fields[2] : fields[0] / 2;
    if (sc.detail_instructions == 0 || sc.period_instructions == 0)
        return std::nullopt;
    return sc;
}

std::string lnuca_config_name(unsigned levels)
{
    const fabric::geometry geo(levels);
    const std::uint64_t kb = (32_KiB + geo.tile_count() * 8_KiB) / 1024;
    return "LN" + std::to_string(levels) + "-" + std::to_string(kb) + "KB";
}

} // namespace lnuca::hier
