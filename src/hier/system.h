// Whole-system assembly: core + hierarchy + memory on one engine, plus the
// run driver (warm-up, measurement window, statistics harvesting).
#pragma once

#include "src/coh/coherence_hub.h"
#include "src/cpu/ooo_core.h"
#include "src/dnuca/dnuca_cache.h"
#include "src/fabric/lnuca_cache.h"
#include "src/hier/presets.h"
#include "src/mem/bus.h"
#include "src/mem/cache.h"
#include "src/mem/main_memory.h"
#include "src/power/energy_model.h"
#include "src/sim/engine.h"
#include "src/workloads/synthetic.h"

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace lnuca::trace {
class trace_data;
class trace_writer;
} // namespace lnuca::trace

namespace lnuca::hier {

/// Outcome of one experiment job. `ok` rows carry real measurements; the
/// failure states carry a zeroed result plus run_result::error, so a sweep
/// with a crashing or stalled job still produces one structured row per
/// job instead of aborting (src/exp/runner.cpp threads these through the
/// report, every sink, and decode_json_line).
enum class run_status : std::uint8_t {
    ok = 0,          ///< measured normally
    failed,          ///< the job threw; error holds the exception text
    timed_out,       ///< exceeded the per-job soft timeout (worker abandoned)
    skipped_resumed, ///< --resume: row reloaded from the existing output
};

constexpr const char* to_string(run_status s)
{
    switch (s) {
    case run_status::ok: return "ok";
    case run_status::failed: return "failed";
    case run_status::timed_out: return "timed_out";
    case run_status::skipped_resumed: return "skipped_resumed";
    }
    return "unknown";
}

/// Everything a bench/table needs from one (config, workload) run.
struct run_result {
    std::string config_name;
    std::string workload_name;
    bool floating_point = false;

    // Job outcome (see run_status). Failure rows keep the identity fields
    // and host_seconds but zero every measurement; `error` is empty unless
    // status is failed/timed_out.
    run_status status = run_status::ok;
    std::string error;

    std::uint64_t instructions = 0;
    std::uint64_t cycles = 0;
    double ipc = 0.0;

    // Read-hit distribution (Table III): conventional L2 hits, or per
    // L-NUCA level read hits (index = level, 2-based).
    std::uint64_t l2_read_hits = 0;
    std::vector<std::uint64_t> fabric_read_hits;

    // Transport latency accounting (Table III right).
    std::uint64_t transport_actual = 0;
    std::uint64_t transport_min = 0;

    // Contention restarts (Section III-C: "rarely occurs" - verified).
    std::uint64_t search_restarts = 0;
    std::uint64_t searches = 0;

    power::energy_breakdown energy;

    // Load service distribution as seen by the core.
    std::uint64_t loads_l1 = 0;
    std::uint64_t loads_fabric = 0;
    std::uint64_t loads_l2 = 0;
    std::uint64_t loads_l3 = 0;
    std::uint64_t loads_dnuca = 0;
    std::uint64_t loads_memory = 0;
    std::uint64_t loads_peer = 0; ///< CMP: cache-to-cache from a peer L1
    double avg_load_latency = 0.0;

    // CMP mode (cores > 1): per-core committed-instruction IPC in core
    // order, and - when the caller supplies a single-core baseline (see
    // weighted_speedup()) - the multiprogrammed weighted speedup
    // sum_i(IPC_i / IPC_single_i). Single-core runs leave cores == 1,
    // per_core_ipc empty and weighted_speedup 0.
    std::uint32_t cores = 1;
    std::vector<double> per_core_ipc;
    double weighted_speedup = 0.0;

    // Sampled execution (see sampling_config). When `sampled` is true,
    // cycles/ipc/energy/loads are statistical estimates extrapolated from
    // the measured windows; when false they are exact measurements and the
    // sampling fields below are zero.
    bool sampled = false;
    std::uint64_t sampled_windows = 0;      ///< detailed windows measured
    std::uint64_t measured_instructions = 0; ///< instructions inside windows
    double ipc_ci95 = 0.0; ///< half-width of the 95% CI around `ipc`

    // Host-side throughput of the measurement window. These are the only
    // fields that are *not* deterministic - exclude them from bit-identity
    // comparisons (exp_test/hier_test do).
    double host_seconds = 0.0;
    double sim_cycles_per_second = 0.0;    ///< cycles / host_seconds
    double sim_instructions_per_second = 0.0;
};

/// One core's front-end assignment: what to run and where its data lives.
/// Scenario/trace profiles carry their own addresses and ignore
/// region_base; synthetic lanes use it to place the data region - two
/// lanes may name the same base (shared-region overlap), which the
/// default disjoint layout cannot express.
struct lane_spec {
    wl::workload_profile profile;
    /// 0 selects the default disjoint per-core slot
    /// (0x10000000 + core * 0x40000000).
    addr_t region_base = 0;
};

class system {
public:
    system(const system_config& config, const wl::workload_profile& workload,
           std::uint64_t seed);

    /// CMP construction: core i runs workloads[i % workloads.size()] on
    /// its own rng::split lane with a disjoint address region (a
    /// multiprogrammed mix). A single profile replicates into a
    /// rate-style homogeneous mix. cores == 1 ignores all but the first
    /// profile and builds the exact single-core wiring.
    system(const system_config& config,
           const std::vector<wl::workload_profile>& workloads,
           std::uint64_t seed);

    /// Full-control construction: core i runs lanes[i % lanes.size()].
    /// The profile-based constructors forward here with region_base = 0
    /// (default disjoint layout), so private-lane callers are untouched.
    system(const system_config& config, const std::vector<lane_spec>& lanes,
           std::uint64_t seed);

    /// Writes the capture file (config.capture_path), if one was recorded.
    ~system();

    /// Run `warmup` instructions (discarded), then `instructions` measured.
    /// When config.sampling.enabled, the measured span executes as
    /// fast-forward + periodic detailed windows and the result carries
    /// statistical estimates (run_result::sampled). CMP runs (cores > 1)
    /// sample too: functional retirement round-robins across the lanes and
    /// the coherence hub applies warm MESI transitions, so directory and
    /// L1 permission state stay exact across fast-forward (requires the
    /// coherence hub - a hierarchy without one cannot honor the CMP warm
    /// contract and run() throws).
    run_result run(std::uint64_t instructions, std::uint64_t warmup);

    unsigned cores() const { return unsigned(cores_.size()); }
    cpu::ooo_core& core() { return *cores_.front(); }
    cpu::ooo_core& core(unsigned i) { return *cores_[i]; }
    fabric::lnuca_cache* fabric() { return fabric_.get(); }
    dnuca::dnuca_cache* dnuca() { return dnuca_.get(); }
    mem::conventional_cache& l1() { return *l1s_.front(); }
    mem::conventional_cache& l1(unsigned i) { return *l1s_[i]; }
    mem::conventional_cache* l2() { return l2_.get(); }
    mem::conventional_cache* l3() { return l3_.get(); }
    mem::main_memory& memory() { return *memory_; }
    mem::bus* l1_l2_bus() { return l1_l2_bus_.get(); }
    coh::coherence_hub* hub() { return hub_.get(); }
    sim::engine& engine() { return engine_; }

private:
    struct window_totals;
    struct level_snapshot;

    /// Which shared-level components this hierarchy kind carries.
    struct level_set {
        bool fabric = false;
        bool l2 = false;
        bool l3 = false;
        bool dnuca = false;
    };
    level_set levels() const;

    void build_single(const lane_spec& lane);
    void build_cmp(const std::vector<lane_spec>& lanes);
    /// Realise one lane's stream: synthetic generator, trace replay, or
    /// scenario lane - wrapped for capture when config.capture_path is set.
    std::unique_ptr<wl::workload_stream> make_lane_stream(const lane_spec& spec,
                                                          unsigned lane);
    /// Open/generate (and cache) the trace behind a trace/scenario profile.
    std::shared_ptr<const trace::trace_data>
    trace_source(const wl::workload_profile& profile);
    /// Construct the shared level + memory (canonical seed derivations).
    void build_shared_components();
    /// Wire and register the shared level beneath `above` (the lone L1 or
    /// the coherence hub) and return its entry port. Registers memory.
    mem::mem_port* wire_shared_level(mem::mem_client* above);
    void prewarm();
    run_result run_cmp(std::uint64_t instructions, std::uint64_t warmup);
    run_result run_sampled(std::uint64_t instructions, std::uint64_t warmup);
    /// Sampled CMP: run_sampled's window placement and statistics with
    /// per-lane functional retirement (see fast_forward) and per-core IPC
    /// measured inside the detailed windows.
    run_result run_cmp_sampled(std::uint64_t instructions,
                               std::uint64_t warmup);
    /// Shared tail of the sampled drivers: mean-CPI point estimate +
    /// delta-method 95% CI from the per-window series, extrapolation of the
    /// measured event counts to `retired` instructions. Fills every
    /// run_result field except the identity ones (names, cores,
    /// per_core_ipc).
    void assemble_sampled(run_result& r, const window_totals& totals,
                          std::uint64_t retired, double host_seconds) const;
    /// All components idle (nothing in flight anywhere).
    bool quiescent() const;
    /// Run detailed until quiescent (pre-fast-forward drain).
    void drain(cycle_t max_cycles);
    /// Fast-forward `count` instructions functionally and advance the clock.
    void fast_forward(std::uint64_t count);
    /// CMP fast-forward with rate matching: lane i advances by
    /// count * rates[i] / mean(rates) (mean-normalised, so the aggregate
    /// retirement still equals count * cores). Dense CMP execution lets
    /// fast lanes drift ahead of slow ones; feeding back the per-lane IPC
    /// measured in the previous detailed window reproduces that drift, so
    /// windows observe the same lane alignment (and hence the same
    /// sharing/migration pattern) the dense reference reaches.
    void fast_forward_rated(std::uint64_t count,
                            const std::vector<double>& rates);
    /// One detailed segment of `instructions`; when `totals` is non-null the
    /// segment is measured into it (otherwise it only re-warms timing state).
    void detailed_segment(std::uint64_t instructions, cycle_t max_cycles,
                          window_totals* totals);
    // Counter-snapshot/harvest plumbing shared by the exact, sampled and
    // CMP drivers (one implementation of the delta arithmetic each).
    level_snapshot snap_levels() const;
    void harvest_levels(const level_snapshot& snap, window_totals& totals);
    void harvest_core(cpu::ooo_core& core, window_totals& totals) const;
    /// Copy the harvested totals (hit distribution, transport, load service
    /// levels, latency, energy) into `r`; r.cycles must already be set.
    void apply_totals(run_result& r, const window_totals& totals) const;

    // --- checkpoint/restore (src/ckpt/) --------------------------------
    // The drivers call checkpoint_boundary() at every quiescent chunk or
    // window boundary; save_checkpoint/try_load_checkpoint own the section
    // layout (one section per component, see ckpt::section_id), while the
    // driver-specific progress cursor travels through the save/load
    // callbacks into the `driver` section.

    /// Identity hash stored in the file header: config name/kind/cores,
    /// seed, engine mode, sampling spec, lane profiles and the major
    /// capacity parameters. A checkpoint from any other run is rejected
    /// before a single byte of state is restored.
    std::uint64_t ckpt_config_hash() const;
    /// Component digest list in the fixed section order (save writes it
    /// into the `digests` section; restore recomputes and compares).
    std::vector<std::pair<std::string, std::uint64_t>> component_digests() const;
    /// Serialize the complete simulator state and atomically replace
    /// config_.checkpoint.path. Never throws: a failed save warns and the
    /// run it protects carries on.
    void save_checkpoint(std::uint64_t run_instructions,
                         std::uint64_t run_warmup,
                         const std::function<void(ckpt::writer&)>& driver_save);
    /// Restore from config_.checkpoint.path when checkpoint.resume is set.
    /// Returns false on the normal cold starts (resume off, no file yet) and
    /// on any defect detected before state is touched (CRC, version, config
    /// hash, meta mismatch - after an LNUCA_WARN). Throws ckpt::ckpt_error
    /// if the state was already partially loaded when a defect surfaced:
    /// the system is then unusable and the caller must rebuild it cold
    /// (exp::execute_job does).
    bool try_load_checkpoint(
        std::uint64_t run_instructions, std::uint64_t run_warmup,
        const std::function<void(ckpt::reader&)>& driver_load);
    /// Cadence/signal check at a quiescent boundary: saves when `retired`
    /// crossed checkpoint.every since the last save or a SIGTERM/SIGINT is
    /// latched, then fires the halt_after and LNUCA_CKPT_EXIT_AFTER test
    /// hooks and converts a latched signal into ckpt::interrupted.
    void checkpoint_boundary(
        std::uint64_t retired, std::uint64_t run_instructions,
        std::uint64_t run_warmup,
        const std::function<void(ckpt::writer&)>& driver_save);
    /// Successful completion: unlink the snapshot (a stale one would
    /// "resume" a finished run).
    void checkpoint_complete();

    system_config config_;
    std::uint64_t seed_ = 1;
    mem::txn_id_source ids_;
    // Per-core front end: exactly one element in single-core mode (the
    // construction there is byte-for-byte the pre-CMP wiring).
    std::vector<std::unique_ptr<wl::workload_stream>> streams_;
    /// Trace/scenario sources behind streams_, keyed by spec - lanes of one
    /// trace share a single mapping/generation.
    std::vector<std::pair<std::string, std::shared_ptr<const trace::trace_data>>>
        trace_cache_;
    std::unique_ptr<trace::trace_writer> capture_; ///< capture_path only
    std::vector<std::unique_ptr<cpu::ooo_core>> cores_;
    std::vector<std::unique_ptr<mem::conventional_cache>> l1s_;
    std::unique_ptr<coh::coherence_hub> hub_; ///< cores > 1 only
    std::unique_ptr<mem::bus> l1_l2_bus_;
    std::unique_ptr<mem::conventional_cache> l2_;
    std::unique_ptr<mem::conventional_cache> l3_;
    std::unique_ptr<fabric::lnuca_cache> fabric_;
    std::unique_ptr<dnuca::dnuca_cache> dnuca_;
    std::unique_ptr<mem::main_memory> memory_;
    sim::engine engine_;

    // Checkpoint bookkeeping for the current run() invocation.
    std::uint64_t ckpt_last_save_ = 0; ///< retired cursor at the last save
    std::uint64_t ckpt_saves_ = 0;     ///< successful saves this process
};

/// Multiprogrammed weighted speedup of a homogeneous-mix CMP run against
/// its single-core baseline on the same hierarchy:
/// sum_i(IPC_i / IPC_single). Returns 0 when the baseline is degenerate.
double weighted_speedup(const run_result& cmp_result,
                        const run_result& single_core_baseline);

/// Run one (config, workload) pair in a fresh system.
run_result run_one(const system_config& config,
                   const wl::workload_profile& workload,
                   std::uint64_t instructions, std::uint64_t warmup,
                   std::uint64_t seed = 1);

/// Run a configs x workloads matrix, parallelised across hardware threads
/// by the exp runner (src/exp/). Results are indexed [config][workload].
/// Each job's seed derives from rng::split(seed, config, workload, 0), so a
/// cell is reproduced serially by
/// run_one(configs[c], workloads[w], ..., rng::split(seed, c, w, 0)).
std::vector<std::vector<run_result>>
run_matrix(const std::vector<system_config>& configs,
           const std::vector<wl::workload_profile>& workloads,
           std::uint64_t instructions, std::uint64_t warmup,
           std::uint64_t seed = 1);

/// Default bench run lengths; override with --instructions/--warmup.
inline constexpr std::uint64_t default_instructions = 400'000;
inline constexpr std::uint64_t default_warmup = 60'000;

} // namespace lnuca::hier
