// The paper's cache hierarchies (Fig. 1) as ready-made configurations:
//
//   l2_256kb()        L1 32KB -> L2 256KB -> L3 8MB          (Fig. 1(a))
//   lnuca_l3(k)       r-tile  -> LNk fabric -> L3 8MB        (Fig. 1(b))
//   dnuca_4x8()       L1 32KB -> 8MB D-NUCA (8 sets x 4 rows) (Fig. 1(c))
//   lnuca_dnuca(k)    r-tile  -> LNk fabric -> 8MB D-NUCA    (Fig. 1(d))
//
// All parameters follow Table I.
#pragma once

#include "src/coh/coherence_hub.h"
#include "src/cpu/ooo_core.h"
#include "src/dnuca/dnuca_cache.h"
#include "src/fabric/lnuca_cache.h"
#include "src/mem/bus.h"
#include "src/mem/cache.h"
#include "src/mem/main_memory.h"
#include "src/sim/engine.h"

#include <optional>
#include <string>

namespace lnuca::hier {

enum class hierarchy_kind {
    conventional, ///< L1 + L2 + L3
    lnuca_l3,     ///< r-tile + L-NUCA + L3
    dnuca,        ///< L1 + D-NUCA
    lnuca_dnuca,  ///< r-tile + L-NUCA + D-NUCA
};

/// SMARTS-style sampled simulation: functional fast-forward at warm state
/// punctuated by periodically placed detailed-timing windows whose IPC and
/// energy measurements extrapolate to the whole run with a 95% confidence
/// interval (see DESIGN.md, "Sampling and statistical confidence").
struct sampling_config {
    bool enabled = false;
    /// Measured detailed instructions per window.
    std::uint64_t detail_instructions = 2000;
    /// Detailed (discarded) warm-up instructions preceding each window,
    /// re-establishing pipeline/MSHR/queue occupancy after fast-forward.
    std::uint64_t detail_warmup = 1000;
    /// Window spacing in instructions; the detail fraction
    /// (detail_warmup + detail_instructions) / period bounds the cost.
    std::uint64_t period_instructions = 40'000;
};

/// Parse a --sampling spec: "off" or "periodic:<detail>:<period>[:<warmup>]"
/// (instruction counts; warmup defaults to detail / 2). Returns nullopt on
/// malformed input.
std::optional<sampling_config> parse_sampling_spec(const std::string& spec);

/// Mid-run checkpoint/restore (src/ckpt/). Enabled when `path` is set and
/// `every` > 0: the run drivers drain to quiescence and snapshot the full
/// simulator state every `every` retired instructions (and on
/// SIGTERM/SIGINT, once run_app has installed the latch). A run executed
/// with checkpointing enabled is bit-identical whether or not it is killed
/// and resumed at any of those points.
struct checkpoint_config {
    std::string path;         ///< checkpoint file ("" = disabled)
    std::uint64_t every = 0;  ///< instructions between snapshots (0 = off)
    bool resume = false;      ///< restore from `path` if present and valid
    /// Test hook: after the Nth successful save, throw ckpt::interrupted
    /// exactly as a signal would (0 = off). Lets tests exercise the
    /// kill+resume path deterministically in-process.
    std::uint64_t halt_after = 0;

    bool enabled() const { return !path.empty() && every != 0; }
};

struct system_config {
    std::string name = "L2-256KB";
    hierarchy_kind kind = hierarchy_kind::conventional;
    cpu::core_config core;
    mem::cache_config l1;
    mem::cache_config l2;
    mem::cache_config l3;
    fabric::fabric_config fabric;
    dnuca::dnuca_config dnuca;
    mem::main_memory_config memory;
    /// The conventional L1<->L2 connection crosses the die over a narrow
    /// shared bus (16B wires, two arbitration cycles each way, full 64B
    /// line streamed back), which puts the L2's load-to-use latency at the
    /// ~14 cycles of the Core 2-class parts the paper models its clock on.
    /// The L-NUCA replaces this bus with abutted message-wide local links -
    /// that is the paper's premise (Section III-A).
    mem::bus_config l1_l2_bus{16, 2, 64};
    std::uint64_t seed = 1;
    /// Engine scheduling. idle_skip is bit-identical to dense for every
    /// config x workload (enforced by tests/hier_test.cpp) and several
    /// times faster on idle-heavy hierarchies; paranoid cross-checks the
    /// skip schedule while stepping densely (tests/CI).
    sim::schedule_mode engine_mode = sim::schedule_mode::idle_skip;
    /// Sampled execution fidelity. Disabled by default: the run is then
    /// bit-identical to the pre-sampling driver (enforced by
    /// tests/sampling_test.cpp). CMP runs (cores > 1) sample through the
    /// warm MESI fast-forward path (requires the coherence hub and
    /// coherent private L1s; hier::system::run throws otherwise).
    sampling_config sampling;
    /// CMP mode: number of cores, each with a private L1I/L1D pair (the
    /// I-side is ideal - instruction fetch is perfect in this core model),
    /// attached to the shared level through a coh::coherence_hub. 1 keeps
    /// the single-core wiring byte-for-byte (no hub is built at all).
    unsigned cores = 1;
    /// Hub/directory parameters for cores > 1 (presets::cmp fills the
    /// latencies to match the backend's transport character).
    coh::coherence_config coherence;
    /// When non-empty, every instruction the front end hands out (next()
    /// and warm_next() alike) plus each stream's pre-warm table is
    /// serialised to this binary trace file when the system is destroyed;
    /// replaying it via a workload_profile::trace_path reproduces the run
    /// bit-identically. See src/trace/format.h.
    std::string capture_path;
    /// Mid-run checkpoint/restore (mutually exclusive with capture_path;
    /// exp::run_app rejects the combination).
    checkpoint_config checkpoint;
};

namespace presets {

/// Baseline three-level conventional hierarchy (L2 design-space winner).
system_config l2_256kb();

/// L-NUCA replacing the L2; `levels` in [2,4] gives LN2/LN3/LN4.
system_config lnuca_l3(unsigned levels);

/// 8MB D-NUCA directly under the L1.
system_config dnuca_4x8();

/// L-NUCA between the L1 and the D-NUCA.
system_config lnuca_dnuca(unsigned levels);

/// Resolve a preset by name for manifest-driven sweeps (src/exp/manifest).
/// Accepts the canonical config names ("L2-256KB", "LN3-144KB", "DN-4x8",
/// "LN3 + DN-4x8") and the short aliases the tools already use
/// ("l2", "ln2".."ln4", "dnuca", "ln2+dn".."ln4+dn"), case-insensitively.
/// Returns std::nullopt for anything else.
std::optional<system_config> by_name(const std::string& name);

/// N-core CMP over any single-core preset: private copy-back L1s (MESI,
/// eviction-notifying) per core, the base hierarchy's shared level behind
/// a coherence hub whose message latencies match the backend (narrow bus
/// for the conventional L2, abutted links for the L-NUCA fabric, mesh
/// hops for the D-NUCA). `base` must be one of the presets above;
/// `cores` in [2, 32]. Name becomes e.g. "L2-256KB-4c".
system_config cmp(const system_config& base, unsigned cores);

} // namespace presets

/// Apply one dotted-key numeric override to a system_config (the
/// `overrides` axis of a sweep manifest, src/exp/manifest.h). Supported
/// keys are a curated projection of the config structs:
///
///   l1.* / l2.* / l3.*   size_kb, ways, block_bytes, completion_latency,
///                        initiation_interval, ports, banks, mshr_entries,
///                        mshr_secondary, write_buffer_entries
///   fabric.*             levels, mshr_entries, inject_queue_depth,
///                        evict_queue_depth, exit_queue_depth
///   dnuca.*              bank_sets, rows, bank_kb, bank_ways, bank_latency
///   memory.*             first_chunk_latency, inter_chunk_latency,
///                        queue_depth
///   core.*               fetch_width, dispatch_width, commit_width,
///                        rob_size, lsq_size, store_buffer_size,
///                        mispredict_penalty, tlb_entries
///   bus.*                width_bytes, arbitration, response_bytes
///
/// Returns false (with *error naming the key) on an unknown key — a
/// manifest must not silently ignore a mistyped override. The config's
/// name is NOT touched; callers append their own provenance suffix.
bool apply_config_override(system_config& config, const std::string& key,
                           std::uint64_t value, std::string* error);

/// Human name like the paper's: LN3-144KB.
std::string lnuca_config_name(unsigned levels);

} // namespace lnuca::hier
