#include "src/hier/system.h"

#include "src/ckpt/archive.h"
#include "src/ckpt/signal.h"
#include "src/common/log.h"
#include "src/trace/scenarios.h"
#include "src/trace/trace_stream.h"
#include "src/trace/trace_writer.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <stdexcept>

#include <unistd.h>

namespace lnuca::hier {

namespace {

std::vector<lane_spec>
to_lane_specs(const std::vector<wl::workload_profile>& workloads)
{
    std::vector<lane_spec> lanes;
    lanes.reserve(workloads.size());
    for (const auto& profile : workloads)
        lanes.push_back({profile, 0});
    return lanes;
}

} // namespace

system::system(const system_config& config, const wl::workload_profile& workload,
               std::uint64_t seed)
    : system(config, std::vector<lane_spec>{{workload, 0}}, seed)
{
}

system::system(const system_config& config,
               const std::vector<wl::workload_profile>& workloads,
               std::uint64_t seed)
    : system(config, to_lane_specs(workloads), seed)
{
}

system::system(const system_config& config, const std::vector<lane_spec>& lanes,
               std::uint64_t seed)
    : config_(config), seed_(seed)
{
    if (lanes.empty())
        throw std::invalid_argument("system: no workloads");
    engine_.set_mode(config.engine_mode);
    if (!config_.capture_path.empty())
        capture_ = std::make_unique<trace::trace_writer>(
            config_.capture_path, lanes.front().profile.name,
            lanes.front().profile.floating_point,
            std::max(1u, config_.cores));
    if (config_.cores > 1)
        build_cmp(lanes);
    else
        build_single(lanes.front());
}

system::~system()
{
    if (capture_) {
        capture_->set_workload(streams_.front()->profile().name,
                               streams_.front()->profile().floating_point);
        capture_->write();
    }
}

std::shared_ptr<const trace::trace_data>
system::trace_source(const wl::workload_profile& profile)
{
    const std::string key = !profile.trace_path.empty()
                                ? "trace:" + profile.trace_path
                                : "scenario:" + profile.scenario;
    for (const auto& [cached_key, cached] : trace_cache_)
        if (cached_key == key)
            return cached;
    std::shared_ptr<const trace::trace_data> data;
    if (!profile.trace_path.empty()) {
        data = trace::trace_data::open(profile.trace_path);
    } else {
        trace::scenario_params params;
        params.cores = std::max(1u, config_.cores);
        params.seed = seed_;
        data = trace::make_scenario(profile.scenario, params);
    }
    trace_cache_.emplace_back(key, data);
    return data;
}

std::unique_ptr<wl::workload_stream>
system::make_lane_stream(const lane_spec& spec, unsigned lane)
{
    std::unique_ptr<wl::workload_stream> stream;
    if (!spec.profile.trace_path.empty() || !spec.profile.scenario.empty()) {
        stream =
            std::make_unique<trace::trace_stream>(trace_source(spec.profile),
                                                  lane);
    } else {
        // The synthetic seed/region derivations are the frozen pre-trace
        // formulas: single-core and CMP bit-identity guards depend on them.
        const addr_t region =
            spec.region_base != 0
                ? spec.region_base
                : 0x10000000 + addr_t(config_.cores > 1 ? lane : 0) *
                      0x40000000ULL;
        const std::uint64_t stream_seed =
            config_.cores > 1 ? rng::split(seed_, 0x5770c0ULL, lane)
                              : hash64(seed_ ^ hash64(0x5770));
        stream = std::make_unique<wl::synthetic_stream>(spec.profile,
                                                        stream_seed, region);
    }
    if (capture_)
        stream = std::make_unique<trace::capture_stream>(std::move(stream),
                                                         *capture_, lane);
    return stream;
}

system::level_set system::levels() const
{
    level_set l;
    l.fabric = config_.kind == hierarchy_kind::lnuca_l3 ||
               config_.kind == hierarchy_kind::lnuca_dnuca;
    l.l2 = config_.kind == hierarchy_kind::conventional;
    l.l3 = config_.kind == hierarchy_kind::conventional ||
           config_.kind == hierarchy_kind::lnuca_l3;
    l.dnuca = config_.kind == hierarchy_kind::dnuca ||
              config_.kind == hierarchy_kind::lnuca_dnuca;
    return l;
}

void system::build_shared_components()
{
    memory_ = std::make_unique<mem::main_memory>(config_.memory);

    const auto [with_fabric, with_l2, with_l3, with_dnuca] = levels();

    if (with_fabric) {
        fabric::fabric_config fc = config_.fabric;
        fc.seed = hash64(seed_ ^ 0xfab);
        fc.tile.seed = hash64(seed_ ^ 0x711e);
        fabric_ = std::make_unique<fabric::lnuca_cache>(fc, ids_);
    }
    if (with_l2) {
        mem::cache_config l2c = config_.l2;
        l2c.seed = hash64(seed_ ^ 0x22);
        l2_ = std::make_unique<mem::conventional_cache>(l2c, ids_);
    }
    if (with_l3) {
        mem::cache_config l3c = config_.l3;
        l3c.seed = hash64(seed_ ^ 0x33);
        l3_ = std::make_unique<mem::conventional_cache>(l3c, ids_);
    }
    if (with_dnuca) {
        dnuca::dnuca_config dc = config_.dnuca;
        dc.seed = hash64(seed_ ^ 0xd0ca);
        dnuca_ = std::make_unique<dnuca::dnuca_cache>(dc, ids_);
    }
}

// Wire the constructed shared level beneath `above` - the lone L1 in
// single-core mode, the coherence hub in CMP mode - preserving the
// producers-before-consumers registration order (see sim/engine.h):
// fabric-or-(bus, L2), then L3-or-D-NUCA, then memory.
mem::mem_port* system::wire_shared_level(mem::mem_client* above)
{
    const auto [with_fabric, with_l2, with_l3, with_dnuca] = levels();

    mem::mem_port* below = nullptr;
    if (with_fabric) {
        below = fabric_.get();
        fabric_->set_upstream(above);
        engine_.add(*fabric_);
    } else if (with_l2) {
        // The narrow shared bus to the L2: the inter-cache hop the L-NUCA
        // eliminates.
        l1_l2_bus_ = std::make_unique<mem::bus>(config_.l1_l2_bus);
        below = l1_l2_bus_.get();
        l1_l2_bus_->set_upstream(above);
        l1_l2_bus_->set_downstream(l2_.get());
        l2_->set_upstream(l1_l2_bus_.get());
        engine_.add(*l1_l2_bus_);
        engine_.add(*l2_);
    }

    if (below == nullptr) {
        // D-NUCA directly beneath `above` (Fig. 1(c)).
        below = dnuca_.get();
        dnuca_->set_upstream(above);
        engine_.add(*dnuca_);
        dnuca_->set_downstream(memory_.get());
        memory_->set_upstream(dnuca_.get());
        engine_.add(*memory_);
        return below;
    }

    if (with_l3) {
        l3_->set_upstream(static_cast<mem::mem_client*>(
            with_fabric ? static_cast<mem::mem_client*>(fabric_.get())
                        : static_cast<mem::mem_client*>(l2_.get())));
        if (with_fabric)
            fabric_->set_downstream(l3_.get());
        else
            l2_->set_downstream(l3_.get());
        engine_.add(*l3_);
        l3_->set_downstream(memory_.get());
        memory_->set_upstream(l3_.get());
    } else if (with_dnuca) {
        // L-NUCA + D-NUCA (Fig. 1(d)).
        dnuca_->set_upstream(fabric_.get());
        fabric_->set_downstream(dnuca_.get());
        engine_.add(*dnuca_);
        dnuca_->set_downstream(memory_.get());
        memory_->set_upstream(dnuca_.get());
    }
    engine_.add(*memory_);
    return below;
}

// The single-core assembly is byte-for-byte the pre-CMP wiring: same
// derived seeds, same registration order - the cores=1 bit-identity
// guard in tests/coh_test.cpp depends on it.
void system::build_single(const lane_spec& lane)
{
    streams_.push_back(make_lane_stream(lane, 0));
    cores_.push_back(std::make_unique<cpu::ooo_core>(config_.core,
                                                     *streams_.back(), ids_));
    cpu::ooo_core* core = cores_.back().get();

    mem::cache_config l1c = config_.l1;
    l1c.seed = hash64(seed_ ^ 0x11);
    l1s_.push_back(std::make_unique<mem::conventional_cache>(l1c, ids_));
    mem::conventional_cache* l1 = l1s_.back().get();

    build_shared_components();

    // Wire top-down. Registration order is the timing contract: producers
    // tick before the consumers beneath them (see sim/engine.h).
    core->set_dcache(l1);
    engine_.add(*core);
    engine_.add(*l1);
    l1->set_upstream(core);
    l1->set_downstream(wire_shared_level(l1));
    prewarm();
}

// CMP assembly: N private cores/L1s above the coherence hub, the same
// shared level beneath it. Each core's workload lane derives from
// rng::split(seed, lane-tag, core) with a disjoint data region, so mixes
// are multiprogrammed (no shared data between cores; sharing is exercised
// by tests/coh_test.cpp through direct hub workloads).
void system::build_cmp(const std::vector<lane_spec>& lanes)
{
    const unsigned n = config_.cores;
    if (n > mem::max_cores)
        throw std::invalid_argument("system: cores > 32 unsupported");

    for (unsigned i = 0; i < n; ++i) {
        streams_.push_back(make_lane_stream(lanes[i % lanes.size()], i));
        cores_.push_back(std::make_unique<cpu::ooo_core>(
            config_.core, *streams_.back(), ids_));

        mem::cache_config l1c = config_.l1;
        l1c.name = "L1#" + std::to_string(i);
        l1c.seed = rng::split(seed_, 0x11c0ULL, i);
        // MESI structurally requires copy-back write-allocate L1s that
        // notify the directory of every eviction; normalise here (same
        // settings presets::cmp applies) so setting `cores` directly on a
        // stock preset cannot silently break coherence - a write-through
        // L1 would drain stores as access_kind::write, which the hub has
        // no transition for.
        l1c.write_through = false;
        l1c.write_allocate = true;
        l1c.writeback_clean = true;
        l1c.coherent = true;
        l1c.core_id = mem::core_id_t(i);
        l1s_.push_back(std::make_unique<mem::conventional_cache>(l1c, ids_));
    }

    coh::coherence_config cc = config_.coherence;
    cc.cores = n;
    cc.block_bytes = config_.l1.block_bytes;
    if (cc.directory_entries == 0) {
        // Inclusive over the L1s: size for every line every L1 can hold
        // plus in-flight fills/evictions, doubled for the open-addressed
        // index's load factor - overflow becomes structurally impossible.
        const std::uint32_t l1_lines =
            std::uint32_t(config_.l1.size_bytes / config_.l1.block_bytes);
        cc.directory_entries = n * (l1_lines + config_.l1.mshr_entries +
                                    config_.l1.write_buffer_entries + 64);
    }
    hub_ = std::make_unique<coh::coherence_hub>(cc, ids_);
    hub_->set_paranoid(config_.engine_mode == sim::schedule_mode::paranoid);

    build_shared_components();

    // Registration order: cores, private L1s, hub, shared level, memory -
    // the same producers-before-consumers contract as the single-core
    // wiring, with the hub standing where the lone L1's downstream was.
    for (unsigned i = 0; i < n; ++i) {
        cores_[i]->set_dcache(l1s_[i].get());
        engine_.add(*cores_[i]);
    }
    for (unsigned i = 0; i < n; ++i) {
        l1s_[i]->set_upstream(cores_[i].get());
        l1s_[i]->set_downstream(hub_.get());
        hub_->attach_l1(mem::core_id_t(i), l1s_[i].get());
        engine_.add(*l1s_[i]);
    }
    engine_.add(*hub_);
    hub_->set_downstream(wire_shared_level(hub_.get()));
    prewarm();
}

void system::prewarm()
{
    // Functionally install the workloads' hot windows into the large
    // arrays before measurement, substituting for the paper's
    // 200M-instruction warm-up, which scaled-down runs cannot afford.
    // Smaller structures (L1, L-NUCA tiles, conventional L2) warm
    // naturally during the simulated warm-up window; the L2 is included
    // here because its 4K lines are borderline at short windows. With N
    // cores the capacity splits evenly across the per-core streams (each
    // stream owns a disjoint region, so the shares cannot collide).
    // Streams with no warm table (scenario lanes, traces captured from
    // them) skip pre-warm: their working sets are small enough to warm
    // naturally, and there is no hot-window structure to install.
    const std::uint64_t n = streams_.size();
    auto warm_cache = [&](mem::conventional_cache* cache) {
        if (cache == nullptr)
            return;
        const std::uint64_t lines =
            cache->tags().size_bytes() / cache->tags().block_bytes();
        const std::uint64_t window =
            lines * cache->tags().block_bytes() / 32 / n; // generator blocks
        for (const auto& stream : streams_) {
            if (stream->warm_block_count() == 0)
                continue;
            for (std::uint64_t j = window; j-- > 0;)
                cache->tags().install(stream->warm_block(j), false);
        }
    };
    warm_cache(l3_.get());
    warm_cache(l2_.get());
    if (dnuca_) {
        const std::uint64_t window = dnuca_->size_bytes() / 32 / n;
        for (const auto& stream : streams_) {
            if (stream->warm_block_count() == 0)
                continue;
            for (std::uint64_t j = window; j-- > 0;)
                dnuca_->prewarm(stream->warm_block(j));
        }
    }
    if (fabric_) {
        // The fabric holds the recency window just beyond the L1's 1024
        // blocks; the L1 itself warms naturally within the warm-up window.
        const std::uint64_t l1_blocks = config_.l1.size_bytes / 32;
        const std::uint64_t capacity = fabric_->tile_capacity_bytes() / 32 / n;
        for (const auto& stream : streams_) {
            if (stream->warm_block_count() == 0)
                continue;
            std::uint64_t installed = 0;
            for (std::uint64_t j = l1_blocks;
                 installed < capacity && j < l1_blocks + 2 * capacity; ++j)
                installed += fabric_->prewarm(stream->warm_block(j)) ? 1 : 0;
        }
    }
}

namespace {

std::uint64_t counter_delta(const counter_set& counters, const std::string& name,
                            const counter_set& snapshot)
{
    return counters.get(name) - snapshot.get(name);
}

} // namespace

/// Snapshot/delta accumulator for detailed measurement: the exact path
/// harvests one segment covering the whole run, the sampled path sums many
/// windows (plus per-window CPI samples for the confidence interval).
struct system::window_totals {
    std::uint64_t instructions = 0;
    std::uint64_t cycles = 0;
    std::vector<double> window_cpi; ///< one sample per window (CI input)

    std::uint64_t l2_read_hits = 0;
    std::vector<std::uint64_t> fabric_read_hits;
    std::uint64_t transport_actual = 0;
    std::uint64_t transport_min = 0;
    std::uint64_t search_restarts = 0;
    std::uint64_t searches = 0;
    std::uint64_t loads_l1 = 0;
    std::uint64_t loads_fabric = 0;
    std::uint64_t loads_l2 = 0;
    std::uint64_t loads_l3 = 0;
    std::uint64_t loads_dnuca = 0;
    std::uint64_t loads_memory = 0;
    std::uint64_t loads_peer = 0;
    std::uint64_t load_latency_weighted = 0; ///< exact Σ latency (histogram)
    std::uint64_t load_latency_count = 0;
    power::energy_inputs energy; ///< event counts summed over windows
                                 ///< (cycles overwritten with the estimate
                                 ///< before compute_energy)

    /// The accumulated measurement travels inside the checkpoint's `driver`
    /// section, so a resumed run continues summing into the same totals.
    template <class Ar> void serialize(Ar& ar)
    {
        ar(instructions);
        ar(cycles);
        ar(window_cpi);
        ar(l2_read_hits);
        ar(fabric_read_hits);
        ar(transport_actual);
        ar(transport_min);
        ar(search_restarts);
        ar(searches);
        ar(loads_l1);
        ar(loads_fabric);
        ar(loads_l2);
        ar(loads_l3);
        ar(loads_dnuca);
        ar(loads_memory);
        ar(loads_peer);
        ar(load_latency_weighted);
        ar(load_latency_count);
        ar(energy);
    }
};

/// Baseline counter values for one measured span; harvest_levels() turns
/// the snapshot and the post-span counters into window_totals deltas. One
/// snapshot/delta implementation serves the exact, sampled and CMP drivers.
struct system::level_snapshot {
    std::vector<counter_set> l1;
    counter_set l2, l3, fabric, dnuca, memory;
    std::uint64_t dn_hops = 0;
    std::vector<std::uint64_t> fab_hits;
    std::uint64_t transport_actual = 0;
    std::uint64_t transport_min = 0;
};

system::level_snapshot system::snap_levels() const
{
    level_snapshot snap;
    snap.l1.reserve(l1s_.size());
    for (const auto& l1 : l1s_)
        snap.l1.push_back(l1->counters());
    if (l2_)
        snap.l2 = l2_->counters();
    if (l3_)
        snap.l3 = l3_->counters();
    if (fabric_) {
        snap.fabric = fabric_->counters();
        for (unsigned level = 0; level <= config_.fabric.levels; ++level)
            snap.fab_hits.push_back(fabric_->read_hits_in_level(level));
        snap.transport_actual = fabric_->transport_actual_cycles();
        snap.transport_min = fabric_->transport_min_cycles();
    }
    if (dnuca_) {
        snap.dnuca = dnuca_->counters();
        snap.dn_hops = dnuca_->mesh().flit_hops();
    }
    snap.memory = memory_->counters();
    return snap;
}

void system::harvest_levels(const level_snapshot& snap, window_totals& totals)
{
    if (l2_)
        totals.l2_read_hits +=
            counter_delta(l2_->counters(), "read_hit", snap.l2);
    if (fabric_) {
        if (totals.fabric_read_hits.empty())
            totals.fabric_read_hits.assign(config_.fabric.levels + 1, 0);
        for (unsigned level = 2; level <= config_.fabric.levels; ++level)
            totals.fabric_read_hits[level] +=
                fabric_->read_hits_in_level(level) - snap.fab_hits[level];
        totals.transport_actual +=
            fabric_->transport_actual_cycles() - snap.transport_actual;
        totals.transport_min +=
            fabric_->transport_min_cycles() - snap.transport_min;
        totals.search_restarts +=
            counter_delta(fabric_->counters(), "search_restarts", snap.fabric);
        totals.searches += counter_delta(fabric_->counters(),
                                         "searches_injected", snap.fabric);
    }

    power::energy_inputs& in = totals.energy;
    for (std::size_t i = 0; i < l1s_.size(); ++i)
        in.l1_accesses +=
            counter_delta(l1s_[i]->counters(), "accesses", snap.l1[i]);
    if (l2_) {
        in.has_l2 = true;
        in.l2_accesses += counter_delta(l2_->counters(), "accesses", snap.l2);
    }
    if (fabric_) {
        const auto& fc = fabric_->counters();
        in.fabric_tiles = fabric_->geo().tile_count();
        in.tile_tag_lookups +=
            counter_delta(fc, "tile_tag_lookups", snap.fabric);
        in.tile_data_accesses +=
            counter_delta(fc, "tile_data_reads", snap.fabric) +
            counter_delta(fc, "tile_data_writes", snap.fabric);
        in.transport_hops += counter_delta(fc, "transport_hops", snap.fabric);
        in.replacement_hops +=
            counter_delta(fc, "replacement_hops", snap.fabric);
        in.search_hops +=
            counter_delta(fc, "search_broadcast_hops", snap.fabric);
    }
    if (l3_) {
        in.has_l3 = true;
        in.l3_accesses += counter_delta(l3_->counters(), "accesses", snap.l3);
    }
    if (dnuca_) {
        in.dnuca_banks = config_.dnuca.bank_sets * config_.dnuca.rows;
        in.bank_accesses +=
            counter_delta(dnuca_->counters(), "bank_lookups", snap.dnuca) +
            counter_delta(dnuca_->counters(), "bank_writes", snap.dnuca);
        in.dnuca_flit_hops += dnuca_->mesh().flit_hops() - snap.dn_hops;
    }
    in.memory_transfers +=
        counter_delta(memory_->counters(), "transfers", snap.memory);
}

void system::harvest_core(cpu::ooo_core& core, window_totals& totals) const
{
    totals.loads_l1 += core.loads_served_by(mem::service_level::l1);
    totals.loads_fabric +=
        core.loads_served_by(mem::service_level::lnuca_tile);
    totals.loads_l2 += core.loads_served_by(mem::service_level::l2);
    totals.loads_l3 += core.loads_served_by(mem::service_level::l3);
    totals.loads_dnuca += core.loads_served_by(mem::service_level::dnuca);
    totals.loads_memory += core.loads_served_by(mem::service_level::memory);
    totals.loads_peer += core.loads_served_by(mem::service_level::peer_l1);
    totals.load_latency_weighted += core.load_latency().weighted_sum();
    totals.load_latency_count += core.load_latency().total();
}

void system::apply_totals(run_result& r, const window_totals& totals) const
{
    r.l2_read_hits = totals.l2_read_hits;
    r.fabric_read_hits = totals.fabric_read_hits;
    r.transport_actual = totals.transport_actual;
    r.transport_min = totals.transport_min;
    r.search_restarts = totals.search_restarts;
    r.searches = totals.searches;
    r.loads_l1 = totals.loads_l1;
    r.loads_fabric = totals.loads_fabric;
    r.loads_l2 = totals.loads_l2;
    r.loads_l3 = totals.loads_l3;
    r.loads_dnuca = totals.loads_dnuca;
    r.loads_memory = totals.loads_memory;
    r.loads_peer = totals.loads_peer;
    r.avg_load_latency =
        totals.load_latency_count == 0
            ? 0.0
            : totals.load_latency_weighted / double(totals.load_latency_count);

    power::energy_inputs in = totals.energy;
    in.cycles = r.cycles;
    r.energy = power::compute_energy(in);
}

// ---------------------------------------------------------------------------
// Checkpoint/restore orchestration. The system owns the section layout -
// every component's save_state/load_state runs inside a section the system
// opens for it - so the file structure is decided in exactly one place and
// the reader's exact-consumption check catches any reader/writer drift per
// component instead of smearing it across the file.
// ---------------------------------------------------------------------------

namespace {

std::uint64_t mix(std::uint64_t h, std::uint64_t v)
{
    return hash64(h ^ hash64(v));
}

std::uint64_t mix_str(std::uint64_t h, const std::string& s)
{
    for (const char c : s)
        h = mix(h, std::uint64_t(std::uint8_t(c)));
    return mix(h, s.size());
}

} // namespace

std::uint64_t system::ckpt_config_hash() const
{
    // Everything that decides which driver runs, which sections exist and
    // how the components are sized. Deliberately not every tuning knob: the
    // per-component payloads carry their own structure (vector sizes), so a
    // resized cache fails the section load loudly even if the hash passed.
    std::uint64_t h = 0x4c4e4b50'54310001ULL;
    h = mix_str(h, config_.name);
    h = mix(h, std::uint64_t(config_.kind));
    h = mix(h, config_.cores);
    h = mix(h, seed_);
    h = mix(h, std::uint64_t(config_.engine_mode));
    h = mix(h, config_.sampling.enabled ? 1 : 0);
    h = mix(h, config_.sampling.detail_instructions);
    h = mix(h, config_.sampling.detail_warmup);
    h = mix(h, config_.sampling.period_instructions);
    h = mix(h, config_.l1.size_bytes);
    h = mix(h, config_.l2.size_bytes);
    h = mix(h, config_.l3.size_bytes);
    h = mix(h, config_.fabric.levels);
    h = mix(h, config_.dnuca.bank_sets);
    h = mix(h, config_.dnuca.rows);
    for (const auto& stream : streams_)
        h = mix_str(h, stream->profile().name);
    return h;
}

std::vector<std::pair<std::string, std::uint64_t>>
system::component_digests() const
{
    std::vector<std::pair<std::string, std::uint64_t>> digests;
    for (std::size_t i = 0; i < cores_.size(); ++i)
        digests.emplace_back("core" + std::to_string(i),
                             cores_[i]->state_digest());
    for (std::size_t i = 0; i < l1s_.size(); ++i)
        digests.emplace_back("l1#" + std::to_string(i),
                             l1s_[i]->state_digest());
    if (hub_)
        digests.emplace_back("hub", hub_->state_digest());
    if (l1_l2_bus_)
        digests.emplace_back("bus", l1_l2_bus_->state_digest());
    if (l2_)
        digests.emplace_back("l2", l2_->state_digest());
    if (l3_)
        digests.emplace_back("l3", l3_->state_digest());
    if (fabric_)
        digests.emplace_back("fabric", fabric_->state_digest());
    if (dnuca_)
        digests.emplace_back("dnuca", dnuca_->state_digest());
    digests.emplace_back("memory", memory_->state_digest());
    return digests;
}

void system::save_checkpoint(
    std::uint64_t run_instructions, std::uint64_t run_warmup,
    const std::function<void(ckpt::writer&)>& driver_save)
{
    using ckpt::section_id;
    try {
        ckpt::writer w;

        // meta: pure run identity, validated on restore before any state
        // is touched (so a mismatch is always a safe cold start).
        w.begin_section(section_id::meta);
        {
            ckpt::saver ar(w);
            ar(run_instructions);
            ar(run_warmup);
            ar(seed_);
            std::uint64_t lanes = streams_.size();
            std::uint64_t n_cores = cores_.size();
            ar(lanes);
            ar(n_cores);
        }
        w.end_section();

        w.begin_section(section_id::engine);
        {
            ckpt::saver ar(w);
            engine_.serialize(ar);
            ar(ids_);
        }
        w.end_section();

        for (std::size_t i = 0; i < cores_.size(); ++i) {
            w.begin_section(section_id::core, std::uint32_t(i));
            cores_[i]->save_state(w);
            w.end_section();
        }
        for (std::size_t i = 0; i < l1s_.size(); ++i) {
            w.begin_section(section_id::l1, std::uint32_t(i));
            l1s_[i]->save_state(w);
            w.end_section();
        }
        if (hub_) {
            w.begin_section(section_id::hub);
            hub_->save_state(w);
            w.end_section();
        }
        if (l1_l2_bus_) {
            w.begin_section(section_id::bus);
            l1_l2_bus_->save_state(w);
            w.end_section();
        }
        if (l2_) {
            w.begin_section(section_id::l2);
            l2_->save_state(w);
            w.end_section();
        }
        if (l3_) {
            w.begin_section(section_id::l3);
            l3_->save_state(w);
            w.end_section();
        }
        if (fabric_) {
            w.begin_section(section_id::fabric);
            fabric_->save_state(w);
            w.end_section();
        }
        if (dnuca_) {
            w.begin_section(section_id::dnuca);
            dnuca_->save_state(w);
            w.end_section();
        }
        w.begin_section(section_id::memory);
        memory_->save_state(w);
        w.end_section();

        for (std::size_t i = 0; i < streams_.size(); ++i) {
            w.begin_section(section_id::stream, std::uint32_t(i));
            streams_[i]->save_state(w);
            w.end_section();
        }

        w.begin_section(section_id::driver);
        driver_save(w);
        w.end_section();

        // Digest values in component_digests() order; restore recomputes
        // and compares, so a load that "succeeded" into the wrong state is
        // caught before the run resumes.
        w.begin_section(section_id::digests);
        {
            ckpt::saver ar(w);
            for (const auto& [name, digest] : component_digests())
                ar(digest);
        }
        w.end_section();

        w.finalize(config_.checkpoint.path, ckpt_config_hash());
    } catch (const ckpt::ckpt_error& e) {
        // A failed save must never kill the run it protects; the previous
        // snapshot (if any) is still intact thanks to the atomic replace.
        LNUCA_WARN("checkpoint save failed (", e.what(),
                   "); continuing without a snapshot");
    }
}

bool system::try_load_checkpoint(
    std::uint64_t run_instructions, std::uint64_t run_warmup,
    const std::function<void(ckpt::reader&)>& driver_load)
{
    using ckpt::section_id;
    const checkpoint_config& cc = config_.checkpoint;
    if (!cc.resume || cc.path.empty())
        return false;
    if (::access(cc.path.c_str(), F_OK) != 0)
        return false; // no snapshot yet: the normal first-run cold start

    bool mutated = false;
    try {
        ckpt::reader r(cc.path);
        if (r.config_hash() != ckpt_config_hash())
            throw ckpt::ckpt_error(
                cc.path +
                ": checkpoint belongs to a different run (config hash "
                "mismatch)");

        r.open_section(section_id::meta);
        {
            ckpt::loader ar(r);
            std::uint64_t instr = 0, wu = 0, seed = 0, lanes = 0, n_cores = 0;
            ar(instr);
            ar(wu);
            ar(seed);
            ar(lanes);
            ar(n_cores);
            if (instr != run_instructions || wu != run_warmup)
                throw ckpt::ckpt_error(
                    cc.path + ": run length mismatch (checkpointed " +
                    std::to_string(instr) + "+" + std::to_string(wu) +
                    ", requested " + std::to_string(run_instructions) + "+" +
                    std::to_string(run_warmup) + ")");
            if (seed != seed_ || lanes != streams_.size() ||
                n_cores != cores_.size())
                throw ckpt::ckpt_error(cc.path +
                                       ": seed or topology mismatch");
        }
        r.close_section();

        // Everything below mutates live state: a failure past this point
        // leaves the system neither cold nor restored, so it escalates to
        // the caller (which rebuilds from scratch) instead of silently
        // "falling back" on polluted state.
        mutated = true;

        r.open_section(section_id::engine);
        {
            ckpt::loader ar(r);
            engine_.serialize(ar);
            ar(ids_);
        }
        r.close_section();

        for (std::size_t i = 0; i < cores_.size(); ++i) {
            r.open_section(section_id::core, std::uint32_t(i));
            cores_[i]->load_state(r);
            r.close_section();
        }
        for (std::size_t i = 0; i < l1s_.size(); ++i) {
            r.open_section(section_id::l1, std::uint32_t(i));
            l1s_[i]->load_state(r);
            r.close_section();
        }
        if (hub_) {
            r.open_section(section_id::hub);
            hub_->load_state(r);
            r.close_section();
        }
        if (l1_l2_bus_) {
            r.open_section(section_id::bus);
            l1_l2_bus_->load_state(r);
            r.close_section();
        }
        if (l2_) {
            r.open_section(section_id::l2);
            l2_->load_state(r);
            r.close_section();
        }
        if (l3_) {
            r.open_section(section_id::l3);
            l3_->load_state(r);
            r.close_section();
        }
        if (fabric_) {
            r.open_section(section_id::fabric);
            fabric_->load_state(r);
            r.close_section();
        }
        if (dnuca_) {
            r.open_section(section_id::dnuca);
            dnuca_->load_state(r);
            r.close_section();
        }
        r.open_section(section_id::memory);
        memory_->load_state(r);
        r.close_section();

        for (std::size_t i = 0; i < streams_.size(); ++i) {
            r.open_section(section_id::stream, std::uint32_t(i));
            streams_[i]->load_state(r);
            r.close_section();
        }

        r.open_section(section_id::driver);
        driver_load(r);
        r.close_section();

        // Digest verification: the save-time digests must match the values
        // the restored components compute now.
        r.open_section(section_id::digests);
        {
            ckpt::loader ar(r);
            for (const auto& [name, digest] : component_digests()) {
                std::uint64_t stored = 0;
                ar(stored);
                if (stored != digest)
                    throw ckpt::ckpt_error(
                        cc.path + ": state digest mismatch after restore (" +
                        name + ")");
            }
        }
        r.close_section();

        // Paranoid fidelity additionally proves the restored directory
        // sound before a single post-restore cycle executes.
        if (config_.engine_mode == sim::schedule_mode::paranoid && hub_)
            hub_->check_invariants();

        LNUCA_INFO("resumed from checkpoint ", cc.path, " at cycle ",
                   engine_.now());
        return true;
    } catch (const ckpt::ckpt_error& e) {
        if (!mutated) {
            LNUCA_WARN("ignoring checkpoint (", e.what(), "); cold start");
            return false;
        }
        throw ckpt::ckpt_error(
            std::string("checkpoint restore failed after state was "
                        "partially loaded (") +
            e.what() + "); rebuild the system and run cold");
    }
}

void system::checkpoint_boundary(
    std::uint64_t retired, std::uint64_t run_instructions,
    std::uint64_t run_warmup,
    const std::function<void(ckpt::writer&)>& driver_save)
{
    const checkpoint_config& cc = config_.checkpoint;
    if (!cc.enabled())
        return;
    const bool signalled = ckpt::interrupt_requested();
    if (!signalled && retired - ckpt_last_save_ < cc.every)
        return;

    save_checkpoint(run_instructions, run_warmup, driver_save);
    ckpt_last_save_ = retired;
    ++ckpt_saves_;

    // CI crash hook: simulate a SIGKILL a bounded number of saves into the
    // run (the fault harness cannot aim a real KILL at a quiescent point).
    if (const char* env = std::getenv("LNUCA_CKPT_EXIT_AFTER")) {
        const std::uint64_t n = std::strtoull(env, nullptr, 10);
        if (n != 0 && ckpt_saves_ >= n)
            std::_Exit(137);
    }
    if (signalled || (cc.halt_after != 0 && ckpt_saves_ >= cc.halt_after))
        throw ckpt::interrupted(cc.path);
}

void system::checkpoint_complete()
{
    // A finished run's snapshot must not survive: resuming it would replay
    // the final chunk of an already-reported job.
    if (config_.checkpoint.enabled())
        ::unlink(config_.checkpoint.path.c_str());
}

run_result system::run(std::uint64_t instructions, std::uint64_t warmup)
{
    if (cores_.size() > 1) {
        if (config_.sampling.enabled && instructions > 0)
            return run_cmp_sampled(instructions, warmup);
        return run_cmp(instructions, warmup);
    }

    // A zero-instruction request has no windows to place; the exact path
    // handles it as a degenerate (empty) measurement.
    if (config_.sampling.enabled && instructions > 0)
        return run_sampled(instructions, warmup);

    cpu::ooo_core* core = cores_.front().get();
    const cycle_t max_cycles = 400 * (instructions + warmup) + 2'000'000;

    // Measurement cursor + accumulated totals: together the exact driver's
    // entire progress state, so they are what the `driver` section carries.
    window_totals totals;
    std::uint64_t done = 0;

    const bool restored =
        try_load_checkpoint(instructions, warmup, [&](ckpt::reader& r) {
            ckpt::loader ar(r);
            ar(done);
            ar(totals);
        });
    if (restored) {
        ckpt_last_save_ = done;
    } else {
        // Warm-up window. Not checkpointed: a kill during warm-up restarts
        // cold, losing at most the warm-up itself.
        core->set_instruction_limit(warmup);
        engine_.run_until([&] { return core->done(); }, max_cycles);
    }

    // Measurement: the same snapshot/delta harvest the sampled driver uses
    // per window. Without checkpointing this is one segment covering the
    // whole run (byte-for-byte the pre-checkpoint driver); with it, the run
    // chops into checkpoint.every-instruction chunks separated by a drain
    // (excluded from the measured cycles) and a quiescent snapshot.
    const auto host_start = std::chrono::steady_clock::now();
    const std::uint64_t chunk_size =
        config_.checkpoint.enabled() ? config_.checkpoint.every : 0;
    // `first` keeps the degenerate zero-instruction run on the historical
    // path: one empty measured segment, not zero segments.
    bool first = !restored;
    while (first || done < instructions) {
        first = false;
        const std::uint64_t chunk =
            chunk_size == 0 ? instructions - done
                            : std::min(chunk_size, instructions - done);
        detailed_segment(chunk, max_cycles, &totals);
        done += core->committed();
        if (core->committed() < chunk)
            break; // cycle ceiling hit; mirror the single-segment bail-out
        if (done < instructions && config_.checkpoint.enabled()) {
            drain(max_cycles);
            checkpoint_boundary(done, instructions, warmup,
                                [&](ckpt::writer& w) {
                                    ckpt::saver ar(w);
                                    ar(done);
                                    ar(totals);
                                });
        }
    }
    checkpoint_complete();
    const double host_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      host_start)
            .count();

    run_result r;
    r.config_name = config_.name;
    r.workload_name = streams_.front()->profile().name;
    r.floating_point = streams_.front()->profile().floating_point;
    r.instructions = totals.instructions;
    r.cycles = totals.cycles;
    r.ipc = r.cycles == 0 ? 0.0 : double(r.instructions) / double(r.cycles);
    r.host_seconds = host_seconds;
    r.sim_cycles_per_second =
        host_seconds > 0.0 ? double(r.cycles) / host_seconds : 0.0;
    r.sim_instructions_per_second =
        host_seconds > 0.0 ? double(r.instructions) / host_seconds : 0.0;

    apply_totals(r, totals);
    return r;
}

// ---------------------------------------------------------------------------
// CMP execution: run every core to its committed-instruction target under
// full detail, derive per-core IPC from each core's own finish cycle
// (schedule-independent: recorded at the committing tick), and aggregate
// the shared-level deltas exactly like the single-core harvest.
// ---------------------------------------------------------------------------

run_result system::run_cmp(std::uint64_t instructions, std::uint64_t warmup)
{
    const cycle_t max_cycles =
        600 * (instructions + warmup) + 2'000'000;
    const std::size_t n_cores = cores_.size();
    const auto all_done = [&] {
        for (const auto& core : cores_)
            if (!core->done())
                return false;
        return true;
    };

    // Progress state for the `driver` checkpoint section: per-lane cursor,
    // accumulated measurement totals, per-core instruction/cycle sums and
    // the wall-cycle sum. One chunk covering the whole run reproduces the
    // pre-checkpoint arithmetic exactly (per-core cycles are measured from
    // each core's own committing tick relative to the segment start).
    window_totals totals;
    std::uint64_t done = 0;
    std::uint64_t wall_cycles = 0;
    std::vector<std::uint64_t> core_instr(n_cores, 0);
    std::vector<std::uint64_t> core_cycles(n_cores, 0);

    const bool restored =
        try_load_checkpoint(instructions, warmup, [&](ckpt::reader& r) {
            ckpt::loader ar(r);
            ar(done);
            ar(wall_cycles);
            ar(core_instr);
            ar(core_cycles);
            ar(totals);
        });
    if (restored) {
        ckpt_last_save_ = done;
    } else {
        // Warm-up: every core runs its warm-up quota; early finishers idle
        // (standard fixed-instruction multiprogrammed methodology). Not
        // checkpointed - a kill during warm-up restarts cold.
        for (auto& core : cores_)
            core->set_instruction_limit(warmup);
        engine_.run_until(all_done, max_cycles);
    }

    const auto host_start = std::chrono::steady_clock::now();
    const std::uint64_t chunk_size =
        config_.checkpoint.enabled() ? config_.checkpoint.every : 0;
    bool ceiling_hit = false;
    // `first` keeps the degenerate zero-instruction run on the historical
    // path: one empty measured segment, not zero segments.
    bool first = !restored;
    while (first || (done < instructions && !ceiling_hit)) {
        first = false;
        const std::uint64_t chunk =
            chunk_size == 0 ? instructions - done
                            : std::min(chunk_size, instructions - done);
        const cycle_t seg_start = engine_.now();
        detailed_segment(chunk, max_cycles, &totals);
        cycle_t last_finish = seg_start;
        for (std::size_t i = 0; i < n_cores; ++i) {
            // Per-core cycles from each core's own finish cycle
            // (schedule-independent: recorded at the committing tick).
            const cycle_t fin = cores_[i]->finished_at() == no_cycle
                                    ? engine_.now()
                                    : cores_[i]->finished_at();
            last_finish = std::max(last_finish, fin);
            core_instr[i] += cores_[i]->committed();
            core_cycles[i] += fin + 1 - seg_start;
            ceiling_hit = ceiling_hit || cores_[i]->committed() < chunk;
        }
        wall_cycles += last_finish + 1 - seg_start;
        done += chunk;
        if (ceiling_hit)
            LNUCA_WARN("CMP measurement hit the cycle ceiling before every "
                       "core committed ", chunk, " instructions");
        else if (done < instructions && config_.checkpoint.enabled()) {
            drain(max_cycles);
            checkpoint_boundary(done, instructions, warmup,
                                [&](ckpt::writer& w) {
                                    ckpt::saver ar(w);
                                    ar(done);
                                    ar(wall_cycles);
                                    ar(core_instr);
                                    ar(core_cycles);
                                    ar(totals);
                                });
        }
    }
    checkpoint_complete();
    const double host_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      host_start)
            .count();

    run_result r;
    r.config_name = config_.name;
    r.floating_point = streams_.front()->profile().floating_point;
    r.cores = std::uint32_t(n_cores);

    // Workload label: the mix's distinct names, first-appearance order.
    std::vector<std::string> seen;
    for (const auto& stream : streams_) {
        const std::string& name = stream->profile().name;
        if (std::find(seen.begin(), seen.end(), name) == seen.end())
            seen.push_back(name);
    }
    r.workload_name = seen.front();
    for (std::size_t i = 1; i < seen.size(); ++i)
        r.workload_name += "+" + seen[i];

    for (std::size_t i = 0; i < n_cores; ++i) {
        r.per_core_ipc.push_back(core_cycles[i] == 0
                                     ? 0.0
                                     : double(core_instr[i]) /
                                           double(core_cycles[i]));
        r.instructions += core_instr[i];
    }
    r.cycles = wall_cycles;
    r.ipc = r.cycles == 0 ? 0.0 : double(r.instructions) / double(r.cycles);
    r.host_seconds = host_seconds;
    r.sim_cycles_per_second =
        host_seconds > 0.0 ? double(r.cycles) / host_seconds : 0.0;
    r.sim_instructions_per_second =
        host_seconds > 0.0 ? double(r.instructions) / host_seconds : 0.0;

    apply_totals(r, totals);
    return r;
}

// ---------------------------------------------------------------------------
// Sampled execution (SMARTS-style): functional fast-forward punctuated by
// periodically placed detailed windows. See DESIGN.md, "Sampling and
// statistical confidence".
// ---------------------------------------------------------------------------

bool system::quiescent() const
{
    for (const auto& core : cores_)
        if (!core->quiescent())
            return false;
    for (const auto& l1 : l1s_)
        if (!l1->quiescent())
            return false;
    return (!hub_ || hub_->quiescent()) &&
           (!l1_l2_bus_ || l1_l2_bus_->quiescent()) &&
           (!l2_ || l2_->quiescent()) && (!l3_ || l3_->quiescent()) &&
           (!fabric_ || fabric_->quiescent()) &&
           (!dnuca_ || dnuca_->quiescent()) && memory_->quiescent();
}

void system::drain(cycle_t max_cycles)
{
    if (!engine_.run_until([&] { return quiescent(); }, max_cycles))
        LNUCA_WARN("sampled run: hierarchy failed to drain within ",
                   max_cycles, " cycles; fast-forwarding anyway");
}

void system::fast_forward(std::uint64_t count)
{
    if (count == 0)
        return;
    if (cores_.size() == 1) {
        cores_.front()->warm_retire(count);
    } else {
        // Round-robin functional retirement in small chunks so the lanes'
        // warm accesses interleave at a fine grain: coherence behaviour
        // (invalidations, downgrades, cache-to-cache migration) depends on
        // the interleave, and retiring whole lanes back-to-back would let
        // one lane monopolise every contended line before the next starts.
        constexpr std::uint64_t chunk = 64;
        for (std::uint64_t done = 0; done < count; done += chunk) {
            const std::uint64_t n = std::min(chunk, count - done);
            for (auto& core : cores_)
                core->warm_retire(n);
        }
        // The warm MESI transitions must leave the directory sound after
        // every functional segment; paranoid runs assert it.
        if (hub_ && config_.engine_mode == sim::schedule_mode::paranoid)
            hub_->check_invariants();
    }
    // The clock advances at a nominal CPI of 1: reported cycles come from
    // the window estimate, so the rate only keeps timestamps monotone.
    engine_.advance(count);
}

void system::fast_forward_rated(std::uint64_t count,
                                const std::vector<double>& rates)
{
    if (count == 0)
        return;
    // Per-lane quota proportional to the lane's measured rate, normalised
    // to the mean so sum(quota) == count * cores: the aggregate accounting
    // (retired instructions, clock advance) is unchanged while the lane
    // *positions* drift apart exactly as they do under the dense schedule.
    const std::size_t n_cores = cores_.size();
    double sum = 0.0;
    for (const double r : rates)
        sum += std::max(r, 1e-6);
    std::vector<std::uint64_t> remaining(n_cores);
    std::vector<std::uint64_t> chunk(n_cores);
    for (std::size_t i = 0; i < n_cores; ++i) {
        const double share =
            std::max(rates[i], 1e-6) * double(n_cores) / sum;
        remaining[i] = std::uint64_t(std::llround(double(count) * share));
        // Fine-grained proportional interleave (see fast_forward): each
        // round hands lane i ~64 * share instructions.
        chunk[i] = std::max<std::uint64_t>(
            1, std::uint64_t(std::llround(64.0 * share)));
    }
    bool any = true;
    while (any) {
        any = false;
        for (std::size_t i = 0; i < n_cores; ++i) {
            const std::uint64_t n = std::min(chunk[i], remaining[i]);
            if (n == 0)
                continue;
            cores_[i]->warm_retire(n);
            remaining[i] -= n;
            any = any || remaining[i] > 0;
        }
    }
    if (hub_ && config_.engine_mode == sim::schedule_mode::paranoid)
        hub_->check_invariants();
    engine_.advance(count);
}

void system::detailed_segment(std::uint64_t instructions, cycle_t max_cycles,
                              window_totals* totals)
{
    // One implementation for both drivers: with a single core this is
    // byte-for-byte the original single-core segment; with several, every
    // lane gets the same committed-instruction quota and the window CPI is
    // the aggregate (total instructions over wall cycles), matching
    // run_cmp's aggregate-IPC convention.
    const auto all_done = [&] {
        for (const auto& core : cores_)
            if (!core->done())
                return false;
        return true;
    };
    for (auto& core : cores_)
        core->reset_stats();
    if (totals == nullptr) {
        // Warm segment: re-establish pipeline/queue/MSHR occupancy under
        // full timing; measurements are discarded.
        for (auto& core : cores_)
            core->set_instruction_limit(instructions);
        engine_.run_until(all_done, max_cycles);
        return;
    }

    const level_snapshot snap = snap_levels();

    const cycle_t start = engine_.now();
    for (auto& core : cores_)
        core->set_instruction_limit(instructions);
    const bool finished = engine_.run_until(all_done, max_cycles);
    if (!finished)
        LNUCA_WARN("measurement window hit the cycle ceiling before "
                   "committing ", instructions, " instructions");

    std::uint64_t instr = 0;
    for (const auto& core : cores_)
        instr += core->committed();
    const std::uint64_t cycles = engine_.now() - start;
    totals->instructions += instr;
    totals->cycles += cycles;
    totals->window_cpi.push_back(instr == 0 ? 0.0
                                            : double(cycles) / double(instr));

    harvest_levels(snap, *totals);
    for (auto& core : cores_)
        harvest_core(*core, *totals);
}

run_result system::run_sampled(std::uint64_t instructions, std::uint64_t warmup)
{
    cpu::ooo_core* core = cores_.front().get();
    const sampling_config& sc = config_.sampling;
    const auto host_start = std::chrono::steady_clock::now();
    // Generous per-segment ceiling: segments are short, runaways are bugs.
    const cycle_t segment_budget =
        400 * (sc.detail_instructions + sc.detail_warmup) + 2'000'000;

    const std::uint64_t detail =
        std::min(std::max<std::uint64_t>(sc.detail_instructions, 1),
                 std::max<std::uint64_t>(instructions, 1));
    const std::uint64_t window_warmup =
        std::min(sc.detail_warmup,
                 instructions > detail ? instructions - detail : 0);
    const std::uint64_t period =
        std::max(sc.period_instructions, detail + window_warmup);
    const std::uint64_t windows =
        std::max<std::uint64_t>(1, instructions / period);
    const std::uint64_t base_span = std::max<std::uint64_t>(
        instructions / windows, detail + window_warmup);

    // Deterministic systematic placement: each window sits at an
    // independent random offset within its period, derived from the run
    // seed alone - thread count and shard layout cannot move a window.
    rng placement(rng::split(seed_, 0x5a3b11d6ULL, windows, 0));

    // Driver checkpoint state: next window index, retired cursor, totals
    // and the placement rng (already advanced past the restored windows).
    window_totals totals;
    std::uint64_t retired = 0;
    std::uint64_t first_window = 0;

    const bool restored =
        try_load_checkpoint(instructions, warmup, [&](ckpt::reader& r) {
            ckpt::loader ar(r);
            ar(first_window);
            ar(retired);
            ar(placement);
            ar(totals);
        });
    if (restored)
        ckpt_last_save_ = retired;
    else
        // The run-level warm-up executes functionally: large-structure
        // warmth comes from prewarm() plus the warm_access() path, timing
        // warmth from each window's detailed warm-up segment.
        fast_forward(warmup);

    for (std::uint64_t k = first_window; k < windows; ++k) {
        const std::uint64_t span = k + 1 == windows
                                       ? instructions - (windows - 1) * base_span
                                       : base_span;
        const std::uint64_t slack = span - detail - window_warmup;
        const std::uint64_t offset = placement.below(slack + 1);

        fast_forward(offset);
        std::uint64_t used = offset;
        if (window_warmup > 0) {
            detailed_segment(window_warmup, segment_budget, nullptr);
            used += core->committed();
        }
        detailed_segment(detail, segment_budget, &totals);
        used += core->committed();
        drain(segment_budget);
        fast_forward(span > used ? span - used : 0);
        retired += std::max(span, used);

        // Window boundaries are already quiescent (drain + functional
        // fast-forward), so the sampled snapshot costs no extra drain and
        // perturbs nothing.
        if (k + 1 < windows)
            checkpoint_boundary(retired, instructions, warmup,
                                [&, k](ckpt::writer& w) {
                                    ckpt::saver ar(w);
                                    std::uint64_t next = k + 1;
                                    ar(next);
                                    ar(retired);
                                    ar(placement);
                                    ar(totals);
                                });
    }
    checkpoint_complete();

    const double host_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      host_start)
            .count();

    run_result r;
    r.config_name = config_.name;
    r.workload_name = streams_.front()->profile().name;
    r.floating_point = streams_.front()->profile().floating_point;
    assemble_sampled(r, totals, retired, host_seconds);
    return r;
}

void system::assemble_sampled(run_result& r, const window_totals& totals,
                              std::uint64_t retired,
                              double host_seconds) const
{
    // Point estimate and confidence interval. Windows are (near) equal
    // size, so the run's CPI estimate is the plain mean of per-window CPI;
    // the 95% CI uses the normal approximation (SMARTS' large-n regime) and
    // transforms to IPC with the delta method.
    const std::size_t n = totals.window_cpi.size();
    double mean_cpi = 0.0;
    for (const double cpi : totals.window_cpi)
        mean_cpi += cpi;
    mean_cpi = n == 0 ? 0.0 : mean_cpi / double(n);
    double ci_cpi = 0.0;
    if (n >= 2) {
        double ss = 0.0;
        for (const double cpi : totals.window_cpi)
            ss += (cpi - mean_cpi) * (cpi - mean_cpi);
        const double stddev = std::sqrt(ss / double(n - 1));
        ci_cpi = 1.96 * stddev / std::sqrt(double(n));
    }

    r.sampled = true;
    r.sampled_windows = n;
    r.measured_instructions = totals.instructions;
    r.instructions = retired;
    r.ipc = mean_cpi > 0.0 ? 1.0 / mean_cpi : 0.0;
    r.ipc_ci95 = mean_cpi > 0.0 ? ci_cpi / (mean_cpi * mean_cpi) : 0.0;
    r.cycles = cycle_t(std::llround(double(retired) * mean_cpi));
    r.host_seconds = host_seconds;
    r.sim_cycles_per_second =
        host_seconds > 0.0 ? double(r.cycles) / host_seconds : 0.0;
    r.sim_instructions_per_second =
        host_seconds > 0.0 ? double(r.instructions) / host_seconds : 0.0;

    // Extrapolate measured event counts to the whole run.
    const double factor = totals.instructions == 0
                              ? 0.0
                              : double(retired) / double(totals.instructions);
    const auto scaled = [factor](std::uint64_t v) {
        return std::uint64_t(std::llround(double(v) * factor));
    };
    r.l2_read_hits = scaled(totals.l2_read_hits);
    if (fabric_) {
        r.fabric_read_hits.assign(config_.fabric.levels + 1, 0);
        for (unsigned level = 2; level <= config_.fabric.levels; ++level)
            r.fabric_read_hits[level] =
                level < totals.fabric_read_hits.size()
                    ? scaled(totals.fabric_read_hits[level])
                    : 0;
    }
    r.transport_actual = scaled(totals.transport_actual);
    r.transport_min = scaled(totals.transport_min);
    r.search_restarts = scaled(totals.search_restarts);
    r.searches = scaled(totals.searches);
    r.loads_l1 = scaled(totals.loads_l1);
    r.loads_fabric = scaled(totals.loads_fabric);
    r.loads_l2 = scaled(totals.loads_l2);
    r.loads_l3 = scaled(totals.loads_l3);
    r.loads_dnuca = scaled(totals.loads_dnuca);
    r.loads_memory = scaled(totals.loads_memory);
    r.loads_peer = scaled(totals.loads_peer);
    r.avg_load_latency =
        totals.load_latency_count == 0
            ? 0.0
            : totals.load_latency_weighted / double(totals.load_latency_count);

    power::energy_inputs in = totals.energy;
    in.cycles = r.cycles;
    in.l1_accesses = scaled(in.l1_accesses);
    in.l2_accesses = scaled(in.l2_accesses);
    in.tile_tag_lookups = scaled(in.tile_tag_lookups);
    in.tile_data_accesses = scaled(in.tile_data_accesses);
    in.transport_hops = scaled(in.transport_hops);
    in.replacement_hops = scaled(in.replacement_hops);
    in.search_hops = scaled(in.search_hops);
    in.l3_accesses = scaled(in.l3_accesses);
    in.bank_accesses = scaled(in.bank_accesses);
    in.dnuca_flit_hops = scaled(in.dnuca_flit_hops);
    in.memory_transfers = scaled(in.memory_transfers);
    r.energy = power::compute_energy(in);
}

run_result system::run_cmp_sampled(std::uint64_t instructions,
                                   std::uint64_t warmup)
{
    // Sampled fast-forward is only coherence-correct through the hub's
    // warm MESI path: without it, functional retirement would desync the
    // private L1s' permission state from the directory.
    if (!hub_)
        throw std::runtime_error(
            "sampled CMP execution requires the coherence hub; this "
            "hierarchy cannot honor the CMP warm_access contract "
            "(run with --sampling off)");
    for (const auto& l1 : l1s_)
        if (!l1->config().coherent)
            throw std::runtime_error(
                "sampled CMP execution requires coherent private L1s; "
                "this hierarchy cannot honor the CMP warm_access contract "
                "(run with --sampling off)");

    const sampling_config& sc = config_.sampling;
    const auto host_start = std::chrono::steady_clock::now();
    // Same generous per-segment ceiling as run_cmp's (contended lanes run
    // slower than a lone core, so the single-core 400 factor is too tight).
    const cycle_t segment_budget =
        600 * (sc.detail_instructions + sc.detail_warmup) + 2'000'000;

    // Window arithmetic is per lane - every core retires `instructions` -
    // and identical to run_sampled's, so the single-core and CMP drivers
    // place windows the same way for the same spec.
    const std::uint64_t detail =
        std::min(std::max<std::uint64_t>(sc.detail_instructions, 1),
                 std::max<std::uint64_t>(instructions, 1));
    const std::uint64_t window_warmup =
        std::min(sc.detail_warmup,
                 instructions > detail ? instructions - detail : 0);
    const std::uint64_t period =
        std::max(sc.period_instructions, detail + window_warmup);
    const std::uint64_t windows =
        std::max<std::uint64_t>(1, instructions / period);
    const std::uint64_t base_span = std::max<std::uint64_t>(
        instructions / windows, detail + window_warmup);

    rng placement(rng::split(seed_, 0x5a3b11d6ULL, windows, 0));

    const std::size_t n_cores = cores_.size();
    window_totals totals;
    std::uint64_t retired_per_lane = 0;
    std::uint64_t first_window = 0;
    std::vector<std::uint64_t> core_instr(n_cores, 0);
    std::vector<std::uint64_t> core_cycles(n_cores, 0);
    // Per-lane retirement rate measured in the most recent detailed
    // window, fed back into the fast-forward (see fast_forward_rated):
    // dense CMP execution lets fast lanes drift ahead of slow ones, and
    // sharing-heavy lane sets (producer/consumer hand-offs) see a very
    // different coherence pattern at zero lag than at the dense lag. The
    // first fast-forward runs in lockstep (no measurement yet).
    std::vector<double> rates(n_cores, 1.0);
    bool rates_known = false;

    const bool restored =
        try_load_checkpoint(instructions, warmup, [&](ckpt::reader& r) {
            ckpt::loader ar(r);
            ar(first_window);
            ar(retired_per_lane);
            ar(placement);
            ar(core_instr);
            ar(core_cycles);
            ar(rates);
            ar(rates_known);
            ar(totals);
        });
    if (restored)
        ckpt_last_save_ = retired_per_lane;
    else
        // Run-level warm-up executes functionally on every lane (see
        // fast_forward: round-robin chunks through the warm MESI path).
        fast_forward(warmup);

    const auto ff = [&](std::uint64_t count) {
        if (rates_known)
            fast_forward_rated(count, rates);
        else
            fast_forward(count);
    };
    const auto max_committed = [&] {
        std::uint64_t m = 0;
        for (const auto& core : cores_)
            m = std::max(m, core->committed());
        return m;
    };

    for (std::uint64_t k = first_window; k < windows; ++k) {
        const std::uint64_t span = k + 1 == windows
                                       ? instructions - (windows - 1) * base_span
                                       : base_span;
        const std::uint64_t slack = span - detail - window_warmup;
        const std::uint64_t offset = placement.below(slack + 1);


        ff(offset);
        // `used` tracks the furthest lane's position inside the window;
        // slower lanes drift a few instructions behind the nominal
        // placement, which the estimate absorbs (sampling is statistical).
        std::uint64_t used = offset;
        if (window_warmup > 0) {
            detailed_segment(window_warmup, segment_budget, nullptr);
            used += max_committed();
        }
        const cycle_t seg_start = engine_.now();
        detailed_segment(detail, segment_budget, &totals);
        for (std::size_t i = 0; i < n_cores; ++i) {
            // Per-core cycles from each core's own finish cycle, exactly
            // like run_cmp: early finishers stop accruing.
            const cycle_t fin = cores_[i]->finished_at() == no_cycle
                                    ? engine_.now()
                                    : cores_[i]->finished_at();
            core_instr[i] += cores_[i]->committed();
            core_cycles[i] += fin + 1 - seg_start;
            const cycle_t window_cycles = fin + 1 - seg_start;
            rates[i] = window_cycles == 0
                           ? 1.0
                           : double(cores_[i]->committed()) /
                                 double(window_cycles);
        }
        rates_known = true;
        used += max_committed();
        drain(segment_budget);
        ff(span > used ? span - used : 0);
        retired_per_lane += std::max(span, used);

        // Quiescent window boundary; cadence runs on the per-lane cursor
        // (checkpoint.every is per-lane instructions, like run_cmp's
        // chunks).
        if (k + 1 < windows)
            checkpoint_boundary(retired_per_lane, instructions, warmup,
                                [&, k](ckpt::writer& w) {
                                    ckpt::saver ar(w);
                                    std::uint64_t next = k + 1;
                                    ar(next);
                                    ar(retired_per_lane);
                                    ar(placement);
                                    ar(core_instr);
                                    ar(core_cycles);
                                    ar(rates);
                                    ar(rates_known);
                                    ar(totals);
                                });
    }
    checkpoint_complete();

    const double host_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      host_start)
            .count();

    run_result r;
    r.config_name = config_.name;
    r.floating_point = streams_.front()->profile().floating_point;
    r.cores = std::uint32_t(n_cores);

    // Workload label: the mix's distinct names, first-appearance order
    // (same convention as run_cmp).
    std::vector<std::string> seen;
    for (const auto& stream : streams_) {
        const std::string& name = stream->profile().name;
        if (std::find(seen.begin(), seen.end(), name) == seen.end())
            seen.push_back(name);
    }
    r.workload_name = seen.front();
    for (std::size_t i = 1; i < seen.size(); ++i)
        r.workload_name += "+" + seen[i];

    // The window CPI series is aggregate (total instructions over wall
    // cycles), so the assembled ipc/cycles estimate run_cmp's aggregate
    // IPC and wall cycles for the whole-run lane length.
    assemble_sampled(r, totals, retired_per_lane * n_cores, host_seconds);
    for (std::size_t i = 0; i < n_cores; ++i)
        r.per_core_ipc.push_back(core_cycles[i] == 0
                                     ? 0.0
                                     : double(core_instr[i]) /
                                           double(core_cycles[i]));
    return r;
}

run_result run_one(const system_config& config,
                   const wl::workload_profile& workload,
                   std::uint64_t instructions, std::uint64_t warmup,
                   std::uint64_t seed)
{
    system sys(config, workload, seed);
    return sys.run(instructions, warmup);
}

double weighted_speedup(const run_result& cmp_result,
                        const run_result& single_core_baseline)
{
    if (single_core_baseline.ipc <= 0.0)
        return 0.0;
    double ws = 0.0;
    for (const double ipc : cmp_result.per_core_ipc)
        ws += ipc / single_core_baseline.ipc;
    return ws;
}

// run_matrix lives in src/exp/runner.cpp: it is a thin wrapper over the
// exp experiment runner (work-stealing pool + rng::split job seeding).

} // namespace lnuca::hier
