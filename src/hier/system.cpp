#include "src/hier/system.h"

#include "src/common/log.h"

#include <chrono>

namespace lnuca::hier {

system::system(const system_config& config, const wl::workload_profile& workload,
               std::uint64_t seed)
    : config_(config)
{
    engine_.set_mode(config.engine_mode);
    stream_ = wl::make_stream(workload, hash64(seed ^ hash64(0x5770)));
    core_ = std::make_unique<cpu::ooo_core>(config.core, *stream_, ids_);

    mem::cache_config l1c = config.l1;
    l1c.seed = hash64(seed ^ 0x11);
    l1_ = std::make_unique<mem::conventional_cache>(l1c, ids_);

    memory_ = std::make_unique<mem::main_memory>(config.memory);

    const bool with_fabric = config.kind == hierarchy_kind::lnuca_l3 ||
                             config.kind == hierarchy_kind::lnuca_dnuca;
    const bool with_l2 = config.kind == hierarchy_kind::conventional;
    const bool with_l3 = config.kind == hierarchy_kind::conventional ||
                         config.kind == hierarchy_kind::lnuca_l3;
    const bool with_dnuca = config.kind == hierarchy_kind::dnuca ||
                            config.kind == hierarchy_kind::lnuca_dnuca;

    if (with_fabric) {
        fabric::fabric_config fc = config.fabric;
        fc.seed = hash64(seed ^ 0xfab);
        fc.tile.seed = hash64(seed ^ 0x711e);
        fabric_ = std::make_unique<fabric::lnuca_cache>(fc, ids_);
    }
    if (with_l2) {
        mem::cache_config l2c = config.l2;
        l2c.seed = hash64(seed ^ 0x22);
        l2_ = std::make_unique<mem::conventional_cache>(l2c, ids_);
    }
    if (with_l3) {
        mem::cache_config l3c = config.l3;
        l3c.seed = hash64(seed ^ 0x33);
        l3_ = std::make_unique<mem::conventional_cache>(l3c, ids_);
    }
    if (with_dnuca) {
        dnuca::dnuca_config dc = config.dnuca;
        dc.seed = hash64(seed ^ 0xd0ca);
        dnuca_ = std::make_unique<dnuca::dnuca_cache>(dc, ids_);
    }

    // Wire top-down. Registration order is the timing contract: producers
    // tick before the consumers beneath them (see sim/engine.h).
    core_->set_dcache(l1_.get());
    engine_.add(*core_);

    mem::mem_port* below_l1 = nullptr;

    engine_.add(*l1_);
    if (with_fabric) {
        below_l1 = fabric_.get();
        fabric_->set_upstream(l1_.get());
        engine_.add(*fabric_);
    } else if (with_l2) {
        // L1 -> bus -> L2: the inter-cache hop the L-NUCA eliminates.
        l1_l2_bus_ = std::make_unique<mem::bus>(config.l1_l2_bus);
        below_l1 = l1_l2_bus_.get();
        l1_l2_bus_->set_upstream(l1_.get());
        l1_l2_bus_->set_downstream(l2_.get());
        l2_->set_upstream(l1_l2_bus_.get());
        engine_.add(*l1_l2_bus_);
        engine_.add(*l2_);
    }

    l1_->set_upstream(core_.get());
    if (below_l1 == nullptr) {
        // D-NUCA directly under the L1 (Fig. 1(c)).
        below_l1 = dnuca_.get();
        dnuca_->set_upstream(l1_.get());
        engine_.add(*dnuca_);
        dnuca_->set_downstream(memory_.get());
        memory_->set_upstream(dnuca_.get());
        l1_->set_downstream(below_l1);
        engine_.add(*memory_);
        prewarm();
        return;
    }
    l1_->set_downstream(below_l1);

    if (with_l3) {
        l3_->set_upstream(static_cast<mem::mem_client*>(
            with_fabric ? static_cast<mem::mem_client*>(fabric_.get())
                        : static_cast<mem::mem_client*>(l2_.get())));
        if (with_fabric)
            fabric_->set_downstream(l3_.get());
        else
            l2_->set_downstream(l3_.get());
        engine_.add(*l3_);
        l3_->set_downstream(memory_.get());
        memory_->set_upstream(l3_.get());
    } else if (with_dnuca) {
        // L-NUCA + D-NUCA (Fig. 1(d)).
        dnuca_->set_upstream(fabric_.get());
        fabric_->set_downstream(dnuca_.get());
        engine_.add(*dnuca_);
        dnuca_->set_downstream(memory_.get());
        memory_->set_upstream(dnuca_.get());
    }
    engine_.add(*memory_);
    prewarm();
}

void system::prewarm()
{
    // Functionally install the workload's hot window into the large arrays
    // before measurement, substituting for the paper's 200M-instruction
    // warm-up, which scaled-down runs cannot afford. Smaller structures
    // (L1, L-NUCA tiles, conventional L2) warm naturally during the
    // simulated warm-up window; the L2 is included here because its 4K
    // lines are borderline at short windows.
    auto warm_cache = [&](mem::conventional_cache* cache) {
        if (cache == nullptr)
            return;
        const std::uint64_t lines =
            cache->tags().size_bytes() / cache->tags().block_bytes();
        const std::uint64_t window =
            lines * cache->tags().block_bytes() / 32; // generator blocks
        for (std::uint64_t j = window; j-- > 0;)
            cache->tags().install(stream_->warm_block(j), false);
    };
    warm_cache(l3_.get());
    warm_cache(l2_.get());
    if (dnuca_) {
        const std::uint64_t window = dnuca_->size_bytes() / 32;
        for (std::uint64_t j = window; j-- > 0;)
            dnuca_->prewarm(stream_->warm_block(j));
    }
    if (fabric_) {
        // The fabric holds the recency window just beyond the L1's 1024
        // blocks; the L1 itself warms naturally within the warm-up window.
        const std::uint64_t l1_blocks = config_.l1.size_bytes / 32;
        const std::uint64_t capacity = fabric_->tile_capacity_bytes() / 32;
        std::uint64_t installed = 0;
        for (std::uint64_t j = l1_blocks;
             installed < capacity && j < l1_blocks + 2 * capacity; ++j)
            installed += fabric_->prewarm(stream_->warm_block(j)) ? 1 : 0;
    }
}

namespace {

std::uint64_t counter_delta(const counter_set& counters, const std::string& name,
                            const counter_set& snapshot)
{
    return counters.get(name) - snapshot.get(name);
}

} // namespace

run_result system::run(std::uint64_t instructions, std::uint64_t warmup)
{
    const cycle_t max_cycles = 400 * (instructions + warmup) + 2'000'000;

    // Warm-up window.
    core_->set_instruction_limit(warmup);
    engine_.run_until([&] { return core_->done(); }, max_cycles);

    // Snapshot counters whose deltas we report.
    const counter_set l1_snap = l1_->counters();
    const counter_set l2_snap = l2_ ? l2_->counters() : counter_set{};
    const counter_set l3_snap = l3_ ? l3_->counters() : counter_set{};
    const counter_set fab_snap = fabric_ ? fabric_->counters() : counter_set{};
    const counter_set dn_snap = dnuca_ ? dnuca_->counters() : counter_set{};
    const counter_set memory_snap = memory_->counters();
    const std::uint64_t dn_hops_snap = dnuca_ ? dnuca_->mesh().flit_hops() : 0;
    std::vector<std::uint64_t> fab_hits_snap;
    std::uint64_t transport_actual_snap = 0;
    std::uint64_t transport_min_snap = 0;
    if (fabric_) {
        for (unsigned level = 0; level <= config_.fabric.levels; ++level)
            fab_hits_snap.push_back(fabric_->read_hits_in_level(level));
        transport_actual_snap = fabric_->transport_actual_cycles();
        transport_min_snap = fabric_->transport_min_cycles();
    }

    core_->reset_stats();
    const cycle_t measure_start = engine_.now();
    const auto host_start = std::chrono::steady_clock::now();

    core_->set_instruction_limit(instructions);
    const bool finished =
        engine_.run_until([&] { return core_->done(); }, max_cycles);
    if (!finished)
        LNUCA_WARN("run hit the cycle ceiling before committing ",
                   instructions, " instructions");
    const double host_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      host_start)
            .count();

    run_result r;
    r.config_name = config_.name;
    r.workload_name = stream_->profile().name;
    r.floating_point = stream_->profile().floating_point;
    r.instructions = core_->committed();
    r.cycles = engine_.now() - measure_start;
    r.ipc = r.cycles == 0 ? 0.0 : double(r.instructions) / double(r.cycles);
    r.host_seconds = host_seconds;
    r.sim_cycles_per_second =
        host_seconds > 0.0 ? double(r.cycles) / host_seconds : 0.0;
    r.sim_instructions_per_second =
        host_seconds > 0.0 ? double(r.instructions) / host_seconds : 0.0;

    if (l2_)
        r.l2_read_hits = counter_delta(l2_->counters(), "read_hit", l2_snap);
    if (fabric_) {
        r.fabric_read_hits.assign(config_.fabric.levels + 1, 0);
        for (unsigned level = 2; level <= config_.fabric.levels; ++level)
            r.fabric_read_hits[level] =
                fabric_->read_hits_in_level(level) - fab_hits_snap[level];
        r.transport_actual =
            fabric_->transport_actual_cycles() - transport_actual_snap;
        r.transport_min = fabric_->transport_min_cycles() - transport_min_snap;
        r.search_restarts =
            counter_delta(fabric_->counters(), "search_restarts", fab_snap);
        r.searches =
            counter_delta(fabric_->counters(), "searches_injected", fab_snap);
    }

    r.loads_l1 = core_->loads_served_by(mem::service_level::l1);
    r.loads_fabric = core_->loads_served_by(mem::service_level::lnuca_tile);
    r.loads_l2 = core_->loads_served_by(mem::service_level::l2);
    r.loads_l3 = core_->loads_served_by(mem::service_level::l3);
    r.loads_dnuca = core_->loads_served_by(mem::service_level::dnuca);
    r.loads_memory = core_->loads_served_by(mem::service_level::memory);
    r.avg_load_latency = core_->load_latency().mean();

    // Energy over the measurement window.
    power::energy_inputs in;
    in.cycles = r.cycles;
    in.l1_accesses = counter_delta(l1_->counters(), "accesses", l1_snap);
    if (l2_) {
        in.has_l2 = true;
        in.l2_accesses = counter_delta(l2_->counters(), "accesses", l2_snap);
    }
    if (fabric_) {
        const auto& fc = fabric_->counters();
        in.fabric_tiles = fabric_->geo().tile_count();
        in.tile_tag_lookups = counter_delta(fc, "tile_tag_lookups", fab_snap);
        in.tile_data_accesses =
            counter_delta(fc, "tile_data_reads", fab_snap) +
            counter_delta(fc, "tile_data_writes", fab_snap);
        in.transport_hops = counter_delta(fc, "transport_hops", fab_snap);
        in.replacement_hops = counter_delta(fc, "replacement_hops", fab_snap);
        in.search_hops = counter_delta(fc, "search_broadcast_hops", fab_snap);
    }
    if (l3_) {
        in.has_l3 = true;
        in.l3_accesses = counter_delta(l3_->counters(), "accesses", l3_snap);
    }
    if (dnuca_) {
        in.dnuca_banks = config_.dnuca.bank_sets * config_.dnuca.rows;
        in.bank_accesses =
            counter_delta(dnuca_->counters(), "bank_lookups", dn_snap) +
            counter_delta(dnuca_->counters(), "bank_writes", dn_snap);
        in.dnuca_flit_hops = dnuca_->mesh().flit_hops() - dn_hops_snap;
    }
    in.memory_transfers =
        counter_delta(memory_->counters(), "transfers", memory_snap);
    r.energy = power::compute_energy(in);
    return r;
}

run_result run_one(const system_config& config,
                   const wl::workload_profile& workload,
                   std::uint64_t instructions, std::uint64_t warmup,
                   std::uint64_t seed)
{
    system sys(config, workload, seed);
    return sys.run(instructions, warmup);
}

// run_matrix lives in src/exp/runner.cpp: it is a thin wrapper over the
// exp experiment runner (work-stealing pool + rng::split job seeding).

} // namespace lnuca::hier
