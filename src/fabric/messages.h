// Headerless messages of the three L-NUCA networks (Section III-B).
//
// Destinations are implicit in the topologies (search: broadcast outwards;
// transport: towards the r-tile; replacement: next tile in the latency
// order), so messages carry only the block identity plus bookkeeping the
// simulator needs for statistics.
#pragma once

#include "src/common/types.h"

namespace lnuca::fabric {

/// Miss request travelling outwards on the broadcast tree. A tile that hits
/// but finds all transport outputs Off re-emits the message with `marked`
/// set; the global-miss logic then bounces the request back to the r-tile
/// to restart the search (Section III-C, Transport operation).
struct search_msg {
    addr_t block = no_addr;
    bool is_write = false; ///< fire-and-forget store miss (updates in place)
    bool marked = false;   ///< transport-contention restart marker
};

/// Hit block travelling to the r-tile on the transport mesh. One
/// message-wide flit (32 B links carry a 32 B block).
struct transport_msg {
    addr_t block = no_addr;
    bool dirty = false;
    std::uint8_t level = 2;   ///< L-NUCA level that hit (2 = Le2)
    cycle_t hit_cycle = 0;    ///< for avg/min transport latency (Table III)
    std::uint32_t min_hops = 1;
};

/// Victim block performing one "domino" hop on the replacement network.
struct replace_msg {
    addr_t block = no_addr;
    bool dirty = false;
};

} // namespace lnuca::fabric
