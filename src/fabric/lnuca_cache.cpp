#include "src/fabric/lnuca_cache.h"

#include "src/ckpt/archive.h"
#include "src/common/log.h"

#include <algorithm>
#include <array>
#include <stdexcept>

namespace lnuca::fabric {

namespace {

std::uint32_t position_of(const std::vector<tile_index>& list, tile_index value)
{
    for (std::uint32_t i = 0; i < list.size(); ++i)
        if (list[i] == value)
            return i;
    throw std::logic_error("wiring inconsistency: source not in input list");
}

} // namespace

lnuca_cache::lnuca_cache(const fabric_config& config, mem::txn_id_source& ids)
    : config_(config),
      ids_(ids),
      geo_(config.levels),
      mshrs_(config.mshr_entries, config.mshr_secondary),
      search_by_slot_(config.mshr_entries),
      rng_(config.seed),
      level_read_hits_(config.levels + 1, 0)
{
    tiles_.reserve(geo_.tile_count());
    for (tile_index i = 0; i < geo_.tile_count(); ++i) {
        const bool root_fed =
            std::find(geo_.root_replacement_outputs().begin(),
                      geo_.root_replacement_outputs().end(),
                      i) != geo_.root_replacement_outputs().end();
        tile_config tc = config.tile;
        tc.seed = config.tile.seed + i;
        tiles_.emplace_back(tc, unsigned(geo_.transport_inputs(i).size()),
                            unsigned(geo_.replacement_inputs(i).size() +
                                     (root_fed ? 1 : 0)));
    }

    // Transport wiring: receiver slot of each unidirectional link.
    d_out_.resize(geo_.tile_count());
    for (tile_index i = 0; i < geo_.tile_count(); ++i) {
        for (const tile_index t : geo_.transport_outputs(i)) {
            if (t == root_index)
                d_out_[i].push_back(
                    {root_index, position_of(geo_.root_transport_inputs(), i)});
            else
                d_out_[i].push_back({t, position_of(geo_.transport_inputs(t), i)});
        }
        if (d_out_[i].size() > max_links)
            throw std::logic_error("tile transport fan-out exceeds link mask");
    }

    // Replacement wiring. The r-tile's link lands in the extra (last) slot.
    u_out_.resize(geo_.tile_count());
    for (tile_index i = 0; i < geo_.tile_count(); ++i) {
        for (const tile_index t : geo_.replacement_outputs(i))
            u_out_[i].push_back({t, position_of(geo_.replacement_inputs(t), i)});
        if (u_out_[i].size() > max_links)
            throw std::logic_error("tile replacement fan-out exceeds link mask");
    }
    for (const tile_index t : geo_.root_replacement_outputs())
        root_u_out_.push_back(
            {t, std::uint32_t(geo_.replacement_inputs(t).size())});

    root_arrivals_.assign(geo_.root_transport_inputs().size(),
                          noc::sync_fifo<transport_msg>(config.tile.buffer_depth));

    counters_.preregister(
        {"evictions_in", "root_ubuffer_hit", "read_hit", "store_merged",
         "mshr_merge", "searches_requested", "searches_injected",
         "search_broadcast_hops", "tile_tag_lookups", "tile_hits",
         "tile_data_reads", "tile_data_writes", "ubuffer_hits",
         "store_hits_in_place", "store_hits_in_transit",
         "transport_contention", "transport_hops", "transport_blocked",
         "replacement_hops", "replacement_blocked", "install_conflicts",
         "eviction_inject_blocked", "evictions_injected",
         "miss_line_gathers", "search_restarts", "global_misses",
         "false_global_misses", "exit_snoop_hits", "write_misses_out",
         "blocks_delivered", "fills_from_next_level", "untracked_response",
         "untracked_arrival", "orphan_search", "clean_exits_dropped",
         "dirty_exits_written_back", "downstream_backpressure",
         "downstream_queue_high_water"});
    h_tile_tag_lookups_ = counters_.handle_of("tile_tag_lookups");
    h_search_broadcast_hops_ = counters_.handle_of("search_broadcast_hops");
    h_transport_hops_ = counters_.handle_of("transport_hops");
    h_transport_blocked_ = counters_.handle_of("transport_blocked");
    h_tile_hits_ = counters_.handle_of("tile_hits");
    h_tile_data_reads_ = counters_.handle_of("tile_data_reads");
    h_tile_data_writes_ = counters_.handle_of("tile_data_writes");
    h_replacement_hops_ = counters_.handle_of("replacement_hops");
    h_searches_requested_ = counters_.handle_of("searches_requested");
    h_searches_injected_ = counters_.handle_of("searches_injected");
    h_miss_line_gathers_ = counters_.handle_of("miss_line_gathers");
    h_global_misses_ = counters_.handle_of("global_misses");
    h_blocks_delivered_ = counters_.handle_of("blocks_delivered");
    h_clean_exits_dropped_ = counters_.handle_of("clean_exits_dropped");
    h_dirty_exits_written_back_ = counters_.handle_of("dirty_exits_written_back");
    h_eviction_inject_blocked_ = counters_.handle_of("eviction_inject_blocked");
    h_evictions_in_ = counters_.handle_of("evictions_in");
    h_evictions_injected_ = counters_.handle_of("evictions_injected");
    h_exit_snoop_hits_ = counters_.handle_of("exit_snoop_hits");
    h_false_global_misses_ = counters_.handle_of("false_global_misses");
    h_fills_from_next_level_ = counters_.handle_of("fills_from_next_level");
    h_install_conflicts_ = counters_.handle_of("install_conflicts");
    h_mshr_merge_ = counters_.handle_of("mshr_merge");
    h_orphan_search_ = counters_.handle_of("orphan_search");
    h_read_hit_ = counters_.handle_of("read_hit");
    h_replacement_blocked_ = counters_.handle_of("replacement_blocked");
    h_root_ubuffer_hit_ = counters_.handle_of("root_ubuffer_hit");
    h_search_restarts_ = counters_.handle_of("search_restarts");
    h_store_hits_in_place_ = counters_.handle_of("store_hits_in_place");
    h_store_hits_in_transit_ = counters_.handle_of("store_hits_in_transit");
    h_store_merged_ = counters_.handle_of("store_merged");
    h_transport_contention_ = counters_.handle_of("transport_contention");
    h_ubuffer_hits_ = counters_.handle_of("ubuffer_hits");
    h_untracked_arrival_ = counters_.handle_of("untracked_arrival");
    h_untracked_response_ = counters_.handle_of("untracked_response");
    h_write_misses_out_ = counters_.handle_of("write_misses_out");
    h_downstream_backpressure_ = counters_.handle_of("downstream_backpressure");
    h_downstream_queue_high_water_ =
        counters_.handle_of("downstream_queue_high_water");
    // Pre-size the rings and the refill heap for their structural bounds so
    // steady-state cycles never touch the allocator.
    inject_queue_.reserve(config.inject_queue_depth + config.mshr_entries);
    evict_queue_.reserve(config.evict_queue_depth);
    exit_queue_.reserve(config.exit_queue_depth);
    downstream_queue_.reserve(config.downstream_queue_depth);
    refills_.reserve(config.mshr_entries + 8);

    tiles_by_level_.resize(config.levels + 1);
    for (unsigned level = 2; level <= config.levels; ++level)
        tiles_by_level_[level] = geo_.tiles_in_level(level);
    warm_rotate_.assign(config.levels + 1, 0);

    const std::uint64_t fabric_lines =
        std::uint64_t(geo_.tile_count()) *
        (config.tile.size_bytes / config.tile.block_bytes);
    std::size_t buckets = 8;
    while (buckets < fabric_lines * 2)
        buckets <<= 1;
    warm_slots_.assign(buckets, {no_addr, 0});
    warm_mask_ = buckets - 1;
}

std::size_t lnuca_cache::warm_find(addr_t block) const
{
    std::size_t b = std::size_t(hash64(block)) & warm_mask_;
    while (warm_slots_[b].first != no_addr) {
        if (warm_slots_[b].first == block)
            return b;
        b = (b + 1) & warm_mask_;
    }
    return ~std::size_t{0};
}

void lnuca_cache::warm_index_insert(addr_t block, tile_index holder)
{
    std::size_t b = std::size_t(hash64(block)) & warm_mask_;
    while (warm_slots_[b].first != no_addr && warm_slots_[b].first != block)
        b = (b + 1) & warm_mask_;
    warm_slots_[b] = {block, holder};
}

void lnuca_cache::warm_index_erase(addr_t block)
{
    std::size_t b = warm_find(block);
    if (b == ~std::size_t{0})
        return;
    warm_slots_[b].first = no_addr;
    // Backward-shift: re-place the probe cluster behind the hole.
    std::size_t i = (b + 1) & warm_mask_;
    while (warm_slots_[i].first != no_addr) {
        const auto entry = warm_slots_[i];
        warm_slots_[i].first = no_addr;
        warm_index_insert(entry.first, entry.second);
        i = (i + 1) & warm_mask_;
    }
}

void lnuca_cache::warm_index_rebuild()
{
    for (auto& slot : warm_slots_)
        slot.first = no_addr;
    for (tile_index i = 0; i < tile_index(tiles_.size()); ++i) {
        const mem::tag_array& tags = tiles_[i].cache;
        for (std::uint32_t set = 0; set < tags.sets(); ++set)
            for (std::uint32_t way = 0; way < tags.ways(); ++way) {
                const mem::cache_line& line = tags.line(set, way);
                if (line.valid)
                    warm_index_insert(line.tag, i);
            }
    }
    warm_index_stale_ = false;
}

bool lnuca_cache::can_accept(const mem::mem_request& request) const
{
    if (request.kind == mem::access_kind::writeback)
        return evict_queue_.size() < config_.evict_queue_depth;

    const addr_t block = request.addr & ~addr_t(config_.tile.block_bytes - 1);
    if (const auto* entry = mshrs_.find(block)) {
        const bool pure_write = state_of(*entry).is_write;
        if (!request.needs_response)
            return true; // stores absorb into the entry as a dirty merge
        // A demand access cannot merge into a fire-and-forget write search
        // (it would never be answered); it waits until that search drains.
        if (pure_write)
            return false;
        return entry->target_count < config_.mshr_secondary;
    }
    return mshrs_.can_allocate() &&
           inject_queue_.size() < config_.inject_queue_depth;
}

void lnuca_cache::accept(const mem::mem_request& request)
{
    const cycle_t now = request.created_at;

    if (request.kind == mem::access_kind::writeback) {
        counters_.inc(h_evictions_in_);
        evict_queue_.push_back(replace_msg{request.addr, request.dirty});
        return;
    }

    const addr_t block = request.addr & ~addr_t(config_.tile.block_bytes - 1);
    const bool fire_and_forget = !request.needs_response;

    // The r-tile's output buffers (the eviction queue) are searched before
    // launching a network search, avoiding false misses for blocks that
    // just left the L1.
    for (std::size_t qi = 0; qi < evict_queue_.size(); ++qi) {
        replace_msg& victim = evict_queue_[qi];
        if (victim.block != block)
            continue;
        counters_.inc(h_root_ubuffer_hit_);
        if (fire_and_forget) {
            victim.dirty = true;
            return;
        }
        const bool dirty = victim.dirty;
        evict_queue_.erase_at(qi);
        counters_.inc(h_read_hit_);
        level_read_hits_[2] += request.kind == mem::access_kind::read;
        if (upstream_ != nullptr) {
            mem::mem_response response;
            response.id = request.id;
            response.addr = request.addr;
            response.ready_at = now + 1;
            response.served_by = mem::service_level::lnuca_tile;
            response.fabric_level = 2;
            response.dirty = dirty;
            upstream_->respond(response);
        }
        return;
    }

    if (mem::mshr_entry* entry = mshrs_.find(block)) {
        search_state& state = state_of(*entry);
        if (fire_and_forget) {
            state.write_merged = true;
            counters_.inc(h_store_merged_);
            return;
        }
        mshrs_.add_target(*entry, {request.id, request.addr, request.kind,
                                   request.created_at});
        counters_.inc(h_mshr_merge_);
        return;
    }

    auto& entry = mshrs_.allocate(block, now);
    if (!fire_and_forget)
        mshrs_.add_target(entry,
                          {request.id, request.addr, request.kind,
                           request.created_at});

    search_state& state = state_of(entry);
    state = search_state{};
    state.is_write = fire_and_forget;

    search_msg msg;
    msg.block = block;
    msg.is_write = fire_and_forget;
    inject_queue_.push_back(msg);
    counters_.inc(h_searches_requested_);
}

void lnuca_cache::respond(const mem::mem_response& response)
{
    refills_.push(response.ready_at, response);
}

void lnuca_cache::tick(cycle_t now)
{
    // The detailed path moves blocks without maintaining the warm index.
    warm_index_stale_ = true;
    process_downstream_responses(now);
    process_root_arrivals(now);
    inject_evictions(now);
    inject_searches(now);
    for (tile_index i = 0; i < tiles_.size(); ++i)
        evaluate_tile(now, i);
    evaluate_global_misses(now);
    drain_downstream_queues(now);
    commit_cycle();
}

cycle_t lnuca_cache::next_event(cycle_t now) const
{
    // Anything queued, latched or in flight inside the fabric advances
    // every cycle (searches propagate, transport and replacement hop,
    // queues drain), so the fabric is busy until all of it settles.
    if (!inject_queue_.empty() || !evict_queue_.empty() ||
        !exit_queue_.empty() || !downstream_queue_.empty())
        return now;
    for (const auto& fifo : root_arrivals_)
        if (!fifo.idle())
            return now;
    for (const tile& t : tiles_) {
        if (t.ma.has_value() || t.ma_next.has_value() ||
            t.phase != tile::repl_phase::idle)
            return now;
        for (const auto& fifo : t.d_in)
            if (!fifo.idle())
                return now;
        for (const auto& fifo : t.u_in)
            if (!fifo.idle())
                return now;
    }
    // Quiet fabric: the only future work is time-stamped - next-level
    // refills and the miss-line gather of any still-active search (the
    // gather fires on exact cycle equality, so its bound must be included
    // even though the search wave itself has already left the tiles).
    cycle_t next = refills_.next_ready();
    for (const auto* e = mshrs_.first_live(); e != nullptr;
         e = mshrs_.next_live(*e)) {
        const search_state& state = state_of(*e);
        if (state.active)
            next = std::min(next, std::max(now, state.gather_at));
    }
    return next;
}

std::uint64_t lnuca_cache::state_digest() const
{
    sim::state_hash h;
    h.mix(counters_.digest());
    h.mix(inject_queue_.size());
    h.mix(evict_queue_.size());
    h.mix(exit_queue_.size());
    h.mix(downstream_queue_.size());
    h.mix(refills_.size());
    h.mix(refills_.next_ready());
    h.mix(mshrs_.in_use());
    h.mix(transport_actual_);
    h.mix(transport_min_);
    for (const std::uint64_t hits : level_read_hits_)
        h.mix(hits);
    for (const auto& fifo : root_arrivals_)
        h.mix(fifo.total_size());
    for (const tile& t : tiles_) {
        h.mix(t.ma.has_value() ? t.ma->block : no_addr);
        h.mix(t.ma_next.has_value() ? t.ma_next->block : no_addr);
        h.mix(std::uint64_t(t.phase));
        h.mix(t.pending_block);
        for (const auto& fifo : t.d_in)
            h.mix(fifo.total_size());
        for (const auto& fifo : t.u_in)
            h.mix(fifo.total_size());
    }
    for (const auto* e = mshrs_.first_live(); e != nullptr;
         e = mshrs_.next_live(*e)) {
        const search_state& state = state_of(*e);
        h.mix_unordered(e->block_addr + (state.active ? 1 : 0) +
                        (state.hit ? 2 : 0) + (state.marked ? 4 : 0) +
                        state.gather_at * 8);
        if (state.downstream_txn != 0)
            h.mix_unordered(state.downstream_txn * 0x9e3779b97f4a7c15ULL +
                            e->block_addr);
    }
    return h.value();
}

void lnuca_cache::process_downstream_responses(cycle_t now)
{
    while (auto response = refills_.pop_ready(now)) {
        // Downstream reads are issued block-aligned, so the response's addr
        // names the block; the per-slot txn id validates the match (the old
        // txn->block hash map, without the per-miss node churn).
        mem::mshr_entry* entry = mshrs_.find(response->addr);
        if (entry == nullptr ||
            state_of(*entry).downstream_txn != response->id) {
            counters_.inc(h_untracked_response_);
            continue;
        }
        const bool merged_dirty = state_of(*entry).write_merged;
        const auto released = mshrs_.release(response->addr);
        respond_to_targets(now, released.targets, released.target_count,
                           response->served_by, 0,
                           response->dirty || merged_dirty);
        counters_.inc(h_fills_from_next_level_);
    }
}

void lnuca_cache::process_root_arrivals(cycle_t now)
{
    for (auto& fifo : root_arrivals_) {
        auto msg = fifo.pop();
        if (!msg)
            continue;
        transport_actual_ += now - msg->hit_cycle;
        transport_min_ += msg->min_hops;
        counters_.inc(h_blocks_delivered_);

        mem::mshr_entry* entry = mshrs_.find(msg->block);
        if (entry == nullptr) {
            counters_.inc(h_untracked_arrival_);
            continue;
        }
        const bool merged_dirty = state_of(*entry).write_merged;
        const auto released = mshrs_.release(msg->block);
        respond_to_targets(now, released.targets, released.target_count,
                           mem::service_level::lnuca_tile, msg->level,
                           msg->dirty || merged_dirty);
    }
}

void lnuca_cache::inject_searches(cycle_t now)
{
    if (inject_queue_.empty())
        return;
    const search_msg msg = inject_queue_.take_front();

    mem::mshr_entry* entry = mshrs_.find(msg.block);
    if (entry == nullptr) {
        // The miss was satisfied while the search waited (cannot happen by
        // construction; counted defensively).
        counters_.inc(h_orphan_search_);
        return;
    }
    search_state& state = state_of(*entry);
    state.active = true;
    state.hit = false;
    state.marked = false;
    state.gather_at = now + geo_.rings() + 1;

    for (const tile_index child : geo_.root_search_children()) {
        tiles_[child].ma_next = msg;
        counters_.inc(h_search_broadcast_hops_);
    }
    counters_.inc(h_searches_injected_);
}

std::size_t lnuca_cache::pick_output(std::size_t available)
{
    if (available <= 1)
        return 0;
    return config_.random_routing ? std::size_t(rng_.below(available)) : 0;
}

bool lnuca_cache::any_transport_output_free(tile_index i,
                                            link_mask used_outputs) const
{
    for (std::size_t k = 0; k < d_out_[i].size(); ++k) {
        if (used_outputs & (link_mask(1) << k))
            continue;
        const link& l = d_out_[i][k];
        const bool on = l.target == root_index
                            ? root_arrivals_[l.slot].on()
                            : tiles_[l.target].d_in[l.slot].on();
        if (on)
            return true;
    }
    return false;
}

bool lnuca_cache::push_transport(cycle_t, tile_index i, const transport_msg& msg,
                                 link_mask& used_outputs)
{
    std::array<std::uint32_t, max_links> candidates;
    std::size_t n = 0;
    for (std::size_t k = 0; k < d_out_[i].size(); ++k) {
        if (used_outputs & (link_mask(1) << k))
            continue;
        const link& l = d_out_[i][k];
        const bool on = l.target == root_index
                            ? root_arrivals_[l.slot].on()
                            : tiles_[l.target].d_in[l.slot].on();
        if (on)
            candidates[n++] = std::uint32_t(k);
    }
    if (n == 0)
        return false;
    const std::size_t k = candidates[pick_output(n)];
    const link& l = d_out_[i][k];
    if (l.target == root_index)
        root_arrivals_[l.slot].push(msg);
    else
        tiles_[l.target].d_in[l.slot].push(msg);
    used_outputs |= link_mask(1) << k;
    counters_.inc(h_transport_hops_);
    return true;
}

void lnuca_cache::evaluate_tile(cycle_t now, tile_index i)
{
    tile& t = tiles_[i];
    link_mask used_outputs = 0;
    const bool had_search = t.ma.has_value();

    // --- Search operation: cache access + one-hop routing, one cycle ----
    if (had_search) {
        const search_msg msg = *t.ma;
        t.ma.reset();
        bool stop_propagation = false;
        mem::mshr_entry* search_entry = mshrs_.find(msg.block);
        const bool state_known = search_entry != nullptr;
        auto state = [&]() -> search_state& { return state_of(*search_entry); };

        if (!msg.marked && state_known) {
            counters_.inc(h_tile_tag_lookups_);
            const unsigned level = geo_.level_of(geo_.coord_of(i));

            // U-buffer comparators catch blocks in replacement transit.
            bool u_hit = false;
            for (auto& fifo : t.u_in) {
                if (msg.is_write) {
                    bool found = false;
                    fifo.for_each([&](replace_msg& r) {
                        if (r.block == msg.block) {
                            r.dirty = true;
                            found = true;
                        }
                    });
                    if (found) {
                        u_hit = true;
                        state().hit = true;
                        counters_.inc(h_store_hits_in_transit_);
                    }
                } else if (fifo.find([&](const replace_msg& r) {
                               return r.block == msg.block;
                           }) != nullptr) {
                    // Extract only if the block can start transport now.
                    if (any_transport_output_free(i, used_outputs)) {
                        auto taken = fifo.extract([&](const replace_msg& r) {
                            return r.block == msg.block;
                        });
                        transport_msg out;
                        out.block = taken->block;
                        out.dirty = taken->dirty;
                        out.level = std::uint8_t(level);
                        out.hit_cycle = now;
                        out.min_hops = geo_.transport_distance(geo_.coord_of(i));
                        push_transport(now, i, out, used_outputs);
                        state().hit = true;
                        counters_.inc(h_ubuffer_hits_);
                        level_read_hits_[level]++;
                        u_hit = true;
                    } else {
                        state().marked = true;
                        counters_.inc(h_transport_contention_);
                        // Re-emit marked so the miss line sees the restart.
                        search_msg marked = msg;
                        marked.marked = true;
                        for (const tile_index child : geo_.search_children(i)) {
                            tiles_[child].ma_next = marked;
                            counters_.inc(h_search_broadcast_hops_);
                        }
                        u_hit = true;
                    }
                }
                if (u_hit)
                    break;
            }

            if (u_hit) {
                stop_propagation = true;
            } else if (t.cache.probe(msg.block)) {
                if (msg.is_write) {
                    t.cache.lookup(msg.block); // refresh recency
                    t.cache.set_dirty(msg.block, true);
                    state().hit = true;
                    counters_.inc(h_store_hits_in_place_);
                    stop_propagation = true;
                } else if (any_transport_output_free(i, used_outputs)) {
                    const auto line = t.cache.extract(msg.block);
                    transport_msg out;
                    out.block = msg.block;
                    out.dirty = line->dirty;
                    out.level = std::uint8_t(level);
                    out.hit_cycle = now;
                    out.min_hops = geo_.transport_distance(geo_.coord_of(i));
                    push_transport(now, i, out, used_outputs);
                    state().hit = true;
                    counters_.inc(h_tile_hits_);
                    counters_.inc(h_tile_data_reads_);
                    level_read_hits_[level]++;
                    stop_propagation = true;
                } else {
                    state().marked = true;
                    counters_.inc(h_transport_contention_);
                    search_msg marked = msg;
                    marked.marked = true;
                    for (const tile_index child : geo_.search_children(i)) {
                        tiles_[child].ma_next = marked;
                        counters_.inc(h_search_broadcast_hops_);
                    }
                    stop_propagation = true; // marked copy already forwarded
                }
            }
        }

        if (!stop_propagation) {
            for (const tile_index child : geo_.search_children(i)) {
                tiles_[child].ma_next = msg;
                counters_.inc(h_search_broadcast_hops_);
            }
        }
    }

    // --- Transport operation: forward buffered blocks towards the root --
    const std::size_t d_links = t.d_in.size();
    for (std::size_t n = 0; n < d_links; ++n) {
        auto& fifo = t.d_in[n];
        const transport_msg* head = fifo.front();
        if (head == nullptr)
            continue;
        if (push_transport(now, i, *head, used_outputs))
            fifo.pop();
        else
            counters_.inc(h_transport_blocked_);
    }

    // --- Replacement operation: only during search-idle cycles ----------
    if (!had_search)
        run_replacement(now, i);
}

void lnuca_cache::run_replacement(cycle_t now, tile_index i)
{
    (void)now;
    tile& t = tiles_[i];

    if (t.phase == tile::repl_phase::write_pending) {
        auto& fifo = t.u_in[t.pending_u];
        const replace_msg* head = fifo.front();
        if (head == nullptr || head->block != t.pending_block) {
            // The search operation extracted the in-transit block.
            t.phase = tile::repl_phase::idle;
            t.pending_u = 0;
            t.pending_block = no_addr;
            return;
        }
        const replace_msg msg = *fifo.pop();
        if (auto displaced = t.cache.install(msg.block, msg.dirty)) {
            // A way was freed in phase one; this indicates a logic error.
            LNUCA_ERROR("tile install displaced a line unexpectedly");
            counters_.inc(h_install_conflicts_);
            exit_queue_.push_back(replace_msg{displaced->block_addr,
                                              displaced->dirty});
        }
        counters_.inc(h_tile_data_writes_);
        t.phase = tile::repl_phase::idle;
        t.pending_u = 0;
        t.pending_block = no_addr;
        return;
    }

    // Phase one: pick an incoming victim, make room for it if needed.
    const std::size_t links = t.u_in.size();
    const replace_msg* head = nullptr;
    std::size_t chosen = 0;
    for (std::size_t n = 0; n < links; ++n) {
        const std::size_t k = (t.repl_rotate + n) % links;
        if ((head = t.u_in[k].front()) != nullptr) {
            chosen = k;
            break;
        }
    }
    if (head == nullptr)
        return;
    t.repl_rotate = (chosen + 1) % std::max<std::size_t>(links, 1);

    const bool room = t.cache.set_has_free_way(head->block) ||
                      t.cache.probe(head->block).has_value();
    if (!room) {
        // Choose an On output U channel (or the exit path on corner tiles)
        // and read the victim out; the incoming block lands next idle cycle.
        std::array<std::uint32_t, max_links> candidates;
        std::size_t n_candidates = 0;
        for (std::size_t k = 0; k < u_out_[i].size(); ++k) {
            const link& l = u_out_[i][k];
            if (tiles_[l.target].u_in[l.slot].on())
                candidates[n_candidates++] = std::uint32_t(k);
        }
        const bool exit_ok = geo_.is_exit_tile(i) &&
                             exit_queue_.size() < config_.exit_queue_depth;
        if (n_candidates == 0 && !exit_ok) {
            counters_.inc(h_replacement_blocked_);
            return;
        }
        const auto victim = t.cache.evict_victim(head->block);
        counters_.inc(h_tile_data_reads_);
        if (n_candidates != 0) {
            const std::size_t k = candidates[pick_output(n_candidates)];
            const link& l = u_out_[i][k];
            tiles_[l.target].u_in[l.slot].push(
                replace_msg{victim.block_addr, victim.dirty});
        } else {
            exit_queue_.push_back(replace_msg{victim.block_addr, victim.dirty});
        }
        counters_.inc(h_replacement_hops_);
    }

    t.phase = tile::repl_phase::write_pending;
    t.pending_u = chosen;
    t.pending_block = head->block;
}

void lnuca_cache::inject_evictions(cycle_t)
{
    if (evict_queue_.empty())
        return;
    std::array<std::uint32_t, max_links> candidates;
    std::size_t n_candidates = 0;
    for (std::size_t k = 0; k < root_u_out_.size(); ++k) {
        const link& l = root_u_out_[k];
        if (tiles_[l.target].u_in[l.slot].on())
            candidates[n_candidates++] = std::uint32_t(k);
    }
    if (n_candidates == 0) {
        counters_.inc(h_eviction_inject_blocked_);
        return;
    }
    const replace_msg msg = evict_queue_.take_front();
    const std::size_t k = candidates[pick_output(n_candidates)];
    const link& l = root_u_out_[k];
    tiles_[l.target].u_in[l.slot].push(msg);
    counters_.inc(h_replacement_hops_);
    counters_.inc(h_evictions_injected_);
}

void lnuca_cache::evaluate_global_misses(cycle_t now)
{
    // Live MSHR entries iterate in allocation order; an entry releasing
    // itself is safe because the successor is fetched first (the slab keeps
    // links intact for the released node's neighbours).
    for (mem::mshr_entry* e = mshrs_.first_live(); e != nullptr;) {
        mem::mshr_entry* next = mshrs_.next_live(*e);
        search_state& state = state_of(*e);
        const addr_t block = e->block_addr;
        if (!state.active || state.gather_at != now) {
            e = next;
            continue;
        }
        state.active = false;
        counters_.inc(h_miss_line_gathers_);

        if (state.hit) {
            // Reads: the block is in transport; the MSHR is released when it
            // reaches the r-tile. Pure stores landed in place: finish here.
            if (state.is_write)
                mshrs_.release(block);
            e = next;
            continue;
        }

        if (state.marked) {
            // Transport contention: the miss line bounces the request back
            // to the r-tile, which restarts the search.
            search_msg msg;
            msg.block = block;
            msg.is_write = state.is_write;
            inject_queue_.push_back(msg);
            counters_.inc(h_search_restarts_);
            e = next;
            continue;
        }

        // Global miss. The block may be sitting in the exit path.
        bool found_in_exit = false;
        for (std::size_t qi = 0; qi < exit_queue_.size(); ++qi) {
            replace_msg& exiting = exit_queue_[qi];
            if (exiting.block != block)
                continue;
            found_in_exit = true;
            const bool dirty = exiting.dirty || state.write_merged;
            if (state.is_write) {
                exiting.dirty = true;
                mshrs_.release(block);
                break;
            }
            exit_queue_.erase_at(qi);
            const auto released = mshrs_.release(block);
            if (released)
                respond_to_targets(now, released.targets,
                                   released.target_count,
                                   mem::service_level::lnuca_tile,
                                   std::uint8_t(config_.levels), dirty);
            counters_.inc(h_exit_snoop_hits_);
            break;
        }
        if (found_in_exit) {
            e = next;
            continue;
        }

        // Bounded next-level ring: at the configured depth the miss line
        // re-arms the gather for the next cycle instead of letting the ring
        // regrow (zero-allocation hot path). next_event() already bounds on
        // active gather_at, so idle-skip stays honest across the stall.
        if (downstream_queue_.size() >= config_.downstream_queue_depth) {
            state.active = true;
            state.gather_at = now + 1;
            counters_.inc(h_downstream_backpressure_);
            e = next;
            continue;
        }

        counters_.inc(h_global_misses_);
        // A global miss for a block actually present in the fabric would be
        // a search correctness bug; exclusion makes this impossible, so it
        // is counted defensively rather than tolerated silently.
        if (copies_of(block) != 0)
            counters_.inc(h_false_global_misses_);
        if (state.is_write) {
            // Fire-and-forget store miss leaves towards the next level.
            mem::mem_request write;
            write.id = ids_.next();
            write.addr = block;
            write.size = config_.tile.block_bytes;
            write.kind = mem::access_kind::write;
            write.created_at = now;
            write.needs_response = false;
            downstream_queue_.push_back(write);
            note_downstream_high_water();
            mshrs_.release(block);
            counters_.inc(h_write_misses_out_);
            e = next;
            continue;
        }

        mem::mem_request read;
        read.id = ids_.next();
        read.addr = block;
        read.size = config_.tile.block_bytes;
        read.kind = mem::access_kind::read;
        read.created_at = now;
        downstream_queue_.push_back(read);
        note_downstream_high_water();
        state.downstream_txn = read.id;
        mshrs_.mark_issued(*e);
        e = next;
    }
}

void lnuca_cache::note_downstream_high_water()
{
    if (downstream_queue_.size() > downstream_queue_high_water_) {
        counters_.inc(h_downstream_queue_high_water_,
                      downstream_queue_.size() - downstream_queue_high_water_);
        downstream_queue_high_water_ = downstream_queue_.size();
    }
}

void lnuca_cache::drain_downstream_queues(cycle_t now)
{
    if (downstream_ == nullptr)
        return;

    // Global misses and store misses, in order.
    if (!downstream_queue_.empty()) {
        mem::mem_request request = downstream_queue_.front();
        request.created_at = now;
        if (downstream_->can_accept(request)) {
            downstream_->accept(request);
            downstream_queue_.pop_front();
        }
    }

    // Corner-tile victims: dirty blocks write back, clean ones are already
    // present in the (inclusive) next level and are dropped.
    if (!exit_queue_.empty()) {
        const replace_msg victim = exit_queue_.front();
        if (!victim.dirty) {
            exit_queue_.pop_front();
            counters_.inc(h_clean_exits_dropped_);
        } else {
            mem::mem_request writeback;
            writeback.id = ids_.next();
            writeback.addr = victim.block;
            writeback.size = config_.tile.block_bytes;
            writeback.kind = mem::access_kind::writeback;
            writeback.created_at = now;
            writeback.needs_response = false;
            writeback.dirty = true;
            if (downstream_->can_accept(writeback)) {
                downstream_->accept(writeback);
                exit_queue_.pop_front();
                counters_.inc(h_dirty_exits_written_back_);
            }
        }
    }
}

void lnuca_cache::commit_cycle()
{
    for (auto& t : tiles_)
        t.commit();
    for (auto& fifo : root_arrivals_)
        fifo.commit();
}

void lnuca_cache::respond_to_targets(cycle_t now,
                                     const mem::mshr_target* targets,
                                     std::uint32_t count,
                                     mem::service_level origin,
                                     std::uint8_t level, bool dirty)
{
    if (upstream_ == nullptr)
        return;
    for (std::uint32_t i = 0; i < count; ++i) {
        const mem::mshr_target& target = targets[i];
        mem::mem_response response;
        response.id = target.id;
        response.addr = target.addr;
        response.ready_at = now;
        response.served_by = origin;
        response.fabric_level = level;
        response.dirty = dirty || target.kind == mem::access_kind::write;
        upstream_->respond(response);
    }
}

std::uint64_t lnuca_cache::read_hits_in_level(unsigned level) const
{
    return level < level_read_hits_.size() ? level_read_hits_[level] : 0;
}

std::uint64_t lnuca_cache::tile_capacity_bytes() const
{
    return std::uint64_t(geo_.tile_count()) * config_.tile.size_bytes;
}

mem::warm_result lnuca_cache::warm_access(const mem::warm_request& request)
{
    // Functional twin of the search/replacement/store paths (see the
    // warm_access() contract in src/mem/request.h). Content exclusion is
    // preserved: a read hit extracts the block (it moves into the r-tile,
    // whose warm path installs it), evictions enter via the replacement
    // network stand-in warm_install().
    const addr_t block = request.addr & ~addr_t(config_.tile.block_bytes - 1);
    if (warm_index_stale_)
        warm_index_rebuild();
    switch (request.kind) {
    case mem::access_kind::read: {
        const std::size_t slot = warm_find(block);
        if (slot != ~std::size_t{0}) {
            const tile_index holder = warm_slots_[slot].second;
            const auto line = tiles_[holder].cache.extract(block);
            warm_index_erase(block);
            return {line && line->dirty, false};
        }
        // Global miss: fetch from the next level; the fill travels straight
        // to the r-tile (the fabric only fills through evictions).
        if (downstream_ != nullptr)
            return {downstream_
                        ->warm_access({block, mem::access_kind::read, false})
                        .dirty,
                    false};
        return {};
    }
    case mem::access_kind::write: {
        const std::size_t slot = warm_find(block);
        if (slot != ~std::size_t{0}) {
            mem::tag_array& tags = tiles_[warm_slots_[slot].second].cache;
            tags.lookup(block); // store hit in place: recency + dirty
            tags.set_dirty(block, true);
            return {};
        }
        // Store miss: fire-and-forget towards the next level.
        if (downstream_ != nullptr)
            downstream_->warm_access({block, mem::access_kind::write, false});
        return {};
    }
    case mem::access_kind::writeback:
        warm_install(block, request.dirty);
        return {};
    }
    return {};
}

void lnuca_cache::warm_install(addr_t block, bool dirty)
{
    // An r-tile victim entering the replacement network. Exclusion check
    // first: a copy already in a tile absorbs the eviction in place.
    const std::size_t slot = warm_find(block);
    if (slot != ~std::size_t{0}) {
        mem::tag_array& tags = tiles_[warm_slots_[slot].second].cache;
        tags.lookup(block);
        if (dirty)
            tags.set_dirty(block, true);
        return;
    }
    // Free way closest-first, like the timing-path domino settles.
    for (unsigned level = 2; level <= config_.levels; ++level) {
        for (const tile_index i : tiles_by_level_[level]) {
            if (tiles_[i].cache.set_has_free_way(block)) {
                tiles_[i].cache.install(block, dirty);
                warm_index_insert(block, i);
                return;
            }
        }
    }
    // All candidate sets full: domino one victim per level outwards,
    // rotating the tile choice to mirror distributed routing's spread.
    addr_t moving = block;
    bool moving_dirty = dirty;
    for (unsigned level = 2; level <= config_.levels; ++level) {
        const auto& tiles = tiles_by_level_[level];
        const tile_index i = tiles[warm_rotate_[level]++ % tiles.size()];
        const auto victim = tiles_[i].cache.install(moving, moving_dirty);
        warm_index_insert(moving, i);
        if (!victim)
            return;
        warm_index_erase(victim->block_addr);
        moving = victim->block_addr;
        moving_dirty = victim->dirty;
    }
    // Victim leaves through the exit tiles; clean exits are dropped.
    if (moving_dirty && downstream_ != nullptr)
        downstream_->warm_access({moving, mem::access_kind::writeback, true});
}

bool lnuca_cache::prewarm(addr_t addr)
{
    const addr_t block = addr & ~addr_t(config_.tile.block_bytes - 1);
    for (unsigned level = 2; level <= config_.levels; ++level) {
        for (const tile_index i : geo_.tiles_in_level(level)) {
            tile& t = tiles_[i];
            if (t.cache.probe(block))
                return true; // already present; exclusion holds
            if (t.cache.set_has_free_way(block)) {
                t.cache.install(block, false);
                return true;
            }
        }
    }
    return false;
}

unsigned lnuca_cache::copies_of(addr_t block) const
{
    unsigned copies = 0;
    for (const auto& t : tiles_) {
        if (t.cache.probe(block))
            ++copies;
        if (t.u_buffer_find(block) != nullptr)
            ++copies;
        for (const auto& fifo : t.d_in)
            if (fifo.find([&](const transport_msg& m) { return m.block == block; }))
                ++copies;
    }
    for (const auto& fifo : root_arrivals_)
        if (fifo.find([&](const transport_msg& m) { return m.block == block; }))
            ++copies;
    for (const auto& m : evict_queue_)
        copies += m.block == block;
    for (const auto& m : exit_queue_)
        copies += m.block == block;
    return copies;
}

bool lnuca_cache::quiescent() const
{
    // An empty MSHR slab implies no active searches and no outstanding
    // downstream reads (both live in the per-slot state).
    if (!inject_queue_.empty() || !evict_queue_.empty() || !exit_queue_.empty() ||
        !downstream_queue_.empty() || !refills_.empty() || !mshrs_.empty())
        return false;
    for (const auto& fifo : root_arrivals_)
        if (!fifo.empty())
            return false;
    for (const auto& t : tiles_) {
        if (t.ma.has_value() || t.ma_next.has_value() ||
            t.phase != tile::repl_phase::idle)
            return false;
        for (const auto& fifo : t.d_in)
            if (!fifo.empty())
                return false;
        for (const auto& fifo : t.u_in)
            if (!fifo.empty())
                return false;
    }
    return true;
}

void lnuca_cache::save_state(ckpt::writer& w) const
{
    if (!quiescent())
        throw ckpt::ckpt_error(
            "lnuca_cache: checkpoint requested while searches are in flight");
    ckpt::saver ar(w);
    const_cast<lnuca_cache*>(this)->serialize(ar);
}

void lnuca_cache::load_state(ckpt::reader& r)
{
    ckpt::loader ar(r);
    serialize(ar);
}

} // namespace lnuca::fabric
