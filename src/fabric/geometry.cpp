#include "src/fabric/geometry.h"

#include <algorithm>
#include <cstdlib>
#include <deque>
#include <stdexcept>

namespace lnuca::fabric {

namespace {

int sign(int v) { return v > 0 ? 1 : v < 0 ? -1 : 0; }

unsigned cheb(tile_coord c) { return unsigned(std::max(std::abs(c.x), c.y)); }

/// 8-neighbourhood offsets (local wiring allows diagonals between abutting
/// tiles; the replacement topology in Fig. 2(c) uses them).
constexpr int k_neigh[8][2] = {{1, 0}, {-1, 0}, {0, 1},  {0, -1},
                               {1, 1}, {-1, 1}, {1, -1}, {-1, -1}};

} // namespace

geometry::geometry(unsigned levels) : levels_(levels)
{
    if (levels < 2)
        throw std::invalid_argument("an L-NUCA needs at least 2 levels");
    const int d = int(rings());
    for (int ring = 1; ring <= d; ++ring)
        for (int y = 0; y <= ring; ++y)
            for (int x = -ring; x <= ring; ++x)
                if (int(cheb({x, y})) == ring)
                    tiles_.push_back({x, y});

    build_search();
    build_transport();
    build_replacement();
}

tile_index geometry::index_of(tile_coord c) const
{
    for (tile_index i = 0; i < tiles_.size(); ++i)
        if (tiles_[i] == c)
            return i;
    throw std::out_of_range("coordinate is not a tile");
}

bool geometry::contains(tile_coord c) const
{
    if (c == tile_coord{0, 0})
        return false; // the r-tile is not a fabric tile
    return c.y >= 0 && cheb(c) >= 1 && cheb(c) <= rings();
}

unsigned geometry::ring_of(tile_coord c) const
{
    return cheb(c);
}

std::vector<tile_index> geometry::tiles_in_level(unsigned level) const
{
    std::vector<tile_index> out;
    for (tile_index i = 0; i < tiles_.size(); ++i)
        if (level_of(tiles_[i]) == level)
            out.push_back(i);
    return out;
}

unsigned geometry::transport_distance(tile_coord c) const
{
    return unsigned(std::abs(c.x) + c.y);
}

unsigned geometry::latency_of(tile_coord c) const
{
    return ring_of(c) + 1 + transport_distance(c);
}

void geometry::build_search()
{
    search_children_.assign(tiles_.size(), {});
    for (tile_index i = 0; i < tiles_.size(); ++i) {
        const tile_coord c = tiles_[i];
        const unsigned ring = ring_of(c);
        if (ring == 1) {
            root_search_children_.push_back(i);
            continue;
        }
        // Parent = coordinate clamped onto the previous ring.
        const int r = int(ring) - 1;
        const tile_coord parent{sign(c.x) * std::min(std::abs(c.x), r),
                                std::min(c.y, r)};
        search_children_[index_of(parent)].push_back(i);
    }
}

void geometry::build_transport()
{
    transport_outputs_.assign(tiles_.size(), {});
    transport_inputs_.assign(tiles_.size(), {});
    for (tile_index i = 0; i < tiles_.size(); ++i) {
        const tile_coord c = tiles_[i];
        auto add_output = [&](tile_coord t) {
            if (t == tile_coord{0, 0}) {
                transport_outputs_[i].push_back(root_index);
                root_transport_inputs_.push_back(i);
            } else {
                const tile_index ti = index_of(t);
                transport_outputs_[i].push_back(ti);
                transport_inputs_[ti].push_back(i);
            }
        };
        if (c.x != 0)
            add_output({c.x - sign(c.x), c.y});
        if (c.y != 0)
            add_output({c.x, c.y - 1});
    }
}

void geometry::build_replacement()
{
    replacement_outputs_.assign(tiles_.size(), {});
    replacement_inputs_.assign(tiles_.size(), {});

    // Exit tiles: top corners of the outer ring.
    const int d = int(rings());
    exit_tiles_.push_back(index_of({-d, d}));
    exit_tiles_.push_back(index_of({d, d}));

    // The r-tile (latency 1) feeds all latency-3 tiles adjacent to it: the
    // stated exception to the latency+1 rule.
    for (const auto& [dx, dy] : k_neigh) {
        const tile_coord n{dx, dy};
        if (contains(n) && latency_of(n) == 3)
            root_replacement_outputs_.push_back(index_of(n));
    }

    // Candidate edges: 8-neighbours whose latency is exactly one more.
    std::vector<std::vector<tile_index>> candidates(tiles_.size());
    for (tile_index i = 0; i < tiles_.size(); ++i) {
        const tile_coord c = tiles_[i];
        for (const auto& [dx, dy] : k_neigh) {
            const tile_coord n{c.x + dx, c.y + dy};
            if (contains(n) && latency_of(n) == latency_of(c) + 1)
                candidates[i].push_back(index_of(n));
        }
        std::sort(candidates[i].begin(), candidates[i].end());
    }

    std::vector<unsigned> in_degree(tiles_.size(), 0);
    for (const tile_index t : root_replacement_outputs_)
        ++in_degree[t];

    // Pass 1: every non-exit tile keeps one out-edge, aimed at the least-fed
    // candidate so in-degrees stay minimal.
    for (tile_index i = 0; i < tiles_.size(); ++i) {
        if (is_exit_tile(i))
            continue;
        if (candidates[i].empty())
            throw std::logic_error("non-exit tile with no replacement successor");
        tile_index best = candidates[i].front();
        for (const tile_index t : candidates[i])
            if (in_degree[t] < in_degree[best])
                best = t;
        replacement_outputs_[i].push_back(best);
        replacement_inputs_[best].push_back(i);
        ++in_degree[best];
    }

    // Pass 2: feed any tile nothing evicts into yet (keeps the DAG a single
    // temperature-ordered flow from the r-tile to the exits).
    for (tile_index t = 0; t < tiles_.size(); ++t) {
        if (in_degree[t] != 0)
            continue;
        bool fed = false;
        for (tile_index s = 0; s < tiles_.size() && !fed; ++s) {
            for (const tile_index c : candidates[s]) {
                if (c == t) {
                    replacement_outputs_[s].push_back(t);
                    replacement_inputs_[t].push_back(s);
                    ++in_degree[t];
                    fed = true;
                    break;
                }
            }
        }
        if (!fed)
            throw std::logic_error("tile unreachable through replacement DAG");
    }
}

bool geometry::is_exit_tile(tile_index i) const
{
    return std::find(exit_tiles_.begin(), exit_tiles_.end(), i) !=
           exit_tiles_.end();
}

unsigned geometry::search_link_count() const
{
    unsigned links = unsigned(root_search_children_.size());
    for (const auto& kids : search_children_)
        links += unsigned(kids.size());
    return links;
}

unsigned geometry::transport_link_count() const
{
    unsigned links = 0;
    for (const auto& outs : transport_outputs_)
        links += unsigned(outs.size());
    return links;
}

unsigned geometry::replacement_link_count() const
{
    unsigned links = unsigned(root_replacement_outputs_.size());
    for (const auto& outs : replacement_outputs_)
        links += unsigned(outs.size());
    return links;
}

unsigned geometry::replacement_exit_distance() const
{
    // BFS from the r-tile through the replacement DAG to the first exit.
    std::vector<int> dist(tiles_.size(), -1);
    std::deque<tile_index> queue;
    for (const tile_index t : root_replacement_outputs_) {
        dist[t] = 1;
        queue.push_back(t);
    }
    while (!queue.empty()) {
        const tile_index i = queue.front();
        queue.pop_front();
        if (is_exit_tile(i))
            return unsigned(dist[i]);
        for (const tile_index n : replacement_outputs_[i]) {
            if (dist[n] < 0) {
                dist[n] = dist[i] + 1;
                queue.push_back(n);
            }
        }
    }
    throw std::logic_error("no path from r-tile to an exit tile");
}

unsigned geometry::mesh_equivalent_link_count() const
{
    // Bidirectional N/S/E/W mesh over the same floorplan (r-tile included).
    unsigned pairs = 0;
    auto node = [&](tile_coord c) {
        return c == tile_coord{0, 0} || contains(c);
    };
    const int d = int(rings());
    for (int y = 0; y <= d; ++y) {
        for (int x = -d; x <= d; ++x) {
            const tile_coord c{x, y};
            if (!node(c))
                continue;
            if (node({x + 1, y}))
                ++pairs;
            if (node({x, y + 1}))
                ++pairs;
        }
    }
    return pairs * 2; // two unidirectional links per adjacent pair
}

unsigned geometry::mesh_equivalent_max_distance() const
{
    unsigned max_dist = 0;
    for (const tile_coord c : tiles_)
        max_dist = std::max(max_dist, transport_distance(c));
    return max_dist;
}

} // namespace lnuca::fabric
