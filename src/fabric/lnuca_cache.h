// The L-NUCA fabric: the paper's contribution.
//
// Sits between the r-tile (a conventional L1 whose misses and evictions it
// absorbs) and the next cache level (L3 or a D-NUCA), exactly like the L2
// it replaces:
//
//   L1 miss        -> broadcast search, one level per cycle; tile hits
//                     extract the block (content exclusion) and transport
//                     it to the r-tile; a global miss is detected one cycle
//                     after the outermost level and forwarded downstream.
//   L1 eviction    -> injected into the replacement network; victims domino
//                     from tile to tile in latency order; only the two top
//                     corner tiles spill to the next level.
//   store miss     -> fire-and-forget: updates a tile in place on a hit or
//                     is forwarded downstream on a global miss ("replaced
//                     blocks + write misses to L3", Fig. 2(c)).
//
// Every tile performs its cache access plus one-hop routing in one cycle;
// transport and replacement use two-entry On/Off link buffers and random
// distributed routing over output links that are all valid by construction.
//
// Hot-path storage contract: per-search state lives in a slab slot shared
// with the MSHR entry (no hash-map node churn), link-arbitration scratch is
// a bitmask plus a stack array, and every queue is a pre-sized ring — an
// executed cycle performs no heap allocation in steady state.
#pragma once

#include "src/common/ring_queue.h"
#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/fabric/geometry.h"
#include "src/fabric/tile.h"
#include "src/mem/mshr.h"
#include "src/mem/request.h"
#include "src/sim/ticked.h"
#include "src/sim/timed_queue.h"

#include <vector>

namespace lnuca::fabric {

struct fabric_config {
    unsigned levels = 3; ///< including the r-tile (LN3)
    tile_config tile;
    std::uint32_t mshr_entries = 16;
    std::uint32_t mshr_secondary = 4;
    std::uint32_t inject_queue_depth = 8;
    std::uint32_t evict_queue_depth = 8;
    std::uint32_t exit_queue_depth = 16;
    /// Bound on the next-level request ring (global read misses + fire-and-
    /// forget store misses). Store-streaming lanes can outpace the 1/cycle
    /// drain; at the bound the miss line re-arms the gather for the next
    /// cycle instead of letting the ring regrow (allocation on the hot
    /// path). High-water and backpressure events are surfaced as counters.
    std::uint32_t downstream_queue_depth = 256;
    bool random_routing = true; ///< false: always pick the first output link
                                ///< (dimension-order-like, for the ablation)
    std::uint64_t seed = 0xfab;
};

class lnuca_cache final : public sim::ticked, public mem::mem_port, public mem::mem_client {
public:
    lnuca_cache(const fabric_config& config, mem::txn_id_source& ids);

    void set_upstream(mem::mem_client* client) { upstream_ = client; }
    void set_downstream(mem::mem_port* port) { downstream_ = port; }

    // mem_port (r-tile side)
    bool can_accept(const mem::mem_request& request) const override;
    void accept(const mem::mem_request& request) override;
    mem::warm_result warm_access(const mem::warm_request& request) override;

    // mem_client (next-level side)
    void respond(const mem::mem_response& response) override;

    // ticked
    void tick(cycle_t now) override;
    cycle_t next_event(cycle_t now) const override;
    std::uint64_t state_digest() const override;

    const fabric_config& config() const { return config_; }
    const geometry& geo() const { return geo_; }
    const counter_set& counters() const { return counters_; }
    bool quiescent() const;

    /// Read hits serviced by L-NUCA level `level` (2-based, Table III).
    std::uint64_t read_hits_in_level(unsigned level) const;

    /// Transport latency accounting (Table III right): sums of actual and
    /// contention-free cycles over all delivered blocks.
    std::uint64_t transport_actual_cycles() const { return transport_actual_; }
    std::uint64_t transport_min_cycles() const { return transport_min_; }

    /// Total data storage in tiles (for reports): tiles * tile size.
    std::uint64_t tile_capacity_bytes() const;

    /// Tile introspection for tests/examples.
    const tile& tile_at(tile_index i) const { return tiles_[i]; }
    tile& tile_at(tile_index i) { return tiles_[i]; }

    /// True iff `block` currently lives in exactly `copies` places across
    /// all tiles and in-flight buffers (exclusion checker for tests).
    unsigned copies_of(addr_t block) const;

    /// Functionally install a block before measurement (no timing): tiles
    /// are tried closest-first, so calling with hottest blocks first yields
    /// the temporal-locality-ordered placement the fabric converges to.
    /// Returns false when every candidate set is full.
    bool prewarm(addr_t addr);

    /// Checkpoint hooks (quiescent-only; hier::system owns the section).
    void save_state(ckpt::writer& w) const override;
    void load_state(ckpt::reader& r) override;

    /// Persistent-at-quiescence state: tile tags/recency, stats, the
    /// routing RNG and the warm-path rotation pointers. Searches, link
    /// buffers and queues are empty by the quiesce contract; the warm
    /// block index is derivable and rebuilt lazily after load.
    template <class Ar> void serialize(Ar& ar)
    {
        for (tile& t : tiles_)
            t.serialize(ar);
        ar.counters(counters_);
        ar(rng_);
        ar(level_read_hits_);
        ar(transport_actual_);
        ar(transport_min_);
        std::uint64_t high_water = downstream_queue_high_water_;
        ar(high_water);
        downstream_queue_high_water_ = std::size_t(high_water);
        std::uint64_t rotate_count = warm_rotate_.size();
        ar(rotate_count);
        warm_rotate_.resize(std::size_t(rotate_count));
        for (std::size_t& r : warm_rotate_) {
            std::uint64_t v = r;
            ar(v);
            r = std::size_t(v);
        }
        // Stale on BOTH directions: tiles can hold transient duplicate
        // copies of a block at quiescence (exclusion is best-effort in the
        // detailed path), so the incrementally-maintained warm index and a
        // fresh rebuild may disagree about the holder. Rebuilding from the
        // (serialized, identical) tags on each side keeps a checkpointed
        // run and its restored twin bit-identical.
        warm_index_stale_ = true;
    }

private:
    struct link {
        tile_index target = 0; ///< root_index = the r-tile
        std::uint32_t slot = 0; ///< input fifo index at the target
    };

    /// Per-search bookkeeping. Lives in a slab slot parallel to the MSHR
    /// entry of the same block (see mshr_file::slot_of), so search state is
    /// allocated, found and recycled with the entry — no hash-map nodes.
    struct search_state {
        bool is_write = false;     ///< pure fire-and-forget store miss
        bool write_merged = false; ///< a store merged while in flight
        bool hit = false;
        bool marked = false;
        cycle_t gather_at = 0;
        bool active = false;
        /// txn id of the downstream read issued for this block's global
        /// miss (0 = none outstanding); responses are validated against it.
        txn_id_t downstream_txn = 0;
    };

    /// Output-link arbitration scratch: bitmask over a tile's output links
    /// (wiring degree is tiny — 2-4 links; 32 is a hard structural bound).
    using link_mask = std::uint32_t;
    static constexpr std::size_t max_links = 32;

    void process_downstream_responses(cycle_t now);
    void process_root_arrivals(cycle_t now);
    void inject_searches(cycle_t now);
    void evaluate_tile(cycle_t now, tile_index i);
    void run_replacement(cycle_t now, tile_index i);
    void inject_evictions(cycle_t now);
    void evaluate_global_misses(cycle_t now);
    void drain_downstream_queues(cycle_t now);
    void commit_cycle();
    bool push_transport(cycle_t now, tile_index i, const transport_msg& msg,
                        link_mask& used_outputs);
    bool any_transport_output_free(tile_index i, link_mask used_outputs) const;

    search_state& state_of(const mem::mshr_entry& entry)
    {
        return search_by_slot_[mshrs_.slot_of(entry)];
    }
    const search_state& state_of(const mem::mshr_entry& entry) const
    {
        return search_by_slot_[mshrs_.slot_of(entry)];
    }

    void respond_to_targets(cycle_t now, const mem::mshr_target* targets,
                            std::uint32_t count, mem::service_level origin,
                            std::uint8_t level, bool dirty);
    std::size_t pick_output(std::size_t available);
    void warm_install(addr_t block, bool dirty);
    void note_downstream_high_water();

    fabric_config config_;
    mem::txn_id_source& ids_;
    geometry geo_;
    std::vector<tile> tiles_;
    mem::mshr_file mshrs_;
    std::vector<search_state> search_by_slot_; ///< parallel to the MSHR slab
    counter_set counters_;
    counter_set::handle h_tile_tag_lookups_ = 0;
    counter_set::handle h_search_broadcast_hops_ = 0;
    counter_set::handle h_transport_hops_ = 0;
    counter_set::handle h_transport_blocked_ = 0;
    counter_set::handle h_tile_hits_ = 0;
    counter_set::handle h_tile_data_reads_ = 0;
    counter_set::handle h_tile_data_writes_ = 0;
    counter_set::handle h_replacement_hops_ = 0;
    counter_set::handle h_searches_requested_ = 0;
    counter_set::handle h_searches_injected_ = 0;
    counter_set::handle h_miss_line_gathers_ = 0;
    counter_set::handle h_global_misses_ = 0;
    counter_set::handle h_blocks_delivered_ = 0;
    counter_set::handle h_clean_exits_dropped_ = 0;
    counter_set::handle h_dirty_exits_written_back_ = 0;
    counter_set::handle h_eviction_inject_blocked_ = 0;
    counter_set::handle h_evictions_in_ = 0;
    counter_set::handle h_evictions_injected_ = 0;
    counter_set::handle h_exit_snoop_hits_ = 0;
    counter_set::handle h_false_global_misses_ = 0;
    counter_set::handle h_fills_from_next_level_ = 0;
    counter_set::handle h_install_conflicts_ = 0;
    counter_set::handle h_mshr_merge_ = 0;
    counter_set::handle h_orphan_search_ = 0;
    counter_set::handle h_read_hit_ = 0;
    counter_set::handle h_replacement_blocked_ = 0;
    counter_set::handle h_root_ubuffer_hit_ = 0;
    counter_set::handle h_search_restarts_ = 0;
    counter_set::handle h_store_hits_in_place_ = 0;
    counter_set::handle h_store_hits_in_transit_ = 0;
    counter_set::handle h_store_merged_ = 0;
    counter_set::handle h_transport_contention_ = 0;
    counter_set::handle h_ubuffer_hits_ = 0;
    counter_set::handle h_untracked_arrival_ = 0;
    counter_set::handle h_untracked_response_ = 0;
    counter_set::handle h_write_misses_out_ = 0;
    counter_set::handle h_downstream_backpressure_ = 0;
    counter_set::handle h_downstream_queue_high_water_ = 0;
    /// Peak downstream_queue_ occupancy (mirrored into the high-water
    /// counter via delta increments - counter_set is inc-only).
    std::size_t downstream_queue_high_water_ = 0;
    rng rng_;

    mem::mem_client* upstream_ = nullptr;
    mem::mem_port* downstream_ = nullptr;

    // Precomputed wiring: per-tile output links with receiver slot indices.
    std::vector<std::vector<link>> d_out_;
    std::vector<std::vector<link>> u_out_;
    std::vector<link> root_u_out_; ///< r-tile eviction targets
    std::vector<noc::sync_fifo<transport_msg>> root_arrivals_;

    // Request-side queues (pre-sized rings; see constructor).
    ring_queue<search_msg> inject_queue_;
    ring_queue<replace_msg> evict_queue_;          ///< r-tile victims entering
    ring_queue<replace_msg> exit_queue_;           ///< corner victims leaving
    ring_queue<mem::mem_request> downstream_queue_; ///< global misses / writes
    sim::timed_queue<mem::mem_response> refills_;

    std::vector<std::uint64_t> level_read_hits_; ///< indexed by L-NUCA level
    std::uint64_t transport_actual_ = 0;
    std::uint64_t transport_min_ = 0;

    // Warm-path state: per-level tile lists in deterministic closest-first
    // order and a rotation pointer spreading warm installs across a full
    // level (the functional stand-in for random distributed routing).
    std::vector<std::vector<tile_index>> tiles_by_level_; ///< index: level
    std::vector<std::size_t> warm_rotate_;

    // Warm-path block index: block -> holding tile (content exclusion
    // guarantees at most one copy). Open addressing with backward-shift
    // deletion, sized for every fabric line; makes a warm search O(1)
    // instead of probing every tile. The detailed path mutates tiles
    // without maintaining the index, so any tick marks it stale and the
    // next warm access rebuilds it from the tag arrays.
    std::size_t warm_find(addr_t block) const; ///< slot, or npos when absent
    void warm_index_insert(addr_t block, tile_index holder);
    void warm_index_erase(addr_t block);
    void warm_index_rebuild();

    std::vector<std::pair<addr_t, tile_index>> warm_slots_;
    std::size_t warm_mask_ = 0;
    bool warm_index_stale_ = true;
};

} // namespace lnuca::fabric
