// One L-NUCA tile: a small one-cycle cache plus the per-link latches and
// buffers of Fig. 3 - the Miss Address (MA) pipeline register, downstream
// (transport) buffers and upstream (replacement) buffers.
//
// Tiles hold state only; the fabric (lnuca_cache) drives the per-cycle
// search/transport/replacement operations because routing needs the global
// topology.
#pragma once

#include "src/common/stats.h"
#include "src/fabric/messages.h"
#include "src/mem/tag_array.h"
#include "src/noc/fifo.h"

#include <optional>
#include <vector>

namespace lnuca::fabric {

struct tile_config {
    std::uint64_t size_bytes = 8_KiB;
    std::uint32_t ways = 2;
    std::uint32_t block_bytes = 32;
    std::string policy = "lru";
    std::uint64_t seed = 0x5eed;
    std::uint32_t buffer_depth = 2; ///< per-link U/D buffer entries
};

class tile {
public:
    tile(const tile_config& config, unsigned transport_in_links,
         unsigned replacement_in_links)
        : cache({config.size_bytes, config.ways, config.block_bytes,
                 config.policy, config.seed}),
          d_in(transport_in_links, noc::sync_fifo<transport_msg>(config.buffer_depth)),
          u_in(replacement_in_links, noc::sync_fifo<replace_msg>(config.buffer_depth))
    {
    }

    /// Latch the staged MA register and commit all link buffers; called once
    /// per fabric cycle after every tile has been evaluated.
    void commit()
    {
        ma = ma_next;
        ma_next.reset();
        for (auto& fifo : d_in)
            fifo.commit();
        for (auto& fifo : u_in)
            fifo.commit();
    }

    /// Search for `block` among in-transit replacement blocks (the U-buffer
    /// address comparators of Fig. 3(a)).
    const replace_msg* u_buffer_find(addr_t block) const
    {
        for (const auto& fifo : u_in)
            if (const auto* m =
                    fifo.find([&](const replace_msg& r) { return r.block == block; }))
                return m;
        return nullptr;
    }

    mem::tag_array cache;
    std::optional<search_msg> ma;      ///< request being processed this cycle
    std::optional<search_msg> ma_next; ///< staged by the parent this cycle
    std::vector<noc::sync_fifo<transport_msg>> d_in;
    std::vector<noc::sync_fifo<replace_msg>> u_in;

    /// Two-cycle replacement operation state (Section III-C(c)). The
    /// fabric resets pending_u/pending_block whenever phase returns to
    /// idle so the quiescent image is canonical (state digests would
    /// otherwise see stale values a checkpoint restore cannot reproduce).
    enum class repl_phase : std::uint8_t { idle, write_pending };
    repl_phase phase = repl_phase::idle;
    std::size_t pending_u = 0; ///< which u_in fifo the pending install reads
    addr_t pending_block = no_addr;
    std::size_t repl_rotate = 0; ///< fairness pointer over u_in fifos

    /// Checkpoint support: tags + the fairness pointer. MA registers, link
    /// buffers and the replacement phase are empty/idle at quiescence.
    template <class Ar> void serialize(Ar& ar)
    {
        cache.serialize(ar);
        std::uint64_t rotate = repl_rotate;
        ar(rotate);
        repl_rotate = std::size_t(rotate);
    }
};

} // namespace lnuca::fabric
