// L-NUCA floorplan and the three network topologies (paper Figs. 1-2).
//
// The r-tile sits at grid position (0,0); tiles occupy every (x, y) with
// y >= 0 and Chebyshev ring max(|x|, y) = 1 .. levels-1. Ring d holds
// 4d + 1 tiles, reproducing the paper's 5/9/13 tiles for Le2/Le3/Le4.
//
// Tile latency (Fig. 2(c)) = ring + 1 + Manhattan distance: search hops to
// reach the tile, one access cycle, and transport hops back to the r-tile.
//
// * Search network: a broadcast tree; each ring-(d+1) tile's parent is its
//   coordinate clamped to ring d, so adding a level adds exactly one hop to
//   the maximum search distance.
// * Transport network: a 2D mesh of unidirectional links pointing towards
//   the r-tile (west/east towards column 0, south towards row 0) - every
//   output link makes progress, so messages need no headers.
// * Replacement network: an irregular DAG connecting 8-neighbour tiles
//   whose latencies differ by one cycle (the r-tile feeds the latency-3
//   tiles as the stated exception), pruned to the lowest degree that keeps
//   every tile fed and draining. Only the two top-corner tiles of the
//   outermost ring evict to the next cache level.
#pragma once

#include "src/common/types.h"

#include <cstdint>
#include <vector>

namespace lnuca::fabric {

struct tile_coord {
    int x = 0;
    int y = 0;

    bool operator==(const tile_coord& o) const { return x == o.x && y == o.y; }
    bool operator!=(const tile_coord& o) const { return !(*this == o); }
};

/// Index type for tiles in deterministic order (ring-major, then y, then x).
using tile_index = std::uint32_t;
inline constexpr tile_index root_index = ~tile_index{0};

class geometry {
public:
    /// `levels` counts the r-tile: LN2 -> levels == 2 -> one ring of tiles.
    explicit geometry(unsigned levels);

    unsigned levels() const { return levels_; }
    unsigned rings() const { return levels_ - 1; }
    unsigned tile_count() const { return tile_index(tiles_.size()); }

    const std::vector<tile_coord>& tiles() const { return tiles_; }
    tile_coord coord_of(tile_index i) const { return tiles_[i]; }
    tile_index index_of(tile_coord c) const;
    bool contains(tile_coord c) const;

    /// Chebyshev ring (1-based distance from the r-tile). Level = ring + 1.
    unsigned ring_of(tile_coord c) const;
    unsigned level_of(tile_coord c) const { return ring_of(c) + 1; }

    /// Tiles forming L-NUCA level `level` (2 .. levels).
    std::vector<tile_index> tiles_in_level(unsigned level) const;

    /// Tile latency per Fig. 2(c): ring + access + transport distance.
    unsigned latency_of(tile_coord c) const;
    unsigned transport_distance(tile_coord c) const;

    // --- Search network (broadcast tree) ---------------------------------
    /// Children reached by this tile's miss propagation (next ring).
    const std::vector<tile_index>& search_children(tile_index i) const
    {
        return search_children_[i];
    }
    /// Ring-1 tiles fed directly by the r-tile.
    const std::vector<tile_index>& root_search_children() const
    {
        return root_search_children_;
    }

    // --- Transport network (to-root 2D mesh) -----------------------------
    /// Mesh neighbours this tile can forward hit blocks to. root_index
    /// denotes delivery into the r-tile.
    const std::vector<tile_index>& transport_outputs(tile_index i) const
    {
        return transport_outputs_[i];
    }
    /// Tiles that feed this tile's downstream (transport) buffers.
    const std::vector<tile_index>& transport_inputs(tile_index i) const
    {
        return transport_inputs_[i];
    }
    /// Tiles whose transport output is the r-tile itself.
    const std::vector<tile_index>& root_transport_inputs() const
    {
        return root_transport_inputs_;
    }

    // --- Replacement network (latency-ordered DAG) ------------------------
    /// Tiles this tile evicts into (latency + 1). Empty for top corners,
    /// whose victims leave towards the next cache level.
    const std::vector<tile_index>& replacement_outputs(tile_index i) const
    {
        return replacement_outputs_[i];
    }
    /// Tiles that evict into this tile (upstream buffer sources).
    const std::vector<tile_index>& replacement_inputs(tile_index i) const
    {
        return replacement_inputs_[i];
    }
    /// Tiles the r-tile evicts into (the latency-3 tiles).
    const std::vector<tile_index>& root_replacement_outputs() const
    {
        return root_replacement_outputs_;
    }
    /// Outer-ring top corners: the only next-level evictors.
    bool is_exit_tile(tile_index i) const;
    const std::vector<tile_index>& exit_tiles() const { return exit_tiles_; }

    // --- Topology statistics (Section III-A ablation) ---------------------
    unsigned search_link_count() const;
    unsigned transport_link_count() const;
    unsigned replacement_link_count() const;
    /// Hops from the r-tile to the farthest tile through the search tree.
    unsigned search_max_distance() const { return rings(); }
    /// Hops from the r-tile to a top corner through the replacement DAG.
    unsigned replacement_exit_distance() const;
    /// Link count of a conventional bidirectional 2D mesh over the same
    /// floorplan (the NUCA-style alternative the paper compares against).
    unsigned mesh_equivalent_link_count() const;
    /// Max request distance (hops) in that mesh from the r-tile.
    unsigned mesh_equivalent_max_distance() const;

private:
    void build_search();
    void build_transport();
    void build_replacement();

    unsigned levels_;
    std::vector<tile_coord> tiles_;
    std::vector<std::vector<tile_index>> search_children_;
    std::vector<tile_index> root_search_children_;
    std::vector<std::vector<tile_index>> transport_outputs_;
    std::vector<std::vector<tile_index>> transport_inputs_;
    std::vector<tile_index> root_transport_inputs_;
    std::vector<std::vector<tile_index>> replacement_outputs_;
    std::vector<std::vector<tile_index>> replacement_inputs_;
    std::vector<tile_index> root_replacement_outputs_;
    std::vector<tile_index> exit_tiles_;
};

} // namespace lnuca::fabric
