// Conventional set-associative cache with Table-I-style timing:
// completion latency (access begins -> result available), initiation
// interval per port, MSHRs with secondary-miss merging, a coalescing write
// buffer towards the next level, write-through or copy-back policy.
//
// Timing contract (see sim/engine.h): upstream components tick earlier in
// the cycle, so accept() calls land in the same cycle and responses are
// observed one cycle after they are stamped, which makes a hit's
// load-to-use latency exactly `completion_latency`.
#pragma once

#include "src/common/ring_queue.h"
#include "src/common/stats.h"
#include "src/common/types.h"
#include "src/mem/mshr.h"
#include "src/mem/request.h"
#include "src/mem/tag_array.h"
#include "src/mem/write_buffer.h"
#include "src/sim/ticked.h"
#include "src/sim/timed_queue.h"

#include <string>

namespace lnuca::mem {

struct cache_config {
    std::string name = "cache";
    std::uint64_t size_bytes = 32_KiB;
    std::uint32_t ways = 4;
    std::uint32_t block_bytes = 32;
    std::uint32_t completion_latency = 2; ///< access start -> result
    std::uint32_t initiation_interval = 1; ///< per-port issue spacing
    std::uint32_t ports = 1;
    /// Independent line-interleaved banks; the initiation interval applies
    /// per bank (large LLC arrays are multi-banked).
    std::uint32_t banks = 1;
    bool write_through = false; ///< true: L1-style write-through no-allocate
    bool write_allocate = true; ///< copy-back caches: allocate on store miss?
    bool writeback_clean = false; ///< forward clean victims too (victim/
                                  ///< exclusive hierarchies, e.g. the r-tile)
    bool serial_access = false; ///< tag-then-data (energy model input)
    std::uint32_t mshr_entries = 16;
    std::uint32_t mshr_secondary = 4;
    std::uint32_t write_buffer_entries = 32;
    std::uint32_t fills_per_cycle = 1;
    std::string policy = "lru";
    std::uint64_t seed = 0x5eed;
    service_level level_tag = service_level::l2;
    /// CMP mode (private L1 under a coh::coherence_hub): track MESI
    /// permission per line, issue read-for-ownership on store misses and
    /// upgrades on store hits to Shared lines, and answer snoops. Off for
    /// every single-core hierarchy — the timing paths are then untouched.
    bool coherent = false;
    /// Which core this private cache belongs to (stamped on every
    /// downstream request so the hub can route and bookkeep).
    core_id_t core_id = 0;
};

/// Outcome of a hub-initiated snoop (invalidate / downgrade).
enum class snoop_result : std::uint8_t {
    not_present,   ///< no copy here (possibly already evicted)
    applied_clean, ///< copy dropped/downgraded; it was clean
    applied_dirty, ///< copy dropped/downgraded; it carried modified data
    retry,         ///< transient (fill or writeback in flight) - retry
};

class conventional_cache final : public sim::ticked, public mem_port, public mem_client {
public:
    conventional_cache(const cache_config& config, txn_id_source& ids);

    /// Wire the component above (receives our responses) and below
    /// (receives our misses and write traffic). Downstream may be null for
    /// a last level backed by nothing (tests).
    void set_upstream(mem_client* client) { upstream_ = client; }
    void set_downstream(mem_port* port) { downstream_ = port; }

    // mem_port (upper side)
    bool can_accept(const mem_request& request) const override;
    void accept(const mem_request& request) override;
    warm_result warm_access(const warm_request& request) override;

    // mem_client (lower side)
    void respond(const mem_response& response) override;

    // ticked
    void tick(cycle_t now) override;
    cycle_t next_event(cycle_t now) const override;
    std::uint64_t state_digest() const override;

    const cache_config& config() const { return config_; }
    const counter_set& counters() const { return counters_; }
    const tag_array& tags() const { return tags_; }
    tag_array& tags() { return tags_; }
    bool quiescent() const; ///< no in-flight work (drain detection)

    /// Coherence snoops (hub-initiated, coherent caches only). Invalidate
    /// drops the line; downgrade strips write permission and cleans it
    /// (MESI M/E -> S), reporting whether modified data was flushed. Both
    /// ask for a retry while a fill or an eviction writeback for the block
    /// is in flight - the hub re-delivers next cycle.
    snoop_result snoop_invalidate(addr_t addr);
    snoop_result snoop_downgrade(addr_t addr);

    /// Functional twins of the snoops for the coherence hub's warm path:
    /// tags-only mutation (extract / clean + strip write permission), no
    /// counters, never `retry` - the warm path runs only while the whole
    /// machine is quiescent, so nothing can be in flight. Both also drop
    /// the warm-path elision caches when they cover the block, or a later
    /// warm access would wrongly skip re-acquiring permission.
    snoop_result warm_snoop_invalidate(addr_t addr);
    snoop_result warm_snoop_downgrade(addr_t addr);

    /// Coherence invariant probe: the directory may list this cache as a
    /// sharer iff the block is resident or still moving through the fill /
    /// eviction machinery (see coh::coherence_hub::check_invariants).
    bool holds_or_in_flight(addr_t addr) const;

    /// Checkpoint hooks (quiescent-only; hier::system owns the section).
    void save_state(ckpt::writer& w) const override;
    void load_state(ckpt::reader& r) override;

    /// Persistent-at-quiescence state: tags, stats, schedule anchors and
    /// the warm-path elision caches. MSHRs, write buffers and the
    /// lookup/refill queues are empty by the quiesce contract.
    template <class Ar> void serialize(Ar& ar)
    {
        tags_.serialize(ar);
        ar.counters(counters_);
        ar(port_free_);
        ar(now_);
        ar(warm_last_block_);
        ar(warm_last_kind_);
        ar(warm_wb_);
        std::uint64_t warm_wb_pos = warm_wb_pos_;
        ar(warm_wb_pos);
        warm_wb_pos_ = std::size_t(warm_wb_pos);
        ar(warm_state_stale_);
    }

private:
    struct pending_access {
        mem_request request;
        bool needs_response = true;
        bool counted = false; ///< statistics recorded (retries skip them)
    };

    void process_lookup(cycle_t now, pending_access access);
    void drain_input_writes(cycle_t now);
    std::size_t bank_of(addr_t addr) const;
    void handle_read_like(cycle_t now, pending_access access);
    void handle_write_through_store(cycle_t now, pending_access access);
    void handle_incoming_writeback(cycle_t now, const pending_access& access);
    void issue_misses(cycle_t now);
    void drain_write_buffer(cycle_t now);
    void process_refills(cycle_t now);
    void respond_up(cycle_t now, const mshr_target& target, service_level origin,
                    std::uint8_t fabric_level);
    void queue_victim(cycle_t now, const evicted_line& victim);
    void warm_install(addr_t addr, bool dirty);

    cache_config config_;
    txn_id_source& ids_;
    tag_array tags_;
    mshr_file mshrs_;
    write_buffer wb_;
    counter_set counters_;
    counter_set::handle h_accesses_ = 0;
    counter_set::handle h_reads_ = 0;
    counter_set::handle h_writes_ = 0;
    counter_set::handle h_read_hit_ = 0;
    counter_set::handle h_write_hit_ = 0;
    counter_set::handle h_wb_hit_ = 0;
    // Cold-site handles: same preregistered names, no per-event hashing.
    counter_set::handle h_read_miss_ = 0;
    counter_set::handle h_write_miss_ = 0;
    counter_set::handle h_mshr_merge_ = 0;
    counter_set::handle h_mshr_secondary_stall_ = 0;
    counter_set::handle h_mshr_full_stall_ = 0;
    counter_set::handle h_miss_issued_ = 0;
    counter_set::handle h_fills_ = 0;
    counter_set::handle h_evictions_ = 0;
    counter_set::handle h_writeback_in_ = 0;
    counter_set::handle h_writeback_out_ = 0;
    counter_set::handle h_write_through_out_ = 0;
    counter_set::handle h_wb_drained_ = 0;
    counter_set::handle h_wb_full_stall_ = 0;
    counter_set::handle h_refill_wb_stall_ = 0;
    counter_set::handle h_untracked_response_ = 0;
    // Coherence (coherent mode only; preregistered either way).
    counter_set::handle h_upgrade_miss_ = 0;
    counter_set::handle h_snoop_inv_ = 0;
    counter_set::handle h_snoop_inv_dirty_ = 0;
    counter_set::handle h_snoop_downgrade_ = 0;
    counter_set::handle h_snoop_retry_ = 0;

    bool pending_fill(addr_t block) const;
    void pending_fill_remove(addr_t block);

    mem_client* upstream_ = nullptr;
    mem_port* downstream_ = nullptr;

    /// Coherent mode: blocks whose fill response has been granted (sits in
    /// refills_) but not yet installed. A snoop landing in that window
    /// must wait for the install - the grant already promised this cache
    /// the line - or the fill would re-install E/M behind the directory's
    /// back (see snoop_invalidate). Empty for non-coherent caches.
    std::vector<addr_t> pending_fill_blocks_;

    std::vector<cycle_t> port_free_; ///< per-port next-free cycle
    sim::timed_queue<pending_access> lookups_;
    sim::timed_queue<mem_response> refills_;
    /// Incoming writes/writebacks wait here (Table I write buffers) and
    /// drain into the array only when a port is otherwise idle; reads
    /// snoop this queue so buffered data is visible.
    ring_queue<pending_access> input_writes_;
    cycle_t now_ = 0; ///< cycle of the current/last tick (for can_accept)

    // Consecutive-duplicate elision on the warm path: sequential runs touch
    // the same block several times in a row, and repeating a hit on the MRU
    // block (or re-dirtying a just-dirtied one) is a state no-op - skipping
    // exact consecutive repeats is lossless, not an approximation.
    addr_t warm_last_block_ = no_addr;
    access_kind warm_last_kind_ = access_kind::writeback;
    // Warm-path stand-in for the outgoing write buffer's per-block
    // coalescing: a store whose block was among the last
    // `write_buffer_entries` forwarded store blocks coalesces (no second
    // downstream write), and a read to such a block is a buffer hit (served
    // without touching tags, like the detailed wb snoop). Without this, the
    // warm path over-weights store blocks in the next level's recency.
    bool warm_wb_contains(addr_t block) const;
    void warm_wb_remember(addr_t block);
    std::vector<addr_t> warm_wb_;
    std::size_t warm_wb_pos_ = 0;
    /// Set by tick(): the detailed path moved lines / drained the real
    /// write buffer, so the warm-path caches above are invalid until the
    /// next warm access resets them.
    bool warm_state_stale_ = false;
};

} // namespace lnuca::mem
