// Memory transaction types and the two interfaces every level of the
// hierarchy speaks: mem_port (accepts requests travelling away from the
// core) and mem_client (receives responses travelling towards it).
//
// Only timing and tags are simulated, never data values — the standard
// approach for timing studies like the paper's.
#pragma once

#include "src/common/types.h"

#include <cstdint>
#include <string>

namespace lnuca::mem {

enum class access_kind : std::uint8_t {
    read,      ///< demand load (expects a response)
    write,     ///< demand store (response used to retire the store buffer)
    writeback, ///< dirty eviction travelling down (no response)
};

/// Identifies which structure serviced a request; used for the paper's
/// per-level hit statistics (Table III) and energy accounting.
enum class service_level : std::uint8_t {
    none = 0,
    l1,          ///< L1 / r-tile
    lnuca_tile,  ///< an L-NUCA tile (level recorded separately)
    l2,          ///< conventional L2
    l3,          ///< conventional L3
    dnuca,       ///< a D-NUCA bank
    memory,      ///< main memory
    peer_l1,     ///< another core's private L1 (cache-to-cache forward)
};

/// Core id carried by CMP-mode requests. Single-core systems leave it 0.
using core_id_t = std::uint8_t;
inline constexpr core_id_t no_core = 0xff;
/// Sharer bitmasks (coh::directory) bound the core count to 32.
inline constexpr unsigned max_cores = 32;

std::string to_string(service_level level);

struct mem_request {
    txn_id_t id = 0;
    addr_t addr = no_addr;
    std::uint32_t size = 0;
    access_kind kind = access_kind::read;
    cycle_t created_at = 0;
    /// Demand accesses expect a response; write-buffer drains and
    /// writebacks are fire-and-forget.
    bool needs_response = true;
    /// For writeback kind: does the block carry modified data? Clean
    /// victims circulate in exclusive/victim hierarchies (L-NUCA).
    bool dirty = false;
    /// CMP mode: which core's private hierarchy issued this request. The
    /// coherence hub keys directory updates and response routing on it.
    core_id_t core = 0;
    /// Read-for-ownership (MESI): the requester wants write permission, so
    /// every other cached copy must be invalidated before the response.
    bool exclusive = false;
};

struct mem_response {
    txn_id_t id = 0;
    addr_t addr = no_addr;
    cycle_t ready_at = 0;
    service_level served_by = service_level::none;
    /// For L-NUCA hits: fabric level (2 = Le2, ...). 0 otherwise.
    std::uint8_t fabric_level = 0;
    /// Block carries modified data (migrating dirty line must stay dirty).
    bool dirty = false;
    /// CMP mode: no other core holds a copy, so the line installs E (or M
    /// when dirty). Always granted for read-for-ownership responses.
    bool exclusive = false;
    /// CMP mode: the core whose private hierarchy this response serves.
    core_id_t core = 0;
};

/// A functional warming access (the sampled-simulation fast-forward path).
/// Carries no transaction id and expects no response: the access updates
/// stateful structures only.
struct warm_request {
    addr_t addr = no_addr;
    access_kind kind = access_kind::read;
    /// For writeback kind: block carries modified data.
    bool dirty = false;
    /// Write intent (MESI read-for-ownership / upgrade): the requester
    /// needs write permission, so the coherence hub must functionally
    /// invalidate every other cached copy. Single-core hierarchies and
    /// non-coherent levels ignore it.
    bool exclusive = false;
    /// CMP mode: which core's private hierarchy issued this access. The
    /// coherence hub keys its warm directory updates on it (mirrors
    /// mem_request::core). Single-core systems leave it 0.
    core_id_t core = 0;
};

/// What a warm read pulled up - the functional twin of the mem_response
/// fields an install decision depends on.
struct warm_result {
    /// The block carries modified data (the caller's install must preserve
    /// dirtiness, exactly like mem_response::dirty).
    bool dirty = false;
    /// CMP mode: no other core holds a copy, so a coherent L1 installs the
    /// line E/M (mirrors mem_response::exclusive). Levels below the
    /// coherence hub never grant it; the hub decides from its directory.
    bool exclusive = false;
};

/// Upstream-facing interface: a component the level above pushes requests
/// into. Callers must check can_accept in the same cycle before accept.
class mem_port {
public:
    virtual ~mem_port() = default;

    virtual bool can_accept(const mem_request& request) const = 0;
    virtual void accept(const mem_request& request) = 0;

    /// Functional warming contract (see DESIGN.md, "Sampling"): update every
    /// stateful structure the access would touch under detailed timing -
    /// tags, recency, dirtiness, allocation/migration decisions, MESI
    /// permission and directory sharer/owner state, and the same
    /// propagation down the hierarchy (miss fetches, victim writebacks,
    /// invalidation/downgrade of remote copies) - while touching *no*
    /// timing state: no queues, no MSHRs, no port schedules, no counters,
    /// no responses. May only be called while the component is quiescent
    /// (nothing in flight), which the sampled driver guarantees by
    /// draining between detailed windows.
    /// warm_result::dirty is set iff a read pulled up a block carrying
    /// modified data; warm_result::exclusive mirrors the coherence hub's
    /// E/M grant (see warm_result). Writes and writebacks return {}.
    /// Default: warm-transparent (main memory holds no warmable state).
    virtual warm_result warm_access(const warm_request& request)
    {
        (void)request;
        return {};
    }
};

/// Downstream-facing interface: receives responses for requests this
/// component (or its clients) previously pushed into a mem_port.
class mem_client {
public:
    virtual ~mem_client() = default;

    virtual void respond(const mem_response& response) = 0;
};

/// Monotonic transaction-id source (one per system).
class txn_id_source {
public:
    txn_id_t next() { return ++last_; }

    /// Checkpoint support: restoring the cursor keeps post-restore ids
    /// identical to the uninterrupted run's.
    template <class Ar> void serialize(Ar& ar) { ar(last_); }

private:
    txn_id_t last_ = 0;
};

} // namespace lnuca::mem
