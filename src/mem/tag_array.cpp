#include "src/mem/tag_array.h"

#include <stdexcept>

namespace lnuca::mem {

tag_array::tag_array(const tag_array_config& config)
    : ways_(config.ways),
      block_bytes_(config.block_bytes),
      policy_(make_replacement_policy(config.policy, config.seed))
{
    if (!is_pow2(config.block_bytes))
        throw std::invalid_argument("block size must be a power of two");
    const std::uint64_t lines = config.size_bytes / config.block_bytes;
    if (lines == 0 || lines % config.ways != 0)
        throw std::invalid_argument("size/ways/block geometry does not divide");
    sets_ = std::uint32_t(lines / config.ways);
    if (!is_pow2(sets_))
        throw std::invalid_argument("set count must be a power of two");
    lines_.assign(std::size_t(sets_) * ways_, cache_line{});
    policy_.resize(sets_, ways_);
}

std::optional<hit_info> tag_array::probe(addr_t addr) const
{
    const addr_t block = block_of(addr);
    const std::uint32_t set = set_of(addr);
    for (std::uint32_t w = 0; w < ways_; ++w) {
        const cache_line& l = line(set, w);
        if (l.valid && l.tag == block)
            return hit_info{set, w, l.dirty};
    }
    return std::nullopt;
}

std::optional<hit_info> tag_array::lookup(addr_t addr)
{
    auto hit = probe(addr);
    if (hit)
        policy_.touch(hit->set, hit->way);
    return hit;
}

void tag_array::set_dirty(addr_t addr, bool dirty)
{
    auto hit = probe(addr);
    if (!hit)
        return;
    line_ref(hit->set, hit->way).dirty = dirty;
}

void tag_array::set_exclusive(addr_t addr, bool exclusive)
{
    auto hit = probe(addr);
    if (!hit)
        return;
    line_ref(hit->set, hit->way).exclusive = exclusive;
}

bool tag_array::is_exclusive(addr_t addr) const
{
    const auto hit = probe(addr);
    return hit && line(hit->set, hit->way).exclusive;
}

std::optional<evicted_line> tag_array::install(addr_t addr, bool dirty)
{
    const addr_t block = block_of(addr);
    const std::uint32_t set = set_of(addr);

    // Already present: refresh recency, merge dirtiness.
    for (std::uint32_t w = 0; w < ways_; ++w) {
        cache_line& l = line_ref(set, w);
        if (l.valid && l.tag == block) {
            l.dirty = l.dirty || dirty;
            policy_.touch(set, w);
            return std::nullopt;
        }
    }

    // Free way if any.
    for (std::uint32_t w = 0; w < ways_; ++w) {
        cache_line& l = line_ref(set, w);
        if (!l.valid) {
            l = cache_line{block, true, dirty};
            policy_.touch(set, w);
            return std::nullopt;
        }
    }

    // Displace the policy victim.
    const std::uint32_t victim_way = policy_.victim(set);
    cache_line& l = line_ref(set, victim_way);
    const evicted_line displaced{l.tag, l.dirty};
    l = cache_line{block, true, dirty};
    policy_.touch(set, victim_way);
    return displaced;
}

bool tag_array::set_has_free_way(addr_t addr) const
{
    const std::uint32_t set = set_of(addr);
    for (std::uint32_t w = 0; w < ways_; ++w)
        if (!line(set, w).valid)
            return true;
    return false;
}

std::optional<evicted_line> tag_array::extract(addr_t addr)
{
    const addr_t block = block_of(addr);
    const std::uint32_t set = set_of(addr);
    for (std::uint32_t w = 0; w < ways_; ++w) {
        cache_line& l = line_ref(set, w);
        if (l.valid && l.tag == block) {
            const evicted_line out{l.tag, l.dirty};
            l = cache_line{};
            return out;
        }
    }
    return std::nullopt;
}

evicted_line tag_array::evict_victim(addr_t addr)
{
    const std::uint32_t set = set_of(addr);
    const std::uint32_t way = policy_.victim(set);
    cache_line& l = line_ref(set, way);
    const evicted_line out{l.tag, l.dirty};
    l = cache_line{};
    return out;
}

std::uint64_t tag_array::valid_count() const
{
    std::uint64_t n = 0;
    for (const auto& l : lines_)
        n += l.valid ? 1 : 0;
    return n;
}

} // namespace lnuca::mem
