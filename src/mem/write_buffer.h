// Coalescing write buffer placed between a cache and its downstream level
// (Table I: 32-entry L2 and L3 write buffers; the store path of the
// write-through L1 drains through the L2 buffer).
//
// Entries coalesce at downstream-block granularity. Reads must snoop the
// buffer: a read that matches a buffered write is serviced as a hit by the
// owning cache (handled by the cache, which calls contains()).
#pragma once

#include "src/common/ring_queue.h"
#include "src/common/types.h"

#include <optional>

namespace lnuca::mem {

class write_buffer {
public:
    write_buffer(std::uint32_t entries, std::uint32_t block_bytes)
        : capacity_(entries), block_bytes_(block_bytes)
    {
        queue_.reserve(entries); // steady-state pushes never allocate
    }

    bool full() const { return queue_.size() >= capacity_; }
    bool empty() const { return queue_.empty(); }
    std::size_t size() const { return queue_.size(); }

    /// Queue a write (coalesces into an existing same-block entry).
    /// Returns false when the buffer is full and no coalescing is possible.
    bool push(addr_t addr, bool writeback, bool dirty);

    /// Does the buffer hold the block containing `addr`?
    bool contains(addr_t addr) const;

    /// Oldest entry, if any (drain candidate).
    std::optional<addr_t> head() const;

    /// Whether the head entry is a full-block writeback (vs a write-through
    /// word) and whether it carries modified data.
    bool head_is_writeback() const;
    bool head_is_dirty() const;

    /// Remove the head after it was sent downstream.
    void pop();

private:
    addr_t block_of(addr_t addr) const { return addr & ~addr_t(block_bytes_ - 1); }

    struct entry {
        addr_t block_addr;
        bool writeback;
        bool dirty;
    };

    std::uint32_t capacity_;
    std::uint32_t block_bytes_;
    ring_queue<entry> queue_;
};

} // namespace lnuca::mem
