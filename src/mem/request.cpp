#include "src/mem/request.h"

namespace lnuca::mem {

std::string to_string(service_level level)
{
    switch (level) {
    case service_level::none: return "none";
    case service_level::l1: return "L1";
    case service_level::lnuca_tile: return "L-NUCA";
    case service_level::l2: return "L2";
    case service_level::l3: return "L3";
    case service_level::dnuca: return "D-NUCA";
    case service_level::memory: return "memory";
    case service_level::peer_l1: return "peer-L1";
    }
    return "?";
}

} // namespace lnuca::mem
