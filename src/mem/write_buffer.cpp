#include "src/mem/write_buffer.h"

namespace lnuca::mem {

bool write_buffer::push(addr_t addr, bool writeback, bool dirty)
{
    const addr_t block = block_of(addr);
    for (auto& e : queue_) {
        if (e.block_addr == block) {
            e.writeback = e.writeback || writeback;
            e.dirty = e.dirty || dirty;
            return true;
        }
    }
    if (full())
        return false;
    queue_.push_back(entry{block, writeback, dirty});
    return true;
}

bool write_buffer::contains(addr_t addr) const
{
    const addr_t block = block_of(addr);
    for (const auto& e : queue_)
        if (e.block_addr == block)
            return true;
    return false;
}

std::optional<addr_t> write_buffer::head() const
{
    if (queue_.empty())
        return std::nullopt;
    return queue_.front().block_addr;
}

bool write_buffer::head_is_writeback() const
{
    return !queue_.empty() && queue_.front().writeback;
}

bool write_buffer::head_is_dirty() const
{
    return !queue_.empty() && queue_.front().dirty;
}

void write_buffer::pop()
{
    queue_.pop_front();
}

} // namespace lnuca::mem
