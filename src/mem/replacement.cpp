#include "src/mem/replacement.h"

#include <stdexcept>

namespace lnuca::mem {

void lru_policy::resize(std::uint32_t sets, std::uint32_t ways)
{
    ways_ = ways;
    last_use_.assign(std::size_t(sets) * ways, 0);
}

std::uint32_t lru_policy::victim(std::uint32_t set)
{
    const std::size_t base = std::size_t(set) * ways_;
    std::uint32_t best = 0;
    std::uint64_t oldest = last_use_[base];
    for (std::uint32_t w = 1; w < ways_; ++w) {
        if (last_use_[base + w] < oldest) {
            oldest = last_use_[base + w];
            best = w;
        }
    }
    return best;
}

void random_policy::resize(std::uint32_t, std::uint32_t ways)
{
    ways_ = ways;
}

std::uint32_t random_policy::victim(std::uint32_t)
{
    return std::uint32_t(rng_.below(ways_));
}

void fifo_policy::resize(std::uint32_t sets, std::uint32_t ways)
{
    ways_ = ways;
    next_.assign(sets, 0);
}

std::uint32_t fifo_policy::victim(std::uint32_t set)
{
    const std::uint32_t way = next_[set];
    next_[set] = (way + 1) % ways_;
    return way;
}

replacement_policy make_replacement_policy(const std::string& name,
                                           std::uint64_t seed)
{
    if (name == "lru")
        return replacement_policy(lru_policy{});
    if (name == "random")
        return replacement_policy(random_policy(seed));
    if (name == "fifo")
        return replacement_policy(fifo_policy{});
    throw std::invalid_argument("unknown replacement policy: " + name);
}

} // namespace lnuca::mem
