// Miss Status Holding Registers.
//
// One entry per outstanding block miss; secondary misses to the same block
// merge into the entry up to a per-entry target limit (Table I: 16/16/8
// entries for L1/L2/L3 and 4 secondary misses per entry).
#pragma once

#include "src/common/types.h"
#include "src/mem/request.h"

#include <optional>
#include <vector>

namespace lnuca::mem {

struct mshr_target {
    txn_id_t id = 0;
    addr_t addr = no_addr; ///< original (unaligned) demanded address
    access_kind kind = access_kind::read;
    cycle_t created_at = 0;
};

struct mshr_entry {
    addr_t block_addr = no_addr;
    bool issued = false; ///< miss request sent downstream yet?
    cycle_t allocated_at = 0;
    std::vector<mshr_target> targets;
};

class mshr_file {
public:
    mshr_file(std::uint32_t entries, std::uint32_t max_targets)
        : capacity_(entries), max_targets_(max_targets)
    {
    }

    /// Entry for `block_addr`, if one is outstanding.
    mshr_entry* find(addr_t block_addr);
    const mshr_entry* find(addr_t block_addr) const;

    /// Can a brand-new miss to `block_addr` allocate an entry?
    bool can_allocate() const { return entries_.size() < capacity_; }

    /// Can a secondary miss merge into the existing entry?
    bool can_merge(addr_t block_addr) const;

    /// Allocate a new entry (caller checked can_allocate).
    mshr_entry& allocate(addr_t block_addr, cycle_t now);

    /// Add a target to an existing entry (caller checked can_merge).
    void merge(addr_t block_addr, const mshr_target& target);

    /// Remove and return the entry when its refill arrives.
    std::optional<mshr_entry> release(addr_t block_addr);

    std::size_t in_use() const { return entries_.size(); }
    std::uint32_t capacity() const { return capacity_; }
    bool empty() const { return entries_.empty(); }

    /// Entries not yet forwarded downstream (issue queue scan).
    std::vector<mshr_entry*> unissued();

    /// Is any entry still waiting to be forwarded downstream? (idle-skip
    /// next_event probe: an unissued miss retries every cycle.)
    bool any_unissued() const;

private:
    std::uint32_t capacity_;
    std::uint32_t max_targets_;
    std::vector<mshr_entry> entries_;
};

} // namespace lnuca::mem
