// Miss Status Holding Registers.
//
// One entry per outstanding block miss; secondary misses to the same block
// merge into the entry up to a per-entry target limit (Table I: 16/16/8
// entries for L1/L2/L3 and 4 secondary misses per entry).
//
// Storage is a fixed slab sized at construction — no allocation ever happens
// after the constructor returns:
//
//   * entries live in a slab of `capacity` slots recycled through a free
//     stack;
//   * an open-addressed hash index maps block address -> slot, replacing
//     the old linear scan on every find();
//   * live entries are threaded on an intrusive list in allocation order
//     (the order the old vector preserved), and unissued entries on a
//     second intrusive FIFO, so any_unissued() is O(1) and the issue scan
//     no longer builds a heap-allocated vector every tick;
//   * targets live in one pooled array of capacity x max_targets slots,
//     replacing the per-entry std::vector.
//
// release() returns a *view* whose target pointer aliases the pool; it
// stays valid until the released slot is re-allocated, which is always
// after the caller has finished responding to the targets.
#pragma once

#include "src/common/types.h"
#include "src/mem/request.h"

#include <cstdint>
#include <vector>

namespace lnuca::mem {

struct mshr_target {
    txn_id_t id = 0;
    addr_t addr = no_addr; ///< original (unaligned) demanded address
    access_kind kind = access_kind::read;
    cycle_t created_at = 0;
};

struct mshr_entry {
    addr_t block_addr = no_addr;
    bool issued = false; ///< miss request sent downstream yet? Flip only
                         ///< through mshr_file::mark_issued (list upkeep).
    bool for_write = false; ///< coherent caches: miss needs ownership (RFO)
    cycle_t allocated_at = 0;
    std::uint32_t target_count = 0;

    // Intrusive list links (slab slot indices, -1 = none). Owned by
    // mshr_file; components never touch them.
    std::int32_t prev_live = -1;
    std::int32_t next_live = -1;
    std::int32_t prev_unissued = -1;
    std::int32_t next_unissued = -1;
};

class mshr_file {
public:
    mshr_file(std::uint32_t entries, std::uint32_t max_targets);

    /// Entry for `block_addr`, if one is outstanding. O(1) via the index.
    mshr_entry* find(addr_t block_addr);
    const mshr_entry* find(addr_t block_addr) const;

    /// Can a brand-new miss to `block_addr` allocate an entry?
    bool can_allocate() const { return free_.size() > 0; }

    /// Can a secondary miss merge into the existing entry?
    bool can_merge(addr_t block_addr) const;

    /// Allocate a new entry (caller checked can_allocate).
    mshr_entry& allocate(addr_t block_addr, cycle_t now);

    /// Add a target to an existing entry (caller checked can_merge).
    /// Returns false — touching nothing — when no entry exists for the
    /// block or its target slots are exhausted, instead of dereferencing a
    /// null find() result as the old implementation did.
    bool merge(addr_t block_addr, const mshr_target& target);

    /// Append a target to a live entry (caller bounds-checked; throws on
    /// overflow — a target-limit violation is a caller logic error).
    void add_target(mshr_entry& entry, const mshr_target& target);

    /// Pooled target storage of a live entry, [0, entry.target_count).
    const mshr_target* targets(const mshr_entry& entry) const;

    /// Snapshot of a released entry. `targets` points into the pool and
    /// remains valid until the freed slot is allocated again.
    struct released_entry {
        bool valid = false;
        addr_t block_addr = no_addr;
        bool issued = false;
        cycle_t allocated_at = 0;
        const mshr_target* targets = nullptr;
        std::uint32_t target_count = 0;

        explicit operator bool() const { return valid; }
    };

    /// Remove the entry when its refill arrives (no-op view when absent).
    released_entry release(addr_t block_addr);

    /// Mark an entry's miss as forwarded downstream (unlinks it from the
    /// unissued FIFO).
    void mark_issued(mshr_entry& entry);

    std::size_t in_use() const { return slab_.size() - free_.size(); }
    std::uint32_t capacity() const { return capacity_; }
    std::uint32_t max_targets() const { return max_targets_; }
    bool empty() const { return in_use() == 0; }

    /// Is any entry still waiting to be forwarded downstream? (idle-skip
    /// next_event probe: an unissued miss retries every cycle.) O(1).
    bool any_unissued() const { return head_unissued_ != -1; }

    /// Oldest-allocated entry not yet forwarded downstream (issue-queue
    /// head; nullptr when none). Continue with next_unissued().
    mshr_entry* first_unissued();
    mshr_entry* next_unissued(const mshr_entry& entry);

    /// Live entries in allocation order (the order the old vector kept).
    /// Safe pattern for release-while-iterating: fetch next_live() *before*
    /// releasing the current entry.
    mshr_entry* first_live();
    mshr_entry* next_live(const mshr_entry& entry);
    const mshr_entry* first_live() const;
    const mshr_entry* next_live(const mshr_entry& entry) const;

    /// Slab slot of a live entry (stable for the entry's lifetime; parallel
    /// per-slot state in components indexes with this).
    std::uint32_t slot_of(const mshr_entry& entry) const
    {
        return std::uint32_t(&entry - slab_.data());
    }

private:
    std::size_t home_bucket(addr_t block_addr) const;
    std::int32_t find_slot(addr_t block_addr) const;
    void index_insert(addr_t block_addr, std::uint32_t slot);
    void index_erase(addr_t block_addr);

    std::uint32_t capacity_;
    std::uint32_t max_targets_;
    std::uint32_t target_stride_; ///< pool slots per entry: max(1, max_targets)
                                  ///< (the primary target is always storable,
                                  ///< matching the old vector-backed file)
    std::vector<mshr_entry> slab_;       ///< capacity_ slots
    std::vector<mshr_target> target_pool_; ///< capacity_ x max_targets_
    std::vector<std::uint32_t> free_;    ///< free slot stack
    /// Open-addressed (linear probe) block->slot index; stores slot + 1,
    /// 0 = empty. Power-of-two size >= 2 x capacity; erase uses the classic
    /// backward-shift so no tombstones accumulate.
    std::vector<std::uint32_t> table_;

    std::int32_t head_live_ = -1;
    std::int32_t tail_live_ = -1;
    std::int32_t head_unissued_ = -1;
    std::int32_t tail_unissued_ = -1;
};

} // namespace lnuca::mem
