// Main memory channel per Table I: 200-cycle first chunk, 4 cycles per
// additional 16-byte chunk, bursts serialised on the data wires.
#pragma once

#include "src/common/ring_queue.h"
#include "src/common/stats.h"
#include "src/common/types.h"
#include "src/mem/request.h"
#include "src/sim/ticked.h"
#include "src/sim/timed_queue.h"


namespace lnuca::mem {

struct main_memory_config {
    std::uint32_t first_chunk_latency = 200;
    std::uint32_t inter_chunk_latency = 4;
    std::uint32_t wire_bytes = 16;
    std::uint32_t queue_depth = 64; ///< controller queue entries
};

class main_memory final : public sim::ticked, public mem_port {
public:
    explicit main_memory(const main_memory_config& config) : config_(config)
    {
        queue_.reserve(config.queue_depth);
        counters_.preregister({"reads", "writes", "transfers"});
        h_reads_ = counters_.handle_of("reads");
        h_writes_ = counters_.handle_of("writes");
        h_transfers_ = counters_.handle_of("transfers");
    }

    void set_upstream(mem_client* client) { upstream_ = client; }

    bool can_accept(const mem_request& request) const override;
    void accept(const mem_request& request) override;
    void tick(cycle_t now) override;
    cycle_t next_event(cycle_t now) const override;
    std::uint64_t state_digest() const override;

    const counter_set& counters() const { return counters_; }
    bool quiescent() const { return queue_.empty(); }

    /// Cycles to deliver a `bytes`-sized block, unloaded.
    cycle_t unloaded_latency(std::uint32_t bytes) const;

    /// Checkpoint hooks (quiescent-only; hier::system owns the section).
    void save_state(ckpt::writer& w) const override;
    void load_state(ckpt::reader& r) override;

    template <class Ar> void serialize(Ar& ar)
    {
        ar.counters(counters_);
        ar(wires_free_at_);
    }

private:
    std::uint32_t chunks_for(std::uint32_t bytes) const
    {
        return (bytes + config_.wire_bytes - 1) / config_.wire_bytes;
    }

    main_memory_config config_;
    mem_client* upstream_ = nullptr;
    counter_set counters_;
    counter_set::handle h_reads_ = 0;
    counter_set::handle h_writes_ = 0;
    counter_set::handle h_transfers_ = 0;
    ring_queue<mem_request> queue_;
    cycle_t wires_free_at_ = 0;
};

} // namespace lnuca::mem
