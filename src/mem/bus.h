// Split-transaction bus: forwards requests downward and responses upward
// with a fixed arbitration latency and a bandwidth limit (bytes per cycle).
// Used between hierarchy levels when the levels' own initiation intervals
// do not already model the channel (e.g. ablation studies).
#pragma once

#include "src/common/stats.h"
#include "src/common/types.h"
#include "src/mem/request.h"
#include "src/sim/ticked.h"
#include "src/sim/timed_queue.h"

namespace lnuca::mem {

struct bus_config {
    std::uint32_t width_bytes = 16;  ///< payload moved per cycle
    std::uint32_t arbitration = 1;   ///< cycles to win the bus
    /// Bytes carried by an upward (refill) response: the upper cache's
    /// block. The narrow shared bus is what the L-NUCA's message-wide
    /// local links replace (Section III-A).
    std::uint32_t response_bytes = 32;
};

class bus final : public sim::ticked, public mem_port, public mem_client {
public:
    explicit bus(const bus_config& config) : config_(config)
    {
        // Occupancy is bounded by the upstream cache's MSHRs + write
        // buffer; pre-size so steady-state accept() never allocates (the
        // micro_hotpath zero-allocation gate covers this path).
        down_.reserve(128);
        up_.reserve(128);
        counters_.preregister({"down_transfers", "down_stall", "up_transfers"});
        h_down_transfers_ = counters_.handle_of("down_transfers");
        h_down_stall_ = counters_.handle_of("down_stall");
        h_up_transfers_ = counters_.handle_of("up_transfers");
    }

    void set_upstream(mem_client* client) { upstream_ = client; }
    void set_downstream(mem_port* port) { downstream_ = port; }

    // Upper side: requests travelling down.
    bool can_accept(const mem_request& request) const override;
    void accept(const mem_request& request) override;

    /// Warming is transparent to the bus: no tags, no state to warm.
    warm_result warm_access(const warm_request& request) override
    {
        return downstream_ != nullptr ? downstream_->warm_access(request)
                                      : warm_result{};
    }

    // Lower side: responses travelling up.
    void respond(const mem_response& response) override;

    void tick(cycle_t now) override;
    cycle_t next_event(cycle_t now) const override;
    std::uint64_t state_digest() const override;

    const counter_set& counters() const { return counters_; }
    bool quiescent() const { return down_.empty() && up_.empty(); }

    /// Checkpoint hooks (quiescent-only; hier::system owns the section).
    void save_state(ckpt::writer& w) const override;
    void load_state(ckpt::reader& r) override;

    template <class Ar> void serialize(Ar& ar)
    {
        ar.counters(counters_);
        ar(down_free_at_);
        ar(up_free_at_);
    }

private:
    cycle_t transfer_cycles(std::uint32_t bytes) const
    {
        const std::uint32_t b = bytes == 0 ? 1 : bytes;
        return (b + config_.width_bytes - 1) / config_.width_bytes;
    }

    bus_config config_;
    mem_client* upstream_ = nullptr;
    mem_port* downstream_ = nullptr;
    counter_set counters_;
    counter_set::handle h_down_transfers_ = 0;
    counter_set::handle h_down_stall_ = 0;
    counter_set::handle h_up_transfers_ = 0;
    sim::timed_queue<mem_request> down_;
    sim::timed_queue<mem_response> up_;
    cycle_t down_free_at_ = 0;
    cycle_t up_free_at_ = 0;
};

} // namespace lnuca::mem
