#include "src/mem/mshr.h"

#include "src/common/ring_queue.h" // pow2_at_least

#include <algorithm>
#include <stdexcept>

namespace lnuca::mem {

namespace {

std::uint64_t mix_addr(addr_t block_addr)
{
    std::uint64_t h = block_addr;
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    return h;
}

} // namespace

mshr_file::mshr_file(std::uint32_t entries, std::uint32_t max_targets)
    : capacity_(entries),
      max_targets_(max_targets),
      target_stride_(std::max(1u, max_targets))
{
    if (entries == 0)
        throw std::invalid_argument("mshr_file needs at least one entry");
    slab_.resize(entries);
    target_pool_.resize(std::size_t(entries) * target_stride_);
    free_.reserve(entries);
    for (std::uint32_t i = 0; i < entries; ++i)
        free_.push_back(entries - 1 - i); // pop_back hands out slot 0 first
    table_.assign(pow2_at_least(std::size_t(entries) * 2), 0);
}

std::size_t mshr_file::home_bucket(addr_t block_addr) const
{
    return std::size_t(mix_addr(block_addr)) & (table_.size() - 1);
}

std::int32_t mshr_file::find_slot(addr_t block_addr) const
{
    const std::size_t mask = table_.size() - 1;
    std::size_t b = home_bucket(block_addr);
    while (table_[b] != 0) {
        const std::uint32_t slot = table_[b] - 1;
        if (slab_[slot].block_addr == block_addr)
            return std::int32_t(slot);
        b = (b + 1) & mask;
    }
    return -1;
}

void mshr_file::index_insert(addr_t block_addr, std::uint32_t slot)
{
    const std::size_t mask = table_.size() - 1;
    std::size_t b = home_bucket(block_addr);
    while (table_[b] != 0)
        b = (b + 1) & mask;
    table_[b] = slot + 1;
}

void mshr_file::index_erase(addr_t block_addr)
{
    const std::size_t mask = table_.size() - 1;
    std::size_t i = home_bucket(block_addr);
    while (table_[i] != 0 && slab_[table_[i] - 1].block_addr != block_addr)
        i = (i + 1) & mask;
    if (table_[i] == 0)
        return; // not present (release of an absent block is a no-op)

    // Classic linear-probe backward shift: close the hole without leaving
    // a tombstone, keeping every remaining key reachable from its home.
    table_[i] = 0;
    std::size_t j = i;
    for (;;) {
        j = (j + 1) & mask;
        if (table_[j] == 0)
            return;
        const std::size_t home = home_bucket(slab_[table_[j] - 1].block_addr);
        // Move table_[j] into the hole unless its home lies in (i, j].
        const bool cyclically_between =
            i <= j ? (i < home && home <= j)
                   : (i < home || home <= j);
        if (!cyclically_between) {
            table_[i] = table_[j];
            table_[j] = 0;
            i = j;
        }
    }
}

mshr_entry* mshr_file::find(addr_t block_addr)
{
    const std::int32_t slot = find_slot(block_addr);
    return slot < 0 ? nullptr : &slab_[std::size_t(slot)];
}

const mshr_entry* mshr_file::find(addr_t block_addr) const
{
    const std::int32_t slot = find_slot(block_addr);
    return slot < 0 ? nullptr : &slab_[std::size_t(slot)];
}

bool mshr_file::can_merge(addr_t block_addr) const
{
    const mshr_entry* e = find(block_addr);
    return e != nullptr && e->target_count < max_targets_;
}

mshr_entry& mshr_file::allocate(addr_t block_addr, cycle_t now)
{
    if (free_.empty())
        throw std::logic_error("mshr_file::allocate without can_allocate");
    const std::uint32_t slot = free_.back();
    free_.pop_back();

    mshr_entry& e = slab_[slot];
    e.block_addr = block_addr;
    e.issued = false;
    e.for_write = false;
    e.allocated_at = now;
    e.target_count = 0;

    // Tail of the live list: allocation order.
    e.prev_live = tail_live_;
    e.next_live = -1;
    if (tail_live_ != -1)
        slab_[std::size_t(tail_live_)].next_live = std::int32_t(slot);
    else
        head_live_ = std::int32_t(slot);
    tail_live_ = std::int32_t(slot);

    // Tail of the unissued FIFO.
    e.prev_unissued = tail_unissued_;
    e.next_unissued = -1;
    if (tail_unissued_ != -1)
        slab_[std::size_t(tail_unissued_)].next_unissued = std::int32_t(slot);
    else
        head_unissued_ = std::int32_t(slot);
    tail_unissued_ = std::int32_t(slot);

    index_insert(block_addr, slot);
    return e;
}

void mshr_file::add_target(mshr_entry& entry, const mshr_target& target)
{
    if (entry.target_count >= target_stride_)
        throw std::logic_error("mshr entry target overflow");
    target_pool_[std::size_t(slot_of(entry)) * target_stride_ +
                 entry.target_count] = target;
    ++entry.target_count;
}

const mshr_target* mshr_file::targets(const mshr_entry& entry) const
{
    return target_pool_.data() + std::size_t(slot_of(entry)) * target_stride_;
}

bool mshr_file::merge(addr_t block_addr, const mshr_target& target)
{
    mshr_entry* e = find(block_addr);
    if (e == nullptr || e->target_count >= max_targets_)
        return false;
    add_target(*e, target);
    return true;
}

void mshr_file::mark_issued(mshr_entry& entry)
{
    if (entry.issued)
        return;
    entry.issued = true;
    if (entry.prev_unissued != -1)
        slab_[std::size_t(entry.prev_unissued)].next_unissued =
            entry.next_unissued;
    else
        head_unissued_ = entry.next_unissued;
    if (entry.next_unissued != -1)
        slab_[std::size_t(entry.next_unissued)].prev_unissued =
            entry.prev_unissued;
    else
        tail_unissued_ = entry.prev_unissued;
    entry.prev_unissued = -1;
    entry.next_unissued = -1;
}

mshr_file::released_entry mshr_file::release(addr_t block_addr)
{
    const std::int32_t sslot = find_slot(block_addr);
    if (sslot < 0)
        return {};
    const std::uint32_t slot = std::uint32_t(sslot);
    mshr_entry& e = slab_[slot];

    released_entry out;
    out.valid = true;
    out.block_addr = e.block_addr;
    out.issued = e.issued;
    out.allocated_at = e.allocated_at;
    out.targets = target_pool_.data() + std::size_t(slot) * target_stride_;
    out.target_count = e.target_count;

    // Unlink from the live list.
    if (e.prev_live != -1)
        slab_[std::size_t(e.prev_live)].next_live = e.next_live;
    else
        head_live_ = e.next_live;
    if (e.next_live != -1)
        slab_[std::size_t(e.next_live)].prev_live = e.prev_live;
    else
        tail_live_ = e.prev_live;

    // Unlink from the unissued FIFO if still queued.
    if (!e.issued)
        mark_issued(e); // reuses the unlink; issued flag dies with the entry

    index_erase(block_addr);
    e = mshr_entry{};
    free_.push_back(slot);
    return out;
}

mshr_entry* mshr_file::first_unissued()
{
    return head_unissued_ == -1 ? nullptr : &slab_[std::size_t(head_unissued_)];
}

mshr_entry* mshr_file::next_unissued(const mshr_entry& entry)
{
    return entry.next_unissued == -1 ? nullptr
                                     : &slab_[std::size_t(entry.next_unissued)];
}

mshr_entry* mshr_file::first_live()
{
    return head_live_ == -1 ? nullptr : &slab_[std::size_t(head_live_)];
}

mshr_entry* mshr_file::next_live(const mshr_entry& entry)
{
    return entry.next_live == -1 ? nullptr : &slab_[std::size_t(entry.next_live)];
}

const mshr_entry* mshr_file::first_live() const
{
    return head_live_ == -1 ? nullptr : &slab_[std::size_t(head_live_)];
}

const mshr_entry* mshr_file::next_live(const mshr_entry& entry) const
{
    return entry.next_live == -1 ? nullptr : &slab_[std::size_t(entry.next_live)];
}

} // namespace lnuca::mem
