#include "src/mem/mshr.h"

namespace lnuca::mem {

mshr_entry* mshr_file::find(addr_t block_addr)
{
    for (auto& e : entries_)
        if (e.block_addr == block_addr)
            return &e;
    return nullptr;
}

const mshr_entry* mshr_file::find(addr_t block_addr) const
{
    for (const auto& e : entries_)
        if (e.block_addr == block_addr)
            return &e;
    return nullptr;
}

bool mshr_file::can_merge(addr_t block_addr) const
{
    const mshr_entry* e = find(block_addr);
    return e != nullptr && e->targets.size() < max_targets_;
}

mshr_entry& mshr_file::allocate(addr_t block_addr, cycle_t now)
{
    entries_.push_back(mshr_entry{block_addr, false, now, {}});
    return entries_.back();
}

void mshr_file::merge(addr_t block_addr, const mshr_target& target)
{
    mshr_entry* e = find(block_addr);
    e->targets.push_back(target);
}

std::optional<mshr_entry> mshr_file::release(addr_t block_addr)
{
    for (std::size_t i = 0; i < entries_.size(); ++i) {
        if (entries_[i].block_addr == block_addr) {
            mshr_entry out = std::move(entries_[i]);
            entries_.erase(entries_.begin() + std::ptrdiff_t(i));
            return out;
        }
    }
    return std::nullopt;
}

bool mshr_file::any_unissued() const
{
    for (const auto& e : entries_)
        if (!e.issued)
            return true;
    return false;
}

std::vector<mshr_entry*> mshr_file::unissued()
{
    std::vector<mshr_entry*> out;
    for (auto& e : entries_)
        if (!e.issued)
            out.push_back(&e);
    return out;
}

} // namespace lnuca::mem
