#include "src/mem/bus.h"

#include "src/ckpt/archive.h"

#include <algorithm>

namespace lnuca::mem {

bool bus::can_accept(const mem_request&) const
{
    return down_.size() < 16;
}

void bus::accept(const mem_request& request)
{
    down_.push(request.created_at + config_.arbitration, request);
}

void bus::respond(const mem_response& response)
{
    up_.push(response.ready_at + config_.arbitration, response);
}

cycle_t bus::next_event(cycle_t now) const
{
    // Each channel acts when its earliest queued transfer matures; the
    // free_at gates may defer that further, but waking early is merely a
    // no-op tick (pop_ready still fails or the channel stays busy).
    (void)now;
    return std::min(down_.next_ready(), up_.next_ready());
}

std::uint64_t bus::state_digest() const
{
    sim::state_hash h;
    h.mix(counters_.digest());
    h.mix(down_.size());
    h.mix(down_.next_ready());
    h.mix(up_.size());
    h.mix(up_.next_ready());
    h.mix(down_free_at_);
    h.mix(up_free_at_);
    return h.value();
}

void bus::tick(cycle_t now)
{
    // Downward channel: one request wins arbitration per transfer slot.
    // Reads are address-only; writes stream their payload.
    if (down_free_at_ <= now) {
        if (auto request = down_.pop_ready(now)) {
            mem_request forwarded = *request;
            forwarded.created_at = now; // offered to the target *now*
            if (downstream_ != nullptr && downstream_->can_accept(forwarded)) {
                downstream_->accept(forwarded);
                down_free_at_ =
                    now + (request->kind == access_kind::read
                               ? 1
                               : transfer_cycles(request->size));
                counters_.inc(h_down_transfers_);
            } else {
                down_.push(now + 1, *request); // target busy: retry
                counters_.inc(h_down_stall_);
            }
        }
    }
    // Upward channel: responses stream a block over the narrow wires.
    if (up_free_at_ <= now) {
        if (auto response = up_.pop_ready(now)) {
            const cycle_t transfer = transfer_cycles(config_.response_bytes);
            if (upstream_ != nullptr) {
                mem_response forwarded = *response;
                forwarded.ready_at = now + transfer - 1;
                upstream_->respond(forwarded);
            }
            up_free_at_ = now + transfer;
            counters_.inc(h_up_transfers_);
        }
    }
}

void bus::save_state(ckpt::writer& w) const
{
    if (!quiescent())
        throw ckpt::ckpt_error("bus: checkpoint requested while not quiescent");
    ckpt::saver ar(w);
    const_cast<bus*>(this)->serialize(ar);
}

void bus::load_state(ckpt::reader& r)
{
    ckpt::loader ar(r);
    serialize(ar);
}

} // namespace lnuca::mem
