// Set-associative tag array: the functional core of every cache in the
// simulator (L1, L2, L3, L-NUCA tiles, D-NUCA banks).
#pragma once

#include "src/common/types.h"
#include "src/mem/replacement.h"

#include <optional>
#include <vector>

namespace lnuca::mem {

struct cache_line {
    addr_t tag = no_addr; ///< block-aligned address (full address, not shifted)
    bool valid = false;
    bool dirty = false;
    /// MESI write permission (coherent private caches): E or M. A dirty
    /// line is always exclusive. Non-coherent caches never read it.
    bool exclusive = false;

    template <class Ar> void serialize(Ar& ar)
    {
        ar(tag);
        ar(valid);
        ar(dirty);
        ar(exclusive);
    }
};

struct tag_array_config {
    std::uint64_t size_bytes = 32_KiB;
    std::uint32_t ways = 4;
    std::uint32_t block_bytes = 32;
    std::string policy = "lru";
    std::uint64_t seed = 0x5eed;
};

/// Result of a lookup that hit.
struct hit_info {
    std::uint32_t set = 0;
    std::uint32_t way = 0;
    bool was_dirty = false;
};

/// A line displaced by an install.
struct evicted_line {
    addr_t block_addr = no_addr;
    bool dirty = false;
};

class tag_array {
public:
    explicit tag_array(const tag_array_config& config);

    std::uint32_t sets() const { return sets_; }
    std::uint32_t ways() const { return ways_; }
    std::uint32_t block_bytes() const { return block_bytes_; }
    std::uint64_t size_bytes() const
    {
        return std::uint64_t(sets_) * ways_ * block_bytes_;
    }

    /// Block-align an address to this array's block size.
    addr_t block_of(addr_t addr) const { return addr & ~addr_t(block_bytes_ - 1); }

    std::uint32_t set_of(addr_t addr) const
    {
        return std::uint32_t((addr / block_bytes_) & (sets_ - 1));
    }

    /// Probe without changing recency state.
    std::optional<hit_info> probe(addr_t addr) const;

    /// Probe and, on hit, update recency.
    std::optional<hit_info> lookup(addr_t addr);

    /// Mark an existing line dirty (store hit on a copy-back cache).
    void set_dirty(addr_t addr, bool dirty);

    /// MESI permission bit of an existing line (coherent caches only).
    void set_exclusive(addr_t addr, bool exclusive);
    bool is_exclusive(addr_t addr) const;

    /// Install the block containing `addr`. If the set is full, the policy's
    /// victim is displaced and returned. Installing a block that is already
    /// present refreshes its recency instead of duplicating it.
    std::optional<evicted_line> install(addr_t addr, bool dirty);

    /// True iff the set containing `addr` has a free (invalid) way.
    bool set_has_free_way(addr_t addr) const;

    /// Remove the block containing `addr` if present; returns the line so
    /// callers can propagate dirtiness (exclusion migrations, invalidations).
    std::optional<evicted_line> extract(addr_t addr);

    /// Evict the replacement-policy victim of the set containing `addr`
    /// without installing anything (the L-NUCA domino reads the victim one
    /// cycle before writing the incoming block). Requires a full set.
    evicted_line evict_victim(addr_t addr);

    /// Read a line by geometry position (introspection for tests/examples).
    const cache_line& line(std::uint32_t set, std::uint32_t way) const
    {
        return lines_[std::size_t(set) * ways_ + way];
    }

    /// Number of valid lines (occupancy metrics).
    std::uint64_t valid_count() const;

    /// Checkpoint support: lines + recency state. Geometry is config.
    template <class Ar> void serialize(Ar& ar)
    {
        ar(lines_);
        ar(policy_);
    }

private:
    cache_line& line_ref(std::uint32_t set, std::uint32_t way)
    {
        return lines_[std::size_t(set) * ways_ + way];
    }

    std::uint32_t sets_;
    std::uint32_t ways_;
    std::uint32_t block_bytes_;
    std::vector<cache_line> lines_;
    replacement_policy policy_; ///< value type: LRU touch/victim inline here
};

} // namespace lnuca::mem
