// Replacement policies for set-associative arrays.
//
// The policy owns per-set recency state; the tag array calls it on every
// touch/install and asks it for victims. All caches in the paper use LRU;
// random and FIFO are provided for the ablation benches.
#pragma once

#include "src/common/rng.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace lnuca::mem {

class replacement_policy {
public:
    virtual ~replacement_policy() = default;

    /// Called once: `sets` x `ways` geometry.
    virtual void resize(std::uint32_t sets, std::uint32_t ways) = 0;

    /// A way in `set` was accessed (hit or fill).
    virtual void touch(std::uint32_t set, std::uint32_t way) = 0;

    /// Choose the way to evict from `set` (all ways valid).
    virtual std::uint32_t victim(std::uint32_t set) = 0;

    virtual std::string name() const = 0;
};

/// True LRU via per-set recency stamps.
class lru_policy final : public replacement_policy {
public:
    void resize(std::uint32_t sets, std::uint32_t ways) override;
    void touch(std::uint32_t set, std::uint32_t way) override;
    std::uint32_t victim(std::uint32_t set) override;
    std::string name() const override { return "lru"; }

private:
    std::uint32_t ways_ = 0;
    std::uint64_t stamp_ = 0;
    std::vector<std::uint64_t> last_use_; // sets x ways
};

/// Uniform-random victim.
class random_policy final : public replacement_policy {
public:
    explicit random_policy(std::uint64_t seed = 0x5eed) : rng_(seed) {}

    void resize(std::uint32_t sets, std::uint32_t ways) override;
    void touch(std::uint32_t, std::uint32_t) override {}
    std::uint32_t victim(std::uint32_t set) override;
    std::string name() const override { return "random"; }

private:
    std::uint32_t ways_ = 0;
    rng rng_;
};

/// FIFO: evicts in fill order, ignores hits.
class fifo_policy final : public replacement_policy {
public:
    void resize(std::uint32_t sets, std::uint32_t ways) override;
    void touch(std::uint32_t, std::uint32_t) override {}
    std::uint32_t victim(std::uint32_t set) override;
    std::string name() const override { return "fifo"; }

private:
    std::uint32_t ways_ = 0;
    std::vector<std::uint32_t> next_; // per-set round-robin pointer
};

/// Factory by name ("lru" | "random" | "fifo").
std::unique_ptr<replacement_policy> make_replacement_policy(const std::string& name,
                                                            std::uint64_t seed = 0x5eed);

} // namespace lnuca::mem
