// Replacement policies for set-associative arrays.
//
// The policy owns per-set recency state; the tag array calls it on every
// touch/install and asks it for victims. All caches in the paper use LRU;
// random and FIFO are provided for the ablation benches.
//
// The policies are concrete value types dispatched through a tagged
// std::variant rather than virtual calls: touch()/victim() sit on every
// cache access of every tile and bank, and the variant lets the LRU fast
// path inline straight into tag_array::lookup/install instead of paying an
// indirect call per access.
#pragma once

#include "src/common/rng.h"

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

namespace lnuca::mem {

/// True LRU via per-set recency stamps.
class lru_policy {
public:
    void resize(std::uint32_t sets, std::uint32_t ways);
    void touch(std::uint32_t set, std::uint32_t way)
    {
        last_use_[std::size_t(set) * ways_ + way] = ++stamp_;
    }
    std::uint32_t victim(std::uint32_t set);
    std::string name() const { return "lru"; }

    template <class Ar> void serialize(Ar& ar)
    {
        ar(stamp_);
        ar(last_use_);
    }

private:
    std::uint32_t ways_ = 0;
    std::uint64_t stamp_ = 0;
    std::vector<std::uint64_t> last_use_; // sets x ways
};

/// Uniform-random victim.
class random_policy {
public:
    explicit random_policy(std::uint64_t seed = 0x5eed) : rng_(seed) {}

    void resize(std::uint32_t sets, std::uint32_t ways);
    void touch(std::uint32_t, std::uint32_t) {}
    std::uint32_t victim(std::uint32_t set);
    std::string name() const { return "random"; }

    template <class Ar> void serialize(Ar& ar) { ar(rng_); }

private:
    std::uint32_t ways_ = 0;
    rng rng_;
};

/// FIFO: evicts in fill order, ignores hits.
class fifo_policy {
public:
    void resize(std::uint32_t sets, std::uint32_t ways);
    void touch(std::uint32_t, std::uint32_t) {}
    std::uint32_t victim(std::uint32_t set);
    std::string name() const { return "fifo"; }

    template <class Ar> void serialize(Ar& ar) { ar(next_); }

private:
    std::uint32_t ways_ = 0;
    std::vector<std::uint32_t> next_; // per-set round-robin pointer
};

/// Tagged-dispatch wrapper: the devirtualized replacement for the old
/// abstract base. LRU (the common case, checked first) inlines; the other
/// policies go through one variant visit.
class replacement_policy {
public:
    replacement_policy() : impl_(lru_policy{}) {}
    explicit replacement_policy(lru_policy p) : impl_(std::move(p)) {}
    explicit replacement_policy(random_policy p) : impl_(std::move(p)) {}
    explicit replacement_policy(fifo_policy p) : impl_(std::move(p)) {}

    void resize(std::uint32_t sets, std::uint32_t ways)
    {
        std::visit([&](auto& p) { p.resize(sets, ways); }, impl_);
    }

    void touch(std::uint32_t set, std::uint32_t way)
    {
        if (auto* lru = std::get_if<lru_policy>(&impl_)) {
            lru->touch(set, way);
            return;
        }
        std::visit([&](auto& p) { p.touch(set, way); }, impl_);
    }

    std::uint32_t victim(std::uint32_t set)
    {
        if (auto* lru = std::get_if<lru_policy>(&impl_))
            return lru->victim(set);
        return std::visit([&](auto& p) { return p.victim(set); }, impl_);
    }

    std::string name() const
    {
        return std::visit([](const auto& p) { return p.name(); }, impl_);
    }

    /// Checkpoint support: the active alternative is fixed by configuration
    /// (same config on save and restore), so only its recency state needs
    /// to round-trip - never the variant tag.
    template <class Ar> void serialize(Ar& ar)
    {
        std::visit([&](auto& p) { p.serialize(ar); }, impl_);
    }

private:
    std::variant<lru_policy, random_policy, fifo_policy> impl_;
};

/// Factory by name ("lru" | "random" | "fifo").
replacement_policy make_replacement_policy(const std::string& name,
                                           std::uint64_t seed = 0x5eed);

} // namespace lnuca::mem
