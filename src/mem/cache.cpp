#include "src/mem/cache.h"

#include "src/ckpt/archive.h"
#include "src/common/log.h"

#include <algorithm>

namespace lnuca::mem {

conventional_cache::conventional_cache(const cache_config& config, txn_id_source& ids)
    : config_(config),
      ids_(ids),
      tags_({config.size_bytes, config.ways, config.block_bytes, config.policy,
             config.seed}),
      mshrs_(config.mshr_entries, config.mshr_secondary),
      wb_(config.write_buffer_entries, config.block_bytes),
      port_free_(std::size_t(config.ports) * std::max(1u, config.banks), 0)
{
    counters_.preregister(
        {"accesses", "reads", "writes", "read_hit", "write_hit", "read_miss",
         "write_miss", "wb_hit", "mshr_merge", "mshr_secondary_stall",
         "mshr_full_stall", "miss_issued", "fills", "evictions",
         "writeback_in", "writeback_out", "write_through_out", "wb_drained",
         "wb_full_stall", "refill_wb_stall", "untracked_response",
         "upgrade_miss", "snoop_inv", "snoop_inv_dirty", "snoop_downgrade",
         "snoop_retry"});
    h_accesses_ = counters_.handle_of("accesses");
    h_reads_ = counters_.handle_of("reads");
    h_writes_ = counters_.handle_of("writes");
    h_read_hit_ = counters_.handle_of("read_hit");
    h_write_hit_ = counters_.handle_of("write_hit");
    h_wb_hit_ = counters_.handle_of("wb_hit");
    h_read_miss_ = counters_.handle_of("read_miss");
    h_write_miss_ = counters_.handle_of("write_miss");
    h_mshr_merge_ = counters_.handle_of("mshr_merge");
    h_mshr_secondary_stall_ = counters_.handle_of("mshr_secondary_stall");
    h_mshr_full_stall_ = counters_.handle_of("mshr_full_stall");
    h_miss_issued_ = counters_.handle_of("miss_issued");
    h_fills_ = counters_.handle_of("fills");
    h_evictions_ = counters_.handle_of("evictions");
    h_writeback_in_ = counters_.handle_of("writeback_in");
    h_writeback_out_ = counters_.handle_of("writeback_out");
    h_write_through_out_ = counters_.handle_of("write_through_out");
    h_wb_drained_ = counters_.handle_of("wb_drained");
    h_wb_full_stall_ = counters_.handle_of("wb_full_stall");
    h_refill_wb_stall_ = counters_.handle_of("refill_wb_stall");
    h_untracked_response_ = counters_.handle_of("untracked_response");
    h_upgrade_miss_ = counters_.handle_of("upgrade_miss");
    h_snoop_inv_ = counters_.handle_of("snoop_inv");
    h_snoop_inv_dirty_ = counters_.handle_of("snoop_inv_dirty");
    h_snoop_downgrade_ = counters_.handle_of("snoop_downgrade");
    h_snoop_retry_ = counters_.handle_of("snoop_retry");
    // Pre-size the hot-path queues so steady-state ticks never allocate.
    input_writes_.reserve(config.write_buffer_entries);
    lookups_.reserve(std::size_t(config.write_buffer_entries) +
                     config.mshr_entries + 8);
    refills_.reserve(config.mshr_entries + 8);
    if (config.coherent)
        pending_fill_blocks_.reserve(config.mshr_entries + 8);
}

std::size_t conventional_cache::bank_of(addr_t addr) const
{
    if (config_.banks <= 1)
        return 0;
    return std::size_t((addr / config_.block_bytes) % config_.banks);
}

bool conventional_cache::can_accept(const mem_request& request) const
{
    // Writes and writebacks wait in the input write buffer and never
    // compete with demand reads for a port on arrival.
    if (request.kind != access_kind::read)
        return input_writes_.size() < config_.write_buffer_entries;
    // High watermark: once the write buffer is nearly full, reads yield the
    // port so buffered writes cannot be starved indefinitely.
    if (input_writes_.size() + 2 >= config_.write_buffer_entries)
        return false;
    const std::size_t bank = bank_of(request.addr);
    for (std::uint32_t p = 0; p < config_.ports; ++p)
        if (port_free_[bank * config_.ports + p] <= request.created_at)
            return true;
    return false;
}

void conventional_cache::accept(const mem_request& request)
{
    counters_.inc(h_accesses_);
    if (request.kind != access_kind::read) {
        input_writes_.push_back(pending_access{request, request.needs_response,
                                               false});
        return;
    }
    const cycle_t start = request.created_at;
    // Claim the first free port of the addressed bank (checked above).
    const std::size_t bank = bank_of(request.addr);
    for (std::uint32_t p = 0; p < config_.ports; ++p) {
        cycle_t& free_at = port_free_[bank * config_.ports + p];
        if (free_at <= start) {
            free_at = start + config_.initiation_interval;
            break;
        }
    }
    const cycle_t done = start + config_.completion_latency;
    lookups_.push(done > 0 ? done - 1 : 0,
                  pending_access{request, request.needs_response, false});
}

void conventional_cache::respond(const mem_response& response)
{
    refills_.push(response.ready_at, response);
    if (config_.coherent)
        pending_fill_blocks_.push_back(tags_.block_of(response.addr));
}

bool conventional_cache::pending_fill(addr_t block) const
{
    for (const addr_t b : pending_fill_blocks_)
        if (b == block)
            return true;
    return false;
}

void conventional_cache::pending_fill_remove(addr_t block)
{
    for (std::size_t i = 0; i < pending_fill_blocks_.size(); ++i) {
        if (pending_fill_blocks_[i] == block) {
            pending_fill_blocks_[i] = pending_fill_blocks_.back();
            pending_fill_blocks_.pop_back();
            return;
        }
    }
}

cycle_t conventional_cache::next_event(cycle_t now) const
{
    // Retry loops run every cycle until they drain: buffered input writes
    // wait for an idle port, unissued misses and the write-buffer head poll
    // the downstream level. Any of them makes the cache immediately busy.
    if (!input_writes_.empty() || !wb_.empty() || mshrs_.any_unissued())
        return now;
    // Otherwise the only future work is time-stamped: finishing lookups and
    // arriving refills.
    return std::min(lookups_.next_ready(), refills_.next_ready());
}

std::uint64_t conventional_cache::state_digest() const
{
    sim::state_hash h;
    h.mix(counters_.digest());
    h.mix(lookups_.size());
    h.mix(lookups_.next_ready());
    h.mix(refills_.size());
    h.mix(refills_.next_ready());
    h.mix(input_writes_.size());
    h.mix(wb_.size());
    h.mix(mshrs_.in_use());
    h.mix(mshrs_.any_unissued());
    for (const cycle_t free_at : port_free_)
        h.mix(free_at);
    return h.value();
}

void conventional_cache::tick(cycle_t now)
{
    now_ = now;
    warm_state_stale_ = true;
    while (auto access = lookups_.pop_ready(now))
        process_lookup(now, *access);
    drain_input_writes(now);
    process_refills(now);
    issue_misses(now);
    drain_write_buffer(now);
}

void conventional_cache::drain_input_writes(cycle_t now)
{
    // Absorb buffered writes through idle ports of their target banks.
    std::size_t scanned = input_writes_.size();
    while (scanned-- > 0 && !input_writes_.empty()) {
        const pending_access access = input_writes_.front();
        const std::size_t bank = bank_of(access.request.addr);
        bool claimed = false;
        for (std::uint32_t p = 0; p < config_.ports && !claimed; ++p) {
            cycle_t& free_at = port_free_[bank * config_.ports + p];
            if (free_at <= now) {
                free_at = now + config_.initiation_interval;
                claimed = true;
            }
        }
        if (!claimed)
            return; // head-of-line waits for its bank
        input_writes_.pop_front();
        const cycle_t done = now + config_.completion_latency;
        lookups_.push(done > 0 ? done - 1 : 0, access);
    }
}

void conventional_cache::process_lookup(cycle_t now, pending_access access)
{
    switch (access.request.kind) {
    case access_kind::read:
        handle_read_like(now, access);
        break;
    case access_kind::write:
        if (config_.write_through || !config_.write_allocate)
            handle_write_through_store(now, access);
        else
            handle_read_like(now, access); // copy-back write-allocate
        break;
    case access_kind::writeback:
        handle_incoming_writeback(now, access);
        break;
    }
}

void conventional_cache::handle_read_like(cycle_t now, pending_access access)
{
    const mem_request& req = access.request;
    const bool is_write = req.kind == access_kind::write;
    if (!access.counted) {
        counters_.inc(is_write ? h_writes_ : h_reads_);
        access.counted = true;
    }

    // Snoop both write buffers: a matching entry means the data is present
    // on this side of the downstream interface.
    bool buffered = !is_write && wb_.contains(req.addr);
    if (!is_write && !buffered) {
        const addr_t block = tags_.block_of(req.addr);
        for (const auto& w : input_writes_)
            if (tags_.block_of(w.request.addr) == block) {
                buffered = true;
                break;
            }
    }
    if (buffered) {
        counters_.inc(h_wb_hit_);
        counters_.inc(h_read_hit_);
        if (access.needs_response)
            respond_up(now, {req.id, req.addr, req.kind, req.created_at},
                       config_.level_tag, 0);
        return;
    }

    if (tags_.lookup(req.addr)) {
        // MESI: a store may only dirty a line it holds with write
        // permission (E/M). A hit on a Shared line falls through to the
        // miss path as an upgrade (read-for-ownership without data need).
        const bool upgrade = is_write && config_.coherent &&
                             !tags_.is_exclusive(req.addr);
        if (!upgrade) {
            counters_.inc(is_write ? h_write_hit_ : h_read_hit_);
            if (is_write)
                tags_.set_dirty(req.addr, true);
            if (access.needs_response)
                respond_up(now, {req.id, req.addr, req.kind, req.created_at},
                           config_.level_tag, 0);
            return;
        }
        counters_.inc(h_upgrade_miss_);
    }

    counters_.inc(is_write ? h_write_miss_ : h_read_miss_);
    const addr_t block = tags_.block_of(req.addr);
    const mshr_target target{req.id, req.addr, req.kind, req.created_at};
    if (mshr_entry* entry = mshrs_.find(block)) {
        // A write may not piggyback on a plain read already sent
        // downstream: the fill would arrive without ownership. Wait for
        // the entry to release, then miss again as an RFO.
        if (config_.coherent && is_write && entry->issued &&
            !entry->for_write) {
            counters_.inc(h_mshr_secondary_stall_);
            lookups_.push(now + 1, access);
            return;
        }
        if (entry->target_count < config_.mshr_secondary) {
            counters_.inc(h_mshr_merge_);
            entry->for_write = entry->for_write || is_write;
            if (access.needs_response)
                mshrs_.add_target(*entry, target);
            return;
        }
        counters_.inc(h_mshr_secondary_stall_);
        lookups_.push(now + 1, access); // retry until a target slot frees
        return;
    }
    if (!mshrs_.can_allocate()) {
        counters_.inc(h_mshr_full_stall_);
        lookups_.push(now + 1, access);
        return;
    }
    auto& entry = mshrs_.allocate(block, now);
    entry.for_write = is_write;
    if (access.needs_response)
        mshrs_.add_target(entry, target);
}

void conventional_cache::handle_write_through_store(cycle_t now,
                                                    pending_access access)
{
    const mem_request& req = access.request;
    if (!access.counted) {
        counters_.inc(h_writes_);
        access.counted = true;
    }
    if (tags_.lookup(req.addr)) {
        counters_.inc(h_write_hit_);
        if (!config_.write_through) {
            // Copy-back no-write-allocate (the r-tile): a store hit dirties
            // the line in place and produces no downstream traffic.
            tags_.set_dirty(req.addr, true);
            if (access.needs_response)
                respond_up(now, {req.id, req.addr, req.kind, req.created_at},
                           config_.level_tag, 0);
            return;
        }
        // Write-through: line updated in place, stays clean; fall through
        // to forward the word downstream.
    } else {
        counters_.inc(h_write_miss_); // no allocation on either policy
    }

    if (!wb_.push(req.addr, /*writeback=*/false, /*dirty=*/false)) {
        counters_.inc(h_wb_full_stall_);
        lookups_.push(now + 1, access);
        return;
    }
    counters_.inc(h_write_through_out_);
    if (access.needs_response)
        respond_up(now, {req.id, req.addr, req.kind, req.created_at},
                   config_.level_tag, 0);
}

void conventional_cache::handle_incoming_writeback(cycle_t now,
                                                   const pending_access& access)
{
    const mem_request& req = access.request;
    counters_.inc(h_writeback_in_);

    // Full block arrives from above: install without fetch. Hold off when
    // a displaced victim could not be buffered.
    if (!tags_.set_has_free_way(req.addr) && !tags_.probe(req.addr) && wb_.full()) {
        counters_.inc(h_refill_wb_stall_);
        lookups_.push(now + 1, access);
        return;
    }
    if (auto victim = tags_.install(req.addr, req.dirty))
        queue_victim(now, *victim);
}

void conventional_cache::issue_misses(cycle_t now)
{
    for (mshr_entry* entry = mshrs_.first_unissued(); entry != nullptr;) {
        if (downstream_ == nullptr) {
            LNUCA_ERROR(config_.name, ": miss with no downstream level");
            mshr_entry* next = mshrs_.next_unissued(*entry);
            mshrs_.mark_issued(*entry);
            entry = next;
            continue;
        }
        mem_request miss;
        miss.id = ids_.next();
        miss.addr = entry->block_addr;
        miss.size = config_.block_bytes;
        miss.kind = access_kind::read;
        miss.created_at = now;
        miss.needs_response = true;
        miss.core = config_.core_id;
        miss.exclusive = config_.coherent && entry->for_write;
        if (!downstream_->can_accept(miss))
            break; // retry next cycle, preserve order
        downstream_->accept(miss);
        mshrs_.mark_issued(*entry);
        counters_.inc(h_miss_issued_);
        break; // one new miss per cycle
    }
}

void conventional_cache::drain_write_buffer(cycle_t now)
{
    const auto head = wb_.head();
    if (!head || downstream_ == nullptr)
        return;
    mem_request write;
    write.id = ids_.next();
    write.addr = *head;
    write.size = config_.block_bytes;
    write.kind = wb_.head_is_writeback() ? access_kind::writeback : access_kind::write;
    write.created_at = now;
    write.needs_response = false;
    write.dirty = wb_.head_is_dirty();
    write.core = config_.core_id;
    if (!downstream_->can_accept(write))
        return;
    downstream_->accept(write);
    wb_.pop();
    counters_.inc(h_wb_drained_);
}

void conventional_cache::process_refills(cycle_t now)
{
    for (std::uint32_t i = 0; i < config_.fills_per_cycle; ++i) {
        auto response = refills_.pop_ready(now);
        if (!response)
            return;

        const addr_t block = tags_.block_of(response->addr);
        if (config_.coherent)
            pending_fill_remove(block);

        // A displaced dirty victim needs write-buffer space; wait if full.
        if (!tags_.set_has_free_way(block) && !tags_.probe(block) && wb_.full()) {
            counters_.inc(h_refill_wb_stall_);
            refills_.push(now + 1, *response);
            if (config_.coherent)
                pending_fill_blocks_.push_back(block);
            return;
        }

        const auto entry = mshrs_.release(block);
        if (!entry) {
            // Response for a transaction we do not track (e.g. an ack for
            // drained write traffic); nothing to fill.
            counters_.inc(h_untracked_response_);
            continue;
        }

        bool fill_dirty = response->dirty;
        if (!config_.write_through)
            for (std::uint32_t t = 0; t < entry.target_count; ++t)
                fill_dirty |= entry.targets[t].kind == access_kind::write;

        if (auto victim = tags_.install(block, fill_dirty))
            queue_victim(now, *victim);
        if (config_.coherent)
            tags_.set_exclusive(block, response->exclusive || fill_dirty);
        counters_.inc(h_fills_);

        for (std::uint32_t t = 0; t < entry.target_count; ++t)
            respond_up(now, entry.targets[t], response->served_by,
                       response->fabric_level);
    }
}

void conventional_cache::respond_up(cycle_t now, const mshr_target& target,
                                    service_level origin, std::uint8_t fabric_level)
{
    if (upstream_ == nullptr)
        return;
    mem_response response;
    response.id = target.id;
    response.addr = target.addr;
    response.ready_at = now;
    response.served_by = origin;
    response.fabric_level = fabric_level;
    upstream_->respond(response);
}

void conventional_cache::queue_victim(cycle_t now, const evicted_line& victim)
{
    (void)now;
    counters_.inc(h_evictions_);
    if (!victim.dirty && !config_.writeback_clean)
        return;
    counters_.inc(h_writeback_out_);
    // Capacity was checked before install; push cannot fail here.
    wb_.push(victim.block_addr, /*writeback=*/true, victim.dirty);
}

warm_result conventional_cache::warm_access(const warm_request& request)
{
    // Functional twin of process_lookup(): identical allocation, recency,
    // dirtiness and propagation decisions, zero timing state (see the
    // warm_access() contract in src/mem/request.h). Coherent caches
    // additionally mirror the MESI decisions of handle_read_like() and
    // process_refills(): upgrades on store hits to Shared lines, RFO
    // fetches on store misses, and the exclusive bit of every install.
    if (warm_state_stale_) {
        // Detailed execution ran since the last warm access: the elision
        // block may have been evicted and the real write buffer drained.
        warm_last_block_ = no_addr;
        warm_wb_.clear();
        warm_wb_pos_ = 0;
        warm_state_stale_ = false;
    }
    if (request.kind != access_kind::writeback) {
        const addr_t block = tags_.block_of(request.addr);
        if (block == warm_last_block_ && request.kind == warm_last_kind_)
            return {}; // consecutive repeat: hit on the MRU block, no-op
        warm_last_block_ = block;
        warm_last_kind_ = request.kind;
    }
    switch (request.kind) {
    case access_kind::read: {
        // Snoop order matches handle_read_like(): a write-buffer hit is
        // served without touching tag recency at all.
        if (warm_wb_contains(tags_.block_of(request.addr)))
            return {}; // write-buffer snoop hit: served, no install
        if (tags_.lookup(request.addr))
            return {}; // hit: recency refreshed, block stays put
        warm_result below;
        if (downstream_ != nullptr)
            below = downstream_->warm_access({request.addr, access_kind::read,
                                              false, false, config_.core_id});
        warm_install(request.addr, below.dirty);
        if (config_.coherent)
            // Mirror process_refills(): install E when the hub granted
            // sole ownership, M when the block migrated dirty.
            tags_.set_exclusive(request.addr, below.exclusive || below.dirty);
        return {below.dirty, false};
    }
    case access_kind::write:
        if (config_.write_through || !config_.write_allocate) {
            if (!config_.write_through && tags_.lookup(request.addr)) {
                // Copy-back no-write-allocate (the r-tile): a store hit
                // dirties in place and produces no downstream traffic.
                tags_.set_dirty(request.addr, true);
                return {};
            }
            if (config_.write_through)
                tags_.lookup(request.addr); // hit refreshes recency, stays clean
            // Write-through traffic and r-tile store misses forward below,
            // coalescing per block like the outgoing write buffer.
            const addr_t block = tags_.block_of(request.addr);
            if (downstream_ != nullptr && !warm_wb_contains(block)) {
                warm_wb_remember(block);
                downstream_->warm_access({request.addr, access_kind::write,
                                          false, false, config_.core_id});
            }
            return {};
        }
        // Copy-back write-allocate: a store miss fetches and dirties.
        if (tags_.lookup(request.addr)) {
            if (config_.coherent && !tags_.is_exclusive(request.addr)) {
                // Store hit on a Shared line: warm upgrade. The hub
                // functionally invalidates every other copy; no data moves
                // (mirrors handle_read_like()'s h_upgrade_miss_ path).
                if (downstream_ != nullptr)
                    downstream_->warm_access({request.addr, access_kind::read,
                                              false, true, config_.core_id});
                tags_.set_exclusive(request.addr, true);
            }
            tags_.set_dirty(request.addr, true);
            return {};
        }
        if (downstream_ != nullptr)
            // Coherent store miss is a read-for-ownership (mirrors
            // issue_misses(): miss.exclusive = coherent && for_write).
            downstream_->warm_access({request.addr, access_kind::read, false,
                                      config_.coherent, config_.core_id});
        warm_install(request.addr, true);
        if (config_.coherent)
            tags_.set_exclusive(request.addr, true); // RFO installs M
        return {};
    case access_kind::writeback:
        warm_install(request.addr, request.dirty);
        return {};
    }
    return {};
}

bool conventional_cache::warm_wb_contains(addr_t block) const
{
    for (const addr_t b : warm_wb_)
        if (b == block)
            return true;
    return false;
}

void conventional_cache::warm_wb_remember(addr_t block)
{
    if (warm_wb_.size() < config_.write_buffer_entries) {
        warm_wb_.push_back(block);
        return;
    }
    warm_wb_[warm_wb_pos_] = block;
    warm_wb_pos_ = (warm_wb_pos_ + 1) % warm_wb_.size();
}

void conventional_cache::warm_install(addr_t addr, bool dirty)
{
    if (auto victim = tags_.install(addr, dirty)) {
        if (downstream_ != nullptr &&
            (victim->dirty || config_.writeback_clean))
            downstream_->warm_access({victim->block_addr,
                                      access_kind::writeback, victim->dirty,
                                      false, config_.core_id});
    }
}

bool conventional_cache::quiescent() const
{
    return lookups_.empty() && refills_.empty() && mshrs_.empty() &&
           wb_.empty() && input_writes_.empty();
}

snoop_result conventional_cache::snoop_invalidate(addr_t addr)
{
    const addr_t block = tags_.block_of(addr);
    // A granted fill is on its way in: the directory already promised this
    // cache the line (possibly exclusively), so the snoop must land on the
    // installed copy, not on a stale tags entry the fill would silently
    // resurrect with E/M permission.
    if (pending_fill(block)) {
        counters_.inc(h_snoop_retry_);
        return snoop_result::retry;
    }
    if (tags_.probe(block)) {
        // Present: drop the copy. A store already queued for this block
        // simply misses afterwards and re-requests ownership.
        const auto line = tags_.extract(block);
        warm_state_stale_ = true;
        counters_.inc(h_snoop_inv_);
        if (line->dirty) {
            counters_.inc(h_snoop_inv_dirty_);
            return snoop_result::applied_dirty;
        }
        return snoop_result::applied_clean;
    }
    // A fill on its way in, or an eviction writeback on its way out: let it
    // land first (the hub re-delivers the snoop next cycle).
    if (mshrs_.find(block) != nullptr || wb_.contains(block)) {
        counters_.inc(h_snoop_retry_);
        return snoop_result::retry;
    }
    return snoop_result::not_present;
}

snoop_result conventional_cache::snoop_downgrade(addr_t addr)
{
    const addr_t block = tags_.block_of(addr);
    if (pending_fill(block)) {
        counters_.inc(h_snoop_retry_);
        return snoop_result::retry;
    }
    if (const auto hit = tags_.probe(block)) {
        const bool was_dirty = hit->was_dirty;
        tags_.set_dirty(block, false);
        tags_.set_exclusive(block, false);
        counters_.inc(h_snoop_downgrade_);
        return was_dirty ? snoop_result::applied_dirty
                         : snoop_result::applied_clean;
    }
    if (mshrs_.find(block) != nullptr || wb_.contains(block)) {
        counters_.inc(h_snoop_retry_);
        return snoop_result::retry;
    }
    return snoop_result::not_present;
}

snoop_result conventional_cache::warm_snoop_invalidate(addr_t addr)
{
    // Tags-only twin of snoop_invalidate(): the machine is quiescent, so
    // nothing is in flight and `retry` cannot occur. No counters - the warm
    // path is statistics-free by contract.
    const addr_t block = tags_.block_of(addr);
    if (block == warm_last_block_)
        warm_last_block_ = no_addr;
    if (const auto line = tags_.extract(block))
        return line->dirty ? snoop_result::applied_dirty
                           : snoop_result::applied_clean;
    return snoop_result::not_present;
}

snoop_result conventional_cache::warm_snoop_downgrade(addr_t addr)
{
    const addr_t block = tags_.block_of(addr);
    // Drop the elision cache even though the line stays resident: a later
    // warm store to this block must not be elided, or it would skip
    // re-acquiring write permission through the hub.
    if (block == warm_last_block_)
        warm_last_block_ = no_addr;
    if (const auto hit = tags_.probe(block)) {
        const bool was_dirty = hit->was_dirty;
        tags_.set_dirty(block, false);
        tags_.set_exclusive(block, false);
        return was_dirty ? snoop_result::applied_dirty
                         : snoop_result::applied_clean;
    }
    return snoop_result::not_present;
}

bool conventional_cache::holds_or_in_flight(addr_t addr) const
{
    const addr_t block = tags_.block_of(addr);
    return tags_.probe(block).has_value() || mshrs_.find(block) != nullptr ||
           wb_.contains(block);
}

void conventional_cache::save_state(ckpt::writer& w) const
{
    if (!quiescent())
        throw ckpt::ckpt_error("cache '" + config_.name +
                               "': checkpoint requested while not quiescent");
    ckpt::saver ar(w);
    const_cast<conventional_cache*>(this)->serialize(ar);
}

void conventional_cache::load_state(ckpt::reader& r)
{
    ckpt::loader ar(r);
    serialize(ar);
}

} // namespace lnuca::mem
