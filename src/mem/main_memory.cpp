#include "src/mem/main_memory.h"

#include "src/ckpt/archive.h"

#include <algorithm>

namespace lnuca::mem {

bool main_memory::can_accept(const mem_request&) const
{
    return queue_.size() < config_.queue_depth;
}

void main_memory::accept(const mem_request& request)
{
    queue_.push_back(request);
    counters_.inc(request.kind == access_kind::read ? h_reads_ : h_writes_);
}

cycle_t main_memory::unloaded_latency(std::uint32_t bytes) const
{
    const std::uint32_t chunks = chunks_for(bytes == 0 ? 1 : bytes);
    return config_.first_chunk_latency +
           cycle_t(chunks - 1) * config_.inter_chunk_latency;
}

cycle_t main_memory::next_event(cycle_t now) const
{
    if (queue_.empty())
        return no_cycle;
    // The head transfer starts as soon as the serialised data wires free up.
    return std::max(now, wires_free_at_);
}

std::uint64_t main_memory::state_digest() const
{
    sim::state_hash h;
    h.mix(counters_.digest());
    h.mix(queue_.size());
    h.mix(wires_free_at_);
    return h.value();
}

void main_memory::tick(cycle_t now)
{
    // Start one transfer per cycle at most; the data wires serialise bursts.
    if (queue_.empty() || wires_free_at_ > now)
        return;

    const mem_request request = queue_.front();
    queue_.pop_front();

    const std::uint32_t bytes = request.size == 0 ? config_.wire_bytes : request.size;
    const std::uint32_t chunks = chunks_for(bytes);
    const cycle_t burst = cycle_t(chunks) * config_.inter_chunk_latency;
    wires_free_at_ = now + burst;

    if (request.kind == access_kind::read && request.needs_response &&
        upstream_ != nullptr) {
        mem_response response;
        response.id = request.id;
        response.addr = request.addr;
        response.ready_at = now + unloaded_latency(bytes);
        response.served_by = service_level::memory;
        upstream_->respond(response);
    }
    counters_.inc(h_transfers_);
}

void main_memory::save_state(ckpt::writer& w) const
{
    if (!quiescent())
        throw ckpt::ckpt_error(
            "main_memory: checkpoint requested while not quiescent");
    ckpt::saver ar(w);
    const_cast<main_memory*>(this)->serialize(ar);
}

void main_memory::load_state(ckpt::reader& r)
{
    ckpt::loader ar(r);
    serialize(ar);
}

} // namespace lnuca::mem
