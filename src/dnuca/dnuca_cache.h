// Dynamic NUCA baseline (Kim et al., ASPLOS'02) per the paper's Table I:
// an 8 MB cache of 32 banks (256 KB, 2-way, 128 B blocks) arranged as
// 8 bank sets (columns) x 4 rows on a wormhole 2D mesh with 4 virtual
// channels and 32 B flits (1-flit requests, 5-flit data replies).
//
// Policies follow the SS-performance configuration: simple mapping (block
// -> column), multicast search across the column's four banks (realised as
// per-bank probe flits from the single injection point), LRU within a
// bank, one-row generational promotion on each read hit, insertion at the
// farthest (tail) row, and zero-copy replacement (tail victims leave the
// cache).
//
// The mesh has an extra row 0 that carries no banks: it is the controller
// rail; the controller is the single injection/ejection point at (0,0) -
// exactly the structural bottleneck the L-NUCA paper criticises.
#pragma once

#include "src/common/ring_queue.h"
#include "src/common/stats.h"
#include "src/common/types.h"
#include "src/mem/mshr.h"
#include "src/mem/request.h"
#include "src/mem/tag_array.h"
#include "src/noc/vc_router.h"
#include "src/sim/ticked.h"
#include "src/sim/timed_queue.h"

#include <memory>
#include <unordered_map>
#include <vector>

namespace lnuca::dnuca {

struct dnuca_config {
    unsigned bank_sets = 8; ///< sparse sets = mesh columns
    unsigned rows = 4;      ///< banks per set
    std::uint64_t bank_bytes = 256_KiB;
    std::uint32_t bank_ways = 2;
    std::uint32_t block_bytes = 128;
    std::uint32_t bank_latency = 3;    ///< completion cycles
    std::uint32_t bank_initiation = 3; ///< cycles between bank accesses
    std::uint32_t flit_bytes = 32;
    noc::router_config router{4, 4}; ///< 4 VCs, 4-flit buffers
    std::uint32_t mshr_entries = 16;
    std::uint32_t mshr_secondary = 4;
    std::string policy = "lru";
    std::uint64_t seed = 0xd0ca;
};

class dnuca_cache final : public sim::ticked, public mem::mem_port, public mem::mem_client {
public:
    dnuca_cache(const dnuca_config& config, mem::txn_id_source& ids);

    void set_upstream(mem::mem_client* client) { upstream_ = client; }
    void set_downstream(mem::mem_port* port) { downstream_ = port; }

    // mem_port
    bool can_accept(const mem::mem_request& request) const override;
    void accept(const mem::mem_request& request) override;
    mem::warm_result warm_access(const mem::warm_request& request) override;

    // mem_client (memory side)
    void respond(const mem::mem_response& response) override;

    // ticked
    void tick(cycle_t now) override;
    cycle_t next_event(cycle_t now) const override;
    std::uint64_t state_digest() const override;

    const dnuca_config& config() const { return config_; }
    const counter_set& counters() const { return counters_; }
    const noc::mesh_network& mesh() const { return *mesh_; }
    std::uint64_t size_bytes() const
    {
        return std::uint64_t(config_.bank_sets) * config_.rows *
               config_.bank_bytes;
    }
    /// Read hits per row (promotion effectiveness; row 1 = closest).
    std::uint64_t hits_in_row(unsigned row) const;
    bool quiescent() const;

    /// Functionally install a block (no timing, no traffic): used to warm
    /// the arrays before measurement. Spreads lines round-robin over rows.
    void prewarm(addr_t addr);

    /// Checkpoint hooks (quiescent-only; hier::system owns the section).
    void save_state(ckpt::writer& w) const override;
    void load_state(ckpt::reader& r) override;

    /// Persistent-at-quiescence state: bank tags + schedule anchors, stats,
    /// the write-combining filter, packet/group id cursors, the mesh
    /// counters and every injector's VC rotation cursor (it advances per
    /// packet and keeps its position between packets, so it survives an
    /// empty queue). Request tracking maps, probes and flit buffers are
    /// empty by the quiesce contract.
    template <class Ar> void serialize(Ar& ar)
    {
        for (bank& b : banks_) {
            b.tags->serialize(ar);
            ar(b.busy_until);
            ar(b.outbox.vc);
        }
        ar.counters(counters_);
        mesh_->serialize(ar);
        ar(written_lines_);
        std::uint64_t cursor = written_cursor_;
        ar(cursor);
        written_cursor_ = std::size_t(cursor);
        ar(next_packet_);
        ar(next_group_);
        ar(row_hits_);
        ar(controller_outbox_.vc);
        ar(controller_write_outbox_.vc);
    }

private:
    /// Flit source with wormhole injection state: flits of one packet stay
    /// on one VC, and packets never interleave within a queue.
    struct injector {
        ring_queue<noc::flit> queue;
        std::uint32_t vc = 0;
        bool mid_packet = false;
    };

    struct bank {
        std::unique_ptr<mem::tag_array> tags;
        ring_queue<noc::flit> probes;       ///< read probes awaiting the array
        ring_queue<noc::flit> write_probes; ///< writes yield to reads
        cycle_t busy_until = 0;
        injector outbox;                ///< flits waiting to inject
        sim::timed_queue<noc::flit> lookups; ///< probes inside the array
    };

    struct request_state {
        addr_t block = no_addr;
        unsigned miss_replies = 0;
        bool satisfied = false;
        bool is_demand_read = false; ///< expects data back
        bool is_write = false;
        bool is_writeback = false;
        bool dirty = false;
    };

    noc::coord bank_coord(unsigned column, unsigned row) const
    {
        return {int(column), int(row)}; // rows 1..config_.rows hold banks
    }
    bank& bank_at(unsigned column, unsigned row)
    {
        return banks_[(row - 1) * config_.bank_sets + column];
    }
    unsigned column_of(addr_t block) const
    {
        return unsigned((block / config_.block_bytes) % config_.bank_sets);
    }
    /// Bank arrays index sets with the bits *above* the column-select bits;
    /// store bank-local addresses so every set of a bank is usable.
    addr_t to_bank_addr(addr_t block) const
    {
        return (block / (addr_t(config_.block_bytes) * config_.bank_sets)) *
               config_.block_bytes;
    }
    addr_t from_bank_addr(addr_t local, unsigned column) const
    {
        return (local / config_.block_bytes) *
                   (addr_t(config_.block_bytes) * config_.bank_sets) +
               addr_t(column) * config_.block_bytes;
    }
    std::uint32_t flits_for_block() const
    {
        return 1 + (config_.block_bytes + config_.flit_bytes - 1) /
                       config_.flit_bytes;
    }

    void process_memory_responses(cycle_t now);
    void eject_and_handle(cycle_t now);
    void run_banks(cycle_t now);
    void controller_flit(cycle_t now, const noc::flit& f);
    void install_at_tail(cycle_t now, addr_t block, bool dirty);
    void promote(cycle_t now, unsigned column, unsigned row, addr_t block);
    void warm_install_at_tail(addr_t block, bool dirty);
    void inject_from(injector& from, noc::coord at);
    void drain_memory_queue(cycle_t now);
    void send_packet(injector& from, noc::packet_kind kind, noc::coord src,
                     noc::coord dst, addr_t block, std::uint64_t group,
                     std::uint32_t flit_count, cycle_t now);

    dnuca_config config_;
    mem::txn_id_source& ids_;
    counter_set counters_;
    counter_set::handle h_bank_lookups_ = 0;
    counter_set::handle h_bank_read_hits_ = 0;
    counter_set::handle h_bank_write_hits_ = 0;
    counter_set::handle h_bank_writes_ = 0;
    counter_set::handle h_fills_from_memory_ = 0;
    counter_set::handle h_flits_injected_ = 0;
    counter_set::handle h_inject_stall_ = 0;
    counter_set::handle h_migrations_delivered_ = 0;
    counter_set::handle h_mshr_merge_ = 0;
    counter_set::handle h_orphan_reply_ = 0;
    counter_set::handle h_promotion_spills_ = 0;
    counter_set::handle h_promotions_ = 0;
    counter_set::handle h_read_hits_ = 0;
    counter_set::handle h_read_misses_ = 0;
    counter_set::handle h_tail_evictions_ = 0;
    counter_set::handle h_unexpected_bank_flit_ = 0;
    counter_set::handle h_unexpected_controller_flit_ = 0;
    counter_set::handle h_untracked_response_ = 0;
    counter_set::handle h_write_installs_ = 0;
    counter_set::handle h_writes_coalesced_ = 0;
    counter_set::handle h_writes_filtered_ = 0;

    mem::mem_client* upstream_ = nullptr;
    mem::mem_port* downstream_ = nullptr;

    std::unique_ptr<noc::mesh_network> mesh_;
    std::vector<bank> banks_;
    injector controller_outbox_;        ///< read probes (priority)
    injector controller_write_outbox_;  ///< write probes (background)
    ring_queue<mem::mem_request> memory_queue_; ///< misses + writebacks out
    mem::mshr_file mshrs_;
    std::unordered_map<std::uint64_t, request_state> requests_; ///< by group id
    /// Write probes in flight by block: later stores to the same 128B line
    /// coalesce instead of multicasting another probe set.
    std::unordered_map<addr_t, std::uint64_t> active_writes_;
    /// Controller-side write-combining filter: lines recently confirmed
    /// present-and-dirty absorb further stores without probing the banks.
    std::vector<addr_t> written_lines_;
    std::size_t written_cursor_ = 0;
    std::unordered_map<txn_id_t, addr_t> outstanding_memory_;
    sim::timed_queue<mem::mem_response> memory_responses_;
    std::uint64_t next_packet_ = 1;
    std::uint64_t next_group_ = 1;
    std::vector<std::uint64_t> row_hits_;
};

} // namespace lnuca::dnuca
