#include "src/dnuca/dnuca_cache.h"

#include "src/ckpt/archive.h"
#include "src/common/log.h"

#include <algorithm>

namespace lnuca::dnuca {

dnuca_cache::dnuca_cache(const dnuca_config& config, mem::txn_id_source& ids)
    : config_(config),
      ids_(ids),
      mshrs_(config.mshr_entries, config.mshr_secondary),
      row_hits_(config.rows + 1, 0)
{
    mesh_ = std::make_unique<noc::mesh_network>(config.router,
                                                int(config.bank_sets),
                                                int(config.rows) + 1);
    banks_.resize(std::size_t(config.bank_sets) * config.rows);
    for (unsigned row = 1; row <= config.rows; ++row) {
        for (unsigned col = 0; col < config.bank_sets; ++col) {
            bank& b = bank_at(col, row);
            mem::tag_array_config tc;
            tc.size_bytes = config.bank_bytes;
            tc.ways = config.bank_ways;
            tc.block_bytes = config.block_bytes;
            tc.policy = config.policy;
            tc.seed = config.seed + row * 97 + col;
            b.tags = std::make_unique<mem::tag_array>(tc);
            b.probes.reserve(16);
            b.write_probes.reserve(16);
            b.outbox.queue.reserve(64);
            b.lookups.reserve(8);
        }
    }
    counters_.preregister(
        {"read_probes", "write_probes", "writes_coalesced", "writes_filtered",
         "mshr_merge", "inject_stall", "flits_injected", "bank_lookups",
         "bank_read_hits", "bank_write_hits", "bank_writes", "promotions",
         "promotion_spills", "migrations_delivered", "tail_evictions",
         "read_hits", "read_misses", "write_installs", "fills_from_memory",
         "untracked_response", "orphan_reply", "unexpected_bank_flit",
         "unexpected_controller_flit"});
    h_bank_lookups_ = counters_.handle_of("bank_lookups");
    h_bank_read_hits_ = counters_.handle_of("bank_read_hits");
    h_bank_write_hits_ = counters_.handle_of("bank_write_hits");
    h_bank_writes_ = counters_.handle_of("bank_writes");
    h_fills_from_memory_ = counters_.handle_of("fills_from_memory");
    h_flits_injected_ = counters_.handle_of("flits_injected");
    h_inject_stall_ = counters_.handle_of("inject_stall");
    h_migrations_delivered_ = counters_.handle_of("migrations_delivered");
    h_mshr_merge_ = counters_.handle_of("mshr_merge");
    h_orphan_reply_ = counters_.handle_of("orphan_reply");
    h_promotion_spills_ = counters_.handle_of("promotion_spills");
    h_promotions_ = counters_.handle_of("promotions");
    h_read_hits_ = counters_.handle_of("read_hits");
    h_read_misses_ = counters_.handle_of("read_misses");
    h_tail_evictions_ = counters_.handle_of("tail_evictions");
    h_unexpected_bank_flit_ = counters_.handle_of("unexpected_bank_flit");
    h_unexpected_controller_flit_ = counters_.handle_of("unexpected_controller_flit");
    h_untracked_response_ = counters_.handle_of("untracked_response");
    h_write_installs_ = counters_.handle_of("write_installs");
    h_writes_coalesced_ = counters_.handle_of("writes_coalesced");
    h_writes_filtered_ = counters_.handle_of("writes_filtered");
    // Pre-size the controller-side queues: a probe set is `rows` flits and
    // a data reply is flits_for_block(), so these bounds cover steady state
    // without reallocation (growth stays possible for pathological bursts).
    controller_outbox_.queue.reserve(256);
    controller_write_outbox_.queue.reserve(512);
    memory_queue_.reserve(128);
    memory_responses_.reserve(config.mshr_entries + 8);
    written_lines_.reserve(64);
}

bool dnuca_cache::can_accept(const mem::mem_request& request) const
{
    if (request.kind == mem::access_kind::read
            ? controller_outbox_.queue.size() > 64
            : controller_write_outbox_.queue.size() > 256)
        return false;
    if (request.kind == mem::access_kind::read && request.needs_response) {
        const addr_t block = request.addr & ~addr_t(config_.block_bytes - 1);
        if (const auto* entry = mshrs_.find(block))
            return entry->target_count < config_.mshr_secondary;
        return mshrs_.can_allocate();
    }
    return true;
}

void dnuca_cache::accept(const mem::mem_request& request)
{
    const cycle_t now = request.created_at;
    const addr_t block = request.addr & ~addr_t(config_.block_bytes - 1);
    const unsigned column = column_of(block);

    const bool demand_read =
        request.kind == mem::access_kind::read && request.needs_response;

    if (demand_read) {
        if (mem::mshr_entry* entry = mshrs_.find(block)) {
            mshrs_.add_target(*entry, {request.id, request.addr, request.kind,
                                       request.created_at});
            counters_.inc(h_mshr_merge_);
            return;
        }
        auto& entry = mshrs_.allocate(block, now);
        mshrs_.add_target(entry,
                          {request.id, request.addr, request.kind,
                           request.created_at});
    } else {
        // Coalesce write traffic per 128B line: the probe set in flight
        // already carries this line's update.
        const auto it = active_writes_.find(block);
        if (it != active_writes_.end()) {
            auto rit = requests_.find(it->second);
            if (rit != requests_.end()) {
                rit->second.dirty = true;
                counters_.inc(h_writes_coalesced_);
                return;
            }
            active_writes_.erase(it);
        }
        // Lines recently confirmed dirty absorb stores with no probe.
        for (const addr_t line : written_lines_) {
            if (line == block) {
                counters_.inc(h_writes_filtered_);
                return;
            }
        }
    }

    request_state state;
    state.block = block;
    state.is_demand_read = demand_read;
    state.is_write = request.kind == mem::access_kind::write;
    state.is_writeback = request.kind == mem::access_kind::writeback;
    state.dirty = request.dirty || state.is_write || state.is_writeback;
    const std::uint64_t group = next_group_++;
    requests_[group] = state;
    if (!demand_read)
        active_writes_[block] = group;

    // Multicast search: one probe per bank of the column, all from the
    // single injection point.
    const noc::packet_kind probe_kind = demand_read
                                            ? noc::packet_kind::request
                                            : noc::packet_kind::writeback;
    injector& outbox = demand_read ? controller_outbox_
                                   : controller_write_outbox_;
    for (unsigned row = 1; row <= config_.rows; ++row)
        send_packet(outbox, probe_kind, {0, 0}, bank_coord(column, row),
                    block, group, 1, now);
    counters_.inc(demand_read ? "read_probes" : "write_probes");
}

void dnuca_cache::respond(const mem::mem_response& response)
{
    memory_responses_.push(response.ready_at, response);
}

void dnuca_cache::send_packet(injector& from, noc::packet_kind kind,
                              noc::coord src, noc::coord dst, addr_t block,
                              std::uint64_t group, std::uint32_t flit_count,
                              cycle_t now)
{
    const std::uint64_t packet = next_packet_++;
    for (std::uint32_t s = 0; s < flit_count; ++s) {
        noc::flit f;
        f.packet_id = packet;
        f.kind = kind;
        f.src = src;
        f.dst = dst;
        f.addr = block;
        f.txn = group;
        f.seq = std::uint16_t(s);
        f.count = std::uint16_t(flit_count);
        f.injected_at = now;
        from.queue.push_back(std::move(f));
    }
}

void dnuca_cache::inject_from(injector& from, noc::coord at)
{
    if (from.queue.empty())
        return;
    const noc::flit& head = from.queue.front();
    noc::vc_router& router = mesh_->at(at);

    if (!from.mid_packet) {
        // Pick a VC with space for the head flit, round-robin.
        const std::uint32_t vcs = config_.router.virtual_channels;
        bool found = false;
        for (std::uint32_t k = 0; k < vcs && !found; ++k) {
            const std::uint32_t vc = (from.vc + k) % vcs;
            if (router.local_can_accept(vc)) {
                from.vc = vc;
                found = true;
            }
        }
        if (!found) {
            counters_.inc(h_inject_stall_);
            return;
        }
    } else if (!router.local_can_accept(from.vc)) {
        counters_.inc(h_inject_stall_);
        return;
    }

    router.local_inject(from.vc, head);
    from.mid_packet = !head.tail();
    if (head.tail())
        from.vc = (from.vc + 1) % config_.router.virtual_channels;
    from.queue.pop_front();
    counters_.inc(h_flits_injected_);
}

cycle_t dnuca_cache::next_event(cycle_t now) const
{
    // Flits move and queues drain every cycle while anything is in flight:
    // outstanding probe sets (requests_), injection queues, bank work or
    // mesh traffic make the cache immediately busy.
    if (!controller_outbox_.queue.empty() ||
        !controller_write_outbox_.queue.empty() || !memory_queue_.empty() ||
        !requests_.empty())
        return now;
    if (!mesh_->quiescent())
        return now;
    // Quiet: only bank-array completions and main-memory responses remain.
    cycle_t next = memory_responses_.next_ready();
    for (const auto& b : banks_) {
        if (!b.probes.empty() || !b.write_probes.empty() ||
            !b.outbox.queue.empty())
            return now;
        next = std::min(next, b.lookups.next_ready());
    }
    return next;
}

std::uint64_t dnuca_cache::state_digest() const
{
    sim::state_hash h;
    h.mix(counters_.digest());
    h.mix(controller_outbox_.queue.size());
    h.mix(controller_outbox_.vc);
    h.mix(controller_write_outbox_.queue.size());
    h.mix(controller_write_outbox_.vc);
    h.mix(memory_queue_.size());
    h.mix(requests_.size());
    h.mix(mshrs_.in_use());
    h.mix(memory_responses_.size());
    h.mix(memory_responses_.next_ready());
    h.mix(next_packet_);
    h.mix(next_group_);
    h.mix(mesh_->occupancy_digest());
    for (const auto& b : banks_) {
        h.mix(b.probes.size());
        h.mix(b.write_probes.size());
        h.mix(b.outbox.queue.size());
        h.mix(b.outbox.vc);
        h.mix(b.busy_until);
        h.mix(b.lookups.size());
        h.mix(b.lookups.next_ready());
    }
    for (const auto& [txn, block] : outstanding_memory_)
        h.mix_unordered(txn * 0x9e3779b97f4a7c15ULL + block);
    for (const auto& [group, state] : requests_)
        h.mix_unordered(group * 0x9e3779b97f4a7c15ULL + state.block +
                        state.miss_replies);
    return h.value();
}

void dnuca_cache::tick(cycle_t now)
{
    process_memory_responses(now);
    eject_and_handle(now);
    run_banks(now);

    // Injection: the controller's single point plus each bank's local
    // port. Latency-critical read probes go first; writes fill idle slots.
    if (!controller_outbox_.queue.empty())
        inject_from(controller_outbox_, {0, 0});
    else
        inject_from(controller_write_outbox_, {0, 0});
    for (unsigned row = 1; row <= config_.rows; ++row)
        for (unsigned col = 0; col < config_.bank_sets; ++col)
            inject_from(bank_at(col, row).outbox, bank_coord(col, row));

    drain_memory_queue(now);
    mesh_->step(now);
}

void dnuca_cache::process_memory_responses(cycle_t now)
{
    while (auto response = memory_responses_.pop_ready(now)) {
        const auto it = outstanding_memory_.find(response->id);
        if (it == outstanding_memory_.end()) {
            counters_.inc(h_untracked_response_);
            continue;
        }
        const addr_t block = it->second;
        outstanding_memory_.erase(it);

        install_at_tail(now, block, /*dirty=*/false);
        const auto entry = mshrs_.release(block);
        if (!entry)
            continue;
        if (upstream_ != nullptr) {
            for (std::uint32_t t = 0; t < entry.target_count; ++t) {
                const auto& target = entry.targets[t];
                mem::mem_response up;
                up.id = target.id;
                up.addr = target.addr;
                up.ready_at = now;
                up.served_by = mem::service_level::memory;
                upstream_->respond(up);
            }
        }
        counters_.inc(h_fills_from_memory_);
    }
}

void dnuca_cache::eject_and_handle(cycle_t now)
{
    // Controller ejection point.
    if (auto f = mesh_->at({0, 0}).local_eject())
        controller_flit(now, *f);

    // Bank ejection points.
    for (unsigned row = 1; row <= config_.rows; ++row) {
        for (unsigned col = 0; col < config_.bank_sets; ++col) {
            auto f = mesh_->at(bank_coord(col, row)).local_eject();
            if (!f)
                continue;
            switch (f->kind) {
            case noc::packet_kind::request:
                bank_at(col, row).probes.push_back(*f);
                break;
            case noc::packet_kind::writeback:
                bank_at(col, row).write_probes.push_back(*f);
                break;
            case noc::packet_kind::migrate:
                // Functional swap already applied; the packet models the
                // traffic. Nothing to do at arrival.
                if (f->tail())
                    counters_.inc(h_migrations_delivered_);
                break;
            default:
                counters_.inc(h_unexpected_bank_flit_);
                break;
            }
        }
    }
}

void dnuca_cache::run_banks(cycle_t now)
{
    for (unsigned row = 1; row <= config_.rows; ++row) {
        for (unsigned col = 0; col < config_.bank_sets; ++col) {
            bank& b = bank_at(col, row);

            // Finish lookups whose completion time arrived.
            while (auto probe = b.lookups.pop_ready(now)) {
                const addr_t block = to_bank_addr(probe->addr);
                counters_.inc(h_bank_lookups_);
                const bool is_write_probe =
                    probe->kind == noc::packet_kind::writeback;
                const auto hit = b.tags->lookup(block);
                if (hit && !is_write_probe) {
                    row_hits_[row]++;
                    counters_.inc(h_bank_read_hits_);
                    send_packet(b.outbox, noc::packet_kind::reply,
                                bank_coord(col, row), {0, 0}, probe->addr,
                                probe->txn, flits_for_block(), now);
                    if (row > 1)
                        promote(now, col, row, block);
                } else if (hit && is_write_probe) {
                    b.tags->set_dirty(block, true);
                    counters_.inc(h_bank_write_hits_);
                    send_packet(b.outbox, noc::packet_kind::reply,
                                bank_coord(col, row), {0, 0}, probe->addr,
                                probe->txn, 1, now); // write ack
                } else {
                    send_packet(b.outbox, noc::packet_kind::nack,
                                bank_coord(col, row), {0, 0}, probe->addr,
                                probe->txn, 1, now);
                }
            }

            // Start the next probe when the array is free; reads first.
            if (b.busy_until <= now &&
                (!b.probes.empty() || !b.write_probes.empty())) {
                auto& queue = b.probes.empty() ? b.write_probes : b.probes;
                const noc::flit probe = queue.take_front();
                b.busy_until = now + config_.bank_initiation;
                const cycle_t done = now + config_.bank_latency;
                b.lookups.push(done > 0 ? done - 1 : 0, probe);
            }
        }
    }
}

void dnuca_cache::promote(cycle_t now, unsigned column, unsigned row,
                          addr_t bank_local)
{
    // Generational promotion: swap the hit block one row closer to the
    // controller. The arrays swap immediately; two migrate packets model
    // the traffic and contention of the exchange.
    bank& lower = bank_at(column, row);      // hit bank (farther)
    bank& upper = bank_at(column, row - 1);  // closer bank
    const addr_t block = bank_local;

    const auto moving = lower.tags->extract(block);
    if (!moving)
        return; // already promoted by a racing access

    // Make room in the closer bank: its victim drops into the hit bank.
    if (auto displaced = upper.tags->install(block, moving->dirty)) {
        if (auto re = lower.tags->install(displaced->block_addr,
                                          displaced->dirty)) {
            // Both sets full and distinct victims: the doubly-displaced
            // block leaves the cache (zero-copy replacement).
            mem::mem_request writeback;
            writeback.id = ids_.next();
            writeback.addr = from_bank_addr(re->block_addr, column);
            writeback.size = config_.block_bytes;
            writeback.kind = mem::access_kind::writeback;
            writeback.needs_response = false;
            writeback.dirty = re->dirty;
            if (re->dirty)
                memory_queue_.push_back(writeback);
            counters_.inc(h_promotion_spills_);
        }
    }
    counters_.inc(h_promotions_);

    send_packet(lower.outbox, noc::packet_kind::migrate,
                bank_coord(column, row), bank_coord(column, row - 1), block,
                0, flits_for_block(), now);
    send_packet(upper.outbox, noc::packet_kind::migrate,
                bank_coord(column, row - 1), bank_coord(column, row), block,
                0, flits_for_block(), now);
}

void dnuca_cache::controller_flit(cycle_t now, const noc::flit& f)
{
    if (f.kind == noc::packet_kind::reply && !f.tail())
        return; // wait for the full data packet

    const auto it = requests_.find(f.txn);
    if (it == requests_.end()) {
        counters_.inc(h_orphan_reply_);
        return;
    }
    request_state& state = it->second;

    if (f.kind == noc::packet_kind::reply) {
        if (f.count > 1) {
            // Data reply for a demand read.
            state.satisfied = true;
            const auto entry = mshrs_.release(state.block);
            if (entry && upstream_ != nullptr) {
                for (std::uint32_t t = 0; t < entry.target_count; ++t) {
                    const auto& target = entry.targets[t];
                    mem::mem_response up;
                    up.id = target.id;
                    up.addr = target.addr;
                    up.ready_at = now;
                    up.served_by = mem::service_level::dnuca;
                    upstream_->respond(up);
                }
            }
            counters_.inc(h_read_hits_);
            requests_.erase(it);
        } else {
            // Write probe absorbed by a bank: remember the line so
            // follow-up stores skip the probe entirely.
            if (written_lines_.size() < 64) {
                written_lines_.push_back(state.block);
            } else {
                written_lines_[written_cursor_] = state.block;
                written_cursor_ = (written_cursor_ + 1) % written_lines_.size();
            }
            active_writes_.erase(state.block);
            requests_.erase(it);
        }
        return;
    }

    if (f.kind != noc::packet_kind::nack) {
        counters_.inc(h_unexpected_controller_flit_);
        return;
    }

    if (++state.miss_replies < config_.rows || state.satisfied)
        return;

    // All banks of the set missed.
    if (state.is_demand_read) {
        counters_.inc(h_read_misses_);
        mem::mem_request read;
        read.id = ids_.next();
        read.addr = state.block;
        read.size = config_.block_bytes;
        read.kind = mem::access_kind::read;
        read.created_at = now;
        memory_queue_.push_back(read);
        outstanding_memory_[read.id] = state.block;
        requests_.erase(it);
    } else {
        // Word write or writeback that found no copy: install at the tail.
        counters_.inc(h_write_installs_);
        install_at_tail(now, state.block, state.dirty);
        active_writes_.erase(state.block);
        requests_.erase(it);
    }
}

void dnuca_cache::install_at_tail(cycle_t now, addr_t block, bool dirty)
{
    (void)now;
    const unsigned column = column_of(block);
    bank& tail = bank_at(column, config_.rows);
    counters_.inc(h_bank_writes_);
    if (auto victim = tail.tags->install(to_bank_addr(block), dirty)) {
        counters_.inc(h_tail_evictions_);
        if (victim->dirty) {
            mem::mem_request writeback;
            writeback.id = ids_.next();
            writeback.addr = from_bank_addr(victim->block_addr, column);
            writeback.size = config_.block_bytes;
            writeback.kind = mem::access_kind::writeback;
            writeback.needs_response = false;
            writeback.dirty = true;
            memory_queue_.push_back(writeback);
        }
    }
}

void dnuca_cache::drain_memory_queue(cycle_t now)
{
    if (memory_queue_.empty() || downstream_ == nullptr)
        return;
    mem::mem_request request = memory_queue_.front();
    request.created_at = now;
    if (downstream_->can_accept(request)) {
        downstream_->accept(request);
        memory_queue_.pop_front();
    }
}

mem::warm_result dnuca_cache::warm_access(const mem::warm_request& request)
{
    // Functional twin of the probe/promotion/insertion policies (see the
    // warm_access() contract in src/mem/request.h): simple column mapping,
    // LRU within a bank, one-row generational promotion on read hits,
    // tail insertion with zero-copy replacement.
    const addr_t block = request.addr & ~addr_t(config_.block_bytes - 1);
    const unsigned column = column_of(block);
    const addr_t local = to_bank_addr(block);

    switch (request.kind) {
    case mem::access_kind::read:
        for (unsigned row = 1; row <= config_.rows; ++row) {
            bank& b = bank_at(column, row);
            if (b.tags->lookup(local)) {
                if (row > 1) {
                    // The promotion swap of promote(), arrays only.
                    const auto moving = b.tags->extract(local);
                    bank& upper = bank_at(column, row - 1);
                    if (const auto displaced =
                            upper.tags->install(local, moving && moving->dirty))
                        b.tags->install(displaced->block_addr,
                                        displaced->dirty);
                }
                // The timing reply never carries dirtiness (the bank keeps
                // its dirty copy; the upper level installs clean).
                return {};
            }
        }
        // Miss: the memory fill installs at the tail row.
        warm_install_at_tail(block, false);
        return {};
    case mem::access_kind::write:
        for (unsigned row = 1; row <= config_.rows; ++row) {
            bank& b = bank_at(column, row);
            if (b.tags->lookup(local)) {
                b.tags->set_dirty(local, true);
                return {};
            }
        }
        warm_install_at_tail(block, true); // write miss installs at the tail
        return {};
    case mem::access_kind::writeback:
        for (unsigned row = 1; row <= config_.rows; ++row) {
            bank& b = bank_at(column, row);
            if (b.tags->lookup(local)) {
                if (request.dirty)
                    b.tags->set_dirty(local, true);
                return {};
            }
        }
        warm_install_at_tail(block, request.dirty);
        return {};
    }
    return {};
}

void dnuca_cache::warm_install_at_tail(addr_t block, bool dirty)
{
    // Tail victims leave the cache (zero-copy replacement); main memory
    // holds no warmable state, so the victim writeback simply vanishes.
    bank_at(column_of(block), config_.rows)
        .tags->install(to_bank_addr(block), dirty);
}

void dnuca_cache::prewarm(addr_t addr)
{
    const addr_t block = addr & ~addr_t(config_.block_bytes - 1);
    // Spread lines over rows using the bits *above* the bank set index, so
    // a column's four banks tile its share of an 8MB-resident window
    // instead of aliasing into the same sets.
    const std::uint64_t sets_per_bank =
        config_.bank_bytes / config_.block_bytes / config_.bank_ways;
    const std::uint64_t line = block / config_.block_bytes / config_.bank_sets;
    const unsigned row = 1 + unsigned((line / sets_per_bank) % config_.rows);
    bank_at(column_of(block), row).tags->install(to_bank_addr(block), false);
}

std::uint64_t dnuca_cache::hits_in_row(unsigned row) const
{
    return row < row_hits_.size() ? row_hits_[row] : 0;
}

bool dnuca_cache::quiescent() const
{
    if (!controller_outbox_.queue.empty() ||
        !controller_write_outbox_.queue.empty() || !memory_queue_.empty() ||
        !mshrs_.empty() || !requests_.empty() || !outstanding_memory_.empty() ||
        !memory_responses_.empty())
        return false;
    for (const auto& b : banks_)
        if (!b.probes.empty() || !b.write_probes.empty() ||
            !b.outbox.queue.empty() || !b.lookups.empty())
            return false;
    return mesh_->quiescent();
}

void dnuca_cache::save_state(ckpt::writer& w) const
{
    if (!quiescent())
        throw ckpt::ckpt_error(
            "dnuca_cache: checkpoint requested while packets are in flight");
    ckpt::saver ar(w);
    const_cast<dnuca_cache*>(this)->serialize(ar);
}

void dnuca_cache::load_state(ckpt::reader& r)
{
    ckpt::loader ar(r);
    serialize(ar);
}

} // namespace lnuca::dnuca
