// Merge sharded / resumed JSON-lines sweep outputs into one canonical
// result set — the library behind tools/merge_tool.cpp, kept separate so
// tests drive every edge case in-process.
//
// Inputs are the raw byte contents of any number of JSONL files produced
// by runs of the *same* manifest (shards, resumed re-runs, or a mix; a
// file appearing twice is harmless). Merging:
//
//   - validates every decodable row's provenance against the manifest:
//     flat coordinates, derived seed, instruction/warmup counts and the
//     manifest hash must all match the manifest's job at that flat index —
//     a row from a different experiment is a hard error, never silently
//     dropped or kept;
//   - tolerates at most one undecodable *trailing* line per input (the
//     torn tail of a killed writer); an undecodable line anywhere else
//     poisons that input (hard error);
//   - keeps, per flat index, the completed (status ok) row; failed /
//     timed-out rows are superseded by a later ok row for the same flat
//     (the --resume re-run convention) but are reported when no ok row
//     ever arrives;
//   - verifies that duplicate ok rows for one flat agree on every
//     deterministic field (everything but the host-timing trio). Agreeing
//     duplicates collapse to one row; disagreeing ones are a hard error,
//     because two "bit-identical" runs that differ expose either seed
//     reuse or nondeterminism — exactly what the determinism contract
//     promises cannot happen.
//
// The merged output contains exactly one line per completed flat, in flat
// order, re-encoded with encode_json_line() — byte-identical (modulo the
// host-timing trio) to what a single clean unsharded run would have
// written.
#pragma once

#include "src/exp/manifest.h"
#include "src/exp/sink.h"

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace lnuca::exp {

/// Coverage accounting of one merge. complete() gates the merge_tool exit
/// code: a merge can succeed mechanically (no hard errors) and still
/// describe an incomplete result set.
struct merge_report {
    std::size_t expected = 0;   ///< manifest total_jobs
    std::size_t rows_seen = 0;  ///< decodable rows across all inputs
    std::size_t duplicates = 0; ///< extra agreeing ok rows collapsed
    std::size_t torn_tails = 0; ///< tolerated trailing truncated lines
    std::vector<std::size_t> missing; ///< flats with no row at all
    std::vector<std::size_t> failed;  ///< flats whose best row is failed/
                                      ///< timed-out (no ok row arrived)

    bool complete() const { return missing.empty() && failed.empty(); }
};

/// One input: {label for error messages (file name), file content}.
using merge_input = std::pair<std::string, std::string>;

/// Merge `inputs` against `m`. On success returns true with the canonical
/// JSONL in `out_jsonl` (only completed rows, flat order) and the coverage
/// in `report` — the caller decides whether incomplete-but-clean is fatal.
/// On a hard error (provenance mismatch, mid-file corruption, conflicting
/// duplicates) returns false with `error` naming input and line.
bool merge_results(const manifest& m, const std::vector<merge_input>& inputs,
                   std::string& out_jsonl, merge_report& report,
                   std::string* error);

/// Render `report` as the human coverage summary merge_tool prints
/// (one line of totals plus compact missing/failed flat lists).
std::string describe_merge(const merge_report& report);

} // namespace lnuca::exp
