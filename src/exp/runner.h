// Sweep execution: expand a sweep, run every job on the work-stealing pool,
// and stream the results into sinks in deterministic flat-job order.
//
// Determinism contract: results are written into preallocated slots keyed by
// job index, so the thread count and steal pattern change only wall-clock
// time — run_sweep(s, {1}) and run_sweep(s, {8}) return bit-identical
// reports, and sinks observe the same byte stream either way.
//
// Fault isolation: a job that throws no longer kills the sweep — its slot
// becomes a structured failure row (run_status::failed + the exception text)
// and every other job still runs. Optional per-job soft timeouts mark
// stalled jobs timed_out (the stuck attempt thread is abandoned), and
// bounded retry re-runs a failed job with the *same* rng::split-derived
// seed — the seed is a pure function of (base seed, coordinates), so a
// successful retry is bit-identical to a first-try success.
//
// Crash safety: sinks consume rows *during* the sweep, in flat order, as
// soon as every earlier-flat job has finished (an in-order emission cursor
// under a mutex). Combined with jsonl_sink's append-only file mode, a
// killed sweep leaves a prefix of whole rows on disk that --resume can
// extend to the exact byte content of an uninterrupted run.
#pragma once

#include "src/common/stats.h"
#include "src/exp/fault.h"
#include "src/exp/job.h"
#include "src/exp/sink.h"
#include "src/exp/sweep.h"

#include <cstddef>
#include <functional>
#include <map>
#include <vector>

namespace lnuca::exp {

struct report;

/// Called under the emission lock, in flat order, after every earlier-flat
/// result is final and before the row reaches the sinks. Lets a bench
/// derive cross-job fields (e.g. fig_cmp's weighted speedup against the
/// earlier-flat single-core baseline) without losing streaming crash
/// safety. Must be deterministic; earlier rows of `rep` are complete.
using row_hook_fn =
    std::function<void(const job&, hier::run_result&, const report&)>;

struct run_options {
    run_options() = default;
    /// Shorthand for the common "just pick a thread count" case, keeping
    /// run_sweep(s, {4}) call sites valid now that there are more fields.
    run_options(unsigned thread_count) : threads(thread_count) {}

    /// Worker threads; 0 = one per hardware thread, 1 = serial in the
    /// calling thread (no pool is built).
    unsigned threads = 0;

    /// Per-job soft timeout in seconds; 0 disables. A timed-out job yields
    /// a run_status::timed_out row and its attempt thread is abandoned (it
    /// only touches its own heap slot, so this is safe — but the zombie
    /// keeps burning a core until the simulation returns).
    double job_timeout_seconds = 0.0;

    /// Extra attempts after a failed/timed-out attempt. Retries re-derive
    /// the identical rng::split seed, so a retried success is bit-identical
    /// to a first-try success (fault injection only targets early attempts).
    std::size_t job_retries = 0;

    /// Test-only fault injection (non-owning; see src/exp/fault.h).
    const fault_plan* fault = nullptr;

    /// --resume: jobs whose flat index appears here are not executed; the
    /// mapped result (decoded from the existing output) is used with
    /// status rewritten to skipped_resumed. Non-owning.
    const std::map<std::size_t, hier::run_result>* resume = nullptr;

    /// Optional per-row post-processing before the sinks (see row_hook_fn).
    row_hook_fn row_hook;

    /// Mid-run checkpointing (src/ckpt/): when checkpoint_dir is non-empty
    /// and checkpoint_every > 0, every job snapshots its full simulator
    /// state to <checkpoint_dir>/job_<flat>.ckpt every N retired
    /// instructions (and on SIGTERM/SIGINT once the latch is installed).
    /// checkpoint_resume restores a job's first attempt from its file when
    /// present and valid; retries always start cold so a corrupt snapshot
    /// cannot poison every attempt. A completed job deletes its file.
    std::string checkpoint_dir;
    std::uint64_t checkpoint_every = 0;
    bool checkpoint_resume = false;
};

/// Results of one sweep execution. jobs[i] produced results[i].
struct report {
    std::vector<job> jobs;
    std::vector<hier::run_result> results;

    /// Workers the pool's bounded shutdown had to detach (0 on every clean
    /// sweep; see exp::pool). Surfaced so a sweep that silently leaked a
    /// stuck thread is visible in the exit tally.
    std::size_t abandoned_workers = 0;

    /// Sinks disabled mid-sweep after a sink_error (failed write/fsync).
    /// The sweep itself keeps running; the exit tally reports the loss.
    std::size_t sink_failures = 0;

    // Dimensions of the full sweep (before shard filtering).
    std::size_t config_count = 0;
    std::size_t workload_count = 0;
    std::size_t replicate_count = 0;

    /// Result of (config, workload, replicate), or nullptr when that job
    /// fell outside this shard.
    const hier::run_result* find(std::size_t config, std::size_t workload,
                                 std::size_t replicate = 0) const;

    /// Replicate-0 results of one config across all workloads, in workload
    /// order. Only meaningful for unsharded runs; throws std::logic_error
    /// when a cell is missing (sharded report).
    std::vector<hier::run_result> row(std::size_t config) const;

    /// [config][workload] view of replicate 0 (unsharded runs).
    std::vector<std::vector<hier::run_result>> matrix() const;
};

/// Expand and run a sweep. Sinks (may be empty) see jobs in flat order,
/// streamed during execution (crash-safe; see the header comment).
report run_sweep(const sweep& s, const run_options& opt = {},
                 const std::vector<sink*>& sinks = {});

/// Run one job under the fault-isolation contract: exceptions become
/// run_status::failed rows, opt.job_timeout_seconds bounds each attempt,
/// opt.job_retries re-runs failures with the identical derived seed, and
/// opt.fault injects test faults. Never throws.
hier::run_result execute_job(const job& j, const run_options& opt);

/// Count of rows whose status is failed or timed_out.
std::size_t count_failures(const report& rep);

/// Print one stderr line per failed/timed-out job — config and workload
/// names, (config, workload, replicate) coordinates, the derived seed, and
/// the error text — plus a status tally. Returns count_failures(rep).
std::size_t report_failures(const report& rep);

// ---------------------------------------------------------------------------
// Paper-style aggregation over one config's row (previously duplicated in
// every bench binary's bench_util.h).
// ---------------------------------------------------------------------------

/// Harmonic-mean IPC over a workload group (the paper's aggregation).
inline double group_ipc(const std::vector<hier::run_result>& results, bool fp)
{
    std::vector<double> values;
    for (const auto& r : results)
        if (r.floating_point == fp)
            values.push_back(r.ipc);
    return harmonic_mean(values);
}

/// Arithmetic mean of a per-benchmark metric over a group.
template <typename Fn>
double group_mean(const std::vector<hier::run_result>& results, bool fp, Fn fn)
{
    std::vector<double> values;
    for (const auto& r : results)
        if (r.floating_point == fp)
            values.push_back(fn(r));
    return arithmetic_mean(values);
}

/// Total energy summed over a group (J).
inline double group_energy(const std::vector<hier::run_result>& results,
                           bool fp)
{
    double total = 0;
    for (const auto& r : results)
        if (r.floating_point == fp)
            total += r.energy.total();
    return total;
}

} // namespace lnuca::exp
