// Sweep execution: expand a sweep, run every job on the work-stealing pool,
// and replay the results into sinks in deterministic flat-job order.
//
// Determinism contract: results are written into preallocated slots keyed by
// job index, so the thread count and steal pattern change only wall-clock
// time — run_sweep(s, {1}) and run_sweep(s, {8}) return bit-identical
// reports, and sinks observe the same byte stream either way.
#pragma once

#include "src/common/stats.h"
#include "src/exp/job.h"
#include "src/exp/sink.h"
#include "src/exp/sweep.h"

#include <cstddef>
#include <vector>

namespace lnuca::exp {

struct run_options {
    /// Worker threads; 0 = one per hardware thread, 1 = serial in the
    /// calling thread (no pool is built).
    unsigned threads = 0;
};

/// Results of one sweep execution. jobs[i] produced results[i].
struct report {
    std::vector<job> jobs;
    std::vector<hier::run_result> results;

    // Dimensions of the full sweep (before shard filtering).
    std::size_t config_count = 0;
    std::size_t workload_count = 0;
    std::size_t replicate_count = 0;

    /// Result of (config, workload, replicate), or nullptr when that job
    /// fell outside this shard.
    const hier::run_result* find(std::size_t config, std::size_t workload,
                                 std::size_t replicate = 0) const;

    /// Replicate-0 results of one config across all workloads, in workload
    /// order. Only meaningful for unsharded runs; throws std::logic_error
    /// when a cell is missing (sharded report).
    std::vector<hier::run_result> row(std::size_t config) const;

    /// [config][workload] view of replicate 0 (unsharded runs).
    std::vector<std::vector<hier::run_result>> matrix() const;
};

/// Expand and run a sweep. Sinks (may be empty) see jobs in flat order.
report run_sweep(const sweep& s, const run_options& opt = {},
                 const std::vector<sink*>& sinks = {});

// ---------------------------------------------------------------------------
// Paper-style aggregation over one config's row (previously duplicated in
// every bench binary's bench_util.h).
// ---------------------------------------------------------------------------

/// Harmonic-mean IPC over a workload group (the paper's aggregation).
inline double group_ipc(const std::vector<hier::run_result>& results, bool fp)
{
    std::vector<double> values;
    for (const auto& r : results)
        if (r.floating_point == fp)
            values.push_back(r.ipc);
    return harmonic_mean(values);
}

/// Arithmetic mean of a per-benchmark metric over a group.
template <typename Fn>
double group_mean(const std::vector<hier::run_result>& results, bool fp, Fn fn)
{
    std::vector<double> values;
    for (const auto& r : results)
        if (r.floating_point == fp)
            values.push_back(fn(r));
    return arithmetic_mean(values);
}

/// Total energy summed over a group (J).
inline double group_energy(const std::vector<hier::run_result>& results,
                           bool fp)
{
    double total = 0;
    for (const auto& r : results)
        if (r.floating_point == fp)
            total += r.energy.total();
    return total;
}

} // namespace lnuca::exp
