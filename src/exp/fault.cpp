#include "src/exp/fault.h"

#include <chrono>
#include <cstdlib>
#include <stdexcept>
#include <thread>
#include <vector>

namespace lnuca::exp {

namespace {

// Split "a:b:c" on ':'; empty fields are preserved (and rejected later).
std::vector<std::string> split_fields(const std::string& spec)
{
    std::vector<std::string> out;
    std::size_t pos = 0;
    for (;;) {
        const std::size_t sep = spec.find(':', pos);
        out.push_back(spec.substr(
            pos, sep == std::string::npos ? std::string::npos : sep - pos));
        if (sep == std::string::npos)
            return out;
        pos = sep + 1;
    }
}

bool parse_size(const std::string& field, std::size_t& out)
{
    if (field.empty())
        return false;
    for (const char ch : field)
        if (ch < '0' || ch > '9')
            return false;
    char* after = nullptr;
    out = std::size_t(std::strtoull(field.c_str(), &after, 10));
    return after == field.c_str() + field.size();
}

bool parse_seconds(const std::string& field, double& out)
{
    if (field.empty())
        return false;
    char* after = nullptr;
    out = std::strtod(field.c_str(), &after);
    return after == field.c_str() + field.size() && out >= 0.0;
}

} // namespace

std::optional<fault_plan> fault_plan::parse(const std::string& spec)
{
    const std::vector<std::string> f = split_fields(spec);
    fault_plan plan;
    if (f[0] == "throw") {
        plan.action = kind::throw_error;
        if (f.size() < 2 || f.size() > 3 || !parse_size(f[1], plan.flat))
            return std::nullopt;
        if (f.size() == 3 &&
            (!parse_size(f[2], plan.attempts) || plan.attempts == 0))
            return std::nullopt;
        return plan;
    }
    if (f[0] == "stall") {
        plan.action = kind::stall;
        if (f.size() < 3 || f.size() > 4 || !parse_size(f[1], plan.flat) ||
            !parse_seconds(f[2], plan.stall_seconds))
            return std::nullopt;
        if (f.size() == 4 &&
            (!parse_size(f[3], plan.attempts) || plan.attempts == 0))
            return std::nullopt;
        return plan;
    }
    if (f[0] == "exit") {
        plan.action = kind::hard_exit;
        if (f.size() < 2 || f.size() > 3 || !parse_size(f[1], plan.flat))
            return std::nullopt;
        if (f.size() == 3) {
            std::size_t code = 0;
            if (!parse_size(f[2], code) || code > 255)
                return std::nullopt;
            plan.exit_code = int(code);
        }
        return plan;
    }
    return std::nullopt;
}

void fault_plan::apply(std::size_t job_flat, std::size_t attempt) const
{
    if (action == kind::none || job_flat != flat || attempt >= attempts)
        return;
    switch (action) {
    case kind::throw_error:
        throw std::runtime_error("injected fault: job " +
                                 std::to_string(job_flat) + " attempt " +
                                 std::to_string(attempt));
    case kind::stall:
        std::this_thread::sleep_for(
            std::chrono::duration<double>(stall_seconds));
        return; // the job then runs normally (slowly)
    case kind::hard_exit:
        // No unwinding, no atexit, no stream flushes: the closest portable
        // stand-in for SIGKILL, so crash-safety tests see exactly the bytes
        // the sinks had already written.
        std::_Exit(exit_code);
    case kind::none:
        return;
    }
}

} // namespace lnuca::exp
