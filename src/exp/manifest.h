// Declarative sweep manifests: a versioned JSON description of an
// experiment space that expands deterministically into an exp::sweep.
//
// Schema `lnuca_sweep/1` — a single JSON object:
//
//   {
//     "schema":       "lnuca_sweep/1",          // required, exact
//     "name":         "l2-vs-ln3",              // optional label
//     "presets":      ["L2-256KB", "ln3"],      // required, non-empty;
//                                               //   hier::presets::by_name
//     "cores":        [1, 2],                   // optional, default [1]
//     "engine":       ["skip", "dense"],        // optional, default ["skip"]
//     "sampling":     ["off", "periodic:2000:40000"], // optional, ["off"]
//     "overrides":    [{}, {"l2.size_kb": 512}],// optional, default [{}]
//                                               //   hier::apply_config_override
//     "workloads":    ["429.mcf", "trace:t.bin", "scenario:ping_pong"],
//                                               // required, non-empty;
//                                               //   trace::parse_workload_spec
//     "replicates":   1,                        // optional, default 1
//     "base_seed":    1,                        // optional, default 1
//     "instructions": 400000,                   // optional, hier defaults
//     "warmup":       60000
//   }
//
// Unknown top-level keys, an unknown schema string, a mistyped preset /
// workload / engine / sampling / override key, or malformed JSON are all
// hard errors — a manifest is an experiment's record of truth and must not
// be silently reinterpreted.
//
// Expansion: the config axis is the nested product
//   preset x cores x engine x sampling x override-set
// in declared order (preset-major), and the sweep is then the usual
// config-major (config x workload x replicate) space of exp::sweep. Each
// expanded config's name carries its provenance: the preset's canonical
// name, presets::cmp's "-Nc" suffix, then "+dense"/"+paranoid",
// "+periodic:<detail>:<period>:<warmup>", and one "+key=value" per
// override in sorted key order — only non-default axis values append a
// suffix, so a minimal manifest reproduces the familiar preset names.
//
// Identity: `hash` is a 64-bit FNV-1a over the manifest's *canonical*
// serialisation — resolved preset names, canonical engine/sampling tokens,
// sorted override keys, declared axis order, all scalars decimal. Two
// manifest files that differ only in whitespace, key order, alias spelling
// ("ln3" vs "LN3-144KB") or override key order hash identically; any
// change to the experiment space changes the hash. The sweep stamps the
// hash into every job (job::manifest_hash), so every JSON-lines row proves
// which manifest produced it — the provenance check behind --resume and
// tools/merge_tool.
#pragma once

#include "src/exp/sweep.h"

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace lnuca::exp {

/// Current (only) schema tag.
inline constexpr const char* manifest_schema = "lnuca_sweep/1";

/// A parsed, expanded manifest. `configs` / `workloads` are fully realised
/// (override values applied, CMP wrapping done) — to_sweep() is a pure
/// repackaging, no further interpretation.
struct manifest {
    std::string name;                          ///< optional "name" label
    std::vector<hier::system_config> configs;  ///< expanded config axis
    std::vector<wl::workload_profile> workloads;
    std::size_t replicates = 1;
    std::uint64_t base_seed = 1;
    std::uint64_t instructions = hier::default_instructions;
    std::uint64_t warmup = hier::default_warmup;

    /// Canonical-content hash (see header comment); never 0 for a
    /// successfully parsed manifest (0 marks ad-hoc sweeps in job rows).
    std::uint64_t hash = 0;

    /// For each config, the index of its cores == 1 partner on the same
    /// (preset, engine, sampling, override) coordinates — the weighted-
    /// speedup baseline for CMP analysis — or nullopt when the manifest
    /// has no cores == 1 point for that combination.
    std::vector<std::optional<std::size_t>> baseline_config;

    /// Number of rows a complete result set must contain.
    std::size_t total_jobs() const
    {
        return configs.size() * workloads.size() * replicates;
    }

    /// The equivalent sweep (unsharded; callers add .shard() as needed),
    /// with manifest_hash stamped on every job.
    sweep to_sweep() const;
};

/// Parse a manifest from JSON text. On failure returns nullopt and, when
/// `error` is non-null, a one-line description naming the offending key.
std::optional<manifest> parse_manifest(const std::string& json_text,
                                       std::string* error);

/// Read and parse a manifest file (the --manifest flag).
std::optional<manifest> load_manifest(const std::string& path,
                                      std::string* error);

} // namespace lnuca::exp
