#include "src/exp/manifest.h"

#include "src/trace/workload_spec.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <utility>

namespace lnuca::exp {

namespace {

// ---------------------------------------------------------------------------
// Minimal JSON reader. Manifests are small hand-written files, so the
// reader optimises for error messages, not speed: every failure carries the
// byte offset and a reason. Numbers keep their raw text so 64-bit seeds
// survive without a double round-trip; \uXXXX escapes are rejected (a
// manifest is ASCII by construction — preset names, dotted keys, spec
// strings).
// ---------------------------------------------------------------------------

struct jvalue {
    enum class kind { null_t, bool_t, number, string, array, object };
    kind k = kind::null_t;
    bool boolean = false;
    std::string text; ///< string payload, or a number's raw text
    std::vector<jvalue> items;                           ///< array
    std::vector<std::pair<std::string, jvalue>> members; ///< object, in order
};

class json_reader {
public:
    explicit json_reader(const std::string& text) : s_(text) {}

    bool parse(jvalue& out, std::string* error)
    {
        skip_ws();
        bool ok = parse_value(out);
        if (ok) {
            skip_ws();
            if (pos_ != s_.size())
                ok = fail("trailing content after the top-level value");
        }
        if (!ok && error != nullptr) {
            *error = "JSON error at byte " + std::to_string(err_pos_) + ": " +
                     err_;
        }
        return ok;
    }

private:
    bool fail(const std::string& why)
    {
        if (err_.empty()) { // keep the innermost (root-cause) failure
            err_ = why;
            err_pos_ = pos_;
        }
        return false;
    }

    void skip_ws()
    {
        while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                                    s_[pos_] == '\n' || s_[pos_] == '\r'))
            ++pos_;
    }

    bool consume(char c)
    {
        if (pos_ < s_.size() && s_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool parse_value(jvalue& out)
    {
        if (pos_ >= s_.size())
            return fail("unexpected end of input");
        const char c = s_[pos_];
        if (c == '{')
            return parse_object(out);
        if (c == '[')
            return parse_array(out);
        if (c == '"') {
            out.k = jvalue::kind::string;
            return parse_string(out.text);
        }
        if (c == '-' || (c >= '0' && c <= '9'))
            return parse_number(out);
        if (s_.compare(pos_, 4, "true") == 0) {
            out.k = jvalue::kind::bool_t;
            out.boolean = true;
            pos_ += 4;
            return true;
        }
        if (s_.compare(pos_, 5, "false") == 0) {
            out.k = jvalue::kind::bool_t;
            out.boolean = false;
            pos_ += 5;
            return true;
        }
        if (s_.compare(pos_, 4, "null") == 0) {
            out.k = jvalue::kind::null_t;
            pos_ += 4;
            return true;
        }
        return fail("expected a JSON value");
    }

    bool parse_object(jvalue& out)
    {
        out.k = jvalue::kind::object;
        consume('{');
        skip_ws();
        if (consume('}'))
            return true;
        while (true) {
            skip_ws();
            std::string key;
            if (!parse_string(key))
                return fail("expected an object key string");
            skip_ws();
            if (!consume(':'))
                return fail("expected ':' after object key");
            skip_ws();
            jvalue child;
            if (!parse_value(child))
                return false;
            out.members.emplace_back(std::move(key), std::move(child));
            skip_ws();
            if (consume('}'))
                return true;
            if (!consume(','))
                return fail("expected ',' or '}' in object");
        }
    }

    bool parse_array(jvalue& out)
    {
        out.k = jvalue::kind::array;
        consume('[');
        skip_ws();
        if (consume(']'))
            return true;
        while (true) {
            skip_ws();
            jvalue child;
            if (!parse_value(child))
                return false;
            out.items.push_back(std::move(child));
            skip_ws();
            if (consume(']'))
                return true;
            if (!consume(','))
                return fail("expected ',' or ']' in array");
        }
    }

    bool parse_string(std::string& out)
    {
        if (!consume('"'))
            return fail("expected '\"'");
        out.clear();
        while (pos_ < s_.size()) {
            const char c = s_[pos_++];
            if (c == '"')
                return true;
            if (c == '\\') {
                if (pos_ >= s_.size())
                    break;
                const char e = s_[pos_++];
                switch (e) {
                case '"': out += '"'; break;
                case '\\': out += '\\'; break;
                case '/': out += '/'; break;
                case 'b': out += '\b'; break;
                case 'f': out += '\f'; break;
                case 'n': out += '\n'; break;
                case 'r': out += '\r'; break;
                case 't': out += '\t'; break;
                default:
                    --pos_;
                    return fail("unsupported string escape");
                }
            } else {
                out += c;
            }
        }
        return fail("unterminated string");
    }

    bool parse_number(jvalue& out)
    {
        const std::size_t start = pos_;
        if (consume('-')) {
        }
        while (pos_ < s_.size() && s_[pos_] >= '0' && s_[pos_] <= '9')
            ++pos_;
        if (pos_ == start || (pos_ == start + 1 && s_[start] == '-'))
            return fail("malformed number");
        if (consume('.')) {
            const std::size_t frac = pos_;
            while (pos_ < s_.size() && s_[pos_] >= '0' && s_[pos_] <= '9')
                ++pos_;
            if (pos_ == frac)
                return fail("malformed number (empty fraction)");
        }
        if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < s_.size() && (s_[pos_] == '+' || s_[pos_] == '-'))
                ++pos_;
            const std::size_t exp = pos_;
            while (pos_ < s_.size() && s_[pos_] >= '0' && s_[pos_] <= '9')
                ++pos_;
            if (pos_ == exp)
                return fail("malformed number (empty exponent)");
        }
        out.k = jvalue::kind::number;
        out.text = s_.substr(start, pos_ - start);
        return true;
    }

    const std::string& s_;
    std::size_t pos_ = 0;
    std::string err_;
    std::size_t err_pos_ = 0;
};

// A manifest scalar: a number that is a plain non-negative integer (no
// sign, fraction or exponent — a seed/count with a fractional part is a
// mistake, not something to round).
bool as_u64(const jvalue& v, std::uint64_t& out)
{
    if (v.k != jvalue::kind::number || v.text.empty())
        return false;
    for (char c : v.text)
        if (c < '0' || c > '9')
            return false;
    out = std::strtoull(v.text.c_str(), nullptr, 10);
    return true;
}

// ---------------------------------------------------------------------------
// Canonical hashing: FNV-1a 64 over the canonical serialisation.
// ---------------------------------------------------------------------------

constexpr std::uint64_t fnv_offset = 14695981039346656037ull;
constexpr std::uint64_t fnv_prime = 1099511628211ull;

std::uint64_t fnv1a(std::uint64_t h, const std::string& s)
{
    for (unsigned char c : s) {
        h ^= c;
        h *= fnv_prime;
    }
    return h;
}

// Axis entries after validation, before expansion.
struct engine_entry {
    sim::schedule_mode mode;
    std::string canon; ///< "skip" | "dense" | "paranoid"
};

struct sampling_entry {
    hier::sampling_config config;
    std::string canon; ///< "off" | "periodic:<detail>:<period>:<warmup>"
};

using override_set = std::map<std::string, std::uint64_t>; // sorted keys

std::string canon_override_set(const override_set& set)
{
    std::string out = "{";
    bool first = true;
    for (const auto& [key, value] : set) {
        if (!first)
            out += ';';
        first = false;
        out += key;
        out += '=';
        out += std::to_string(value);
    }
    out += '}';
    return out;
}

bool set_error(std::string* error, std::string text)
{
    if (error != nullptr)
        *error = std::move(text);
    return false;
}

} // namespace

sweep manifest::to_sweep() const
{
    sweep s;
    s.add_configs(configs)
        .add_workloads(workloads)
        .replicates(replicates)
        .instructions(instructions)
        .warmup(warmup)
        .base_seed(base_seed)
        .manifest_hash(hash);
    return s;
}

std::optional<manifest> parse_manifest(const std::string& json_text,
                                       std::string* error)
{
    jvalue root;
    {
        json_reader reader(json_text);
        std::string json_error;
        if (!reader.parse(root, &json_error)) {
            set_error(error, json_error);
            return std::nullopt;
        }
    }
    if (root.k != jvalue::kind::object) {
        set_error(error, "manifest must be a JSON object");
        return std::nullopt;
    }

    // --- Collect raw fields, rejecting unknown and duplicate keys. --------
    std::map<std::string, const jvalue*> fields;
    static const char* const known[] = {
        "schema",   "name",       "presets",    "cores",
        "engine",   "sampling",   "overrides",  "workloads",
        "replicates", "base_seed", "instructions", "warmup",
    };
    for (const auto& [key, value] : root.members) {
        if (std::find_if(std::begin(known), std::end(known),
                         [&](const char* k) { return key == k; }) ==
            std::end(known)) {
            set_error(error, "unknown manifest key '" + key + "'");
            return std::nullopt;
        }
        if (!fields.emplace(key, &value).second) {
            set_error(error, "duplicate manifest key '" + key + "'");
            return std::nullopt;
        }
    }
    const auto field = [&](const char* key) -> const jvalue* {
        const auto it = fields.find(key);
        return it == fields.end() ? nullptr : it->second;
    };

    // --- schema (required, exact) -----------------------------------------
    const jvalue* schema = field("schema");
    if (schema == nullptr || schema->k != jvalue::kind::string) {
        set_error(error, "manifest is missing the \"schema\" string");
        return std::nullopt;
    }
    if (schema->text != manifest_schema) {
        set_error(error, "unsupported manifest schema '" + schema->text +
                             "' (this build reads '" +
                             std::string(manifest_schema) + "')");
        return std::nullopt;
    }

    manifest m;
    if (const jvalue* name = field("name")) {
        if (name->k != jvalue::kind::string) {
            set_error(error, "manifest \"name\" must be a string");
            return std::nullopt;
        }
        m.name = name->text;
    }

    // --- presets (required) -----------------------------------------------
    std::vector<hier::system_config> bases;
    const jvalue* presets = field("presets");
    if (presets == nullptr || presets->k != jvalue::kind::array ||
        presets->items.empty()) {
        set_error(error, "manifest \"presets\" must be a non-empty array of "
                         "preset names");
        return std::nullopt;
    }
    for (const jvalue& entry : presets->items) {
        if (entry.k != jvalue::kind::string) {
            set_error(error, "manifest \"presets\" entries must be strings");
            return std::nullopt;
        }
        auto config = hier::presets::by_name(entry.text);
        if (!config) {
            set_error(error, "unknown preset '" + entry.text + "'");
            return std::nullopt;
        }
        bases.push_back(std::move(*config));
    }

    // --- cores (optional, default [1]) ------------------------------------
    std::vector<unsigned> cores{1};
    if (const jvalue* axis = field("cores")) {
        if (axis->k != jvalue::kind::array || axis->items.empty()) {
            set_error(error, "manifest \"cores\" must be a non-empty array "
                             "of core counts");
            return std::nullopt;
        }
        cores.clear();
        for (const jvalue& entry : axis->items) {
            std::uint64_t value = 0;
            if (!as_u64(entry, value) || value < 1 || value > 32) {
                set_error(error, "manifest \"cores\" entries must be "
                                 "integers in [1, 32]");
                return std::nullopt;
            }
            cores.push_back(unsigned(value));
        }
    }

    // --- engine (optional, default ["skip"]) ------------------------------
    std::vector<engine_entry> engines{{sim::schedule_mode::idle_skip, "skip"}};
    if (const jvalue* axis = field("engine")) {
        if (axis->k != jvalue::kind::array || axis->items.empty()) {
            set_error(error, "manifest \"engine\" must be a non-empty array "
                             "of engine modes");
            return std::nullopt;
        }
        engines.clear();
        for (const jvalue& entry : axis->items) {
            engine_entry e;
            if (entry.k == jvalue::kind::string && entry.text == "dense") {
                e = {sim::schedule_mode::dense, "dense"};
            } else if (entry.k == jvalue::kind::string &&
                       (entry.text == "skip" || entry.text == "idle_skip" ||
                        entry.text == "idle-skip")) {
                e = {sim::schedule_mode::idle_skip, "skip"};
            } else if (entry.k == jvalue::kind::string &&
                       entry.text == "paranoid") {
                e = {sim::schedule_mode::paranoid, "paranoid"};
            } else {
                set_error(error, "manifest \"engine\" entries must be "
                                 "\"dense\", \"skip\" or \"paranoid\"");
                return std::nullopt;
            }
            engines.push_back(std::move(e));
        }
    }

    // --- sampling (optional, default ["off"]) -----------------------------
    std::vector<sampling_entry> samplings{{hier::sampling_config{}, "off"}};
    if (const jvalue* axis = field("sampling")) {
        if (axis->k != jvalue::kind::array || axis->items.empty()) {
            set_error(error, "manifest \"sampling\" must be a non-empty "
                             "array of sampling specs");
            return std::nullopt;
        }
        samplings.clear();
        for (const jvalue& entry : axis->items) {
            std::optional<hier::sampling_config> parsed;
            if (entry.k == jvalue::kind::string)
                parsed = hier::parse_sampling_spec(entry.text);
            if (!parsed) {
                set_error(error,
                          "manifest \"sampling\" entries must be \"off\" or "
                          "\"periodic:<detail>:<period>[:<warmup>]\"");
                return std::nullopt;
            }
            sampling_entry s;
            s.config = *parsed;
            if (!s.config.enabled) {
                s.canon = "off";
            } else {
                char buf[96];
                std::snprintf(buf, sizeof buf,
                              "periodic:%llu:%llu:%llu",
                              (unsigned long long)s.config.detail_instructions,
                              (unsigned long long)s.config.period_instructions,
                              (unsigned long long)s.config.detail_warmup);
                s.canon = buf;
            }
            samplings.push_back(std::move(s));
        }
    }

    // --- overrides (optional, default [{}]) -------------------------------
    std::vector<override_set> overrides{override_set{}};
    if (const jvalue* axis = field("overrides")) {
        if (axis->k != jvalue::kind::array || axis->items.empty()) {
            set_error(error, "manifest \"overrides\" must be a non-empty "
                             "array of {\"dotted.key\": value} objects");
            return std::nullopt;
        }
        overrides.clear();
        for (const jvalue& entry : axis->items) {
            if (entry.k != jvalue::kind::object) {
                set_error(error, "manifest \"overrides\" entries must be "
                                 "objects");
                return std::nullopt;
            }
            override_set set;
            for (const auto& [key, value] : entry.members) {
                std::uint64_t v = 0;
                if (!as_u64(value, v)) {
                    set_error(error, "override '" + key +
                                         "' must be a non-negative integer");
                    return std::nullopt;
                }
                if (!set.emplace(key, v).second) {
                    set_error(error,
                              "duplicate override key '" + key + "'");
                    return std::nullopt;
                }
            }
            overrides.push_back(std::move(set));
        }
    }

    // --- workloads (required) ---------------------------------------------
    std::vector<std::string> workload_specs;
    const jvalue* workloads = field("workloads");
    if (workloads == nullptr || workloads->k != jvalue::kind::array ||
        workloads->items.empty()) {
        set_error(error, "manifest \"workloads\" must be a non-empty array "
                         "of workload specs");
        return std::nullopt;
    }
    for (const jvalue& entry : workloads->items) {
        if (entry.k != jvalue::kind::string) {
            set_error(error, "manifest \"workloads\" entries must be "
                             "strings");
            return std::nullopt;
        }
        auto profile = trace::parse_workload_spec(entry.text);
        if (!profile) {
            set_error(error, "unknown workload spec '" + entry.text +
                                 "' (expected a SPEC proxy name, "
                                 "trace:<file>, or scenario:<name>)");
            return std::nullopt;
        }
        workload_specs.push_back(entry.text);
        m.workloads.push_back(std::move(*profile));
    }

    // --- scalars ----------------------------------------------------------
    const auto scalar = [&](const char* key, std::uint64_t& out) {
        const jvalue* v = field(key);
        if (v == nullptr)
            return true;
        if (!as_u64(*v, out)) {
            set_error(error, std::string("manifest \"") + key +
                                 "\" must be a non-negative integer");
            return false;
        }
        return true;
    };
    std::uint64_t replicates = 1;
    if (!scalar("replicates", replicates))
        return std::nullopt;
    if (replicates == 0) {
        set_error(error, "manifest \"replicates\" must be >= 1");
        return std::nullopt;
    }
    m.replicates = std::size_t(replicates);
    if (!scalar("base_seed", m.base_seed) ||
        !scalar("instructions", m.instructions) ||
        !scalar("warmup", m.warmup))
        return std::nullopt;

    // --- Expand the config axis: preset x cores x engine x sampling x
    // override-set, preset-major. -----------------------------------------
    for (const hier::system_config& base : bases)
        for (unsigned core_count : cores) {
            hier::system_config with_cores =
                core_count == 1 ? base : hier::presets::cmp(base, core_count);
            for (const engine_entry& engine : engines) {
                hier::system_config with_engine = with_cores;
                with_engine.engine_mode = engine.mode;
                if (engine.canon != "skip")
                    with_engine.name += "+" + engine.canon;
                for (const sampling_entry& sampling : samplings) {
                    hier::system_config with_sampling = with_engine;
                    with_sampling.sampling = sampling.config;
                    if (sampling.canon != "off")
                        with_sampling.name += "+" + sampling.canon;
                    for (const override_set& set : overrides) {
                        hier::system_config config = with_sampling;
                        for (const auto& [key, value] : set) {
                            std::string override_error;
                            if (!hier::apply_config_override(
                                    config, key, value, &override_error)) {
                                set_error(error, override_error);
                                return std::nullopt;
                            }
                            config.name +=
                                "+" + key + "=" + std::to_string(value);
                        }
                        m.configs.push_back(std::move(config));
                    }
                }
            }
        }

    // --- cores == 1 partner per config (weighted-speedup baselines). ------
    {
        std::optional<std::size_t> one;
        for (std::size_t i = 0; i < cores.size(); ++i)
            if (cores[i] == 1)
                one = i;
        const std::size_t per_core =
            engines.size() * samplings.size() * overrides.size();
        const std::size_t per_preset = cores.size() * per_core;
        m.baseline_config.resize(m.configs.size());
        for (std::size_t i = 0; i < m.configs.size(); ++i) {
            if (!one)
                continue;
            const std::size_t preset = i / per_preset;
            const std::size_t tail = i % per_core;
            m.baseline_config[i] =
                preset * per_preset + *one * per_core + tail;
        }
    }

    // --- Canonical serialisation -> content hash. -------------------------
    std::string canon = std::string(manifest_schema) + "\n";
    canon += "name=" + m.name + "\n";
    canon += "presets=";
    for (std::size_t i = 0; i < bases.size(); ++i)
        canon += (i != 0 ? "," : "") + bases[i].name;
    canon += "\ncores=";
    for (std::size_t i = 0; i < cores.size(); ++i)
        canon += (i != 0 ? "," : "") + std::to_string(cores[i]);
    canon += "\nengine=";
    for (std::size_t i = 0; i < engines.size(); ++i)
        canon += (i != 0 ? "," : "") + engines[i].canon;
    canon += "\nsampling=";
    for (std::size_t i = 0; i < samplings.size(); ++i)
        canon += (i != 0 ? "," : "") + samplings[i].canon;
    canon += "\noverrides=";
    for (std::size_t i = 0; i < overrides.size(); ++i)
        canon += (i != 0 ? "," : "") + canon_override_set(overrides[i]);
    canon += "\nworkloads=";
    for (std::size_t i = 0; i < workload_specs.size(); ++i)
        canon += (i != 0 ? "," : "") + workload_specs[i];
    canon += "\nreplicates=" + std::to_string(m.replicates);
    canon += "\nbase_seed=" + std::to_string(m.base_seed);
    canon += "\ninstructions=" + std::to_string(m.instructions);
    canon += "\nwarmup=" + std::to_string(m.warmup);
    m.hash = fnv1a(fnv_offset, canon);
    if (m.hash == 0)
        m.hash = 1; // 0 is the "no manifest" sentinel in job rows

    return m;
}

std::optional<manifest> load_manifest(const std::string& path,
                                      std::string* error)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        set_error(error, "cannot read manifest '" + path + "'");
        return std::nullopt;
    }
    std::string text(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>{});
    std::string parse_error;
    auto m = parse_manifest(text, &parse_error);
    if (!m) {
        set_error(error, path + ": " + parse_error);
        return std::nullopt;
    }
    return m;
}

} // namespace lnuca::exp
