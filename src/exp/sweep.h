// Declarative (config x workload x replicate) experiment space.
//
// build() expands the cartesian product in a fixed order — config-major,
// then workload, then replicate — and derives every job's seed with
// rng::split(base seed, config, workload, replicate), so the job list is a
// pure function of the sweep description. Shard filters keep the subset of
// that list with flat index == shard_index (mod shard_count): the shards of
// a sweep partition it exactly, which lets N machines each run
// `--shard i/N` and concatenate their JSON-lines outputs into the same
// result set a single machine would produce.
#pragma once

#include "src/exp/job.h"
#include "src/hier/presets.h"
#include "src/workloads/profile.h"

#include <cstddef>
#include <cstdint>
#include <vector>

namespace lnuca::exp {

class sweep {
public:
    sweep& add_config(hier::system_config config);
    sweep& add_configs(const std::vector<hier::system_config>& configs);
    sweep& add_workload(wl::workload_profile workload);
    sweep& add_workloads(const std::vector<wl::workload_profile>& workloads);

    /// Repeated measurements per (config, workload); default 1.
    sweep& replicates(std::size_t count);

    sweep& instructions(std::uint64_t count);
    sweep& warmup(std::uint64_t count);
    sweep& base_seed(std::uint64_t seed);

    /// Keep only jobs with flat index == index (mod count). count == 1 (the
    /// default) keeps everything. index must be < count.
    sweep& shard(std::size_t index, std::size_t count);

    /// Provenance stamp for manifest-driven sweeps: every built job (and
    /// hence every JSONL row) carries this hash. 0 (the default) marks an
    /// ad-hoc sweep.
    sweep& manifest_hash(std::uint64_t hash);

    const std::vector<hier::system_config>& configs() const { return configs_; }
    const std::vector<wl::workload_profile>& workloads() const
    {
        return workloads_;
    }
    std::size_t replicate_count() const { return replicates_; }
    std::uint64_t instruction_count() const { return instructions_; }
    std::uint64_t warmup_count() const { return warmup_; }
    std::uint64_t seed() const { return base_seed_; }
    std::size_t shard_index() const { return shard_index_; }
    std::size_t shard_count() const { return shard_count_; }
    std::uint64_t manifest() const { return manifest_hash_; }

    /// Size of the full cartesian space, ignoring the shard filter.
    std::size_t total_jobs() const
    {
        return configs_.size() * workloads_.size() * replicates_;
    }

    /// Expand to the (shard-filtered) job list in deterministic flat order.
    std::vector<job> build() const;

private:
    std::vector<hier::system_config> configs_;
    std::vector<wl::workload_profile> workloads_;
    std::size_t replicates_ = 1;
    std::uint64_t instructions_ = hier::default_instructions;
    std::uint64_t warmup_ = hier::default_warmup;
    std::uint64_t base_seed_ = 1;
    std::size_t shard_index_ = 0;
    std::size_t shard_count_ = 1;
    std::uint64_t manifest_hash_ = 0;
};

} // namespace lnuca::exp
