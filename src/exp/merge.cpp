#include "src/exp/merge.h"

#include <algorithm>
#include <map>

namespace lnuca::exp {

namespace {

// Canonical deterministic encoding of a row: the encode_json_line() bytes
// with the host-timing trio (the only nondeterministic fields) zeroed.
// Two runs of the same job must agree on this string bit-for-bit.
std::string deterministic_encoding(const job& j, hier::run_result r)
{
    r.host_seconds = 0.0;
    r.sim_cycles_per_second = 0.0;
    r.sim_instructions_per_second = 0.0;
    return encode_json_line(j, r);
}

std::string flat_list(const std::vector<std::size_t>& flats)
{
    // Compact "0-3,7,9-11" ranges; a 10k-row sweep with one shard missing
    // should not print 5k numbers.
    std::string out;
    std::size_t i = 0;
    while (i < flats.size()) {
        std::size_t run_end = i;
        while (run_end + 1 < flats.size() &&
               flats[run_end + 1] == flats[run_end] + 1)
            ++run_end;
        if (!out.empty())
            out += ',';
        out += std::to_string(flats[i]);
        if (run_end > i)
            out += '-' + std::to_string(flats[run_end]);
        i = run_end + 1;
    }
    return out;
}

} // namespace

bool merge_results(const manifest& m, const std::vector<merge_input>& inputs,
                   std::string& out_jsonl, merge_report& report,
                   std::string* error)
{
    out_jsonl.clear();
    report = merge_report{};
    report.expected = m.total_jobs();

    const std::vector<job> jobs = m.to_sweep().build();

    // flat -> best row so far. `ok` rows carry their canonical encoding so
    // duplicates can be compared without re-deriving it.
    struct best_row {
        bool ok = false;
        hier::run_result result;
        std::string canonical; ///< deterministic_encoding, ok rows only
    };
    std::map<std::size_t, best_row> rows;

    const auto fail = [&](const std::string& label, std::size_t line_no,
                          const std::string& why) {
        if (error != nullptr)
            *error = label + " line " + std::to_string(line_no) + ": " + why;
        return false;
    };

    for (const merge_input& input : inputs) {
        const std::string& content = input.second;
        std::size_t line_start = 0;
        std::size_t line_no = 0;
        while (line_start < content.size()) {
            std::size_t newline = content.find('\n', line_start);
            const bool terminated = newline != std::string::npos;
            if (!terminated)
                newline = content.size();
            const std::string line =
                content.substr(line_start, newline - line_start);
            const std::size_t next =
                terminated ? newline + 1 : content.size();
            ++line_no;
            line_start = next;

            if (line.empty())
                continue;
            const auto decoded = decode_json_line(line);
            if (!decoded) {
                // Only a *trailing* undecodable line is a legitimate torn
                // tail; mid-file corruption means rows are gone for good.
                if (next < content.size())
                    return fail(input.first, line_no,
                                "malformed row is not the trailing line; "
                                "the file is corrupt, not merely torn");
                ++report.torn_tails;
                break;
            }

            // Provenance: the row must be this manifest's job at its flat
            // index, bit for bit.
            const std::size_t flat = decoded->key.flat;
            if (flat >= jobs.size())
                return fail(input.first, line_no,
                            "flat index " + std::to_string(flat) +
                                " is outside the manifest's " +
                                std::to_string(jobs.size()) + " jobs");
            const job& j = jobs[flat];
            if (!(j.key == decoded->key) || j.seed != decoded->seed ||
                j.instructions != decoded->instructions_requested ||
                j.warmup != decoded->warmup ||
                j.manifest_hash != decoded->manifest_hash)
                return fail(input.first, line_no,
                            "row does not belong to this manifest (flat " +
                                std::to_string(flat) +
                                "): coordinates, seed, run length or "
                                "manifest hash disagree");

            ++report.rows_seen;
            const bool is_ok = decoded->result.status == hier::run_status::ok;
            best_row& slot = rows[flat];
            if (!is_ok) {
                // failed / timed_out (or a stray skipped_resumed, which a
                // sink never writes): keep only as evidence that the flat
                // was attempted; any ok row supersedes it.
                if (!slot.ok)
                    slot.result = decoded->result;
                continue;
            }
            std::string canonical = deterministic_encoding(j, decoded->result);
            if (slot.ok) {
                if (slot.canonical != canonical)
                    return fail(input.first, line_no,
                                "conflicting completed rows for flat " +
                                    std::to_string(flat) +
                                    ": two ok runs of the same job differ "
                                    "on deterministic fields (seed reuse "
                                    "or nondeterminism)");
                ++report.duplicates;
                continue;
            }
            slot.ok = true;
            slot.result = decoded->result;
            slot.canonical = std::move(canonical);
        }
    }

    // Coverage + canonical output, in flat order.
    for (std::size_t flat = 0; flat < jobs.size(); ++flat) {
        const auto it = rows.find(flat);
        if (it == rows.end()) {
            report.missing.push_back(flat);
            continue;
        }
        if (!it->second.ok) {
            report.failed.push_back(flat);
            continue;
        }
        out_jsonl += encode_json_line(jobs[flat], it->second.result);
        out_jsonl += '\n';
    }
    return true;
}

std::string describe_merge(const merge_report& report)
{
    const std::size_t completed =
        report.expected - report.missing.size() - report.failed.size();
    std::string out = "merge: " + std::to_string(completed) + "/" +
                      std::to_string(report.expected) + " flats completed, " +
                      std::to_string(report.rows_seen) + " rows read, " +
                      std::to_string(report.duplicates) + " duplicates, " +
                      std::to_string(report.torn_tails) + " torn tails";
    if (!report.failed.empty())
        out += "\n  failed flats:  " + flat_list(report.failed);
    if (!report.missing.empty())
        out += "\n  missing flats: " + flat_list(report.missing);
    return out;
}

} // namespace lnuca::exp
