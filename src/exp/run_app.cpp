#include "src/exp/run_app.h"

#include "src/ckpt/signal.h"
#include "src/common/stats.h"
#include "src/exp/manifest.h"
#include "src/trace/workload_spec.h"

#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iostream>

namespace lnuca::exp {

namespace {

// "--shard i/n" -> (i, n). Accepts "i:n" too. Digits only — no silent
// partial parses ("--shard 0x1/2" is a typo, not shard 0).
bool parse_shard(const std::string& text, std::size_t& index,
                 std::size_t& count)
{
    const std::size_t sep = text.find_first_of("/:");
    if (sep == std::string::npos || sep == 0 || sep + 1 >= text.size())
        return false;
    const std::string left = text.substr(0, sep);
    const std::string right = text.substr(sep + 1);
    for (const std::string& part : {left, right})
        for (char c : part)
            if (c < '0' || c > '9')
                return false;
    index = std::size_t(std::strtoull(left.c_str(), nullptr, 10));
    count = std::size_t(std::strtoull(right.c_str(), nullptr, 10));
    return count > 0 && index < count;
}

void set_cli_error(app_options& opt, std::string text)
{
    if (!opt.cli_error) { // keep the first error; it is the root cause
        opt.cli_error = true;
        opt.cli_error_text = std::move(text);
    }
}

// The spec string a workload profile was parsed from (inverse of
// trace::parse_workload_spec) — the canonical sort key for --workload.
std::string workload_spec_of(const wl::workload_profile& w)
{
    if (!w.scenario.empty())
        return "scenario:" + w.scenario;
    if (!w.trace_path.empty())
        return "trace:" + w.trace_path;
    return w.name;
}

} // namespace

app_options parse_app_options(const cli_args& args)
{
    app_options opt;
    opt.instructions = args.get_u64("instructions", opt.instructions);
    opt.warmup = args.get_u64("warmup", opt.warmup);
    opt.seed = args.get_u64("seed", opt.seed);
    opt.replicates = std::size_t(args.get_u64("replicates", opt.replicates));
    opt.threads = unsigned(args.get_u64("threads", opt.threads));
    opt.json_path = args.get_string("json", "");
    opt.csv_path = args.get_string("csv", "");
    opt.quiet = args.has_flag("quiet");
    const std::string engine = args.get_string("engine", "skip");
    if (engine == "dense")
        opt.engine_mode = sim::schedule_mode::dense;
    else if (engine == "skip" || engine == "idle_skip" || engine == "idle-skip")
        opt.engine_mode = sim::schedule_mode::idle_skip;
    else if (engine == "paranoid")
        opt.engine_mode = sim::schedule_mode::paranoid;
    else
        std::fprintf(stderr,
                     "unknown --engine '%s' (dense|skip|paranoid); using "
                     "idle-skip\n",
                     engine.c_str());
    const std::string sampling = args.get_string("sampling", "off");
    if (const auto parsed = hier::parse_sampling_spec(sampling)) {
        opt.sampling = *parsed;
    } else {
        std::fprintf(stderr,
                     "unknown --sampling '%s' (off|periodic:<detail>:<period>"
                     "[:<warmup>]); sampling stays off\n",
                     sampling.c_str());
    }
    if (const auto shard = args.value("shard")) {
        // A mistyped shard used to fall back to the *full* sweep — the
        // worst possible recovery for a fleet driver, which would then run
        // N copies of everything. It is a hard CLI error now.
        if (!parse_shard(*shard, opt.shard_index, opt.shard_count))
            set_cli_error(opt, "invalid --shard '" + *shard +
                                   "' (expected i/n with i < n)");
    }
    if (const auto workloads = args.value("workload")) {
        std::string bad;
        opt.workload_override = trace::parse_workload_list(*workloads, &bad);
        if (opt.workload_override.empty())
            std::fprintf(stderr,
                         "unknown --workload spec '%s' (expected a SPEC "
                         "proxy name, trace:<file>, or scenario:<name>); "
                         "keeping the default workload set\n",
                         bad.c_str());
        // Canonical ordering: a sweep's flat indices (and hence seeds and
        // resume/merge provenance) must be a function of the workload
        // *set*, not of the order the specs were typed in — otherwise
        // `--workload a,b --resume` silently rejects a file written by the
        // equivalent `--workload b,a` run. Stable sort by spec string;
        // duplicates keep their relative order (and their distinct flats).
        std::stable_sort(opt.workload_override.begin(),
                         opt.workload_override.end(),
                         [](const wl::workload_profile& a,
                            const wl::workload_profile& b) {
                             return workload_spec_of(a) < workload_spec_of(b);
                         });
    }
    opt.capture_path = args.get_string("capture", "");

    // --manifest: the file is authoritative for the experiment definition;
    // every flag that would redefine part of it is rejected rather than
    // silently out-voted (the row provenance hash would not match what the
    // operator typed).
    opt.manifest_path = args.get_string("manifest", "");
    if (!opt.manifest_path.empty()) {
        for (const char* flag :
             {"workload", "instructions", "warmup", "seed", "replicates",
              "engine", "sampling", "capture"}) {
            if (args.value(flag))
                set_cli_error(opt, std::string("--manifest and --") + flag +
                                       " are mutually exclusive (the "
                                       "manifest defines the experiment)");
        }
    }

    opt.timeout_seconds = args.get_double("timeout", 0.0);
    if (opt.timeout_seconds < 0.0)
        set_cli_error(opt, "--timeout must be >= 0 seconds");
    opt.retries = std::size_t(args.get_u64("retries", 0));
    opt.resume = args.has_flag("resume");
    opt.durable_rows = std::size_t(args.get_u64("durable", 0));

    opt.checkpoint_every = args.get_u64("checkpoint-every", 0);
    opt.checkpoint_dir = args.get_string("checkpoint-dir", "");
    if (opt.checkpoint_every != 0 && opt.checkpoint_dir.empty()) {
        // Default the snapshot directory next to the JSON-lines output, so
        // --resume finds both halves of an interrupted run in one place.
        opt.checkpoint_dir = !opt.json_path.empty() && opt.json_path != "-"
                                 ? opt.json_path + ".ckpt.d"
                                 : "checkpoints";
    }
    if (opt.checkpoint_every != 0 && !opt.capture_path.empty())
        set_cli_error(opt,
                      "--checkpoint-every and --capture are mutually "
                      "exclusive (a restored capture would re-emit only the "
                      "post-restore suffix, truncating the trace)");

    // Fault injection: the flag wins over the LNUCA_FAULT environment
    // variable (the env var exists so CI can crash a binary it did not
    // build the command line of).
    std::string fault_spec = args.get_string("fault", "");
    if (fault_spec.empty())
        if (const char* env = std::getenv("LNUCA_FAULT"))
            fault_spec = env;
    if (!fault_spec.empty()) {
        if (const auto plan = fault_plan::parse(fault_spec))
            opt.fault = *plan;
        else
            set_cli_error(opt,
                          "invalid fault spec '" + fault_spec +
                              "' (throw:<flat>[:<attempts>] | "
                              "stall:<flat>:<seconds>[:<attempts>] | "
                              "exit:<flat>[:<code>])");
    }
    return opt;
}

sink_set make_sinks(const app_options& opt, bool with_table)
{
    // "-" streams to stdout. The JSON-lines file opens O_APPEND (as
    // documented: successive runs/shards/resumes accumulate into one
    // trajectory, and appends are newline-atomic for crash safety); the
    // CSV file truncates, since its header row only makes sense once.
    sink_set set;
    if (!opt.json_path.empty()) {
        if (opt.json_path == "-") {
            set.json = std::make_unique<jsonl_sink>(std::cout);
        } else {
            // --durable N: write every row immediately, fsync every N.
            const std::size_t flush_rows = opt.durable_rows > 0 ? 1 : 64;
            set.json = std::make_unique<jsonl_sink>(opt.json_path, flush_rows,
                                                    opt.durable_rows);
            if (!set.json->ok()) {
                std::fprintf(stderr, "cannot open '%s' for writing\n",
                             opt.json_path.c_str());
                set.ok = false;
                return set;
            }
        }
        set.sinks.push_back(set.json.get());
    }
    if (!opt.csv_path.empty()) {
        if (opt.csv_path == "-") {
            set.csv = std::make_unique<csv_sink>(std::cout);
        } else {
            set.csv_file = std::make_unique<std::ofstream>(opt.csv_path);
            if (!*set.csv_file) {
                std::fprintf(stderr, "cannot open '%s' for writing\n",
                             opt.csv_path.c_str());
                set.ok = false;
                return set;
            }
            set.csv = std::make_unique<csv_sink>(*set.csv_file);
        }
        set.sinks.push_back(set.csv.get());
    }
    if (with_table) {
        set.table = std::make_unique<table_sink>(std::cout);
        set.sinks.push_back(set.table.get());
    }
    return set;
}

bool scan_resume_file(const app_options& opt, const sweep& s, resume_scan& out)
{
    out = resume_scan{};
    if (opt.json_path.empty() || opt.json_path == "-") {
        std::fprintf(stderr,
                     "--resume requires --json FILE (the file to scan and "
                     "extend)\n");
        return false;
    }

    std::string content;
    {
        std::ifstream in(opt.json_path, std::ios::binary);
        if (!in)
            return true; // nothing written yet: resume of a fresh shard
        content.assign(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
    }

    // The unsharded job list: rows from sibling shards of the same sweep
    // may share the file and must verify (and be ignored) too.
    sweep full = s;
    full.shard(0, 1);
    const std::vector<job> jobs = full.build();

    std::size_t line_start = 0;
    std::size_t line_no = 0;
    while (line_start < content.size()) {
        std::size_t newline = content.find('\n', line_start);
        const bool terminated = newline != std::string::npos;
        if (!terminated)
            newline = content.size();
        const std::string line =
            content.substr(line_start, newline - line_start);
        const std::size_t next = terminated ? newline + 1 : content.size();
        ++line_no;

        if (line.empty()) {
            line_start = next;
            continue;
        }
        const auto decoded = decode_json_line(line);
        if (!decoded) {
            // A torn tail from a mid-write kill can only be the *last*
            // line. Anywhere else the file is corrupt, and silently
            // skipping a row would un-resume it into a duplicate.
            if (next < content.size()) {
                std::fprintf(stderr,
                             "--resume: '%s' line %zu is malformed and not "
                             "the trailing line; refusing to resume from a "
                             "corrupt file\n",
                             opt.json_path.c_str(), line_no);
                return false;
            }
            if (::truncate(opt.json_path.c_str(), off_t(line_start)) != 0) {
                std::fprintf(stderr,
                             "--resume: cannot truncate torn tail of '%s'\n",
                             opt.json_path.c_str());
                return false;
            }
            out.truncated_tail = true;
            break;
        }

        // Every decodable row must belong to *this* sweep: same flat
        // coordinates, the same derived seed and the same run length.
        // Anything else means the file holds a different experiment and
        // resuming would silently mix the two.
        const std::size_t flat = decoded->key.flat;
        if (flat >= jobs.size() || !(jobs[flat].key == decoded->key) ||
            jobs[flat].seed != decoded->seed ||
            jobs[flat].instructions != decoded->instructions_requested ||
            jobs[flat].warmup != decoded->warmup ||
            jobs[flat].manifest_hash != decoded->manifest_hash) {
            std::fprintf(stderr,
                         "--resume: '%s' line %zu does not match this sweep "
                         "(flat %zu, seed %llu); was the file produced by a "
                         "different command line?\n",
                         opt.json_path.c_str(), line_no, flat,
                         (unsigned long long)decoded->seed);
            return false;
        }

        ++out.rows;
        const hier::run_status st = decoded->result.status;
        if (st == hier::run_status::ok ||
            st == hier::run_status::skipped_resumed) {
            out.completed[flat] = decoded->result; // last row wins
        } else {
            ++out.rerun_failed;
            out.completed.erase(flat); // an earlier ok row cannot shadow it
        }
        line_start = next;
    }
    return true;
}

run_options make_run_options(const app_options& opt, const resume_scan* scan)
{
    run_options ro;
    ro.threads = opt.threads;
    ro.job_timeout_seconds = opt.timeout_seconds;
    ro.job_retries = opt.retries;
    ro.fault = opt.fault ? &*opt.fault : nullptr;
    ro.resume = scan != nullptr ? &scan->completed : nullptr;
    if (opt.checkpoint_every != 0) {
        ro.checkpoint_dir = opt.checkpoint_dir;
        ro.checkpoint_every = opt.checkpoint_every;
        ro.checkpoint_resume = opt.resume;
    }
    return ro;
}

bool setup_checkpoints(const app_options& opt)
{
    if (opt.checkpoint_every == 0)
        return true;
    if (::mkdir(opt.checkpoint_dir.c_str(), 0755) != 0 && errno != EEXIST) {
        std::fprintf(stderr, "cannot create checkpoint dir '%s'\n",
                     opt.checkpoint_dir.c_str());
        return false;
    }
    // SIGTERM/SIGINT now latch instead of killing: each running job saves
    // a final snapshot at its next boundary and finish_sweep() reports
    // 128+signum, resumable with --resume.
    ckpt::install_signal_handlers();
    return true;
}

int finish_sweep(const report& rep)
{
    // Harness-health tally: both counters are 0 on every clean sweep, and
    // a non-zero value means work or rows were lost in a way the status
    // column cannot show.
    if (rep.abandoned_workers != 0)
        std::fprintf(stderr, "WARNING: %zu pool worker(s) abandoned at "
                             "shutdown (stuck tasks leaked)\n",
                     rep.abandoned_workers);
    if (rep.sink_failures != 0)
        std::fprintf(stderr, "WARNING: %zu sink(s) failed mid-sweep; the "
                             "output files are incomplete\n",
                     rep.sink_failures);

    // A latched SIGTERM/SIGINT preempted the sweep after each running job
    // saved a checkpoint: distinct exit code (128+signum, the shell kill
    // convention) so drivers re-run with --resume instead of triaging the
    // "failed" rows.
    if (ckpt::interrupt_requested()) {
        report_failures(rep);
        std::fprintf(stderr,
                     "sweep interrupted by signal %d after checkpointing; "
                     "re-run the same command with --resume to continue\n",
                     ckpt::interrupt_signal());
        return 128 + ckpt::interrupt_signal();
    }
    return -1;
}

int run_app(int argc, const char* const* argv,
            std::vector<hier::system_config> configs,
            std::vector<wl::workload_profile> workloads,
            const render_fn& render)
{
    const cli_args args(argc, argv);
    const app_options opt = parse_app_options(args);
    if (opt.cli_error) {
        std::fprintf(stderr, "%s\n", opt.cli_error_text.c_str());
        return exit_cli_error;
    }

    std::uint64_t manifest_hash = 0;
    std::uint64_t instructions = opt.instructions;
    std::uint64_t warmup = opt.warmup;
    std::uint64_t base_seed = opt.seed;
    std::size_t replicates = opt.replicates;
    if (!opt.manifest_path.empty()) {
        // The manifest replaces the bench's axes wholesale — configs carry
        // their own engine/sampling values, so the flag-driven rewrite
        // below must not touch them.
        std::string manifest_error;
        const auto m = load_manifest(opt.manifest_path, &manifest_error);
        if (!m) {
            std::fprintf(stderr, "%s\n", manifest_error.c_str());
            return exit_cli_error;
        }
        configs = m->configs;
        workloads = m->workloads;
        instructions = m->instructions;
        warmup = m->warmup;
        base_seed = m->base_seed;
        replicates = m->replicates;
        manifest_hash = m->hash;
    } else {
        if (!opt.workload_override.empty())
            workloads = opt.workload_override;
        for (auto& config : configs) {
            config.engine_mode = opt.engine_mode;
            config.sampling = opt.sampling;
        }
    }
    if (!opt.capture_path.empty()) {
        // One capture file holds one run's lanes; a multi-job sweep would
        // overwrite it per job (and concurrently, with threads > 1).
        if (configs.size() * workloads.size() * replicates != 1 ||
            opt.shard_count != 1) {
            std::fprintf(stderr,
                         "--capture requires a single-job sweep (1 config x "
                         "1 workload, replicates=1, no shard); got %zu x %zu "
                         "x %zu\n",
                         configs.size(), workloads.size(), replicates);
            return exit_cli_error;
        }
        configs.front().capture_path = opt.capture_path;
    }

    sweep s;
    s.add_configs(configs)
        .add_workloads(workloads)
        .replicates(replicates)
        .instructions(instructions)
        .warmup(warmup)
        .base_seed(base_seed)
        .manifest_hash(manifest_hash)
        .shard(opt.shard_index, opt.shard_count);

    resume_scan scan;
    if (opt.resume) {
        if (!scan_resume_file(opt, s, scan))
            return exit_cli_error;
        if (!opt.quiet)
            std::fprintf(stderr,
                         "resume: %zu rows on disk, %zu reusable, %zu failed "
                         "rows will re-run%s\n",
                         scan.rows, scan.completed.size(), scan.rerun_failed,
                         scan.truncated_tail ? "; torn trailing line removed"
                                             : "");
    }

    if (!setup_checkpoints(opt))
        return exit_cli_error;

    sink_set sinks = make_sinks(opt);
    if (!sinks.ok)
        return exit_cli_error;

    const auto wall_start = std::chrono::steady_clock::now();
    const run_options ro = make_run_options(opt, opt.resume ? &scan : nullptr);
    const report rep = run_sweep(s, ro, sinks.sinks);
    const double wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall_start)
            .count();

    if (!opt.quiet) {
        double job_seconds = 0.0, total_cycles = 0.0, total_instructions = 0.0;
        for (const auto& r : rep.results) {
            job_seconds += r.host_seconds;
            total_cycles += double(r.cycles);
            total_instructions += double(r.instructions);
        }
        std::printf("%zu jobs in %.2fs wall (%.2fs job time): %.2f Mcycles/s, "
                    "%.2f Minstr/s aggregate\n",
                    rep.jobs.size(), wall_seconds, job_seconds,
                    safe_ratio(total_cycles, job_seconds) * 1e-6,
                    safe_ratio(total_instructions, job_seconds) * 1e-6);
    }

    if (const int rc = finish_sweep(rep); rc >= 0)
        return rc;

    // Failures: every job still produced a row (fault isolation), but the
    // matrix is not trustworthy — name the failures, skip the tables, and
    // exit non-zero so drivers re-run (or --resume) the shard.
    if (report_failures(rep) > 0)
        return exit_job_failure;
    if (rep.sink_failures != 0)
        return exit_job_failure; // rows were lost even though jobs passed

    if (opt.shard_count > 1) {
        std::printf("shard %zu/%zu: ran %zu of %zu jobs; tables suppressed — "
                    "merge the per-shard JSON-lines outputs for the full "
                    "matrix\n",
                    opt.shard_index, opt.shard_count, rep.jobs.size(),
                    s.total_jobs());
        return exit_ok;
    }
    if (manifest_hash != 0) {
        // A bench's render callback assumes the bench's own config and
        // workload layout; a manifest-driven matrix is arbitrary, so the
        // rendered tables are the results store's job (tools/results_db.py).
        return exit_ok;
    }
    if (!opt.quiet && render)
        render(rep, opt);
    return exit_ok;
}

} // namespace lnuca::exp
