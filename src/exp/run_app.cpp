#include "src/exp/run_app.h"

#include "src/common/stats.h"
#include "src/trace/workload_spec.h"

#include <chrono>
#include <cstdio>
#include <iostream>

namespace lnuca::exp {

namespace {

// "--shard i/n" -> (i, n). Accepts "i:n" too.
bool parse_shard(const std::string& text, std::size_t& index,
                 std::size_t& count)
{
    const std::size_t sep = text.find_first_of("/:");
    if (sep == std::string::npos || sep == 0 || sep + 1 >= text.size())
        return false;
    try {
        index = std::stoull(text.substr(0, sep));
        count = std::stoull(text.substr(sep + 1));
    } catch (...) {
        return false;
    }
    return count > 0 && index < count;
}

} // namespace

app_options parse_app_options(const cli_args& args)
{
    app_options opt;
    opt.instructions = args.get_u64("instructions", opt.instructions);
    opt.warmup = args.get_u64("warmup", opt.warmup);
    opt.seed = args.get_u64("seed", opt.seed);
    opt.replicates = std::size_t(args.get_u64("replicates", opt.replicates));
    opt.threads = unsigned(args.get_u64("threads", opt.threads));
    opt.json_path = args.get_string("json", "");
    opt.csv_path = args.get_string("csv", "");
    opt.quiet = args.has_flag("quiet");
    const std::string engine = args.get_string("engine", "skip");
    if (engine == "dense")
        opt.engine_mode = sim::schedule_mode::dense;
    else if (engine == "skip" || engine == "idle_skip" || engine == "idle-skip")
        opt.engine_mode = sim::schedule_mode::idle_skip;
    else if (engine == "paranoid")
        opt.engine_mode = sim::schedule_mode::paranoid;
    else
        std::fprintf(stderr,
                     "unknown --engine '%s' (dense|skip|paranoid); using "
                     "idle-skip\n",
                     engine.c_str());
    const std::string sampling = args.get_string("sampling", "off");
    if (const auto parsed = hier::parse_sampling_spec(sampling)) {
        opt.sampling = *parsed;
    } else {
        std::fprintf(stderr,
                     "unknown --sampling '%s' (off|periodic:<detail>:<period>"
                     "[:<warmup>]); sampling stays off\n",
                     sampling.c_str());
    }
    if (const auto shard = args.value("shard")) {
        if (!parse_shard(*shard, opt.shard_index, opt.shard_count)) {
            std::fprintf(stderr,
                         "invalid --shard '%s' (expected i/n with i < n); "
                         "running the full sweep\n",
                         shard->c_str());
            opt.shard_index = 0;
            opt.shard_count = 1;
        }
    }
    if (const auto workloads = args.value("workload")) {
        std::string bad;
        opt.workload_override = trace::parse_workload_list(*workloads, &bad);
        if (opt.workload_override.empty())
            std::fprintf(stderr,
                         "unknown --workload spec '%s' (expected a SPEC "
                         "proxy name, trace:<file>, or scenario:<name>); "
                         "keeping the default workload set\n",
                         bad.c_str());
    }
    opt.capture_path = args.get_string("capture", "");
    return opt;
}

sink_set make_sinks(const app_options& opt, bool with_table)
{
    // "-" streams to stdout. The JSON-lines file opens in append mode (as
    // documented: successive runs/shards accumulate into one trajectory);
    // the CSV file truncates, since its header row only makes sense once.
    sink_set set;
    if (!opt.json_path.empty()) {
        if (opt.json_path == "-") {
            set.json = std::make_unique<jsonl_sink>(std::cout);
        } else {
            set.json_file =
                std::make_unique<std::ofstream>(opt.json_path, std::ios::app);
            if (!*set.json_file) {
                std::fprintf(stderr, "cannot open '%s' for writing\n",
                             opt.json_path.c_str());
                set.ok = false;
                return set;
            }
            set.json = std::make_unique<jsonl_sink>(*set.json_file);
        }
        set.sinks.push_back(set.json.get());
    }
    if (!opt.csv_path.empty()) {
        if (opt.csv_path == "-") {
            set.csv = std::make_unique<csv_sink>(std::cout);
        } else {
            set.csv_file = std::make_unique<std::ofstream>(opt.csv_path);
            if (!*set.csv_file) {
                std::fprintf(stderr, "cannot open '%s' for writing\n",
                             opt.csv_path.c_str());
                set.ok = false;
                return set;
            }
            set.csv = std::make_unique<csv_sink>(*set.csv_file);
        }
        set.sinks.push_back(set.csv.get());
    }
    if (with_table) {
        set.table = std::make_unique<table_sink>(std::cout);
        set.sinks.push_back(set.table.get());
    }
    return set;
}

int run_app(int argc, char** argv, std::vector<hier::system_config> configs,
            std::vector<wl::workload_profile> workloads,
            const render_fn& render)
{
    const cli_args args(argc, argv);
    const app_options opt = parse_app_options(args);

    if (!opt.workload_override.empty())
        workloads = opt.workload_override;

    for (auto& config : configs) {
        config.engine_mode = opt.engine_mode;
        config.sampling = opt.sampling;
    }
    if (!opt.capture_path.empty()) {
        // One capture file holds one run's lanes; a multi-job sweep would
        // overwrite it per job (and concurrently, with threads > 1).
        if (configs.size() * workloads.size() * opt.replicates != 1 ||
            opt.shard_count != 1) {
            std::fprintf(stderr,
                         "--capture requires a single-job sweep (1 config x "
                         "1 workload, replicates=1, no shard); got %zu x %zu "
                         "x %zu\n",
                         configs.size(), workloads.size(), opt.replicates);
            return 1;
        }
        configs.front().capture_path = opt.capture_path;
    }

    sweep s;
    s.add_configs(configs)
        .add_workloads(workloads)
        .replicates(opt.replicates)
        .instructions(opt.instructions)
        .warmup(opt.warmup)
        .base_seed(opt.seed)
        .shard(opt.shard_index, opt.shard_count);

    sink_set sinks = make_sinks(opt);
    if (!sinks.ok)
        return 1;

    const auto wall_start = std::chrono::steady_clock::now();
    const report rep = run_sweep(s, {opt.threads}, sinks.sinks);
    const double wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall_start)
            .count();

    if (!opt.quiet) {
        double job_seconds = 0.0, total_cycles = 0.0, total_instructions = 0.0;
        for (const auto& r : rep.results) {
            job_seconds += r.host_seconds;
            total_cycles += double(r.cycles);
            total_instructions += double(r.instructions);
        }
        std::printf("%zu jobs in %.2fs wall (%.2fs job time): %.2f Mcycles/s, "
                    "%.2f Minstr/s aggregate\n",
                    rep.jobs.size(), wall_seconds, job_seconds,
                    safe_ratio(total_cycles, job_seconds) * 1e-6,
                    safe_ratio(total_instructions, job_seconds) * 1e-6);
    }

    if (opt.shard_count > 1) {
        std::printf("shard %zu/%zu: ran %zu of %zu jobs; tables suppressed — "
                    "merge the per-shard JSON-lines outputs for the full "
                    "matrix\n",
                    opt.shard_index, opt.shard_count, rep.jobs.size(),
                    s.total_jobs());
        return 0;
    }
    if (!opt.quiet && render)
        render(rep, opt);
    return 0;
}

} // namespace lnuca::exp
