#include "src/exp/sink.h"

#include "src/common/log.h"
#include "src/common/table.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <fcntl.h>
#include <unistd.h>

namespace lnuca::exp {

namespace {

// Full-precision double formatting: %.17g round-trips through strtod.
std::string fmt_double(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

std::string json_escape(const std::string& s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (const char ch : s) {
        switch (ch) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(ch) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", ch);
                out += buf;
            } else {
                out += ch;
            }
        }
    }
    return out;
}

std::string csv_quote(const std::string& s)
{
    if (s.find_first_of(",\"\n") == std::string::npos)
        return s;
    std::string out = "\"";
    for (const char ch : s) {
        if (ch == '"')
            out += '"';
        out += ch;
    }
    out += '"';
    return out;
}

} // namespace

// ---------------------------------------------------------------------------
// table_sink
// ---------------------------------------------------------------------------

void table_sink::consume(const job& j, const hier::run_result& r)
{
    std::string per_core = "-";
    if (r.cores > 1) {
        per_core.clear();
        for (std::size_t i = 0; i < r.per_core_ipc.size(); ++i) {
            if (i != 0)
                per_core += '/';
            per_core += text_table::num(r.per_core_ipc[i], 2);
        }
    }
    rows_.push_back({r.config_name, r.workload_name,
                     std::to_string(j.key.replicate), to_string(r.status),
                     std::to_string(r.cores), text_table::num(r.ipc, 3),
                     per_core,
                     r.weighted_speedup > 0.0
                         ? text_table::num(r.weighted_speedup, 2)
                         : "-",
                     // ASCII on purpose: text_table widths count bytes.
                     r.sampled ? "+-" + text_table::num(r.ipc_ci95, 3) + " (" +
                                     std::to_string(r.sampled_windows) + "w)"
                               : "measured",
                     std::to_string(r.cycles),
                     text_table::num(r.avg_load_latency, 1),
                     text_table::num(r.energy.total() * 1e3, 3),
                     text_table::num(r.host_seconds, 2),
                     text_table::num(r.sim_cycles_per_second * 1e-6, 2)});
}

void table_sink::finish()
{
    text_table t("Run log");
    t.set_header({"config", "workload", "rep", "status", "cores", "IPC",
                  "IPC/core",
                  "WS", "IPC est.", "cycles", "load lat.", "energy (mJ)",
                  "host s", "Mcyc/s"});
    for (auto& row : rows_)
        t.add_row(std::move(row));
    out_ << t.render();
    rows_.clear();
}

// ---------------------------------------------------------------------------
// csv_sink
// ---------------------------------------------------------------------------

void csv_sink::begin(std::size_t)
{
    out_ << "config,workload,config_index,workload_index,replicate,flat,seed,"
            "manifest,status,error,"
            "floating_point,cores,instructions,cycles,ipc,per_core_ipc,"
            "weighted_speedup,sampled,sampled_windows,"
            "measured_instructions,ipc_ci95,l2_read_hits,"
            "transport_actual,transport_min,search_restarts,searches,"
            "loads_l1,loads_fabric,loads_l2,loads_l3,loads_dnuca,"
            "loads_memory,loads_peer,avg_load_latency,energy_dynamic_j,"
            "energy_static_l1_j,energy_static_storage_j,energy_static_l3_j,"
            "energy_total_j,host_seconds,sim_cycles_per_second,"
            "sim_instructions_per_second\n";
}

void csv_sink::consume(const job& j, const hier::run_result& r)
{
    // per_core_ipc packs as a semicolon-joined list in one CSV field.
    std::string per_core;
    for (std::size_t i = 0; i < r.per_core_ipc.size(); ++i) {
        if (i != 0)
            per_core += ';';
        per_core += fmt_double(r.per_core_ipc[i]);
    }
    char manifest_hex[24] = "";
    if (j.manifest_hash != 0)
        std::snprintf(manifest_hex, sizeof manifest_hex, "%016llx",
                      (unsigned long long)j.manifest_hash);
    out_ << csv_quote(r.config_name) << ',' << csv_quote(r.workload_name)
         << ',' << j.key.config << ',' << j.key.workload << ','
         << j.key.replicate << ',' << j.key.flat << ',' << j.seed << ','
         << manifest_hex << ','
         << to_string(r.status) << ',' << csv_quote(r.error) << ','
         << (r.floating_point ? 1 : 0) << ',' << r.cores << ','
         << r.instructions << ','
         << r.cycles << ',' << fmt_double(r.ipc) << ',' << per_core << ','
         << fmt_double(r.weighted_speedup) << ','
         << (r.sampled ? 1 : 0) << ',' << r.sampled_windows << ','
         << r.measured_instructions << ',' << fmt_double(r.ipc_ci95) << ','
         << r.l2_read_hits
         << ',' << r.transport_actual << ',' << r.transport_min << ','
         << r.search_restarts << ',' << r.searches << ',' << r.loads_l1 << ','
         << r.loads_fabric << ',' << r.loads_l2 << ',' << r.loads_l3 << ','
         << r.loads_dnuca << ',' << r.loads_memory << ',' << r.loads_peer
         << ',' << fmt_double(r.avg_load_latency) << ','
         << fmt_double(r.energy.dynamic_j) << ','
         << fmt_double(r.energy.static_l1_j) << ','
         << fmt_double(r.energy.static_storage_j) << ','
         << fmt_double(r.energy.static_l3_j) << ','
         << fmt_double(r.energy.total()) << ','
         << fmt_double(r.host_seconds) << ','
         << fmt_double(r.sim_cycles_per_second) << ','
         << fmt_double(r.sim_instructions_per_second) << '\n';
}

// ---------------------------------------------------------------------------
// jsonl_sink
// ---------------------------------------------------------------------------

std::string encode_json_line(const job& j, const hier::run_result& r)
{
    std::string line = "{";
    auto str = [&](const char* key, const std::string& value) {
        line += '"';
        line += key;
        line += "\":\"";
        line += json_escape(value);
        line += "\",";
    };
    auto u64 = [&](const char* key, std::uint64_t value) {
        line += '"';
        line += key;
        line += "\":";
        line += std::to_string(value);
        line += ',';
    };
    auto dbl = [&](const char* key, double value) {
        line += '"';
        line += key;
        line += "\":";
        line += fmt_double(value);
        line += ',';
    };

    str("config", r.config_name);
    str("workload", r.workload_name);
    u64("config_index", j.key.config);
    u64("workload_index", j.key.workload);
    u64("replicate", j.key.replicate);
    u64("flat", j.key.flat);
    u64("seed", j.seed);
    u64("instructions_requested", j.instructions);
    u64("warmup", j.warmup);
    if (j.manifest_hash != 0) {
        // Hex string, not a JSON number: a 64-bit hash would lose precision
        // in any double-backed JSON reader (Python's json included).
        char buf[24];
        std::snprintf(buf, sizeof buf, "%016llx",
                      (unsigned long long)j.manifest_hash);
        str("manifest", buf);
    }
    str("status", to_string(r.status));
    if (r.status != hier::run_status::ok)
        str("error", r.error);
    line += r.floating_point ? "\"floating_point\":true,"
                             : "\"floating_point\":false,";
    u64("instructions", r.instructions);
    u64("cycles", r.cycles);
    dbl("ipc", r.ipc);
    u64("cores", r.cores);
    line += "\"per_core_ipc\":[";
    for (std::size_t i = 0; i < r.per_core_ipc.size(); ++i) {
        if (i != 0)
            line += ',';
        line += fmt_double(r.per_core_ipc[i]);
    }
    line += "],";
    dbl("weighted_speedup", r.weighted_speedup);
    line += r.sampled ? "\"sampled\":true," : "\"sampled\":false,";
    u64("sampled_windows", r.sampled_windows);
    u64("measured_instructions", r.measured_instructions);
    dbl("ipc_ci95", r.ipc_ci95);
    u64("l2_read_hits", r.l2_read_hits);
    line += "\"fabric_read_hits\":[";
    for (std::size_t i = 0; i < r.fabric_read_hits.size(); ++i) {
        if (i != 0)
            line += ',';
        line += std::to_string(r.fabric_read_hits[i]);
    }
    line += "],";
    u64("transport_actual", r.transport_actual);
    u64("transport_min", r.transport_min);
    u64("search_restarts", r.search_restarts);
    u64("searches", r.searches);
    u64("loads_l1", r.loads_l1);
    u64("loads_fabric", r.loads_fabric);
    u64("loads_l2", r.loads_l2);
    u64("loads_l3", r.loads_l3);
    u64("loads_dnuca", r.loads_dnuca);
    u64("loads_memory", r.loads_memory);
    u64("loads_peer", r.loads_peer);
    dbl("avg_load_latency", r.avg_load_latency);
    dbl("host_seconds", r.host_seconds);
    dbl("sim_cycles_per_second", r.sim_cycles_per_second);
    dbl("sim_instructions_per_second", r.sim_instructions_per_second);
    line += "\"energy\":{";
    dbl("dynamic_j", r.energy.dynamic_j);
    dbl("static_l1_j", r.energy.static_l1_j);
    dbl("static_storage_j", r.energy.static_storage_j);
    dbl("static_l3_j", r.energy.static_l3_j);
    line += "\"total_j\":";
    line += fmt_double(r.energy.total());
    line += "}}";
    return line;
}

jsonl_sink::jsonl_sink(std::ostream& out, std::size_t flush_rows)
    : out_(&out), flush_rows_(flush_rows == 0 ? 1 : flush_rows)
{
}

jsonl_sink::jsonl_sink(const std::string& path, std::size_t flush_rows,
                       std::size_t fsync_rows)
    : flush_rows_(flush_rows == 0 ? 1 : flush_rows), fsync_rows_(fsync_rows)
{
    // O_APPEND: every flush is one atomically-positioned write of whole
    // lines, even when several shards append to the same file.
    fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
}

jsonl_sink::~jsonl_sink()
{
    // The destructor must not throw; normal shutdown goes through finish(),
    // which does, so losses are only ever swallowed on an abnormal exit.
    try {
        flush();
    } catch (const sink_error& e) {
        LNUCA_WARN("jsonl sink: ", e.what());
    }
    if (fd_ >= 0)
        ::close(fd_);
}

void jsonl_sink::begin(std::size_t job_count)
{
    // Pre-size for a full batch (a row is a few hundred bytes).
    buffer_.reserve(512 * std::min(flush_rows_, std::max(job_count,
                                                         std::size_t(1))));
}

void jsonl_sink::consume(const job& j, const hier::run_result& r)
{
    if (r.status == hier::run_status::skipped_resumed)
        return; // already durable in this file (see class comment)
    ++consumed_rows_;
    buffer_ += encode_json_line(j, r);
    buffer_ += '\n';
    ++rows_since_fsync_;
    if (++buffered_rows_ >= flush_rows_)
        flush();
}

void jsonl_sink::finish()
{
    flush();
    if (fd_ >= 0 && fsync_rows_ > 0 && rows_since_fsync_ > 0) {
        if (::fsync(fd_) != 0)
            throw sink_error("jsonl sink: final fsync failed after row " +
                             std::to_string(consumed_rows_) + ": " +
                             std::strerror(errno));
        rows_since_fsync_ = 0;
    }
}

void jsonl_sink::flush()
{
    if (!buffer_.empty()) {
        if (fd_ >= 0) {
            const char* p = buffer_.data();
            std::size_t left = buffer_.size();
            const std::size_t batch = buffered_rows_;
            while (left > 0) {
                const ssize_t n = ::write(fd_, p, left);
                if (n < 0 && errno == EINTR)
                    continue;
                if (n <= 0) {
                    // Full disk / EIO / closed fd: the batch is lost either
                    // way, so clear it (the destructor's last flush must
                    // not re-throw) and report exactly which rows are gone
                    // instead of pretending they reached the file.
                    const int err = n < 0 ? errno : EIO;
                    const std::size_t first = consumed_rows_ - batch;
                    buffer_.clear();
                    buffered_rows_ = 0;
                    throw sink_error(
                        "jsonl sink: write failed at row " +
                        std::to_string(first) + " (" + std::to_string(batch) +
                        " buffered rows lost): " + std::strerror(err));
                }
                p += n;
                left -= std::size_t(n);
            }
        } else if (out_ != nullptr) {
            out_->write(buffer_.data(), std::streamsize(buffer_.size()));
        }
        buffer_.clear();
        buffered_rows_ = 0;
    }
    if (fd_ >= 0 && fsync_rows_ > 0 && rows_since_fsync_ >= fsync_rows_) {
        if (::fsync(fd_) != 0)
            throw sink_error("jsonl sink: fsync failed after row " +
                             std::to_string(consumed_rows_) + ": " +
                             std::strerror(errno));
        rows_since_fsync_ = 0;
    }
}

// ---------------------------------------------------------------------------
// sink_fanout
// ---------------------------------------------------------------------------

void sink_fanout::attach(sink* s)
{
    if (s != nullptr)
        sinks_.push_back(s);
}

void sink_fanout::begin(std::size_t job_count)
{
    for (sink* s : sinks_)
        s->begin(job_count);
}

void sink_fanout::consume(const job& j, const hier::run_result& r)
{
    for (sink* s : sinks_)
        s->consume(j, r);
}

void sink_fanout::finish()
{
    for (sink* s : sinks_)
        s->finish();
}

// ---------------------------------------------------------------------------
// decode_json_line: minimal recursive-descent parser for the exact grammar
// encode_json_line() emits (flat object, one nested object, one u64 array).
// Unknown keys are skipped so the format can grow fields without breaking
// old readers.
// ---------------------------------------------------------------------------

namespace {

struct cursor {
    const char* p;
    const char* end;

    void skip_ws()
    {
        while (p != end && (*p == ' ' || *p == '\t' || *p == '\r' ||
                            *p == '\n'))
            ++p;
    }

    bool consume(char c)
    {
        skip_ws();
        if (p == end || *p != c)
            return false;
        ++p;
        return true;
    }

    bool peek(char c)
    {
        skip_ws();
        return p != end && *p == c;
    }

    bool parse_string(std::string& out)
    {
        if (!consume('"'))
            return false;
        out.clear();
        while (p != end && *p != '"') {
            if (*p == '\\') {
                ++p;
                if (p == end)
                    return false;
                switch (*p) {
                case '"': out += '"'; break;
                case '\\': out += '\\'; break;
                case 'n': out += '\n'; break;
                case 't': out += '\t'; break;
                case 'u': {
                    if (end - p < 5)
                        return false;
                    char hex[5] = {p[1], p[2], p[3], p[4], 0};
                    out += char(std::strtoul(hex, nullptr, 16));
                    p += 4;
                    break;
                }
                default: return false;
                }
                ++p;
            } else {
                out += *p++;
            }
        }
        return consume('"');
    }

    bool parse_u64(std::uint64_t& out)
    {
        skip_ws();
        char* after = nullptr;
        out = std::strtoull(p, &after, 10);
        if (after == p)
            return false;
        p = after;
        return true;
    }

    bool parse_double(double& out)
    {
        skip_ws();
        char* after = nullptr;
        out = std::strtod(p, &after);
        if (after == p)
            return false;
        p = after;
        return true;
    }

    bool parse_bool(bool& out)
    {
        skip_ws();
        if (end - p >= 4 && std::strncmp(p, "true", 4) == 0) {
            out = true;
            p += 4;
            return true;
        }
        if (end - p >= 5 && std::strncmp(p, "false", 5) == 0) {
            out = false;
            p += 5;
            return true;
        }
        return false;
    }

    bool skip_value()
    {
        skip_ws();
        if (p == end)
            return false;
        if (*p == '"') {
            std::string ignored;
            return parse_string(ignored);
        }
        if (*p == '[' || *p == '{') {
            const char open = *p, close = open == '[' ? ']' : '}';
            int depth = 0;
            bool in_string = false;
            for (; p != end; ++p) {
                if (in_string) {
                    if (*p == '\\') {
                        if (++p == end)
                            return false; // truncated escape
                    } else if (*p == '"') {
                        in_string = false;
                    }
                } else if (*p == '"') {
                    in_string = true;
                } else if (*p == open) {
                    ++depth;
                } else if (*p == close && --depth == 0) {
                    ++p;
                    return true;
                }
            }
            return false;
        }
        double ignored;
        if (parse_double(ignored))
            return true;
        bool flag;
        return parse_bool(flag);
    }

    bool parse_u64_array(std::vector<std::uint64_t>& out)
    {
        if (!consume('['))
            return false;
        out.clear();
        if (consume(']'))
            return true;
        for (;;) {
            std::uint64_t v;
            if (!parse_u64(v))
                return false;
            out.push_back(v);
            if (consume(']'))
                return true;
            if (!consume(','))
                return false;
        }
    }

    bool parse_double_array(std::vector<double>& out)
    {
        if (!consume('['))
            return false;
        out.clear();
        if (consume(']'))
            return true;
        for (;;) {
            double v;
            if (!parse_double(v))
                return false;
            out.push_back(v);
            if (consume(']'))
                return true;
            if (!consume(','))
                return false;
        }
    }
};

std::optional<hier::run_status> run_status_from_string(const std::string& s)
{
    if (s == "ok")
        return hier::run_status::ok;
    if (s == "failed")
        return hier::run_status::failed;
    if (s == "timed_out")
        return hier::run_status::timed_out;
    if (s == "skipped_resumed")
        return hier::run_status::skipped_resumed;
    return std::nullopt;
}

bool parse_energy(cursor& c, power::energy_breakdown& e)
{
    if (!c.consume('{'))
        return false;
    if (c.consume('}'))
        return true;
    for (;;) {
        std::string key;
        if (!c.parse_string(key) || !c.consume(':'))
            return false;
        bool ok = true;
        if (key == "dynamic_j")
            ok = c.parse_double(e.dynamic_j);
        else if (key == "static_l1_j")
            ok = c.parse_double(e.static_l1_j);
        else if (key == "static_storage_j")
            ok = c.parse_double(e.static_storage_j);
        else if (key == "static_l3_j")
            ok = c.parse_double(e.static_l3_j);
        else
            ok = c.skip_value(); // total_j and future fields
        if (!ok)
            return false;
        if (c.consume('}'))
            return true;
        if (!c.consume(','))
            return false;
    }
}

} // namespace

std::optional<decoded_run> decode_json_line(const std::string& line)
{
    cursor c{line.data(), line.data() + line.size()};
    decoded_run out;
    if (!c.consume('{'))
        return std::nullopt;
    if (c.consume('}'))
        return out;
    for (;;) {
        std::string key;
        if (!c.parse_string(key) || !c.consume(':'))
            return std::nullopt;
        bool ok = true;
        hier::run_result& r = out.result;
        if (key == "config")
            ok = c.parse_string(r.config_name);
        else if (key == "workload")
            ok = c.parse_string(r.workload_name);
        else if (key == "config_index") {
            std::uint64_t v;
            ok = c.parse_u64(v);
            out.key.config = std::size_t(v);
        } else if (key == "workload_index") {
            std::uint64_t v;
            ok = c.parse_u64(v);
            out.key.workload = std::size_t(v);
        } else if (key == "replicate") {
            std::uint64_t v;
            ok = c.parse_u64(v);
            out.key.replicate = std::size_t(v);
        } else if (key == "flat") {
            std::uint64_t v;
            ok = c.parse_u64(v);
            out.key.flat = std::size_t(v);
        } else if (key == "seed")
            ok = c.parse_u64(out.seed);
        else if (key == "instructions_requested")
            ok = c.parse_u64(out.instructions_requested);
        else if (key == "warmup")
            ok = c.parse_u64(out.warmup);
        else if (key == "manifest") {
            std::string hex;
            ok = c.parse_string(hex) && !hex.empty();
            if (ok) {
                char* after = nullptr;
                out.manifest_hash = std::strtoull(hex.c_str(), &after, 16);
                ok = after == hex.c_str() + hex.size();
            }
        }
        else if (key == "status") {
            std::string text;
            ok = c.parse_string(text);
            if (ok) {
                const auto status = run_status_from_string(text);
                if (!status.has_value())
                    return std::nullopt;
                r.status = *status;
            }
        } else if (key == "error")
            ok = c.parse_string(r.error);
        else if (key == "floating_point")
            ok = c.parse_bool(r.floating_point);
        else if (key == "instructions")
            ok = c.parse_u64(r.instructions);
        else if (key == "cycles")
            ok = c.parse_u64(r.cycles);
        else if (key == "ipc")
            ok = c.parse_double(r.ipc);
        else if (key == "cores") {
            std::uint64_t v;
            ok = c.parse_u64(v);
            r.cores = std::uint32_t(v);
        } else if (key == "per_core_ipc")
            ok = c.parse_double_array(r.per_core_ipc);
        else if (key == "weighted_speedup")
            ok = c.parse_double(r.weighted_speedup);
        else if (key == "sampled")
            ok = c.parse_bool(r.sampled);
        else if (key == "sampled_windows")
            ok = c.parse_u64(r.sampled_windows);
        else if (key == "measured_instructions")
            ok = c.parse_u64(r.measured_instructions);
        else if (key == "ipc_ci95")
            ok = c.parse_double(r.ipc_ci95);
        else if (key == "l2_read_hits")
            ok = c.parse_u64(r.l2_read_hits);
        else if (key == "fabric_read_hits")
            ok = c.parse_u64_array(r.fabric_read_hits);
        else if (key == "transport_actual")
            ok = c.parse_u64(r.transport_actual);
        else if (key == "transport_min")
            ok = c.parse_u64(r.transport_min);
        else if (key == "search_restarts")
            ok = c.parse_u64(r.search_restarts);
        else if (key == "searches")
            ok = c.parse_u64(r.searches);
        else if (key == "loads_l1")
            ok = c.parse_u64(r.loads_l1);
        else if (key == "loads_fabric")
            ok = c.parse_u64(r.loads_fabric);
        else if (key == "loads_l2")
            ok = c.parse_u64(r.loads_l2);
        else if (key == "loads_l3")
            ok = c.parse_u64(r.loads_l3);
        else if (key == "loads_dnuca")
            ok = c.parse_u64(r.loads_dnuca);
        else if (key == "loads_memory")
            ok = c.parse_u64(r.loads_memory);
        else if (key == "loads_peer")
            ok = c.parse_u64(r.loads_peer);
        else if (key == "avg_load_latency")
            ok = c.parse_double(r.avg_load_latency);
        else if (key == "host_seconds")
            ok = c.parse_double(r.host_seconds);
        else if (key == "sim_cycles_per_second")
            ok = c.parse_double(r.sim_cycles_per_second);
        else if (key == "sim_instructions_per_second")
            ok = c.parse_double(r.sim_instructions_per_second);
        else if (key == "energy")
            ok = parse_energy(c, r.energy);
        else
            ok = c.skip_value();
        if (!ok)
            return std::nullopt;
        if (c.consume('}'))
            return out;
        if (!c.consume(','))
            return std::nullopt;
    }
}

} // namespace lnuca::exp
