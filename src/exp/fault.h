// Test-only fault injection for the experiment runner.
//
// A fault_plan names one job of a sweep (by flat index) and an action to
// take when that job starts an attempt: throw, stall, or hard-kill the
// process. It exists so tests and CI can deterministically exercise the
// fault-isolation, timeout/retry, and kill-and-resume machinery
// (tests/exp_fault_test.cpp, the CI kill-and-resume smoke job) — it is
// wired through `--fault SPEC` / the LNUCA_FAULT environment variable and
// is inert unless one of those is set.
//
// Spec grammar (one action per plan):
//   throw:<flat>[:<attempts>]     throw std::runtime_error at the start of
//                                 the first <attempts> attempts (default 1)
//                                 of job <flat> — with --retries >= attempts
//                                 the retry then succeeds bit-identically
//   stall:<flat>:<seconds>[:<attempts>]
//                                 sleep <seconds> before running job <flat>
//                                 (trips a --timeout shorter than the stall)
//   exit:<flat>[:<code>]          std::_Exit(<code>, default 137 = SIGKILL
//                                 convention) when job <flat> starts — a
//                                 deterministic stand-in for kill -9
#pragma once

#include <cstddef>
#include <optional>
#include <string>

namespace lnuca::exp {

struct fault_plan {
    enum class kind { none, throw_error, stall, hard_exit };

    kind action = kind::none;
    std::size_t flat = 0;       ///< target job (flat sweep index)
    std::size_t attempts = 1;   ///< trigger on the first N attempts
    double stall_seconds = 0.0; ///< stall: sleep before running the job
    int exit_code = 137;        ///< hard_exit: process exit status

    /// Parse a spec string (see grammar above); std::nullopt on error.
    static std::optional<fault_plan> parse(const std::string& spec);

    /// Called at the start of job attempt (flat, attempt). No-op unless the
    /// plan targets this attempt; otherwise throws (throw_error), sleeps
    /// (stall — the job then runs normally), or exits the process without
    /// unwinding (hard_exit).
    void apply(std::size_t job_flat, std::size_t attempt) const;
};

} // namespace lnuca::exp
