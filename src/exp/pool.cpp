#include "src/exp/pool.h"

#include "src/common/log.h"

#include <algorithm>
#include <chrono>

namespace lnuca::exp {

pool::pool(unsigned threads)
{
    if (threads == 0)
        threads = std::max(1u, std::thread::hardware_concurrency());
    ctl_ = std::make_shared<control>();
    ctl_->queues.reserve(threads);
    for (unsigned t = 0; t < threads; ++t)
        ctl_->queues.push_back(std::make_unique<worker_queue>());
    ctl_->exited.assign(threads, 0);
    ctl_->in_task.assign(threads, 0);
    ctl_->live_workers = threads;
    workers_.reserve(threads);
    for (unsigned t = 0; t < threads; ++t)
        workers_.emplace_back([ctl = ctl_, t] { worker_loop(ctl, t); });
}

pool::~pool()
{
    shutdown(0.0);
}

void pool::submit(task t)
{
    control& ctl = *ctl_;
    std::size_t target;
    {
        std::lock_guard<std::mutex> lock(ctl.mutex);
        target = ctl.next_queue++ % ctl.queues.size();
        ++ctl.queued;
        ++ctl.outstanding;
    }
    {
        std::lock_guard<std::mutex> lock(ctl.queues[target]->mutex);
        ctl.queues[target]->tasks.push_back(std::move(t));
    }
    ctl.work_ready.notify_one();
}

void pool::wait()
{
    control& ctl = *ctl_;
    std::unique_lock<std::mutex> lock(ctl.mutex);
    ctl.all_done.wait(lock, [&] { return ctl.outstanding == 0; });
}

void pool::parallel_for(std::size_t n,
                        const std::function<void(std::size_t)>& fn)
{
    for (std::size_t i = 0; i < n; ++i)
        submit([i, &fn] { fn(i); });
    wait();
}

std::size_t pool::shutdown(double deadline_seconds)
{
    if (shut_down_)
        return 0;
    shut_down_ = true;
    control& ctl = *ctl_;

    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(std::max(deadline_seconds, 0.0)));
    const bool bounded = deadline_seconds > 0.0;

    {
        std::unique_lock<std::mutex> lock(ctl.mutex);
        if (bounded)
            ctl.all_done.wait_until(lock, deadline,
                                    [&] { return ctl.outstanding == 0; });
        else
            ctl.all_done.wait(lock, [&] { return ctl.outstanding == 0; });
        ctl.stopping = true;
        if (bounded && ctl.outstanding != 0)
            ctl.abandoning = true; // zombie workers must not start new tasks
    }
    ctl.work_ready.notify_all();

    if (!bounded) {
        for (auto& w : workers_)
            w.join();
        return 0;
    }

    // Exit phase, with its own grace period: an *idle* worker only needs
    // to wake, observe `stopping`, and return — it must never be counted
    // as stuck just because the drain wait above consumed the deadline.
    // Only workers still inside t() (in_task) are waited out and then
    // abandoned.
    const auto exit_deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(deadline_seconds));
    std::vector<char> exited_copy;
    {
        std::unique_lock<std::mutex> lock(ctl.mutex);
        ctl.worker_exited.wait_until(lock, exit_deadline, [&] {
            std::size_t stuck = 0;
            for (const char busy : ctl.in_task)
                stuck += busy != 0;
            return ctl.live_workers == stuck; // every idle worker has left
        });
        if (ctl.live_workers != 0)
            ctl.abandoning = true;
        exited_copy = ctl.exited;
    }

    std::size_t abandoned = 0;
    for (std::size_t i = 0; i < workers_.size(); ++i) {
        if (exited_copy[i]) {
            workers_[i].join();
        } else {
            LNUCA_WARN("pool shutdown: worker ", i,
                       " still stuck in a task after ", deadline_seconds,
                       "s deadline; abandoning it");
            workers_[i].detach();
            ++abandoned;
        }
    }
    abandoned_ += abandoned;
    return abandoned;
}

bool pool::try_take(control& ctl, unsigned self, task& out)
{
    // Own queue first (front: oldest of our share), then steal from the
    // back of the other queues, starting just after ourselves so stealers
    // spread out instead of mobbing worker 0.
    {
        auto& own = *ctl.queues[self];
        std::lock_guard<std::mutex> lock(own.mutex);
        if (!own.tasks.empty()) {
            out = std::move(own.tasks.front());
            own.tasks.pop_front();
            return true;
        }
    }
    const std::size_t n = ctl.queues.size();
    for (std::size_t hop = 1; hop < n; ++hop) {
        auto& victim = *ctl.queues[(self + hop) % n];
        std::lock_guard<std::mutex> lock(victim.mutex);
        if (!victim.tasks.empty()) {
            out = std::move(victim.tasks.back());
            victim.tasks.pop_back();
            std::lock_guard<std::mutex> control_lock(ctl.mutex);
            ++ctl.steals;
            return true;
        }
    }
    return false;
}

void pool::worker_loop(std::shared_ptr<control> ctl_ptr, unsigned self)
{
    control& ctl = *ctl_ptr;
    for (;;) {
        bool done = false;
        {
            std::lock_guard<std::mutex> lock(ctl.mutex);
            if (ctl.abandoning)
                done = true; // bounded shutdown gave up: start nothing new
        }
        task t;
        if (!done && try_take(ctl, self, t)) {
            {
                std::lock_guard<std::mutex> lock(ctl.mutex);
                --ctl.queued;
                ctl.in_task[self] = 1;
            }
            t();
            bool drained;
            {
                std::lock_guard<std::mutex> lock(ctl.mutex);
                ctl.in_task[self] = 0;
                drained = --ctl.outstanding == 0;
            }
            if (drained)
                ctl.all_done.notify_all();
            continue;
        }
        std::unique_lock<std::mutex> lock(ctl.mutex);
        if (!done)
            ctl.work_ready.wait(lock, [&] {
                return ctl.stopping || ctl.abandoning || ctl.queued > 0;
            });
        if (ctl.abandoning || (ctl.stopping && ctl.queued == 0)) {
            ctl.exited[self] = 1;
            --ctl.live_workers;
            lock.unlock();
            ctl.worker_exited.notify_all();
            return;
        }
    }
}

std::uint64_t pool::steal_count() const
{
    std::lock_guard<std::mutex> lock(ctl_->mutex);
    return ctl_->steals;
}

} // namespace lnuca::exp
