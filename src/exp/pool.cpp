#include "src/exp/pool.h"

#include <algorithm>

namespace lnuca::exp {

pool::pool(unsigned threads)
{
    if (threads == 0)
        threads = std::max(1u, std::thread::hardware_concurrency());
    queues_.reserve(threads);
    for (unsigned t = 0; t < threads; ++t)
        queues_.push_back(std::make_unique<worker_queue>());
    workers_.reserve(threads);
    for (unsigned t = 0; t < threads; ++t)
        workers_.emplace_back([this, t] { worker_loop(t); });
}

pool::~pool()
{
    wait();
    {
        std::lock_guard<std::mutex> lock(control_mutex_);
        stopping_ = true;
    }
    work_ready_.notify_all();
    for (auto& w : workers_)
        w.join();
}

void pool::submit(task t)
{
    std::size_t target;
    {
        std::lock_guard<std::mutex> lock(control_mutex_);
        target = next_queue_++ % queues_.size();
        ++queued_;
        ++outstanding_;
    }
    {
        std::lock_guard<std::mutex> lock(queues_[target]->mutex);
        queues_[target]->tasks.push_back(std::move(t));
    }
    work_ready_.notify_one();
}

void pool::wait()
{
    std::unique_lock<std::mutex> lock(control_mutex_);
    all_done_.wait(lock, [this] { return outstanding_ == 0; });
}

void pool::parallel_for(std::size_t n,
                        const std::function<void(std::size_t)>& fn)
{
    for (std::size_t i = 0; i < n; ++i)
        submit([i, &fn] { fn(i); });
    wait();
}

bool pool::try_take(unsigned self, task& out)
{
    // Own queue first (front: oldest of our share), then steal from the
    // back of the other queues, starting just after ourselves so stealers
    // spread out instead of mobbing worker 0.
    {
        auto& own = *queues_[self];
        std::lock_guard<std::mutex> lock(own.mutex);
        if (!own.tasks.empty()) {
            out = std::move(own.tasks.front());
            own.tasks.pop_front();
            return true;
        }
    }
    const std::size_t n = queues_.size();
    for (std::size_t hop = 1; hop < n; ++hop) {
        auto& victim = *queues_[(self + hop) % n];
        std::lock_guard<std::mutex> lock(victim.mutex);
        if (!victim.tasks.empty()) {
            out = std::move(victim.tasks.back());
            victim.tasks.pop_back();
            std::lock_guard<std::mutex> control(control_mutex_);
            ++steals_;
            return true;
        }
    }
    return false;
}

void pool::worker_loop(unsigned self)
{
    for (;;) {
        task t;
        if (try_take(self, t)) {
            {
                std::lock_guard<std::mutex> lock(control_mutex_);
                --queued_;
            }
            t();
            bool drained;
            {
                std::lock_guard<std::mutex> lock(control_mutex_);
                drained = --outstanding_ == 0;
            }
            if (drained)
                all_done_.notify_all();
            continue;
        }
        std::unique_lock<std::mutex> lock(control_mutex_);
        work_ready_.wait(lock, [this] { return stopping_ || queued_ > 0; });
        if (stopping_ && queued_ == 0)
            return;
    }
}

std::uint64_t pool::steal_count() const
{
    std::lock_guard<std::mutex> lock(control_mutex_);
    return steals_;
}

} // namespace lnuca::exp
