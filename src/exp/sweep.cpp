#include "src/exp/sweep.h"

#include "src/common/log.h"

namespace lnuca::exp {

sweep& sweep::add_config(hier::system_config config)
{
    configs_.push_back(std::move(config));
    return *this;
}

sweep& sweep::add_configs(const std::vector<hier::system_config>& configs)
{
    configs_.insert(configs_.end(), configs.begin(), configs.end());
    return *this;
}

sweep& sweep::add_workload(wl::workload_profile workload)
{
    workloads_.push_back(std::move(workload));
    return *this;
}

sweep& sweep::add_workloads(const std::vector<wl::workload_profile>& workloads)
{
    workloads_.insert(workloads_.end(), workloads.begin(), workloads.end());
    return *this;
}

sweep& sweep::replicates(std::size_t count)
{
    replicates_ = count == 0 ? 1 : count;
    return *this;
}

sweep& sweep::instructions(std::uint64_t count)
{
    instructions_ = count;
    return *this;
}

sweep& sweep::warmup(std::uint64_t count)
{
    warmup_ = count;
    return *this;
}

sweep& sweep::base_seed(std::uint64_t seed)
{
    base_seed_ = seed;
    return *this;
}

sweep& sweep::manifest_hash(std::uint64_t hash)
{
    manifest_hash_ = hash;
    return *this;
}

sweep& sweep::shard(std::size_t index, std::size_t count)
{
    if (count == 0)
        count = 1;
    if (index >= count) {
        LNUCA_WARN("shard index ", index, " out of range for ", count,
                   " shards; clamping");
        index = count - 1;
    }
    shard_index_ = index;
    shard_count_ = count;
    return *this;
}

std::vector<job> sweep::build() const
{
    std::vector<job> jobs;
    jobs.reserve(total_jobs() / shard_count_ + 1);
    std::size_t flat = 0;
    for (std::size_t c = 0; c < configs_.size(); ++c)
        for (std::size_t w = 0; w < workloads_.size(); ++w)
            for (std::size_t r = 0; r < replicates_; ++r, ++flat) {
                if (flat % shard_count_ != shard_index_)
                    continue;
                job j;
                j.key = {c, w, r, flat};
                j.config = configs_[c];
                j.workload = workloads_[w];
                j.instructions = instructions_;
                j.warmup = warmup_;
                j.seed = rng::split(base_seed_, c, w, r);
                j.manifest_hash = manifest_hash_;
                jobs.push_back(std::move(j));
            }
    return jobs;
}

} // namespace lnuca::exp
