#include "src/exp/runner.h"

#include "src/common/log.h"
#include "src/exp/pool.h"

#include <stdexcept>

namespace lnuca::exp {

const hier::run_result* report::find(std::size_t config, std::size_t workload,
                                     std::size_t replicate) const
{
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const job_key& k = jobs[i].key;
        if (k.config == config && k.workload == workload &&
            k.replicate == replicate)
            return &results[i];
    }
    return nullptr;
}

std::vector<hier::run_result> report::row(std::size_t config) const
{
    std::vector<hier::run_result> out;
    out.reserve(workload_count);
    for (std::size_t w = 0; w < workload_count; ++w) {
        const hier::run_result* r = find(config, w, 0);
        if (r == nullptr)
            throw std::logic_error(
                "report::row() needs an unsharded report: missing (config " +
                std::to_string(config) + ", workload " + std::to_string(w) +
                ")");
        out.push_back(*r);
    }
    return out;
}

std::vector<std::vector<hier::run_result>> report::matrix() const
{
    std::vector<std::vector<hier::run_result>> out;
    out.reserve(config_count);
    for (std::size_t c = 0; c < config_count; ++c)
        out.push_back(row(c));
    return out;
}

report run_sweep(const sweep& s, const run_options& opt,
                 const std::vector<sink*>& sinks)
{
    report rep;
    rep.jobs = s.build();
    rep.config_count = s.configs().size();
    rep.workload_count = s.workloads().size();
    rep.replicate_count = s.replicate_count();
    rep.results.resize(rep.jobs.size());

    if (opt.threads == 1 || rep.jobs.size() <= 1) {
        for (std::size_t i = 0; i < rep.jobs.size(); ++i)
            rep.results[i] = rep.jobs[i].run();
    } else {
        pool workers(opt.threads);
        workers.parallel_for(rep.jobs.size(), [&](std::size_t i) {
            rep.results[i] = rep.jobs[i].run();
        });
    }

    // Sinks replay in flat-job order: deterministic bytes out, independent
    // of which worker finished first.
    for (sink* sk : sinks)
        if (sk != nullptr)
            sk->begin(rep.jobs.size());
    for (std::size_t i = 0; i < rep.jobs.size(); ++i)
        for (sink* sk : sinks)
            if (sk != nullptr)
                sk->consume(rep.jobs[i], rep.results[i]);
    for (sink* sk : sinks)
        if (sk != nullptr)
            sk->finish();
    return rep;
}

} // namespace lnuca::exp

namespace lnuca::hier {

std::vector<std::vector<run_result>>
run_matrix(const std::vector<system_config>& configs,
           const std::vector<wl::workload_profile>& workloads,
           std::uint64_t instructions, std::uint64_t warmup, std::uint64_t seed)
{
    exp::sweep s;
    s.add_configs(configs)
        .add_workloads(workloads)
        .instructions(instructions)
        .warmup(warmup)
        .base_seed(seed);
    return exp::run_sweep(s).matrix();
}

} // namespace lnuca::hier
