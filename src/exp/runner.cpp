#include "src/exp/runner.h"

#include "src/ckpt/format.h"
#include "src/ckpt/signal.h"
#include "src/common/log.h"
#include "src/exp/pool.h"

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>

namespace lnuca::exp {

const hier::run_result* report::find(std::size_t config, std::size_t workload,
                                     std::size_t replicate) const
{
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const job_key& k = jobs[i].key;
        if (k.config == config && k.workload == workload &&
            k.replicate == replicate)
            return &results[i];
    }
    return nullptr;
}

std::vector<hier::run_result> report::row(std::size_t config) const
{
    std::vector<hier::run_result> out;
    out.reserve(workload_count);
    for (std::size_t w = 0; w < workload_count; ++w) {
        const hier::run_result* r = find(config, w, 0);
        if (r == nullptr)
            throw std::logic_error(
                "report::row() needs an unsharded report: missing (config " +
                std::to_string(config) + ", workload " + std::to_string(w) +
                ")");
        out.push_back(*r);
    }
    return out;
}

std::vector<std::vector<hier::run_result>> report::matrix() const
{
    std::vector<std::vector<hier::run_result>> out;
    out.reserve(config_count);
    for (std::size_t c = 0; c < config_count; ++c)
        out.push_back(row(c));
    return out;
}

namespace {

using clock = std::chrono::steady_clock;

double seconds_since(clock::time_point start)
{
    return std::chrono::duration<double>(clock::now() - start).count();
}

/// A zeroed result carrying the job's identity plus the failure state —
/// what the sinks see for a job that threw or stalled.
hier::run_result failure_result(const job& j, hier::run_status status,
                                std::string error)
{
    hier::run_result r;
    r.config_name = j.config.name;
    r.workload_name = j.workload.name;
    r.floating_point = j.workload.floating_point;
    r.status = status;
    r.error = std::move(error);
    return r;
}

/// One attempt, run inline on the calling thread. Exceptions — from fault
/// injection or the simulation itself — become failed rows; everything
/// else keeps status ok.
hier::run_result run_attempt_inline(const job& j, const fault_plan* fault,
                                    std::size_t attempt)
{
    const auto start = clock::now();
    try {
        if (fault != nullptr)
            fault->apply(j.key.flat, attempt); // may throw / stall / _Exit
        return j.run();
    } catch (const ckpt::interrupted& e) {
        // Not a failure: the job was preempted by SIGTERM/SIGINT after its
        // checkpoint was durably saved. The row records why the sweep is
        // incomplete; --resume restores the snapshot and finishes the job.
        hier::run_result r = failure_result(j, hier::run_status::failed,
                                            e.what());
        r.host_seconds = seconds_since(start);
        return r;
    } catch (const ckpt::ckpt_error& e) {
        // A restore that failed after state was partially loaded (the only
        // ckpt_error that escapes hier::system). The polluted system object
        // is already destroyed, so rebuild cold — this preserves the job's
        // result at the cost of re-running it from the start.
        LNUCA_WARN("job ", j.key.flat, ": ", e.what(),
                   "; re-running from a cold start");
        job cold = j;
        cold.config.checkpoint.resume = false;
        try {
            return cold.run();
        } catch (const std::exception& e2) {
            hier::run_result r = failure_result(j, hier::run_status::failed,
                                                e2.what());
            r.host_seconds = seconds_since(start);
            return r;
        }
    } catch (const std::exception& e) {
        hier::run_result r = failure_result(j, hier::run_status::failed,
                                            e.what());
        r.host_seconds = seconds_since(start);
        return r;
    } catch (...) {
        hier::run_result r = failure_result(
            j, hier::run_status::failed, "unknown exception (not derived "
                                         "from std::exception)");
        r.host_seconds = seconds_since(start);
        return r;
    }
}

/// One attempt under a soft timeout: the attempt runs on its own thread
/// writing into a heap slot; on deadline the waiter abandons (detaches)
/// the thread and reports timed_out. The slot is shared_ptr-owned, so the
/// zombie's eventual write is safe; the job is copied into the thread for
/// the same reason.
hier::run_result run_attempt_with_timeout(const job& j, const run_options& opt,
                                          std::size_t attempt)
{
    struct attempt_slot {
        std::mutex mutex;
        std::condition_variable done_cv;
        bool done = false;
        hier::run_result result;
    };
    auto slot = std::make_shared<attempt_slot>();
    const fault_plan fault = opt.fault != nullptr ? *opt.fault : fault_plan{};

    std::thread worker([slot, j, fault, attempt] {
        hier::run_result r = run_attempt_inline(j, &fault, attempt);
        {
            std::lock_guard<std::mutex> lock(slot->mutex);
            slot->result = std::move(r);
            slot->done = true;
        }
        slot->done_cv.notify_all();
    });

    std::unique_lock<std::mutex> lock(slot->mutex);
    const bool finished = slot->done_cv.wait_for(
        lock, std::chrono::duration<double>(opt.job_timeout_seconds),
        [&] { return slot->done; });
    if (finished) {
        hier::run_result r = std::move(slot->result);
        lock.unlock();
        worker.join();
        return r;
    }
    lock.unlock();
    worker.detach();
    hier::run_result r = failure_result(
        j, hier::run_status::timed_out,
        "exceeded " + std::to_string(opt.job_timeout_seconds) +
            "s soft timeout; attempt thread abandoned");
    r.host_seconds = opt.job_timeout_seconds;
    return r;
}

} // namespace

hier::run_result execute_job(const job& j, const run_options& opt)
{
    const bool checkpointing =
        !opt.checkpoint_dir.empty() && opt.checkpoint_every != 0;
    const std::size_t attempts = 1 + opt.job_retries;
    hier::run_result r;
    for (std::size_t attempt = 0; attempt < attempts; ++attempt) {
        if (ckpt::interrupt_requested())
            return failure_result(
                j, hier::run_status::failed,
                "interrupted by signal before the job started; re-run "
                "with --resume");
        job stamped = j;
        if (checkpointing) {
            stamped.config.checkpoint.path = opt.checkpoint_dir + "/job_" +
                                             std::to_string(j.key.flat) +
                                             ".ckpt";
            stamped.config.checkpoint.every = opt.checkpoint_every;
            // Only the first attempt restores: a snapshot implicated in a
            // failed attempt must not poison every retry (retries keep the
            // bit-identical cold contract of the header comment).
            stamped.config.checkpoint.resume =
                opt.checkpoint_resume && attempt == 0;
        }
        r = opt.job_timeout_seconds > 0.0
                ? run_attempt_with_timeout(stamped, opt, attempt)
                : run_attempt_inline(stamped, opt.fault, attempt);
        // A retry reconstructs the run from the same rng::split(base, c, w,
        // r) seed, so a success here is bit-identical to a first-try one.
        if (r.status == hier::run_status::ok)
            return r;
        if (ckpt::interrupt_requested())
            return r; // a latched signal would preempt every retry too
    }
    if (attempts > 1)
        r.error += " (after " + std::to_string(attempts) + " attempts)";
    return r;
}

std::size_t count_failures(const report& rep)
{
    std::size_t failures = 0;
    for (const auto& r : rep.results)
        if (r.status == hier::run_status::failed ||
            r.status == hier::run_status::timed_out)
            ++failures;
    return failures;
}

std::size_t report_failures(const report& rep)
{
    std::size_t counts[4] = {0, 0, 0, 0};
    for (const auto& r : rep.results)
        ++counts[std::size_t(r.status)];
    const std::size_t failures =
        counts[std::size_t(hier::run_status::failed)] +
        counts[std::size_t(hier::run_status::timed_out)];
    if (failures == 0)
        return 0;
    for (std::size_t i = 0; i < rep.jobs.size(); ++i) {
        const hier::run_result& r = rep.results[i];
        if (r.status != hier::run_status::failed &&
            r.status != hier::run_status::timed_out)
            continue;
        const job& j = rep.jobs[i];
        std::fprintf(stderr,
                     "FAILED job: %s x %s (config %zu, workload %zu, "
                     "replicate %zu, flat %zu, seed %llu): %s: %s\n",
                     r.config_name.c_str(), r.workload_name.c_str(),
                     j.key.config, j.key.workload, j.key.replicate,
                     j.key.flat, (unsigned long long)j.seed,
                     to_string(r.status), r.error.c_str());
    }
    std::fprintf(stderr,
                 "sweep finished with failures: %zu ok, %zu failed, %zu "
                 "timed out, %zu resumed (of %zu jobs)\n",
                 counts[std::size_t(hier::run_status::ok)],
                 counts[std::size_t(hier::run_status::failed)],
                 counts[std::size_t(hier::run_status::timed_out)],
                 counts[std::size_t(hier::run_status::skipped_resumed)],
                 rep.jobs.size());
    return failures;
}

report run_sweep(const sweep& s, const run_options& opt,
                 const std::vector<sink*>& sinks)
{
    report rep;
    rep.jobs = s.build();
    rep.config_count = s.configs().size();
    rep.workload_count = s.workloads().size();
    rep.replicate_count = s.replicate_count();
    rep.results.resize(rep.jobs.size());
    const std::size_t n = rep.jobs.size();

    for (sink* sk : sinks)
        if (sk != nullptr)
            sk->begin(n);

    // In-order streaming emission: rows reach the sinks in flat-job order
    // — deterministic bytes out, independent of which worker finished
    // first — but *during* the sweep, as soon as every earlier-flat job is
    // done, so a killed process leaves a durable prefix instead of losing
    // every finished row.
    std::mutex emit_mutex;
    std::vector<char> done(n, 0);
    // A sink whose write/fsync failed (sink_error) is disabled for the rest
    // of the sweep instead of repeating the throw on every row: complete()
    // runs inside a pool task, where an escaped exception would terminate
    // the process and lose every other job's work.
    std::vector<char> sink_down(sinks.size(), 0);
    std::size_t cursor = 0;
    auto consume_guarded = [&](std::size_t s, const job& j,
                               const hier::run_result& r) {
        if (sinks[s] == nullptr || sink_down[s])
            return;
        try {
            sinks[s]->consume(j, r);
        } catch (const sink_error& e) {
            sink_down[s] = 1;
            ++rep.sink_failures;
            LNUCA_WARN("sink ", s, " disabled for the rest of the sweep: ",
                       e.what());
        }
    };
    auto complete = [&](std::size_t i) {
        std::lock_guard<std::mutex> lock(emit_mutex);
        done[i] = 1;
        while (cursor < n && done[cursor]) {
            if (opt.row_hook)
                opt.row_hook(rep.jobs[cursor], rep.results[cursor], rep);
            for (std::size_t s = 0; s < sinks.size(); ++s)
                consume_guarded(s, rep.jobs[cursor], rep.results[cursor]);
            ++cursor;
        }
    };

    auto run_job = [&](std::size_t i) {
        const job& j = rep.jobs[i];
        bool resumed = false;
        if (opt.resume != nullptr) {
            const auto it = opt.resume->find(j.key.flat);
            if (it != opt.resume->end()) {
                rep.results[i] = it->second;
                rep.results[i].status = hier::run_status::skipped_resumed;
                resumed = true;
            }
        }
        if (!resumed)
            rep.results[i] = execute_job(j, opt);
        complete(i);
    };

    if (opt.threads == 1 || n <= 1) {
        for (std::size_t i = 0; i < n; ++i)
            run_job(i);
    } else {
        pool workers(opt.threads);
        workers.parallel_for(n, run_job);
        // Explicit shutdown (the destructor's would be equivalent) so the
        // abandoned-worker count lands in the report instead of vanishing.
        workers.shutdown();
        rep.abandoned_workers = workers.abandoned_workers();
    }

    for (std::size_t s = 0; s < sinks.size(); ++s) {
        if (sinks[s] == nullptr || sink_down[s])
            continue;
        try {
            sinks[s]->finish();
        } catch (const sink_error& e) {
            ++rep.sink_failures;
            LNUCA_WARN("sink ", s, " failed to finish: ", e.what());
        }
    }
    return rep;
}

} // namespace lnuca::exp

namespace lnuca::hier {

std::vector<std::vector<run_result>>
run_matrix(const std::vector<system_config>& configs,
           const std::vector<wl::workload_profile>& workloads,
           std::uint64_t instructions, std::uint64_t warmup, std::uint64_t seed)
{
    exp::sweep s;
    s.add_configs(configs)
        .add_workloads(workloads)
        .instructions(instructions)
        .warmup(warmup)
        .base_seed(seed);
    return exp::run_sweep(s).matrix();
}

} // namespace lnuca::hier
