// Work-stealing thread pool for independent simulation jobs.
//
// Each worker owns a deque; submit() deals tasks round-robin, a worker pops
// from the front of its own deque (FIFO: sweeps finish in roughly submission
// order) and an idle worker steals from the *back* of a victim's deque, which
// keeps stealers off the cache-warm front end. Tasks must be independent —
// the pool makes no ordering promises, which is why the experiment runner
// has every task write into its own preallocated result slot and replays
// sinks in flat job order afterwards.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace lnuca::exp {

class pool {
public:
    using task = std::function<void()>;

    /// threads == 0 selects std::thread::hardware_concurrency() (min 1).
    explicit pool(unsigned threads = 0);

    /// Drains outstanding work before joining the workers.
    ~pool();

    pool(const pool&) = delete;
    pool& operator=(const pool&) = delete;

    /// Enqueue one task. Thread-safe; may be called from inside a task.
    void submit(task t);

    /// Block until every submitted task has finished.
    void wait();

    /// Run fn(0) .. fn(n-1) across the pool and wait for all of them.
    void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

    unsigned thread_count() const { return unsigned(workers_.size()); }

    /// Tasks a worker obtained from another worker's deque (load-balance
    /// telemetry; identical results either way).
    std::uint64_t steal_count() const;

private:
    struct worker_queue {
        std::mutex mutex;
        std::deque<task> tasks;
    };

    void worker_loop(unsigned self);
    bool try_take(unsigned self, task& out);

    std::vector<std::unique_ptr<worker_queue>> queues_;
    std::vector<std::thread> workers_;

    mutable std::mutex control_mutex_;
    std::condition_variable work_ready_;
    std::condition_variable all_done_;
    std::size_t queued_ = 0;      ///< submitted, not yet picked up
    std::size_t outstanding_ = 0; ///< submitted, not yet finished
    std::uint64_t steals_ = 0;
    std::size_t next_queue_ = 0;  ///< round-robin submit cursor
    bool stopping_ = false;
};

} // namespace lnuca::exp
