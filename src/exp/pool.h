// Work-stealing thread pool for independent simulation jobs.
//
// Each worker owns a deque; submit() deals tasks round-robin, a worker pops
// from the front of its own deque (FIFO: sweeps finish in roughly submission
// order) and an idle worker steals from the *back* of a victim's deque, which
// keeps stealers off the cache-warm front end. Tasks must be independent —
// the pool makes no ordering promises, which is why the experiment runner
// has every task write into its own preallocated result slot and replays
// sinks in flat job order afterwards.
//
// Shutdown robustness: all queue/counter state lives in a shared control
// block that every worker keeps alive through a shared_ptr, so shutdown()
// can *abandon* (detach) a worker stuck inside a stalled task after a
// deadline instead of deadlocking the harness — the zombie worker's later
// accesses to pool state remain valid even after the pool object is gone.
// The abandoned task itself must not reference state owned by the caller
// that a bounded shutdown will free (the experiment runner's per-job soft
// timeouts keep its tasks short precisely so this path stays last-resort).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace lnuca::exp {

class pool {
public:
    using task = std::function<void()>;

    /// threads == 0 selects std::thread::hardware_concurrency() (min 1).
    explicit pool(unsigned threads = 0);

    /// Equivalent to shutdown(0): drains outstanding work, then joins every
    /// worker (unbounded — call shutdown(deadline) first when a task may be
    /// stuck and the harness must survive).
    ~pool();

    pool(const pool&) = delete;
    pool& operator=(const pool&) = delete;

    /// Enqueue one task. Thread-safe; may be called from inside a task.
    void submit(task t);

    /// Block until every submitted task has finished.
    void wait();

    /// Run fn(0) .. fn(n-1) across the pool and wait for all of them.
    void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

    /// Bounded shutdown. deadline_seconds <= 0 drains and joins unbounded
    /// (the historical destructor behaviour). A positive deadline waits at
    /// most that long for outstanding work, then grants the same again as
    /// an exit grace: only workers still stuck *inside a task* are reported
    /// (LNUCA_WARN, naming the worker) and detached rather than joined —
    /// an idle worker that merely has not woken yet is always joined — and
    /// no further queued tasks are started. Returns the number of abandoned
    /// workers. Idempotent; the destructor becomes a no-op afterwards.
    std::size_t shutdown(double deadline_seconds = 0.0);

    unsigned thread_count() const { return unsigned(workers_.size()); }

    /// Tasks a worker obtained from another worker's deque (load-balance
    /// telemetry; identical results either way).
    std::uint64_t steal_count() const;

    /// Workers detached by shutdown() over the pool's lifetime (0 on every
    /// clean run). run_sweep surfaces this in report::abandoned_workers so
    /// a leaked zombie thread is visible instead of silent.
    std::size_t abandoned_workers() const { return abandoned_; }

private:
    struct worker_queue {
        std::mutex mutex;
        std::deque<task> tasks;
    };

    // Shared by the pool object and every worker thread; outlives the pool
    // when a worker is abandoned at shutdown.
    struct control {
        std::vector<std::unique_ptr<worker_queue>> queues;

        std::mutex mutex;
        std::condition_variable work_ready;
        std::condition_variable all_done;
        std::condition_variable worker_exited;
        std::size_t queued = 0;      ///< submitted, not yet picked up
        std::size_t outstanding = 0; ///< submitted, not yet finished
        std::uint64_t steals = 0;
        std::size_t next_queue = 0;  ///< round-robin submit cursor
        std::size_t live_workers = 0;
        bool stopping = false;
        bool abandoning = false; ///< bounded shutdown gave up: take no more
        std::vector<char> exited;  ///< per-worker: worker_loop returned
        std::vector<char> in_task; ///< per-worker: currently inside t()
    };

    static void worker_loop(std::shared_ptr<control> ctl, unsigned self);
    static bool try_take(control& ctl, unsigned self, task& out);

    std::shared_ptr<control> ctl_;
    std::vector<std::thread> workers_;
    bool shut_down_ = false;
    std::size_t abandoned_ = 0; ///< see abandoned_workers()
};

} // namespace lnuca::exp
