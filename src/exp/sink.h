// Result sinks for the experiment runner.
//
// The runner replays finished (job, run_result) pairs into every sink in
// deterministic flat-job order, after the parallel phase — a sink never sees
// scheduler-dependent interleavings, so its output is bit-stable across
// thread counts *except* the host-timing fields (host_seconds and the
// derived throughput rates), which measure the host by design.
//
// Formats:
//   table_sink  human-readable summary table (one row per run)
//   csv_sink    flat CSV, one header row + one row per run
//   jsonl_sink  JSON-lines: one self-contained object per run, carrying the
//               job coordinates, derived seed, the full run_result and the
//               energy breakdown. decode_json_line() round-trips the format
//               (bench/BENCH_*.json trajectory tooling and tests).
#pragma once

#include "src/exp/job.h"

#include <optional>
#include <ostream>
#include <stdexcept>
#include <string>
#include <vector>

namespace lnuca::exp {

/// Thrown by jsonl_sink when a write(2) or fsync(2) fails: rows the caller
/// believes durable would otherwise be silently lost (a sweep "completing"
/// with an empty output file). The message names the flat row index where
/// the loss starts. run_sweep catches it, disables that sink for the rest
/// of the sweep and counts it in report::sink_failures — the simulation
/// results themselves survive in the in-memory report.
class sink_error : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

class sink {
public:
    virtual ~sink() = default;

    /// Called once before the first consume() with the sharded job count.
    virtual void begin(std::size_t job_count) { (void)job_count; }

    /// Called once per finished job, in flat-job order.
    virtual void consume(const job& j, const hier::run_result& r) = 0;

    /// Called once after the last consume().
    virtual void finish() {}
};

/// Compact human-readable run log (headline metrics only).
class table_sink final : public sink {
public:
    explicit table_sink(std::ostream& out) : out_(out) {}
    void consume(const job& j, const hier::run_result& r) override;
    void finish() override;

private:
    std::ostream& out_;
    std::vector<std::vector<std::string>> rows_;
};

/// Flat CSV with a fixed column set.
class csv_sink final : public sink {
public:
    explicit csv_sink(std::ostream& out) : out_(out) {}
    void begin(std::size_t job_count) override;
    void consume(const job& j, const hier::run_result& r) override;

private:
    std::ostream& out_;
};

/// JSON-lines, one object per run. Rows are batched through a pre-sized
/// string buffer and flushed every `flush_rows` rows plus once from
/// finish()/the destructor - one write per batch instead of a formatted
/// write per row (visible in --shard sweeps, where thousands of rows append
/// to one file).
///
/// Crash-safety contract (file mode): the file opens with O_APPEND and a
/// flush writes only whole lines in one write(2), so the sink never leaves
/// a partial record *of its own making* mid-file — after any flush boundary
/// the file ends at a newline. A kill between flushes loses at most the
/// buffered rows (whole rows, recoverable by --resume), and a torn tail
/// from a mid-write crash is at most one trailing truncated line, which the
/// resume scan tolerates and truncates away. `fsync_rows > 0` additionally
/// fsyncs every N rows (and once from finish()) so rows survive a host
/// crash, not just a process kill.
///
/// Rows with status == skipped_resumed are *not* written: they were loaded
/// from this very file by --resume and re-appending them would duplicate
/// records, breaking the byte-identical-convergence guarantee.
class jsonl_sink final : public sink {
public:
    explicit jsonl_sink(std::ostream& out, std::size_t flush_rows = 64);
    /// Append-only file mode (see the crash-safety contract above).
    jsonl_sink(const std::string& path, std::size_t flush_rows,
               std::size_t fsync_rows);
    ~jsonl_sink() override;

    /// File mode: false when the file could not be opened.
    bool ok() const { return out_ != nullptr || fd_ >= 0; }

    void begin(std::size_t job_count) override;
    void consume(const job& j, const hier::run_result& r) override;
    void finish() override;

private:
    /// Throws sink_error on a failed/short write(2) or failed fsync(2)
    /// (file mode). The buffer is cleared first so the destructor's final
    /// flush cannot re-throw the same loss.
    void flush();

    std::ostream* out_ = nullptr; ///< stream mode (stdout / tests)
    int fd_ = -1;                 ///< file mode (O_APPEND + optional fsync)
    std::size_t flush_rows_;
    std::size_t fsync_rows_ = 0;  ///< 0 = never fsync
    std::size_t buffered_rows_ = 0;
    std::size_t rows_since_fsync_ = 0;
    std::size_t consumed_rows_ = 0; ///< rows seen; names the loss point
    std::string buffer_;
};

/// Broadcasts to several sinks (non-owning).
class sink_fanout final : public sink {
public:
    void attach(sink* s);
    void begin(std::size_t job_count) override;
    void consume(const job& j, const hier::run_result& r) override;
    void finish() override;

private:
    std::vector<sink*> sinks_;
};

/// One decoded jsonl_sink line.
struct decoded_run {
    job_key key;
    std::uint64_t seed = 0;
    std::uint64_t instructions_requested = 0;
    std::uint64_t warmup = 0;
    /// Manifest provenance stamp (0 = ad-hoc sweep or pre-manifest row).
    std::uint64_t manifest_hash = 0;
    hier::run_result result;
};

/// Serialise one run the way jsonl_sink does (doubles keep full precision,
/// so decode_json_line() round-trips bit-exactly). `status` is always
/// emitted; `error` only when status != ok.
std::string encode_json_line(const job& j, const hier::run_result& r);

/// Parse an encode_json_line() line. Returns std::nullopt — never UB or a
/// partially-filled struct presented as valid — on any malformed input:
/// truncation mid-string/mid-number/mid-escape, a missing closing brace, a
/// non-numeric value for a numeric key, or an unknown status string. Lines
/// from older writers without status/error decode with status == ok.
std::optional<decoded_run> decode_json_line(const std::string& line);

} // namespace lnuca::exp
