// Shared main() body for the figure/table bench binaries and sweep-driven
// examples. Standardises the experiment-runner command line:
//
//   --manifest FILE    drive the sweep from a lnuca_sweep/1 JSON manifest
//                      (src/exp/manifest.h) instead of the bench's own
//                      configs/workloads. The manifest is authoritative for
//                      the experiment definition, so combining it with
//                      --workload/--instructions/--warmup/--seed/
//                      --replicates/--engine/--sampling/--capture is a CLI
//                      error; --shard/--resume/--threads/--json/--csv/
//                      fault-tolerance flags compose as usual. Every row
//                      carries the manifest's content hash, and --resume
//                      refuses files whose rows carry a different one.
//   --instructions N   measured instructions per run
//   --warmup N         discarded warm-up instructions per run
//   --seed S           base seed (per-job seeds derive via rng::split)
//   --replicates R     repeated measurements per (config, workload)
//   --threads N        worker threads (0 = all hardware threads, 1 = serial)
//   --shard i/n        run only this shard of the sweep (multi-machine)
//   --json PATH        append JSON-lines results ("-" = stdout)
//   --csv PATH         write CSV results ("-" = stdout)
//   --engine MODE      dense | skip | paranoid (default: skip; bit-identical
//                      schedules, see src/sim/engine.h)
//   --sampling SPEC    off (default) | periodic:<detail>:<period>[:<warmup>]
//                      sampled execution: functional fast-forward plus
//                      periodic detailed windows; results carry a 95% CI
//                      (run_result::ipc_ci95) and estimated counts
//   --workload LIST    replace the bench's default workload set with a
//                      comma-separated spec list: SPEC proxy names,
//                      trace:<file> (binary trace replay), or
//                      scenario:<name> (shared-memory scenario library)
//   --capture PATH     serialise the run's instruction stream(s) to a
//                      binary trace file; requires a single-job sweep
//                      (one config x one workload, replicates=1)
//   --timeout S        per-job soft timeout in seconds (0 = off): a stalled
//                      job becomes a timed_out row instead of hanging the
//                      sweep (its attempt thread is abandoned)
//   --retries N        extra attempts for a failed/timed-out job; retries
//                      re-derive the identical rng::split seed, so a
//                      successful retry is bit-identical to a clean run
//   --resume           scan the --json file, skip every (config, workload,
//                      replicate) already completed there (failed rows and
//                      one trailing truncated line are re-run/repaired),
//                      and append only the missing rows — an interrupted
//                      shard re-invoked with the same command line
//                      converges to the uninterrupted run's byte content
//                      (modulo host-timing fields)
//   --durable N        crash-durable JSON-lines: write every row
//                      immediately and fsync every N rows
//   --checkpoint-every N
//                      mid-run checkpointing (src/ckpt/): every job
//                      snapshots its full simulator state every N retired
//                      instructions and on SIGTERM/SIGINT (the run then
//                      exits 128+signum after saving). With --resume, a
//                      job's valid snapshot restores and the run continues
//                      bit-identically to an uninterrupted one; a corrupt
//                      or mismatched snapshot falls back to a cold start.
//                      Mutually exclusive with --capture.
//   --checkpoint-dir D directory for the per-job snapshot files
//                      (job_<flat>.ckpt); defaults to <json path>.ckpt.d
//                      next to --json FILE, or "checkpoints" without one
//   --fault SPEC       test-only fault injection (also: LNUCA_FAULT env
//                      var; flag wins): throw:<flat>[:<attempts>] |
//                      stall:<flat>:<sec>[:<attempts>] | exit:<flat>[:<code>]
//   --quiet            skip the paper-style rendered tables and the
//                      throughput summary
//
// A bench passes its configs, workloads and a render callback; run_app
// expands the sweep, runs it on the pool, wires the requested sinks, and —
// for unsharded runs — calls render with the completed report. Sharded runs
// suppress rendering (the matrix is partial by construction) and tell the
// operator to merge the JSON-lines shards instead.
//
// Exit codes: 0 on success, exit_job_failure (1) when any job failed or
// timed out (the failure summary on stderr names each one), and
// exit_cli_error (2) for command-line/configuration errors — so fleet
// drivers can tell "re-run the failed rows" from "fix the invocation".
#pragma once

#include "src/common/cli.h"
#include "src/exp/fault.h"
#include "src/exp/runner.h"
#include "src/exp/sink.h"

#include <fstream>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace lnuca::exp {

/// Process exit codes shared by run_app and the self-driving benches.
inline constexpr int exit_ok = 0;
inline constexpr int exit_job_failure = 1; ///< >= 1 job failed / timed out
inline constexpr int exit_cli_error = 2;   ///< bad flags / unusable files

struct app_options {
    /// --manifest: when non-empty, the sweep definition comes from this
    /// lnuca_sweep/1 file and the per-axis flags above are rejected.
    std::string manifest_path;
    std::uint64_t instructions = hier::default_instructions;
    std::uint64_t warmup = hier::default_warmup;
    std::uint64_t seed = 1;
    std::size_t replicates = 1;
    unsigned threads = 0;
    std::size_t shard_index = 0;
    std::size_t shard_count = 1;
    std::string json_path;
    std::string csv_path;
    bool quiet = false;
    sim::schedule_mode engine_mode = sim::schedule_mode::idle_skip;
    hier::sampling_config sampling; ///< disabled unless --sampling given
    /// --workload: when non-empty, replaces the bench's default workload
    /// set (already parsed into profiles; trace/scenario specs carry their
    /// source in workload_profile::trace_path / scenario).
    std::vector<wl::workload_profile> workload_override;
    std::string capture_path; ///< --capture: binary trace output file

    // Fault tolerance / resume (see the flag table above).
    double timeout_seconds = 0.0;     ///< --timeout
    std::size_t retries = 0;          ///< --retries
    bool resume = false;              ///< --resume
    std::size_t durable_rows = 0;     ///< --durable (0 = batched, no fsync)
    std::optional<fault_plan> fault;  ///< --fault / LNUCA_FAULT
    std::uint64_t checkpoint_every = 0; ///< --checkpoint-every (0 = off)
    std::string checkpoint_dir;         ///< --checkpoint-dir (defaulted)

    /// Set by parse_app_options on an unusable command line (bad --shard,
    /// bad --fault, ...). Callers must print cli_error_text and exit with
    /// exit_cli_error instead of running a half-configured sweep.
    bool cli_error = false;
    std::string cli_error_text;
};

/// Parse the shared options; unknown options are left for the caller.
app_options parse_app_options(const cli_args& args);

/// The JSONL/CSV (and optional rendered-table) sinks an app_options asks
/// for, with their backing streams - one owner movable across the sweep.
/// `ok` is false when an output file could not be opened (already
/// reported to stderr); callers should exit with exit_cli_error.
struct sink_set {
    std::vector<sink*> sinks;
    bool ok = true;

    // Owned plumbing behind `sinks` (order matters: streams before sinks).
    std::unique_ptr<std::ofstream> csv_file;
    std::unique_ptr<jsonl_sink> json;
    std::unique_ptr<csv_sink> csv;
    std::unique_ptr<table_sink> table;
};

/// Wire the sinks requested by `opt` ("-" streams to stdout). The
/// JSON-lines file appends (O_APPEND; --durable N adds write-per-row +
/// fsync-every-N), the CSV truncates. `with_table` adds a rendered
/// table_sink on stdout (fig_cmp-style row replay).
sink_set make_sinks(const app_options& opt, bool with_table = false);

/// Result of scanning an existing JSON-lines file for --resume.
struct resume_scan {
    /// flat job index -> decoded result for rows that completed (status
    /// ok); failed/timed-out rows are deliberately absent so they re-run.
    std::map<std::size_t, hier::run_result> completed;
    std::size_t rows = 0;         ///< decodable rows seen (any status)
    std::size_t rerun_failed = 0; ///< failed/timed-out rows that will re-run
    bool truncated_tail = false;  ///< one partial trailing line was removed
};

/// Scan opt.json_path against the sweep for --resume. Rules: every decoded
/// row must match the sweep's job at its flat index (same coordinates,
/// seed, instructions, warmup and manifest hash — otherwise the file
/// belongs to a different sweep and resuming would silently mix
/// experiments); rows for other
/// shards of the same sweep are accepted and ignored; exactly one
/// undecodable *trailing* line is tolerated as a kill-torn tail and
/// truncated off the file; an undecodable line anywhere else poisons the
/// file. Returns false (message on stderr) when resume cannot proceed.
bool scan_resume_file(const app_options& opt, const sweep& s,
                      resume_scan& out);

/// run_options wired from the app flags (+ the resume scan, which must
/// outlive the run_sweep call, as must `opt` itself for --fault).
run_options make_run_options(const app_options& opt, const resume_scan* scan);

/// Checkpoint prologue, shared with benches that own their main instead
/// of delegating to run_app (fig_cmp): when --checkpoint-every is active,
/// create the checkpoint directory and latch SIGTERM/SIGINT so each
/// running job saves a final snapshot at its next quiescent boundary
/// instead of dying mid-window. No-op when checkpointing is off. Returns
/// false (message on stderr) when the directory cannot be created.
bool setup_checkpoints(const app_options& opt);

/// Post-sweep harness tally, the other half of setup_checkpoints():
/// prints the abandoned-worker / failed-sink warnings (both 0 on every
/// clean sweep), then returns 128+signum when a latched SIGTERM/SIGINT
/// preempted the sweep after checkpointing (the shell kill convention, so
/// drivers re-run with --resume instead of triaging "failed" rows), or -1
/// when the sweep ran to completion and the caller's normal exit path
/// applies.
int finish_sweep(const report& rep);

/// Render callback: the completed (unsharded) report plus the options.
using render_fn = std::function<void(const report&, const app_options&)>;

/// Run a (configs x workloads) sweep under the shared command line.
/// Returns the process exit code (see exit_* above).
int run_app(int argc, const char* const* argv,
            std::vector<hier::system_config> configs,
            std::vector<wl::workload_profile> workloads,
            const render_fn& render);

} // namespace lnuca::exp
