// Shared main() body for the figure/table bench binaries and sweep-driven
// examples. Standardises the experiment-runner command line:
//
//   --instructions N   measured instructions per run
//   --warmup N         discarded warm-up instructions per run
//   --seed S           base seed (per-job seeds derive via rng::split)
//   --replicates R     repeated measurements per (config, workload)
//   --threads N        worker threads (0 = all hardware threads, 1 = serial)
//   --shard i/n        run only this shard of the sweep (multi-machine)
//   --json PATH        append JSON-lines results ("-" = stdout)
//   --csv PATH         write CSV results ("-" = stdout)
//   --engine MODE      dense | skip | paranoid (default: skip; bit-identical
//                      schedules, see src/sim/engine.h)
//   --sampling SPEC    off (default) | periodic:<detail>:<period>[:<warmup>]
//                      sampled execution: functional fast-forward plus
//                      periodic detailed windows; results carry a 95% CI
//                      (run_result::ipc_ci95) and estimated counts
//   --workload LIST    replace the bench's default workload set with a
//                      comma-separated spec list: SPEC proxy names,
//                      trace:<file> (binary trace replay), or
//                      scenario:<name> (shared-memory scenario library)
//   --capture PATH     serialise the run's instruction stream(s) to a
//                      binary trace file; requires a single-job sweep
//                      (one config x one workload, replicates=1)
//   --quiet            skip the paper-style rendered tables and the
//                      throughput summary
//
// A bench passes its configs, workloads and a render callback; run_app
// expands the sweep, runs it on the pool, wires the requested sinks, and —
// for unsharded runs — calls render with the completed report. Sharded runs
// suppress rendering (the matrix is partial by construction) and tell the
// operator to merge the JSON-lines shards instead.
#pragma once

#include "src/common/cli.h"
#include "src/exp/runner.h"
#include "src/exp/sink.h"

#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace lnuca::exp {

struct app_options {
    std::uint64_t instructions = hier::default_instructions;
    std::uint64_t warmup = hier::default_warmup;
    std::uint64_t seed = 1;
    std::size_t replicates = 1;
    unsigned threads = 0;
    std::size_t shard_index = 0;
    std::size_t shard_count = 1;
    std::string json_path;
    std::string csv_path;
    bool quiet = false;
    sim::schedule_mode engine_mode = sim::schedule_mode::idle_skip;
    hier::sampling_config sampling; ///< disabled unless --sampling given
    /// --workload: when non-empty, replaces the bench's default workload
    /// set (already parsed into profiles; trace/scenario specs carry their
    /// source in workload_profile::trace_path / scenario).
    std::vector<wl::workload_profile> workload_override;
    std::string capture_path; ///< --capture: binary trace output file
};

/// Parse the shared options; unknown options are left for the caller.
app_options parse_app_options(const cli_args& args);

/// The JSONL/CSV (and optional rendered-table) sinks an app_options asks
/// for, with their backing streams - one owner movable across the sweep.
/// `ok` is false when an output file could not be opened (already
/// reported to stderr); callers should exit non-zero.
struct sink_set {
    std::vector<sink*> sinks;
    bool ok = true;

    // Owned plumbing behind `sinks` (order matters: streams before sinks).
    std::unique_ptr<std::ofstream> json_file, csv_file;
    std::unique_ptr<jsonl_sink> json;
    std::unique_ptr<csv_sink> csv;
    std::unique_ptr<table_sink> table;
};

/// Wire the sinks requested by `opt` ("-" streams to stdout; the
/// JSON-lines file appends, the CSV truncates). `with_table` adds a
/// rendered table_sink on stdout (fig_cmp-style row replay).
sink_set make_sinks(const app_options& opt, bool with_table = false);

/// Render callback: the completed (unsharded) report plus the options.
using render_fn = std::function<void(const report&, const app_options&)>;

/// Run a (configs x workloads) sweep under the shared command line.
/// Returns the process exit code.
int run_app(int argc, char** argv, std::vector<hier::system_config> configs,
            std::vector<wl::workload_profile> workloads,
            const render_fn& render);

} // namespace lnuca::exp
