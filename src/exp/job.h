// Job model of the experiment runner: one job is one deterministic
// hier::system run over an independently derived seed lane.
//
// Determinism contract: a job owns copies of its inputs and runs a fresh
// single-threaded hier::system; jobs share nothing, so a sweep executed on
// any thread count — or split across machines with shard filters — produces
// bit-identical run_results for the same (base seed, coordinates) tuples.
#pragma once

#include "src/common/rng.h"
#include "src/hier/system.h"
#include "src/workloads/profile.h"

#include <cstddef>
#include <cstdint>

namespace lnuca::exp {

/// Position of a job in its sweep's (config x workload x replicate) space.
struct job_key {
    std::size_t config = 0;    ///< index into the sweep's config axis
    std::size_t workload = 0;  ///< index into the sweep's workload axis
    std::size_t replicate = 0; ///< repeated-measurement index
    std::size_t flat = 0;      ///< flat index in the full, unsharded sweep

    bool operator==(const job_key& o) const
    {
        return config == o.config && workload == o.workload &&
               replicate == o.replicate && flat == o.flat;
    }
};

/// One self-contained simulation. Inputs are held by value so a job outlives
/// the sweep that built it and can be shipped to any worker thread.
struct job {
    job_key key;
    hier::system_config config;
    wl::workload_profile workload;
    std::uint64_t instructions = hier::default_instructions;
    std::uint64_t warmup = hier::default_warmup;

    /// rng::split(base seed, config, workload, replicate): collision-free
    /// across the whole sweep (see src/common/rng.h).
    std::uint64_t seed = 1;

    /// Provenance stamp of a manifest-driven sweep (src/exp/manifest.h):
    /// the canonical-content hash of the manifest that expanded this job.
    /// 0 for ad-hoc (manifest-less) sweeps. Carried into every JSONL row
    /// so merge_tool and --resume can prove a result file belongs to the
    /// manifest they were handed.
    std::uint64_t manifest_hash = 0;

    hier::run_result run() const
    {
        return hier::run_one(config, workload, instructions, warmup, seed);
    }
};

} // namespace lnuca::exp
