#include "src/coh/coherence_hub.h"

#include "src/ckpt/archive.h"
#include "src/common/log.h"

#include <string>

namespace lnuca::coh {

coherence_hub::coherence_hub(const coherence_config& config,
                             mem::txn_id_source& ids)
    : config_(config),
      ids_(ids),
      dir_(config.directory_entries != 0 ? config.directory_entries
                                         : config.cores * 8192),
      l1s_(config.cores, nullptr),
      txns_(std::size_t(config.cores) * 32)
{
    if (config_.cores < 2 || config_.cores > mem::max_cores)
        throw std::invalid_argument("coherence hub needs 2..32 cores");
    counters_.preregister(
        {"reads", "rfos", "upgrades", "writebacks_in", "invalidations_sent",
         "downgrades_sent", "snoop_retries", "c2c_transfers", "c2c_dirty",
         "fetches_below", "writebacks_below", "busy_retries",
         "owner_rerequests", "race_fallbacks", "untracked_below_response"});
    h_reads_ = counters_.handle_of("reads");
    h_rfos_ = counters_.handle_of("rfos");
    h_upgrades_ = counters_.handle_of("upgrades");
    h_writebacks_in_ = counters_.handle_of("writebacks_in");
    h_inv_sent_ = counters_.handle_of("invalidations_sent");
    h_downgrades_sent_ = counters_.handle_of("downgrades_sent");
    h_snoop_retries_ = counters_.handle_of("snoop_retries");
    h_c2c_ = counters_.handle_of("c2c_transfers");
    h_c2c_dirty_ = counters_.handle_of("c2c_dirty");
    h_fetches_below_ = counters_.handle_of("fetches_below");
    h_writebacks_below_ = counters_.handle_of("writebacks_below");
    h_busy_retries_ = counters_.handle_of("busy_retries");
    h_owner_rerequests_ = counters_.handle_of("owner_rerequests");
    h_race_fallbacks_ = counters_.handle_of("race_fallbacks");
    h_untracked_below_ = counters_.handle_of("untracked_below_response");

    txn_free_.reserve(txns_.size());
    for (std::size_t slot = txns_.size(); slot-- > 0;)
        txn_free_.push_back(std::int32_t(slot));
    const std::size_t req_bound = std::size_t(config_.cores) * 64;
    reqs_.reserve(2 * req_bound);
    snoops_.reserve(req_bound);
    below_resp_.reserve(req_bound);
    down_pending_.reserve(2 * req_bound);
    wb_in_transit_.reserve(req_bound);
}

void coherence_hub::attach_l1(mem::core_id_t core,
                              mem::conventional_cache* l1)
{
    if (core >= l1s_.size())
        throw std::invalid_argument("attach_l1: core id out of range");
    l1s_[core] = l1;
}

bool coherence_hub::can_accept(const mem::mem_request& request) const
{
    (void)request;
    return reqs_.size() < std::size_t(config_.cores) * 64;
}

void coherence_hub::accept(const mem::mem_request& request)
{
    if (request.kind == mem::access_kind::writeback)
        wb_in_transit_.emplace_back(request.core, block_of(request.addr));
    reqs_.push(request.created_at + config_.request_latency, request);
}

mem::warm_result coherence_hub::warm_access(const mem::warm_request& request)
{
    // Functional twin of process_read() / process_writeback() /
    // process_snoops(): identical directory transitions and the same
    // propagation into the shared level, with snoops applied synchronously -
    // the warm contract guarantees a quiescent machine, so nothing is in
    // flight, nothing races, and `retry` cannot occur. Zero timing state:
    // no transactions, no queues, no counters.
    const addr_t block = block_of(request.addr);
    const mem::core_id_t core = request.core;
    const std::uint32_t me = 1u << core;

    if (request.kind == mem::access_kind::writeback) {
        // process_writeback() minus the in-flight races (impossible warm).
        // still_backed mirrors the eviction-vs-refetch guard: a warm
        // re-fetch for the block cannot be outstanding, but the check keeps
        // the two paths textually parallel and costs one tag probe.
        if (dir_entry* e = dir_.find(block)) {
            const bool still_backed =
                l1s_[core] != nullptr && l1s_[core]->holds_or_in_flight(block);
            if (!still_backed) {
                e->sharers &= ~me;
                if (e->owner == core) {
                    e->owner = mem::no_core;
                    if (e->state == dir_state::exclusive_modified)
                        e->state = e->sharers == 0 ? dir_state::invalid
                                                   : dir_state::shared;
                }
                if (e->sharers == 0)
                    e->state = dir_state::invalid;
            }
            dir_.touch();
            dir_.release_if_idle(*e);
        }
        if ((request.dirty || config_.forward_clean_victims) &&
            downstream_ != nullptr)
            downstream_->warm_access({block, mem::access_kind::writeback,
                                      request.dirty, false, core});
        return {};
    }

    dir_entry& e = dir_.get_or_create(block);
    mem::warm_result result;
    // A plain warm write can only come from a non-coherent upper level;
    // treat it as a read-for-ownership so the directory stays sound.
    const bool rfo =
        request.exclusive || request.kind == mem::access_kind::write;

    if (rfo) {
        // RFO / upgrade: every other copy invalidates. An EM owner's line
        // migrates cache-to-cache - dirty data transfers to the requester
        // without touching the shared level, exactly like the detailed
        // recall (t.peer_dirty -> response.dirty -> requester installs M).
        const bool upgrade = (e.sharers & me) != 0;
        bool peer_data = false;
        if (e.state == dir_state::exclusive_modified && e.owner != core) {
            const mem::core_id_t owner = e.owner;
            const mem::snoop_result s =
                l1s_[owner]->warm_snoop_invalidate(block);
            e.sharers &= ~(1u << owner);
            if (s != mem::snoop_result::not_present) {
                peer_data = true;
                result.dirty = s == mem::snoop_result::applied_dirty;
            }
        } else {
            for (unsigned j = 0; j < config_.cores; ++j)
                if (j != core && (e.sharers & (1u << j)) != 0) {
                    l1s_[j]->warm_snoop_invalidate(block);
                    e.sharers &= ~(1u << j);
                }
        }
        // Upgrades move no data; a vanished owner copy (defensive - warm
        // evictions notify synchronously) falls back to the shared level,
        // mirroring the detailed race fallback.
        if (!upgrade && !peer_data && downstream_ != nullptr)
            result.dirty = downstream_
                               ->warm_access({block, mem::access_kind::read,
                                              false, true, core})
                               .dirty;
        e.sharers = me;
        e.state = dir_state::exclusive_modified;
        e.owner = core;
        result.exclusive = true;
    } else {
        switch (e.state) {
        case dir_state::invalid:
        case dir_state::shared:
            // Data lives in (or below) the shared level.
            if (downstream_ != nullptr)
                result.dirty =
                    downstream_
                        ->warm_access({block, mem::access_kind::read, false,
                                       false, core})
                        .dirty;
            break;
        case dir_state::exclusive_modified:
            if (e.owner != core) {
                // Owner downgrades to S; modified data flushes into the
                // shared level and the requester installs clean (the
                // detailed downgrade path never sets peer_dirty).
                const mem::core_id_t owner = e.owner;
                const mem::snoop_result s =
                    l1s_[owner]->warm_snoop_downgrade(block);
                e.owner = mem::no_core;
                e.state = dir_state::shared;
                if (s == mem::snoop_result::applied_dirty &&
                    downstream_ != nullptr)
                    downstream_->warm_access({block,
                                              mem::access_kind::writeback,
                                              true, false, owner});
                if (s == mem::snoop_result::not_present) {
                    // The owner evicted the line (defensive, as above):
                    // fetch from the shared level instead.
                    e.sharers &= ~(1u << owner);
                    if (downstream_ != nullptr)
                        result.dirty = downstream_
                                           ->warm_access(
                                               {block, mem::access_kind::read,
                                                false, false, core})
                                           .dirty;
                }
            }
            // owner == core: stale self-request shape - the directory
            // re-grants below without moving data.
            break;
        }
        e.sharers |= me;
        const bool exclusive = e.sharers == me;
        e.state = exclusive ? dir_state::exclusive_modified
                            : dir_state::shared;
        e.owner = exclusive ? core : mem::no_core;
        result.exclusive = exclusive;
    }
    dir_.touch();
    return result;
}

void coherence_hub::respond(const mem::mem_response& response)
{
    below_resp_.push(response.ready_at, response);
}

cycle_t coherence_hub::next_event(cycle_t now) const
{
    // A queued downstream hand-off retries every cycle until space frees.
    if (!down_pending_.empty())
        return now;
    cycle_t next = reqs_.next_ready();
    if (snoops_.next_ready() < next)
        next = snoops_.next_ready();
    if (below_resp_.next_ready() < next)
        next = below_resp_.next_ready();
    return next < now ? now : next;
}

std::uint64_t coherence_hub::state_digest() const
{
    sim::state_hash h;
    h.mix(counters_.digest());
    h.mix(reqs_.size());
    h.mix(reqs_.next_ready());
    h.mix(snoops_.size());
    h.mix(snoops_.next_ready());
    h.mix(below_resp_.size());
    h.mix(below_resp_.next_ready());
    h.mix(down_pending_.size());
    h.mix(wb_in_transit_.size());
    h.mix(dir_.version());
    h.mix(in_flight_);
    return h.value();
}

bool coherence_hub::quiescent() const
{
    return reqs_.empty() && snoops_.empty() && below_resp_.empty() &&
           down_pending_.empty() && in_flight_ == 0;
}

void coherence_hub::tick(cycle_t now)
{
    process_below_responses(now);
    process_snoops(now);
    process_requests(now);
    drain_downstream(now);
    if (paranoid_)
        check_invariants();
}

std::int32_t coherence_hub::allocate_txn()
{
    const std::int32_t slot = txn_free_.back();
    txn_free_.pop_back();
    txns_[std::size_t(slot)] = txn{};
    txns_[std::size_t(slot)].live = true;
    ++in_flight_;
    return slot;
}

coherence_hub::txn* coherence_hub::txn_by_down_id(txn_id_t id)
{
    for (txn& t : txns_)
        if (t.live && t.waiting_below && t.down_id == id)
            return &t;
    return nullptr;
}

void coherence_hub::send_snoop(cycle_t now, std::int32_t slot,
                               mem::core_id_t core, bool invalidate)
{
    counters_.inc(invalidate ? h_inv_sent_ : h_downgrades_sent_);
    snoops_.push(now + config_.snoop_latency,
                 snoop_msg{core, txns_[std::size_t(slot)].block, invalidate,
                           slot});
    ++txns_[std::size_t(slot)].pending_snoops;
}

void coherence_hub::fetch_below(cycle_t now, std::int32_t slot)
{
    txn& t = txns_[std::size_t(slot)];
    mem::mem_request fetch;
    fetch.id = ids_.next();
    fetch.addr = t.block;
    fetch.size = config_.block_bytes;
    fetch.kind = mem::access_kind::read;
    fetch.created_at = now;
    fetch.needs_response = true;
    fetch.core = t.requester;
    fetch.exclusive = t.rfo;
    t.waiting_below = true;
    t.down_id = fetch.id;
    counters_.inc(h_fetches_below_);
    down_pending_.push_back(fetch);
}

void coherence_hub::push_writeback_below(cycle_t now, addr_t block, bool dirty,
                                         mem::core_id_t core)
{
    mem::mem_request wb;
    wb.id = ids_.next();
    wb.addr = block;
    wb.size = config_.block_bytes;
    wb.kind = mem::access_kind::writeback;
    wb.created_at = now;
    wb.needs_response = false;
    wb.dirty = dirty;
    wb.core = core;
    counters_.inc(h_writebacks_below_);
    down_pending_.push_back(wb);
}

void coherence_hub::drain_downstream(cycle_t now)
{
    (void)now;
    while (!down_pending_.empty() && downstream_ != nullptr &&
           downstream_->can_accept(down_pending_.front())) {
        downstream_->accept(down_pending_.front());
        down_pending_.pop_front();
    }
}

void coherence_hub::process_requests(cycle_t now)
{
    while (auto request = reqs_.pop_ready(now)) {
        if (request->kind == mem::access_kind::writeback)
            process_writeback(now, *request);
        else
            process_read(now, *request);
    }
}

void coherence_hub::process_read(cycle_t now, const mem::mem_request& request)
{
    const addr_t block = block_of(request.addr);
    dir_entry* existing = dir_.find(block);
    if ((existing != nullptr && existing->busy()) || txn_free_.empty()) {
        // Transactions serialise per block; wait for the one in flight.
        counters_.inc(h_busy_retries_);
        reqs_.push(now + 1, request);
        return;
    }
    counters_.inc(request.exclusive ? h_rfos_ : h_reads_);

    dir_entry& e = dir_.get_or_create(block);
    const std::uint32_t me = 1u << request.core;
    const std::int32_t slot = allocate_txn();
    txn& t = txns_[std::size_t(slot)];
    t.block = block;
    t.requester = request.core;
    t.up_id = request.id;
    t.up_addr = request.addr;
    t.rfo = request.exclusive;
    e.txn = slot;

    if (request.exclusive) {
        const bool upgrade = (e.sharers & me) != 0;
        if (upgrade)
            counters_.inc(h_upgrades_);
        if (e.state == dir_state::exclusive_modified &&
            e.owner != request.core) {
            // Recall the owner; the (possibly dirty) line migrates
            // cache-to-cache without touching the shared level.
            send_snoop(now, slot, e.owner, /*invalidate=*/true);
            t.data_pending = true;
        } else {
            for (unsigned j = 0; j < config_.cores; ++j)
                if (j != request.core && (e.sharers & (1u << j)) != 0)
                    send_snoop(now, slot, mem::core_id_t(j),
                               /*invalidate=*/true);
            if (!upgrade)
                fetch_below(now, slot);
        }
        if (e.state == dir_state::exclusive_modified &&
            e.owner == request.core)
            counters_.inc(h_owner_rerequests_);
    } else {
        switch (e.state) {
        case dir_state::invalid:
        case dir_state::shared:
            // Data lives in (or below) the shared level.
            fetch_below(now, slot);
            break;
        case dir_state::exclusive_modified:
            if (e.owner == request.core) {
                // Stale self-request (ownership raced an eviction
                // notification): re-grant from the directory itself.
                counters_.inc(h_owner_rerequests_);
            } else {
                // Owner downgrades to S; modified data flushes to the
                // shared level and the line forwards cache-to-cache.
                send_snoop(now, slot, e.owner, /*invalidate=*/false);
                t.data_pending = true;
            }
            break;
        }
    }
    e.sharers |= me;
    dir_.touch();
    maybe_finish(now, slot);
}

void coherence_hub::process_writeback(cycle_t now,
                                      const mem::mem_request& request)
{
    const addr_t block = block_of(request.addr);
    counters_.inc(h_writebacks_in_);
    for (std::size_t i = 0; i < wb_in_transit_.size(); ++i) {
        if (wb_in_transit_[i].first == request.core &&
            wb_in_transit_[i].second == block) {
            wb_in_transit_[i] = wb_in_transit_.back();
            wb_in_transit_.pop_back();
            break;
        }
    }

    if (dir_entry* e = dir_.find(block)) {
        // An eviction notification can trail the same core's re-fetch of
        // the block (upgrade raced a capacity eviction; the fill is in -
        // or has landed from - the MSHR). The copy the directory tracks
        // is then the new one: the sharer bit must survive, or the entry
        // would vanish under a live (possibly E/M) cached line. The
        // mirror ordering - re-request arriving while the directory still
        // shows ownership - is the stale-self-request path in
        // process_read().
        const bool still_backed =
            l1s_[request.core] != nullptr &&
            l1s_[request.core]->holds_or_in_flight(block);
        if (!still_backed) {
            e->sharers &= ~(1u << request.core);
            if (e->owner == request.core) {
                e->owner = mem::no_core;
                if (e->state == dir_state::exclusive_modified)
                    e->state = e->sharers == 0 ? dir_state::invalid
                                               : dir_state::shared;
            }
            if (e->sharers == 0 && !e->busy())
                e->state = dir_state::invalid;
        }
        dir_.touch();
        if (e->busy()) {
            // The requester of the in-flight transaction just evicted its
            // own copy (upgrade raced a capacity eviction): the data it
            // assumed local is gone, so fetch it from the shared level.
            txn& t = txns_[std::size_t(e->txn)];
            if (t.requester == request.core && t.rfo && !t.peer_data &&
                !t.data_pending && !t.waiting_below) {
                counters_.inc(h_race_fallbacks_);
                fetch_below(now, e->txn);
            }
        } else {
            dir_.release_if_idle(*e);
        }
    }

    if (request.dirty || config_.forward_clean_victims)
        push_writeback_below(now, block, request.dirty, request.core);
}

void coherence_hub::process_snoops(cycle_t now)
{
    while (auto msg = snoops_.pop_ready(now)) {
        mem::conventional_cache* l1 = l1s_[msg->core];
        const mem::snoop_result result =
            msg->invalidate ? l1->snoop_invalidate(msg->block)
                            : l1->snoop_downgrade(msg->block);
        if (result == mem::snoop_result::retry) {
            counters_.inc(h_snoop_retries_);
            snoops_.push(now + 1, *msg);
            continue;
        }

        txn& t = txns_[std::size_t(msg->txn)];
        dir_entry* e = dir_.find(t.block);
        // A transaction sends at most one data-sourcing snoop (the EM
        // recall/downgrade), and sends it alone - so if one is pending,
        // this is it.
        const bool data_source = t.data_pending;
        if (msg->invalidate) {
            e->sharers &= ~(1u << msg->core);
            if (e->owner == msg->core) {
                // Mirror process_writeback: an EM entry never carries
                // owner = no_core, even transiently (check_invariants
                // asserts the shape on every paranoid tick).
                e->owner = mem::no_core;
                if (e->state == dir_state::exclusive_modified)
                    e->state = e->sharers == 0 ? dir_state::invalid
                                               : dir_state::shared;
            }
            if (result != mem::snoop_result::not_present && data_source) {
                t.peer_data = true;
                t.peer_dirty = result == mem::snoop_result::applied_dirty;
            }
        } else {
            // Downgrade: the owner keeps a Shared copy; modified data
            // flushes into the shared level so every copy is clean.
            if (e->owner == msg->core)
                e->owner = mem::no_core;
            if (e->state == dir_state::exclusive_modified)
                e->state = dir_state::shared;
            if (result != mem::snoop_result::not_present) {
                if (result == mem::snoop_result::applied_dirty)
                    push_writeback_below(now, t.block, true, msg->core);
                t.peer_data = true;
            } else {
                // The owner evicted the line; its writeback already left
                // (or is about to leave) for the shared level.
                e->sharers &= ~(1u << msg->core);
            }
        }
        dir_.touch();
        if (data_source) {
            t.data_pending = false;
            if (!t.peer_data && !t.waiting_below) {
                // Race: the copy we counted on vanished. The data is in
                // (or en route to) the shared level - fetch it there.
                counters_.inc(h_race_fallbacks_);
                fetch_below(now, msg->txn);
            }
        }
        --t.pending_snoops;
        maybe_finish(now, msg->txn);
    }
}

void coherence_hub::process_below_responses(cycle_t now)
{
    while (auto response = below_resp_.pop_ready(now)) {
        txn* t = txn_by_down_id(response->id);
        if (t == nullptr) {
            counters_.inc(h_untracked_below_);
            continue;
        }
        t->waiting_below = false;
        t->below_served_by = response->served_by;
        t->below_fabric_level = response->fabric_level;
        t->below_dirty = response->dirty;
        maybe_finish(now, std::int32_t(t - txns_.data()));
    }
}

void coherence_hub::maybe_finish(cycle_t now, std::int32_t slot)
{
    txn& t = txns_[std::size_t(slot)];
    if (!t.live || t.pending_snoops != 0 || t.waiting_below)
        return;

    dir_entry* e = dir_.find(t.block);
    const std::uint32_t me = 1u << t.requester;
    e->sharers |= me;
    const bool exclusive = t.rfo || e->sharers == me;
    e->state = exclusive ? dir_state::exclusive_modified : dir_state::shared;
    e->owner = exclusive ? t.requester : mem::no_core;
    e->txn = -1;
    dir_.touch();

    mem::mem_response r;
    r.id = t.up_id;
    r.addr = t.up_addr;
    r.ready_at =
        now + (t.peer_data ? config_.c2c_latency : config_.response_latency);
    if (t.peer_data) {
        counters_.inc(h_c2c_);
        if (t.peer_dirty)
            counters_.inc(h_c2c_dirty_);
        r.served_by = mem::service_level::peer_l1;
    } else if (t.below_served_by != mem::service_level::none) {
        r.served_by = t.below_served_by;
        r.fabric_level = t.below_fabric_level;
    } else {
        // Pure upgrade: the data never moved - it was already local.
        r.served_by = mem::service_level::l1;
    }
    r.dirty = t.peer_dirty || t.below_dirty;
    r.exclusive = exclusive;
    r.core = t.requester;
    l1s_[t.requester]->respond(r);

    t = txn{};
    txn_free_.push_back(slot);
    --in_flight_;
}

void coherence_hub::check_invariants() const
{
    const auto fail = [](const std::string& what) {
        throw coherence_error("coherence invariant violated: " + what);
    };

    dir_.for_each([&](const dir_entry& e) {
        if (e.state == dir_state::exclusive_modified) {
            if (e.owner == mem::no_core || e.owner >= config_.cores)
                fail("EM entry without a valid owner");
            if (!e.busy() && e.sharers != (1u << e.owner))
                fail("EM entry whose sharer mask is not exactly the owner");
            if ((e.sharers & (1u << e.owner)) == 0)
                fail("EM owner missing from its own sharer mask");
        }
        if (e.state == dir_state::shared) {
            if (e.owner != mem::no_core)
                fail("Shared entry with an owner");
            if (!e.busy() && e.sharers == 0)
                fail("Shared entry with an empty mask");
        }
        if (e.state == dir_state::invalid && !e.busy())
            fail("idle invalid entry not released");

        unsigned exclusive_copies = 0;
        for (unsigned i = 0; i < config_.cores; ++i) {
            if (l1s_[i] != nullptr && l1s_[i]->tags().is_exclusive(e.block))
                ++exclusive_copies;
            if ((e.sharers & (1u << i)) == 0)
                continue;
            bool backed =
                l1s_[i] != nullptr && l1s_[i]->holds_or_in_flight(e.block);
            if (!backed)
                for (const auto& [core, block] : wb_in_transit_)
                    if (core == i && block == e.block) {
                        backed = true;
                        break;
                    }
            if (!backed)
                fail("sharer bit set for a core that holds nothing");
        }
        if (exclusive_copies > 1)
            fail("more than one L1 holds the block with E/M permission");
    });


    // Reverse containment: no L1 caches a block the directory ignores.
    for (unsigned i = 0; i < config_.cores; ++i) {
        if (l1s_[i] == nullptr)
            continue;
        const mem::tag_array& tags = l1s_[i]->tags();
        for (std::uint32_t set = 0; set < tags.sets(); ++set) {
            for (std::uint32_t way = 0; way < tags.ways(); ++way) {
                const mem::cache_line& line = tags.line(set, way);
                if (!line.valid)
                    continue;
                const dir_entry* e = dir_.find(block_of(line.tag));
                if (e == nullptr || (e->sharers & (1u << i)) == 0)
                    fail("L1 caches a block with no directory sharer bit");
            }
        }
    }
}

void coherence_hub::save_state(ckpt::writer& w) const
{
    if (!quiescent())
        throw ckpt::ckpt_error(
            "coherence_hub: checkpoint requested while transactions are live");
    ckpt::saver ar(w);
    const_cast<coherence_hub*>(this)->serialize(ar);
}

void coherence_hub::load_state(ckpt::reader& r)
{
    ckpt::loader ar(r);
    serialize(ar);
}

} // namespace lnuca::coh
