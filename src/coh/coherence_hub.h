// CMP coherence hub: MESI over the shared L-NUCA/L2 fabric.
//
// Sits between the N private L1 data caches and whatever shared level the
// hierarchy uses (conventional L2 behind the bus, the L-NUCA fabric, or a
// D-NUCA array). Every L1 points its downstream at the hub; the hub owns
// the inclusive directory (src/coh/directory.h) and turns each L1 miss
// into the MESI transaction it requires:
//
//   read,  dir I   -> fetch below, grant E (sole copy)
//   read,  dir S   -> fetch below (data lives in the shared level), add
//                     the requester to the sharer mask, grant S
//   read,  dir EM  -> downgrade the owner (M data flushes to the shared
//                     level), cache-to-cache forward, both end S
//   RFO,   dir I   -> fetch below, grant M-capable E
//   RFO,   dir S   -> invalidate every other sharer (upgrade: no data
//                     moves; otherwise fetch below in parallel)
//   RFO,   dir EM  -> invalidate the owner, cache-to-cache forward the
//                     (possibly dirty) line - dirty data migrates without
//                     touching the shared level
//   writeback      -> drop the sharer bit / ownership; dirty data (and,
//                     for victim-style fabrics, clean victims too) forward
//                     into the shared level
//
// Invalidation/downgrade messages ride the same request/response paths the
// single-core hierarchy uses: each hop costs the configured latencies, and
// a snoop that lands while the target's fill or eviction is still in
// flight is re-delivered the next cycle (mem::snoop_result::retry).
// Transactions serialise per block through the directory's busy latch.
//
// Hot-path contract: all queues are pre-sized, the directory and the
// transaction table are fixed slabs - an executed cycle allocates nothing
// (bench/micro_hotpath.cpp gates this for the cmp presets).
#pragma once

#include "src/coh/directory.h"
#include "src/common/ring_queue.h"
#include "src/common/stats.h"
#include "src/mem/cache.h"
#include "src/mem/request.h"
#include "src/sim/ticked.h"
#include "src/sim/timed_queue.h"

#include <stdexcept>
#include <vector>

namespace lnuca::coh {

struct coherence_config {
    unsigned cores = 2;
    std::uint32_t block_bytes = 32; ///< coherence granule = L1 block
    std::uint32_t request_latency = 2;  ///< L1 -> hub (arbitration + hop)
    std::uint32_t response_latency = 2; ///< hub -> L1 data/ack return
    std::uint32_t snoop_latency = 2;    ///< hub -> peer L1 inv/downgrade
    std::uint32_t c2c_latency = 4;      ///< owner L1 -> requester transfer
    /// Forward clean victims into the shared level. True for victim-style
    /// fabrics (L-NUCA: evictions are its fill path), false when the
    /// shared level refills from below on its own (conventional L2).
    bool forward_clean_victims = false;
    /// Directory slots. 0: sized by the hub from the L1s' reach
    /// (lines + MSHRs per core, doubled) so it can never overflow.
    std::uint32_t directory_entries = 0;
    std::uint64_t seed = 0xc0;
};

/// Thrown by check_invariants() (tests, paranoid engine mode).
class coherence_error : public std::logic_error {
public:
    using std::logic_error::logic_error;
};

class coherence_hub final : public sim::ticked,
                            public mem::mem_port,
                            public mem::mem_client {
public:
    coherence_hub(const coherence_config& config, mem::txn_id_source& ids);

    /// Wire core i's private L1 (i < config.cores, in order).
    void attach_l1(mem::core_id_t core, mem::conventional_cache* l1);
    void set_downstream(mem::mem_port* port) { downstream_ = port; }

    // mem_port (L1 side)
    bool can_accept(const mem::mem_request& request) const override;
    void accept(const mem::mem_request& request) override;
    /// Functional twin of the MESI transaction machinery for the sampled
    /// fast-forward path: applies the same directory transitions and the
    /// same remote-copy invalidations/downgrades synchronously (the warm
    /// contract guarantees a quiescent machine, so snoops cannot race or
    /// retry), then falls through to the shared backend's warm_access.
    /// Returns the E/M grant and migrated dirtiness exactly like the
    /// detailed response fields the L1's refill path reads. See DESIGN.md,
    /// "Sampling and statistical confidence" for the transition table.
    mem::warm_result warm_access(const mem::warm_request& request) override;

    // mem_client (shared-level side)
    void respond(const mem::mem_response& response) override;

    // ticked
    void tick(cycle_t now) override;
    cycle_t next_event(cycle_t now) const override;
    std::uint64_t state_digest() const override;

    const coherence_config& config() const { return config_; }
    const counter_set& counters() const { return counters_; }
    const directory& dir() const { return dir_; }
    bool quiescent() const;

    /// Assert every tick (after processing) when enabled - the paranoid
    /// engine preset turns this on (hier::system).
    void set_paranoid(bool on) { paranoid_ = on; }

    /// Directory invariants: at most one M/E owner per block, EM implies a
    /// singleton sharer mask matching the owner, and every sharer bit is
    /// backed by the L1's tags or its in-flight fill/eviction machinery
    /// (and vice versa: no L1 caches a block the directory does not know).
    /// Throws coherence_error naming the violation.
    void check_invariants() const;

    /// Checkpoint hooks (quiescent-only; hier::system owns the section).
    void save_state(ckpt::writer& w) const override;
    void load_state(ckpt::reader& r) override;

    /// Persistent-at-quiescence state: the directory, stats and the
    /// transaction-slot free stack (its order decides future slot
    /// allocation). The txn slab, queues and in-transit writeback list are
    /// empty by the quiesce contract.
    template <class Ar> void serialize(Ar& ar)
    {
        dir_.serialize(ar);
        ar.counters(counters_);
        std::uint64_t free_count = txn_free_.size();
        ar(free_count);
        txn_free_.resize(std::size_t(free_count));
        for (std::int32_t& slot : txn_free_) {
            std::uint32_t bits = std::uint32_t(slot);
            ar(bits);
            slot = std::int32_t(bits);
        }
    }

private:
    struct txn {
        bool live = false;
        addr_t block = no_addr;
        mem::core_id_t requester = 0;
        txn_id_t up_id = 0;   ///< requester L1's miss id (response routing)
        addr_t up_addr = no_addr;
        bool rfo = false;
        unsigned pending_snoops = 0;
        /// A recall/downgrade snoop is the transaction's data source and
        /// has not resolved yet (at most one such snoop per transaction).
        bool data_pending = false;
        bool waiting_below = false;
        txn_id_t down_id = 0; ///< our fetch id at the shared level
        bool peer_data = false;  ///< data arrives cache-to-cache
        bool peer_dirty = false; ///< forwarded line carries modified data
        mem::service_level below_served_by = mem::service_level::none;
        std::uint8_t below_fabric_level = 0;
        bool below_dirty = false;
    };

    struct snoop_msg {
        mem::core_id_t core = 0;
        addr_t block = no_addr;
        bool invalidate = false; ///< false: downgrade (read sharing)
        std::int32_t txn = -1;
    };

    void process_below_responses(cycle_t now);
    void process_snoops(cycle_t now);
    void process_requests(cycle_t now);
    void process_read(cycle_t now, const mem::mem_request& request);
    void process_writeback(cycle_t now, const mem::mem_request& request);
    void drain_downstream(cycle_t now);

    std::int32_t allocate_txn();
    txn* txn_by_down_id(txn_id_t id);
    void send_snoop(cycle_t now, std::int32_t slot, mem::core_id_t core,
                    bool invalidate);
    void fetch_below(cycle_t now, std::int32_t slot);
    void maybe_finish(cycle_t now, std::int32_t slot);
    void push_writeback_below(cycle_t now, addr_t block, bool dirty,
                              mem::core_id_t core);
    addr_t block_of(addr_t addr) const
    {
        return addr & ~addr_t(config_.block_bytes - 1);
    }

    coherence_config config_;
    mem::txn_id_source& ids_;
    directory dir_;
    std::vector<mem::conventional_cache*> l1s_;
    mem::mem_port* downstream_ = nullptr;

    std::vector<txn> txns_; ///< fixed slab
    std::vector<std::int32_t> txn_free_;
    sim::timed_queue<mem::mem_request> reqs_;
    sim::timed_queue<snoop_msg> snoops_;
    sim::timed_queue<mem::mem_response> below_resp_;
    ring_queue<mem::mem_request> down_pending_; ///< awaiting downstream space
    /// Writebacks accepted but not yet processed: the invariant checker
    /// must treat their sharers as still backed (the copy left the L1 but
    /// its notification is in flight).
    std::vector<std::pair<mem::core_id_t, addr_t>> wb_in_transit_;

    counter_set counters_;
    counter_set::handle h_reads_ = 0;
    counter_set::handle h_rfos_ = 0;
    counter_set::handle h_upgrades_ = 0;
    counter_set::handle h_writebacks_in_ = 0;
    counter_set::handle h_inv_sent_ = 0;
    counter_set::handle h_downgrades_sent_ = 0;
    counter_set::handle h_snoop_retries_ = 0;
    counter_set::handle h_c2c_ = 0;
    counter_set::handle h_c2c_dirty_ = 0;
    counter_set::handle h_fetches_below_ = 0;
    counter_set::handle h_writebacks_below_ = 0;
    counter_set::handle h_busy_retries_ = 0;
    counter_set::handle h_owner_rerequests_ = 0;
    counter_set::handle h_race_fallbacks_ = 0;
    counter_set::handle h_untracked_below_ = 0;

    bool paranoid_ = false;
    std::uint32_t in_flight_ = 0; ///< live transactions
};

} // namespace lnuca::coh
