// MESI directory for the CMP coherence hub (src/coh/coherence_hub.h).
//
// One entry per block cached by any private L1: a sharer bitmask, the
// owner when the block is held exclusively, and a busy latch while a
// coherence transaction for the block is in flight. Conceptually the
// entry rides in the shared level's tags (sharer bits + owner id widen
// each tag; see DESIGN.md, "Coherence and the shared fabric"); the
// simulator keeps it in a dedicated structure so the same directory
// serves the conventional-L2, L-NUCA and D-NUCA shared backends without
// touching three tag pipelines.
//
// Storage follows the mem::mshr_file recipe: a fixed slab recycled
// through a free stack plus an open-addressed block index with
// backward-shift deletion - sized once at construction, never allocating
// afterwards (the executed-cycle zero-allocation gate covers the hub).
#pragma once

#include "src/common/rng.h"
#include "src/common/types.h"
#include "src/mem/request.h"

#include <cstdint>
#include <stdexcept>
#include <vector>

namespace lnuca::coh {

/// Directory-visible line state. E and M collapse into one state
/// (`exclusive_modified`): the owner upgrades E to M silently, which the
/// directory cannot observe - the classic EM encoding.
enum class dir_state : std::uint8_t {
    invalid,           ///< entry exists only while a transaction is in flight
    shared,            ///< >= 1 clean copies, no write permission anywhere
    exclusive_modified ///< exactly one copy, owner may have dirtied it
};

struct dir_entry {
    addr_t block = no_addr;
    std::uint32_t sharers = 0; ///< bit i: core i's L1 holds (or is fetching)
    mem::core_id_t owner = mem::no_core; ///< valid in exclusive_modified
    dir_state state = dir_state::invalid;
    std::int32_t txn = -1; ///< in-flight transaction slot; -1 = not busy
    bool live = false;

    bool busy() const { return txn >= 0; }

    template <class Ar> void serialize(Ar& ar)
    {
        ar(block);
        ar(sharers);
        ar(owner);
        ar(state);
        std::uint32_t txn_bits = std::uint32_t(txn);
        ar(txn_bits);
        txn = std::int32_t(txn_bits);
        ar(live);
    }
};

class directory {
public:
    explicit directory(std::uint32_t capacity) : capacity_(capacity)
    {
        std::uint64_t buckets = 16;
        while (buckets < 2 * std::uint64_t(capacity))
            buckets *= 2;
        slab_.assign(capacity, dir_entry{});
        table_.assign(std::size_t(buckets), 0);
        free_.reserve(capacity);
        for (std::uint32_t slot = capacity; slot-- > 0;)
            free_.push_back(slot);
    }

    dir_entry* find(addr_t block)
    {
        const std::int32_t slot = find_slot(block);
        return slot < 0 ? nullptr : &slab_[std::size_t(slot)];
    }

    const dir_entry* find(addr_t block) const
    {
        const std::int32_t slot = find_slot(block);
        return slot < 0 ? nullptr : &slab_[std::size_t(slot)];
    }

    /// Entry for `block`, creating an invalid one if absent. The capacity
    /// is sized from the L1s' reach (coherence_hub), so exhaustion is a
    /// logic error, not an operating condition.
    dir_entry& get_or_create(addr_t block)
    {
        if (dir_entry* e = find(block))
            return *e;
        if (free_.empty())
            throw std::logic_error("coh::directory capacity exhausted");
        const std::uint32_t slot = free_.back();
        free_.pop_back();
        dir_entry& e = slab_[slot];
        e = dir_entry{};
        e.block = block;
        e.live = true;
        index_insert(block, slot);
        ++version_;
        return e;
    }

    /// Free an entry that tracks no sharer and no transaction.
    void release_if_idle(dir_entry& e)
    {
        if (!e.live || e.busy() || e.sharers != 0)
            return;
        index_erase(e.block);
        free_.push_back(std::uint32_t(&e - slab_.data()));
        e = dir_entry{};
        ++version_;
    }

    /// Bump on every mutation a caller performs in place (state/sharer
    /// edits); folded into the hub's state_digest so paranoid mode sees
    /// directory changes without hashing the whole slab.
    void touch() { ++version_; }
    std::uint64_t version() const { return version_; }

    std::size_t in_use() const { return slab_.size() - free_.size(); }
    std::uint32_t capacity() const { return capacity_; }

    /// Iterate live entries (invariant checker, tests).
    template <typename F> void for_each(F&& f) const
    {
        for (const dir_entry& e : slab_)
            if (e.live)
                f(e);
    }

    /// Checkpoint support. The slab, free stack and probe table all
    /// round-trip verbatim so slot recycling (and thus every later
    /// allocation decision) continues exactly as the uninterrupted run's.
    template <class Ar> void serialize(Ar& ar)
    {
        ar(slab_);
        ar(free_);
        ar(table_);
        ar(version_);
    }

private:
    std::size_t home_bucket(addr_t block) const
    {
        return std::size_t(hash64(block)) & (table_.size() - 1);
    }

    std::int32_t find_slot(addr_t block) const
    {
        const std::size_t mask = table_.size() - 1;
        std::size_t b = home_bucket(block);
        while (table_[b] != 0) {
            const std::uint32_t slot = table_[b] - 1;
            if (slab_[slot].block == block)
                return std::int32_t(slot);
            b = (b + 1) & mask;
        }
        return -1;
    }

    void index_insert(addr_t block, std::uint32_t slot)
    {
        const std::size_t mask = table_.size() - 1;
        std::size_t b = home_bucket(block);
        while (table_[b] != 0)
            b = (b + 1) & mask;
        table_[b] = slot + 1;
    }

    void index_erase(addr_t block)
    {
        const std::size_t mask = table_.size() - 1;
        std::size_t i = home_bucket(block);
        while (table_[i] != 0 && slab_[table_[i] - 1].block != block)
            i = (i + 1) & mask;
        if (table_[i] == 0)
            return;
        // Linear-probe backward shift (no tombstones); see mem::mshr_file.
        table_[i] = 0;
        std::size_t j = i;
        for (;;) {
            j = (j + 1) & mask;
            if (table_[j] == 0)
                return;
            const std::size_t home = home_bucket(slab_[table_[j] - 1].block);
            const bool cyclically_between =
                i <= j ? (i < home && home <= j) : (i < home || home <= j);
            if (!cyclically_between) {
                table_[i] = table_[j];
                table_[j] = 0;
                i = j;
            }
        }
    }

    std::uint32_t capacity_;
    std::vector<dir_entry> slab_;
    std::vector<std::uint32_t> free_; ///< free slot stack
    std::vector<std::uint32_t> table_; ///< slot + 1, 0 = empty
    std::uint64_t version_ = 0;
};

} // namespace lnuca::coh
