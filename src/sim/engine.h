// Deterministic cycle engine.
//
// Timing contract: components are ticked in registration order. All
// inter-component hand-offs use explicit ready cycles (timed_queue) and a
// consumer only observes items stamped <= the current cycle, so a producer
// that ticks *before* its consumer can deliver in the same cycle while the
// reverse direction always lands one cycle later. Hierarchies therefore
// register top-down: core, L1/r-tile, L2/fabric, L3/D-NUCA, memory.
#pragma once

#include "src/common/types.h"
#include "src/sim/ticked.h"

#include <functional>
#include <vector>

namespace lnuca::sim {

class engine {
public:
    /// Register a component. Non-owning; the component must outlive the engine.
    void add(ticked& component) { components_.push_back(&component); }

    cycle_t now() const { return now_; }

    /// Run exactly `cycles` cycles.
    void run(cycle_t cycles);

    /// Run until `done()` returns true or `max_cycles` elapse.
    /// Returns true when the predicate fired (false: cycle budget exhausted).
    bool run_until(const std::function<bool()>& done, cycle_t max_cycles);

private:
    void step();

    std::vector<ticked*> components_;
    cycle_t now_ = 0;
};

} // namespace lnuca::sim
