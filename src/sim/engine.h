// Deterministic cycle engine with optional idle-skip scheduling.
//
// Timing contract: components are ticked in registration order. All
// inter-component hand-offs use explicit ready cycles (timed_queue) and a
// consumer only observes items stamped <= the current cycle, so a producer
// that ticks *before* its consumer can deliver in the same cycle while the
// reverse direction always lands one cycle later. Hierarchies therefore
// register top-down: core, L1/r-tile, L2/fabric, L3/D-NUCA, memory.
//
// Scheduling modes:
//   dense      tick every component every cycle (the reference semantics).
//   idle_skip  before each cycle, take the minimum of every component's
//              next_event() lower bound; when it lies in the future, jump
//              now_ over the provably idle gap without ticking anyone. On a
//              cycle that does execute, *all* components tick in
//              registration order, so the timing contract is untouched -
//              idle-skip only removes cycles in which every tick would have
//              been a no-op. Bit-identical to dense by construction
//              (enforced by tests/hier_test.cpp across all presets).
//   paranoid   dense stepping that cross-checks the skip schedule: on every
//              cycle idle_skip would have jumped over, assert that no
//              component's state_digest() changes across the tick. A
//              dishonest next_event() throws engine_paranoia_error naming
//              the offending component. Slow; for tests and CI sanitizer
//              runs.
#pragma once

#include "src/common/types.h"
#include "src/sim/ticked.h"

#include <functional>
#include <stdexcept>
#include <vector>

namespace lnuca::sim {

enum class schedule_mode : std::uint8_t { dense, idle_skip, paranoid };

/// Thrown by paranoid mode when a component acted on a cycle its
/// next_event() claimed was idle.
class engine_paranoia_error : public std::logic_error {
public:
    using std::logic_error::logic_error;
};

class engine {
public:
    /// Register a component. Non-owning; the component must outlive the engine.
    void add(ticked& component) { components_.push_back(&component); }

    void set_mode(schedule_mode mode) { mode_ = mode; }
    schedule_mode mode() const { return mode_; }

    cycle_t now() const { return now_; }

    /// Cycles jumped over without ticking (idle_skip) or provably skippable
    /// (paranoid); 0 under dense. Diagnostics/benchmark instrumentation.
    cycle_t cycles_skipped() const { return skipped_; }

    /// Cycles on which components were actually ticked.
    cycle_t cycles_executed() const { return executed_; }

    /// Cycles jumped by functional fast-forward (sampled simulation).
    cycle_t cycles_fast_forwarded() const { return fast_forwarded_; }

    /// Jump the clock `cycles` forward without ticking anyone. Only valid
    /// while every component is quiescent (no pending timed events): the
    /// sampled driver drains the system before fast-forwarding, so there is
    /// no event in (now, now + cycles) to miss. Overdue schedule anchors
    /// (port-free times, stall windows) are in the past either way and mean
    /// "free now", so jumping past them is safe.
    void advance(cycle_t cycles)
    {
        now_ += cycles;
        fast_forwarded_ += cycles;
    }

    /// Run exactly `cycles` cycles.
    void run(cycle_t cycles);

    /// Run until `done()` returns true or `max_cycles` elapse.
    /// Returns true when the predicate fired (false: cycle budget exhausted).
    /// The predicate must be a pure function of component state: under
    /// idle-skip it is re-evaluated at event boundaries only, which is
    /// equivalent to per-cycle evaluation exactly because state cannot
    /// change on a skipped cycle.
    bool run_until(const std::function<bool()>& done, cycle_t max_cycles);

    /// Minimum of every component's next_event() bound, clamped to >= now()
    /// (an overdue event means "act immediately"). no_cycle when no
    /// component will ever act again without external input.
    cycle_t horizon() const;

    /// Checkpoint support: the clock and its attribution counters are the
    /// engine's entire persistent state (the component list is topology,
    /// rebuilt from config on restore). Restoring now_ absolutely means
    /// every schedule anchor (port-free cycles, wire-free times) restores
    /// as-is too.
    template <class Ar> void serialize(Ar& ar)
    {
        ar(now_);
        ar(skipped_);
        ar(executed_);
        ar(fast_forwarded_);
    }

private:
    void step();
    void paranoid_step();

    std::vector<ticked*> components_;
    cycle_t now_ = 0;
    cycle_t skipped_ = 0;
    cycle_t executed_ = 0;
    cycle_t fast_forwarded_ = 0;
    schedule_mode mode_ = schedule_mode::dense;
};

} // namespace lnuca::sim
