// Priority queue of items that become visible at a future cycle.
//
// This is the standard hand-off primitive between ticked components: the
// producer pushes with an explicit ready cycle, the consumer pops everything
// whose time has come during its own tick. Ties preserve push order so the
// simulation stays deterministic.
#pragma once

#include "src/common/types.h"

#include <cstdint>
#include <optional>
#include <queue>
#include <vector>

namespace lnuca::sim {

template <typename T>
class timed_queue {
public:
    void push(cycle_t ready_at, T item)
    {
        heap_.push(entry{ready_at, seq_++, std::move(item)});
    }

    /// Pop the oldest item with ready_at <= now, if any.
    std::optional<T> pop_ready(cycle_t now)
    {
        if (heap_.empty() || heap_.top().ready_at > now)
            return std::nullopt;
        T item = std::move(const_cast<entry&>(heap_.top()).item);
        heap_.pop();
        return item;
    }

    /// Cycle of the earliest pending item (no_cycle when empty).
    cycle_t next_ready() const
    {
        return heap_.empty() ? no_cycle : heap_.top().ready_at;
    }

    bool empty() const { return heap_.empty(); }
    std::size_t size() const { return heap_.size(); }

private:
    struct entry {
        cycle_t ready_at;
        std::uint64_t seq;
        T item;

        bool operator>(const entry& other) const
        {
            if (ready_at != other.ready_at)
                return ready_at > other.ready_at;
            return seq > other.seq;
        }
    };

    std::priority_queue<entry, std::vector<entry>, std::greater<>> heap_;
    std::uint64_t seq_ = 0;
};

} // namespace lnuca::sim
