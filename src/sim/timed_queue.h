// Priority queue of items that become visible at a future cycle.
//
// This is the standard hand-off primitive between ticked components: the
// producer pushes with an explicit ready cycle, the consumer pops everything
// whose time has come during its own tick. Ties preserve push order so the
// simulation stays deterministic.
//
// Implemented as an owned binary min-heap rather than std::priority_queue:
// popping moves the item out of the heap directly (std::priority_queue only
// exposes a const top(), forcing a const_cast to move from it), reserve()
// pre-sizes the backing store, and the (ready_at, seq) ordering is explicit
// in one comparison function.
#pragma once

#include "src/common/types.h"

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

namespace lnuca::sim {

template <typename T>
class timed_queue {
public:
    void push(cycle_t ready_at, T item)
    {
        heap_.push_back(entry{ready_at, seq_++, std::move(item)});
        sift_up(heap_.size() - 1);
    }

    /// Pop the oldest item with ready_at <= now, if any.
    std::optional<T> pop_ready(cycle_t now)
    {
        if (heap_.empty() || heap_.front().ready_at > now)
            return std::nullopt;
        T item = std::move(heap_.front().item);
        if (heap_.size() > 1) {
            heap_.front() = std::move(heap_.back());
            heap_.pop_back();
            sift_down(0);
        } else {
            heap_.pop_back();
        }
        return item;
    }

    /// Cycle of the earliest pending item (no_cycle when empty).
    cycle_t next_ready() const
    {
        return heap_.empty() ? no_cycle : heap_.front().ready_at;
    }

    bool empty() const { return heap_.empty(); }
    std::size_t size() const { return heap_.size(); }
    void reserve(std::size_t n) { heap_.reserve(n); }

private:
    struct entry {
        cycle_t ready_at;
        std::uint64_t seq;
        T item;
    };

    /// Strict weak order: earlier ready cycle first, push order on ties.
    static bool before(const entry& a, const entry& b)
    {
        if (a.ready_at != b.ready_at)
            return a.ready_at < b.ready_at;
        return a.seq < b.seq;
    }

    void sift_up(std::size_t i)
    {
        while (i > 0) {
            const std::size_t parent = (i - 1) / 2;
            if (!before(heap_[i], heap_[parent]))
                return;
            std::swap(heap_[i], heap_[parent]);
            i = parent;
        }
    }

    void sift_down(std::size_t i)
    {
        const std::size_t n = heap_.size();
        for (;;) {
            std::size_t best = i;
            const std::size_t left = 2 * i + 1;
            const std::size_t right = 2 * i + 2;
            if (left < n && before(heap_[left], heap_[best]))
                best = left;
            if (right < n && before(heap_[right], heap_[best]))
                best = right;
            if (best == i)
                return;
            std::swap(heap_[i], heap_[best]);
            i = best;
        }
    }

    std::vector<entry> heap_;
    std::uint64_t seq_ = 0;
};

} // namespace lnuca::sim
