#include "src/sim/engine.h"

namespace lnuca::sim {

void engine::step()
{
    for (ticked* component : components_)
        component->tick(now_);
    ++now_;
}

void engine::run(cycle_t cycles)
{
    for (cycle_t i = 0; i < cycles; ++i)
        step();
}

bool engine::run_until(const std::function<bool()>& done, cycle_t max_cycles)
{
    for (cycle_t i = 0; i < max_cycles; ++i) {
        if (done())
            return true;
        step();
    }
    return done();
}

} // namespace lnuca::sim
