#include "src/sim/engine.h"

#include <algorithm>
#include <string>

namespace lnuca::sim {

void engine::step()
{
    for (ticked* component : components_)
        component->tick(now_);
    ++now_;
    ++executed_;
}

cycle_t engine::horizon() const
{
    cycle_t h = no_cycle;
    for (const ticked* component : components_) {
        const cycle_t e = component->next_event(now_);
        if (e <= now_)
            return now_; // someone acts this cycle; no bound can be lower
        h = std::min(h, e);
    }
    return h;
}

void engine::paranoid_step()
{
    if (horizon() <= now_) {
        step();
        return;
    }
    // idle_skip would jump this cycle: ticking must be a no-op.
    ++skipped_;
    std::vector<std::uint64_t> before;
    before.reserve(components_.size());
    for (const ticked* component : components_)
        before.push_back(component->state_digest());
    const cycle_t cycle = now_;
    step();
    for (std::size_t i = 0; i < components_.size(); ++i) {
        if (components_[i]->state_digest() != before[i])
            throw engine_paranoia_error(
                "component " + std::to_string(i) + " acted on cycle " +
                std::to_string(cycle) +
                " although its next_event() declared it idle");
    }
}

void engine::run(cycle_t cycles)
{
    const cycle_t target = now_ + cycles;
    switch (mode_) {
    case schedule_mode::dense:
        while (now_ < target)
            step();
        return;
    case schedule_mode::paranoid:
        while (now_ < target)
            paranoid_step();
        return;
    case schedule_mode::idle_skip:
        while (now_ < target) {
            const cycle_t h = horizon();
            if (h > now_) {
                const cycle_t jump = std::min(h, target);
                skipped_ += jump - now_;
                now_ = jump;
                if (now_ >= target)
                    return;
            }
            step();
        }
        return;
    }
}

bool engine::run_until(const std::function<bool()>& done, cycle_t max_cycles)
{
    const cycle_t target = now_ + max_cycles;
    switch (mode_) {
    case schedule_mode::dense:
        while (now_ < target) {
            if (done())
                return true;
            step();
        }
        return done();
    case schedule_mode::paranoid:
        while (now_ < target) {
            if (done())
                return true;
            paranoid_step();
        }
        return done();
    case schedule_mode::idle_skip:
        while (now_ < target) {
            if (done())
                return true;
            const cycle_t h = horizon();
            if (h > now_) {
                // No component state can change before h, so the (pure)
                // predicate keeps its current value across the gap.
                const cycle_t jump = std::min(h, target);
                skipped_ += jump - now_;
                now_ = jump;
                if (now_ >= target)
                    break;
            }
            step();
        }
        return done();
    }
    return done(); // unreachable; silences -Wreturn-type
}

} // namespace lnuca::sim
