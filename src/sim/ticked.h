// Cycle-driven component interface.
//
// The engine advances one processor cycle at a time and calls tick(now) on
// every registered component in registration order. Registration order is
// part of the timing contract: producers that must be visible to consumers
// within the same cycle register earlier (see engine.h).
#pragma once

#include "src/common/types.h"

namespace lnuca::sim {

class ticked {
public:
    virtual ~ticked() = default;

    /// Advance this component by one cycle. `now` is the cycle being executed.
    virtual void tick(cycle_t now) = 0;
};

} // namespace lnuca::sim
