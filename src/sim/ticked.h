// Cycle-driven component interface.
//
// The engine advances one processor cycle at a time and calls tick(now) on
// every registered component in registration order. Registration order is
// part of the timing contract: producers that must be visible to consumers
// within the same cycle register earlier (see engine.h).
//
// Idle-skip scheduling: a component may additionally implement
// next_event(now), a *lower bound* on the earliest cycle at which its tick
// would do anything observable. The engine executes a cycle iff some
// component's bound has been reached, and jumps over the provably idle gap
// otherwise. Returning `now` means "I may act this very cycle - never skip
// me" (the dense default); returning no_cycle means "nothing will ever
// happen until someone pushes new work into me". The bound must be
// conservative: waking a component early is harmless (its tick is a no-op,
// exactly as it would be under dense stepping), but a bound that overshoots
// a cycle where the component would have acted changes simulated timing.
// See DESIGN.md ("The idle-skip engine") for the full safety argument.
#pragma once

#include "src/common/types.h"

#include <cstdint>

namespace lnuca::ckpt {
class writer;
class reader;
} // namespace lnuca::ckpt

namespace lnuca::sim {

/// Order-independent accumulator for cheap component state digests
/// (paranoid-mode cross-checking; see engine.h). mix() folds a value in
/// position-sensitively, mix_unordered() folds in a set whose iteration
/// order is unspecified (hash maps).
class state_hash {
public:
    void mix(std::uint64_t v)
    {
        h_ ^= v + 0x9e3779b97f4a7c15ULL + (h_ << 6) + (h_ >> 2);
    }

    void mix_unordered(std::uint64_t v) { sum_ += v * 0x2545f4914f6cdd1dULL; }

    std::uint64_t value() const { return h_ ^ sum_; }

private:
    std::uint64_t h_ = 0xcbf29ce484222325ULL;
    std::uint64_t sum_ = 0;
};

class ticked {
public:
    virtual ~ticked() = default;

    /// Advance this component by one cycle. `now` is the cycle being executed.
    virtual void tick(cycle_t now) = 0;

    /// Earliest cycle >= now at which this component's tick may change any
    /// observable state, given its state right now. Default: "this cycle" -
    /// dense behaviour, the component is never skipped.
    virtual cycle_t next_event(cycle_t now) const { return now; }

    /// Cheap summary of observable state, used by the paranoid engine mode
    /// to assert that a tick on a skippable cycle is a no-op. Components
    /// fold in their counters, queue occupancies and schedule horizons -
    /// anything a dishonest next_event() could silently change. Default 0
    /// ("stateless"): such a component is vacuously checkable.
    virtual std::uint64_t state_digest() const { return 0; }

    /// Checkpoint hooks. Called only at quiescence (see src/ckpt/format.h):
    /// in-flight structures are empty by contract, so components persist
    /// only state that survives a drain - tables, counters, schedule
    /// anchors, RNG lanes. Default no-op: a component with no persistent
    /// state needs nothing. Implementations write/read exactly one section.
    virtual void save_state(ckpt::writer&) const {}
    virtual void load_state(ckpt::reader&) {}
};

} // namespace lnuca::sim
