// Branch direction predictors: bimodal, gshare and the McFarling-style
// combined predictor the paper's core uses ("bimodal + gshare, 16 bit").
#pragma once

#include "src/common/types.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace lnuca::cpu {

/// Two-bit saturating counter helpers.
class saturating_counter_table {
public:
    explicit saturating_counter_table(std::size_t entries, std::uint8_t init = 1)
        : table_(entries, init)
    {
    }

    std::size_t size() const { return table_.size(); }

    bool predict(std::size_t index) const { return table_[index] >= 2; }

    void update(std::size_t index, bool taken)
    {
        std::uint8_t& c = table_[index];
        if (taken && c < 3)
            ++c;
        else if (!taken && c > 0)
            --c;
    }

    template <class Ar> void serialize(Ar& ar) { ar(table_); }

private:
    std::vector<std::uint8_t> table_;
};

class branch_predictor {
public:
    virtual ~branch_predictor() = default;

    virtual bool predict(addr_t pc) = 0;
    virtual void update(addr_t pc, bool taken) = 0;
    virtual std::string name() const = 0;
};

/// PC-indexed two-bit counters.
class bimodal_predictor final : public branch_predictor {
public:
    explicit bimodal_predictor(std::size_t entries = 4096) : table_(entries) {}

    bool predict(addr_t pc) override { return table_.predict(index(pc)); }
    void update(addr_t pc, bool taken) override { table_.update(index(pc), taken); }
    std::string name() const override { return "bimodal"; }

    template <class Ar> void serialize(Ar& ar) { ar(table_); }

private:
    std::size_t index(addr_t pc) const { return (pc >> 2) & (table_.size() - 1); }

    saturating_counter_table table_;
};

/// Global-history XOR PC indexed counters.
class gshare_predictor final : public branch_predictor {
public:
    explicit gshare_predictor(unsigned history_bits = 16)
        : history_bits_(history_bits), table_(std::size_t(1) << history_bits)
    {
    }

    bool predict(addr_t pc) override { return table_.predict(index(pc)); }

    void update(addr_t pc, bool taken) override
    {
        table_.update(index(pc), taken);
        history_ = ((history_ << 1) | (taken ? 1 : 0)) &
                   ((std::size_t(1) << history_bits_) - 1);
    }

    std::string name() const override { return "gshare"; }

    template <class Ar> void serialize(Ar& ar)
    {
        std::uint64_t history = history_;
        ar(history);
        history_ = std::size_t(history);
        ar(table_);
    }

private:
    std::size_t index(addr_t pc) const
    {
        return ((pc >> 2) ^ history_) & (table_.size() - 1);
    }

    unsigned history_bits_;
    std::size_t history_ = 0;
    saturating_counter_table table_;
};

/// McFarling combined predictor: a chooser table selects between the
/// bimodal and gshare components per branch.
class combined_predictor final : public branch_predictor {
public:
    combined_predictor(std::size_t bimodal_entries = 4096,
                       unsigned gshare_history_bits = 16,
                       std::size_t chooser_entries = 4096)
        : bimodal_(bimodal_entries),
          gshare_(gshare_history_bits),
          chooser_(chooser_entries)
    {
    }

    bool predict(addr_t pc) override
    {
        const bool use_gshare = chooser_.predict(chooser_index(pc));
        return use_gshare ? gshare_.predict(pc) : bimodal_.predict(pc);
    }

    void update(addr_t pc, bool taken) override
    {
        const bool bimodal_said = bimodal_.predict(pc);
        const bool gshare_said = gshare_.predict(pc);
        if (bimodal_said != gshare_said)
            chooser_.update(chooser_index(pc), gshare_said == taken);
        bimodal_.update(pc, taken);
        gshare_.update(pc, taken);
    }

    std::string name() const override { return "combined"; }

    template <class Ar> void serialize(Ar& ar)
    {
        bimodal_.serialize(ar);
        gshare_.serialize(ar);
        chooser_.serialize(ar);
    }

private:
    std::size_t chooser_index(addr_t pc) const
    {
        return (pc >> 2) & (chooser_.size() - 1);
    }

    bimodal_predictor bimodal_;
    gshare_predictor gshare_;
    saturating_counter_table chooser_;
};

} // namespace lnuca::cpu
