// Data TLB: fully-associative LRU over pages; misses add a fixed page-walk
// latency to the access (Table I: 30 cycles).
#pragma once

#include "src/common/types.h"

#include <cstdint>
#include <vector>

namespace lnuca::cpu {

class tlb {
public:
    tlb(std::size_t entries, std::uint64_t page_bytes)
        : page_bytes_(page_bytes), entries_(entries, no_addr),
          last_use_(entries, 0)
    {
    }

    /// Touch the page containing `addr`; returns true on a TLB hit.
    bool access(addr_t addr)
    {
        const addr_t page = addr / page_bytes_;
        ++stamp_;
        for (std::size_t i = 0; i < entries_.size(); ++i) {
            if (entries_[i] == page) {
                last_use_[i] = stamp_;
                ++hits_;
                return true;
            }
        }
        // Miss: replace the LRU entry.
        std::size_t victim = 0;
        for (std::size_t i = 1; i < entries_.size(); ++i)
            if (last_use_[i] < last_use_[victim])
                victim = i;
        entries_[victim] = page;
        last_use_[victim] = stamp_;
        ++misses_;
        return false;
    }

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }

private:
    std::uint64_t page_bytes_;
    std::vector<addr_t> entries_;
    std::vector<std::uint64_t> last_use_;
    std::uint64_t stamp_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

} // namespace lnuca::cpu
