// Data TLB: fully-associative LRU over pages; misses add a fixed page-walk
// latency to the access (Table I: 30 cycles).
//
// Lookup goes through an open-addressed page index (linear probing,
// backward-shift deletion) instead of scanning the entry array, so the
// common hit costs O(1) - this sits on both the detailed issue path and the
// sampled fast-forward path. Replacement decisions are unchanged: the LRU
// victim scan only runs on a miss.
#pragma once

#include "src/common/rng.h"
#include "src/common/types.h"

#include <cstdint>
#include <vector>

namespace lnuca::cpu {

class tlb {
public:
    tlb(std::size_t entries, std::uint64_t page_bytes)
        : page_bytes_(page_bytes), entries_(entries, no_addr),
          last_use_(entries, 0)
    {
        std::size_t buckets = 8;
        while (buckets < entries * 4)
            buckets <<= 1;
        index_.assign(buckets, 0);
    }

    /// Touch the page containing `addr`; returns true on a TLB hit.
    bool access(addr_t addr)
    {
        const addr_t page = addr / page_bytes_;
        ++stamp_;
        const std::size_t bucket = find_bucket(page);
        if (index_[bucket] != 0) {
            last_use_[index_[bucket] - 1] = stamp_;
            ++hits_;
            return true;
        }
        // Miss: replace the LRU entry.
        std::size_t victim = 0;
        for (std::size_t i = 1; i < entries_.size(); ++i)
            if (last_use_[i] < last_use_[victim])
                victim = i;
        if (entries_[victim] != no_addr)
            erase(entries_[victim]);
        entries_[victim] = page;
        last_use_[victim] = stamp_;
        index_[find_bucket(page)] = std::uint32_t(victim + 1);
        ++misses_;
        return false;
    }

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }

    /// Checkpoint support. The probe index is derivable from entries_, but
    /// round-tripping it keeps the exact probe-cluster layout (and thus
    /// state identical to the uninterrupted run, not merely equivalent).
    template <class Ar> void serialize(Ar& ar)
    {
        ar(entries_);
        ar(last_use_);
        ar(index_);
        ar(stamp_);
        ar(hits_);
        ar(misses_);
    }

private:
    std::size_t mask() const { return index_.size() - 1; }

    /// Bucket holding `page`, or the empty bucket where it would insert.
    std::size_t find_bucket(addr_t page) const
    {
        std::size_t b = std::size_t(hash64(page)) & mask();
        while (index_[b] != 0 && entries_[index_[b] - 1] != page)
            b = (b + 1) & mask();
        return b;
    }

    void erase(addr_t page)
    {
        std::size_t b = find_bucket(page);
        if (index_[b] == 0)
            return;
        index_[b] = 0;
        // Backward-shift deletion: re-place the probe cluster behind the
        // hole so later lookups never stop early at a stale gap.
        std::size_t i = (b + 1) & mask();
        while (index_[i] != 0) {
            const std::uint32_t v = index_[i];
            index_[i] = 0;
            index_[find_bucket(entries_[v - 1])] = v;
            i = (i + 1) & mask();
        }
    }

    std::uint64_t page_bytes_;
    std::vector<addr_t> entries_;
    std::vector<std::uint64_t> last_use_;
    /// Page -> entry index + 1; 0 = empty (power-of-two, linear probing).
    std::vector<std::uint32_t> index_;
    std::uint64_t stamp_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

} // namespace lnuca::cpu
