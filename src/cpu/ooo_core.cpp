#include "src/cpu/ooo_core.h"

#include "src/ckpt/archive.h"
#include "src/common/log.h"

#include <algorithm>

namespace lnuca::cpu {

ooo_core::ooo_core(const core_config& config, instruction_stream& stream,
                   mem::txn_id_source& ids)
    : config_(config),
      stream_(stream),
      ids_(ids),
      predictor_(4096, 16, 4096),
      dtlb_(config.tlb_entries, config.page_bytes),
      rob_(config.rob_size),
      served_by_level_(8, 0),
      served_by_fabric_level_(16, 0)
{
    counters_.preregister(
        {"fetched", "branches", "branch_mispredicts", "dispatch_wait_cycles",
         "loads", "loads_issued", "loads_completed", "stores",
         "stores_issued", "store_forwards", "dtlb_misses", "l1_port_retry",
         "sb_full_stall", "orphan_responses"});
    h_fetched_ = counters_.handle_of("fetched");
    h_loads_ = counters_.handle_of("loads");
    h_loads_issued_ = counters_.handle_of("loads_issued");
    h_loads_completed_ = counters_.handle_of("loads_completed");
    h_stores_ = counters_.handle_of("stores");
    h_stores_issued_ = counters_.handle_of("stores_issued");
    h_branches_ = counters_.handle_of("branches");
    h_dispatch_wait_ = counters_.handle_of("dispatch_wait_cycles");
    h_branch_mispredicts_ = counters_.handle_of("branch_mispredicts");
    h_l1_port_retry_ = counters_.handle_of("l1_port_retry");
    h_dtlb_misses_ = counters_.handle_of("dtlb_misses");
    h_orphan_responses_ = counters_.handle_of("orphan_responses");
    h_sb_full_stall_ = counters_.handle_of("sb_full_stall");
    h_store_forwards_ = counters_.handle_of("store_forwards");
    // Pre-size every hot-path container for its structural bound so
    // steady-state ticks never allocate.
    fetch_queue_.reserve(4 * config.fetch_width + config.fetch_width);
    store_buffer_.reserve(config.store_buffer_size);
    pending_loads_.reserve(config.lsq_size);
    retry_scratch_.reserve(config.lsq_size);
    rob_store_slots_.reserve(config.lsq_size);
    completions_.reserve(config.rob_size);
    delayed_mem_.reserve(config.lsq_size);
    responses_.reserve(config.lsq_size + config.store_buffer_size);
    for (auto& entry : rob_)
        entry.dependents.reserve(8);
}

void ooo_core::respond(const mem::mem_response& response)
{
    responses_.push(response.ready_at, response);
}

void ooo_core::tick(cycle_t now)
{
    process_responses(now);
    commit(now);
    writeback(now);
    issue(now);
    dispatch(now);
    fetch(now);
    drain_store_buffer(now);
    // Engine-time accounting: idle cycles count whether or not the engine
    // actually ticked us through them (idle-skip jumps over no-op cycles).
    last_tick_ = now;
    cycles_ = now + 1 - cycles_base_;
}

bool ooo_core::dispatch_capacity(const instruction& inst) const
{
    if (rob_count_ >= rob_.size())
        return false;
    if (is_mem(inst.op))
        return mem_used_ < config_.mem_window && lsq_used_ < config_.lsq_size;
    if (is_fp(inst.op))
        return fp_used_ < config_.fp_window;
    return int_used_ < config_.int_window;
}

cycle_t ooo_core::next_event(cycle_t now) const
{
    // Immediately actionable work means the very next cycle matters.
    if (rob_count_ > 0 && rob_[rob_head_].state == entry_state::done)
        return now; // commit retires the head
    if (sb_unissued_ > 0 || sb_acked_ > 0)
        return now; // store issues to the L1 / retires from the buffer
    if (ready_count_ > 0)
        return now; // scheduler has an instruction to issue
    cycle_t next = std::min({responses_.next_ready(), completions_.next_ready(),
                             delayed_mem_.next_ready()});
    // Dispatch is bounded by the front-end ready time while capacity
    // exists. When capacity-blocked, every unblocking path (commit, issue,
    // writeback, load response) is itself one of the events above, so the
    // block cannot clear inside a skipped gap.
    if (!fetch_queue_.empty() && dispatch_capacity(fetch_queue_.front().inst))
        next = std::min(next, std::max(now, fetch_queue_.front().ready_at));
    // Fetch: the redirect-penalty window is the only pure time gate; the
    // other blockers (mispredict in flight, full front-end buffer, enough
    // instructions in flight) clear exclusively through core events.
    if (committed_ + rob_count_ + fetch_queue_.size() < limit_ &&
        !fetch_blocked_ && fetch_queue_.size() < 4 * config_.fetch_width)
        next = std::min(next, std::max(now, fetch_stalled_until_));
    return next;
}

std::uint64_t ooo_core::state_digest() const
{
    sim::state_hash h;
    h.mix(counters_.digest());
    h.mix(committed_);
    h.mix(rob_count_);
    h.mix(rob_head_);
    h.mix(next_seq_);
    h.mix(int_used_);
    h.mix(fp_used_);
    h.mix(mem_used_);
    h.mix(lsq_used_);
    h.mix(fetch_queue_.size());
    h.mix(fetch_blocked_);
    h.mix(fetch_stalled_until_);
    h.mix(store_buffer_.size());
    for (const auto& sb : store_buffer_)
        h.mix((sb.issued ? 2u : 0u) | (sb.acked ? 1u : 0u));
    h.mix(completions_.size());
    h.mix(completions_.next_ready());
    h.mix(delayed_mem_.size());
    h.mix(delayed_mem_.next_ready());
    h.mix(responses_.size());
    h.mix(responses_.next_ready());
    for (const auto& [txn, slot] : pending_loads_)
        h.mix_unordered(txn * 0x9e3779b97f4a7c15ULL + slot);
    return h.value();
}

bool ooo_core::in_rob(std::uint64_t seq) const
{
    if (rob_count_ == 0 || seq == 0)
        return false;
    const std::uint64_t head_seq = rob_[rob_head_].seq;
    return seq >= head_seq && seq < head_seq + rob_count_;
}

std::uint32_t ooo_core::slot_of_seq(std::uint64_t seq) const
{
    const std::uint64_t head_seq = rob_[rob_head_].seq;
    return std::uint32_t((rob_head_ + (seq - head_seq)) % rob_.size());
}

unsigned ooo_core::latency_of(op_class op) const
{
    switch (op) {
    case op_class::int_alu: return config_.lat_int_alu;
    case op_class::int_mul: return config_.lat_int_mul;
    case op_class::fp_add: return config_.lat_fp_add;
    case op_class::fp_mul: return config_.lat_fp_mul;
    case op_class::fp_div: return config_.lat_fp_div;
    case op_class::branch: return config_.lat_int_alu;
    case op_class::store: return config_.lat_int_alu; // address generation
    case op_class::load: return config_.lat_int_alu;  // unused: memory-timed
    }
    return 1;
}

void ooo_core::release_window(const rob_entry& entry)
{
    if (!entry.in_window)
        return;
    if (is_mem(entry.inst.op))
        --mem_used_;
    else if (is_fp(entry.inst.op))
        --fp_used_;
    else
        --int_used_;
}

void ooo_core::process_responses(cycle_t now)
{
    while (auto response = responses_.pop_ready(now)) {
        std::size_t pending = pending_loads_.size();
        for (std::size_t i = 0; i < pending_loads_.size(); ++i)
            if (pending_loads_[i].first == response->id) {
                pending = i;
                break;
            }
        if (pending != pending_loads_.size()) {
            const std::uint32_t slot = pending_loads_[pending].second;
            pending_loads_[pending] = pending_loads_.back();
            pending_loads_.pop_back();
            rob_entry& entry = rob_[slot];
            entry.state = entry_state::done;
            release_window(entry);
            entry.in_window = false;
            load_latency_.add(now - entry.issued_at);
            const auto level = std::size_t(response->served_by);
            if (level < served_by_level_.size())
                ++served_by_level_[level];
            if (response->fabric_level < served_by_fabric_level_.size())
                ++served_by_fabric_level_[response->fabric_level];
            counters_.inc(h_loads_completed_);
            wake_dependents(slot, now);
            continue;
        }
        // Store acknowledgements retire store-buffer entries.
        bool matched = false;
        for (auto& sb : store_buffer_) {
            if (sb.issued && !sb.acked && sb.txn == response->id) {
                sb.acked = true;
                ++sb_acked_;
                matched = true;
                break;
            }
        }
        if (!matched)
            counters_.inc(h_orphan_responses_);
    }
}

void ooo_core::commit(cycle_t now)
{
    for (unsigned n = 0; n < config_.commit_width && rob_count_ > 0; ++n) {
        rob_entry& head = rob_[rob_head_];
        if (head.state != entry_state::done)
            break;
        if (head.inst.op == op_class::store) {
            if (store_buffer_.size() >= config_.store_buffer_size) {
                counters_.inc(h_sb_full_stall_);
                break;
            }
            store_buffer_.push_back({head.inst.addr, head.inst.size, 0, false,
                                     false});
            ++sb_unissued_;
            --lsq_used_;
            for (std::size_t i = 0; i < rob_store_slots_.size(); ++i) {
                if (rob_store_slots_[i] == rob_head_) {
                    rob_store_slots_[i] = rob_store_slots_.back();
                    rob_store_slots_.pop_back();
                    break;
                }
            }
        } else if (head.inst.op == op_class::load) {
            --lsq_used_;
        } else if (head.inst.op == op_class::branch) {
            counters_.inc(h_branches_);
            if (head.mispredicted)
                counters_.inc(h_branch_mispredicts_);
        }
        head.dependents.clear();
        rob_head_ = std::uint32_t((rob_head_ + 1) % rob_.size());
        --rob_count_;
        ++committed_;
        if (committed_ >= limit_ && finished_at_ == no_cycle)
            finished_at_ = now;
    }
}

void ooo_core::wake_dependents(std::uint32_t slot, cycle_t now)
{
    (void)now;
    rob_entry& producer = rob_[slot];
    for (const std::uint32_t d : producer.dependents) {
        rob_entry& dep = rob_[d];
        // Slots recycle; confirm this is still a live dependent.
        if (dep.state != entry_state::waiting || dep.deps == 0)
            continue;
        if (--dep.deps == 0) {
            dep.state = entry_state::ready;
            ++ready_count_;
        }
    }
    producer.dependents.clear();
}

void ooo_core::writeback(cycle_t now)
{
    while (auto slot = completions_.pop_ready(now)) {
        rob_entry& entry = rob_[*slot];
        if (entry.state != entry_state::issued)
            continue; // recycled slot: stale completion
        entry.state = entry_state::done;
        if (entry.in_window) { // store-forwarded loads release here
            release_window(entry);
            entry.in_window = false;
        }
        wake_dependents(*slot, now);
        if (entry.inst.op == op_class::branch && entry.mispredicted &&
            fetch_blocked_ && entry.seq == fetch_block_seq_) {
            fetch_blocked_ = false;
            fetch_block_seq_ = 0;
            fetch_stalled_until_ = now + config_.mispredict_penalty;
        }
    }

    // TLB walks finished / cache-port retries.
    retry_scratch_.clear();
    while (auto slot = delayed_mem_.pop_ready(now))
        retry_scratch_.push_back(*slot);
    for (const std::uint32_t slot : retry_scratch_)
        start_load_access(slot, now);
}

void ooo_core::start_load_access(std::uint32_t slot, cycle_t now)
{
    rob_entry& entry = rob_[slot];
    if (entry.state != entry_state::issued)
        return; // stale retry for a recycled slot

    if (store_forwards(entry.inst)) {
        completions_.push(now + config_.lat_store_forward, slot);
        // Model the forward as an L1-class service for statistics.
        ++served_by_level_[std::size_t(mem::service_level::l1)];
        counters_.inc(h_store_forwards_);
        counters_.inc(h_loads_completed_);
        // Completion via the execution path; mark as normal op finishing.
        // (wake and state transition happen in writeback.)
        return;
    }

    mem::mem_request request;
    request.id = ids_.next();
    request.addr = entry.inst.addr;
    request.size = entry.inst.size;
    request.kind = mem::access_kind::read;
    request.created_at = now;
    if (dcache_ == nullptr || !dcache_->can_accept(request)) {
        counters_.inc(h_l1_port_retry_);
        delayed_mem_.push(now + 1, slot);
        return;
    }
    dcache_->accept(request);
    entry.txn = request.id;
    entry.issued_at = now;
    pending_loads_.emplace_back(request.id, slot);
    counters_.inc(h_loads_issued_);
}

bool ooo_core::store_forwards(const instruction& load) const
{
    const addr_t lo = load.addr;
    const addr_t hi = load.addr + load.size;
    auto overlaps = [&](addr_t a, std::uint8_t s) {
        return a < hi && lo < a + s;
    };
    // Committed but not yet globally performed stores.
    for (const auto& sb : store_buffer_)
        if (overlaps(sb.addr, sb.size))
            return true;
    // Older in-flight stores with computed addresses. Only store-holding
    // ROB slots are tracked (rob_store_slots_), so a load does not walk the
    // whole ROB; overlap is a pure any-of, so slot order is irrelevant.
    for (const std::uint32_t slot : rob_store_slots_) {
        const rob_entry& e = rob_[slot];
        if ((e.state == entry_state::issued || e.state == entry_state::done) &&
            overlaps(e.inst.addr, e.inst.size))
            return true;
    }
    return false;
}

void ooo_core::issue(cycle_t now)
{
    if (ready_count_ == 0)
        return; // nothing to scan: the ROB walk below is the core's hottest loop
    unsigned int_mem_issued = 0;
    unsigned fp_issued = 0;
    // Visit ready entries oldest-first and stop as soon as every entry that
    // was ready at scan start has been seen - the tail of a mostly-stalled
    // ROB never gets walked.
    unsigned remaining = ready_count_;
    for (std::uint32_t n = 0; remaining > 0 && n < rob_count_; ++n) {
        if (int_mem_issued >= config_.int_mem_issue_width &&
            fp_issued >= config_.fp_issue_width)
            break;
        const std::uint32_t slot = std::uint32_t((rob_head_ + n) % rob_.size());
        rob_entry& entry = rob_[slot];
        if (entry.state != entry_state::ready)
            continue;
        --remaining;

        const bool fp = is_fp(entry.inst.op);
        if (fp) {
            if (fp_issued >= config_.fp_issue_width)
                continue;
        } else if (int_mem_issued >= config_.int_mem_issue_width) {
            continue;
        }

        entry.state = entry_state::issued;
        --ready_count_;
        entry.issued_at = now;

        switch (entry.inst.op) {
        case op_class::load: {
            counters_.inc(h_loads_);
            if (!dtlb_.access(entry.inst.addr)) {
                counters_.inc(h_dtlb_misses_);
                delayed_mem_.push(now + config_.tlb_miss_latency, slot);
            } else {
                start_load_access(slot, now);
            }
            // The scheduler slot frees at issue; memory-level parallelism
            // is bounded by the LSQ and the MSHRs, as in the modelled core.
            release_window(entry);
            entry.in_window = false;
            break;
        }
        case op_class::store: {
            counters_.inc(h_stores_);
            cycle_t extra = 0;
            if (!dtlb_.access(entry.inst.addr)) {
                counters_.inc(h_dtlb_misses_);
                extra = config_.tlb_miss_latency;
            }
            completions_.push(now + latency_of(entry.inst.op) + extra, slot);
            release_window(entry);
            entry.in_window = false;
            break;
        }
        default:
            completions_.push(now + latency_of(entry.inst.op), slot);
            release_window(entry);
            entry.in_window = false;
            break;
        }

        if (fp)
            ++fp_issued;
        else
            ++int_mem_issued;
    }
}

void ooo_core::dispatch(cycle_t now)
{
    for (unsigned n = 0; n < config_.dispatch_width; ++n) {
        if (fetch_queue_.empty() || fetch_queue_.front().ready_at > now)
            return;
        // Capacity back-pressure (ROB / per-class window / LSQ) is charged
        // when the instruction finally dispatches, as wait cycles beyond
        // its front-end ready time ("dispatch_wait_cycles"). Counting
        // blocked cycles one-by-one here would make the counter depend on
        // how many idle cycles the engine skipped.
        if (!dispatch_capacity(fetch_queue_.front().inst))
            return;

        const fetched item = fetch_queue_.front();
        fetch_queue_.pop_front();
        if (now > item.ready_at)
            counters_.inc(h_dispatch_wait_, now - item.ready_at);

        const std::uint32_t slot =
            std::uint32_t((rob_head_ + rob_count_) % rob_.size());
        rob_entry& entry = rob_[slot];
        // Reset in place: re-assigning a fresh rob_entry would discard the
        // dependents vector's capacity and re-allocate it on the next wake
        // registration.
        entry.dependents.clear();
        entry.inst = item.inst;
        entry.state = entry_state::waiting;
        entry.deps = 0;
        entry.issued_at = no_cycle;
        entry.txn = 0;
        entry.seq = next_seq_++;
        entry.mispredicted = item.mispredicted;
        entry.in_window = true;
        ++rob_count_;

        if (is_mem(item.inst.op)) {
            ++mem_used_;
            ++lsq_used_;
            if (item.inst.op == op_class::store)
                rob_store_slots_.push_back(slot);
        } else if (is_fp(item.inst.op)) {
            ++fp_used_;
        } else {
            ++int_used_;
        }

        // Resolve producers still in flight.
        for (const std::uint32_t dist : item.inst.dep) {
            if (dist == 0 || dist > entry.seq)
                continue;
            const std::uint64_t producer_seq = entry.seq - dist;
            if (!in_rob(producer_seq))
                continue;
            rob_entry& producer = rob_[slot_of_seq(producer_seq)];
            if (producer.seq != producer_seq ||
                producer.state == entry_state::done)
                continue;
            producer.dependents.push_back(slot);
            ++entry.deps;
        }
        entry.state = entry.deps == 0 ? entry_state::ready : entry_state::waiting;
        if (entry.state == entry_state::ready)
            ++ready_count_;

        if (item.mispredicted)
            fetch_block_seq_ = entry.seq;
    }
}

void ooo_core::fetch(cycle_t now)
{
    if (committed_ + rob_count_ + fetch_queue_.size() >= limit_)
        return; // enough instructions in flight to satisfy the run
    if (fetch_blocked_ || now < fetch_stalled_until_)
        return;
    if (fetch_queue_.size() >= 4 * config_.fetch_width)
        return; // front-end buffer full

    unsigned taken_seen = 0;
    for (unsigned n = 0; n < config_.fetch_width; ++n) {
        instruction inst = stream_.next();
        bool mispredicted = false;
        if (inst.op == op_class::branch) {
            // Predict and train at fetch with the same history state - the
            // standard trace-driven arrangement; recovery cost is charged
            // via the mispredict flag when the branch resolves.
            const bool predicted = predictor_.predict(inst.pc);
            mispredicted = predicted != inst.taken;
            predictor_.update(inst.pc, inst.taken);
            if (inst.taken)
                ++taken_seen;
        }
        fetch_queue_.push_back({now + config_.fetch_to_dispatch, inst,
                                mispredicted});
        counters_.inc(h_fetched_);
        if (mispredicted) {
            // Stop fetching until this branch resolves.
            fetch_blocked_ = true;
            fetch_block_seq_ = 0; // assigned at dispatch
            return;
        }
        if (taken_seen >= config_.max_taken_per_fetch)
            return;
    }
}

void ooo_core::drain_store_buffer(cycle_t now)
{
    // Retire acknowledged stores from the front, in order.
    while (!store_buffer_.empty() && store_buffer_.front().acked) {
        store_buffer_.pop_front();
        --sb_acked_;
    }

    // Issue the oldest unissued store.
    for (auto& sb : store_buffer_) {
        if (sb.issued)
            continue;
        mem::mem_request request;
        request.id = ids_.next();
        request.addr = sb.addr;
        request.size = sb.size;
        request.kind = mem::access_kind::write;
        request.created_at = now;
        if (dcache_ == nullptr || !dcache_->can_accept(request))
            return;
        dcache_->accept(request);
        sb.txn = request.id;
        sb.issued = true;
        --sb_unissued_;
        counters_.inc(h_stores_issued_);
        return; // one per cycle
    }
}

void ooo_core::warm_retire(std::uint64_t count)
{
    for (std::uint64_t n = 0; n < count; ++n) {
        const instruction inst = stream_.warm_next();
        switch (inst.op) {
        case op_class::branch:
            // update() trains all predictor components and the global
            // history with the same state the fetch path would use.
            predictor_.update(inst.pc, inst.taken);
            break;
        case op_class::load:
            dtlb_.access(inst.addr);
            if (dcache_ != nullptr)
                dcache_->warm_access(
                    {inst.addr, mem::access_kind::read, false});
            break;
        case op_class::store:
            dtlb_.access(inst.addr);
            if (dcache_ != nullptr)
                dcache_->warm_access(
                    {inst.addr, mem::access_kind::write, false});
            break;
        default:
            break;
        }
    }
}

std::uint64_t ooo_core::loads_served_by(mem::service_level level) const
{
    const auto i = std::size_t(level);
    return i < served_by_level_.size() ? served_by_level_[i] : 0;
}

std::uint64_t ooo_core::loads_served_by_fabric_level(unsigned level) const
{
    return level < served_by_fabric_level_.size() ? served_by_fabric_level_[level]
                                                  : 0;
}

void ooo_core::reset_stats()
{
    committed_ = 0;
    finished_at_ = no_cycle;
    cycles_ = 0;
    cycles_base_ = last_tick_ == no_cycle ? 0 : last_tick_ + 1;
    counters_.reset();
    load_latency_.reset();
    served_by_level_.assign(served_by_level_.size(), 0);
    served_by_fabric_level_.assign(served_by_fabric_level_.size(), 0);
}

void ooo_core::save_state(ckpt::writer& w) const
{
    if (!quiescent())
        throw ckpt::ckpt_error(
            "ooo_core: checkpoint requested while instructions are in flight");
    ckpt::saver ar(w);
    const_cast<ooo_core*>(this)->serialize(ar);
}

void ooo_core::load_state(ckpt::reader& r)
{
    ckpt::loader ar(r);
    serialize(ar);
}

} // namespace lnuca::cpu
