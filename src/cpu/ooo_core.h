// Out-of-order core timing model with the paper's Table I configuration:
// 4-wide fetch (up to two taken branches), combined bimodal+gshare
// predictor, 128-entry ROB, 64-entry LSQ, separate INT/FP/MEM issue
// windows (32/24/16), 4 INT-or-MEM + 4 FP issue slots, 48-entry store
// buffer, store-to-load forwarding, and a DTLB with a 30-cycle miss
// penalty.
//
// Modelling notes (see DESIGN.md):
// * Trace-driven: wrong-path instructions are not simulated; a mispredicted
//   branch blocks fetch until it resolves plus the redirect penalty.
// * Load wake-up happens exactly when data arrives - equivalent to the
//   paper's speculative wake-up with selective recovery minus the replay
//   cost, which depends only on the (identical) L1 and cancels out in every
//   configuration comparison the paper makes.
// * Instruction fetch is perfect (the evaluation exercises the data side).
#pragma once

#include "src/common/histogram.h"
#include "src/common/ring_queue.h"
#include "src/common/stats.h"
#include "src/cpu/branch_predictor.h"
#include "src/cpu/instruction.h"
#include "src/cpu/tlb.h"
#include "src/mem/request.h"
#include "src/sim/ticked.h"
#include "src/sim/timed_queue.h"

#include <utility>
#include <vector>

namespace lnuca::cpu {

struct core_config {
    unsigned fetch_width = 4;
    unsigned max_taken_per_fetch = 2;
    unsigned dispatch_width = 4;
    unsigned commit_width = 4;
    unsigned rob_size = 128;
    unsigned lsq_size = 64;
    unsigned int_window = 32;
    unsigned fp_window = 24;
    unsigned mem_window = 16;
    unsigned int_mem_issue_width = 4; ///< shared INT/MEM slots per cycle
    unsigned fp_issue_width = 4;
    unsigned store_buffer_size = 48;
    unsigned mispredict_penalty = 8;
    unsigned fetch_to_dispatch = 3; ///< front-end depth in cycles
    unsigned tlb_entries = 64;
    unsigned tlb_miss_latency = 30;
    std::uint64_t page_bytes = 8192;
    // Execution latencies.
    unsigned lat_int_alu = 1;
    unsigned lat_int_mul = 3;
    unsigned lat_fp_add = 4;
    unsigned lat_fp_mul = 4;
    unsigned lat_fp_div = 12;
    unsigned lat_store_forward = 2; ///< LSQ bypass, L1-speed
};

class ooo_core final : public sim::ticked, public mem::mem_client {
public:
    ooo_core(const core_config& config, instruction_stream& stream,
             mem::txn_id_source& ids);

    /// The L1 data cache (or r-tile) this core issues accesses into.
    void set_dcache(mem::mem_port* port) { dcache_ = port; }

    /// Stop fetching after this many committed instructions.
    void set_instruction_limit(std::uint64_t limit) { limit_ = limit; }
    bool done() const { return committed_ >= limit_; }

    /// Cycle at which the instruction limit was reached (no_cycle while
    /// still running). Recorded at the committing tick itself, so it is
    /// identical under dense and idle-skip scheduling - the CMP driver
    /// derives per-core IPC from it.
    cycle_t finished_at() const { return finished_at_; }

    /// Functional fast-forward (sampled simulation): consume `count`
    /// instructions from the stream without simulating timing, while
    /// keeping every predictive structure warm - the branch predictor
    /// trains, the DTLB is touched, and loads/stores walk the hierarchy's
    /// warm_access() path (tags/LRU/migration state). Statistics, the ROB
    /// and all timing queues are untouched; the caller must only invoke
    /// this while the pipeline is drained (quiescent()).
    void warm_retire(std::uint64_t count);

    /// No instruction in flight anywhere in the core (drain detection
    /// between detailed windows and functional fast-forward).
    bool quiescent() const
    {
        return rob_count_ == 0 && fetch_queue_.empty() &&
               store_buffer_.empty() && pending_loads_.empty() &&
               completions_.empty() && delayed_mem_.empty() &&
               responses_.empty();
    }

    // mem_client
    void respond(const mem::mem_response& response) override;

    // ticked
    void tick(cycle_t now) override;
    cycle_t next_event(cycle_t now) const override;
    std::uint64_t state_digest() const override;

    std::uint64_t committed() const { return committed_; }
    /// Cycles elapsed since the last reset_stats(), measured in engine time
    /// as of this core's most recent tick. Identical under dense and
    /// idle-skip scheduling whenever the run ends at a core event (the
    /// hier::system driver's case: runs end at an instruction commit);
    /// after a cycle budget expires mid-gap, idle-skip reports the last
    /// event cycle while dense reports the budget end.
    std::uint64_t cycles() const { return cycles_; }
    double ipc() const
    {
        return cycles_ == 0 ? 0.0 : double(committed_) / double(cycles_);
    }

    const counter_set& counters() const { return counters_; }
    const histogram& load_latency() const { return load_latency_; }
    /// Completed loads serviced by each hierarchy level.
    std::uint64_t loads_served_by(mem::service_level level) const;
    /// Completed loads serviced by each L-NUCA level (2-based).
    std::uint64_t loads_served_by_fabric_level(unsigned level) const;
    const tlb& dtlb() const { return dtlb_; }

    /// Zero statistics after warm-up; microarchitectural state persists.
    void reset_stats();

    /// Checkpoint hooks (quiescent-only; hier::system owns the section).
    void save_state(ckpt::writer& w) const override;
    void load_state(ckpt::reader& r) override;

    /// Persistent-at-quiescence state: predictive structures, allocation
    /// cursors, stats. ROB contents, queues and in-flight loads are empty
    /// by the quiesce-before-snapshot contract and not serialized.
    template <class Ar> void serialize(Ar& ar)
    {
        predictor_.serialize(ar);
        dtlb_.serialize(ar);
        ar(rob_head_);
        ar(next_seq_);
        ar(fetch_blocked_);
        ar(fetch_block_seq_);
        ar(fetch_stalled_until_);
        ar(limit_);
        ar(committed_);
        ar(finished_at_);
        ar(cycles_);
        ar(last_tick_);
        ar(cycles_base_);
        ar.counters(counters_);
        load_latency_.serialize(ar);
        ar(served_by_level_);
        ar(served_by_fabric_level_);
    }

private:
    enum class entry_state : std::uint8_t { waiting, ready, issued, done };

    struct rob_entry {
        instruction inst;
        std::uint64_t seq = 0;
        entry_state state = entry_state::waiting;
        unsigned deps = 0;                     ///< outstanding producers
        std::vector<std::uint32_t> dependents; ///< rob slots I wake
                                               ///< (capacity recycled with
                                               ///< the slot; see dispatch)
        cycle_t issued_at = no_cycle;
        txn_id_t txn = 0;
        bool mispredicted = false;
        bool in_window = false;
    };

    struct store_buffer_entry {
        addr_t addr = 0;
        std::uint8_t size = 0;
        txn_id_t txn = 0;
        bool issued = false;
        bool acked = false;
    };

    void process_responses(cycle_t now);
    void commit(cycle_t now);
    void writeback(cycle_t now);
    void issue(cycle_t now);
    void dispatch(cycle_t now);
    void fetch(cycle_t now);
    void drain_store_buffer(cycle_t now);
    void start_load_access(std::uint32_t slot, cycle_t now);
    void wake_dependents(std::uint32_t slot, cycle_t now);
    void release_window(const rob_entry& entry);
    bool dispatch_capacity(const instruction& inst) const;
    unsigned latency_of(op_class op) const;
    bool in_rob(std::uint64_t seq) const;
    std::uint32_t slot_of_seq(std::uint64_t seq) const;
    bool store_forwards(const instruction& load) const;

    core_config config_;
    instruction_stream& stream_;
    mem::txn_id_source& ids_;
    mem::mem_port* dcache_ = nullptr;

    combined_predictor predictor_;
    tlb dtlb_;

    // Circular ROB.
    std::vector<rob_entry> rob_;
    std::uint32_t rob_head_ = 0;
    std::uint32_t rob_count_ = 0;
    std::uint64_t next_seq_ = 1;

    struct fetched {
        cycle_t ready_at;
        instruction inst;
        bool mispredicted;
    };
    ring_queue<fetched> fetch_queue_;
    bool fetch_blocked_ = false;        ///< mispredict in flight
    std::uint64_t fetch_block_seq_ = 0; ///< branch that blocks fetch
    cycle_t fetch_stalled_until_ = 0;   ///< redirect penalty window

    unsigned int_used_ = 0;
    unsigned fp_used_ = 0;
    unsigned mem_used_ = 0;
    unsigned lsq_used_ = 0;

    // O(1) next_event() probes, maintained at state transitions: entries in
    // entry_state::ready, and store-buffer entries awaiting issue / retire.
    unsigned ready_count_ = 0;
    unsigned sb_unissued_ = 0;
    unsigned sb_acked_ = 0;

    sim::timed_queue<std::uint32_t> completions_; ///< rob slots finishing
    sim::timed_queue<std::uint32_t> delayed_mem_; ///< TLB-miss / port retry
    /// In-flight demand loads (txn -> rob slot). Bounded by the LSQ, so a
    /// flat array + linear scan beats a node-allocating hash map.
    std::vector<std::pair<txn_id_t, std::uint32_t>> pending_loads_;
    sim::timed_queue<mem::mem_response> responses_;

    ring_queue<store_buffer_entry> store_buffer_;
    std::vector<std::uint32_t> retry_scratch_; ///< writeback() tick scratch
    /// ROB slots currently holding stores (store_forwards() scans only
    /// these instead of the whole ROB).
    std::vector<std::uint32_t> rob_store_slots_;

    std::uint64_t limit_ = ~std::uint64_t{0};
    std::uint64_t committed_ = 0;
    cycle_t finished_at_ = no_cycle;
    std::uint64_t cycles_ = 0;
    cycle_t last_tick_ = no_cycle;  ///< cycle of the most recent tick
    cycle_t cycles_base_ = 0;       ///< engine cycle the stats window began

    counter_set counters_;
    // Handles for the per-instruction hot counters (see counter_set::inc).
    counter_set::handle h_fetched_ = 0;
    counter_set::handle h_loads_ = 0;
    counter_set::handle h_loads_issued_ = 0;
    counter_set::handle h_loads_completed_ = 0;
    counter_set::handle h_stores_ = 0;
    counter_set::handle h_stores_issued_ = 0;
    counter_set::handle h_branches_ = 0;
    counter_set::handle h_dispatch_wait_ = 0;
    counter_set::handle h_branch_mispredicts_ = 0;
    counter_set::handle h_l1_port_retry_ = 0;
    counter_set::handle h_dtlb_misses_ = 0;
    counter_set::handle h_orphan_responses_ = 0;
    counter_set::handle h_sb_full_stall_ = 0;
    counter_set::handle h_store_forwards_ = 0;
    histogram load_latency_{256};
    std::vector<std::uint64_t> served_by_level_;
    std::vector<std::uint64_t> served_by_fabric_level_;
};

} // namespace lnuca::cpu
