// Trace-driven instruction model.
//
// Workload generators emit a stream of these; the core reconstructs data
// dependences from producer distances (how many instructions back each
// source operand was produced), the standard encoding for synthetic and
// compressed traces.
#pragma once

#include "src/common/types.h"

#include <cstdint>

namespace lnuca::cpu {

enum class op_class : std::uint8_t {
    int_alu,
    int_mul,
    fp_add,
    fp_mul,
    fp_div,
    load,
    store,
    branch,
};

constexpr bool is_mem(op_class op)
{
    return op == op_class::load || op == op_class::store;
}

constexpr bool is_fp(op_class op)
{
    return op == op_class::fp_add || op == op_class::fp_mul ||
           op == op_class::fp_div;
}

struct instruction {
    op_class op = op_class::int_alu;
    addr_t pc = 0;
    addr_t addr = 0;       ///< effective address (loads/stores)
    std::uint8_t size = 8; ///< access bytes (loads/stores)
    bool taken = false;    ///< branch outcome
    /// Producer distances in instructions (0 = no dependence). dep[0] is
    /// typically the critical operand (e.g. the pointer for a load).
    std::uint32_t dep[2] = {0, 0};
};

/// Source of instructions for the core. Streams are infinite; runs are
/// bounded by instruction count.
class instruction_stream {
public:
    virtual ~instruction_stream() = default;

    virtual instruction next() = 0;

    /// Fast-forward variant (sampled simulation): must return the same
    /// op/address/branch content as next() and leave the stream in exactly
    /// the same state, but may skip fields only the detailed pipeline reads
    /// (dependency distances). Default: identical to next().
    virtual instruction warm_next() { return next(); }
};

} // namespace lnuca::cpu
