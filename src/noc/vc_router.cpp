#include "src/noc/vc_router.h"

#include <stdexcept>

namespace lnuca::noc {

vc_router::vc_router(const router_config& config, coord position)
    : config_(config), position_(position)
{
    for (auto& port : inputs_) {
        port.vcs.resize(config_.virtual_channels);
        for (auto& vc : port.vcs)
            vc.buffer = sync_fifo<flit>(config_.vc_depth);
    }
    for (auto& c : credits_)
        c.assign(config_.virtual_channels, config_.vc_depth);
    for (auto& o : vc_owner_)
        o.assign(config_.virtual_channels, -1);
    counters_.preregister(
        {"injected", "ejected", "forwarded", "credit_stall", "vc_alloc_stall"});
    h_credit_stall_ = counters_.handle_of("credit_stall");
    h_ejected_ = counters_.handle_of("ejected");
    h_forwarded_ = counters_.handle_of("forwarded");
    h_injected_ = counters_.handle_of("injected");
    h_vc_alloc_stall_ = counters_.handle_of("vc_alloc_stall");
}

bool vc_router::local_can_accept(std::uint32_t vc) const
{
    return inputs_[std::size_t(port_dir::local)].vcs[vc].buffer.on();
}

void vc_router::local_inject(std::uint32_t vc, const flit& f)
{
    inputs_[std::size_t(port_dir::local)].vcs[vc].buffer.push(f);
    counters_.inc(h_injected_);
}

std::optional<flit> vc_router::local_eject()
{
    if (ejected_.empty())
        return std::nullopt;
    return ejected_.take_front();
}

bool vc_router::quiescent() const
{
    if (!ejected_.empty())
        return false;
    for (const auto& port : inputs_)
        for (const auto& vc : port.vcs)
            if (!vc.buffer.empty())
                return false;
    return true;
}

mesh_network::mesh_network(const router_config& config, int width, int height)
    : config_(config), width_(width), height_(height)
{
    if (width <= 0 || height <= 0)
        throw std::invalid_argument("mesh dimensions must be positive");
    routers_.reserve(std::size_t(width) * std::size_t(height));
    for (int y = 0; y < height; ++y)
        for (int x = 0; x < width; ++x)
            routers_.emplace_back(config, coord{x, y});
}

port_dir mesh_network::route_xy(coord from, coord to)
{
    if (to.x > from.x)
        return port_dir::east;
    if (to.x < from.x)
        return port_dir::west;
    if (to.y > from.y)
        return port_dir::north;
    if (to.y < from.y)
        return port_dir::south;
    return port_dir::local;
}

coord mesh_network::neighbour(coord c, port_dir d)
{
    switch (d) {
    case port_dir::north: return {c.x, c.y + 1};
    case port_dir::south: return {c.x, c.y - 1};
    case port_dir::east: return {c.x + 1, c.y};
    case port_dir::west: return {c.x - 1, c.y};
    case port_dir::local: return c;
    }
    return c;
}

port_dir mesh_network::opposite(port_dir d)
{
    switch (d) {
    case port_dir::north: return port_dir::south;
    case port_dir::south: return port_dir::north;
    case port_dir::east: return port_dir::west;
    case port_dir::west: return port_dir::east;
    case port_dir::local: return port_dir::local;
    }
    return port_dir::local;
}

void mesh_network::step(cycle_t now)
{
    const std::uint32_t vcs = config_.virtual_channels;

    // Phase A: route computation + virtual-channel allocation for new heads.
    for (auto& r : routers_) {
        for (std::size_t p = 0; p < port_count; ++p) {
            for (std::uint32_t v = 0; v < vcs; ++v) {
                auto& ivc = r.inputs_[p].vcs[v];
                const flit* head = ivc.buffer.front();
                if (head == nullptr || ivc.routed || !head->head())
                    continue;
                const port_dir out = route_xy(r.position_, head->dst);
                if (out == port_dir::local) {
                    ivc.routed = true;
                    ivc.out = out;
                    ivc.out_vc = 0;
                    continue;
                }
                // Claim a free downstream VC with buffering available.
                auto& owners = r.vc_owner_[std::size_t(out)];
                auto& credits = r.credits_[std::size_t(out)];
                const std::int32_t self = std::int32_t(p * vcs + v);
                for (std::uint32_t ovc = 0; ovc < vcs; ++ovc) {
                    if (owners[ovc] == -1 && credits[ovc] > 0) {
                        owners[ovc] = self;
                        ivc.routed = true;
                        ivc.out = out;
                        ivc.out_vc = ovc;
                        break;
                    }
                }
                if (!ivc.routed)
                    r.counters_.inc(r.h_vc_alloc_stall_);
            }
        }
    }

    // Phase B: switch allocation + traversal. One flit per output port per
    // cycle, round-robin over input VCs for fairness.
    // The rotation pointer is a pure function of the cycle number (every
    // router used to advance a member copy once per step, in lockstep), so
    // arbitration fairness is independent of how many idle cycles the
    // engine skipped.
    const std::size_t slots = port_count * vcs;
    const std::size_t rotate = std::size_t(now % slots);
    for (auto& r : routers_) {
        for (std::size_t out = 0; out < port_count; ++out) {
            bool sent = false;
            for (std::size_t k = 0; k < slots && !sent; ++k) {
                const std::size_t slot = (rotate + k) % slots;
                const std::size_t p = slot / vcs;
                const std::uint32_t v = std::uint32_t(slot % vcs);
                auto& ivc = r.inputs_[p].vcs[v];
                const flit* head = ivc.buffer.front();
                if (head == nullptr || !ivc.routed ||
                    std::size_t(ivc.out) != out)
                    continue;
                if (ivc.out != port_dir::local &&
                    r.credits_[out][ivc.out_vc] == 0) {
                    r.counters_.inc(r.h_credit_stall_);
                    continue;
                }

                const flit moving = *ivc.buffer.pop();
                if (ivc.out == port_dir::local) {
                    r.ejected_.push_back(moving);
                    r.counters_.inc(r.h_ejected_);
                } else {
                    const coord nc = neighbour(r.position_, ivc.out);
                    vc_router& next = at(nc);
                    next.inputs_[std::size_t(opposite(ivc.out))]
                        .vcs[ivc.out_vc]
                        .buffer.push(moving);
                    r.credits_[out][ivc.out_vc]--;
                    ++flit_hops_;
                    r.counters_.inc(r.h_forwarded_);
                }

                // Return a credit to whoever feeds this input port.
                if (p != std::size_t(port_dir::local)) {
                    const coord up = neighbour(r.position_, port_dir(p));
                    if (in_bounds(up)) {
                        vc_router& upstream = at(up);
                        upstream.credits_[std::size_t(opposite(port_dir(p)))][v]++;
                    }
                }

                if (moving.tail()) {
                    if (ivc.out != port_dir::local)
                        r.vc_owner_[out][ivc.out_vc] = -1;
                    ivc.routed = false;
                }
                sent = true;
            }
        }
    }

    // Make staged flits visible for the next cycle.
    for (auto& r : routers_)
        for (auto& port : r.inputs_)
            for (auto& vc : port.vcs)
                vc.buffer.commit();
}

bool mesh_network::quiescent() const
{
    for (const auto& r : routers_)
        if (!r.quiescent())
            return false;
    return true;
}

std::uint64_t mesh_network::occupancy_digest() const
{
    std::uint64_t h = flit_hops_;
    for (const auto& r : routers_) {
        h = h * 0x100000001b3ULL + r.ejected_.size();
        for (const auto& port : r.inputs_)
            for (const auto& vc : port.vcs)
                h = h * 0x100000001b3ULL + vc.buffer.total_size() * 8 +
                    (vc.routed ? 4 : 0);
    }
    return h;
}

} // namespace lnuca::noc
