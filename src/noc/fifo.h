// Synchronous bounded FIFO used as a link receive buffer.
//
// Pushes are staged and only become visible to the consumer after commit()
// at the end of the network cycle, so a message can never traverse two hops
// in one cycle no matter the order components are evaluated in. With a
// capacity of two this reproduces the paper's two-entry On/Off buffers
// (capacity covers the two-cycle On/Off round trip, so no message is ever
// dropped).
#pragma once

#include <cstddef>
#include <deque>
#include <optional>
#include <vector>

namespace lnuca::noc {

template <typename T>
class sync_fifo {
public:
    explicit sync_fifo(std::size_t capacity = 2) : capacity_(capacity) {}

    std::size_t capacity() const { return capacity_; }
    std::size_t size() const { return committed_.size(); }
    bool empty() const { return committed_.empty(); }

    /// Nothing visible *or* staged: safe-to-sleep test for idle-skip
    /// scheduling (a staged entry forces a commit, hence a tick, next cycle).
    bool idle() const { return committed_.empty() && staged_.empty(); }
    std::size_t total_size() const { return committed_.size() + staged_.size(); }

    /// On/Off back-pressure as seen by the upstream tile this cycle:
    /// Off (false) when committed + staged occupancy has reached capacity.
    bool on() const { return committed_.size() + staged_.size() < capacity_; }

    /// Stage a message for delivery next cycle. Caller must check on().
    void push(T value) { staged_.push_back(std::move(value)); }

    /// Front of the committed (visible) entries.
    const T* front() const { return committed_.empty() ? nullptr : &committed_.front(); }

    /// Pop the visible head.
    std::optional<T> pop()
    {
        if (committed_.empty())
            return std::nullopt;
        T out = std::move(committed_.front());
        committed_.pop_front();
        return out;
    }

    /// Iterate visible entries (U-buffer address comparators do this).
    const std::deque<T>& visible() const { return committed_; }

    /// Find an entry (visible or staged) matching `pred`; the L-NUCA search
    /// operation compares addresses against in-transit replacement blocks,
    /// including ones latched this very cycle.
    template <typename Pred>
    const T* find(Pred pred) const
    {
        for (const auto& v : committed_)
            if (pred(v))
                return &v;
        for (const auto& v : staged_)
            if (pred(v))
                return &v;
        return nullptr;
    }

    /// Remove the first entry (visible or staged) matching `pred` and return
    /// it (U-buffer hit extraction). Returns nullopt when none matches.
    template <typename Pred>
    std::optional<T> extract(Pred pred)
    {
        for (auto it = committed_.begin(); it != committed_.end(); ++it) {
            if (pred(*it)) {
                T out = std::move(*it);
                committed_.erase(it);
                return out;
            }
        }
        for (auto it = staged_.begin(); it != staged_.end(); ++it) {
            if (pred(*it)) {
                T out = std::move(*it);
                staged_.erase(it);
                return out;
            }
        }
        return std::nullopt;
    }

    /// Mutate entries in place (store hits dirty an in-transit block).
    template <typename Fn>
    void for_each(Fn fn)
    {
        for (auto& v : committed_)
            fn(v);
        for (auto& v : staged_)
            fn(v);
    }

    /// Make staged pushes visible; call once per simulated cycle.
    void commit()
    {
        for (auto& v : staged_)
            committed_.push_back(std::move(v));
        staged_.clear();
    }

    void clear()
    {
        committed_.clear();
        staged_.clear();
    }

private:
    std::size_t capacity_;
    std::deque<T> committed_;
    std::vector<T> staged_;
};

} // namespace lnuca::noc
