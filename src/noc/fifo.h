// Synchronous bounded FIFO used as a link receive buffer.
//
// Pushes are staged and only become visible to the consumer after commit()
// at the end of the network cycle, so a message can never traverse two hops
// in one cycle no matter the order components are evaluated in. With a
// capacity of two this reproduces the paper's two-entry On/Off buffers
// (capacity covers the two-cycle On/Off round trip, so no message is ever
// dropped).
//
// Storage is a fixed-capacity ring held inline in the fifo object (no
// std::deque chunk churn): committed entries occupy [head, head+committed)
// and staged entries follow at [head+committed, head+committed+staged), so
// commit() is a counter update — O(1), no element moves, no allocation.
// The inline small-buffer covers the common capacities (the paper's
// two-entry On/Off buffers and the 4-deep router VCs); larger capacities
// (the buffer-depth ablation's upper range is 8) fall back to one heap
// block allocated at construction; no operation allocates after that.
#pragma once

#include <array>
#include <cstddef>
#include <optional>
#include <stdexcept>
#include <vector>

namespace lnuca::noc {

template <typename T, std::size_t InlineCapacity = 4>
class sync_fifo {
public:
    explicit sync_fifo(std::size_t capacity = 2) : capacity_(capacity)
    {
        if (capacity_ == 0)
            throw std::invalid_argument("sync_fifo capacity must be positive");
        if (capacity_ > InlineCapacity)
            overflow_.resize(capacity_);
    }

    std::size_t capacity() const { return capacity_; }
    std::size_t size() const { return committed_; }
    bool empty() const { return committed_ == 0; }

    /// Nothing visible *or* staged: safe-to-sleep test for idle-skip
    /// scheduling (a staged entry forces a commit, hence a tick, next cycle).
    bool idle() const { return committed_ + staged_ == 0; }
    std::size_t total_size() const { return committed_ + staged_; }

    /// On/Off back-pressure as seen by the upstream tile this cycle:
    /// Off (false) when committed + staged occupancy has reached capacity.
    bool on() const { return committed_ + staged_ < capacity_; }

    /// Stage a message for delivery next cycle. Caller must check on().
    void push(T value)
    {
        if (committed_ + staged_ == capacity_)
            throw std::logic_error("sync_fifo overflow: push without on()");
        slot(committed_ + staged_) = std::move(value);
        ++staged_;
    }

    /// Front of the committed (visible) entries.
    const T* front() const { return committed_ == 0 ? nullptr : &slot(0); }

    /// Pop the visible head.
    std::optional<T> pop()
    {
        if (committed_ == 0)
            return std::nullopt;
        T out = std::move(slot(0));
        slot(0) = T{};
        head_ = wrap(head_ + 1);
        --committed_;
        return out;
    }

    /// Find an entry (visible or staged) matching `pred`; the L-NUCA search
    /// operation compares addresses against in-transit replacement blocks,
    /// including ones latched this very cycle.
    template <typename Pred>
    const T* find(Pred pred) const
    {
        for (std::size_t i = 0; i < committed_ + staged_; ++i)
            if (pred(slot(i)))
                return &slot(i);
        return nullptr;
    }

    /// Remove the first entry (visible or staged) matching `pred` and return
    /// it (U-buffer hit extraction). Returns nullopt when none matches.
    template <typename Pred>
    std::optional<T> extract(Pred pred)
    {
        const std::size_t total = committed_ + staged_;
        for (std::size_t i = 0; i < total; ++i) {
            if (!pred(slot(i)))
                continue;
            T out = std::move(slot(i));
            for (std::size_t k = i + 1; k < total; ++k)
                slot(k - 1) = std::move(slot(k));
            slot(total - 1) = T{};
            if (i < committed_)
                --committed_;
            else
                --staged_;
            return out;
        }
        return std::nullopt;
    }

    /// Mutate entries in place (store hits dirty an in-transit block).
    template <typename Fn>
    void for_each(Fn fn)
    {
        for (std::size_t i = 0; i < committed_ + staged_; ++i)
            fn(slot(i));
    }

    /// Make staged pushes visible; call once per simulated cycle. O(1).
    void commit()
    {
        committed_ += staged_;
        staged_ = 0;
    }

    void clear()
    {
        for (std::size_t i = 0; i < committed_ + staged_; ++i)
            slot(i) = T{};
        head_ = 0;
        committed_ = 0;
        staged_ = 0;
    }

private:
    T* data() { return capacity_ > InlineCapacity ? overflow_.data() : inline_.data(); }
    const T* data() const
    {
        return capacity_ > InlineCapacity ? overflow_.data() : inline_.data();
    }

    /// `i` is always < 2 * capacity_ here, so one conditional wraps.
    std::size_t wrap(std::size_t i) const { return i >= capacity_ ? i - capacity_ : i; }

    T& slot(std::size_t i) { return data()[wrap(head_ + i)]; }
    const T& slot(std::size_t i) const { return data()[wrap(head_ + i)]; }

    std::size_t capacity_;
    std::size_t head_ = 0;      ///< ring position of the oldest committed entry
    std::size_t committed_ = 0; ///< visible entries
    std::size_t staged_ = 0;    ///< entries latched this cycle, visible next
    std::array<T, InlineCapacity> inline_{};
    std::vector<T> overflow_; ///< only used when capacity_ > InlineCapacity
};

} // namespace lnuca::noc
