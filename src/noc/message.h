// Flit and packet types for the wormhole virtual-channel network that
// carries D-NUCA traffic (the L-NUCA fabric uses its own headerless
// messages; see src/fabric).
#pragma once

#include "src/common/types.h"

#include <cstdint>

namespace lnuca::noc {

/// Node coordinate in a 2D mesh.
struct coord {
    int x = 0;
    int y = 0;

    bool operator==(const coord& o) const { return x == o.x && y == o.y; }
    bool operator!=(const coord& o) const { return !(*this == o); }
};

enum class packet_kind : std::uint8_t {
    request,   ///< cache probe travelling to a bank (single flit)
    reply,     ///< data block travelling back (multi-flit)
    nack,      ///< miss notification back to the controller (single flit)
    migrate,   ///< block moving between banks (multi-flit)
    writeback, ///< dirty block / write probe (multi-flit / single flit)
};

/// Wormhole flit. Every flit carries its packet's routing context so the
/// simulator does not need a separate packet table.
struct flit {
    std::uint64_t packet_id = 0;
    packet_kind kind = packet_kind::request;
    coord src{};
    coord dst{};
    addr_t addr = no_addr;
    txn_id_t txn = 0;
    std::uint16_t seq = 0;  ///< flit index within packet
    std::uint16_t count = 1; ///< total flits in packet
    cycle_t injected_at = 0;

    bool head() const { return seq == 0; }
    bool tail() const { return seq + 1 == count; }
};

} // namespace lnuca::noc
