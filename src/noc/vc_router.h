// Wormhole virtual-channel mesh router (the NUCA-style interconnect the
// paper contrasts L-NUCA against): dimension-order X-Y routing, per-input
// virtual channels with fixed-depth flit buffers, credit-based VC flow
// control, round-robin switch allocation, one cycle per hop.
#pragma once

#include "src/common/ring_queue.h"
#include "src/common/stats.h"
#include "src/common/types.h"
#include "src/noc/fifo.h"
#include "src/noc/message.h"

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

namespace lnuca::noc {

enum class port_dir : std::uint8_t { local = 0, north, south, east, west };
inline constexpr std::size_t port_count = 5;

struct router_config {
    std::uint32_t virtual_channels = 4;
    std::uint32_t vc_depth = 4; ///< flit buffer entries per VC
};

class mesh_network; // forward; owns and wires routers

/// One mesh node. Input-buffered; the local port is the bank/controller
/// attachment point.
class vc_router {
public:
    vc_router(const router_config& config, coord position);

    coord position() const { return position_; }

    /// Can the local port accept a new flit this cycle (VC `vc`)?
    bool local_can_accept(std::uint32_t vc) const;

    /// Inject a flit at the local port (caller checked local_can_accept).
    void local_inject(std::uint32_t vc, const flit& f);

    /// Drain one flit delivered to this node, if any.
    std::optional<flit> local_eject();

    const counter_set& counters() const { return counters_; }
    bool quiescent() const;

    /// Checkpoint support: at quiescence buffers are empty, credits are
    /// back to full and every VC is unowned, so only counters persist.
    template <class Ar> void serialize(Ar& ar) { ar.counters(counters_); }

private:
    friend class mesh_network;

    struct input_vc {
        sync_fifo<flit> buffer{4};
        // Wormhole state: once a head flit is routed, the packet owns this
        // route until its tail passes.
        bool routed = false;
        port_dir out = port_dir::local;
        std::uint32_t out_vc = 0;
    };

    struct input_port {
        std::vector<input_vc> vcs;
    };

    input_vc& in(port_dir port, std::uint32_t vc)
    {
        return inputs_[std::size_t(port)].vcs[vc];
    }

    router_config config_;
    coord position_;
    std::array<input_port, port_count> inputs_;
    // Downstream credits per output port per VC (free buffer slots).
    std::array<std::vector<std::uint32_t>, port_count> credits_;
    // Output VC ownership for wormhole: encoded input (port * V + vc), -1 free.
    // (Switch-allocation round-robin rotates by cycle number - see
    // mesh_network::step - so routers hold no per-cycle arbitration state.)
    std::array<std::vector<std::int32_t>, port_count> vc_owner_;
    ring_queue<flit> ejected_;
    counter_set counters_;
    counter_set::handle h_credit_stall_ = 0;
    counter_set::handle h_ejected_ = 0;
    counter_set::handle h_forwarded_ = 0;
    counter_set::handle h_injected_ = 0;
    counter_set::handle h_vc_alloc_stall_ = 0;
};

/// A width x height mesh of vc_routers with neighbour wiring. Call step()
/// once per cycle; flits staged this cycle are visible next cycle.
class mesh_network {
public:
    mesh_network(const router_config& config, int width, int height);

    int width() const { return width_; }
    int height() const { return height_; }

    vc_router& at(coord c) { return routers_[index(c)]; }
    const vc_router& at(coord c) const { return routers_[index(c)]; }

    /// Advance every router one cycle.
    void step(cycle_t now);

    /// Total flit-hops performed (energy model input).
    std::uint64_t flit_hops() const { return flit_hops_; }
    std::uint64_t router_traversals() const { return flit_hops_; }

    bool quiescent() const;

    /// Cheap summary of buffer/ejection occupancy across all routers
    /// (paranoid-mode state digests; see sim/ticked.h).
    std::uint64_t occupancy_digest() const;

    /// X-Y route: next hop direction from `from` towards `to`.
    static port_dir route_xy(coord from, coord to);

    /// Checkpoint support: per-router counters + the hop total that feeds
    /// the energy model.
    template <class Ar> void serialize(Ar& ar)
    {
        for (vc_router& r : routers_)
            r.serialize(ar);
        ar(flit_hops_);
    }

private:
    std::size_t index(coord c) const
    {
        return std::size_t(c.y) * std::size_t(width_) + std::size_t(c.x);
    }

    bool in_bounds(coord c) const
    {
        return c.x >= 0 && c.x < width_ && c.y >= 0 && c.y < height_;
    }

    static coord neighbour(coord c, port_dir d);
    static port_dir opposite(port_dir d);

    router_config config_;
    int width_;
    int height_;
    std::vector<vc_router> routers_;
    std::uint64_t flit_hops_ = 0;
};

} // namespace lnuca::noc
