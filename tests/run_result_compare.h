// Shared bit-identity comparator for hier::run_result, used by both the
// exp determinism tests (thread count / shard layout must not change a
// field) and the engine-schedule tests (dense vs idle-skip must not change
// a field). Compares every simulation field; the host-timing trio
// (host_seconds and the derived throughput rates) is deliberately absent —
// it measures the host, not the simulation.
#pragma once

#include "src/hier/system.h"

#include <gtest/gtest.h>

namespace lnuca {

inline void expect_sim_fields_identical(const hier::run_result& a,
                                        const hier::run_result& b)
{
    EXPECT_EQ(a.config_name, b.config_name);
    EXPECT_EQ(a.workload_name, b.workload_name);
    EXPECT_EQ(a.floating_point, b.floating_point);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.ipc, b.ipc);
    EXPECT_EQ(a.l2_read_hits, b.l2_read_hits);
    EXPECT_EQ(a.fabric_read_hits, b.fabric_read_hits);
    EXPECT_EQ(a.transport_actual, b.transport_actual);
    EXPECT_EQ(a.transport_min, b.transport_min);
    EXPECT_EQ(a.search_restarts, b.search_restarts);
    EXPECT_EQ(a.searches, b.searches);
    EXPECT_EQ(a.energy.dynamic_j, b.energy.dynamic_j);
    EXPECT_EQ(a.energy.static_l1_j, b.energy.static_l1_j);
    EXPECT_EQ(a.energy.static_storage_j, b.energy.static_storage_j);
    EXPECT_EQ(a.energy.static_l3_j, b.energy.static_l3_j);
    EXPECT_EQ(a.loads_l1, b.loads_l1);
    EXPECT_EQ(a.loads_fabric, b.loads_fabric);
    EXPECT_EQ(a.loads_l2, b.loads_l2);
    EXPECT_EQ(a.loads_l3, b.loads_l3);
    EXPECT_EQ(a.loads_dnuca, b.loads_dnuca);
    EXPECT_EQ(a.loads_memory, b.loads_memory);
    EXPECT_EQ(a.loads_peer, b.loads_peer);
    EXPECT_EQ(a.avg_load_latency, b.avg_load_latency);
    EXPECT_EQ(a.cores, b.cores);
    EXPECT_EQ(a.per_core_ipc, b.per_core_ipc);
    EXPECT_EQ(a.weighted_speedup, b.weighted_speedup);
    EXPECT_EQ(a.sampled, b.sampled);
    EXPECT_EQ(a.sampled_windows, b.sampled_windows);
    EXPECT_EQ(a.measured_instructions, b.measured_instructions);
    EXPECT_EQ(a.ipc_ci95, b.ipc_ci95);
    EXPECT_EQ(a.status, b.status);
    EXPECT_EQ(a.error, b.error);
}

} // namespace lnuca
