// Engine and timed-queue semantics: the timing contract everything else
// builds on.
#include "src/sim/engine.h"
#include "src/sim/timed_queue.h"

#include <gtest/gtest.h>

namespace lnuca::sim {
namespace {

TEST(timed_queue, pops_only_when_ready)
{
    timed_queue<int> q;
    q.push(5, 1);
    EXPECT_FALSE(q.pop_ready(4).has_value());
    auto v = q.pop_ready(5);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, 1);
}

TEST(timed_queue, orders_by_time_then_push_order)
{
    timed_queue<int> q;
    q.push(10, 1);
    q.push(5, 2);
    q.push(10, 3);
    EXPECT_EQ(*q.pop_ready(20), 2);
    EXPECT_EQ(*q.pop_ready(20), 1); // tie broken by push order
    EXPECT_EQ(*q.pop_ready(20), 3);
    EXPECT_FALSE(q.pop_ready(20).has_value());
}

TEST(timed_queue, next_ready_and_empty)
{
    timed_queue<int> q;
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.next_ready(), no_cycle);
    q.push(7, 0);
    EXPECT_EQ(q.next_ready(), 7u);
    EXPECT_EQ(q.size(), 1u);
}

struct counter_component final : ticked {
    cycle_t last = no_cycle;
    int ticks = 0;
    void tick(cycle_t now) override
    {
        last = now;
        ++ticks;
    }
};

TEST(engine, run_advances_cycles)
{
    engine e;
    counter_component c;
    e.add(c);
    e.run(10);
    EXPECT_EQ(e.now(), 10u);
    EXPECT_EQ(c.ticks, 10);
    EXPECT_EQ(c.last, 9u); // last executed cycle
}

TEST(engine, registration_order_is_tick_order)
{
    engine e;
    std::vector<int> order;
    struct probe final : ticked {
        std::vector<int>* order;
        int id;
        probe(std::vector<int>* o, int i) : order(o), id(i) {}
        void tick(cycle_t) override { order->push_back(id); }
    };
    probe a(&order, 1), b(&order, 2);
    e.add(a);
    e.add(b);
    e.run(2);
    ASSERT_EQ(order.size(), 4u);
    EXPECT_EQ(order[0], 1);
    EXPECT_EQ(order[1], 2);
    EXPECT_EQ(order[2], 1);
}

TEST(engine, run_until_predicate)
{
    engine e;
    counter_component c;
    e.add(c);
    const bool done = e.run_until([&] { return c.ticks >= 5; }, 100);
    EXPECT_TRUE(done);
    EXPECT_EQ(c.ticks, 5);
    EXPECT_EQ(e.now(), 5u);
}

TEST(engine, run_until_budget_exhausted)
{
    engine e;
    counter_component c;
    e.add(c);
    const bool done = e.run_until([] { return false; }, 25);
    EXPECT_FALSE(done);
    EXPECT_EQ(e.now(), 25u);
}

} // namespace
} // namespace lnuca::sim
