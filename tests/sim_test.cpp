// Engine and timed-queue semantics: the timing contract everything else
// builds on, including the idle-skip scheduler (next_event lower bounds,
// event-boundary predicate evaluation, paranoid cross-checking).
#include "src/sim/engine.h"
#include "src/sim/timed_queue.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace lnuca::sim {
namespace {

TEST(timed_queue, pops_only_when_ready)
{
    timed_queue<int> q;
    q.push(5, 1);
    EXPECT_FALSE(q.pop_ready(4).has_value());
    auto v = q.pop_ready(5);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, 1);
}

TEST(timed_queue, orders_by_time_then_push_order)
{
    timed_queue<int> q;
    q.push(10, 1);
    q.push(5, 2);
    q.push(10, 3);
    EXPECT_EQ(*q.pop_ready(20), 2);
    EXPECT_EQ(*q.pop_ready(20), 1); // tie broken by push order
    EXPECT_EQ(*q.pop_ready(20), 3);
    EXPECT_FALSE(q.pop_ready(20).has_value());
}

TEST(timed_queue, next_ready_and_empty)
{
    timed_queue<int> q;
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.next_ready(), no_cycle);
    q.push(7, 0);
    EXPECT_EQ(q.next_ready(), 7u);
    EXPECT_EQ(q.size(), 1u);
}

TEST(timed_queue, next_ready_tracks_pops_and_reinsertion)
{
    timed_queue<int> q;
    q.push(9, 1);
    q.push(4, 2);
    EXPECT_EQ(q.next_ready(), 4u);
    EXPECT_EQ(*q.pop_ready(4), 2);
    EXPECT_EQ(q.next_ready(), 9u);
    EXPECT_FALSE(q.pop_ready(8).has_value());
    q.push(0, 3); // overdue entries surface immediately
    EXPECT_EQ(q.next_ready(), 0u);
    EXPECT_EQ(*q.pop_ready(8), 3);
    EXPECT_EQ(*q.pop_ready(9), 1);
    EXPECT_EQ(q.next_ready(), no_cycle);
}

TEST(timed_queue, same_cycle_push_is_visible_and_zero_works)
{
    timed_queue<int> q;
    q.push(0, 1);
    EXPECT_EQ(q.next_ready(), 0u);
    EXPECT_EQ(*q.pop_ready(0), 1);
    EXPECT_TRUE(q.empty());
}

TEST(timed_queue, heap_preserves_push_order_under_interleaving)
{
    // Stress the owned binary heap against a reference sort: random ready
    // cycles with heavy ties, popped in stages, must come out in
    // (ready_at, push order). A deterministic LCG keeps the test stable.
    timed_queue<int> q;
    q.reserve(256);
    std::vector<std::pair<cycle_t, int>> reference;
    std::uint64_t lcg = 12345;
    int id = 0;
    auto push_some = [&](int n) {
        for (int i = 0; i < n; ++i) {
            lcg = lcg * 6364136223846793005ULL + 1442695040888963407ULL;
            const cycle_t at = (lcg >> 33) % 8; // few buckets -> many ties
            q.push(at, id);
            reference.emplace_back(at, id);
            ++id;
        }
    };
    auto drain_until = [&](cycle_t now, std::vector<int>& out) {
        while (auto v = q.pop_ready(now))
            out.push_back(*v);
    };

    std::vector<int> popped;
    push_some(100);
    drain_until(3, popped);
    push_some(100);
    drain_until(no_cycle, popped);

    // Expected order: stable sort by ready cycle within each drain phase.
    std::vector<int> expected;
    auto take = [&](std::size_t begin, std::size_t end, cycle_t now) {
        std::vector<std::pair<cycle_t, int>> phase(
            reference.begin() + std::ptrdiff_t(begin),
            reference.begin() + std::ptrdiff_t(end));
        std::stable_sort(phase.begin(), phase.end(),
                         [](const auto& a, const auto& b) {
                             return a.first < b.first;
                         });
        std::vector<std::pair<cycle_t, int>> left;
        for (const auto& [at, v] : phase) {
            if (at <= now)
                expected.push_back(v);
            else
                left.push_back({at, v});
        }
        return left;
    };
    auto leftover = take(0, 100, 3);
    std::vector<std::pair<cycle_t, int>> phase2(reference.begin() + 100,
                                                reference.end());
    leftover.insert(leftover.end(), phase2.begin(), phase2.end());
    std::stable_sort(leftover.begin(), leftover.end(),
                     [](const auto& a, const auto& b) {
                         return a.first < b.first;
                     });
    for (const auto& [at, v] : leftover)
        expected.push_back(v);

    EXPECT_EQ(popped, expected);
}

struct counter_component final : ticked {
    cycle_t last = no_cycle;
    int ticks = 0;
    void tick(cycle_t now) override
    {
        last = now;
        ++ticks;
    }
};

TEST(engine, run_advances_cycles)
{
    engine e;
    counter_component c;
    e.add(c);
    e.run(10);
    EXPECT_EQ(e.now(), 10u);
    EXPECT_EQ(c.ticks, 10);
    EXPECT_EQ(c.last, 9u); // last executed cycle
}

TEST(engine, registration_order_is_tick_order)
{
    engine e;
    std::vector<int> order;
    struct probe final : ticked {
        std::vector<int>* order;
        int id;
        probe(std::vector<int>* o, int i) : order(o), id(i) {}
        void tick(cycle_t) override { order->push_back(id); }
    };
    probe a(&order, 1), b(&order, 2);
    e.add(a);
    e.add(b);
    e.run(2);
    ASSERT_EQ(order.size(), 4u);
    EXPECT_EQ(order[0], 1);
    EXPECT_EQ(order[1], 2);
    EXPECT_EQ(order[2], 1);
}

TEST(engine, run_until_predicate)
{
    engine e;
    counter_component c;
    e.add(c);
    const bool done = e.run_until([&] { return c.ticks >= 5; }, 100);
    EXPECT_TRUE(done);
    EXPECT_EQ(c.ticks, 5);
    EXPECT_EQ(e.now(), 5u);
}

TEST(engine, run_until_budget_exhausted)
{
    engine e;
    counter_component c;
    e.add(c);
    const bool done = e.run_until([] { return false; }, 25);
    EXPECT_FALSE(done);
    EXPECT_EQ(e.now(), 25u);
}

// ---------------------------------------------------------------------------
// Idle-skip scheduling.
// ---------------------------------------------------------------------------

/// Acts (mutates observable state) exactly at the scheduled cycles and
/// reports an honest next_event lower bound.
struct scripted_component final : ticked {
    std::vector<cycle_t> schedule; ///< sorted
    std::vector<cycle_t> acted;
    int ticks = 0;

    explicit scripted_component(std::vector<cycle_t> s) : schedule(std::move(s)) {}

    void tick(cycle_t now) override
    {
        ++ticks;
        if (std::binary_search(schedule.begin(), schedule.end(), now))
            acted.push_back(now);
    }

    cycle_t next_event(cycle_t now) const override
    {
        const auto it =
            std::lower_bound(schedule.begin(), schedule.end(), now);
        return it == schedule.end() ? no_cycle : *it;
    }

    std::uint64_t state_digest() const override { return acted.size(); }
};

TEST(engine_idle_skip, ticks_exactly_the_event_cycles)
{
    engine e;
    e.set_mode(schedule_mode::idle_skip);
    scripted_component c({3, 7, 20});
    e.add(c);
    e.run(25);
    EXPECT_EQ(e.now(), 25u);
    // Never skipped past a cycle where the component would have acted...
    EXPECT_EQ(c.acted, (std::vector<cycle_t>{3, 7, 20}));
    // ...and never woken in between.
    EXPECT_EQ(c.ticks, 3);
    EXPECT_EQ(e.cycles_executed(), 3u);
    EXPECT_EQ(e.cycles_skipped(), 22u);
}

TEST(engine_idle_skip, run_lands_exactly_on_the_target_cycle)
{
    engine e;
    e.set_mode(schedule_mode::idle_skip);
    scripted_component c({100});
    e.add(c);
    e.run(10);
    EXPECT_EQ(e.now(), 10u);
    EXPECT_EQ(c.ticks, 0);
    e.run(100);
    EXPECT_EQ(e.now(), 110u);
    EXPECT_EQ(c.acted, (std::vector<cycle_t>{100}));
}

TEST(engine_idle_skip, default_next_event_keeps_dense_behaviour)
{
    engine e;
    e.set_mode(schedule_mode::idle_skip);
    counter_component c; // no next_event override -> never skippable
    e.add(c);
    e.run(10);
    EXPECT_EQ(c.ticks, 10);
    EXPECT_EQ(e.cycles_skipped(), 0u);
}

TEST(engine_idle_skip, run_until_fires_at_event_boundaries_like_dense)
{
    for (const auto mode : {schedule_mode::dense, schedule_mode::idle_skip,
                            schedule_mode::paranoid}) {
        engine e;
        e.set_mode(mode);
        scripted_component c({3, 7, 20});
        e.add(c);
        const bool done =
            e.run_until([&] { return c.acted.size() >= 2; }, 1000);
        EXPECT_TRUE(done);
        // The predicate became true during cycle 7; every mode must stop
        // with now() == 8, exactly as dense per-cycle evaluation does.
        EXPECT_EQ(e.now(), 8u) << "mode " << int(mode);
    }
}

TEST(engine_idle_skip, no_future_event_jumps_to_the_budget)
{
    engine e;
    e.set_mode(schedule_mode::idle_skip);
    scripted_component c({}); // never acts
    e.add(c);
    const bool done = e.run_until([] { return false; }, 5000);
    EXPECT_FALSE(done);
    EXPECT_EQ(e.now(), 5000u);
    EXPECT_EQ(e.cycles_executed(), 0u);
    EXPECT_EQ(e.cycles_skipped(), 5000u);
}

TEST(engine_idle_skip, overdue_events_clamp_to_now)
{
    // A component whose bound lies in the past must run immediately, not
    // wind the engine backwards.
    struct overdue final : ticked {
        int ticks = 0;
        void tick(cycle_t) override { ++ticks; }
        cycle_t next_event(cycle_t) const override { return 0; }
    };
    engine e;
    e.set_mode(schedule_mode::idle_skip);
    overdue c;
    e.add(c);
    e.run(5);
    EXPECT_EQ(c.ticks, 5);
    EXPECT_EQ(e.now(), 5u);
}

TEST(engine_paranoid, honest_components_pass)
{
    engine e;
    e.set_mode(schedule_mode::paranoid);
    scripted_component c({2, 9});
    e.add(c);
    EXPECT_NO_THROW(e.run(20));
    EXPECT_EQ(c.acted, (std::vector<cycle_t>{2, 9}));
    EXPECT_EQ(c.ticks, 20); // paranoid steps densely
    EXPECT_EQ(e.cycles_skipped(), 18u);
}

TEST(engine_paranoid, catches_a_dishonest_next_event)
{
    // Claims to be idle forever but mutates observable state every tick.
    struct liar final : ticked {
        std::uint64_t state = 0;
        void tick(cycle_t) override { ++state; }
        cycle_t next_event(cycle_t) const override { return no_cycle; }
        std::uint64_t state_digest() const override { return state; }
    };
    engine e;
    e.set_mode(schedule_mode::paranoid);
    liar c;
    e.add(c);
    EXPECT_THROW(e.run(5), engine_paranoia_error);
}

TEST(engine_idle_skip, producer_consumer_matches_dense_bit_for_bit)
{
    // A two-stage pipeline over timed_queue: the producer emits a value
    // every 10 cycles, the consumer sees it 3 cycles later. Dense and
    // idle-skip must agree on every observation timestamp.
    struct producer final : ticked {
        timed_queue<cycle_t>* out = nullptr;
        cycle_t next_emit = 5;
        void tick(cycle_t now) override
        {
            if (now == next_emit) {
                out->push(now + 3, now);
                next_emit += 10;
            }
        }
        cycle_t next_event(cycle_t now) const override
        {
            return std::max(now, next_emit);
        }
        std::uint64_t state_digest() const override { return next_emit; }
    };
    struct consumer final : ticked {
        timed_queue<cycle_t> in;
        std::vector<std::pair<cycle_t, cycle_t>> seen; ///< (cycle, payload)
        void tick(cycle_t now) override
        {
            while (auto v = in.pop_ready(now))
                seen.emplace_back(now, *v);
        }
        cycle_t next_event(cycle_t) const override { return in.next_ready(); }
        std::uint64_t state_digest() const override
        {
            return seen.size() * 131 + in.size();
        }
    };

    auto run = [](schedule_mode mode) {
        engine e;
        e.set_mode(mode);
        producer p;
        consumer c;
        p.out = &c.in;
        e.add(p);
        e.add(c);
        e.run(64);
        return c.seen;
    };
    const auto dense = run(schedule_mode::dense);
    const auto skip = run(schedule_mode::idle_skip);
    const auto paranoid = run(schedule_mode::paranoid);
    ASSERT_EQ(dense.size(), 6u);
    EXPECT_EQ(dense, skip);
    EXPECT_EQ(dense, paranoid);
}

} // namespace
} // namespace lnuca::sim
