// Sweep manifests (src/exp/manifest.h) and the shard merge library
// (src/exp/merge.h): schema validation, deterministic axis expansion,
// canonical-content hashing, shard/unsharded equivalence, and every
// merge_tool edge case driven in-process.
#include "src/exp/manifest.h"
#include "src/exp/merge.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

using namespace lnuca;
using namespace lnuca::exp;

namespace {

// A small but fully-populated manifest every test can start from.
const char* k_manifest = R"({
  "schema": "lnuca_sweep/1",
  "name": "unit",
  "presets": ["L2-256KB", "ln3"],
  "cores": [1, 2],
  "workloads": ["429.mcf", "scenario:ping_pong"],
  "replicates": 2,
  "base_seed": 7,
  "instructions": 1000,
  "warmup": 200
})";

manifest parse_or_die(const std::string& text)
{
    std::string error;
    const auto m = parse_manifest(text, &error);
    EXPECT_TRUE(m.has_value()) << error;
    return *m;
}

std::string parse_error(const std::string& text)
{
    std::string error;
    EXPECT_FALSE(parse_manifest(text, &error).has_value());
    return error;
}

// --------------------------------------------------------------------------
// Schema validation.
// --------------------------------------------------------------------------

TEST(manifest, rejects_unknown_schema_and_missing_schema)
{
    EXPECT_NE(parse_error(R"({"schema": "lnuca_sweep/2",
                              "presets": ["l2"], "workloads": ["429.mcf"]})")
                  .find("unsupported manifest schema"),
              std::string::npos);
    EXPECT_NE(parse_error(R"({"presets": ["l2"], "workloads": ["429.mcf"]})")
                  .find("schema"),
              std::string::npos);
}

TEST(manifest, rejects_unknown_and_duplicate_keys)
{
    EXPECT_NE(parse_error(R"({"schema": "lnuca_sweep/1", "presets": ["l2"],
                              "workloads": ["429.mcf"], "wormloads": ["x"]})")
                  .find("unknown manifest key 'wormloads'"),
              std::string::npos);
    EXPECT_NE(parse_error(R"({"schema": "lnuca_sweep/1", "presets": ["l2"],
                              "presets": ["l2"], "workloads": ["429.mcf"]})")
                  .find("duplicate manifest key 'presets'"),
              std::string::npos);
}

TEST(manifest, rejects_bad_axis_values)
{
    // Unknown preset, unknown workload spec, unknown override key, cores
    // out of range, fractional scalar, malformed JSON: all named errors.
    EXPECT_NE(parse_error(R"({"schema": "lnuca_sweep/1", "presets": ["l5"],
                              "workloads": ["429.mcf"]})")
                  .find("unknown preset 'l5'"),
              std::string::npos);
    EXPECT_NE(parse_error(R"({"schema": "lnuca_sweep/1", "presets": ["l2"],
                              "workloads": ["430.nope"]})")
                  .find("unknown workload spec"),
              std::string::npos);
    EXPECT_NE(parse_error(R"({"schema": "lnuca_sweep/1", "presets": ["l2"],
                              "workloads": ["429.mcf"],
                              "overrides": [{"l2.size_mb": 1}]})")
                  .find("unknown system_config override key 'l2.size_mb'"),
              std::string::npos);
    EXPECT_NE(parse_error(R"({"schema": "lnuca_sweep/1", "presets": ["l2"],
                              "workloads": ["429.mcf"], "cores": [0]})")
                  .find("cores"),
              std::string::npos);
    EXPECT_NE(parse_error(R"({"schema": "lnuca_sweep/1", "presets": ["l2"],
                              "workloads": ["429.mcf"],
                              "instructions": 1.5})")
                  .find("instructions"),
              std::string::npos);
    EXPECT_NE(parse_error(R"({"schema": "lnuca_sweep/1" "presets")")
                  .find("JSON error"),
              std::string::npos);
}

// --------------------------------------------------------------------------
// Axis expansion.
// --------------------------------------------------------------------------

TEST(manifest, expands_the_axis_product_in_declared_order)
{
    const manifest m = parse_or_die(k_manifest);
    // 2 presets x 2 core counts (x 1 engine x 1 sampling x 1 override set).
    ASSERT_EQ(m.configs.size(), 4u);
    EXPECT_EQ(m.configs[0].name, "L2-256KB");
    EXPECT_EQ(m.configs[1].name, "L2-256KB-2c");
    EXPECT_EQ(m.configs[2].name, "LN3-144KB");
    EXPECT_EQ(m.configs[3].name, "LN3-144KB-2c");
    EXPECT_EQ(m.configs[1].cores, 2u);
    ASSERT_EQ(m.workloads.size(), 2u);
    EXPECT_EQ(m.workloads[1].scenario, "ping_pong");
    EXPECT_EQ(m.replicates, 2u);
    EXPECT_EQ(m.total_jobs(), 4u * 2u * 2u);
    EXPECT_EQ(m.instructions, 1000u);
    EXPECT_EQ(m.warmup, 200u);
    EXPECT_EQ(m.base_seed, 7u);
    EXPECT_NE(m.hash, 0u);

    // cores=1 partner on the same coordinates, self for cores=1 rows.
    ASSERT_EQ(m.baseline_config.size(), 4u);
    EXPECT_EQ(m.baseline_config[0], std::size_t{0});
    EXPECT_EQ(m.baseline_config[1], std::size_t{0});
    EXPECT_EQ(m.baseline_config[2], std::size_t{2});
    EXPECT_EQ(m.baseline_config[3], std::size_t{2});
}

TEST(manifest, engine_sampling_and_override_axes_suffix_the_config_name)
{
    const manifest m = parse_or_die(R"({
      "schema": "lnuca_sweep/1",
      "presets": ["l2"],
      "engine": ["skip", "dense"],
      "sampling": ["off", "periodic:2000:40000"],
      "overrides": [{}, {"l2.size_kb": 512, "core.rob_size": 64}],
      "workloads": ["429.mcf"]
    })");
    ASSERT_EQ(m.configs.size(), 8u);
    EXPECT_EQ(m.configs[0].name, "L2-256KB");
    // Override keys suffix in sorted order regardless of JSON order.
    EXPECT_EQ(m.configs[1].name, "L2-256KB+core.rob_size=64+l2.size_kb=512");
    EXPECT_EQ(m.configs[2].name, "L2-256KB+periodic:2000:40000:1000");
    EXPECT_EQ(m.configs[4].name, "L2-256KB+dense");
    EXPECT_EQ(m.configs[7].name,
              "L2-256KB+dense+periodic:2000:40000:1000"
              "+core.rob_size=64+l2.size_kb=512");
    EXPECT_EQ(m.configs[4].engine_mode, sim::schedule_mode::dense);
    EXPECT_TRUE(m.configs[2].sampling.enabled);
    EXPECT_EQ(m.configs[2].sampling.detail_warmup, 1000u);
}

TEST(manifest, overrides_round_trip_into_system_config)
{
    const manifest m = parse_or_die(R"({
      "schema": "lnuca_sweep/1",
      "presets": ["ln3+dn"],
      "overrides": [{"l1.ways": 8, "fabric.mshr_entries": 24,
                     "dnuca.bank_latency": 5, "memory.queue_depth": 9,
                     "bus.width_bytes": 32, "core.rob_size": 96,
                     "l3.size_kb": 4096}],
      "workloads": ["429.mcf"]
    })");
    ASSERT_EQ(m.configs.size(), 1u);
    const hier::system_config& c = m.configs[0];
    EXPECT_EQ(c.l1.ways, 8u);
    EXPECT_EQ(c.fabric.mshr_entries, 24u);
    EXPECT_EQ(c.dnuca.bank_latency, 5u);
    EXPECT_EQ(c.memory.queue_depth, 9u);
    EXPECT_EQ(c.l1_l2_bus.width_bytes, 32u);
    EXPECT_EQ(c.core.rob_size, 96u);
    EXPECT_EQ(c.l3.size_bytes, 4096u * 1024u);
}

// --------------------------------------------------------------------------
// Canonical hashing.
// --------------------------------------------------------------------------

TEST(manifest, hash_ignores_formatting_key_order_and_alias_spelling)
{
    const manifest a = parse_or_die(k_manifest);
    // Same experiment: reordered keys, collapsed whitespace, preset
    // aliases ("l2" for "L2-256KB", "LN3-144KB" for "ln3"), and override
    // key order all hash identically.
    const manifest b = parse_or_die(
        R"({"workloads":["429.mcf","scenario:ping_pong"],"base_seed":7,)"
        R"("cores":[1,2],"presets":["l2","LN3-144KB"],"replicates":2,)"
        R"("instructions":1000,"warmup":200,"name":"unit",)"
        R"("schema":"lnuca_sweep/1"})");
    EXPECT_EQ(a.hash, b.hash);

    const manifest c = parse_or_die(R"({
      "schema": "lnuca_sweep/1", "presets": ["l2"], "workloads": ["429.mcf"],
      "overrides": [{"l2.size_kb": 512, "l2.ways": 16}]})");
    const manifest d = parse_or_die(R"({
      "schema": "lnuca_sweep/1", "presets": ["l2"], "workloads": ["429.mcf"],
      "overrides": [{"l2.ways": 16, "l2.size_kb": 512}]})");
    EXPECT_EQ(c.hash, d.hash);
}

TEST(manifest, hash_changes_when_the_experiment_changes)
{
    const manifest base = parse_or_die(k_manifest);
    std::set<std::uint64_t> hashes{base.hash};
    for (const char* variant : {
             // instructions 1000 -> 2000
             R"({"schema":"lnuca_sweep/1","name":"unit",
                 "presets":["L2-256KB","ln3"],"cores":[1,2],
                 "workloads":["429.mcf","scenario:ping_pong"],
                 "replicates":2,"base_seed":7,"instructions":2000,
                 "warmup":200})",
             // workload order is part of the axis definition
             R"({"schema":"lnuca_sweep/1","name":"unit",
                 "presets":["L2-256KB","ln3"],"cores":[1,2],
                 "workloads":["scenario:ping_pong","429.mcf"],
                 "replicates":2,"base_seed":7,"instructions":1000,
                 "warmup":200})",
             // one more override set
             R"({"schema":"lnuca_sweep/1","name":"unit",
                 "presets":["L2-256KB","ln3"],"cores":[1,2],
                 "workloads":["429.mcf","scenario:ping_pong"],
                 "replicates":2,"base_seed":7,"instructions":1000,
                 "warmup":200,"overrides":[{},{"l2.ways":16}]})",
         }) {
        hashes.insert(parse_or_die(variant).hash);
    }
    EXPECT_EQ(hashes.size(), 4u); // all distinct
}

// --------------------------------------------------------------------------
// Sweep equivalence.
// --------------------------------------------------------------------------

TEST(manifest, shard_union_equals_the_unsharded_sweep)
{
    const manifest m = parse_or_die(k_manifest);
    const std::vector<job> full = m.to_sweep().build();
    ASSERT_EQ(full.size(), m.total_jobs());

    std::map<std::size_t, job> merged;
    for (std::size_t shard = 0; shard < 3; ++shard) {
        sweep s = m.to_sweep();
        s.shard(shard, 3);
        for (job& j : s.build()) {
            EXPECT_TRUE(merged.emplace(j.key.flat, std::move(j)).second)
                << "flat " << j.key.flat << " appeared in two shards";
        }
    }
    ASSERT_EQ(merged.size(), full.size());
    for (const job& j : full) {
        const job& shard_job = merged.at(j.key.flat);
        EXPECT_TRUE(shard_job.key == j.key);
        EXPECT_EQ(shard_job.seed, j.seed);
        EXPECT_EQ(shard_job.manifest_hash, m.hash);
        EXPECT_EQ(shard_job.config.name, j.config.name);
        EXPECT_EQ(shard_job.workload.name, j.workload.name);
    }
}

// --------------------------------------------------------------------------
// Merging (the library behind tools/merge_tool.cpp).
// --------------------------------------------------------------------------

// Deterministic fake result for a job; no simulation needed to exercise
// the merge bookkeeping.
hier::run_result fake_result(const job& j)
{
    hier::run_result r;
    r.config_name = j.config.name;
    r.workload_name = j.workload.name;
    r.instructions = j.instructions;
    r.cycles = 1000 + j.key.flat;
    r.ipc = 0.5 + 0.001 * double(j.key.flat);
    r.host_seconds = 0.25; // nondeterministic trio: must not affect merging
    r.sim_cycles_per_second = 1e6;
    r.sim_instructions_per_second = 5e5;
    return r;
}

std::string line_of(const job& j, const hier::run_result& r)
{
    return encode_json_line(j, r) + "\n";
}

struct merge_fixture {
    manifest m = parse_or_die(k_manifest);
    std::vector<job> jobs = m.to_sweep().build();

    std::string shard_content(std::size_t shard, std::size_t count) const
    {
        std::string out;
        for (const job& j : jobs)
            if (j.key.flat % count == shard)
                out += line_of(j, fake_result(j));
        return out;
    }
};

TEST(merge, shards_merge_to_the_canonical_clean_run)
{
    merge_fixture f;
    std::string merged;
    merge_report report;
    std::string error;
    ASSERT_TRUE(merge_results(
        f.m, {{"s0", f.shard_content(0, 2)}, {"s1", f.shard_content(1, 2)}},
        merged, report, &error))
        << error;
    EXPECT_TRUE(report.complete());
    EXPECT_EQ(report.rows_seen, f.jobs.size());
    EXPECT_EQ(report.duplicates, 0u);
    EXPECT_EQ(report.torn_tails, 0u);

    std::string clean;
    for (const job& j : f.jobs)
        clean += line_of(j, fake_result(j));
    EXPECT_EQ(merged, clean); // flat order, bit-identical rows
}

TEST(merge, agreeing_duplicates_collapse_but_conflicts_are_fatal)
{
    merge_fixture f;
    // Same rows twice, one with a different host-timing trio: still one
    // merged row per flat (host timing is excluded from identity).
    std::string copy;
    for (const job& j : f.jobs) {
        hier::run_result r = fake_result(j);
        r.host_seconds = 9.75;
        copy += line_of(j, r);
    }
    std::string merged;
    merge_report report;
    std::string error;
    ASSERT_TRUE(merge_results(f.m,
                              {{"a", f.shard_content(0, 1)}, {"b", copy}},
                              merged, report, &error))
        << error;
    EXPECT_TRUE(report.complete());
    EXPECT_EQ(report.duplicates, f.jobs.size());

    // A duplicate that differs on a *deterministic* field is evidence of
    // nondeterminism (or seed reuse) and must be a hard error.
    hier::run_result conflicting = fake_result(f.jobs[0]);
    conflicting.cycles += 1;
    EXPECT_FALSE(merge_results(f.m,
                               {{"a", f.shard_content(0, 1)},
                                {"b", line_of(f.jobs[0], conflicting)}},
                               merged, report, &error));
    EXPECT_NE(error.find("conflicting completed rows"), std::string::npos);
}

TEST(merge, missing_and_failed_flats_are_reported_not_invented)
{
    merge_fixture f;
    // Shard 1 only => all of shard 0's flats missing.
    std::string merged;
    merge_report report;
    std::string error;
    ASSERT_TRUE(merge_results(f.m, {{"s1", f.shard_content(1, 2)}}, merged,
                              report, &error))
        << error;
    EXPECT_FALSE(report.complete());
    ASSERT_FALSE(report.missing.empty());
    EXPECT_EQ(report.missing.size() + report.rows_seen, f.jobs.size());
    EXPECT_EQ(report.missing[0], 0u);

    // A failed row is superseded by a later ok row; without one it is a
    // "failed" flat, distinct from "missing".
    hier::run_result failed = fake_result(f.jobs[0]);
    failed.status = hier::run_status::failed;
    failed.error = "injected";
    ASSERT_TRUE(merge_results(
        f.m,
        {{"fail", line_of(f.jobs[0], failed)},
         {"rest", f.shard_content(1, 2)}},
        merged, report, &error))
        << error;
    ASSERT_EQ(report.failed.size(), 1u);
    EXPECT_EQ(report.failed[0], 0u);

    ASSERT_TRUE(merge_results(
        f.m,
        {{"fail", line_of(f.jobs[0], failed)},
         {"retry", line_of(f.jobs[0], fake_result(f.jobs[0]))}},
        merged, report, &error))
        << error;
    EXPECT_TRUE(report.failed.empty());
    EXPECT_NE(merged.find("\"status\":\"ok\""), merged.npos);

    const std::string summary = describe_merge(report);
    EXPECT_NE(summary.find("missing flats"), std::string::npos);
}

TEST(merge, torn_tail_only_tolerated_on_the_last_line)
{
    merge_fixture f;
    const std::string full = f.shard_content(0, 1);

    // Torn tail: final line cut mid-record.
    std::string torn = full.substr(0, full.size() - 25);
    std::string merged;
    merge_report report;
    std::string error;
    ASSERT_TRUE(merge_results(f.m, {{"torn", torn}}, merged, report, &error))
        << error;
    EXPECT_EQ(report.torn_tails, 1u);
    EXPECT_FALSE(report.complete()); // the torn row is missing
    EXPECT_EQ(report.missing.size(), 1u);

    // The same torn line mid-file poisons the input.
    std::string corrupt = torn + "\n" + full.substr(full.rfind('{'));
    EXPECT_FALSE(
        merge_results(f.m, {{"corrupt", corrupt}}, merged, report, &error));
    EXPECT_NE(error.find("corrupt"), std::string::npos);
}

TEST(merge, foreign_rows_are_hard_errors)
{
    merge_fixture f;
    // A row from a different manifest (different instruction count =>
    // different hash and run length) must never merge in silently.
    const manifest other = parse_or_die(R"({
      "schema": "lnuca_sweep/1", "name": "unit",
      "presets": ["L2-256KB", "ln3"], "cores": [1, 2],
      "workloads": ["429.mcf", "scenario:ping_pong"],
      "replicates": 2, "base_seed": 7,
      "instructions": 2000, "warmup": 200})");
    const std::vector<job> foreign = other.to_sweep().build();
    std::string merged;
    merge_report report;
    std::string error;
    EXPECT_FALSE(merge_results(
        f.m, {{"foreign", line_of(foreign[0], fake_result(foreign[0]))}},
        merged, report, &error));
    EXPECT_NE(error.find("does not belong to this manifest"),
              std::string::npos);

    // Flat index beyond the manifest's job count: also fatal.
    job oob = f.jobs[0];
    oob.key.flat = f.jobs.size() + 5;
    EXPECT_FALSE(merge_results(f.m,
                               {{"oob", line_of(oob, fake_result(oob))}},
                               merged, report, &error));
    EXPECT_NE(error.find("outside the manifest"), std::string::npos);
}

} // namespace
