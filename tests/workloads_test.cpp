// Synthetic SPEC proxy generators: determinism, mix, locality structure,
// and suite completeness.
#include "src/workloads/spec2006.h"
#include "src/workloads/synthetic.h"

#include <gtest/gtest.h>

#include <list>
#include <map>
#include <unordered_map>

namespace lnuca::wl {
namespace {

TEST(suite, has_28_benchmarks_11_int_17_fp)
{
    EXPECT_EQ(spec2006_suite().size(), 28u);
    EXPECT_EQ(spec2006_int().size(), 11u);
    EXPECT_EQ(spec2006_fp().size(), 17u);
}

TEST(suite, excludes_xalancbmk)
{
    EXPECT_FALSE(find_spec2006("483.xalancbmk").has_value());
    EXPECT_TRUE(find_spec2006("429.mcf").has_value());
    EXPECT_TRUE(find_spec2006("470.lbm").has_value());
}

TEST(suite, names_unique_and_numeric_order)
{
    std::map<std::string, int> seen;
    for (const auto& p : spec2006_suite())
        seen[p.name]++;
    for (const auto& [name, count] : seen)
        EXPECT_EQ(count, 1) << name;
}

TEST(suite, weights_do_not_exceed_one)
{
    for (const auto& p : spec2006_suite()) {
        double total = p.p_new_block;
        for (const auto& c : p.reuse)
            total += c.weight;
        EXPECT_LE(total, 1.0) << p.name;
        EXPECT_GT(p.footprint_blocks, 0u) << p.name;
    }
}

TEST(generator, deterministic_per_seed)
{
    const auto profile = *find_spec2006("401.bzip2");
    synthetic_stream a(profile, 99), b(profile, 99), c(profile, 100);
    bool any_diff = false;
    for (int i = 0; i < 1000; ++i) {
        const auto ia = a.next();
        const auto ib = b.next();
        const auto ic = c.next();
        EXPECT_EQ(ia.addr, ib.addr);
        EXPECT_EQ(int(ia.op), int(ib.op));
        any_diff |= ia.addr != ic.addr || ia.op != ic.op;
    }
    EXPECT_TRUE(any_diff); // different seed, different stream
}

TEST(generator, instruction_mix_matches_profile)
{
    const auto profile = *find_spec2006("429.mcf");
    synthetic_stream s(profile, 7);
    std::map<int, int> histogram;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        histogram[int(s.next().op)]++;
    const double loads = double(histogram[int(cpu::op_class::load)]) / n;
    const double stores = double(histogram[int(cpu::op_class::store)]) / n;
    const double branches = double(histogram[int(cpu::op_class::branch)]) / n;
    EXPECT_NEAR(loads, profile.mix.load, 0.02);
    EXPECT_NEAR(stores, profile.mix.store, 0.02);
    EXPECT_NEAR(branches, profile.mix.branch, 0.02);
}

TEST(generator, fp_profiles_emit_fp_ops)
{
    const auto profile = *find_spec2006("470.lbm");
    synthetic_stream s(profile, 7);
    int fp_ops = 0;
    for (int i = 0; i < 10000; ++i)
        fp_ops += is_fp(s.next().op) ? 1 : 0;
    EXPECT_GT(fp_ops, 2000);
}

TEST(generator, addresses_stay_within_footprint_region)
{
    const auto profile = *find_spec2006("456.hmmer");
    synthetic_stream s(profile, 3);
    const addr_t base = 0x10000000;
    // Sequential runs can stray slightly past the footprint; allow slack.
    const addr_t limit = base + (profile.footprint_blocks + 4096) * 32;
    for (int i = 0; i < 50000; ++i) {
        const auto inst = s.next();
        if (inst.op == cpu::op_class::load || inst.op == cpu::op_class::store) {
            EXPECT_GE(inst.addr, base);
            EXPECT_LT(inst.addr, limit);
        }
    }
}

TEST(generator, hot_range_dominates_reuse)
{
    // The first reuse component (the hot working set) should make a small
    // LRU cache capture the majority of accesses.
    const auto profile = *find_spec2006("456.hmmer");
    synthetic_stream s(profile, 5);
    std::list<addr_t> lru;
    std::unordered_map<addr_t, std::list<addr_t>::iterator> where;
    std::uint64_t hits = 0, accesses = 0;
    for (int i = 0; i < 200000; ++i) {
        const auto inst = s.next();
        if (inst.op != cpu::op_class::load && inst.op != cpu::op_class::store)
            continue;
        ++accesses;
        const addr_t block = inst.addr & ~addr_t(31);
        const auto it = where.find(block);
        if (it != where.end()) {
            hits++;
            lru.erase(it->second);
        }
        lru.push_front(block);
        where[block] = lru.begin();
        if (lru.size() > 1024) {
            where.erase(lru.back());
            lru.pop_back();
        }
    }
    EXPECT_GT(double(hits) / double(accesses), 0.75);
}

TEST(generator, memory_intense_profiles_miss_more)
{
    // lbm (streaming) must show much worse 1024-block locality than hmmer.
    auto hit_rate = [](const workload_profile& p) {
        synthetic_stream s(p, 5);
        std::list<addr_t> lru;
        std::unordered_map<addr_t, std::list<addr_t>::iterator> where;
        std::uint64_t hits = 0, accesses = 0;
        for (int i = 0; i < 150000; ++i) {
            const auto inst = s.next();
            if (inst.op != cpu::op_class::load &&
                inst.op != cpu::op_class::store)
                continue;
            ++accesses;
            const addr_t block = inst.addr & ~addr_t(31);
            const auto it = where.find(block);
            if (it != where.end()) {
                hits++;
                lru.erase(it->second);
            }
            lru.push_front(block);
            where[block] = lru.begin();
            if (lru.size() > 1024) {
                where.erase(lru.back());
                lru.pop_back();
            }
        }
        return double(hits) / double(accesses);
    };
    EXPECT_GT(hit_rate(*find_spec2006("456.hmmer")),
              hit_rate(*find_spec2006("429.mcf")) + 0.08);
}

TEST(generator, pointer_chase_creates_load_load_dependences)
{
    const auto profile = *find_spec2006("429.mcf");
    synthetic_stream s(profile, 5);
    int chained = 0, loads = 0;
    std::uint32_t since_last_load = 1000;
    for (int i = 0; i < 50000; ++i) {
        const auto inst = s.next();
        ++since_last_load;
        if (inst.op == cpu::op_class::load) {
            ++loads;
            if (inst.dep[0] == since_last_load)
                ++chained;
            since_last_load = 0;
        }
    }
    EXPECT_GT(double(chained) / loads, 0.2);
}

TEST(generator, branch_sites_have_stable_pcs)
{
    const auto profile = *find_spec2006("445.gobmk");
    synthetic_stream s(profile, 5);
    std::map<addr_t, int> sites;
    for (int i = 0; i < 50000; ++i) {
        const auto inst = s.next();
        if (inst.op == cpu::op_class::branch)
            sites[inst.pc]++;
    }
    EXPECT_LE(sites.size(), std::size_t(profile.static_branches));
    EXPECT_GE(sites.size(), std::size_t(profile.static_branches) / 2);
}

TEST(generator, warm_block_covers_backward_window)
{
    const auto profile = *find_spec2006("401.bzip2");
    synthetic_stream s(profile, 5);
    // Distinct blocks for distinct backward indices (within footprint).
    EXPECT_NE(s.warm_block(0), s.warm_block(1));
    EXPECT_NE(s.warm_block(0), s.warm_block(100000));
    // Aligned to 32B.
    EXPECT_EQ(s.warm_block(17) % 32, 0u);
}

} // namespace
} // namespace lnuca::wl
