// Hierarchy presets and whole-system assembly.
#include "src/hier/presets.h"
#include "src/hier/system.h"
#include "src/workloads/spec2006.h"
#include "tests/run_result_compare.h"

#include <gtest/gtest.h>

namespace lnuca::hier {
namespace {

TEST(presets, names_follow_paper)
{
    EXPECT_EQ(presets::l2_256kb().name, "L2-256KB");
    EXPECT_EQ(presets::lnuca_l3(2).name, "LN2-72KB");
    EXPECT_EQ(presets::lnuca_l3(3).name, "LN3-144KB");
    EXPECT_EQ(presets::lnuca_l3(4).name, "LN4-248KB");
    EXPECT_EQ(presets::dnuca_4x8().name, "DN-4x8");
    EXPECT_EQ(presets::lnuca_dnuca(2).name, "LN2 + DN-4x8");
}

TEST(presets, table1_parameters)
{
    const auto c = presets::l2_256kb();
    EXPECT_EQ(c.l1.size_bytes, 32_KiB);
    EXPECT_EQ(c.l1.ways, 4u);
    EXPECT_EQ(c.l1.block_bytes, 32u);
    EXPECT_EQ(c.l1.completion_latency, 2u);
    EXPECT_EQ(c.l1.ports, 2u);
    EXPECT_TRUE(c.l1.write_through);
    EXPECT_EQ(c.l2.size_bytes, 256_KiB);
    EXPECT_EQ(c.l2.ways, 8u);
    EXPECT_EQ(c.l2.block_bytes, 64u);
    EXPECT_EQ(c.l2.completion_latency, 4u);
    EXPECT_EQ(c.l2.initiation_interval, 2u);
    EXPECT_TRUE(c.l2.serial_access);
    EXPECT_EQ(c.l3.size_bytes, 8_MiB);
    EXPECT_EQ(c.l3.ways, 16u);
    EXPECT_EQ(c.l3.block_bytes, 128u);
    EXPECT_EQ(c.l3.completion_latency, 20u);
    EXPECT_EQ(c.l3.initiation_interval, 15u);
    EXPECT_EQ(c.memory.first_chunk_latency, 200u);
    EXPECT_EQ(c.memory.inter_chunk_latency, 4u);
    EXPECT_EQ(c.memory.wire_bytes, 16u);
    EXPECT_EQ(c.core.rob_size, 128u);
    EXPECT_EQ(c.core.lsq_size, 64u);
    EXPECT_EQ(c.core.store_buffer_size, 48u);
    EXPECT_EQ(c.core.mispredict_penalty, 8u);
    EXPECT_EQ(c.core.tlb_miss_latency, 30u);
}

TEST(presets, r_tile_differs_from_write_through_l1)
{
    const auto ln = presets::lnuca_l3(3);
    EXPECT_FALSE(ln.l1.write_through);
    EXPECT_FALSE(ln.l1.write_allocate);
    EXPECT_TRUE(ln.l1.writeback_clean);
    EXPECT_EQ(ln.fabric.levels, 3u);
    EXPECT_EQ(ln.fabric.tile.size_bytes, 8_KiB);
    EXPECT_EQ(ln.fabric.tile.ways, 2u);
    EXPECT_EQ(ln.fabric.tile.block_bytes, 32u);
}

TEST(presets, dnuca_table1_parameters)
{
    const auto c = presets::dnuca_4x8();
    EXPECT_EQ(c.dnuca.bank_sets, 8u);
    EXPECT_EQ(c.dnuca.rows, 4u);
    EXPECT_EQ(c.dnuca.bank_bytes, 256_KiB);
    EXPECT_EQ(c.dnuca.bank_ways, 2u);
    EXPECT_EQ(c.dnuca.block_bytes, 128u);
    EXPECT_EQ(c.dnuca.router.virtual_channels, 4u);
}

TEST(presets, config_name_sizes)
{
    EXPECT_EQ(lnuca_config_name(2), "LN2-72KB");
    EXPECT_EQ(lnuca_config_name(3), "LN3-144KB");
    EXPECT_EQ(lnuca_config_name(4), "LN4-248KB");
}

struct run_case {
    const char* preset;
    const char* workload;
};

class system_smoke : public ::testing::TestWithParam<run_case> {};

system_config config_by_name(const std::string& name)
{
    if (name == "L2")
        return presets::l2_256kb();
    if (name == "LN2")
        return presets::lnuca_l3(2);
    if (name == "LN3")
        return presets::lnuca_l3(3);
    if (name == "DN")
        return presets::dnuca_4x8();
    return presets::lnuca_dnuca(2);
}

TEST_P(system_smoke, runs_and_reports)
{
    const auto param = GetParam();
    const auto workload = *wl::find_spec2006(param.workload);
    const auto result =
        run_one(config_by_name(param.preset), workload, 12000, 2000);
    EXPECT_GE(result.instructions, 12000u);
    EXPECT_LE(result.instructions, 12000u + 8);
    EXPECT_GT(result.ipc, 0.05);
    EXPECT_LT(result.ipc, 4.0);
    EXPECT_GT(result.cycles, 3000u);
    EXPECT_GT(result.energy.total(), 0.0);
    EXPECT_EQ(result.workload_name, param.workload);
}

INSTANTIATE_TEST_SUITE_P(
    matrix, system_smoke,
    ::testing::Values(run_case{"L2", "456.hmmer"}, run_case{"L2", "429.mcf"},
                      run_case{"LN2", "456.hmmer"}, run_case{"LN3", "429.mcf"},
                      run_case{"LN3", "470.lbm"}, run_case{"DN", "401.bzip2"},
                      run_case{"LN2+DN", "429.mcf"},
                      run_case{"LN2+DN", "433.milc"}));

TEST(system, deterministic_across_runs)
{
    const auto workload = *wl::find_spec2006("401.bzip2");
    const auto a = run_one(presets::lnuca_l3(3), workload, 8000, 1000, 42);
    const auto b = run_one(presets::lnuca_l3(3), workload, 8000, 1000, 42);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.ipc, b.ipc);
    EXPECT_EQ(a.fabric_read_hits, b.fabric_read_hits);
}

TEST(system, seed_changes_results)
{
    const auto workload = *wl::find_spec2006("401.bzip2");
    const auto a = run_one(presets::lnuca_l3(3), workload, 8000, 1000, 1);
    const auto b = run_one(presets::lnuca_l3(3), workload, 8000, 1000, 2);
    EXPECT_NE(a.cycles, b.cycles);
}

TEST(system, lnuca_reports_level_hits)
{
    const auto workload = *wl::find_spec2006("429.mcf");
    const auto r = run_one(presets::lnuca_l3(3), workload, 25000, 5000);
    ASSERT_EQ(r.fabric_read_hits.size(), 4u);
    EXPECT_GT(r.fabric_read_hits[2] + r.fabric_read_hits[3], 0u);
    EXPECT_GT(r.transport_min, 0u);
    EXPECT_GE(r.transport_actual, r.transport_min);
}

TEST(system, conventional_reports_l2_hits)
{
    const auto workload = *wl::find_spec2006("429.mcf");
    const auto r = run_one(presets::l2_256kb(), workload, 25000, 5000);
    EXPECT_GT(r.l2_read_hits, 0u);
    EXPECT_TRUE(r.fabric_read_hits.empty());
}

TEST(system, loads_distribute_across_levels)
{
    const auto workload = *wl::find_spec2006("429.mcf");
    const auto r = run_one(presets::lnuca_l3(3), workload, 25000, 5000);
    EXPECT_GT(r.loads_l1, 0u);
    EXPECT_GT(r.loads_fabric, 0u);
    EXPECT_GT(r.loads_l3 + r.loads_memory, 0u);
    EXPECT_EQ(r.loads_l2, 0u); // no L2 in this hierarchy
}

// ---------------------------------------------------------------------------
// Idle-skip engine: bit-identity with dense stepping (the refactor's core
// guarantee) across every preset hierarchy x a representative workload mix.
// ---------------------------------------------------------------------------

std::vector<system_config> all_presets()
{
    return {presets::l2_256kb(),     presets::lnuca_l3(2),
            presets::lnuca_l3(3),    presets::lnuca_l3(4),
            presets::dnuca_4x8(),    presets::lnuca_dnuca(2),
            presets::lnuca_dnuca(3), presets::lnuca_dnuca(4)};
}

struct engine_case {
    std::size_t config;
    const char* workload;
};

class engine_bit_identity : public ::testing::TestWithParam<engine_case> {};

TEST_P(engine_bit_identity, dense_and_idle_skip_agree_on_every_field)
{
    const auto param = GetParam();
    system_config config = all_presets()[param.config];
    const auto workload = *wl::find_spec2006(param.workload);

    config.engine_mode = sim::schedule_mode::dense;
    const auto dense = run_one(config, workload, 2500, 500, 7);
    config.engine_mode = sim::schedule_mode::idle_skip;
    const auto skip = run_one(config, workload, 2500, 500, 7);
    // Every simulation field, including the energy breakdown; only the
    // host-timing trio is excluded (nondeterministic by design).
    expect_sim_fields_identical(dense, skip);
    EXPECT_GT(skip.cycles, 0u);
}

// The full preset list crossed with an INT/FP, cache-friendly/memory-bound
// workload mix: the idle-heavy configs (conventional, D-NUCA) are where
// skipping is aggressive, the L-NUCA fabrics are where it is subtle.
INSTANTIATE_TEST_SUITE_P(
    presets_x_workloads, engine_bit_identity,
    ::testing::Values(
        engine_case{0, "456.hmmer"}, engine_case{0, "429.mcf"},
        engine_case{0, "470.lbm"}, engine_case{0, "433.milc"},
        engine_case{1, "456.hmmer"}, engine_case{1, "429.mcf"},
        engine_case{1, "470.lbm"}, engine_case{1, "433.milc"},
        engine_case{2, "456.hmmer"}, engine_case{2, "429.mcf"},
        engine_case{2, "470.lbm"}, engine_case{2, "433.milc"},
        engine_case{3, "456.hmmer"}, engine_case{3, "429.mcf"},
        engine_case{3, "470.lbm"}, engine_case{3, "433.milc"},
        engine_case{4, "456.hmmer"}, engine_case{4, "429.mcf"},
        engine_case{4, "470.lbm"}, engine_case{4, "433.milc"},
        engine_case{5, "456.hmmer"}, engine_case{5, "429.mcf"},
        engine_case{5, "470.lbm"}, engine_case{5, "433.milc"},
        engine_case{6, "456.hmmer"}, engine_case{6, "429.mcf"},
        engine_case{6, "470.lbm"}, engine_case{6, "433.milc"},
        engine_case{7, "456.hmmer"}, engine_case{7, "429.mcf"},
        engine_case{7, "470.lbm"}, engine_case{7, "433.milc"}));

TEST(engine_modes, paranoid_cross_check_passes_on_every_hierarchy_kind)
{
    // Dense stepping that digests component state across every cycle the
    // skip schedule would have jumped: a dishonest next_event() in any
    // component throws engine_paranoia_error.
    const auto workload = *wl::find_spec2006("429.mcf");
    for (std::size_t c : {std::size_t(0), std::size_t(2), std::size_t(4),
                          std::size_t(5)}) {
        system_config config = all_presets()[c];
        config.engine_mode = sim::schedule_mode::paranoid;
        EXPECT_NO_THROW(run_one(config, workload, 1500, 300, 11))
            << config.name;
    }
}

TEST(engine_modes, idle_skip_actually_skips_on_a_conventional_hierarchy)
{
    // The refactor's point: a memory-bound run on the conventional
    // hierarchy spends most cycles with every component idle.
    system_config config = presets::l2_256kb();
    config.engine_mode = sim::schedule_mode::idle_skip;
    system sys(config, *wl::find_spec2006("429.mcf"), 3);
    sys.run(4000, 800);
    EXPECT_GT(sys.engine().cycles_skipped(), 0u);
    EXPECT_EQ(sys.engine().cycles_executed() + sys.engine().cycles_skipped(),
              sys.engine().now());
}

TEST(engine_modes, host_throughput_fields_are_populated)
{
    const auto r = run_one(presets::l2_256kb(), *wl::find_spec2006("429.mcf"),
                           4000, 800, 3);
    EXPECT_GT(r.host_seconds, 0.0);
    EXPECT_GT(r.sim_cycles_per_second, 0.0);
    EXPECT_GT(r.sim_instructions_per_second, 0.0);
}

TEST(run_matrix, parallel_matches_serial)
{
    const std::vector<system_config> configs{presets::l2_256kb(),
                                             presets::lnuca_l3(2)};
    std::vector<wl::workload_profile> workloads{*wl::find_spec2006("456.hmmer"),
                                                *wl::find_spec2006("401.bzip2")};
    const auto matrix = run_matrix(configs, workloads, 6000, 1000, 9);
    ASSERT_EQ(matrix.size(), 2u);
    ASSERT_EQ(matrix[0].size(), 2u);
    // Each cell's seed derives from rng::split(base, config, workload, 0),
    // so the serial reproduction of cell (1, 0) uses that same lane.
    const auto serial =
        run_one(configs[1], workloads[0], 6000, 1000, rng::split(9, 1, 0, 0));
    EXPECT_EQ(matrix[1][0].cycles, serial.cycles);
    EXPECT_EQ(matrix[1][0].ipc, serial.ipc);
}

} // namespace
} // namespace lnuca::hier
