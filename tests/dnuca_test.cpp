// D-NUCA baseline: mapping, multicast search, promotion, tail insertion,
// write handling and the controller protocol.
#include "src/dnuca/dnuca_cache.h"
#include "src/sim/engine.h"

#include <gtest/gtest.h>

#include <map>

namespace lnuca::dnuca {
namespace {

struct recorder final : mem::mem_client {
    std::map<txn_id_t, mem::mem_response> responses;
    void respond(const mem::mem_response& r) override { responses[r.id] = r; }
};

struct stub_memory final : sim::ticked, mem::mem_port {
    bool can_accept(const mem::mem_request&) const override { return true; }
    void accept(const mem::mem_request& r) override
    {
        ++accepted;
        if (r.kind == mem::access_kind::read && r.needs_response)
            pending_.push(r.created_at + 100, r);
        if (r.kind == mem::access_kind::writeback)
            ++writebacks;
    }
    void tick(cycle_t now) override
    {
        while (auto r = pending_.pop_ready(now)) {
            mem::mem_response resp;
            resp.id = r->id;
            resp.addr = r->addr;
            resp.ready_at = now;
            resp.served_by = mem::service_level::memory;
            if (client)
                client->respond(resp);
        }
    }
    int accepted = 0;
    int writebacks = 0;
    mem::mem_client* client = nullptr;
    sim::timed_queue<mem::mem_request> pending_;
};

struct dnuca_fixture : ::testing::Test {
    void build()
    {
        cache = std::make_unique<dnuca_cache>(config, ids);
        memory = std::make_unique<stub_memory>();
        cache->set_upstream(&client);
        cache->set_downstream(memory.get());
        memory->client = cache.get();
        engine.add(*cache);
        engine.add(*memory);
    }

    txn_id_t read(addr_t addr)
    {
        mem::mem_request r;
        r.id = ids.next();
        r.addr = addr;
        r.size = 8;
        r.kind = mem::access_kind::read;
        r.created_at = engine.now();
        EXPECT_TRUE(cache->can_accept(r));
        cache->accept(r);
        return r.id;
    }

    void write(addr_t addr)
    {
        mem::mem_request r;
        r.id = ids.next();
        r.addr = addr;
        r.size = 8;
        r.kind = mem::access_kind::write;
        r.needs_response = false;
        r.created_at = engine.now();
        cache->accept(r);
    }

    dnuca_config config;
    mem::txn_id_source ids;
    recorder client;
    std::unique_ptr<dnuca_cache> cache;
    std::unique_ptr<stub_memory> memory;
    sim::engine engine;
};

TEST_F(dnuca_fixture, size_is_8mb)
{
    build();
    EXPECT_EQ(cache->size_bytes(), 8_MiB);
}

TEST_F(dnuca_fixture, miss_probes_all_rows_then_memory)
{
    build();
    const txn_id_t id = read(0x10000);
    engine.run(200);
    ASSERT_TRUE(client.responses.count(id));
    EXPECT_EQ(client.responses[id].served_by, mem::service_level::memory);
    EXPECT_EQ(cache->counters().get("bank_lookups"), config.rows);
    EXPECT_EQ(cache->counters().get("read_misses"), 1u);
    EXPECT_EQ(memory->accepted, 1);
}

TEST_F(dnuca_fixture, fill_then_hit_without_memory)
{
    build();
    const txn_id_t a = read(0x10000);
    engine.run(200);
    ASSERT_TRUE(client.responses.count(a));
    const txn_id_t b = read(0x10000);
    engine.run(80);
    ASSERT_TRUE(client.responses.count(b));
    EXPECT_EQ(client.responses[b].served_by, mem::service_level::dnuca);
    EXPECT_EQ(memory->accepted, 1);
    EXPECT_EQ(cache->counters().get("read_hits"), 1u);
}

TEST_F(dnuca_fixture, hit_is_much_faster_than_miss)
{
    build();
    cache->prewarm(0x20000);
    const cycle_t t0 = engine.now();
    const txn_id_t id = read(0x20000);
    engine.run_until([&] { return client.responses.count(id) > 0; }, 400);
    const cycle_t hit_latency = engine.now() - t0;
    EXPECT_LT(hit_latency, 60u);
    EXPECT_GT(hit_latency, 5u);
}

TEST_F(dnuca_fixture, promotion_moves_block_towards_controller)
{
    build();
    // Install at tail via memory fill, then hit it repeatedly: generational
    // promotion lifts it one row per hit until row 1.
    const txn_id_t a = read(0x30000);
    engine.run(200);
    ASSERT_TRUE(client.responses.count(a));
    for (int i = 0; i < int(config.rows); ++i) {
        read(0x30000);
        engine.run(120);
    }
    EXPECT_GT(cache->counters().get("promotions"), 0u);
    EXPECT_GT(cache->hits_in_row(1) + cache->hits_in_row(2), 0u);
}

TEST_F(dnuca_fixture, prewarm_spreads_rows_and_retains_window)
{
    build();
    // An 8MB-resident window must fit entirely.
    const std::uint64_t lines = cache->size_bytes() / config.block_bytes;
    for (std::uint64_t i = 0; i < lines; ++i)
        cache->prewarm(0x100000 + i * config.block_bytes);
    // Spot-check: random lines from the window hit without memory traffic.
    const txn_id_t id = read(0x100000 + 12345 * config.block_bytes);
    engine.run(120);
    ASSERT_TRUE(client.responses.count(id));
    EXPECT_EQ(client.responses[id].served_by, mem::service_level::dnuca);
    EXPECT_EQ(memory->accepted, 0);
}

TEST_F(dnuca_fixture, write_miss_installs_at_tail)
{
    build();
    write(0x40000);
    engine.run(120);
    EXPECT_EQ(cache->counters().get("write_installs"), 1u);
    // Subsequent read hits on-chip.
    const txn_id_t id = read(0x40000);
    engine.run(120);
    ASSERT_TRUE(client.responses.count(id));
    EXPECT_EQ(client.responses[id].served_by, mem::service_level::dnuca);
}

TEST_F(dnuca_fixture, write_hit_sets_dirty_and_acks)
{
    build();
    cache->prewarm(0x50000);
    write(0x50000);
    engine.run(120);
    EXPECT_EQ(cache->counters().get("bank_write_hits"), 1u);
    EXPECT_EQ(cache->counters().get("write_installs"), 0u);
}

TEST_F(dnuca_fixture, writes_coalesce_while_in_flight)
{
    build();
    write(0x60000);
    write(0x60008); // same 128B line, probe still in flight
    engine.run(120);
    EXPECT_EQ(cache->counters().get("writes_coalesced"), 1u);
    EXPECT_EQ(cache->counters().get("write_probes"), 1u);
}

TEST_F(dnuca_fixture, written_line_filter_absorbs_repeat_stores)
{
    build();
    cache->prewarm(0x70000);
    write(0x70000);
    engine.run(120); // resolves; line remembered as dirty
    write(0x70010);
    engine.run(20);
    EXPECT_EQ(cache->counters().get("writes_filtered"), 1u);
}

TEST_F(dnuca_fixture, mshr_merges_same_block_reads)
{
    build();
    const txn_id_t a = read(0x80000);
    engine.run(1);
    const txn_id_t b = read(0x80008);
    engine.run(250);
    EXPECT_TRUE(client.responses.count(a));
    EXPECT_TRUE(client.responses.count(b));
    EXPECT_EQ(memory->accepted, 1);
}

TEST_F(dnuca_fixture, column_mapping_uses_block_bits)
{
    build();
    // Blocks 128B apart map to consecutive columns; the bank-local address
    // round-trips through the remapping helpers.
    // (verified indirectly: filling one column's share does not evict
    // another column's lines)
    for (unsigned i = 0; i < 64; ++i)
        cache->prewarm(addr_t(i) * 128);
    const txn_id_t id = read(0x0);
    engine.run(120);
    ASSERT_TRUE(client.responses.count(id));
    EXPECT_EQ(client.responses[id].served_by, mem::service_level::dnuca);
}

TEST_F(dnuca_fixture, quiescent_after_drain)
{
    build();
    read(0x90000);
    write(0xa0000);
    engine.run(600);
    EXPECT_TRUE(cache->quiescent());
}

TEST_F(dnuca_fixture, row_hit_statistics_accumulate)
{
    build();
    cache->prewarm(0xb0000);
    read(0xb0000);
    engine.run(150);
    std::uint64_t total = 0;
    for (unsigned row = 1; row <= config.rows; ++row)
        total += cache->hits_in_row(row);
    EXPECT_EQ(total, 1u);
}

} // namespace
} // namespace lnuca::dnuca
