// Cross-module integration and property tests on whole-system runs.
#include "src/hier/presets.h"
#include "src/hier/system.h"
#include "src/workloads/spec2006.h"

#include <gtest/gtest.h>

namespace lnuca::hier {
namespace {

TEST(integration, fabric_exclusion_holds_during_full_system_run)
{
    const auto workload = *wl::find_spec2006("401.bzip2");
    system sys(presets::lnuca_l3(3), workload, 3);
    sys.core().set_instruction_limit(15000);
    // Step in slices and check a sample of blocks for duplicates.
    for (int slice = 0; slice < 30 && !sys.core().done(); ++slice) {
        sys.engine().run(500);
        auto* fab = sys.fabric();
        ASSERT_NE(fab, nullptr);
        for (addr_t block = 0x10000000; block < 0x10000000 + 64 * 32;
             block += 32)
            ASSERT_LE(fab->copies_of(block), 1u);
    }
}

TEST(integration, no_false_global_misses_full_system)
{
    const auto workload = *wl::find_spec2006("429.mcf");
    system sys(presets::lnuca_l3(3), workload, 4);
    sys.core().set_instruction_limit(30000);
    sys.engine().run_until([&] { return sys.core().done(); }, 5'000'000);
    EXPECT_TRUE(sys.core().done());
    EXPECT_EQ(sys.fabric()->counters().get("false_global_misses"), 0u);
    EXPECT_EQ(sys.fabric()->counters().get("install_conflicts"), 0u);
}

TEST(integration, loads_issued_eventually_complete)
{
    const auto workload = *wl::find_spec2006("470.lbm");
    const auto r = run_one(presets::lnuca_l3(2), workload, 20000, 4000);
    EXPECT_GE(r.instructions, 20000u);
    // Load service levels must cover (almost) all completed loads.
    const std::uint64_t served = r.loads_l1 + r.loads_fabric + r.loads_l2 +
                                 r.loads_l3 + r.loads_dnuca + r.loads_memory;
    EXPECT_GT(served, 0u);
}

TEST(integration, prewarm_keeps_memory_traffic_sane)
{
    // With the L3 prewarmed, a cache-friendly workload's memory traffic is
    // a small fraction of its loads.
    const auto workload = *wl::find_spec2006("456.hmmer");
    const auto r = run_one(presets::l2_256kb(), workload, 20000, 4000);
    EXPECT_LT(double(r.loads_memory),
              0.05 * double(r.loads_l1 + r.loads_l2 + r.loads_l3 + 1));
}

TEST(integration, lnuca_levels_nest)
{
    // Bigger fabrics serve at least as many loads from the fabric.
    const auto workload = *wl::find_spec2006("429.mcf");
    const auto ln2 = run_one(presets::lnuca_l3(2), workload, 25000, 5000);
    const auto ln4 = run_one(presets::lnuca_l3(4), workload, 25000, 5000);
    EXPECT_GT(ln4.loads_fabric, ln2.loads_fabric);
}

TEST(integration, transport_ratio_close_to_one)
{
    // Table III right: the custom topologies keep contention negligible.
    const auto workload = *wl::find_spec2006("433.milc");
    const auto r = run_one(presets::lnuca_l3(3), workload, 25000, 5000);
    ASSERT_GT(r.transport_min, 0u);
    const double ratio = double(r.transport_actual) / double(r.transport_min);
    EXPECT_GE(ratio, 1.0);
    EXPECT_LT(ratio, 1.10);
}

TEST(integration, search_restarts_are_rare)
{
    const auto workload = *wl::find_spec2006("470.lbm");
    const auto r = run_one(presets::lnuca_l3(3), workload, 25000, 5000);
    ASSERT_GT(r.searches, 0u);
    EXPECT_LT(double(r.search_restarts), 0.01 * double(r.searches));
}

TEST(integration, energy_breakdown_l3_dominates)
{
    const auto workload = *wl::find_spec2006("401.bzip2");
    const auto r = run_one(presets::lnuca_l3(3), workload, 15000, 3000);
    EXPECT_GT(r.energy.static_l3_j, r.energy.static_l1_j);
    EXPECT_GT(r.energy.static_l3_j, r.energy.static_storage_j);
}

struct workload_case {
    const char* name;
};

class all_configs_run : public ::testing::TestWithParam<workload_case> {};

TEST_P(all_configs_run, every_hierarchy_completes)
{
    const auto workload = *wl::find_spec2006(GetParam().name);
    for (const auto& config :
         {presets::l2_256kb(), presets::lnuca_l3(2), presets::lnuca_l3(3),
          presets::lnuca_l3(4), presets::dnuca_4x8(), presets::lnuca_dnuca(2),
          presets::lnuca_dnuca(3), presets::lnuca_dnuca(4)}) {
        const auto r = run_one(config, workload, 6000, 1000);
        EXPECT_GE(r.instructions, 6000u) << config.name;
        EXPECT_LE(r.instructions, 6008u) << config.name;
        EXPECT_GT(r.ipc, 0.02) << config.name;
    }
}

INSTANTIATE_TEST_SUITE_P(workloads, all_configs_run,
                         ::testing::Values(workload_case{"456.hmmer"},
                                           workload_case{"429.mcf"},
                                           workload_case{"462.libquantum"},
                                           workload_case{"470.lbm"},
                                           workload_case{"453.povray"}));

TEST(integration, lnuca_beats_baseline_on_fabric_friendly_load)
{
    // A workload whose reuse mass sits just beyond the L1 is the L-NUCA's
    // home turf: it must not lose to the conventional hierarchy.
    wl::workload_profile p = *wl::find_spec2006("429.mcf");
    p.reuse = {{0.55, 500}, {0.25, 1800}};
    p.p_new_block = 0.002;
    p.pointer_chase = 0.2;
    const auto base = run_one(presets::l2_256kb(), p, 60000, 25000);
    const auto ln = run_one(presets::lnuca_l3(3), p, 60000, 25000);
    EXPECT_GT(ln.ipc, 0.98 * base.ipc);
}

} // namespace
} // namespace lnuca::hier
