// MSHR file and write buffer unit tests.
//
// The MSHR file is a fixed slab with an open-addressed block index, pooled
// target storage and intrusive live/unissued lists; the tests below cover
// the slab-specific behaviour (slot reuse, release-while-iterating, the
// target-pool boundary) on top of the original functional contract.
#include "src/mem/mshr.h"
#include "src/mem/write_buffer.h"

#include <gtest/gtest.h>

#include <vector>

namespace lnuca::mem {
namespace {

TEST(mshr, allocate_find_release)
{
    mshr_file m(4, 4);
    EXPECT_TRUE(m.can_allocate());
    EXPECT_EQ(m.find(0x100), nullptr);
    auto& e = m.allocate(0x100, 5);
    EXPECT_EQ(e.block_addr, 0x100u);
    EXPECT_EQ(e.allocated_at, 5u);
    EXPECT_NE(m.find(0x100), nullptr);
    const auto released = m.release(0x100);
    ASSERT_TRUE(bool(released));
    EXPECT_EQ(released.block_addr, 0x100u);
    EXPECT_TRUE(m.empty());
    EXPECT_FALSE(bool(m.release(0x100)));
}

TEST(mshr, capacity_limit)
{
    mshr_file m(2, 4);
    m.allocate(0x0, 0);
    m.allocate(0x40, 0);
    EXPECT_FALSE(m.can_allocate());
    m.release(0x0);
    EXPECT_TRUE(m.can_allocate());
}

TEST(mshr, secondary_merge_limit)
{
    mshr_file m(2, 2);
    auto& e = m.allocate(0x100, 0);
    m.add_target(e, {1, 0x100, access_kind::read, 0});
    EXPECT_TRUE(m.can_merge(0x100));
    EXPECT_TRUE(m.merge(0x100, {2, 0x108, access_kind::read, 1}));
    EXPECT_FALSE(m.can_merge(0x100)); // 2 targets = limit
    EXPECT_FALSE(m.can_merge(0x999)); // absent block cannot merge
}

TEST(mshr, merge_into_absent_block_is_refused)
{
    // The old implementation dereferenced find()'s nullptr; merge now
    // reports the condition instead of crashing.
    mshr_file m(2, 2);
    EXPECT_FALSE(m.merge(0x500, {1, 0x500, access_kind::read, 0}));
    EXPECT_TRUE(m.empty());

    // A full entry refuses further merges the same way.
    auto& e = m.allocate(0x100, 0);
    m.add_target(e, {1, 0x100, access_kind::read, 0});
    m.add_target(e, {2, 0x104, access_kind::read, 0});
    EXPECT_FALSE(m.merge(0x100, {3, 0x108, access_kind::read, 1}));
    EXPECT_EQ(e.target_count, 2u);
}

TEST(mshr, zero_max_targets_still_stores_the_primary_target)
{
    // A "no secondary merges" configuration must still track the demand
    // access that allocated the entry (the old vector-backed file did).
    mshr_file m(2, 0);
    auto& e = m.allocate(0x100, 0);
    m.add_target(e, {1, 0x100, access_kind::read, 0});
    EXPECT_EQ(e.target_count, 1u);
    EXPECT_FALSE(m.can_merge(0x100));
    EXPECT_FALSE(m.merge(0x100, {2, 0x108, access_kind::read, 1}));
    const auto out = m.release(0x100);
    ASSERT_TRUE(bool(out));
    ASSERT_EQ(out.target_count, 1u);
    EXPECT_EQ(out.targets[0].id, 1u);
}

TEST(mshr, add_target_beyond_pool_boundary_throws)
{
    mshr_file m(2, 2);
    auto& e = m.allocate(0x100, 0);
    m.add_target(e, {1, 0x100, access_kind::read, 0});
    m.add_target(e, {2, 0x104, access_kind::read, 0});
    EXPECT_THROW(m.add_target(e, {3, 0x108, access_kind::read, 0}),
                 std::logic_error);
}

TEST(mshr, unissued_tracking)
{
    mshr_file m(4, 4);
    m.allocate(0x0, 0);
    auto& b = m.allocate(0x40, 0);
    EXPECT_TRUE(m.any_unissued());
    // Unissued entries iterate in allocation order.
    mshr_entry* first = m.first_unissued();
    ASSERT_NE(first, nullptr);
    EXPECT_EQ(first->block_addr, 0x0u);
    mshr_entry* second = m.next_unissued(*first);
    ASSERT_NE(second, nullptr);
    EXPECT_EQ(second->block_addr, 0x40u);
    EXPECT_EQ(m.next_unissued(*second), nullptr);

    m.mark_issued(b);
    EXPECT_TRUE(b.issued);
    first = m.first_unissued();
    ASSERT_NE(first, nullptr);
    EXPECT_EQ(first->block_addr, 0x0u);
    EXPECT_EQ(m.next_unissued(*first), nullptr);

    m.mark_issued(*first);
    EXPECT_FALSE(m.any_unissued());
}

TEST(mshr, release_preserves_targets)
{
    mshr_file m(4, 4);
    auto& e = m.allocate(0x100, 0);
    m.add_target(e, {1, 0x104, access_kind::read, 0});
    m.add_target(e, {2, 0x110, access_kind::write, 1});
    const auto out = m.release(0x100);
    ASSERT_TRUE(bool(out));
    ASSERT_EQ(out.target_count, 2u);
    EXPECT_EQ(out.targets[1].kind, access_kind::write);
}

TEST(mshr, slab_slot_reuse_resets_entry_state)
{
    mshr_file m(2, 2);
    auto& a = m.allocate(0x100, 7);
    m.add_target(a, {1, 0x100, access_kind::read, 7});
    m.mark_issued(a);
    const std::uint32_t slot_a = m.slot_of(a);
    m.release(0x100);

    // The freed slot is handed out again, fully reset.
    auto& b = m.allocate(0x200, 9);
    EXPECT_EQ(m.slot_of(b), slot_a);
    EXPECT_EQ(b.block_addr, 0x200u);
    EXPECT_FALSE(b.issued);
    EXPECT_EQ(b.target_count, 0u);
    EXPECT_EQ(b.allocated_at, 9u);
    EXPECT_TRUE(m.any_unissued());
    EXPECT_EQ(m.find(0x100), nullptr);
    EXPECT_EQ(m.find(0x200), &b);
}

TEST(mshr, release_while_iterating_live_list)
{
    mshr_file m(4, 2);
    m.allocate(0x000, 0);
    m.allocate(0x040, 1);
    m.allocate(0x080, 2);
    m.allocate(0x0c0, 3);

    // The component pattern: fetch next before releasing the current entry.
    std::vector<addr_t> visited;
    for (mshr_entry* e = m.first_live(); e != nullptr;) {
        mshr_entry* next = m.next_live(*e);
        visited.push_back(e->block_addr);
        if (e->block_addr == 0x040 || e->block_addr == 0x0c0)
            m.release(e->block_addr);
        e = next;
    }
    EXPECT_EQ(visited, (std::vector<addr_t>{0x000, 0x040, 0x080, 0x0c0}));
    EXPECT_EQ(m.in_use(), 2u);

    // Remaining entries keep allocation order.
    visited.clear();
    for (mshr_entry* e = m.first_live(); e != nullptr; e = m.next_live(*e))
        visited.push_back(e->block_addr);
    EXPECT_EQ(visited, (std::vector<addr_t>{0x000, 0x080}));
}

TEST(mshr, index_survives_collision_chains_across_release)
{
    // Stress the open-addressed index: fill, release from the middle of
    // probe chains, verify every remaining block stays findable.
    mshr_file m(8, 1);
    std::vector<addr_t> blocks;
    for (addr_t b = 0; b < 8; ++b)
        blocks.push_back(0x1000 + b * 0x40);
    for (const addr_t b : blocks)
        m.allocate(b, 0);
    for (std::size_t i = 0; i < blocks.size(); i += 2)
        EXPECT_TRUE(bool(m.release(blocks[i])));
    for (std::size_t i = 0; i < blocks.size(); ++i) {
        if (i % 2 == 0)
            EXPECT_EQ(m.find(blocks[i]), nullptr);
        else
            ASSERT_NE(m.find(blocks[i]), nullptr) << "block " << i;
    }
    // Refill the freed slots and check again.
    for (std::size_t i = 0; i < blocks.size(); i += 2)
        m.allocate(blocks[i], 1);
    for (const addr_t b : blocks)
        ASSERT_NE(m.find(b), nullptr);
    EXPECT_FALSE(m.can_allocate());
}

TEST(write_buffer, coalesces_same_block)
{
    write_buffer wb(2, 64);
    EXPECT_TRUE(wb.push(0x100, false, false));
    EXPECT_TRUE(wb.push(0x108, false, false)); // same 64B block
    EXPECT_EQ(wb.size(), 1u);
    EXPECT_TRUE(wb.push(0x200, true, true));
    EXPECT_EQ(wb.size(), 2u);
    EXPECT_TRUE(wb.full());
    EXPECT_FALSE(wb.push(0x300, false, false));
    EXPECT_TRUE(wb.push(0x130, false, false)); // coalesces into 0x100 block
}

TEST(write_buffer, contains_block_granularity)
{
    write_buffer wb(4, 64);
    wb.push(0x100, false, false);
    EXPECT_TRUE(wb.contains(0x100));
    EXPECT_TRUE(wb.contains(0x13f));
    EXPECT_FALSE(wb.contains(0x140));
}

TEST(write_buffer, head_flags_and_merge)
{
    write_buffer wb(4, 64);
    wb.push(0x100, false, false);
    EXPECT_FALSE(wb.head_is_writeback());
    EXPECT_FALSE(wb.head_is_dirty());
    wb.push(0x110, true, true); // merges: flags become sticky
    EXPECT_TRUE(wb.head_is_writeback());
    EXPECT_TRUE(wb.head_is_dirty());
}

TEST(write_buffer, fifo_drain_order)
{
    write_buffer wb(4, 64);
    wb.push(0x100, false, false);
    wb.push(0x200, false, false);
    ASSERT_EQ(*wb.head(), 0x100u);
    wb.pop();
    ASSERT_EQ(*wb.head(), 0x200u);
    wb.pop();
    EXPECT_TRUE(wb.empty());
    EXPECT_FALSE(wb.head().has_value());
}

} // namespace
} // namespace lnuca::mem
