// MSHR file and write buffer unit tests.
#include "src/mem/mshr.h"
#include "src/mem/write_buffer.h"

#include <gtest/gtest.h>

namespace lnuca::mem {
namespace {

TEST(mshr, allocate_find_release)
{
    mshr_file m(4, 4);
    EXPECT_TRUE(m.can_allocate());
    EXPECT_EQ(m.find(0x100), nullptr);
    auto& e = m.allocate(0x100, 5);
    EXPECT_EQ(e.block_addr, 0x100u);
    EXPECT_EQ(e.allocated_at, 5u);
    EXPECT_NE(m.find(0x100), nullptr);
    const auto released = m.release(0x100);
    ASSERT_TRUE(released.has_value());
    EXPECT_TRUE(m.empty());
    EXPECT_FALSE(m.release(0x100).has_value());
}

TEST(mshr, capacity_limit)
{
    mshr_file m(2, 4);
    m.allocate(0x0, 0);
    m.allocate(0x40, 0);
    EXPECT_FALSE(m.can_allocate());
    m.release(0x0);
    EXPECT_TRUE(m.can_allocate());
}

TEST(mshr, secondary_merge_limit)
{
    mshr_file m(2, 2);
    auto& e = m.allocate(0x100, 0);
    e.targets.push_back({1, 0x100, access_kind::read, 0});
    EXPECT_TRUE(m.can_merge(0x100));
    m.merge(0x100, {2, 0x108, access_kind::read, 1});
    EXPECT_FALSE(m.can_merge(0x100)); // 2 targets = limit
    EXPECT_FALSE(m.can_merge(0x999)); // absent block cannot merge
}

TEST(mshr, unissued_tracking)
{
    mshr_file m(4, 4);
    m.allocate(0x0, 0);
    auto& b = m.allocate(0x40, 0);
    EXPECT_EQ(m.unissued().size(), 2u);
    b.issued = true;
    EXPECT_EQ(m.unissued().size(), 1u);
    EXPECT_EQ(m.unissued()[0]->block_addr, 0x0u);
}

TEST(mshr, release_preserves_targets)
{
    mshr_file m(4, 4);
    auto& e = m.allocate(0x100, 0);
    e.targets.push_back({1, 0x104, access_kind::read, 0});
    e.targets.push_back({2, 0x110, access_kind::write, 1});
    const auto out = m.release(0x100);
    ASSERT_TRUE(out.has_value());
    ASSERT_EQ(out->targets.size(), 2u);
    EXPECT_EQ(out->targets[1].kind, access_kind::write);
}

TEST(write_buffer, coalesces_same_block)
{
    write_buffer wb(2, 64);
    EXPECT_TRUE(wb.push(0x100, false, false));
    EXPECT_TRUE(wb.push(0x108, false, false)); // same 64B block
    EXPECT_EQ(wb.size(), 1u);
    EXPECT_TRUE(wb.push(0x200, true, true));
    EXPECT_EQ(wb.size(), 2u);
    EXPECT_TRUE(wb.full());
    EXPECT_FALSE(wb.push(0x300, false, false));
    EXPECT_TRUE(wb.push(0x130, false, false)); // coalesces into 0x100 block
}

TEST(write_buffer, contains_block_granularity)
{
    write_buffer wb(4, 64);
    wb.push(0x100, false, false);
    EXPECT_TRUE(wb.contains(0x100));
    EXPECT_TRUE(wb.contains(0x13f));
    EXPECT_FALSE(wb.contains(0x140));
}

TEST(write_buffer, head_flags_and_merge)
{
    write_buffer wb(4, 64);
    wb.push(0x100, false, false);
    EXPECT_FALSE(wb.head_is_writeback());
    EXPECT_FALSE(wb.head_is_dirty());
    wb.push(0x110, true, true); // merges: flags become sticky
    EXPECT_TRUE(wb.head_is_writeback());
    EXPECT_TRUE(wb.head_is_dirty());
}

TEST(write_buffer, fifo_drain_order)
{
    write_buffer wb(4, 64);
    wb.push(0x100, false, false);
    wb.push(0x200, false, false);
    ASSERT_EQ(*wb.head(), 0x100u);
    wb.pop();
    ASSERT_EQ(*wb.head(), 0x200u);
    wb.pop();
    EXPECT_TRUE(wb.empty());
    EXPECT_FALSE(wb.head().has_value());
}

} // namespace
} // namespace lnuca::mem
