// Conventional cache behaviour: exact hit timing, miss path, MSHR merging,
// write policies, write buffers, banked ports.
#include "src/mem/cache.h"
#include "src/sim/engine.h"

#include <gtest/gtest.h>

#include <map>

namespace lnuca::mem {
namespace {

/// Records responses with their arrival cycle.
struct recorder final : mem_client {
    std::map<txn_id_t, mem_response> responses;
    std::map<txn_id_t, cycle_t> stamped;

    void respond(const mem_response& r) override
    {
        responses[r.id] = r;
        stamped[r.id] = r.ready_at;
    }
};

/// Downstream stub that answers reads after a fixed latency.
struct stub_memory final : sim::ticked, mem_port {
    explicit stub_memory(cycle_t latency) : latency_(latency) {}

    bool can_accept(const mem_request&) const override { return accepting; }
    void accept(const mem_request& r) override
    {
        ++accepted;
        if (r.kind == access_kind::read && r.needs_response)
            pending_.push(r.created_at + latency_, r);
        if (r.kind == access_kind::writeback)
            ++writebacks;
        if (r.kind == access_kind::write)
            ++writes;
    }
    void tick(cycle_t now) override
    {
        while (auto r = pending_.pop_ready(now)) {
            mem_response resp;
            resp.id = r->id;
            resp.addr = r->addr;
            resp.ready_at = now;
            resp.served_by = service_level::memory;
            if (client)
                client->respond(resp);
        }
    }

    cycle_t latency_;
    bool accepting = true;
    int accepted = 0;
    int writebacks = 0;
    int writes = 0;
    mem_client* client = nullptr;
    sim::timed_queue<mem_request> pending_;
};

struct cache_fixture : ::testing::Test {
    cache_fixture()
    {
        config.name = "test";
        config.size_bytes = 1_KiB;
        config.ways = 2;
        config.block_bytes = 32;
        config.completion_latency = 2;
        config.initiation_interval = 1;
        config.ports = 2;
        config.mshr_entries = 4;
        config.mshr_secondary = 2;
        config.write_buffer_entries = 4;
        config.level_tag = service_level::l2;
    }

    void build(cycle_t downstream_latency = 10)
    {
        cache = std::make_unique<conventional_cache>(config, ids);
        memory = std::make_unique<stub_memory>(downstream_latency);
        cache->set_upstream(&client);
        cache->set_downstream(memory.get());
        memory->client = cache.get();
        engine.add(*cache);
        engine.add(*memory);
    }

    txn_id_t read(addr_t addr)
    {
        mem_request r;
        r.id = ids.next();
        r.addr = addr;
        r.size = 8;
        r.kind = access_kind::read;
        r.created_at = engine.now();
        EXPECT_TRUE(cache->can_accept(r));
        cache->accept(r);
        return r.id;
    }

    txn_id_t write(addr_t addr, bool needs_response = true)
    {
        mem_request r;
        r.id = ids.next();
        r.addr = addr;
        r.size = 8;
        r.kind = access_kind::write;
        r.created_at = engine.now();
        EXPECT_TRUE(cache->can_accept(r));
        cache->accept(r);
        r.needs_response = needs_response;
        return r.id;
    }

    void writeback(addr_t addr, bool dirty)
    {
        mem_request r;
        r.id = ids.next();
        r.addr = addr;
        r.size = 32;
        r.kind = access_kind::writeback;
        r.needs_response = false;
        r.dirty = dirty;
        r.created_at = engine.now();
        cache->accept(r);
    }

    cache_config config;
    txn_id_source ids;
    recorder client;
    std::unique_ptr<conventional_cache> cache;
    std::unique_ptr<stub_memory> memory;
    sim::engine engine;
};

TEST_F(cache_fixture, hit_latency_is_completion_latency)
{
    build();
    // Preload via writeback (installs without fetch).
    writeback(0x100, false);
    engine.run(4);
    const cycle_t start = engine.now();
    const txn_id_t id = read(0x100);
    engine.run(8);
    ASSERT_TRUE(client.responses.count(id));
    // Stamped at start + completion - 1; observable one cycle later.
    EXPECT_EQ(client.stamped[id], start + config.completion_latency - 1);
    EXPECT_EQ(client.responses[id].served_by, service_level::l2);
}

TEST_F(cache_fixture, miss_goes_downstream_and_fills)
{
    build(10);
    const txn_id_t id = read(0x200);
    engine.run(40);
    ASSERT_TRUE(client.responses.count(id));
    EXPECT_EQ(client.responses[id].served_by, service_level::memory);
    EXPECT_EQ(memory->accepted, 1);
    // Second read is now a hit: no extra downstream traffic.
    const txn_id_t id2 = read(0x200);
    engine.run(8);
    ASSERT_TRUE(client.responses.count(id2));
    EXPECT_EQ(client.responses[id2].served_by, service_level::l2);
    EXPECT_EQ(memory->accepted, 1);
}

TEST_F(cache_fixture, secondary_misses_merge)
{
    build(20);
    const txn_id_t a = read(0x300);
    engine.run(1);
    const txn_id_t b = read(0x308); // same block
    engine.run(60);
    EXPECT_TRUE(client.responses.count(a));
    EXPECT_TRUE(client.responses.count(b));
    EXPECT_EQ(memory->accepted, 1); // one downstream fetch for both
    EXPECT_EQ(cache->counters().get("mshr_merge"), 1u);
}

TEST_F(cache_fixture, write_through_sends_word_downstream)
{
    config.write_through = true;
    build();
    const txn_id_t id = write(0x400);
    engine.run(10);
    EXPECT_TRUE(client.responses.count(id));
    EXPECT_EQ(memory->writes, 1);
    EXPECT_EQ(cache->counters().get("write_miss"), 1u);
    EXPECT_FALSE(cache->tags().probe(0x400).has_value()); // no allocation
}

TEST_F(cache_fixture, copy_back_write_allocates_and_dirties)
{
    build(10);
    const txn_id_t id = write(0x500);
    engine.run(40);
    EXPECT_TRUE(client.responses.count(id));
    const auto hit = cache->tags().probe(0x500);
    ASSERT_TRUE(hit.has_value());
    EXPECT_TRUE(hit->was_dirty);
}

TEST_F(cache_fixture, no_write_allocate_forwards_miss)
{
    config.write_allocate = false;
    build(10);
    const txn_id_t id = write(0x600);
    engine.run(20);
    EXPECT_TRUE(client.responses.count(id));
    EXPECT_FALSE(cache->tags().probe(0x600).has_value());
    EXPECT_EQ(memory->writes, 1);
    // A store *hit* stays local and dirties in place.
    writeback(0x700, false);
    engine.run(4);
    const txn_id_t id2 = write(0x700);
    engine.run(10);
    EXPECT_TRUE(client.responses.count(id2));
    EXPECT_TRUE(cache->tags().probe(0x700)->was_dirty);
    EXPECT_EQ(memory->writes, 1); // no new downstream write
}

TEST_F(cache_fixture, dirty_victim_writes_back)
{
    build(6);
    // Fill one set (2 ways; 8 sets for 1KB/32B/2w? sets=16).
    const std::uint32_t stride = cache->tags().sets() * 32;
    writeback(0x0, true);          // dirty line
    writeback(0x0 + stride, false);
    engine.run(4);
    // Displace: read a third block of the same set.
    read(0x0 + 2 * std::uint64_t(stride));
    engine.run(40);
    EXPECT_EQ(memory->writebacks, 1); // the dirty victim left
}

TEST_F(cache_fixture, clean_victims_forwarded_when_configured)
{
    config.writeback_clean = true;
    build(6);
    const std::uint32_t stride = cache->tags().sets() * 32;
    writeback(0x0, false); // clean
    writeback(0x0 + stride, false);
    engine.run(4);
    read(0x0 + 2 * std::uint64_t(stride));
    engine.run(40);
    EXPECT_GE(memory->writebacks, 1); // clean victim still forwarded
}

TEST_F(cache_fixture, reads_never_false_miss_behind_buffered_writes)
{
    // A read arriving just after a writeback must be served locally - the
    // data is in the input write buffer or freshly installed - and must
    // not trigger a downstream fetch.
    build(50);
    writeback(0x800, true);
    engine.run(1);
    const txn_id_t id = read(0x800);
    engine.run(8);
    ASSERT_TRUE(client.responses.count(id));
    EXPECT_EQ(client.responses[id].served_by, service_level::l2);
    EXPECT_EQ(memory->accepted, 0);
    EXPECT_GE(cache->counters().get("read_hit"), 1u);
}

TEST_F(cache_fixture, ports_throttle_reads)
{
    config.ports = 1;
    config.initiation_interval = 4;
    build();
    writeback(0x900, false);
    engine.run(6);
    read(0x900);
    mem_request r;
    r.id = ids.next();
    r.addr = 0x900;
    r.kind = access_kind::read;
    r.created_at = engine.now();
    EXPECT_FALSE(cache->can_accept(r)); // port busy for 4 cycles
    engine.run(4);
    r.created_at = engine.now();
    EXPECT_TRUE(cache->can_accept(r));
}

TEST_F(cache_fixture, banks_allow_parallel_access)
{
    config.ports = 1;
    config.banks = 2;
    config.initiation_interval = 8;
    build();
    // Two reads to different banks accepted in the same cycle.
    writeback(0x0, false);
    writeback(0x20, false); // next block -> other bank
    engine.run(24); // let the buffered writes drain and the banks go idle
    const cycle_t now = engine.now();
    mem_request a;
    a.id = ids.next();
    a.addr = 0x0;
    a.kind = access_kind::read;
    a.created_at = now;
    ASSERT_TRUE(cache->can_accept(a));
    cache->accept(a);
    mem_request b = a;
    b.id = ids.next();
    b.addr = 0x20;
    ASSERT_TRUE(cache->can_accept(b));
    cache->accept(b);
    // Same bank again: busy.
    mem_request c = a;
    c.id = ids.next();
    EXPECT_FALSE(cache->can_accept(c));
}

TEST_F(cache_fixture, untracked_response_is_ignored)
{
    build();
    mem_response bogus;
    bogus.id = 12345;
    bogus.addr = 0xabc;
    bogus.ready_at = engine.now();
    cache->respond(bogus);
    engine.run(4);
    EXPECT_EQ(cache->counters().get("untracked_response"), 1u);
    EXPECT_TRUE(client.responses.empty());
}

TEST_F(cache_fixture, mshr_full_retries_until_space)
{
    config.mshr_entries = 1;
    build(30);
    read(0x1000);
    engine.run(3);
    const txn_id_t second = read(0x2000); // different block: MSHR full
    engine.run(200);
    EXPECT_TRUE(client.responses.count(second));
    EXPECT_GT(cache->counters().get("mshr_full_stall"), 0u);
}

TEST_F(cache_fixture, quiescent_after_drain)
{
    build(10);
    read(0x100);
    write(0x200);
    engine.run(100);
    EXPECT_TRUE(cache->quiescent());
}

TEST_F(cache_fixture, response_propagates_origin_level)
{
    build(10);
    const txn_id_t id = read(0x300);
    engine.run(40);
    ASSERT_TRUE(client.responses.count(id));
    EXPECT_EQ(client.responses[id].served_by, service_level::memory);
}

} // namespace
} // namespace lnuca::mem
