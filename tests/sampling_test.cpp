// Sampled simulation: spec parsing, warm_access() functional contract,
// bit-identity of the non-sampled path, and sampled-run determinism across
// serial/parallel runner execution.
#include "src/coh/coherence_hub.h"
#include "src/coh/directory.h"
#include "src/exp/runner.h"
#include "src/exp/sweep.h"
#include "src/fabric/lnuca_cache.h"
#include "src/hier/presets.h"
#include "src/hier/system.h"
#include "src/mem/cache.h"
#include "src/trace/workload_spec.h"
#include "src/workloads/spec2006.h"
#include "tests/run_result_compare.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

namespace lnuca {
namespace {

// ---------------------------------------------------------------------------
// --sampling spec parsing.
// ---------------------------------------------------------------------------

TEST(sampling_spec, parses_off_and_periodic)
{
    const auto off = hier::parse_sampling_spec("off");
    ASSERT_TRUE(off.has_value());
    EXPECT_FALSE(off->enabled);

    const auto p = hier::parse_sampling_spec("periodic:2000:50000");
    ASSERT_TRUE(p.has_value());
    EXPECT_TRUE(p->enabled);
    EXPECT_EQ(p->detail_instructions, 2000u);
    EXPECT_EQ(p->period_instructions, 50000u);
    EXPECT_EQ(p->detail_warmup, 1000u); // defaults to detail / 2

    const auto q = hier::parse_sampling_spec("periodic:1500:30000:600");
    ASSERT_TRUE(q.has_value());
    EXPECT_EQ(q->detail_instructions, 1500u);
    EXPECT_EQ(q->period_instructions, 30000u);
    EXPECT_EQ(q->detail_warmup, 600u);
}

TEST(sampling_spec, rejects_malformed_input)
{
    EXPECT_FALSE(hier::parse_sampling_spec("").has_value());
    EXPECT_FALSE(hier::parse_sampling_spec("on").has_value());
    EXPECT_FALSE(hier::parse_sampling_spec("periodic").has_value());
    EXPECT_FALSE(hier::parse_sampling_spec("periodic:").has_value());
    EXPECT_FALSE(hier::parse_sampling_spec("periodic:2000").has_value());
    EXPECT_FALSE(hier::parse_sampling_spec("periodic:0:50000").has_value());
    EXPECT_FALSE(hier::parse_sampling_spec("periodic:2000:0").has_value());
    EXPECT_FALSE(hier::parse_sampling_spec("periodic:2000:1x").has_value());
    EXPECT_FALSE(
        hier::parse_sampling_spec("periodic:1:2:3:4").has_value());
}

// ---------------------------------------------------------------------------
// warm_access(): the functional twin of the timing paths.
// ---------------------------------------------------------------------------

TEST(warm_access, conventional_cache_installs_and_refreshes)
{
    mem::txn_id_source ids;
    mem::cache_config cfg;
    cfg.size_bytes = 1_KiB;
    cfg.ways = 2;
    cfg.block_bytes = 32;
    cfg.write_through = false;
    cfg.write_allocate = true;
    mem::conventional_cache cache(cfg, ids);

    cache.warm_access({0x1000, mem::access_kind::read, false});
    EXPECT_TRUE(cache.tags().probe(0x1000).has_value());
    // A warm store miss on a write-allocate cache installs dirty.
    cache.warm_access({0x2000, mem::access_kind::write, false});
    const auto hit = cache.tags().probe(0x2000);
    ASSERT_TRUE(hit.has_value());
    EXPECT_TRUE(hit->was_dirty);
    // Warming touches no counters and no timing state.
    EXPECT_EQ(cache.counters().get("accesses"), 0u);
    EXPECT_TRUE(cache.quiescent());
}

TEST(warm_access, dirty_victims_propagate_downstream)
{
    mem::txn_id_source ids;
    mem::cache_config l1c;
    l1c.size_bytes = 64; // one set, two ways of 32B: evicts immediately
    l1c.ways = 2;
    l1c.block_bytes = 32;
    l1c.write_through = false;
    l1c.write_allocate = true;
    mem::cache_config l2c;
    l2c.size_bytes = 1_KiB;
    l2c.ways = 4;
    l2c.block_bytes = 32;
    mem::conventional_cache l1(l1c, ids), l2(l2c, ids);
    l1.set_downstream(&l2);

    l1.warm_access({0x0, mem::access_kind::write, false});   // dirty in L1
    l1.warm_access({0x400, mem::access_kind::read, false});  // same set
    l1.warm_access({0x800, mem::access_kind::read, false});  // evicts 0x0
    EXPECT_FALSE(l1.tags().probe(0x0).has_value());
    // The dirty victim was warm-written back and installed below. (The two
    // read misses also warmed the L2 on their way down.)
    const auto below = l2.tags().probe(0x0);
    ASSERT_TRUE(below.has_value());
    EXPECT_TRUE(below->was_dirty);
    EXPECT_TRUE(l2.tags().probe(0x400).has_value());
}

TEST(warm_access, fabric_read_hit_preserves_content_exclusion)
{
    mem::txn_id_source ids;
    fabric::fabric_config fc;
    fc.levels = 3;
    fabric::lnuca_cache fabric(fc, ids);

    // A warm eviction installs the block into exactly one tile.
    fabric.warm_access({0x5000, mem::access_kind::writeback, true});
    EXPECT_EQ(fabric.copies_of(0x5000), 1u);
    // A warm read hit extracts it (the block moves up to the r-tile).
    fabric.warm_access({0x5000, mem::access_kind::read, false});
    EXPECT_EQ(fabric.copies_of(0x5000), 0u);
    EXPECT_EQ(fabric.counters().get("tile_tag_lookups"), 0u);
    EXPECT_TRUE(fabric.quiescent());
}

TEST(warm_access, fabric_full_level_dominoes_outwards)
{
    mem::txn_id_source ids;
    fabric::fabric_config fc;
    fc.levels = 2; // one ring of 5 tiles
    fc.tile.size_bytes = 64; // 2 sets x 1 way... keep ways=2: 1 set
    fc.tile.ways = 2;
    fc.tile.block_bytes = 32;
    fabric::lnuca_cache fabric(fc, ids);

    // 5 tiles x 2 ways of one set: 10 blocks fill the level; further
    // evictions must still land (dominoed victims leave the fabric).
    for (addr_t a = 0; a < 12; ++a)
        fabric.warm_access({a * 32, mem::access_kind::writeback, false});
    std::uint64_t resident = 0;
    for (addr_t a = 0; a < 12; ++a)
        resident += fabric.copies_of(a * 32);
    EXPECT_EQ(resident, 10u);
}

// ---------------------------------------------------------------------------
// The non-sampled path is bit-identical to the pre-sampling driver: with
// sampling off (explicitly or by default), every preset x workload produces
// exactly the idle_skip results.
// ---------------------------------------------------------------------------

std::vector<hier::system_config> all_presets()
{
    using namespace hier::presets;
    return {l2_256kb(),     lnuca_l3(2),    lnuca_l3(3), lnuca_l3(4),
            dnuca_4x8(),    lnuca_dnuca(2), lnuca_dnuca(3),
            lnuca_dnuca(4)};
}

TEST(sampling_off, bit_identical_to_idle_skip_on_every_preset)
{
    const char* workloads[] = {"456.hmmer", "429.mcf", "470.lbm", "433.milc"};
    for (const auto& preset : all_presets()) {
        for (const char* name : workloads) {
            const auto workload = *wl::find_spec2006(name);
            hier::system_config base = preset; // sampling defaults to off
            const auto plain = run_one(base, workload, 2500, 500, 7);

            hier::system_config off = preset;
            off.sampling = *hier::parse_sampling_spec("off");
            const auto explicit_off = run_one(off, workload, 2500, 500, 7);

            expect_sim_fields_identical(plain, explicit_off);
            EXPECT_FALSE(explicit_off.sampled) << preset.name << "/" << name;
        }
    }
}

// ---------------------------------------------------------------------------
// Sampled runs: determinism and basic statistical sanity.
// ---------------------------------------------------------------------------

hier::system_config sampled_config(hier::system_config config)
{
    config.sampling = *hier::parse_sampling_spec("periodic:1000:8000:400");
    return config;
}

TEST(sampled_run, reports_windows_and_confidence_interval)
{
    const auto workload = *wl::find_spec2006("429.mcf");
    const auto r = run_one(sampled_config(hier::presets::lnuca_l3(3)),
                           workload, 64000, 8000, 5);
    EXPECT_TRUE(r.sampled);
    EXPECT_EQ(r.sampled_windows, 8u);
    EXPECT_GE(r.measured_instructions, 8u * 1000u);
    EXPECT_GE(r.instructions, 64000u);
    EXPECT_GT(r.ipc, 0.05);
    EXPECT_LT(r.ipc, 4.0);
    EXPECT_GT(r.ipc_ci95, 0.0);
    EXPECT_GT(r.cycles, 0u);
    EXPECT_GT(r.energy.total(), 0.0);
    // Estimated load counts extrapolate the measured windows: roughly the
    // workload's load fraction of the full run, so far above the window
    // total alone.
    EXPECT_GT(r.loads_l1 + r.loads_fabric + r.loads_l3 + r.loads_memory,
              r.measured_instructions / 8);
}

TEST(sampled_run, same_seed_is_bit_identical_and_seeds_differ)
{
    const auto workload = *wl::find_spec2006("401.bzip2");
    const auto config = sampled_config(hier::presets::l2_256kb());
    const auto a = run_one(config, workload, 32000, 4000, 42);
    const auto b = run_one(config, workload, 32000, 4000, 42);
    expect_sim_fields_identical(a, b);
    const auto c = run_one(config, workload, 32000, 4000, 43);
    EXPECT_NE(a.cycles, c.cycles); // window placement + stream move together
}

TEST(sampled_run, serial_and_parallel_runner_agree)
{
    exp::sweep s;
    s.add_config(sampled_config(hier::presets::l2_256kb()))
        .add_config(sampled_config(hier::presets::lnuca_l3(2)))
        .add_config(sampled_config(hier::presets::dnuca_4x8()))
        .add_config(sampled_config(hier::presets::lnuca_dnuca(2)))
        .add_workload(*wl::find_spec2006("456.hmmer"))
        .add_workload(*wl::find_spec2006("470.lbm"))
        .instructions(24000)
        .warmup(3000)
        .base_seed(11);
    const exp::report serial = exp::run_sweep(s, {1});
    const exp::report parallel = exp::run_sweep(s, {8});
    ASSERT_EQ(serial.results.size(), 8u);
    ASSERT_EQ(parallel.results.size(), 8u);
    for (std::size_t i = 0; i < serial.results.size(); ++i) {
        EXPECT_TRUE(serial.results[i].sampled);
        expect_sim_fields_identical(serial.results[i], parallel.results[i]);
    }
}

// ---------------------------------------------------------------------------
// CMP warm coherence: the warm path applies the same MESI transitions the
// detailed transaction machinery would, synchronously and timing-free.
// ---------------------------------------------------------------------------

struct warm_cmp_harness {
    mem::txn_id_source ids;
    std::unique_ptr<coh::coherence_hub> hub;
    std::vector<std::unique_ptr<mem::conventional_cache>> l1s;
    std::unique_ptr<mem::conventional_cache> l2;

    warm_cmp_harness()
    {
        coh::coherence_config cc;
        cc.cores = 2;
        cc.block_bytes = 32;
        cc.directory_entries = 1024;
        hub = std::make_unique<coh::coherence_hub>(cc, ids);
        for (unsigned i = 0; i < 2; ++i) {
            mem::cache_config c;
            c.size_bytes = 1_KiB;
            c.ways = 2;
            c.block_bytes = 32;
            c.write_through = false;
            c.write_allocate = true;
            c.writeback_clean = true;
            c.coherent = true;
            c.core_id = mem::core_id_t(i);
            l1s.push_back(std::make_unique<mem::conventional_cache>(c, ids));
            l1s.back()->set_downstream(hub.get());
            hub->attach_l1(mem::core_id_t(i), l1s.back().get());
        }
        mem::cache_config l2c;
        l2c.size_bytes = 8_KiB;
        l2c.ways = 4;
        l2c.block_bytes = 32;
        l2 = std::make_unique<mem::conventional_cache>(l2c, ids);
        hub->set_downstream(l2.get());
    }

    mem::conventional_cache& l1(unsigned i) { return *l1s[i]; }
};

TEST(warm_cmp, warm_write_invalidates_remote_sharers)
{
    warm_cmp_harness h;
    // Both cores warm-read the block: S in both, directory tracks both.
    h.l1(0).warm_access({0x1000, mem::access_kind::read, false});
    h.l1(1).warm_access({0x1000, mem::access_kind::read, false});
    ASSERT_TRUE(h.l1(0).tags().probe(0x1000).has_value());
    ASSERT_TRUE(h.l1(1).tags().probe(0x1000).has_value());
    EXPECT_FALSE(h.l1(0).tags().is_exclusive(0x1000));
    h.hub->check_invariants();

    // Core 0 warm-writes: the remote copy must functionally invalidate and
    // the directory must record core 0 as the exclusive/modified owner.
    h.l1(0).warm_access({0x1000, mem::access_kind::write, false});
    EXPECT_FALSE(h.l1(1).tags().probe(0x1000).has_value());
    const auto hit = h.l1(0).tags().probe(0x1000);
    ASSERT_TRUE(hit.has_value());
    EXPECT_TRUE(hit->was_dirty);
    EXPECT_TRUE(h.l1(0).tags().is_exclusive(0x1000));
    const coh::dir_entry* e = h.hub->dir().find(0x1000);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->state, coh::dir_state::exclusive_modified);
    EXPECT_EQ(e->owner, mem::core_id_t(0));
    EXPECT_EQ(e->sharers, 1u);
    h.hub->check_invariants();
}

TEST(warm_cmp, warm_read_downgrades_owner_and_flushes_dirty_data)
{
    warm_cmp_harness h;
    // Core 0 warm-writes: M in core 0's L1. The RFO's backend fetch
    // warm-installed a clean copy in the shared level on the way.
    h.l1(0).warm_access({0x2000, mem::access_kind::write, false});
    EXPECT_TRUE(h.l1(0).tags().is_exclusive(0x2000));
    {
        const auto staged = h.l2->tags().probe(0x2000);
        ASSERT_TRUE(staged.has_value());
        EXPECT_FALSE(staged->was_dirty);
    }

    // Core 1 warm-reads: the owner downgrades to S (clean, no write
    // permission), the modified data flushes into the shared level, and
    // the requester installs a clean copy.
    h.l1(1).warm_access({0x2000, mem::access_kind::read, false});
    const auto owner = h.l1(0).tags().probe(0x2000);
    ASSERT_TRUE(owner.has_value());
    EXPECT_FALSE(owner->was_dirty);
    EXPECT_FALSE(h.l1(0).tags().is_exclusive(0x2000));
    const auto requester = h.l1(1).tags().probe(0x2000);
    ASSERT_TRUE(requester.has_value());
    EXPECT_FALSE(requester->was_dirty);
    EXPECT_FALSE(h.l1(1).tags().is_exclusive(0x2000));
    const auto below = h.l2->tags().probe(0x2000);
    ASSERT_TRUE(below.has_value());
    EXPECT_TRUE(below->was_dirty);
    const coh::dir_entry* e = h.hub->dir().find(0x2000);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->state, coh::dir_state::shared);
    EXPECT_EQ(e->sharers, 3u);
    h.hub->check_invariants();
}

TEST(warm_cmp, warm_writeback_releases_directory_state)
{
    warm_cmp_harness h;
    h.l1(0).warm_access({0x3000, mem::access_kind::write, false});
    // Conflicting fills in the same set evict 0x3000 (2-way, 1KiB, 32B:
    // set stride 0x400); the warm victim writeback must clear the sharer
    // bit and ownership so the directory never leaks entries.
    h.l1(0).warm_access({0x3400, mem::access_kind::read, false});
    h.l1(0).warm_access({0x3800, mem::access_kind::read, false});
    EXPECT_FALSE(h.l1(0).tags().probe(0x3000).has_value());
    const coh::dir_entry* e = h.hub->dir().find(0x3000);
    EXPECT_TRUE(e == nullptr || e->sharers == 0u);
    const auto below = h.l2->tags().probe(0x3000);
    ASSERT_TRUE(below.has_value());
    EXPECT_TRUE(below->was_dirty);
    h.hub->check_invariants();
}

// ---------------------------------------------------------------------------
// Sampled CMP runs: dispatch, determinism, paranoid invariants.
// ---------------------------------------------------------------------------

hier::system_config cmp_sampled_config()
{
    auto config = hier::presets::cmp(hier::presets::l2_256kb(), 2);
    config.sampling = *hier::parse_sampling_spec("periodic:1000:8000:400");
    return config;
}

TEST(sampled_cmp, reports_windows_and_per_core_ipc)
{
    const auto workload =
        *trace::parse_workload_spec("scenario:producer_consumer");
    const auto r = run_one(cmp_sampled_config(), workload, 32000, 4000, 5);
    EXPECT_TRUE(r.sampled);
    EXPECT_EQ(r.cores, 2u);
    ASSERT_EQ(r.per_core_ipc.size(), 2u);
    EXPECT_GT(r.per_core_ipc[0], 0.0);
    EXPECT_GT(r.per_core_ipc[1], 0.0);
    EXPECT_GT(r.sampled_windows, 0u);
    EXPECT_GT(r.ipc, 0.0);
    EXPECT_GT(r.ipc_ci95, 0.0);
}

TEST(sampled_cmp, same_seed_is_bit_identical)
{
    const auto workload = *wl::find_spec2006("429.mcf");
    const auto config = cmp_sampled_config();
    const auto a = run_one(config, workload, 24000, 3000, 42);
    const auto b = run_one(config, workload, 24000, 3000, 42);
    expect_sim_fields_identical(a, b);
}

TEST(sampled_cmp, sampling_off_matches_the_default_cmp_driver)
{
    const auto workload = *wl::find_spec2006("456.hmmer");
    const auto preset = hier::presets::cmp(hier::presets::lnuca_l3(3), 2);
    const auto plain = run_one(preset, workload, 2500, 500, 7);
    auto off = preset;
    off.sampling = *hier::parse_sampling_spec("off");
    const auto explicit_off = run_one(off, workload, 2500, 500, 7);
    expect_sim_fields_identical(plain, explicit_off);
    EXPECT_FALSE(explicit_off.sampled);
}

TEST(sampled_cmp, paranoid_engine_validates_every_warm_segment)
{
    // The paranoid schedule re-checks directory invariants after every
    // functional fast-forward; a warm MESI bug fails loudly here.
    auto config = cmp_sampled_config();
    config.engine_mode = sim::schedule_mode::paranoid;
    const auto workload = *trace::parse_workload_spec("scenario:ping_pong");
    const auto r = run_one(config, workload, 24000, 3000, 9);
    EXPECT_TRUE(r.sampled);
    EXPECT_EQ(r.cores, 2u);
}

TEST(sampled_run, ipc_tracks_the_full_fidelity_reference)
{
    // Statistical smoke test (the tight 3% gate lives in micro_sampling):
    // on a stationary workload the sampled estimate lands near the
    // full-fidelity IPC.
    const auto workload = *wl::find_spec2006("456.hmmer");
    const auto reference =
        run_one(hier::presets::l2_256kb(), workload, 60000, 10000, 3);
    auto config = hier::presets::l2_256kb();
    config.sampling = *hier::parse_sampling_spec("periodic:2000:10000:1000");
    const auto sampled = run_one(config, workload, 60000, 10000, 3);
    EXPECT_TRUE(sampled.sampled);
    EXPECT_LT(std::abs(sampled.ipc - reference.ipc) / reference.ipc, 0.10)
        << "sampled " << sampled.ipc << " vs reference " << reference.ipc;
}

} // namespace
} // namespace lnuca
