// Tag array and replacement policy behaviour, including property-style
// parameterised sweeps over cache geometries.
#include "src/mem/replacement.h"
#include "src/mem/tag_array.h"

#include <gtest/gtest.h>

namespace lnuca::mem {
namespace {

tag_array_config small_config()
{
    tag_array_config c;
    c.size_bytes = 1_KiB;
    c.ways = 2;
    c.block_bytes = 32;
    return c;
}

TEST(tag_array, geometry)
{
    tag_array t(small_config());
    EXPECT_EQ(t.sets(), 16u);
    EXPECT_EQ(t.ways(), 2u);
    EXPECT_EQ(t.block_bytes(), 32u);
    EXPECT_EQ(t.size_bytes(), 1_KiB);
}

TEST(tag_array, rejects_bad_geometry)
{
    tag_array_config c = small_config();
    c.block_bytes = 48; // not a power of two
    EXPECT_THROW(tag_array{c}, std::invalid_argument);
}

TEST(tag_array, block_alignment_and_sets)
{
    tag_array t(small_config());
    EXPECT_EQ(t.block_of(0x1234), 0x1220u);
    EXPECT_EQ(t.set_of(0x0), t.set_of(0x1f));  // same block
    EXPECT_NE(t.set_of(0x0), t.set_of(0x20));  // next block, next set
}

TEST(tag_array, miss_then_hit)
{
    tag_array t(small_config());
    EXPECT_FALSE(t.lookup(0x100).has_value());
    EXPECT_FALSE(t.install(0x100, false).has_value());
    const auto hit = t.lookup(0x100);
    ASSERT_TRUE(hit.has_value());
    EXPECT_FALSE(hit->was_dirty);
}

TEST(tag_array, install_duplicate_merges_dirty)
{
    tag_array t(small_config());
    t.install(0x100, false);
    EXPECT_FALSE(t.install(0x100, true).has_value());
    EXPECT_EQ(t.valid_count(), 1u);
    EXPECT_TRUE(t.probe(0x100)->was_dirty);
}

TEST(tag_array, set_dirty)
{
    tag_array t(small_config());
    t.install(0x100, false);
    t.set_dirty(0x100, true);
    EXPECT_TRUE(t.probe(0x100)->was_dirty);
    t.set_dirty(0x100, false);
    EXPECT_FALSE(t.probe(0x100)->was_dirty);
}

TEST(tag_array, eviction_returns_victim)
{
    tag_array t(small_config()); // 2 ways
    const addr_t s0a = 0x0, s0b = 0x200, s0c = 0x400; // same set (16 sets)
    ASSERT_EQ(t.set_of(s0a), t.set_of(s0b));
    ASSERT_EQ(t.set_of(s0a), t.set_of(s0c));
    t.install(s0a, true);
    t.install(s0b, false);
    const auto victim = t.install(s0c, false);
    ASSERT_TRUE(victim.has_value());
    EXPECT_EQ(victim->block_addr, s0a); // LRU
    EXPECT_TRUE(victim->dirty);
}

TEST(tag_array, lru_touch_protects)
{
    tag_array t(small_config());
    t.install(0x0, false);
    t.install(0x200, false);
    t.lookup(0x0); // make 0x200 the LRU
    const auto victim = t.install(0x400, false);
    ASSERT_TRUE(victim.has_value());
    EXPECT_EQ(victim->block_addr, 0x200u);
}

TEST(tag_array, extract_removes)
{
    tag_array t(small_config());
    t.install(0x100, true);
    const auto line = t.extract(0x100);
    ASSERT_TRUE(line.has_value());
    EXPECT_TRUE(line->dirty);
    EXPECT_FALSE(t.probe(0x100).has_value());
    EXPECT_FALSE(t.extract(0x100).has_value());
}

TEST(tag_array, set_has_free_way)
{
    tag_array t(small_config());
    EXPECT_TRUE(t.set_has_free_way(0x0));
    t.install(0x0, false);
    EXPECT_TRUE(t.set_has_free_way(0x0));
    t.install(0x200, false);
    EXPECT_FALSE(t.set_has_free_way(0x0));
    EXPECT_TRUE(t.set_has_free_way(0x20)); // different set untouched
}

TEST(tag_array, evict_victim_frees_way)
{
    tag_array t(small_config());
    t.install(0x0, false);
    t.install(0x200, true);
    t.lookup(0x200);
    const auto victim = t.evict_victim(0x0);
    EXPECT_EQ(victim.block_addr, 0x0u); // LRU of the set
    EXPECT_TRUE(t.set_has_free_way(0x0));
    EXPECT_EQ(t.valid_count(), 1u);
}

TEST(replacement, factory_names)
{
    EXPECT_EQ(make_replacement_policy("lru").name(), "lru");
    EXPECT_EQ(make_replacement_policy("random").name(), "random");
    EXPECT_EQ(make_replacement_policy("fifo").name(), "fifo");
    EXPECT_THROW(make_replacement_policy("plru"), std::invalid_argument);
}

TEST(replacement, fifo_cycles_in_order)
{
    fifo_policy p;
    p.resize(1, 4);
    EXPECT_EQ(p.victim(0), 0u);
    EXPECT_EQ(p.victim(0), 1u);
    EXPECT_EQ(p.victim(0), 2u);
    EXPECT_EQ(p.victim(0), 3u);
    EXPECT_EQ(p.victim(0), 0u);
}

TEST(replacement, random_within_ways)
{
    random_policy p(99);
    p.resize(1, 4);
    for (int i = 0; i < 100; ++i)
        EXPECT_LT(p.victim(0), 4u);
}

TEST(replacement, lru_full_order)
{
    lru_policy p;
    p.resize(1, 4);
    for (std::uint32_t w = 0; w < 4; ++w)
        p.touch(0, w);
    p.touch(0, 0); // order now: 1 (oldest), 2, 3, 0
    EXPECT_EQ(p.victim(0), 1u);
}

// ---- Property sweep over geometries -------------------------------------

struct geometry_param {
    std::uint64_t size;
    std::uint32_t ways;
    std::uint32_t block;
};

class tag_array_sweep : public ::testing::TestWithParam<geometry_param> {};

TEST_P(tag_array_sweep, fill_whole_array_without_eviction)
{
    const auto p = GetParam();
    tag_array t({p.size, p.ways, p.block, "lru", 1});
    const std::uint64_t lines = p.size / p.block;
    for (std::uint64_t i = 0; i < lines; ++i)
        EXPECT_FALSE(t.install(i * p.block, false).has_value());
    EXPECT_EQ(t.valid_count(), lines);
    // One more block per set must displace exactly one line each.
    for (std::uint64_t i = 0; i < t.sets(); ++i)
        EXPECT_TRUE(t.install((lines + i) * p.block, false).has_value());
    EXPECT_EQ(t.valid_count(), lines);
}

TEST_P(tag_array_sweep, lru_stack_property)
{
    const auto p = GetParam();
    tag_array t({p.size, p.ways, p.block, "lru", 1});
    // Within one set, accessing blocks in order and then re-filling evicts
    // in exactly LRU order.
    const std::uint32_t stride = t.sets() * p.block;
    std::vector<addr_t> blocks;
    for (std::uint32_t w = 0; w < p.ways; ++w) {
        blocks.push_back(addr_t(w) * stride);
        t.install(blocks.back(), false);
    }
    for (std::uint32_t w = 0; w < p.ways; ++w) {
        const auto victim = t.install((p.ways + w) * std::uint64_t(stride), false);
        ASSERT_TRUE(victim.has_value());
        EXPECT_EQ(victim->block_addr, blocks[w]);
    }
}

INSTANTIATE_TEST_SUITE_P(
    geometries, tag_array_sweep,
    ::testing::Values(geometry_param{1_KiB, 1, 32}, geometry_param{1_KiB, 2, 32},
                      geometry_param{8_KiB, 2, 32}, geometry_param{32_KiB, 4, 32},
                      geometry_param{256_KiB, 8, 64},
                      geometry_param{256_KiB, 2, 128},
                      geometry_param{8_MiB, 16, 128}));

} // namespace
} // namespace lnuca::mem
