// NoC substrate: synchronous FIFOs (On/Off link buffers) and the wormhole
// virtual-channel mesh used by the D-NUCA.
#include "src/noc/fifo.h"
#include "src/noc/vc_router.h"

#include <gtest/gtest.h>

namespace lnuca::noc {
namespace {

TEST(sync_fifo, staged_pushes_invisible_until_commit)
{
    sync_fifo<int> f(2);
    f.push(1);
    EXPECT_TRUE(f.empty());
    EXPECT_EQ(f.front(), nullptr);
    f.commit();
    EXPECT_EQ(f.size(), 1u);
    ASSERT_NE(f.front(), nullptr);
    EXPECT_EQ(*f.front(), 1);
}

TEST(sync_fifo, on_off_includes_staged)
{
    sync_fifo<int> f(2);
    EXPECT_TRUE(f.on());
    f.push(1);
    f.push(2);
    EXPECT_FALSE(f.on()); // staged occupancy counts
    f.commit();
    EXPECT_FALSE(f.on());
    f.pop();
    EXPECT_TRUE(f.on());
}

TEST(sync_fifo, fifo_order)
{
    sync_fifo<int> f(4);
    f.push(1);
    f.push(2);
    f.commit();
    EXPECT_EQ(*f.pop(), 1);
    EXPECT_EQ(*f.pop(), 2);
    EXPECT_FALSE(f.pop().has_value());
}

TEST(sync_fifo, find_sees_staged_and_committed)
{
    sync_fifo<int> f(4);
    f.push(1);
    f.commit();
    f.push(2);
    EXPECT_NE(f.find([](int v) { return v == 1; }), nullptr);
    EXPECT_NE(f.find([](int v) { return v == 2; }), nullptr); // staged
    EXPECT_EQ(f.find([](int v) { return v == 3; }), nullptr);
}

TEST(sync_fifo, extract_removes_matching)
{
    sync_fifo<int> f(4);
    f.push(1);
    f.push(2);
    f.commit();
    const auto got = f.extract([](int v) { return v == 2; });
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, 2);
    EXPECT_EQ(f.size(), 1u);
    EXPECT_FALSE(f.extract([](int v) { return v == 2; }).has_value());
}

TEST(sync_fifo, for_each_mutates)
{
    sync_fifo<int> f(4);
    f.push(1);
    f.commit();
    f.push(2);
    f.for_each([](int& v) { v *= 10; });
    EXPECT_EQ(*f.front(), 10);
    f.commit();
    f.pop();
    EXPECT_EQ(*f.front(), 20);
}

TEST(sync_fifo, capacity_edge_push_without_on_throws)
{
    sync_fifo<int> f(2);
    f.push(1);
    f.push(2);
    EXPECT_FALSE(f.on());
    // The push contract is "caller checked on()"; the ring enforces it
    // loudly instead of silently growing like the old deque.
    EXPECT_THROW(f.push(3), std::logic_error);
    f.commit();
    EXPECT_THROW(f.push(3), std::logic_error); // committed occupancy counts
    f.pop();
    f.push(3); // freed slot is usable again
    EXPECT_FALSE(f.on());
}

TEST(sync_fifo, capacity_one_ring_wraps)
{
    sync_fifo<int> f(1);
    for (int v = 0; v < 5; ++v) {
        EXPECT_TRUE(f.on());
        f.push(v);
        EXPECT_FALSE(f.on());
        EXPECT_TRUE(f.empty()); // staged, not visible
        f.commit();
        ASSERT_NE(f.front(), nullptr);
        EXPECT_EQ(*f.front(), v);
        EXPECT_EQ(*f.pop(), v);
    }
    EXPECT_TRUE(f.idle());
}

// ---------------------------------------------------------------------------
// Heap-fallback path: capacities above the inline small-buffer store their
// ring in one heap block. The buffer-depth ablation reaches depth 8 and the
// exit queue reaches 16, so the fallback is a real configuration - these
// tests pin down push/pop/commit ordering and the overflow throw on it.
// ---------------------------------------------------------------------------

TEST(sync_fifo, heap_fallback_push_pop_commit_ordering)
{
    sync_fifo<int> f(12); // > InlineCapacity (4): heap-backed ring
    EXPECT_EQ(f.capacity(), 12u);

    // Fill beyond the inline capacity in two staged batches; order must be
    // strict FIFO across the commit boundaries.
    for (int v = 0; v < 7; ++v)
        f.push(v);
    EXPECT_TRUE(f.empty()); // staged only
    f.commit();
    EXPECT_EQ(f.size(), 7u);
    for (int v = 7; v < 12; ++v)
        f.push(v);
    EXPECT_EQ(f.size(), 7u);        // second batch still staged
    EXPECT_EQ(f.total_size(), 12u); // but occupies capacity
    EXPECT_FALSE(f.on());
    f.commit();
    for (int v = 0; v < 12; ++v) {
        ASSERT_NE(f.front(), nullptr);
        EXPECT_EQ(*f.front(), v);
        EXPECT_EQ(*f.pop(), v);
    }
    EXPECT_TRUE(f.idle());

    // Wrap the heap ring several times over interleaved push/commit/pop.
    int pushed = 0, popped = 0;
    for (int round = 0; round < 9; ++round) {
        while (f.on())
            f.push(pushed++);
        f.commit();
        for (int n = 0; n < 5; ++n)
            EXPECT_EQ(*f.pop(), popped++);
    }
    f.commit();
    while (!f.empty())
        EXPECT_EQ(*f.pop(), popped++);
    EXPECT_EQ(popped, pushed);
}

TEST(sync_fifo, heap_fallback_push_without_on_throws)
{
    sync_fifo<int> f(12);
    for (int v = 0; v < 12; ++v)
        f.push(v);
    EXPECT_FALSE(f.on());
    EXPECT_THROW(f.push(99), std::logic_error); // staged occupancy counts
    f.commit();
    EXPECT_THROW(f.push(99), std::logic_error); // committed occupancy counts
    f.pop();
    f.push(99); // freed slot usable again, still heap-backed
    EXPECT_FALSE(f.on());
    f.commit();
    // FIFO order preserved around the overflow attempts.
    EXPECT_EQ(*f.pop(), 1);
}

TEST(sync_fifo, heap_fallback_find_and_extract)
{
    sync_fifo<int> f(10);
    for (int v = 0; v < 6; ++v)
        f.push(v * 10);
    f.commit();
    f.push(60);
    f.push(70); // staged
    ASSERT_NE(f.find([](int v) { return v == 70; }), nullptr); // sees staged
    const auto got = f.extract([](int v) { return v == 30; });
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, 30);
    f.commit();
    // Remaining committed order is preserved after the mid-ring extract.
    for (const int expect : {0, 10, 20, 40, 50, 60, 70})
        EXPECT_EQ(*f.pop(), expect);
    EXPECT_TRUE(f.idle());
}

TEST(sync_fifo, staged_commit_visibility_across_wrap)
{
    // Interleave pops and staged pushes so the ring head wraps repeatedly;
    // visibility must match the old deque semantics exactly.
    sync_fifo<int> f(2);
    int next_value = 0;
    int expected_head = next_value;
    f.push(next_value++);
    f.commit();
    for (int round = 0; round < 7; ++round) {
        f.push(next_value); // staged behind the visible head
        EXPECT_EQ(f.size(), 1u);
        EXPECT_EQ(f.total_size(), 2u);
        EXPECT_EQ(*f.pop(), expected_head); // only the committed entry pops
        EXPECT_FALSE(f.pop().has_value());  // staged one is not visible yet
        f.commit();
        expected_head = next_value++;
        ASSERT_NE(f.front(), nullptr);
        EXPECT_EQ(*f.front(), expected_head);
    }
}

TEST(sync_fifo, on_off_backpressure_parity_with_deque_semantics)
{
    // The On/Off signal counts committed + staged occupancy, exactly as the
    // deque-backed version did.
    sync_fifo<int> f(2);
    EXPECT_TRUE(f.on());
    f.push(1);
    EXPECT_TRUE(f.on()); // 1 staged of 2
    f.push(2);
    EXPECT_FALSE(f.on()); // staged occupancy counts
    f.commit();
    EXPECT_FALSE(f.on());
    f.pop();
    EXPECT_TRUE(f.on());
    f.push(3);
    EXPECT_FALSE(f.on()); // 1 committed + 1 staged
    EXPECT_EQ(f.size(), 1u);
    EXPECT_EQ(f.total_size(), 2u);
}

TEST(sync_fifo, heap_fallback_beyond_inline_slots)
{
    // Capacities above the inline small-buffer threshold still work (one
    // construction-time allocation, same semantics).
    sync_fifo<int> f(12);
    for (int v = 0; v < 12; ++v)
        f.push(v);
    EXPECT_FALSE(f.on());
    f.commit();
    for (int v = 0; v < 12; ++v)
        EXPECT_EQ(*f.pop(), v);
    EXPECT_TRUE(f.idle());
}

TEST(sync_fifo, extract_from_staged_region_after_wrap)
{
    sync_fifo<int> f(4);
    f.push(1);
    f.push(2);
    f.commit();
    f.pop(); // head advances: ring reads now wrap
    f.push(3);
    f.push(4);
    const auto got = f.extract([](int v) { return v == 3; }); // staged
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, 3);
    EXPECT_EQ(f.size(), 1u);       // 2 still visible
    EXPECT_EQ(f.total_size(), 2u); // 4 still staged
    f.commit();
    EXPECT_EQ(*f.pop(), 2);
    EXPECT_EQ(*f.pop(), 4);
}

flit make_flit(std::uint64_t packet, coord src, coord dst, std::uint16_t seq,
               std::uint16_t count)
{
    flit f;
    f.packet_id = packet;
    f.src = src;
    f.dst = dst;
    f.seq = seq;
    f.count = count;
    return f;
}

TEST(mesh, xy_routing_direction)
{
    EXPECT_EQ(mesh_network::route_xy({0, 0}, {3, 2}), port_dir::east);
    EXPECT_EQ(mesh_network::route_xy({3, 0}, {3, 2}), port_dir::north);
    EXPECT_EQ(mesh_network::route_xy({3, 2}, {0, 2}), port_dir::west);
    EXPECT_EQ(mesh_network::route_xy({3, 2}, {3, 0}), port_dir::south);
    EXPECT_EQ(mesh_network::route_xy({1, 1}, {1, 1}), port_dir::local);
}

TEST(mesh, single_flit_traverses_one_hop_per_cycle)
{
    mesh_network mesh({2, 4}, 4, 4);
    mesh.at({0, 0}).local_inject(0, make_flit(1, {0, 0}, {2, 1}, 0, 1));
    // Path: 2 east hops + 1 north + ejection. Route+traverse costs a cycle
    // per hop; give it the budget and verify delivery.
    cycle_t now = 0;
    std::optional<flit> got;
    for (int i = 0; i < 12 && !got; ++i) {
        mesh.step(now++);
        got = mesh.at({2, 1}).local_eject();
    }
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->packet_id, 1u);
    EXPECT_EQ(mesh.flit_hops(), 3u);
    EXPECT_TRUE(mesh.quiescent());
}

TEST(mesh, multi_flit_packet_stays_ordered)
{
    mesh_network mesh({2, 8}, 4, 4);
    for (std::uint16_t s = 0; s < 5; ++s)
        mesh.at({0, 0}).local_inject(0, make_flit(9, {0, 0}, {3, 3}, s, 5));
    cycle_t now = 0;
    std::vector<std::uint16_t> seqs;
    for (int i = 0; i < 60 && seqs.size() < 5; ++i) {
        mesh.step(now++);
        while (auto f = mesh.at({3, 3}).local_eject())
            seqs.push_back(f->seq);
    }
    ASSERT_EQ(seqs.size(), 5u);
    for (std::uint16_t s = 0; s < 5; ++s)
        EXPECT_EQ(seqs[s], s);
    EXPECT_TRUE(mesh.quiescent());
}

TEST(mesh, packets_do_not_interleave_within_a_vc)
{
    mesh_network mesh({1, 8}, 4, 1); // single VC forces wormhole ordering
    // Two 3-flit packets on the same VC, same path.
    for (std::uint16_t s = 0; s < 3; ++s)
        mesh.at({0, 0}).local_inject(0, make_flit(1, {0, 0}, {3, 0}, s, 3));
    cycle_t now = 0;
    std::vector<std::uint64_t> order;
    for (int i = 0; i < 8; ++i)
        mesh.step(now++);
    for (std::uint16_t s = 0; s < 3; ++s)
        if (mesh.at({0, 0}).local_can_accept(0))
            mesh.at({0, 0}).local_inject(0, make_flit(2, {0, 0}, {3, 0}, s, 3));
    for (int i = 0; i < 60; ++i) {
        mesh.step(now++);
        while (auto f = mesh.at({3, 0}).local_eject())
            order.push_back(f->packet_id);
    }
    ASSERT_EQ(order.size(), 6u);
    // All of packet 1 before any of packet 2.
    EXPECT_EQ(order[0], 1u);
    EXPECT_EQ(order[2], 1u);
    EXPECT_EQ(order[3], 2u);
}

TEST(mesh, backpressure_blocks_injection)
{
    mesh_network mesh({1, 2}, 2, 1); // 1 VC, 2-flit buffers
    auto& r = mesh.at({0, 0});
    int injected = 0;
    // Saturate: eject nothing at the destination.
    for (int i = 0; i < 32; ++i) {
        if (r.local_can_accept(0)) {
            r.local_inject(0, make_flit(std::uint64_t(100 + i), {0, 0}, {1, 0},
                                        0, 1));
            ++injected;
        }
        mesh.step(cycle_t(i));
    }
    // Buffers are finite and nothing drains the far side's ejection...
    // actually local ejection is automatic; flits pile only at (1,0)'s
    // ejected queue - so injection continues. Verify no flit was lost.
    std::size_t delivered = 0;
    while (mesh.at({1, 0}).local_eject())
        ++delivered;
    EXPECT_EQ(delivered + (mesh.quiescent() ? 0u : 1u) +
                  (injected > 0 ? 0u : 0u),
              delivered + (mesh.quiescent() ? 0u : 1u));
    EXPECT_GE(injected, 2);
}

TEST(mesh, router_counters_track_activity)
{
    mesh_network mesh({2, 4}, 3, 3);
    mesh.at({0, 0}).local_inject(0, make_flit(1, {0, 0}, {2, 2}, 0, 1));
    cycle_t now = 0;
    for (int i = 0; i < 16; ++i)
        mesh.step(now++);
    EXPECT_EQ(mesh.at({0, 0}).counters().get("injected"), 1u);
    EXPECT_GE(mesh.at({2, 2}).counters().get("ejected"), 0u);
}

} // namespace
} // namespace lnuca::noc
