// Checkpoint/restore (src/ckpt/ + hier::system + exp wiring): a run killed
// at an arbitrary snapshot and resumed must be bit-identical to the same
// run left uninterrupted, across backends, CMP, sampled fidelity and
// scenario (trace-lane) workloads; corrupt/truncated/foreign checkpoints
// must fall back to a cold start, never to wrong results.
//
// The kill is the deterministic in-process test hook
// (checkpoint_config::halt_after): after the Nth successful save the driver
// throws ckpt::interrupted exactly as a latched SIGTERM would. The
// reference run is the *same command with checkpointing enabled* left to
// finish — that is the documented contract (chunk-boundary drains are part
// of the checkpointed schedule).
#include "src/ckpt/format.h"
#include "src/ckpt/reader.h"
#include "src/ckpt/signal.h"
#include "src/exp/runner.h"
#include "src/exp/sink.h"
#include "src/exp/sweep.h"
#include "src/hier/presets.h"
#include "src/hier/system.h"
#include "src/trace/workload_spec.h"
#include "src/workloads/spec2006.h"
#include "tests/run_result_compare.h"

#include <gtest/gtest.h>

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <sys/stat.h>
#include <unistd.h>

namespace lnuca {
namespace {

std::string temp_path(const std::string& name)
{
    return ::testing::TempDir() + "lnuca_" + name;
}

bool file_exists(const std::string& path)
{
    return ::access(path.c_str(), F_OK) == 0;
}

/// The uninterrupted reference: same config, checkpointing enabled, never
/// killed. (Checkpointing itself must not change results either — the
/// completed run's snapshot is unlinked, which is also verified here.)
hier::run_result run_clean(hier::system_config config,
                           const wl::workload_profile& workload,
                           std::uint64_t instructions, std::uint64_t warmup,
                           std::uint64_t seed)
{
    const hier::run_result r =
        hier::run_one(config, workload, instructions, warmup, seed);
    EXPECT_FALSE(file_exists(config.checkpoint.path))
        << "completed run must unlink its snapshot";
    return r;
}

/// Kill at the halt_after'th save, then resume from the snapshot.
hier::run_result run_killed_and_resumed(hier::system_config config,
                                        const wl::workload_profile& workload,
                                        std::uint64_t instructions,
                                        std::uint64_t warmup,
                                        std::uint64_t seed,
                                        std::uint64_t halt_after)
{
    hier::system_config killed = config;
    killed.checkpoint.halt_after = halt_after;
    bool interrupted = false;
    try {
        hier::run_one(killed, workload, instructions, warmup, seed);
    } catch (const ckpt::interrupted& e) {
        interrupted = true;
        EXPECT_EQ(e.checkpoint_path, config.checkpoint.path);
    }
    EXPECT_TRUE(interrupted) << "halt_after=" << halt_after
                             << " never reached a save boundary";
    EXPECT_TRUE(file_exists(config.checkpoint.path));

    // The snapshot on disk must validate end to end (what `ckpt_tool
    // validate` runs).
    {
        const ckpt::reader r(config.checkpoint.path);
        EXPECT_GE(r.sections().size(), 5u);
    }

    hier::system_config resumed = config;
    resumed.checkpoint.resume = true;
    return hier::run_one(resumed, workload, instructions, warmup, seed);
}

hier::system_config with_checkpoint(hier::system_config config,
                                    const std::string& path,
                                    std::uint64_t every)
{
    config.checkpoint.path = path;
    config.checkpoint.every = every;
    std::remove(path.c_str());
    return config;
}

struct kill_case {
    const char* tag;
    std::uint64_t halt_after;
};

// ---------------------------------------------------------------------------
// Bit-identity: kill + resume == uninterrupted, across the matrix.
// ---------------------------------------------------------------------------

TEST(ckpt_identity, single_core_conventional_exact)
{
    const wl::workload_profile workload = *wl::find_spec2006("429.mcf");
    for (const kill_case c : {kill_case{"early", 1}, kill_case{"late", 3}}) {
        SCOPED_TRACE(c.tag);
        const hier::system_config config = with_checkpoint(
            hier::presets::l2_256kb(),
            temp_path(std::string("single_") + c.tag + ".ckpt"), 4000);
        const auto clean = run_clean(config, workload, 20'000, 2'000, 7);
        const auto resumed =
            run_killed_and_resumed(config, workload, 20'000, 2'000, 7,
                                   c.halt_after);
        expect_sim_fields_identical(clean, resumed);
    }
}

TEST(ckpt_identity, single_core_lnuca_paranoid_engine)
{
    // paranoid re-checks hub/engine invariants; on restore it additionally
    // runs the digest comparison against a freshly recomputed state_digest.
    hier::system_config base = hier::presets::lnuca_l3(3);
    base.engine_mode = sim::schedule_mode::paranoid;
    const hier::system_config config = with_checkpoint(
        base, temp_path("lnuca_paranoid.ckpt"), 5000);
    const wl::workload_profile workload = *wl::find_spec2006("456.hmmer");
    const auto clean = run_clean(config, workload, 18'000, 2'000, 11);
    const auto resumed =
        run_killed_and_resumed(config, workload, 18'000, 2'000, 11, 2);
    expect_sim_fields_identical(clean, resumed);
}

TEST(ckpt_identity, single_core_dnuca_exact)
{
    const hier::system_config config = with_checkpoint(
        hier::presets::dnuca_4x8(), temp_path("dnuca.ckpt"), 6000);
    const wl::workload_profile workload = *wl::find_spec2006("470.lbm");
    const auto clean = run_clean(config, workload, 18'000, 2'000, 3);
    const auto resumed =
        run_killed_and_resumed(config, workload, 18'000, 2'000, 3, 1);
    expect_sim_fields_identical(clean, resumed);
}

TEST(ckpt_identity, cmp_two_core_scenario_trace_lanes)
{
    // Scenario workloads replay shared-memory trace lanes, so this also
    // covers trace_stream cursor save/restore and the coherence hub +
    // directory sections.
    const auto workload = trace::parse_workload_spec("scenario:producer_consumer");
    ASSERT_TRUE(workload.has_value());
    const hier::system_config config = with_checkpoint(
        hier::presets::cmp(hier::presets::l2_256kb(), 2),
        temp_path("cmp_scenario.ckpt"), 3000);
    const auto clean = run_clean(config, *workload, 16'000, 2'000, 5);
    const auto resumed =
        run_killed_and_resumed(config, *workload, 16'000, 2'000, 5, 2);
    expect_sim_fields_identical(clean, resumed);
}

TEST(ckpt_identity, cmp_two_core_lnuca_exact)
{
    const hier::system_config config = with_checkpoint(
        hier::presets::cmp(hier::presets::lnuca_l3(2), 2),
        temp_path("cmp_lnuca.ckpt"), 4000);
    const wl::workload_profile workload = *wl::find_spec2006("429.mcf");
    const auto clean = run_clean(config, workload, 16'000, 2'000, 9);
    const auto resumed =
        run_killed_and_resumed(config, workload, 16'000, 2'000, 9, 1);
    expect_sim_fields_identical(clean, resumed);
}

TEST(ckpt_identity, sampled_single_core)
{
    hier::system_config base = hier::presets::l2_256kb();
    const auto sampling = hier::parse_sampling_spec("periodic:2000:8000:800");
    ASSERT_TRUE(sampling.has_value());
    base.sampling = *sampling;
    const wl::workload_profile workload = *wl::find_spec2006("429.mcf");
    for (const kill_case c : {kill_case{"w1", 1}, kill_case{"w2", 2}}) {
        SCOPED_TRACE(c.tag);
        const hier::system_config config = with_checkpoint(
            base, temp_path(std::string("sampled_") + c.tag + ".ckpt"),
            8000);
        const auto clean = run_clean(config, workload, 32'000, 2'000, 17);
        const auto resumed =
            run_killed_and_resumed(config, workload, 32'000, 2'000, 17,
                                   c.halt_after);
        ASSERT_TRUE(clean.sampled);
        expect_sim_fields_identical(clean, resumed);
    }
}

TEST(ckpt_identity, sampled_cmp_scenario)
{
    hier::system_config base = hier::presets::cmp(hier::presets::lnuca_l3(3), 2);
    const auto sampling = hier::parse_sampling_spec("periodic:1000:8000:400");
    ASSERT_TRUE(sampling.has_value());
    base.sampling = *sampling;
    const auto workload = trace::parse_workload_spec("scenario:producer_consumer");
    ASSERT_TRUE(workload.has_value());
    const hier::system_config config = with_checkpoint(
        base, temp_path("sampled_cmp.ckpt"), 8000);
    const auto clean = run_clean(config, *workload, 32'000, 4'000, 13);
    const auto resumed =
        run_killed_and_resumed(config, *workload, 32'000, 4'000, 13, 1);
    ASSERT_TRUE(clean.sampled);
    EXPECT_EQ(clean.cores, 2u);
    expect_sim_fields_identical(clean, resumed);
}

// ---------------------------------------------------------------------------
// Damage and mismatch: always a warned cold start, never wrong results.
// ---------------------------------------------------------------------------

/// Leave a valid snapshot at `config.checkpoint.path` by killing a run.
void leave_snapshot(const hier::system_config& config,
                    const wl::workload_profile& workload,
                    std::uint64_t instructions, std::uint64_t warmup,
                    std::uint64_t seed)
{
    hier::system_config killed = config;
    killed.checkpoint.halt_after = 1;
    try {
        hier::run_one(killed, workload, instructions, warmup, seed);
        FAIL() << "expected ckpt::interrupted";
    } catch (const ckpt::interrupted&) {
    }
    ASSERT_TRUE(file_exists(config.checkpoint.path));
}

TEST(ckpt_damage, corrupt_byte_falls_back_to_cold_start)
{
    const hier::system_config config = with_checkpoint(
        hier::presets::l2_256kb(), temp_path("corrupt.ckpt"), 4000);
    const wl::workload_profile workload = *wl::find_spec2006("429.mcf");
    const auto clean = run_clean(config, workload, 12'000, 1'000, 7);

    leave_snapshot(config, workload, 12'000, 1'000, 7);
    {
        // Flip one payload byte mid-file: a section CRC must catch it.
        std::fstream f(config.checkpoint.path,
                       std::ios::in | std::ios::out | std::ios::binary);
        ASSERT_TRUE(f.good());
        f.seekg(0, std::ios::end);
        const std::streamoff size = f.tellg();
        ASSERT_GT(size, 128);
        f.seekp(size / 2);
        char byte = 0;
        f.seekg(size / 2);
        f.read(&byte, 1);
        byte = char(byte ^ 0x40);
        f.seekp(size / 2);
        f.write(&byte, 1);
    }
    EXPECT_THROW(ckpt::reader r(config.checkpoint.path), ckpt::ckpt_error);

    hier::system_config resumed = config;
    resumed.checkpoint.resume = true;
    const auto r = hier::run_one(resumed, workload, 12'000, 1'000, 7);
    expect_sim_fields_identical(clean, r); // cold start, full re-run
}

TEST(ckpt_damage, truncated_file_falls_back_to_cold_start)
{
    const hier::system_config config = with_checkpoint(
        hier::presets::l2_256kb(), temp_path("truncated.ckpt"), 4000);
    const wl::workload_profile workload = *wl::find_spec2006("429.mcf");
    const auto clean = run_clean(config, workload, 12'000, 1'000, 7);

    leave_snapshot(config, workload, 12'000, 1'000, 7);
    {
        std::ifstream in(config.checkpoint.path, std::ios::binary);
        std::string bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
        ASSERT_GT(bytes.size(), 200u);
        std::ofstream out(config.checkpoint.path,
                          std::ios::binary | std::ios::trunc);
        out.write(bytes.data(), std::streamsize(bytes.size() / 3));
    }
    EXPECT_THROW(ckpt::reader r(config.checkpoint.path), ckpt::ckpt_error);

    hier::system_config resumed = config;
    resumed.checkpoint.resume = true;
    const auto r = hier::run_one(resumed, workload, 12'000, 1'000, 7);
    expect_sim_fields_identical(clean, r);
}

TEST(ckpt_damage, foreign_run_checkpoint_is_rejected_cold)
{
    // A snapshot from seed 7 must not restore into a seed 8 run: the
    // config hash differs, so the restore is rejected before any state is
    // touched and the seed-8 run proceeds cold.
    const hier::system_config config = with_checkpoint(
        hier::presets::l2_256kb(), temp_path("foreign.ckpt"), 4000);
    const wl::workload_profile workload = *wl::find_spec2006("429.mcf");
    const auto clean8 = run_clean(config, workload, 12'000, 1'000, 8);

    leave_snapshot(config, workload, 12'000, 1'000, 7);
    hier::system_config resumed = config;
    resumed.checkpoint.resume = true;
    const auto r = hier::run_one(resumed, workload, 12'000, 1'000, 8);
    expect_sim_fields_identical(clean8, r);
}

TEST(ckpt_damage, shorter_run_rejects_longer_runs_snapshot)
{
    // Same config and seed but a different requested run length: the meta
    // section mismatch must force a cold start (a 12k snapshot cursor
    // inside an 8k run would be past the end).
    const hier::system_config config = with_checkpoint(
        hier::presets::l2_256kb(), temp_path("meta_mismatch.ckpt"), 3000);
    const wl::workload_profile workload = *wl::find_spec2006("429.mcf");
    const auto clean = run_clean(config, workload, 8'000, 1'000, 7);

    leave_snapshot(config, workload, 12'000, 1'000, 7);
    hier::system_config resumed = config;
    resumed.checkpoint.resume = true;
    const auto r = hier::run_one(resumed, workload, 8'000, 1'000, 7);
    expect_sim_fields_identical(clean, r);
}

// ---------------------------------------------------------------------------
// exp wiring: execute_job stamps per-job checkpoint files, interruption
// becomes a structured row, resume completes bit-identically.
// ---------------------------------------------------------------------------

exp::job make_job(const hier::system_config& config,
                  const wl::workload_profile& workload,
                  std::uint64_t instructions, std::uint64_t warmup)
{
    exp::job j;
    j.config = config;
    j.workload = workload;
    j.instructions = instructions;
    j.warmup = warmup;
    j.seed = 21;
    return j;
}

TEST(ckpt_exp, execute_job_interrupt_then_resume_is_bit_identical)
{
    const std::string dir = temp_path("jobs_ckpt_d");
    ASSERT_TRUE(::mkdir(dir.c_str(), 0755) == 0 || errno == EEXIST);
    const std::string job_path = dir + "/job_0.ckpt";
    std::remove(job_path.c_str());

    const wl::workload_profile workload = *wl::find_spec2006("429.mcf");
    exp::run_options opt;
    opt.checkpoint_dir = dir;
    opt.checkpoint_every = 4000;

    // Reference: the same stamped job left uninterrupted.
    exp::job clean_job = make_job(hier::presets::l2_256kb(), workload,
                                  20'000, 2'000);
    const hier::run_result clean = exp::execute_job(clean_job, opt);
    ASSERT_EQ(clean.status, hier::run_status::ok);
    EXPECT_FALSE(file_exists(job_path));

    // Interrupted job: halt_after survives the stamping (execute_job only
    // overrides path/every/resume), so the attempt throws ckpt::interrupted
    // and the runner converts it into a structured failed row.
    exp::job killed_job = clean_job;
    killed_job.config.checkpoint.halt_after = 2;
    const hier::run_result killed = exp::execute_job(killed_job, opt);
    EXPECT_EQ(killed.status, hier::run_status::failed);
    EXPECT_NE(killed.error.find("interrupted by signal"), std::string::npos);
    EXPECT_TRUE(file_exists(job_path));

    // Resume: restores the snapshot and finishes identically.
    opt.checkpoint_resume = true;
    const hier::run_result resumed = exp::execute_job(clean_job, opt);
    ASSERT_EQ(resumed.status, hier::run_status::ok);
    expect_sim_fields_identical(clean, resumed);
    EXPECT_FALSE(file_exists(job_path));
}

TEST(ckpt_exp, clean_sweep_has_no_abandoned_workers_or_sink_failures)
{
    exp::sweep s;
    s.add_config(hier::presets::l2_256kb())
        .add_workload(*wl::find_spec2006("429.mcf"))
        .add_workload(*wl::find_spec2006("456.hmmer"))
        .instructions(4'000)
        .warmup(500)
        .base_seed(3);
    const exp::report rep = exp::run_sweep(s, exp::run_options{2});
    ASSERT_EQ(rep.results.size(), 2u);
    for (const auto& r : rep.results)
        EXPECT_EQ(r.status, hier::run_status::ok);
    EXPECT_EQ(rep.abandoned_workers, 0u);
    EXPECT_EQ(rep.sink_failures, 0u);
}

// ---------------------------------------------------------------------------
// Sink durability: failed writes/fsyncs throw sink_error instead of
// silently dropping rows, and run_sweep survives by disabling the sink.
// ---------------------------------------------------------------------------

TEST(ckpt_sink, unopenable_path_reports_not_ok)
{
    exp::jsonl_sink sink(temp_path("no_such_dir") + "/x.jsonl", 1, 0);
    EXPECT_FALSE(sink.ok());
}

TEST(ckpt_sink, failed_write_throws_sink_error_naming_the_row)
{
    // /dev/full accepts the open and fails every write with ENOSPC — the
    // "disk filled mid-sweep" case. Skip quietly where it is absent.
    if (::access("/dev/full", W_OK) != 0)
        GTEST_SKIP() << "/dev/full not available";
    exp::jsonl_sink sink("/dev/full", 1, 0);
    ASSERT_TRUE(sink.ok());
    exp::job j;
    j.config = hier::presets::l2_256kb();
    hier::run_result r;
    r.config_name = "cfg";
    r.workload_name = "wl";
    try {
        sink.consume(j, r); // flush_rows=1: flushes (and fails) right here
        FAIL() << "expected sink_error";
    } catch (const exp::sink_error& e) {
        EXPECT_NE(std::string(e.what()).find("row 0"), std::string::npos);
    }
    // The failed batch was dropped: destruction must not throw again.
}

TEST(ckpt_sink, run_sweep_disables_failed_sink_and_counts_it)
{
    if (::access("/dev/full", W_OK) != 0)
        GTEST_SKIP() << "/dev/full not available";
    exp::jsonl_sink bad("/dev/full", 1, 0);
    ASSERT_TRUE(bad.ok());
    exp::sweep s;
    s.add_config(hier::presets::l2_256kb())
        .add_workload(*wl::find_spec2006("429.mcf"))
        .instructions(2'000)
        .warmup(200);
    const exp::report rep =
        exp::run_sweep(s, exp::run_options{1}, {&bad});
    ASSERT_EQ(rep.results.size(), 1u);
    EXPECT_EQ(rep.results[0].status, hier::run_status::ok); // jobs unharmed
    EXPECT_EQ(rep.sink_failures, 1u);
}

// ---------------------------------------------------------------------------
// Signal latch plumbing (the real SIGTERM path minus the signal itself).
// ---------------------------------------------------------------------------

TEST(ckpt_signal, latch_reports_signal_and_clears)
{
    ckpt::install_signal_handlers();
    EXPECT_FALSE(ckpt::interrupt_requested());
    ::raise(SIGTERM);
    EXPECT_TRUE(ckpt::interrupt_requested());
    EXPECT_EQ(ckpt::interrupt_signal(), SIGTERM);
    ckpt::clear_interrupt();
    EXPECT_FALSE(ckpt::interrupt_requested());
}

TEST(ckpt_signal, latched_signal_saves_at_next_boundary_and_interrupts)
{
    ckpt::install_signal_handlers();
    const hier::system_config config = with_checkpoint(
        hier::presets::l2_256kb(), temp_path("signal.ckpt"), 4000);
    const wl::workload_profile workload = *wl::find_spec2006("429.mcf");
    const auto clean = run_clean(config, workload, 20'000, 2'000, 7);

    ::raise(SIGTERM);
    bool interrupted = false;
    try {
        hier::run_one(config, workload, 20'000, 2'000, 7);
    } catch (const ckpt::interrupted&) {
        interrupted = true;
    }
    ckpt::clear_interrupt();
    EXPECT_TRUE(interrupted);
    EXPECT_TRUE(file_exists(config.checkpoint.path));

    hier::system_config resumed = config;
    resumed.checkpoint.resume = true;
    const auto r = hier::run_one(resumed, workload, 20'000, 2'000, 7);
    expect_sim_fields_identical(clean, r);
}

} // namespace
} // namespace lnuca
