// Trace subsystem: binary format round trips, open-time validation,
// capture -> replay bit-identity (single-core, CMP, and sampled), trace
// stream warm/next positioning, the scenario library's determinism and
// sharing structure, workload-spec parsing, and - the coherence payoff -
// a hand-built store ping-pong trace whose MESI hub counters are exactly
// predictable.
#include "src/hier/presets.h"
#include "src/hier/system.h"
#include "src/trace/scenarios.h"
#include "src/trace/trace_data.h"
#include "src/trace/trace_stream.h"
#include "src/trace/trace_writer.h"
#include "src/trace/workload_spec.h"
#include "src/workloads/spec2006.h"
#include "tests/run_result_compare.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

namespace lnuca {
namespace {

std::string temp_path(const std::string& name)
{
    return ::testing::TempDir() + "lnuca_" + name;
}

cpu::instruction make_inst(cpu::op_class op, addr_t pc, addr_t addr = 0,
                           std::uint32_t dep0 = 0, bool taken = false)
{
    cpu::instruction inst;
    inst.op = op;
    inst.pc = pc;
    inst.addr = addr;
    inst.taken = taken;
    inst.dep[0] = dep0;
    return inst;
}

bool same_record(const trace::trace_record& a, const trace::trace_record& b)
{
    return a.pc == b.pc && a.addr == b.addr && a.dep0 == b.dep0 &&
           a.dep1 == b.dep1 && a.op == b.op && a.size == b.size &&
           a.taken == b.taken;
}

TEST(trace_format, encode_decode_round_trip)
{
    cpu::instruction inst = make_inst(cpu::op_class::load, 0x400123,
                                      0x7000'0040, 3, false);
    inst.dep[1] = 7;
    inst.size = 4;
    const cpu::instruction back = trace::decode(trace::encode(inst));
    EXPECT_EQ(back.op, inst.op);
    EXPECT_EQ(back.pc, inst.pc);
    EXPECT_EQ(back.addr, inst.addr);
    EXPECT_EQ(back.size, inst.size);
    EXPECT_EQ(back.taken, inst.taken);
    EXPECT_EQ(back.dep[0], inst.dep[0]);
    EXPECT_EQ(back.dep[1], inst.dep[1]);
}

TEST(trace_format, writer_reader_round_trip)
{
    const std::string path = temp_path("round_trip.trace");
    trace::trace_writer writer(path, "unit-mix", true, 2);
    std::vector<trace::trace_record> lane0, lane1;
    for (unsigned i = 0; i < 100; ++i) {
        const auto op = i % 3 == 0 ? cpu::op_class::load
                                   : i % 3 == 1 ? cpu::op_class::store
                                                : cpu::op_class::int_alu;
        const cpu::instruction inst =
            make_inst(op, 0x1000 + 4 * i, 0x2000 + 32 * i, i % 5);
        writer.append(0, inst);
        lane0.push_back(trace::encode(inst));
    }
    const cpu::instruction one =
        make_inst(cpu::op_class::branch, 0x9000, 0, 0, true);
    writer.append(1, one);
    lane1.push_back(trace::encode(one));
    writer.set_warm_table(0, {0x2000, 0x2020, 0x2040});
    ASSERT_TRUE(writer.write());

    const auto data = trace::trace_data::open(path);
    EXPECT_EQ(data->name(), "unit-mix");
    EXPECT_TRUE(data->floating_point());
    ASSERT_EQ(data->lane_count(), 2u);
    EXPECT_EQ(data->total_records(), 101u);

    ASSERT_EQ(data->lane(0).record_count, lane0.size());
    for (std::size_t i = 0; i < lane0.size(); ++i)
        EXPECT_TRUE(same_record(data->lane(0).records[i], lane0[i])) << i;
    ASSERT_EQ(data->lane(0).warm_count, 3u);
    EXPECT_EQ(data->lane(0).warm[0], 0x2000u);
    EXPECT_EQ(data->lane(0).warm[2], 0x2040u);
    ASSERT_EQ(data->lane(1).record_count, 1u);
    EXPECT_TRUE(same_record(data->lane(1).records[0], lane1[0]));
    EXPECT_EQ(data->lane(1).warm_count, 0u);
    std::remove(path.c_str());
}

TEST(trace_format, open_rejects_corruption)
{
    const std::string path = temp_path("corrupt.trace");
    trace::trace_writer writer(path, "corrupt", false, 1);
    writer.append(0, make_inst(cpu::op_class::int_alu, 0x10));
    ASSERT_TRUE(writer.write());

    // Out-of-range op code in the first record. Lane payloads start after
    // header (64) + lane table (1 x 32), 8-aligned -> offset 96; the op
    // byte sits 20 bytes into the record.
    {
        std::FILE* f = std::fopen(path.c_str(), "r+b");
        ASSERT_NE(f, nullptr);
        std::fseek(f, 96 + 20, SEEK_SET);
        std::fputc(0xff, f);
        std::fclose(f);
        EXPECT_THROW(trace::trace_data::open(path), std::runtime_error);
    }
    // Bad magic.
    {
        std::FILE* f = std::fopen(path.c_str(), "r+b");
        ASSERT_NE(f, nullptr);
        std::fputc('X', f);
        std::fclose(f);
        EXPECT_THROW(trace::trace_data::open(path), std::runtime_error);
    }
    EXPECT_THROW(trace::trace_data::open(path + ".missing"),
                 std::runtime_error);
    std::remove(path.c_str());
}

TEST(trace_stream, warm_next_positioning_matches_next)
{
    trace::scenario_params params;
    params.cores = 2;
    params.rounds = 16;
    const auto data = trace::make_scenario("migratory", params);
    trace::trace_stream a(data, 0);
    trace::trace_stream b(data, 0);
    for (unsigned i = 0; i < 500; ++i)
        (void)a.next();
    for (unsigned i = 0; i < 300; ++i)
        (void)b.warm_next();
    for (unsigned i = 0; i < 200; ++i)
        (void)b.next();
    // Mixed warm/detailed consumption must land on the same position with
    // the same upcoming content - the sampled driver's fast-forward
    // depends on it.
    EXPECT_EQ(a.position(), b.position());
    for (unsigned i = 0; i < 100; ++i) {
        const cpu::instruction x = a.next();
        const cpu::instruction y = b.next();
        EXPECT_EQ(x.pc, y.pc);
        EXPECT_EQ(x.addr, y.addr);
        EXPECT_EQ(x.op, y.op);
    }
}

TEST(trace_capture, replay_is_bit_identical_single_core)
{
    const std::string path = temp_path("cap_single.trace");
    hier::system_config config = hier::presets::lnuca_l3(3);
    config.capture_path = path;
    const wl::workload_profile live_profile = *wl::find_spec2006("429.mcf");
    const hier::run_result live =
        hier::run_one(config, live_profile, 30'000, 5'000, 7);

    config.capture_path.clear();
    const auto replay_profile = trace::parse_workload_spec("trace:" + path);
    ASSERT_TRUE(replay_profile.has_value());
    const hier::run_result replay =
        hier::run_one(config, *replay_profile, 30'000, 5'000, 7);
    expect_sim_fields_identical(live, replay);
    std::remove(path.c_str());
}

TEST(trace_capture, replay_is_bit_identical_cmp)
{
    const std::string path = temp_path("cap_cmp.trace");
    hier::system_config config =
        hier::presets::cmp(hier::presets::l2_256kb(), 2);
    config.capture_path = path;
    const wl::workload_profile live_profile = *wl::find_spec2006("456.hmmer");
    const hier::run_result live =
        hier::run_one(config, live_profile, 20'000, 4'000, 3);

    config.capture_path.clear();
    const auto replay_profile = trace::parse_workload_spec("trace:" + path);
    ASSERT_TRUE(replay_profile.has_value());
    const hier::run_result replay =
        hier::run_one(config, *replay_profile, 20'000, 4'000, 3);
    expect_sim_fields_identical(live, replay);
    std::remove(path.c_str());
}

TEST(trace_capture, replay_is_bit_identical_under_sampling)
{
    const std::string path = temp_path("cap_sampled.trace");
    hier::system_config config = hier::presets::l2_256kb();
    const auto sampling = hier::parse_sampling_spec("periodic:2000:20000:1000");
    ASSERT_TRUE(sampling.has_value());
    config.sampling = *sampling;
    config.capture_path = path;
    const wl::workload_profile live_profile = *wl::find_spec2006("470.lbm");
    const hier::run_result live =
        hier::run_one(config, live_profile, 60'000, 5'000, 11);
    ASSERT_TRUE(live.sampled);

    // The capture wrapped warm_next() too, so the serialised sequence is
    // exactly what the fast-forward + windows consumed; replaying under
    // the same sampling plan must reproduce every estimate bit-for-bit.
    config.capture_path.clear();
    const auto replay_profile = trace::parse_workload_spec("trace:" + path);
    ASSERT_TRUE(replay_profile.has_value());
    const hier::run_result replay =
        hier::run_one(config, *replay_profile, 60'000, 5'000, 11);
    expect_sim_fields_identical(live, replay);
    std::remove(path.c_str());
}

TEST(trace_capture, replay_is_bit_identical_under_cmp_sampling)
{
    const std::string path = temp_path("cap_cmp_sampled.trace");
    hier::system_config config =
        hier::presets::cmp(hier::presets::lnuca_l3(3), 2);
    const auto sampling = hier::parse_sampling_spec("periodic:1000:8000:400");
    ASSERT_TRUE(sampling.has_value());
    config.sampling = *sampling;
    config.capture_path = path;
    const auto live_profile =
        trace::parse_workload_spec("scenario:producer_consumer");
    ASSERT_TRUE(live_profile.has_value());
    const hier::run_result live =
        hier::run_one(config, *live_profile, 32'000, 4'000, 13);
    ASSERT_TRUE(live.sampled);
    ASSERT_EQ(live.cores, 2u);

    // Every lane's capture wrapped warm_next() too, so the serialised
    // lanes are exactly what the rate-matched fast-forward and the
    // detailed windows consumed (including the lanes' unequal warm
    // retirement); replaying under the same sampling plan must reproduce
    // the estimates and the per-core IPCs bit-for-bit.
    config.capture_path.clear();
    const auto replay_profile = trace::parse_workload_spec("trace:" + path);
    ASSERT_TRUE(replay_profile.has_value());
    const hier::run_result replay =
        hier::run_one(config, *replay_profile, 32'000, 4'000, 13);
    expect_sim_fields_identical(live, replay);
    std::remove(path.c_str());
}

// Two cores alternate stores to one shared block, G serialised ALU fillers
// apart (G dwarfs every coherence and memory latency, so ownership strictly
// alternates); lane 1 starts G/2 fillers later to fix the interleave. Every
// store then misses (the peer invalidated the line), the first fetches from
// below, and each of the remaining 2R-1 invalidates the peer and forwards
// its dirty line cache-to-cache - the hub counters are exactly predictable.
TEST(trace_scenarios, hand_built_ping_pong_has_exact_hub_counters)
{
    constexpr unsigned k_gap = 4000;
    constexpr unsigned k_rounds = 8;
    const addr_t shared = 0x7000'0000;

    const trace::trace_record filler =
        trace::encode(make_inst(cpu::op_class::int_alu, 0x400, 0, 1));
    const trace::trace_record store =
        trace::encode(make_inst(cpu::op_class::store, 0x500, shared));
    std::vector<std::vector<trace::trace_record>> lanes(2);
    lanes[1].insert(lanes[1].end(), k_gap / 2, filler);
    for (auto& lane : lanes)
        for (unsigned r = 0; r < k_rounds; ++r) {
            lane.push_back(store);
            lane.insert(lane.end(), k_gap, filler);
        }
    // Slack past the commit budget so speculative fetch-ahead never wraps
    // into the lane's leading store.
    for (auto& lane : lanes)
        lane.insert(lane.end(), 512, filler);

    const std::string path = temp_path("ping_pong_exact.trace");
    trace::trace_writer writer(path, "hand-ping-pong", false, 2);
    for (unsigned lane = 0; lane < 2; ++lane)
        for (const trace::trace_record& record : lanes[lane])
            writer.append_raw(lane, record);
    ASSERT_TRUE(writer.write());

    const auto profile = trace::parse_workload_spec("trace:" + path);
    ASSERT_TRUE(profile.has_value());
    hier::system sys(hier::presets::cmp(hier::presets::l2_256kb(), 2),
                     std::vector<wl::workload_profile>{*profile}, 1);
    const hier::run_result r =
        sys.run(std::uint64_t(k_rounds) * (k_gap + 1), 0);
    EXPECT_EQ(r.cores, 2u);

    ASSERT_NE(sys.hub(), nullptr);
    const counter_set& hub = sys.hub()->counters();
    EXPECT_EQ(hub.get("reads"), 0u);
    EXPECT_EQ(hub.get("rfos"), 2u * k_rounds);
    EXPECT_EQ(hub.get("upgrades"), 0u);
    EXPECT_EQ(hub.get("invalidations_sent"), 2u * k_rounds - 1);
    EXPECT_EQ(hub.get("downgrades_sent"), 0u);
    EXPECT_EQ(hub.get("c2c_transfers"), 2u * k_rounds - 1);
    EXPECT_EQ(hub.get("c2c_dirty"), 2u * k_rounds - 1);
    // Stores are not loads: the peer forwards count in the hub, not in the
    // core's load service distribution.
    EXPECT_EQ(r.loads_peer, 0u);
    std::remove(path.c_str());
}

TEST(trace_scenarios, library_is_deterministic_and_shares_blocks)
{
    trace::scenario_params params;
    params.cores = 3;
    params.rounds = 8;
    EXPECT_EQ(trace::scenario_names().size(), 5u);
    for (const std::string& name : trace::scenario_names()) {
        EXPECT_TRUE(trace::is_scenario(name));
        const auto a = trace::make_scenario(name, params);
        const auto b = trace::make_scenario(name, params);
        ASSERT_EQ(a->lane_count(), 3u) << name;
        ASSERT_EQ(b->lane_count(), 3u) << name;
        bool shared_touch = false;
        for (unsigned lane = 0; lane < 3; ++lane) {
            ASSERT_EQ(a->lane(lane).record_count, b->lane(lane).record_count)
                << name;
            // Equalised: every lane of one scenario has the same length, so
            // the relative interleave is stable across wrap.
            EXPECT_EQ(a->lane(lane).record_count, a->lane(0).record_count)
                << name;
            for (std::uint64_t i = 0; i < a->lane(lane).record_count; ++i) {
                const trace::trace_record& x = a->lane(lane).records[i];
                ASSERT_TRUE(same_record(x, b->lane(lane).records[i]))
                    << name << " lane " << lane << " record " << i;
                if (lane > 0 && x.addr >= params.shared_base &&
                    x.addr < params.shared_base + 32 * params.shared_blocks &&
                    cpu::is_mem(cpu::op_class(x.op)))
                    shared_touch = true;
            }
        }
        EXPECT_TRUE(shared_touch)
            << name << ": no lane beyond 0 touches the shared region";
    }
    EXPECT_FALSE(trace::is_scenario("nope"));
    EXPECT_THROW(trace::make_scenario("nope", params), std::invalid_argument);
    params.phase_len = 0;
    EXPECT_THROW(trace::make_scenario("ping_pong", params),
                 std::invalid_argument);
}

TEST(trace_scenarios, producer_consumer_moves_data_between_l1s)
{
    const auto profile =
        trace::parse_workload_spec("scenario:producer_consumer");
    ASSERT_TRUE(profile.has_value());
    const hier::run_result r =
        hier::run_one(hier::presets::cmp(hier::presets::l2_256kb(), 2),
                      *profile, 30'000, 2'000, 1);
    EXPECT_EQ(r.cores, 2u);
    EXPECT_GT(r.loads_peer, 0u);
}

TEST(lane_specs, overlapping_regions_enable_sharing)
{
    const hier::system_config config =
        hier::presets::cmp(hier::presets::l2_256kb(), 2);
    const wl::workload_profile p = *wl::find_spec2006("456.hmmer");

    // Default disjoint slots: a multiprogrammed mix never shares a line.
    hier::system disjoint(config, std::vector<hier::lane_spec>{{p, 0}, {p, 0}},
                          5);
    const hier::run_result rd = disjoint.run(20'000, 4'000);
    EXPECT_EQ(rd.loads_peer, 0u);
    EXPECT_EQ(disjoint.hub()->counters().get("c2c_transfers"), 0u);

    // Same base for both lanes: the footprints coincide and coherence
    // traffic appears - the overlap run_cmp's hardcoded layout could not
    // express before lane_spec.
    hier::system overlapping(
        config,
        std::vector<hier::lane_spec>{{p, 0x1000'0000}, {p, 0x1000'0000}}, 5);
    const hier::run_result ro = overlapping.run(20'000, 4'000);
    EXPECT_GT(ro.loads_peer, 0u);
    EXPECT_GT(overlapping.hub()->counters().get("invalidations_sent"), 0u);
}

TEST(lane_specs, default_layout_matches_profile_constructor)
{
    const hier::system_config config =
        hier::presets::cmp(hier::presets::lnuca_l3(2), 2);
    const wl::workload_profile p = *wl::find_spec2006("433.milc");

    hier::system by_profiles(
        config, std::vector<wl::workload_profile>{p, p}, 9);
    hier::system by_lanes(config,
                          std::vector<hier::lane_spec>{{p, 0}, {p, 0}}, 9);
    expect_sim_fields_identical(by_profiles.run(15'000, 3'000),
                                by_lanes.run(15'000, 3'000));
}

TEST(workload_spec, parses_every_source_kind)
{
    const auto proxy = trace::parse_workload_spec("429.mcf");
    ASSERT_TRUE(proxy.has_value());
    EXPECT_EQ(proxy->name, "429.mcf");
    EXPECT_TRUE(proxy->trace_path.empty());
    EXPECT_TRUE(proxy->scenario.empty());

    const auto scenario = trace::parse_workload_spec("scenario:false_sharing");
    ASSERT_TRUE(scenario.has_value());
    EXPECT_EQ(scenario->scenario, "false_sharing");
    EXPECT_EQ(scenario->name, "scenario:false_sharing");

    const auto traced = trace::parse_workload_spec("trace:/tmp/x.trace");
    ASSERT_TRUE(traced.has_value());
    EXPECT_EQ(traced->trace_path, "/tmp/x.trace");

    EXPECT_FALSE(trace::parse_workload_spec("trace:").has_value());
    EXPECT_FALSE(trace::parse_workload_spec("scenario:nope").has_value());
    EXPECT_FALSE(trace::parse_workload_spec("not_a_proxy").has_value());

    std::string bad;
    const auto list =
        trace::parse_workload_list("429.mcf,scenario:migratory", &bad);
    ASSERT_EQ(list.size(), 2u);
    EXPECT_EQ(list[1].scenario, "migratory");
    EXPECT_TRUE(
        trace::parse_workload_list("429.mcf,junk,470.lbm", &bad).empty());
    EXPECT_EQ(bad, "junk");
}

} // namespace
} // namespace lnuca
