// L-NUCA floorplan and topology properties: tile counts, Fig. 2(c)
// latencies, broadcast-tree shape, transport progress, replacement DAG
// invariants, and the Section III-A comparisons against a 2D mesh.
#include "src/fabric/geometry.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace lnuca::fabric {
namespace {

TEST(geometry, rejects_single_level)
{
    EXPECT_THROW(geometry{1}, std::invalid_argument);
}

TEST(geometry, paper_tile_counts)
{
    EXPECT_EQ(geometry(2).tile_count(), 5u);   // LN2: 5 tiles
    EXPECT_EQ(geometry(3).tile_count(), 14u);  // LN3: 5 + 9
    EXPECT_EQ(geometry(4).tile_count(), 27u);  // LN4: 5 + 9 + 13
}

TEST(geometry, levels_have_4d_plus_1_tiles)
{
    const geometry g(5);
    EXPECT_EQ(g.tiles_in_level(2).size(), 5u);
    EXPECT_EQ(g.tiles_in_level(3).size(), 9u);
    EXPECT_EQ(g.tiles_in_level(4).size(), 13u);
    EXPECT_EQ(g.tiles_in_level(5).size(), 17u);
}

TEST(geometry, fig2c_latencies_for_three_levels)
{
    // Fig. 2(c): ring-1 tiles at latency 3-4; ring-2 at 5-7.
    const geometry g(3);
    EXPECT_EQ(g.latency_of({0, 1}), 3u);
    EXPECT_EQ(g.latency_of({1, 0}), 3u);
    EXPECT_EQ(g.latency_of({-1, 0}), 3u);
    EXPECT_EQ(g.latency_of({1, 1}), 4u);
    EXPECT_EQ(g.latency_of({-1, 1}), 4u);
    EXPECT_EQ(g.latency_of({0, 2}), 5u);
    EXPECT_EQ(g.latency_of({2, 0}), 5u);
    EXPECT_EQ(g.latency_of({1, 2}), 6u);
    EXPECT_EQ(g.latency_of({2, 1}), 6u);
    EXPECT_EQ(g.latency_of({2, 2}), 7u);
    EXPECT_EQ(g.latency_of({-2, 2}), 7u);
}

TEST(geometry, contains_and_indexing_roundtrip)
{
    const geometry g(4);
    EXPECT_FALSE(g.contains({0, 0})); // the r-tile is not a tile
    EXPECT_TRUE(g.contains({3, 3}));
    EXPECT_FALSE(g.contains({4, 0}));
    EXPECT_FALSE(g.contains({0, -1}));
    for (tile_index i = 0; i < g.tile_count(); ++i)
        EXPECT_EQ(g.index_of(g.coord_of(i)), i);
}

TEST(geometry, search_tree_reaches_every_tile_once)
{
    const geometry g(4);
    std::set<tile_index> reached;
    std::vector<tile_index> frontier = g.root_search_children();
    unsigned depth = 0;
    while (!frontier.empty()) {
        ++depth;
        std::vector<tile_index> next;
        for (const tile_index i : frontier) {
            EXPECT_TRUE(reached.insert(i).second) << "tile reached twice";
            EXPECT_EQ(g.ring_of(g.coord_of(i)), depth);
            for (const tile_index c : g.search_children(i))
                next.push_back(c);
        }
        frontier = std::move(next);
    }
    EXPECT_EQ(reached.size(), g.tile_count());
    EXPECT_EQ(depth, g.rings());
    EXPECT_EQ(depth, g.search_max_distance());
}

TEST(geometry, transport_outputs_always_make_progress)
{
    const geometry g(4);
    for (tile_index i = 0; i < g.tile_count(); ++i) {
        const auto c = g.coord_of(i);
        const auto& outs = g.transport_outputs(i);
        EXPECT_FALSE(outs.empty());
        for (const tile_index t : outs) {
            const unsigned here = g.transport_distance(c);
            const unsigned there =
                t == root_index ? 0 : g.transport_distance(g.coord_of(t));
            EXPECT_EQ(there + 1, here) << "link must reduce distance by one";
        }
    }
}

TEST(geometry, transport_inputs_mirror_outputs)
{
    const geometry g(3);
    for (tile_index i = 0; i < g.tile_count(); ++i)
        for (const tile_index t : g.transport_outputs(i))
            if (t != root_index) {
                const auto& ins = g.transport_inputs(t);
                EXPECT_NE(std::find(ins.begin(), ins.end(), i), ins.end());
            }
    // Root inputs: the three tiles adjacent to the r-tile.
    EXPECT_EQ(g.root_transport_inputs().size(), 3u);
}

TEST(geometry, replacement_edges_connect_latency_plus_one)
{
    const geometry g(4);
    for (tile_index i = 0; i < g.tile_count(); ++i) {
        const unsigned lat = g.latency_of(g.coord_of(i));
        for (const tile_index t : g.replacement_outputs(i))
            EXPECT_EQ(g.latency_of(g.coord_of(t)), lat + 1);
    }
    for (const tile_index t : g.root_replacement_outputs())
        EXPECT_EQ(g.latency_of(g.coord_of(t)), 3u); // the stated exception
}

TEST(geometry, replacement_dag_feeds_and_drains_every_tile)
{
    for (unsigned levels = 2; levels <= 6; ++levels) {
        const geometry g(levels);
        for (tile_index i = 0; i < g.tile_count(); ++i) {
            const bool fed_by_root =
                std::find(g.root_replacement_outputs().begin(),
                          g.root_replacement_outputs().end(),
                          i) != g.root_replacement_outputs().end();
            EXPECT_TRUE(fed_by_root || !g.replacement_inputs(i).empty())
                << "tile " << i << " unreachable at " << levels << " levels";
            if (g.is_exit_tile(i))
                EXPECT_TRUE(g.replacement_outputs(i).empty());
            else
                EXPECT_FALSE(g.replacement_outputs(i).empty());
            // Up to 2 in-links = up to 4 U-buffer comparators (paper).
            EXPECT_LE(g.replacement_inputs(i).size() + (fed_by_root ? 1 : 0),
                      2u);
        }
        EXPECT_EQ(g.exit_tiles().size(), 2u);
    }
}

TEST(geometry, exit_distance_grows_three_hops_per_level)
{
    // Paper: the distance from the r-tile to the upper corner tiles grows
    // by 3 hops per added level.
    unsigned previous = 0;
    for (unsigned levels = 2; levels <= 7; ++levels) {
        const geometry g(levels);
        const unsigned distance = g.replacement_exit_distance();
        EXPECT_EQ(distance, 3 * (levels - 1) - 1);
        if (previous != 0) {
            EXPECT_EQ(distance, previous + 3);
        }
        previous = distance;
    }
}

class geometry_sweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(geometry_sweep, mesh_comparison_claims)
{
    // Section III-A: a 2D mesh would roughly double the hops to reach all
    // tiles, need >50% more links than the broadcast tree, and add 2 hops
    // per level where the tree adds 1.
    const geometry g(GetParam());
    EXPECT_EQ(g.mesh_equivalent_max_distance(), 2 * g.search_max_distance());
    EXPECT_GT(double(g.mesh_equivalent_link_count()),
              1.5 * double(g.search_link_count()));
}

TEST_P(geometry_sweep, search_tree_adds_one_hop_per_level)
{
    const geometry g(GetParam());
    EXPECT_EQ(g.search_max_distance(), GetParam() - 1);
}

TEST_P(geometry_sweep, link_counts_match_enumeration)
{
    const geometry g(GetParam());
    unsigned transport = 0;
    for (tile_index i = 0; i < g.tile_count(); ++i)
        transport += unsigned(g.transport_outputs(i).size());
    EXPECT_EQ(transport, g.transport_link_count());

    unsigned replacement = unsigned(g.root_replacement_outputs().size());
    for (tile_index i = 0; i < g.tile_count(); ++i)
        replacement += unsigned(g.replacement_outputs(i).size());
    EXPECT_EQ(replacement, g.replacement_link_count());
}

INSTANTIATE_TEST_SUITE_P(levels, geometry_sweep,
                         ::testing::Values(2u, 3u, 4u, 5u, 6u, 8u));

} // namespace
} // namespace lnuca::fabric
