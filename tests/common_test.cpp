// Unit tests for the common foundation: rng, statistics, histogram,
// tables, CLI parsing, and the type helpers.
#include "src/common/cli.h"
#include "src/common/histogram.h"
#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/common/table.h"
#include "src/common/types.h"

#include <gtest/gtest.h>

#include <array>
#include <cmath>

namespace lnuca {
namespace {

TEST(types, pow2_helpers)
{
    EXPECT_TRUE(is_pow2(1));
    EXPECT_TRUE(is_pow2(1024));
    EXPECT_FALSE(is_pow2(0));
    EXPECT_FALSE(is_pow2(3));
    EXPECT_EQ(log2_exact(1), 0u);
    EXPECT_EQ(log2_exact(4096), 12u);
    EXPECT_EQ(align_up(5, 8), 8u);
    EXPECT_EQ(align_up(16, 8), 16u);
}

TEST(types, size_literals_and_format)
{
    EXPECT_EQ(32_KiB, 32768u);
    EXPECT_EQ(8_MiB, 8388608u);
    EXPECT_EQ(format_size(256_KiB), "256KB");
    EXPECT_EQ(format_size(8_MiB), "8MB");
    EXPECT_EQ(format_size(72_KiB), "72KB");
    EXPECT_EQ(format_size(100), "100B");
}

TEST(rng, deterministic_per_seed)
{
    rng a(42), b(42), c(43);
    for (int i = 0; i < 100; ++i) {
        const auto va = a();
        EXPECT_EQ(va, b());
        (void)c;
    }
    rng d(43);
    EXPECT_NE(rng(42)(), d());
}

TEST(rng, below_respects_bound)
{
    rng r(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.below(17), 17u);
    EXPECT_EQ(r.below(0), 0u);
    EXPECT_EQ(r.below(1), 0u);
}

TEST(rng, uniform_in_unit_interval_and_mean)
{
    rng r(11);
    double sum = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(rng, chance_matches_probability)
{
    rng r(13);
    int hits = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        hits += r.chance(0.3) ? 1 : 0;
    EXPECT_NEAR(double(hits) / n, 0.3, 0.02);
}

TEST(rng, between_is_inclusive)
{
    rng r(5);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const auto v = r.between(3, 6);
        ASSERT_GE(v, 3u);
        ASSERT_LE(v, 6u);
        saw_lo |= v == 3;
        saw_hi |= v == 6;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(rng, hash64_stateless)
{
    EXPECT_EQ(hash64(1), hash64(1));
    EXPECT_NE(hash64(1), hash64(2));
}

TEST(stats, harmonic_mean_known_values)
{
    const std::vector<double> v{1.0, 2.0};
    EXPECT_NEAR(harmonic_mean(v), 4.0 / 3.0, 1e-12);
    const std::vector<double> w{2.0, 2.0, 2.0};
    EXPECT_NEAR(harmonic_mean(w), 2.0, 1e-12);
}

TEST(stats, harmonic_mean_degenerate)
{
    EXPECT_EQ(harmonic_mean({}), 0.0);
    const std::vector<double> z{0.0, 2.0};
    EXPECT_EQ(harmonic_mean(z), 0.0);
}

TEST(stats, harmonic_below_arithmetic)
{
    const std::vector<double> v{0.5, 1.0, 1.5, 3.0};
    EXPECT_LT(harmonic_mean(v), arithmetic_mean(v));
    EXPECT_LT(geometric_mean(v), arithmetic_mean(v));
    EXPECT_GT(geometric_mean(v), harmonic_mean(v));
}

TEST(stats, mean_accumulator)
{
    mean_accumulator acc;
    EXPECT_EQ(acc.mean(), 0.0);
    acc.add(2.0);
    acc.add(4.0);
    EXPECT_EQ(acc.count(), 2u);
    EXPECT_NEAR(acc.mean(), 3.0, 1e-12);
    acc.reset();
    EXPECT_EQ(acc.count(), 0u);
}

TEST(stats, minmax_accumulator)
{
    minmax_accumulator acc;
    acc.add(5.0);
    acc.add(-1.0);
    acc.add(3.0);
    EXPECT_EQ(acc.min(), -1.0);
    EXPECT_EQ(acc.max(), 5.0);
    EXPECT_NEAR(acc.mean(), 7.0 / 3.0, 1e-12);
}

TEST(stats, safe_ratio)
{
    EXPECT_EQ(safe_ratio(4, 2), 2.0);
    EXPECT_EQ(safe_ratio(4, 0), 0.0);
    EXPECT_EQ(safe_ratio(4, 0, 1.5), 1.5);
}

TEST(stats, counter_set_insertion_order_and_get)
{
    counter_set c;
    c.inc("b");
    c.inc("a", 3);
    c.inc("b", 2);
    EXPECT_EQ(c.get("b"), 3u);
    EXPECT_EQ(c.get("a"), 3u);
    EXPECT_EQ(c.get("missing"), 0u);
    ASSERT_EQ(c.items().size(), 2u);
    EXPECT_EQ(c.items()[0].first, "b");
    c.reset();
    // reset() zeroes values but keeps names (stable counter handles).
    ASSERT_EQ(c.items().size(), 2u);
    EXPECT_EQ(c.get("b"), 0u);
    EXPECT_EQ(c.get("a"), 0u);
    const counter_set::handle hb = c.handle_of("b");
    c.inc(hb, 5);
    EXPECT_EQ(c.get("b"), 5u);
}

TEST(histogram, counts_and_overflow)
{
    histogram h(4);
    h.add(0);
    h.add(3);
    h.add(10); // overflow bucket
    EXPECT_EQ(h.count(0), 1u);
    EXPECT_EQ(h.count(3), 1u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.total(), 3u);
}

TEST(histogram, weighted_mean)
{
    histogram h(16);
    h.add(2, 3); // three observations of 2
    h.add(8, 1);
    EXPECT_NEAR(h.mean(), (2 * 3 + 8) / 4.0, 1e-12);
}

TEST(histogram, percentile)
{
    histogram h(32);
    for (std::uint64_t v = 0; v < 10; ++v)
        h.add(v);
    EXPECT_EQ(h.percentile(0.5), 4u);
    EXPECT_EQ(h.percentile(1.0), 9u);
}

TEST(histogram, reset)
{
    histogram h(8);
    h.add(1);
    h.reset();
    EXPECT_EQ(h.total(), 0u);
    EXPECT_EQ(h.count(1), 0u);
}

TEST(table, renders_header_and_rows)
{
    text_table t("Title");
    t.set_header({"a", "bb"});
    t.add_row({"1", "2"});
    const std::string out = t.render();
    EXPECT_NE(out.find("Title"), std::string::npos);
    EXPECT_NE(out.find("bb"), std::string::npos);
    EXPECT_NE(out.find('1'), std::string::npos);
}

TEST(table, numeric_formatting)
{
    EXPECT_EQ(text_table::num(1.23456, 2), "1.23");
    EXPECT_EQ(text_table::num(2.0, 0), "2");
    EXPECT_EQ(text_table::pct(12.34, 1), "12.3%");
}

TEST(table, ragged_rows_padded)
{
    text_table t;
    t.set_header({"x", "y", "z"});
    t.add_row({"only-one"});
    EXPECT_NO_THROW({ const auto s = t.render(); (void)s; });
}

TEST(cli, parses_separate_and_equals_forms)
{
    const char* argv[] = {"prog", "--alpha", "5", "--beta=7", "--flag"};
    cli_args args(5, argv);
    EXPECT_EQ(args.get_u64("alpha", 0), 5u);
    EXPECT_EQ(args.get_u64("beta", 0), 7u);
    EXPECT_TRUE(args.has_flag("flag"));
    EXPECT_FALSE(args.has_flag("gamma"));
    EXPECT_EQ(args.get_u64("gamma", 9), 9u);
}

TEST(cli, string_and_double)
{
    const char* argv[] = {"prog", "--name", "mcf", "--ratio", "1.5"};
    cli_args args(5, argv);
    EXPECT_EQ(args.get_string("name", "x"), "mcf");
    EXPECT_DOUBLE_EQ(args.get_double("ratio", 0), 1.5);
    EXPECT_EQ(args.get_string("other", "fallback"), "fallback");
}

} // namespace
} // namespace lnuca
